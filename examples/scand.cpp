// scand: the uchecker scan daemon.
//
//   $ ./build/examples/scand --socket /run/uchecker.sock
//       --state-dir /var/lib/uchecker
//       [--workers N] [--queue N]
//       [--request-timeout-ms N] [--watchdog-grace-ms N]
//       [--all-findings] [--explain] [--profile]
//       [--metrics-out FILE] [--trace-out FILE]
//       [--log-file FILE] [--log-level debug|info|warn|error]
//       [--version]
//
// A long-running scan service over a Unix socket (line-delimited JSON;
// protocol in src/service/scan_server.h — drive it with scanctl).
// Verdicts and solver outcomes persist in corruption-detecting stores
// under --state-dir, so a restart (including recovery from kill -9)
// re-serves previously scanned content from cache, byte-identical to
// the original scan. A corrupt or torn cache record is detected by
// checksum and recomputed, never trusted.
//
// Robustness: the request queue is bounded (clients get an immediate
// "overloaded" reply instead of unbounded buffering), every scan runs
// under --request-timeout-ms, and a watchdog cancels scans that overrun
// it by --watchdog-grace-ms, answers kAnalysisError on their behalf and
// quarantines the offending content persistently — a wedged scan never
// takes the daemon down, and the same content cannot wedge it twice.
//
// Shutdown: SIGTERM/SIGINT drain — stop accepting, finish queued
// requests, flush + compact the stores, dump each worker's flight
// recorder under --state-dir, exit 0.
//
// Observability: --log-file/--log-level emit structured JSON-lines
// (request_done, watchdog_cancel, lifecycle; see support/logging.h),
// the `metrics` protocol op serves a Prometheus text exposition, and
// --trace-out writes a Chrome trace of every scan on exit. All of it
// is correlated by request trace IDs (client-supplied or minted).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "service/scan_server.h"
#include "support/logging.h"
#include "support/telemetry.h"
#include "support/trace_export.h"

using namespace uchecker;

namespace {

// SIGTERM/SIGINT must only touch async-signal-safe state: one relaxed
// pointer load plus ScanServer::request_stop (one atomic store).
std::atomic<service::ScanServer*> g_server{nullptr};

void handle_signal(int /*sig*/) {
  if (service::ScanServer* server = g_server.load(std::memory_order_relaxed)) {
    server->request_stop();
  }
}

bool flag_with_value(int argc, char** argv, int& i, const char* flag,
                     std::string& value) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, len) != 0) return false;
  if (argv[i][len] == '=') {
    value = argv[i] + len + 1;
    return true;
  }
  if (argv[i][len] == '\0' && i + 1 < argc) {
    value = argv[++i];
    return true;
  }
  return false;
}

long parse_positive(const std::string& text, const char* flag) {
  const long value = std::strtol(text.c_str(), nullptr, 10);
  if (value <= 0) {
    std::fprintf(stderr, "error: %s needs a positive integer\n", flag);
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string metrics_out;
  std::string trace_out;
  std::string log_file;
  std::string log_level;
  service::ServiceOptions options;
  options.scan.vuln.stop_at_first_finding = true;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (flag_with_value(argc, argv, i, "--socket", value)) {
      socket_path = value;
    } else if (flag_with_value(argc, argv, i, "--state-dir", value)) {
      options.state_dir = value;
    } else if (flag_with_value(argc, argv, i, "--workers", value)) {
      options.workers =
          static_cast<unsigned>(parse_positive(value, "--workers"));
    } else if (flag_with_value(argc, argv, i, "--queue", value)) {
      options.max_queue =
          static_cast<std::size_t>(parse_positive(value, "--queue"));
    } else if (flag_with_value(argc, argv, i, "--request-timeout-ms", value)) {
      options.request_timeout = std::chrono::milliseconds(
          parse_positive(value, "--request-timeout-ms"));
    } else if (flag_with_value(argc, argv, i, "--watchdog-grace-ms", value)) {
      options.watchdog_grace = std::chrono::milliseconds(
          parse_positive(value, "--watchdog-grace-ms"));
    } else if (flag_with_value(argc, argv, i, "--metrics-out", value)) {
      metrics_out = value;
    } else if (flag_with_value(argc, argv, i, "--trace-out", value)) {
      trace_out = value;
    } else if (flag_with_value(argc, argv, i, "--log-file", value)) {
      log_file = value;
    } else if (flag_with_value(argc, argv, i, "--log-level", value)) {
      log_level = value;
    } else if (std::strcmp(argv[i], "--all-findings") == 0) {
      options.scan.vuln.stop_at_first_finding = false;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      options.scan.explain = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      // Engine introspection on every cold scan; inspect the last runs
      // with `scanctl profile`. Cache bytes are unaffected (the profile
      // is stripped before rendering), so toggling this across restarts
      // never invalidates the verdict store.
      options.profile = true;
    } else if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", std::string(core::kEngineVersion).c_str());
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--state-dir DIR] [--workers N] "
                 "[--queue N] [--request-timeout-ms N] "
                 "[--watchdog-grace-ms N] [--all-findings] [--explain] "
                 "[--profile] "
                 "[--metrics-out FILE] [--trace-out FILE] [--log-file FILE] "
                 "[--log-level LEVEL] [--version]\n",
                 argv[0]);
    return 2;
  }

  logging::Logger logger;
  if (!log_level.empty()) {
    logging::Level level = logging::Level::kInfo;
    if (!logging::parse_level(log_level, &level)) {
      std::fprintf(stderr, "error: unknown log level %s\n", log_level.c_str());
      return 2;
    }
    logger.set_min_level(level);
  }
  if (!log_file.empty() && !logger.open_file(log_file)) {
    std::fprintf(stderr, "error: cannot open log file %s\n", log_file.c_str());
    return 2;
  }

  telemetry::Telemetry telemetry;
  options.telemetry = &telemetry;
  // Per-scan tracing feeds the flight recorders, --trace-out and the
  // metric exemplars. Traces accumulate for the daemon's lifetime
  // (bounded per scan by sample decimation); a scrape-and-restart
  // deployment keeps that growth irrelevant.
  options.scan.telemetry = &telemetry;
  options.logger = &logger;

  service::ScanService service(options);
  service.start();

  service::ScanServer server(service, service::ServerOptions{socket_path});
  if (!server.listen()) {
    std::fprintf(stderr, "error: cannot listen on %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    service.stop();
    return 2;
  }

  g_server.store(&server, std::memory_order_relaxed);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  std::fprintf(stderr, "scand: listening on %s (state: %s)\n",
               socket_path.c_str(),
               options.state_dir.empty() ? "<in-memory>"
                                         : options.state_dir.c_str());
  const int rc = server.run();

  // Drain: queued requests finish, caches flush and compact.
  g_server.store(nullptr, std::memory_order_relaxed);
  service.stop();
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::binary | std::ios::trunc);
    if (out) out << telemetry::metrics_to_json(telemetry);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write metrics to %s\n",
                   metrics_out.c_str());
    }
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary | std::ios::trunc);
    if (out) out << telemetry::to_chrome_trace_json(telemetry);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write trace to %s\n",
                   trace_out.c_str());
    }
  }
  std::fprintf(stderr, "scand: drained, exiting\n");
  return rc;
}
