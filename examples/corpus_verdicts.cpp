// corpus_verdicts: deterministic dump of every corpus scan's verdict and
// findings (sink, location, dst/reachability s-exprs, witness,
// fingerprint), with all timing- and machine-dependent stats omitted.
// Two builds of the scanner are behaviorally equivalent on the corpus
// iff their dumps are byte-identical — this is the regression oracle for
// optimizations that must not change analysis results (hash-consing,
// caching, interning).
//
//   $ ./build/examples/corpus_verdicts > verdicts.txt
//
// --explain runs every scan with evidence collection on but prints the
// same fields: diffing the two outputs proves evidence is purely
// additive (CI does exactly that). --dump DIR additionally writes each
// corpus app as a PHP tree under DIR/<app>/ so file-oriented tools
// (scan_directory --sarif-out, external scanners) can run on the corpus.
// --parse-threads N parses each app's files on an N-thread pool (0 =
// auto); diffing against a --parse-threads 1 dump proves parallel
// parsing is behaviorally invisible (CI does that too).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/detector/detector.h"
#include "core/detector/report_io.h"
#include "corpus/corpus.h"

using namespace uchecker::core;  // NOLINT

namespace {

bool dump_app(const std::filesystem::path& dir, const Application& app) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const AppFile& f : app.files) {
    const fs::path path = dir / app.name / f.name;
    fs::create_directories(path.parent_path(), ec);
    if (ec) return false;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << f.content;
    if (!out) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool explain = false;
  int parse_threads = 1;
  std::string dump_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
      dump_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--parse-threads") == 0 && i + 1 < argc) {
      parse_threads = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--explain] [--dump DIR] [--parse-threads N]\n",
                   argv[0]);
      return 2;
    }
  }

  ScanOptions options;
  options.explain = explain;
  options.parse_threads =
      parse_threads > 0 ? static_cast<std::size_t>(parse_threads) : 0;
  Detector detector(options);
  for (const uchecker::corpus::CorpusEntry& entry :
       uchecker::corpus::full_corpus()) {
    if (!dump_dir.empty() && !dump_app(dump_dir, entry.app)) {
      std::fprintf(stderr, "error: cannot dump %s under %s\n",
                   entry.app.name.c_str(), dump_dir.c_str());
      return 2;
    }
    const ScanReport report = detector.scan(entry.app);
    std::printf("app: %s\n", entry.app.name.c_str());
    std::printf("verdict: %s\n",
                std::string(verdict_slug(report.verdict)).c_str());
    std::printf("findings: %zu\n", report.findings.size());
    for (const Finding& f : report.findings) {
      std::printf("  sink: %s\n", f.sink_name.c_str());
      std::printf("  location: %s\n", f.location.c_str());
      std::printf("  source: %s\n", f.source_line.c_str());
      std::printf("  dst: %s\n", f.dst_sexpr.c_str());
      std::printf("  reach: %s\n", f.reach_sexpr.c_str());
      std::printf("  witness: %s\n", f.witness.c_str());
      std::printf("  fingerprint: %s\n", f.fingerprint.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
