// corpus_verdicts: deterministic dump of every corpus scan's verdict and
// findings (sink, location, dst/reachability s-exprs, witness,
// fingerprint), with all timing- and machine-dependent stats omitted.
// Two builds of the scanner are behaviorally equivalent on the corpus
// iff their dumps are byte-identical — this is the regression oracle for
// optimizations that must not change analysis results (hash-consing,
// caching, interning).
//
//   $ ./build/examples/corpus_verdicts > verdicts.txt
//
// --explain runs every scan with evidence collection on but prints the
// same fields: diffing the two outputs proves evidence is purely
// additive (CI does exactly that). --dump DIR additionally writes each
// corpus app as a PHP tree under DIR/<app>/ so file-oriented tools
// (scan_directory --sarif-out, external scanners) can run on the corpus.
// --parse-threads N parses each app's files on an N-thread pool (0 =
// auto); diffing against a --parse-threads 1 dump proves parallel
// parsing is behaviorally invisible (CI does that too).
//
// PR9 knobs: --no-summaries disables the inter-procedural summary layer
// (diffing against the default dump proves summaries never change
// verdicts); --crosscheck runs both engines on every root so any
// summary-pruned root the symbolic engine finds vulnerable surfaces as
// an analysis_disagreement verdict; --suite full|helper|all selects the
// Table III corpus, the PR9 helper-chain suite, or both; --stats appends
// per-app prune/summary counters (off by default so the byte-identical
// oracle stays stats-free).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/detector/detector.h"
#include "core/detector/report_io.h"
#include "corpus/corpus.h"

using namespace uchecker::core;  // NOLINT

namespace {

bool dump_app(const std::filesystem::path& dir, const Application& app) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const AppFile& f : app.files) {
    const fs::path path = dir / app.name / f.name;
    fs::create_directories(path.parent_path(), ec);
    if (ec) return false;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << f.content;
    if (!out) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool explain = false;
  bool crosscheck = false;
  bool summaries = true;
  bool stats = false;
  int parse_threads = 1;
  std::string dump_dir;
  std::string suite = "full";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--crosscheck") == 0) {
      crosscheck = true;
    } else if (std::strcmp(argv[i], "--no-summaries") == 0) {
      summaries = false;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
      suite = argv[++i];
    } else if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
      dump_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--parse-threads") == 0 && i + 1 < argc) {
      parse_threads = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--explain] [--crosscheck] [--no-summaries] "
                   "[--stats] [--suite full|helper|all] [--dump DIR] "
                   "[--parse-threads N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (suite != "full" && suite != "helper" && suite != "all") {
    std::fprintf(stderr, "error: unknown suite '%s'\n", suite.c_str());
    return 2;
  }

  ScanOptions options;
  options.explain = explain;
  options.crosscheck = crosscheck;
  options.summaries = summaries;
  options.parse_threads =
      parse_threads > 0 ? static_cast<std::size_t>(parse_threads) : 0;
  Detector detector(options);
  std::vector<uchecker::corpus::CorpusEntry> entries;
  if (suite == "full" || suite == "all") {
    for (uchecker::corpus::CorpusEntry& e : uchecker::corpus::full_corpus()) {
      entries.push_back(std::move(e));
    }
  }
  if (suite == "helper" || suite == "all") {
    for (uchecker::corpus::CorpusEntry& e :
         uchecker::corpus::helper_sink_suite()) {
      entries.push_back(std::move(e));
    }
  }
  for (const uchecker::corpus::CorpusEntry& entry : entries) {
    if (!dump_dir.empty() && !dump_app(dump_dir, entry.app)) {
      std::fprintf(stderr, "error: cannot dump %s under %s\n",
                   entry.app.name.c_str(), dump_dir.c_str());
      return 2;
    }
    const ScanReport report = detector.scan(entry.app);
    std::printf("app: %s\n", entry.app.name.c_str());
    std::printf("verdict: %s\n",
                std::string(verdict_slug(report.verdict)).c_str());
    std::printf("findings: %zu\n", report.findings.size());
    for (const Finding& f : report.findings) {
      std::printf("  sink: %s\n", f.sink_name.c_str());
      std::printf("  location: %s\n", f.location.c_str());
      std::printf("  source: %s\n", f.source_line.c_str());
      std::printf("  dst: %s\n", f.dst_sexpr.c_str());
      std::printf("  reach: %s\n", f.reach_sexpr.c_str());
      std::printf("  witness: %s\n", f.witness.c_str());
      std::printf("  fingerprint: %s\n", f.fingerprint.c_str());
    }
    if (stats) {
      std::printf("roots: %zu pruned: %zu summary_pruned: %zu\n",
                  report.roots, report.pruned_roots,
                  report.summary_pruned_roots);
      std::printf("summary_cache_hits: %zu escaped_calls: %zu\n",
                  report.summary_cache_hits, report.escaped_calls);
    }
    std::printf("\n");
  }
  return 0;
}
