// corpus_verdicts: deterministic dump of every corpus scan's verdict and
// findings (sink, location, dst/reachability s-exprs, witness), with all
// timing- and machine-dependent stats omitted. Two builds of the scanner
// are behaviorally equivalent on the corpus iff their dumps are
// byte-identical — this is the regression oracle for optimizations that
// must not change analysis results (hash-consing, caching, interning).
//
//   $ ./build/examples/corpus_verdicts > verdicts.txt
#include <cstdio>

#include "core/detector/detector.h"
#include "core/detector/report_io.h"
#include "corpus/corpus.h"

using namespace uchecker::core;  // NOLINT

int main() {
  Detector detector;
  for (const uchecker::corpus::CorpusEntry& entry :
       uchecker::corpus::full_corpus()) {
    const ScanReport report = detector.scan(entry.app);
    std::printf("app: %s\n", entry.app.name.c_str());
    std::printf("verdict: %s\n",
                std::string(verdict_slug(report.verdict)).c_str());
    std::printf("findings: %zu\n", report.findings.size());
    for (const Finding& f : report.findings) {
      std::printf("  sink: %s\n", f.sink_name.c_str());
      std::printf("  location: %s\n", f.location.c_str());
      std::printf("  source: %s\n", f.source_line.c_str());
      std::printf("  dst: %s\n", f.dst_sexpr.c_str());
      std::printf("  reach: %s\n", f.reach_sexpr.c_str());
      std::printf("  witness: %s\n", f.witness.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
