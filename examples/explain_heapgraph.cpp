// explain_heapgraph: developer's-eye view of the analysis internals.
// Parses PHP (from a file argument, or the paper's Listing 2 demo),
// symbolically executes it, and prints:
//   - the AST,
//   - the extended call graph (DOT),
//   - the heap graph with per-path environments (DOT),
//   - each path's variable bindings and reachability as s-expressions.
//
//   $ ./build/examples/explain_heapgraph [file.php]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/callgraph/callgraph.h"
#include "core/callgraph/locality.h"
#include "core/heapgraph/dot.h"
#include "core/heapgraph/sexpr.h"
#include "core/interp/interp.h"
#include "phpast/printer.h"
#include "phpparse/parser.h"

using namespace uchecker;
using namespace uchecker::core;

int main(int argc, char** argv) {
  std::string name = "listing2.php";
  std::string source = R"php(<?php
$a = 55;
$b = $_GET['input'];
if ($b + $a > 10) {
    $a = $b - 22;
} else {
    $a = 88;
}
)php";
  if (argc > 1) {
    name = argv[1];
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  SourceManager sources;
  DiagnosticSink diags;
  const FileId id = sources.add_file(name, source);
  Arena arena;
  const phpast::PhpFile file =
      phpparse::parse_php(*sources.file(id), diags, arena);
  if (diags.has_errors()) {
    std::fprintf(stderr, "%s", diags.render(sources).c_str());
  }

  std::printf("=== AST ===\n%s\n", phpast::dump(file).c_str());

  const Program program = build_program({&file});
  const CallGraph call_graph = build_call_graph(program);
  std::printf("=== extended call graph (DOT) ===\n%s\n",
              call_graph.to_dot().c_str());

  const LocalityResult locality =
      analyze_locality(program, call_graph, sources);
  std::printf("=== locality analysis ===\n");
  if (locality.roots.empty()) {
    std::printf("no analysis root (no scope reaches both $_FILES and a "
                "sink); executing the file body for illustration\n");
  }
  for (const AnalysisRoot& r : locality.roots) {
    std::printf("root: %s (%llu LoC of %llu, %.2f%%)\n",
                call_graph.node(r.node).name.c_str(),
                static_cast<unsigned long long>(r.body_loc),
                static_cast<unsigned long long>(locality.total_loc),
                locality.analyzed_percent());
  }

  AnalysisRoot root;
  if (!locality.roots.empty()) {
    root = locality.roots[0];
  } else {
    root.file = &file;
  }
  Interpreter interp(program, diags);
  const InterpResult result = interp.run(root);

  std::printf("\n=== heap graph + environments (DOT) ===\n%s\n",
              to_dot(result.graph, result.envs).c_str());

  std::printf("=== paths ===\n");
  for (std::size_t i = 0; i < result.envs.size(); ++i) {
    const Env& env = result.envs[i];
    std::printf("path %zu (%s):\n", i + 1,
                env.status() == Env::Status::kRunning     ? "completed"
                : env.status() == Env::Status::kReturned ? "returned"
                                                          : "exited");
    for (const auto& [var, label] : env.map()) {
      std::printf("  $%s = %s\n", var.c_str(),
                  to_sexpr(result.graph, label).c_str());
    }
    std::printf("  reachability: %s\n",
                env.cur() == kNoLabel
                    ? "true"
                    : to_sexpr(result.graph, env.cur()).c_str());
  }

  std::printf("\n=== sinks ===\n");
  for (const SinkHit& sink : result.sinks) {
    std::printf("%s at %s\n  e_src = %s\n  e_dst = %s\n  reach = %s\n",
                sink.sink_name.c_str(), sources.describe(sink.loc).c_str(),
                to_sexpr(result.graph, sink.src).c_str(),
                to_sexpr(result.graph, sink.dst).c_str(),
                sink.reachability == kNoLabel
                    ? "true"
                    : to_sexpr(result.graph, sink.reachability).c_str());
  }
  return 0;
}
