// validate_sarif: structural SARIF 2.1.0 gate for CI.
//
//   $ ./build/examples/validate_sarif report.sarif [--require-result]
//                                                  [--require-codeflow]
//
// Reads one SARIF file and runs uchecker's structural validator over it
// (version/runs/tool spine, rule declarations, result locations,
// codeFlows, partialFingerprints — see support/sarif_export.h). With
// --require-result the file must additionally contain at least one
// result; with --require-codeflow at least one result must carry a
// codeFlow (i.e. the scan ran with --explain and produced provenance).
// Exit codes: 0 valid, 1 invalid (reason on stderr), 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "support/jsonlite.h"
#include "support/sarif_export.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.sarif> [--require-result] "
                 "[--require-codeflow]\n",
                 argv[0]);
    return 2;
  }
  bool require_result = false;
  bool require_codeflow = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-result") == 0) {
      require_result = true;
    } else if (std::strcmp(argv[i], "--require-codeflow") == 0) {
      require_codeflow = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::string error;
  if (!uchecker::sarif::structurally_valid(text, &error)) {
    std::fprintf(stderr, "invalid SARIF: %s\n", error.c_str());
    return 1;
  }

  if (require_result || require_codeflow) {
    const auto root = uchecker::jsonlite::parse(text);
    std::size_t results = 0;
    std::size_t codeflows = 0;
    const uchecker::jsonlite::Value* runs = root->find("runs");
    for (const uchecker::jsonlite::Value& run : runs->items()) {
      const uchecker::jsonlite::Value* rs = run.find("results");
      if (rs == nullptr) continue;
      results += rs->size();
      for (const uchecker::jsonlite::Value& result : rs->items()) {
        const uchecker::jsonlite::Value* flows = result.find("codeFlows");
        if (flows != nullptr && flows->size() > 0) ++codeflows;
      }
    }
    if (require_result && results == 0) {
      std::fprintf(stderr, "invalid SARIF: no results (--require-result)\n");
      return 1;
    }
    if (require_codeflow && codeflows == 0) {
      std::fprintf(stderr,
                   "invalid SARIF: no result carries a codeFlow "
                   "(--require-codeflow)\n");
      return 1;
    }
  }
  std::printf("%s: valid SARIF 2.1.0\n", argv[1]);
  return 0;
}
