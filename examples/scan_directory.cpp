// scan_directory: a uchecker command-line scanner for real PHP trees.
//
//   $ ./build/examples/scan_directory path/to/plugin [--all-findings]
//                                                    [--json]
//                                                    [--model-admin-gating]
//
// Recursively collects *.php (and *.module) files under the given
// directory, runs the full UChecker pipeline, and prints a report
// (human-readable by default, stable JSON with --json). This is the
// example to start from when embedding the library in CI.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/detector/detector.h"
#include "core/detector/report_io.h"

namespace fs = std::filesystem;
using namespace uchecker::core;

namespace {

bool is_php_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".php" || ext == ".module" || ext == ".inc";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <directory-or-file> [--all-findings] [--json] "
                 "[--model-admin-gating]\n",
                 argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  bool all_findings = false;
  bool json = false;
  bool admin_gating = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all-findings") == 0) all_findings = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--model-admin-gating") == 0) admin_gating = true;
  }

  Application app;
  app.name = root.string();
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    app.files.push_back(AppFile{root.filename().string(), read_file(root)});
  } else if (fs::is_directory(root, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
      if (entry.is_regular_file() && is_php_file(entry.path())) {
        app.files.push_back(
            AppFile{fs::relative(entry.path(), root, ec).string(),
                    read_file(entry.path())});
      }
    }
  } else {
    std::fprintf(stderr, "error: %s is not a file or directory\n",
                 root.string().c_str());
    return 2;
  }
  if (app.files.empty()) {
    std::fprintf(stderr, "error: no PHP files found under %s\n",
                 root.string().c_str());
    return 2;
  }

  ScanOptions options;
  options.vuln.stop_at_first_finding = !all_findings;
  options.locality.model_admin_gating = admin_gating;
  Detector detector(options);
  const ScanReport report = detector.scan(app);

  if (json) {
    std::printf("%s\n", to_json(report).c_str());
    return report.vulnerable() ? 1 : 0;
  }

  std::printf("scanned %zu file(s), %llu LoC; analyzed %.2f%% "
              "(%zu analysis root(s))\n",
              app.files.size(),
              static_cast<unsigned long long>(report.total_loc),
              report.analyzed_percent, report.roots);
  std::printf("symbolic execution: %zu paths, %zu objects, %.2f MB, %.3fs\n",
              report.paths, report.objects, report.memory_mb, report.seconds);
  if (report.parse_errors > 0) {
    std::printf("note: %zu parse error(s); analysis continued on the rest\n",
                report.parse_errors);
  }
  if (report.budget_exhausted) {
    std::printf("note: analysis budget exhausted; results are partial\n");
  }

  std::printf("\nverdict: %s\n",
              std::string(verdict_name(report.verdict)).c_str());
  for (const Finding& f : report.findings) {
    std::printf("\n  %s at %s\n", f.sink_name.c_str(), f.location.c_str());
    std::printf("    %s\n", f.source_line.c_str());
    std::printf("    exploitable when: %s\n", f.witness.c_str());
  }
  return report.vulnerable() ? 1 : 0;
}
