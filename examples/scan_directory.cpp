// scan_directory: a uchecker command-line scanner for real PHP trees.
//
//   $ ./build/examples/scan_directory path/to/plugin [--all-findings]
//                                                    [--json]
//                                                    [--model-admin-gating]
//                                                    [--timeout-ms N]
//
// Recursively collects *.php (and *.module) files under the given
// directory, runs the full UChecker pipeline, and prints a report
// (human-readable by default, stable JSON with --json). This is the
// example to start from when embedding the library in CI.
//
// Degradation behaviour: unreadable files are reported and skipped (the
// scan continues on the rest), and --timeout-ms bounds the whole scan in
// wall-clock time. Exit codes: 0 clean, 1 vulnerable, 2 usage error,
// 3 the scan itself failed (Verdict::kAnalysisError). Per-file read
// failures alone never change the exit code.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/detector/detector.h"
#include "core/detector/report_io.h"

namespace fs = std::filesystem;
using namespace uchecker::core;

namespace {

bool is_php_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".php" || ext == ".module" || ext == ".inc";
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <directory-or-file> [--all-findings] [--json] "
                 "[--model-admin-gating] [--timeout-ms N]\n",
                 argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  bool all_findings = false;
  bool json = false;
  bool admin_gating = false;
  long timeout_ms = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all-findings") == 0) all_findings = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--model-admin-gating") == 0) admin_gating = true;
    if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --timeout-ms needs a value\n");
        return 2;
      }
      timeout_ms = std::strtol(argv[++i], nullptr, 10);
      if (timeout_ms <= 0) {
        std::fprintf(stderr, "error: --timeout-ms needs a positive integer\n");
        return 2;
      }
    }
  }

  Application app;
  app.name = root.string();
  std::size_t unreadable = 0;
  const auto add_file = [&](const fs::path& path, std::string name) {
    std::string content;
    if (read_file(path, content)) {
      app.files.push_back(AppFile{std::move(name), std::move(content)});
    } else {
      // Degrade, don't die: a permission-denied or vanished file should
      // not cost the report for the rest of the tree.
      ++unreadable;
      std::fprintf(stderr, "warning: cannot read %s; skipping\n",
                   path.string().c_str());
    }
  };

  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    add_file(root, root.filename().string());
  } else if (fs::is_directory(root, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
      if (!is_php_file(entry.path())) continue;
      std::error_code sec;
      // Broken symlinks fail is_regular_file; route them through
      // add_file so they are warned about, not silently dropped.
      if (entry.is_regular_file(sec) || fs::is_symlink(entry.path(), sec)) {
        add_file(entry.path(), fs::relative(entry.path(), root, ec).string());
      }
    }
  } else {
    std::fprintf(stderr, "error: %s is not a file or directory\n",
                 root.string().c_str());
    return 2;
  }
  if (app.files.empty()) {
    std::fprintf(stderr, "error: no readable PHP files found under %s\n",
                 root.string().c_str());
    return 2;
  }

  ScanOptions options;
  options.vuln.stop_at_first_finding = !all_findings;
  options.locality.model_admin_gating = admin_gating;
  options.budget.time_limit = std::chrono::milliseconds(timeout_ms);
  Detector detector(options);
  const ScanReport report = detector.scan(app);

  const int exit_code = report.vulnerable()              ? 1
                        : report.verdict == Verdict::kAnalysisError ? 3
                                                                    : 0;
  if (json) {
    std::printf("%s\n", to_json(report).c_str());
    return exit_code;
  }

  std::printf("scanned %zu file(s), %llu LoC; analyzed %.2f%% "
              "(%zu analysis root(s))\n",
              app.files.size(),
              static_cast<unsigned long long>(report.total_loc),
              report.analyzed_percent, report.roots);
  if (unreadable > 0) {
    std::printf("note: %zu file(s) could not be read and were skipped\n",
                unreadable);
  }
  std::printf("symbolic execution: %zu paths, %zu objects, %.2f MB, %.3fs\n",
              report.paths, report.objects, report.memory_mb, report.seconds);
  if (report.parse_errors > 0) {
    std::printf("note: %zu parse error(s); analysis continued on the rest\n",
                report.parse_errors);
  }
  if (report.analysis_errors > 0) {
    std::printf("note: %zu analysis diagnostic(s)\n", report.analysis_errors);
  }
  if (report.budget_exhausted) {
    std::printf("note: analysis budget exhausted; results are partial\n");
  }
  if (report.deadline_exceeded) {
    std::printf("note: scan deadline exceeded; results are partial\n");
  }
  if (report.solver_retries > 0) {
    std::printf("note: %zu solver retr%s with escalated timeouts\n",
                report.solver_retries,
                report.solver_retries == 1 ? "y" : "ies");
  }
  for (const ScanError& e : report.errors) {
    std::printf("error: [%s] %s%s%s%s\n", e.phase.c_str(), e.root.c_str(),
                e.root.empty() ? "" : ": ", e.message.c_str(),
                e.transient ? " (transient)" : "");
  }

  std::printf("\nverdict: %s\n",
              std::string(verdict_name(report.verdict)).c_str());
  for (const Finding& f : report.findings) {
    std::printf("\n  %s at %s\n", f.sink_name.c_str(), f.location.c_str());
    std::printf("    %s\n", f.source_line.c_str());
    std::printf("    exploitable when: %s\n", f.witness.c_str());
  }
  return exit_code;
}
