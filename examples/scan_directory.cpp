// scan_directory: a uchecker command-line scanner for real PHP trees.
//
//   $ ./build/examples/scan_directory path/to/plugin [--all-findings]
//                                                    [--json]
//                                                    [--model-admin-gating]
//                                                    [--timeout-ms N]
//                                                    [--lint]
//                                                    [--no-prefilter]
//                                                    [--no-summaries]
//                                                    [--crosscheck]
//                                                    [--fail-on-lint=SEV]
//                                                    [--trace-out=FILE]
//                                                    [--metrics-out=FILE]
//                                                    [--sarif-out=FILE]
//                                                    [--profile-out=FILE]
//                                                    [--explain]
//                                                    [--quiet | -v]
//
// Recursively collects *.php (and *.module) files under the given
// directory, runs the full UChecker pipeline, and prints a report
// (human-readable by default, stable JSON with --json). This is the
// example to start from when embedding the library in CI.
//
// Observability: --trace-out writes the scan's span tree (all pipeline
// phases, per-root children, solver calls, interpreter progress samples)
// as Chrome trace-event JSON — load it in Perfetto or chrome://tracing.
// --metrics-out writes the metrics registry plus the per-phase latency
// breakdown as JSON. Verbosity is routed through the telemetry event
// sink: --quiet suppresses warnings/notes, -v additionally logs
// structured progress (one JSON object per event) to stderr.
//
// Introspection: --profile-out enables the path-explosion profiler and
// writes its JSON (support/profile.h schema) to FILE: per root, the
// fork sites ranked by paths spawned, solver attribution per sink, heap
// growth by fork depth, and — for a root that died of budget/deadline —
// a post-mortem naming the dominant loop. Verdicts are identical with
// or without it; the report itself stays byte-identical.
//
// Triage: --explain attaches provenance to every finding — the
// source→sink taint path (each hop anchored to file:line), the path's
// branch guards, and the decoded attack (upload filename + resolved
// destination). Verdicts are identical with or without it. --sarif-out
// writes the report as SARIF 2.1.0 (findings as rule UC001 with
// codeFlows when --explain is also given; lints as UC101..UC106) for
// GitHub code scanning and other SARIF consumers.
//
// Static pass: --lint prints the pre-symbolic pass's structured lint
// findings (UC101..UC108) in the text report; --no-prefilter disables
// the taint pre-filter so every root runs symbolically; --no-summaries
// disables the inter-procedural summary layer (verdicts are unchanged;
// only pruning and UC107/UC108 lints differ); --crosscheck
// runs both engines on every root and reports any disagreement (a
// soundness oracle for CI). --fail-on-lint=info|warning|error makes an
// otherwise-clean scan exit non-zero when a lint at or above the given
// severity fired.
//
// Degradation behaviour: unreadable files are reported and skipped (the
// scan continues on the rest), and --timeout-ms bounds the whole scan in
// wall-clock time. Exit codes: 0 clean, 1 vulnerable, 2 usage error,
// 3 the scan itself failed (Verdict::kAnalysisError), 4 the engines
// disagreed under --crosscheck, 5 --fail-on-lint tripped on an
// otherwise-clean scan. Per-file read failures alone never change the
// exit code.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/detector/detector.h"
#include "core/detector/report_io.h"
#include "support/strutil.h"
#include "support/telemetry.h"
#include "support/trace_export.h"

namespace fs = std::filesystem;
using namespace uchecker::core;

namespace {

enum class Verbosity { kQuiet, kNormal, kVerbose };

// All diagnostics-to-the-operator flow through here (not ad-hoc
// fprintf): quiet drops them, normal prints plain text to stderr, and
// verbose routes a structured JSON line through the telemetry sink.
struct EventLog {
  Verbosity verbosity = Verbosity::kNormal;
  uchecker::telemetry::Telemetry* telemetry = nullptr;

  void warn(const std::string& event, const std::string& detail,
            const std::string& plain) const {
    if (verbosity == Verbosity::kQuiet) return;
    if (verbosity == Verbosity::kVerbose && telemetry != nullptr) {
      telemetry->emit_progress(
          "{\"event\": " + uchecker::strutil::quote(event) +
          ", \"detail\": " + uchecker::strutil::quote(detail) + "}");
      return;
    }
    std::fprintf(stderr, "%s\n", plain.c_str());
  }
};

bool is_php_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".php" || ext == ".module" || ext == ".inc";
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  out = buffer.str();
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

// Accepts "--flag=value" or "--flag value"; returns true and fills
// `value` when argv[i] matches `flag`.
bool flag_with_value(int argc, char** argv, int& i, const char* flag,
                     std::string& value) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, len) != 0) return false;
  if (argv[i][len] == '=') {
    value = argv[i] + len + 1;
    return true;
  }
  if (argv[i][len] == '\0' && i + 1 < argc) {
    value = argv[++i];
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <directory-or-file> [--all-findings] [--json] "
                 "[--model-admin-gating] [--timeout-ms N] [--lint] "
                 "[--no-prefilter] [--no-summaries] [--crosscheck] "
                 "[--fail-on-lint=SEV] "
                 "[--trace-out=FILE] [--metrics-out=FILE] [--sarif-out=FILE] "
                 "[--profile-out=FILE] [--explain] [--quiet] [-v]\n",
                 argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  bool all_findings = false;
  bool json = false;
  bool admin_gating = false;
  bool show_lints = false;
  bool no_prefilter = false;
  bool no_summaries = false;
  bool crosscheck = false;
  bool fail_on_lint = false;
  staticpass::Severity fail_severity =
      staticpass::Severity::kError;
  bool explain = false;
  long timeout_ms = 0;
  std::string trace_out;
  std::string metrics_out;
  std::string sarif_out;
  std::string profile_out;
  Verbosity verbosity = Verbosity::kNormal;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all-findings") == 0) all_findings = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--model-admin-gating") == 0) admin_gating = true;
    if (std::strcmp(argv[i], "--lint") == 0) show_lints = true;
    if (std::strcmp(argv[i], "--no-prefilter") == 0) no_prefilter = true;
    if (std::strcmp(argv[i], "--no-summaries") == 0) no_summaries = true;
    if (std::strcmp(argv[i], "--crosscheck") == 0) crosscheck = true;
    std::string severity_arg;
    if (flag_with_value(argc, argv, i, "--fail-on-lint", severity_arg)) {
      const auto parsed = staticpass::parse_severity(severity_arg);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "error: --fail-on-lint needs info, warning or error\n");
        return 2;
      }
      fail_on_lint = true;
      fail_severity = *parsed;
    }
    if (std::strcmp(argv[i], "--quiet") == 0 || std::strcmp(argv[i], "-q") == 0) {
      verbosity = Verbosity::kQuiet;
    }
    if (std::strcmp(argv[i], "-v") == 0 ||
        std::strcmp(argv[i], "--verbose") == 0) {
      verbosity = Verbosity::kVerbose;
    }
    if (std::strcmp(argv[i], "--explain") == 0) explain = true;
    flag_with_value(argc, argv, i, "--trace-out", trace_out);
    flag_with_value(argc, argv, i, "--metrics-out", metrics_out);
    flag_with_value(argc, argv, i, "--sarif-out", sarif_out);
    flag_with_value(argc, argv, i, "--profile-out", profile_out);
    if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --timeout-ms needs a value\n");
        return 2;
      }
      timeout_ms = std::strtol(argv[++i], nullptr, 10);
      if (timeout_ms <= 0) {
        std::fprintf(stderr, "error: --timeout-ms needs a positive integer\n");
        return 2;
      }
    }
  }

  // Telemetry is attached when anything consumes it: an export file or
  // verbose structured logging. Otherwise the scan runs on the
  // zero-overhead path.
  uchecker::telemetry::Telemetry telemetry;
  const bool want_telemetry = !trace_out.empty() || !metrics_out.empty() ||
                              verbosity == Verbosity::kVerbose;
  if (verbosity == Verbosity::kVerbose) {
    telemetry.set_progress_sink([](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    });
  }

  EventLog log{verbosity, want_telemetry ? &telemetry : nullptr};

  Application app;
  app.name = root.string();
  std::size_t unreadable = 0;
  const auto add_file = [&](const fs::path& path, std::string name) {
    std::string content;
    if (read_file(path, content)) {
      app.files.push_back(AppFile{std::move(name), std::move(content)});
    } else {
      // Degrade, don't die: a permission-denied or vanished file should
      // not cost the report for the rest of the tree.
      ++unreadable;
      log.warn("file_unreadable", path.string(),
               "warning: cannot read " + path.string() + "; skipping");
    }
  };

  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    add_file(root, root.filename().string());
  } else if (fs::is_directory(root, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
      if (!is_php_file(entry.path())) continue;
      std::error_code sec;
      // Broken symlinks fail is_regular_file; route them through
      // add_file so they are warned about, not silently dropped.
      if (entry.is_regular_file(sec) || fs::is_symlink(entry.path(), sec)) {
        add_file(entry.path(), fs::relative(entry.path(), root, ec).string());
      }
    }
  } else {
    std::fprintf(stderr, "error: %s is not a file or directory\n",
                 root.string().c_str());
    return 2;
  }
  if (app.files.empty()) {
    std::fprintf(stderr, "error: no readable PHP files found under %s\n",
                 root.string().c_str());
    return 2;
  }

  ScanOptions options;
  options.vuln.stop_at_first_finding = !all_findings;
  options.locality.model_admin_gating = admin_gating;
  options.prefilter = !no_prefilter;
  options.summaries = !no_summaries;
  options.crosscheck = crosscheck;
  options.explain = explain;
  options.budget.time_limit = std::chrono::milliseconds(timeout_ms);
  options.profile = !profile_out.empty();
  if (want_telemetry) options.telemetry = &telemetry;
  Detector detector(options);
  const ScanReport report = detector.scan(app);

  if (verbosity == Verbosity::kVerbose) {
    telemetry.emit_progress(
        "{\"event\": \"app_done\", \"app\": " +
        uchecker::strutil::quote(report.app_name) + ", \"verdict\": \"" +
        std::string(verdict_slug(report.verdict)) +
        "\", \"seconds\": " + std::to_string(report.seconds) + "}");
  }
  if (!trace_out.empty()) {
    // A profiled scan's trace additionally carries per-root fork-site
    // counter tracks (the overload folds the profile in).
    const std::string trace_json =
        report.profiled
            ? to_chrome_trace_json(telemetry, report.profile)
            : to_chrome_trace_json(telemetry);
    if (!write_file(trace_out, trace_json)) {
      log.warn("trace_write_failed", trace_out,
               "warning: cannot write trace to " + trace_out);
    }
  }
  if (!profile_out.empty() &&
      !write_file(profile_out, uchecker::profile::to_json(report.profile))) {
    log.warn("profile_write_failed", profile_out,
             "warning: cannot write profile to " + profile_out);
  }
  if (!metrics_out.empty() &&
      !write_file(metrics_out, metrics_to_json(telemetry))) {
    log.warn("metrics_write_failed", metrics_out,
             "warning: cannot write metrics to " + metrics_out);
  }
  if (!sarif_out.empty() &&
      !write_file(sarif_out, uchecker::sarif::to_json(to_sarif(report)))) {
    log.warn("sarif_write_failed", sarif_out,
             "warning: cannot write SARIF to " + sarif_out);
  }

  bool lint_tripped = false;
  if (fail_on_lint) {
    for (const auto& l : report.lints) {
      if (l.severity >= fail_severity) lint_tripped = true;
    }
  }
  int exit_code = 0;
  if (report.vulnerable()) {
    exit_code = 1;
  } else if (report.verdict == Verdict::kAnalysisError) {
    exit_code = 3;
  } else if (report.verdict == Verdict::kAnalysisDisagreement) {
    exit_code = 4;
  } else if (lint_tripped) {
    exit_code = 5;
  }
  if (json) {
    std::printf("%s\n", to_json(report).c_str());
    return exit_code;
  }

  const bool chatty = verbosity != Verbosity::kQuiet;
  if (chatty) {
    std::printf("scanned %zu file(s), %llu LoC; analyzed %.2f%% "
                "(%zu analysis root(s))\n",
                app.files.size(),
                static_cast<unsigned long long>(report.total_loc),
                report.analyzed_percent, report.roots);
    if (unreadable > 0) {
      std::printf("note: %zu file(s) could not be read and were skipped\n",
                  unreadable);
    }
    std::printf("symbolic execution: %zu paths, %zu objects, %.2f MB, %.3fs\n",
                report.paths, report.objects, report.memory_mb, report.seconds);
    if (report.parse_errors > 0) {
      std::printf("note: %zu parse error(s); analysis continued on the rest\n",
                  report.parse_errors);
    }
    if (report.analysis_errors > 0) {
      std::printf("note: %zu analysis diagnostic(s)\n", report.analysis_errors);
    }
    if (report.budget_exhausted) {
      std::printf("note: analysis budget exhausted; results are partial\n");
    }
    if (report.deadline_exceeded) {
      std::printf("note: scan deadline exceeded; results are partial\n");
    }
    if (report.profiled) {
      for (const auto& rp : report.profile.roots) {
        if (!rp.post_mortem.has_value()) continue;
        std::printf("note: root %s incomplete (%s) at %llu live paths%s%s\n",
                    rp.root.c_str(), rp.post_mortem->reason.c_str(),
                    static_cast<unsigned long long>(rp.post_mortem->peak_paths),
                    rp.post_mortem->dominant_loop.empty()
                        ? ""
                        : "; dominant loop ",
                    rp.post_mortem->dominant_loop.c_str());
      }
    }
    if (report.solver_retries > 0) {
      std::printf("note: %zu solver retr%s with escalated timeouts\n",
                  report.solver_retries,
                  report.solver_retries == 1 ? "y" : "ies");
    }
  }
  for (const ScanError& e : report.errors) {
    std::printf("error: [%s] %s%s%s%s\n", e.phase.c_str(), e.root.c_str(),
                e.root.empty() ? "" : ": ", e.message.c_str(),
                e.transient ? " (transient)" : "");
  }
  for (const ScanError& e : report.disagreements) {
    std::printf("disagreement: %s: %s\n", e.root.c_str(), e.message.c_str());
  }
  if (show_lints) {
    for (const auto& l : report.lints) {
      std::printf("lint: [%s/%s] %s: %s\n", l.rule.c_str(),
                  std::string(staticpass::severity_name(l.severity))
                      .c_str(),
                  l.location.c_str(), l.message.c_str());
      if (!l.evidence.empty()) std::printf("      %s\n", l.evidence.c_str());
    }
    if (chatty && report.pruned_roots > 0) {
      std::printf("note: static pass pruned %zu of %zu root(s) before "
                  "symbolic execution (%zu via function summaries)\n",
                  report.pruned_roots, report.roots,
                  report.summary_pruned_roots);
    }
    if (chatty && (report.summary_cache_hits > 0 || report.escaped_calls > 0)) {
      std::printf("note: function summaries: %zu memoized instantiation "
                  "hit(s), %zu escaped call site(s)\n",
                  report.summary_cache_hits, report.escaped_calls);
    }
  }

  std::printf("%sverdict: %s\n", chatty ? "\n" : "",
              std::string(verdict_name(report.verdict)).c_str());
  for (const Finding& f : report.findings) {
    std::printf("\n  %s at %s\n", f.sink_name.c_str(), f.location.c_str());
    std::printf("    %s\n", f.source_line.c_str());
    std::printf("    exploitable when: %s\n", f.witness.c_str());
    std::printf("    fingerprint: %s\n", f.fingerprint.c_str());
    const FindingEvidence& ev = f.evidence;
    if (ev.empty()) continue;
    if (!ev.taint_path.empty()) {
      std::printf("    taint path:\n");
      for (const EvidenceHop& hop : ev.taint_path) {
        std::printf("      %-8s %s%s%s%s\n", hop.kind.c_str(),
                    hop.description.c_str(), hop.location.empty() ? "" : "  [",
                    hop.location.c_str(), hop.location.empty() ? "" : "]");
      }
    }
    if (!ev.guards.empty()) {
      std::printf("    guarded by:\n");
      for (const EvidenceGuard& g : ev.guards) {
        std::printf("      %s%s%s%s\n", g.sexpr.c_str(),
                    g.location.empty() ? "" : "  [", g.location.c_str(),
                    g.location.empty() ? "" : "]");
      }
    }
    if (!ev.upload_filename.empty()) {
      std::printf("    attack: upload \"%s\" -> written to \"%s\"%s\n",
                  ev.upload_filename.c_str(), ev.destination.c_str(),
                  ev.destination_complete ? "" : " (partially resolved)");
    }
  }
  return exit_code;
}
