// scanctl: command-line client for the scand daemon.
//
//   $ scanctl --socket /run/uchecker.sock ping
//   $ scanctl --socket /run/uchecker.sock scan path/to/plugin [--sarif]
//   $ scanctl --socket /run/uchecker.sock status
//   $ scanctl --socket /run/uchecker.sock shutdown
//
// Sends one request line (protocol in src/service/scan_server.h),
// prints the one-line JSON response to stdout, and maps it to an exit
// code CI can branch on:
//
//   0  ok (scan: not vulnerable)      3  analysis error / server error
//   1  scan: vulnerable               6  overloaded (queue full; retry)
//   2  usage / cannot connect
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "support/jsonlite.h"
#include "support/strutil.h"

using namespace uchecker;

namespace {

int connect_to(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads up to (and including) the first newline.
bool recv_line(int fd, std::string& line) {
  line.clear();
  char c = 0;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) return !line.empty();
    if (c == '\n') return true;
    line.push_back(c);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string op;
  std::string scan_path;
  bool sarif = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--socket", 8) == 0) {
      if (argv[i][8] == '=') {
        socket_path = argv[i] + 9;
      } else if (i + 1 < argc) {
        socket_path = argv[++i];
      }
    } else if (std::strcmp(argv[i], "--sarif") == 0) {
      sarif = true;
    } else if (op.empty()) {
      op = argv[i];
    } else if (scan_path.empty()) {
      scan_path = argv[i];
    }
  }
  const bool usage_ok =
      !socket_path.empty() &&
      (op == "ping" || op == "status" || op == "shutdown" ||
       (op == "scan" && !scan_path.empty()));
  if (!usage_ok) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH ping|status|shutdown|scan DIR "
                 "[--sarif]\n",
                 argv[0]);
    return 2;
  }

  std::string request = "{\"op\": " + strutil::quote(op);
  if (op == "scan") {
    request += ", \"path\": " + strutil::quote(scan_path);
    if (sarif) request += ", \"format\": \"sarif\"";
  }
  request += "}\n";

  const int fd = connect_to(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    return 2;
  }
  std::string response;
  const bool io_ok = send_all(fd, request) && recv_line(fd, response);
  ::close(fd);
  if (!io_ok) {
    std::fprintf(stderr, "error: no response from %s\n", socket_path.c_str());
    return 2;
  }
  std::printf("%s\n", response.c_str());

  const auto parsed = jsonlite::parse(response);
  if (!parsed.has_value() || !parsed->is_object()) return 3;
  const jsonlite::Value* status = parsed->find("status");
  if (status == nullptr || !status->is_string()) return 3;
  if (status->str() == "overloaded") return 6;
  if (status->str() != "ok") return 3;
  if (op == "scan") {
    // Mirrors scan_directory's exit codes so CI can compare them 1:1.
    const jsonlite::Value* verdict = parsed->find("verdict");
    if (verdict == nullptr || !verdict->is_string()) return 3;
    if (verdict->str() == "vulnerable") return 1;
    if (verdict->str() == "analysis_error") return 3;
    if (verdict->str() == "analysis_disagreement") return 4;
    return 0;  // not_vulnerable / analysis_incomplete (partial, like batch)
  }
  return 0;
}
