// scanctl: command-line client for the scand daemon.
//
//   $ scanctl --socket /run/uchecker.sock ping
//   $ scanctl --socket /run/uchecker.sock scan path/to/plugin [--sarif]
//       [--trace-id ID]
//   $ scanctl --socket /run/uchecker.sock status
//   $ scanctl --socket /run/uchecker.sock metrics
//   $ scanctl --socket /run/uchecker.sock top [--n N] [--watch SECONDS]
//   $ scanctl --socket /run/uchecker.sock profile [--n N]
//   $ scanctl --socket /run/uchecker.sock shutdown
//   $ scanctl --version
//
// Sends one request line (protocol in src/service/scan_server.h),
// prints the one-line JSON response to stdout, and maps it to an exit
// code CI can branch on:
//
//   0  ok (scan: not vulnerable)      3  analysis error / server error
//   1  scan: vulnerable               6  overloaded (queue full; retry)
//   2  usage / cannot connect
//
// Trace IDs: every scan request carries one. --trace-id passes the
// caller's (e.g. a CI job ID hashed to 16 hex chars); otherwise scanctl
// mints a random one and prints it as part of the response — grep the
// daemon's log, trace and metrics exemplars for it to reconstruct the
// request end-to-end.
//
// `metrics` prints the raw Prometheus text exposition (not the JSON
// envelope), so `scanctl metrics > /metrics.prom` is directly
// scrape-shaped. `top` renders the most expensive recent requests as a
// table; --watch re-queries every N seconds until interrupted.
// `profile` renders the engine-introspection profiles of the last
// profiled scans (daemon run with --profile): per root, the fork sites
// ranked by paths spawned, solver attribution, and — for incomplete
// roots — the budget post-mortem's dominant loop.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "core/detector/detector.h"
#include "support/jsonlite.h"
#include "support/store.h"
#include "support/strutil.h"

using namespace uchecker;

namespace {

int connect_to(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads up to (and including) the first newline.
bool recv_line(int fd, std::string& line) {
  line.clear();
  char c = 0;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) return !line.empty();
    if (c == '\n') return true;
    line.push_back(c);
  }
}

// 16 lowercase hex chars from /dev/urandom; falls back to an FNV mix of
// time and pid when that cannot be read (trace IDs label, they never
// key, so the fallback's weaker uniqueness is fine).
std::string mint_trace_id() {
  std::uint64_t bits = 0;
  std::ifstream urandom("/dev/urandom", std::ios::binary);
  if (urandom.read(reinterpret_cast<char*>(&bits), sizeof(bits)) &&
      bits != 0) {
    return store::hex64(bits);
  }
  std::uint64_t h = store::fnv1a64(std::to_string(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  h = store::fnv1a64(std::to_string(static_cast<long long>(::getpid())), h);
  return store::hex64(h);
}

// One round trip: connect, send `request` (newline-terminated), read the
// one-line response. Returns false on any socket failure.
bool round_trip(const std::string& socket_path, const std::string& request,
                std::string& response) {
  const int fd = connect_to(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    return false;
  }
  const bool io_ok = send_all(fd, request) && recv_line(fd, response);
  ::close(fd);
  if (!io_ok) {
    std::fprintf(stderr, "error: no response from %s\n", socket_path.c_str());
  }
  return io_ok;
}

void print_top_table(const jsonlite::Value& parsed) {
  const jsonlite::Value* requests = parsed.find("requests");
  if (requests == nullptr || !requests->is_array()) return;
  std::printf("%9s %9s %9s %6s %-20s %-16s %s\n", "TOTAL_MS", "INTERP_MS",
              "SOLVE_MS", "CACHED", "VERDICT", "TRACE", "APP (top root)");
  for (const jsonlite::Value& r : requests->items()) {
    const auto str = [&r](const char* key) {
      const jsonlite::Value* v = r.find(key);
      return v != nullptr && v->is_string() ? v->str() : std::string();
    };
    const auto num = [&r](const char* key) {
      const jsonlite::Value* v = r.find(key);
      return v != nullptr && v->is_number() ? v->number() : 0.0;
    };
    const jsonlite::Value* cached = r.find("cached");
    std::string app = str("app");
    const std::string top_root = str("top_root");
    if (!top_root.empty()) app += " (" + top_root + ")";
    std::printf("%9.1f %9.1f %9.1f %6s %-20s %-16s %s\n", num("total_ms"),
                num("interp_ms"), num("solve_ms"),
                (cached != nullptr && cached->is_bool() && cached->boolean())
                    ? "yes"
                    : "no",
                str("verdict").c_str(), str("trace_id").c_str(), app.c_str());
  }
}

// Renders a `profile` response: one block per remembered scan, fork
// sites ranked as the daemon ranked them (paths spawned desc).
void print_profile_table(const jsonlite::Value& parsed) {
  const jsonlite::Value* scans = parsed.find("scans");
  if (scans == nullptr || !scans->is_array()) return;
  const auto str = [](const jsonlite::Value& obj, const char* key) {
    const jsonlite::Value* v = obj.find(key);
    return v != nullptr && v->is_string() ? v->str() : std::string();
  };
  const auto num = [](const jsonlite::Value& obj, const char* key) {
    const jsonlite::Value* v = obj.find(key);
    return v != nullptr && v->is_number() ? v->number() : 0.0;
  };
  bool any = false;
  for (const jsonlite::Value& scan : scans->items()) {
    any = true;
    std::printf("%s  verdict=%s  trace=%s\n", str(scan, "app").c_str(),
                str(scan, "verdict").c_str(), str(scan, "trace_id").c_str());
    const jsonlite::Value* profile = scan.find("profile");
    const jsonlite::Value* roots =
        profile != nullptr ? profile->find("roots") : nullptr;
    if (roots == nullptr || !roots->is_array()) continue;
    for (const jsonlite::Value& root : roots->items()) {
      const jsonlite::Value* incomplete = root.find("incomplete");
      const bool is_incomplete = incomplete != nullptr &&
                                 incomplete->is_bool() &&
                                 incomplete->boolean();
      std::printf("  root %s  peak_paths=%.0f%s%s\n",
                  str(root, "root").c_str(), num(root, "peak_paths"),
                  is_incomplete ? "  INCOMPLETE: " : "",
                  is_incomplete ? str(root, "reason").c_str() : "");
      if (const jsonlite::Value* pm = root.find("post_mortem")) {
        const std::string loop = str(*pm, "dominant_loop");
        if (!loop.empty()) {
          std::printf("    dominant loop: %s\n", loop.c_str());
        }
      }
      const jsonlite::Value* sites = root.find("fork_sites");
      if (sites == nullptr || !sites->is_array()) continue;
      std::size_t shown = 0;
      for (const jsonlite::Value& site : sites->items()) {
        if (++shown > 10) break;
        std::printf("    %10.0f paths (%6.0f self, %5.0f visits)  "
                    "%-8s %-12s %s\n",
                    num(site, "paths_spawned"), num(site, "self_paths"),
                    num(site, "visits"), str(site, "kind").c_str(),
                    str(site, "detail").c_str(), str(site, "site").c_str());
      }
    }
  }
  if (!any) {
    std::printf("no profiled scans yet (run scand with --profile)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string op;
  std::string scan_path;
  std::string trace_id;
  bool sarif = false;
  long top_n = 10;
  long watch_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", std::string(core::kEngineVersion).c_str());
      return 0;
    } else if (std::strncmp(argv[i], "--socket", 8) == 0) {
      if (argv[i][8] == '=') {
        socket_path = argv[i] + 9;
      } else if (i + 1 < argc) {
        socket_path = argv[++i];
      }
    } else if (std::strncmp(argv[i], "--trace-id", 10) == 0) {
      if (argv[i][10] == '=') {
        trace_id = argv[i] + 11;
      } else if (i + 1 < argc) {
        trace_id = argv[++i];
      }
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      top_n = std::strtol(argv[++i], nullptr, 10);
      if (top_n <= 0) top_n = 10;
    } else if (std::strcmp(argv[i], "--watch") == 0 && i + 1 < argc) {
      watch_seconds = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--sarif") == 0) {
      sarif = true;
    } else if (op.empty()) {
      op = argv[i];
    } else if (scan_path.empty()) {
      scan_path = argv[i];
    }
  }
  const bool usage_ok =
      !socket_path.empty() &&
      (op == "ping" || op == "status" || op == "shutdown" ||
       op == "metrics" || op == "top" || op == "profile" ||
       (op == "scan" && !scan_path.empty()));
  if (!usage_ok) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH "
                 "ping|status|metrics|shutdown|scan DIR|top|profile "
                 "[--sarif] [--trace-id ID] [--n N] [--watch SECONDS] "
                 "| %s --version\n",
                 argv[0], argv[0]);
    return 2;
  }

  std::string request = "{\"op\": " + strutil::quote(op);
  if (op == "scan") {
    // Every scan is traceable: use the caller's ID or mint one here, so
    // the daemon-side log/trace/exemplar correlation never has a gap.
    if (trace_id.empty()) trace_id = mint_trace_id();
    request += ", \"path\": " + strutil::quote(scan_path);
    request += ", \"trace_id\": " + strutil::quote(trace_id);
    if (sarif) request += ", \"format\": \"sarif\"";
  } else if (op == "top" || op == "profile") {
    request += ", \"n\": " + std::to_string(top_n);
  }
  request += "}\n";

  // `top --watch N` is a live view: re-query until interrupted.
  while (true) {
    std::string response;
    if (!round_trip(socket_path, request, response)) return 2;

    const auto parsed = jsonlite::parse(response);
    if (!parsed.has_value() || !parsed->is_object()) return 3;
    const jsonlite::Value* status = parsed->find("status");
    if (status == nullptr || !status->is_string()) return 3;
    if (status->str() == "overloaded") {
      std::printf("%s\n", response.c_str());
      return 6;
    }
    if (status->str() != "ok") {
      std::printf("%s\n", response.c_str());
      return 3;
    }

    if (op == "metrics") {
      // Print the exposition itself, scrape-shaped, not the envelope.
      const jsonlite::Value* metrics = parsed->find("metrics");
      if (metrics == nullptr || !metrics->is_string()) return 3;
      std::fputs(metrics->str().c_str(), stdout);
    } else if (op == "top") {
      if (watch_seconds > 0) std::printf("\033[2J\033[H");
      print_top_table(*parsed);
    } else if (op == "profile") {
      print_profile_table(*parsed);
    } else {
      std::printf("%s\n", response.c_str());
    }

    if (op == "scan") {
      // Mirrors scan_directory's exit codes so CI can compare them 1:1.
      const jsonlite::Value* verdict = parsed->find("verdict");
      if (verdict == nullptr || !verdict->is_string()) return 3;
      if (verdict->str() == "vulnerable") return 1;
      if (verdict->str() == "analysis_error") return 3;
      if (verdict->str() == "analysis_disagreement") return 4;
      return 0;  // not_vulnerable / analysis_incomplete (partial, like batch)
    }
    if (op != "top" || watch_seconds <= 0) return 0;
    std::this_thread::sleep_for(std::chrono::seconds(watch_seconds));
  }
}
