// Quickstart: scan one PHP snippet with the public Detector API and
// print the verdict with full source-level detail.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/detector/detector.h"

int main() {
  using namespace uchecker::core;

  // The vulnerable example of the paper's Listing 4: the uploaded file's
  // client-supplied name is used as the destination without validation.
  Application app;
  app.name = "quickstart-demo";
  app.files.push_back(AppFile{"upload.php", R"php(<?php
$path_array = wp_upload_dir();
$pathAndName = $path_array['path'] . "/" . $_FILES['upload_file']['name'];
if (strlen($_FILES['upload_file']['name']) > 5) {
    move_uploaded_file($_FILES['upload_file']['tmp_name'], $pathAndName);
}
)php"});

  Detector detector;
  const ScanReport report = detector.scan(app);

  std::printf("application : %s\n", report.app_name.c_str());
  std::printf("verdict     : %s\n",
              std::string(verdict_name(report.verdict)).c_str());
  std::printf("LoC         : %llu (%.1f%% symbolically executed)\n",
              static_cast<unsigned long long>(report.total_loc),
              report.analyzed_percent);
  std::printf("paths       : %zu, objects: %zu (%.1f objects/path)\n",
              report.paths, report.objects, report.objects_per_path);
  std::printf("solver calls: %zu, time: %.3fs\n\n", report.solver_calls,
              report.seconds);

  for (const Finding& f : report.findings) {
    std::printf("FINDING: unrestricted file upload via %s\n",
                f.sink_name.c_str());
    std::printf("  at      %s\n", f.location.c_str());
    std::printf("  code    %s\n", f.source_line.c_str());
    std::printf("  e_dst   %s\n", f.dst_sexpr.c_str());
    std::printf("  reach   %s\n", f.reach_sexpr.c_str());
    std::printf("  witness %s\n", f.witness.c_str());
  }
  return report.vulnerable() ? 0 : 1;
}
