// audit_report: runs UChecker and both baselines over the whole
// reconstructed corpus and prints an auditor-style report: per-app
// verdicts with precise source locations and full finding provenance
// (source→sink taint path, branch guards, decoded attack), aggregate
// precision/recall for all three tools, and a fleet-level per-phase
// latency table (p50/p95/p99 wall time per pipeline phase, from scan
// telemetry), and an explosion-hotspots table: the corpus-wide fork
// sites that spawned the most execution paths (with the budget
// post-mortem of any root that died incomplete — the Cimy FN explained
// in one table).
//
//   $ ./build/examples/audit_report
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/rips.h"
#include "baselines/wap.h"
#include "core/detector/detector.h"
#include "corpus/corpus.h"
#include "support/telemetry.h"

using namespace uchecker;
using namespace uchecker::core;

namespace {

struct Counts {
  int tp = 0, fp = 0, fn = 0, tn = 0;

  void add(bool truth, bool flagged) {
    if (truth && flagged) ++tp;
    if (truth && !flagged) ++fn;
    if (!truth && flagged) ++fp;
    if (!truth && !flagged) ++tn;
  }
  [[nodiscard]] double precision() const {
    return tp + fp == 0 ? 0.0 : 100.0 * tp / (tp + fp);
  }
  [[nodiscard]] double recall() const {
    return tp + fn == 0 ? 0.0 : 100.0 * tp / (tp + fn);
  }
};

}  // namespace

int main() {
  uchecker::telemetry::Telemetry telemetry;
  ScanOptions scan_options;
  scan_options.telemetry = &telemetry;
  scan_options.explain = true;  // auditors want the full provenance
  scan_options.profile = true;  // ...and the explosion hotspots
  Detector uchecker_scanner(scan_options);
  baselines::RipsScanner rips;
  baselines::WapScanner wap;

  Counts cu, cr, cw;
  std::map<std::string, std::size_t> lints_by_rule;
  std::size_t total_roots = 0;
  std::size_t total_pruned = 0;
  // (app, root) cost rows across the whole corpus, for the
  // most-expensive-roots table at the end.
  struct RootRow {
    std::string app;
    RootCost cost;
  };
  std::vector<RootRow> root_rows;
  // Corpus-wide fork-site rows for the explosion-hotspots table, plus
  // the post-mortems of every root that ended incomplete.
  struct SiteRow {
    std::string app;
    std::string root;
    profile::ForkSiteStats site;
  };
  std::vector<SiteRow> site_rows;
  struct MortemRow {
    std::string app;
    std::string root;
    profile::PostMortem mortem;
  };
  std::vector<MortemRow> mortem_rows;
  std::printf("=== UChecker audit of the reconstructed DSN'19 corpus ===\n\n");
  for (const corpus::CorpusEntry& entry : corpus::full_corpus()) {
    const ScanReport report = uchecker_scanner.scan(entry.app);
    for (const staticpass::LintFinding& l : report.lints) {
      ++lints_by_rule[l.rule + " (" +
                      std::string(staticpass::severity_name(l.severity)) +
                      ")"];
    }
    total_roots += report.roots;
    total_pruned += report.pruned_roots;
    for (const RootCost& rc : report.root_costs) {
      if (!rc.pruned) root_rows.push_back(RootRow{entry.app.name, rc});
    }
    for (const profile::RootProfile& rp : report.profile.roots) {
      for (const profile::ForkSiteStats& site : rp.fork_sites) {
        site_rows.push_back(SiteRow{entry.app.name, rp.root, site});
      }
      if (rp.post_mortem.has_value()) {
        mortem_rows.push_back(
            MortemRow{entry.app.name, rp.root, *rp.post_mortem});
      }
    }
    const bool u = report.verdict == Verdict::kVulnerable;
    const bool r = rips.scan(entry.app).flagged;
    const bool w = wap.scan(entry.app).flagged;
    cu.add(entry.ground_truth_vulnerable, u);
    cr.add(entry.ground_truth_vulnerable, r);
    cw.add(entry.ground_truth_vulnerable, w);

    if (!u) continue;
    std::printf("%s\n", entry.app.name.c_str());
    std::printf("  ground truth: %s%s\n",
                entry.ground_truth_vulnerable ? "vulnerable" : "benign",
                entry.ground_truth_vulnerable ? "" : "  (FALSE POSITIVE)");
    for (const Finding& f : report.findings) {
      std::printf("  %s at %s  [%s]\n", f.sink_name.c_str(),
                  f.location.c_str(), f.fingerprint.c_str());
      std::printf("      %s\n", f.source_line.c_str());
      std::printf("      exploit witness: %s\n", f.witness.c_str());
      const FindingEvidence& ev = f.evidence;
      for (const EvidenceHop& hop : ev.taint_path) {
        std::printf("      taint: %-8s %s%s%s%s\n", hop.kind.c_str(),
                    hop.description.c_str(),
                    hop.location.empty() ? "" : "  [", hop.location.c_str(),
                    hop.location.empty() ? "" : "]");
      }
      for (const EvidenceGuard& g : ev.guards) {
        std::printf("      guard: %s%s%s%s\n", g.sexpr.c_str(),
                    g.location.empty() ? "" : "  [", g.location.c_str(),
                    g.location.empty() ? "" : "]");
      }
      if (!ev.upload_filename.empty()) {
        std::printf("      attack: upload \"%s\" -> written to \"%s\"%s\n",
                    ev.upload_filename.c_str(), ev.destination.c_str(),
                    ev.destination_complete ? "" : " (partially resolved)");
      }
    }
    std::printf("\n");
  }

  std::printf("=== aggregate ===\n");
  std::printf("%-9s  TP=%2d FP=%2d FN=%2d TN=%2d  precision=%5.1f%%  "
              "recall=%5.1f%%\n",
              "UChecker", cu.tp, cu.fp, cu.fn, cu.tn, cu.precision(),
              cu.recall());
  std::printf("%-9s  TP=%2d FP=%2d FN=%2d TN=%2d  precision=%5.1f%%  "
              "recall=%5.1f%%\n",
              "RIPS", cr.tp, cr.fp, cr.fn, cr.tn, cr.precision(), cr.recall());
  std::printf("%-9s  TP=%2d FP=%2d FN=%2d TN=%2d  precision=%5.1f%%  "
              "recall=%5.1f%%\n",
              "WAP", cw.tp, cw.fp, cw.fn, cw.tn, cw.precision(), cw.recall());

  // Static-pass summary: how many lints each idiom rule produced over
  // the corpus, and how much symbolic-execution work the pre-filter
  // saved.
  std::printf("\n=== static pass (pre-symbolic) ===\n");
  std::printf("pruned %zu of %zu analysis root(s) before symbolic "
              "execution\n",
              total_pruned, total_roots);
  for (const auto& [rule, count] : lints_by_rule) {
    std::printf("%-20s %4zu finding(s)\n", rule.c_str(), count);
  }

  // Fleet-level latency breakdown: where the UChecker pipeline spends
  // its wall time across all scanned apps, in pipeline order.
  std::printf("\n=== UChecker per-phase latency (all apps) ===\n");
  std::printf("%-10s %6s %10s %10s %10s %10s %10s\n", "phase", "count",
              "total ms", "p50 ms", "p95 ms", "p99 ms", "max ms");
  for (const uchecker::telemetry::PhaseStats& s :
       telemetry.fleet_phase_stats()) {
    std::printf("%-10s %6zu %10.2f %10.3f %10.3f %10.3f %10.3f\n",
                s.phase.c_str(), s.count, s.total_ms, s.p50_ms, s.p95_ms,
                s.p99_ms, s.max_ms);
  }

  // Cost attribution: the individual analysis roots the corpus spends
  // the most wall time on — the optimization targets.
  std::sort(root_rows.begin(), root_rows.end(),
            [](const RootRow& x, const RootRow& y) {
              return x.cost.interp_ms + x.cost.solve_ms >
                     y.cost.interp_ms + y.cost.solve_ms;
            });
  std::printf("\n=== most expensive analysis roots ===\n");
  std::printf("%10s %10s %10s %8s %8s  %s\n", "total ms", "interp ms",
              "solve ms", "paths", "solves", "app :: root");
  const std::size_t show = std::min<std::size_t>(root_rows.size(), 10);
  for (std::size_t i = 0; i < show; ++i) {
    const RootRow& row = root_rows[i];
    std::printf("%10.2f %10.2f %10.2f %8zu %8zu  %s :: %s\n",
                row.cost.interp_ms + row.cost.solve_ms, row.cost.interp_ms,
                row.cost.solve_ms, row.cost.paths, row.cost.solver_calls,
                row.app.c_str(), row.cost.root.c_str());
  }

  // Path-explosion hotspots: which source constructs spawned the most
  // execution paths across the corpus. These are the lines to refactor
  // (or budget around) when a scan dies incomplete.
  std::sort(site_rows.begin(), site_rows.end(),
            [](const SiteRow& x, const SiteRow& y) {
              if (x.site.cumulative_paths != y.site.cumulative_paths) {
                return x.site.cumulative_paths > y.site.cumulative_paths;
              }
              return x.site.self_paths > y.site.self_paths;
            });
  std::printf("\n=== explosion hotspots (fork sites by paths spawned) ===\n");
  std::printf("%10s %10s %7s %-8s %-14s %s\n", "paths", "self", "visits",
              "kind", "detail", "app :: site");
  const std::size_t site_show = std::min<std::size_t>(site_rows.size(), 10);
  for (std::size_t i = 0; i < site_show; ++i) {
    const SiteRow& row = site_rows[i];
    std::printf("%10llu %10llu %7llu %-8s %-14s %s :: %s\n",
                static_cast<unsigned long long>(row.site.cumulative_paths),
                static_cast<unsigned long long>(row.site.self_paths),
                static_cast<unsigned long long>(row.site.visits),
                std::string(profile::fork_kind_name(row.site.kind)).c_str(),
                row.site.detail.c_str(), row.app.c_str(),
                row.site.site.c_str());
  }
  for (const MortemRow& row : mortem_rows) {
    std::printf("\npost-mortem: %s :: %s died of %s at %llu live paths\n",
                row.app.c_str(), row.root.c_str(), row.mortem.reason.c_str(),
                static_cast<unsigned long long>(row.mortem.peak_paths));
    if (!row.mortem.dominant_loop.empty()) {
      std::printf("  dominant loop: %s\n", row.mortem.dominant_loop.c_str());
    }
    const std::size_t top_show =
        std::min<std::size_t>(row.mortem.top_sites.size(), 5);
    for (std::size_t i = 0; i < top_show; ++i) {
      const profile::ForkSiteStats& site = row.mortem.top_sites[i];
      std::printf("  %10llu paths  %-8s %-14s %s\n",
                  static_cast<unsigned long long>(site.cumulative_paths),
                  std::string(profile::fork_kind_name(site.kind)).c_str(),
                  site.detail.c_str(), site.site.c_str());
    }
  }
  return 0;
}
