// Experiment E6: repository-crawl throughput (paper §IV-B).
//
// The paper crawled 9,160 WordPress plugins to find the three
// previously-unreported vulnerabilities. This bench simulates that
// campaign on a generated fleet of plugins (a few percent vulnerable,
// the rest with correct validation, padded with realistic inert code)
// and measures scan throughput serially and with the parallel driver —
// then verifies the campaign finds exactly the planted vulnerabilities.
#include <chrono>
#include <thread>
#include <cstdio>

#include "core/detector/scan_many.h"
#include "corpus/corpus.h"

using namespace uchecker::core;  // NOLINT
using uchecker::corpus::SynthSpec;

int main() {
  constexpr int kFleetSize = 100;
  constexpr int kVulnerableEvery = 23;  // ~4% planted vulnerable

  std::vector<Application> fleet;
  std::vector<bool> planted;
  fleet.reserve(kFleetSize);
  for (int i = 0; i < kFleetSize; ++i) {
    SynthSpec spec;
    spec.name = "plugin-" + std::to_string(i);
    spec.sequential_ifs = 1 + (i % 5);
    spec.switch_ways = (i % 3 == 0) ? 3 : 0;
    spec.vulnerable = (i % kVulnerableEvery) == 0;
    spec.filler_loc = 300 + (i % 7) * 150;
    spec.filler_files = 1 + (i % 3);
    planted.push_back(spec.vulnerable);
    fleet.push_back(uchecker::corpus::synth_app(spec));
  }

  Detector detector;

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<ScanReport> serial = scan_many(detector, fleet, 1);
  const double serial_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto t1 = std::chrono::steady_clock::now();
  const std::vector<ScanReport> parallel = scan_many(detector, fleet, 0);
  const double parallel_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();

  // The same serial sweep with the static pre-filter disabled: the gap
  // quantifies what pruning proven-safe roots saves on a mostly-benign
  // fleet (the realistic crawl distribution).
  ScanOptions unfiltered_options;
  unfiltered_options.prefilter = false;
  Detector unfiltered(unfiltered_options);
  const auto t2 = std::chrono::steady_clock::now();
  const std::vector<ScanReport> nofilter = scan_many(unfiltered, fleet, 1);
  const double nofilter_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t2)
          .count();

  // Parallel-parse sweep: serial app driver (one app at a time) but each
  // app's files parsed on the per-file pool. Isolates the front-end
  // fan-out win from the scan_many app-level parallelism above.
  ScanOptions pp_options;
  pp_options.parse_threads = 0;  // auto: hardware concurrency capped at 8
  Detector pp_detector(pp_options);
  const auto t3 = std::chrono::steady_clock::now();
  const std::vector<ScanReport> pparse = scan_many(pp_detector, fleet, 1);
  const double pparse_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t3)
          .count();

  int found = 0;
  int false_alarms = 0;
  bool verdicts_agree = true;
  bool prefilter_agrees = true;
  for (int i = 0; i < kFleetSize; ++i) {
    const bool flagged = parallel[i].verdict == Verdict::kVulnerable;
    if (flagged && planted[i]) ++found;
    if (flagged && !planted[i]) ++false_alarms;
    if (parallel[i].verdict != serial[i].verdict) verdicts_agree = false;
    if (nofilter[i].verdict != serial[i].verdict) prefilter_agrees = false;
    if (pparse[i].verdict != serial[i].verdict) verdicts_agree = false;
  }
  const int planted_total =
      static_cast<int>(std::count(planted.begin(), planted.end(), true));

  // Sharing effectiveness across the whole campaign: how much symbolic
  // state was deduplicated (cons hits) and how many sink queries the
  // per-scan solver cache absorbed instead of Z3.
  std::size_t total_paths = 0;
  std::size_t total_objects = 0;
  std::size_t total_cons_hits = 0;
  std::size_t total_solver_calls = 0;
  std::size_t total_cache_hits = 0;
  std::size_t total_roots = 0;
  std::size_t total_pruned = 0;
  for (const ScanReport& r : parallel) {
    total_paths += r.paths;
    total_objects += r.objects;
    total_cons_hits += r.cons_hits;
    total_solver_calls += r.solver_calls;
    total_cache_hits += r.solver_cache_hits;
    total_roots += r.roots;
    total_pruned += r.pruned_roots;
  }

  std::printf("Fleet scan of %d generated plugins (%u hardware thread(s)):\n",
              kFleetSize, std::thread::hardware_concurrency());
  std::printf("  serial   : %.2fs (%.1f plugins/s)\n", serial_s,
              kFleetSize / serial_s);
  std::printf("  serial (prefilter off): %.2fs (%.1f plugins/s)\n",
              nofilter_s, kFleetSize / nofilter_s);
  std::printf("  parallel : %.2fs (%.1f plugins/s)\n", parallel_s,
              kFleetSize / parallel_s);
  std::printf("  parallel-parse: %.2fs (%.1f plugins/s; serial driver, "
              "per-file parse fan-out)\n",
              pparse_s, kFleetSize / pparse_s);
  std::printf("  prefilter: pruned %zu of %zu root(s), verdicts agree "
              "with unfiltered: %s\n",
              total_pruned, total_roots, prefilter_agrees ? "yes" : "NO");
  std::printf("  sharing  : %zu paths, %zu objects (%.1f/path), "
              "%zu cons hits, %zu solver calls (%zu cache hits)\n",
              total_paths, total_objects,
              total_paths == 0
                  ? 0.0
                  : static_cast<double>(total_objects) /
                        static_cast<double>(total_paths),
              total_cons_hits, total_solver_calls, total_cache_hits);
  std::printf("  planted vulnerable: %d, found: %d, false alarms: %d\n",
              planted_total, found, false_alarms);
  std::printf("  serial/parallel verdicts agree: %s\n",
              verdicts_agree ? "yes" : "NO");
  std::printf("  projected time for the paper's 9,160-plugin crawl: "
              "%.1f min (parallel)\n",
              9160.0 / (kFleetSize / parallel_s) / 60.0);

  // Timing expectation depends on the host: with >1 hardware thread the
  // parallel sweep must not be slower than serial; on a single core the
  // thread pool only adds scheduling overhead, so allow a margin.
  const double tolerance =
      std::thread::hardware_concurrency() > 1 ? 1.05 : 1.60;
  const bool ok = found == planted_total && false_alarms == 0 &&
                  verdicts_agree && prefilter_agrees &&
                  parallel_s <= serial_s * tolerance;
  std::printf("\nFleet invariants: %s\n", ok ? "HOLD" : "VIOLATED");
  return ok ? 0 : 1;
}
