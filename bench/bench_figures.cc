// Figures F3-F6: machine-checked reproduction of the paper's worked
// examples, emitted as Graphviz DOT plus structural summaries.
//   Fig. 3: extended call graph of Listing 1 (example1.php)
//   Fig. 4: heap graph + environments of Listing 2 (two-path if)
//   Fig. 5: heap graph for the array-access statements of Listing 3
//   Fig. 6: the pre-structured $_FILES array
#include <cstdio>
#include <string>

#include "core/callgraph/callgraph.h"
#include "core/callgraph/locality.h"
#include "core/heapgraph/dot.h"
#include "core/heapgraph/sexpr.h"
#include "core/interp/interp.h"
#include "phpparse/parser.h"

using namespace uchecker;        // NOLINT
using namespace uchecker::core;  // NOLINT

namespace {

struct Pipeline {
  SourceManager sources;
  DiagnosticSink diags;
  std::vector<Arena> arenas;  // Arena moves preserve AST pointers
  std::vector<phpast::PhpFile> files;
  Program program;
  CallGraph graph;
  LocalityResult locality;

  explicit Pipeline(const std::vector<std::pair<std::string, std::string>>& src) {
    for (const auto& [name, content] : src) {
      const FileId id = sources.add_file(name, content);
      arenas.emplace_back();
      files.push_back(
          phpparse::parse_php(*sources.file(id), diags, arenas.back()));
    }
    std::vector<const phpast::PhpFile*> ptrs;
    for (const auto& f : files) ptrs.push_back(&f);
    program = build_program(ptrs);
    graph = build_call_graph(program);
    locality = analyze_locality(program, graph, sources);
  }
};

// Paper Listing 1.
const char* kListing1 = R"php(<?php
function getFileName($file){
    return $_FILES[$file]['name'];
}

function handle_uploader($file, $savePath){
    $path_array = wp_upload_dir();
    $pathAndName = $path_array['path'] . "/" . $savePath;
    if (!move_uploaded_file($_FILES[$file]['tmp_name'], $pathAndName)) {
        return false;
    }
    return true;
}

if (!handle_uploader("upload_file", getFileName("upload_file"))) {
    echo "File Uploaded failure!";
}
)php";

// Paper Listing 2.
const char* kListing2 = R"php(<?php
$a = 55;
$b = $_GET['input'];
if ($b + $a > 10) {
    $a = $b - 22;
} else {
    $a = 88;
}
)php";

// Paper Listing 3.
const char* kListing3 = R"php(<?php
$myfile = $_FILES['upload_file'];
$name = $myfile['name'];
$rnd = $test['123'];
)php";

void figure3() {
  std::printf("--- Figure 3: extended call graph of Listing 1 ---\n");
  Pipeline p(std::vector<std::pair<std::string, std::string>>{
      {"example1.php", kListing1}});
  std::printf("%s", p.graph.to_dot().c_str());
  std::printf("Analysis roots (lowest common ancestors):\n");
  for (const AnalysisRoot& root : p.locality.roots) {
    std::printf("  root: %s\n", p.graph.node(root.node).name.c_str());
  }
  std::printf("\n");
}

void figure4() {
  std::printf("--- Figure 4: heap graph and environments of Listing 2 ---\n");
  Pipeline p(std::vector<std::pair<std::string, std::string>>{
      {"listing2.php", kListing2}});
  Interpreter interp(p.program, p.diags);
  AnalysisRoot root;
  root.file = &p.files[0];
  const InterpResult result = interp.run(root);
  std::printf("%s", to_dot(result.graph, result.envs).c_str());
  std::printf("paths: %zu\n", result.envs.size());
  for (std::size_t i = 0; i < result.envs.size(); ++i) {
    const Env& env = result.envs[i];
    std::printf("Env_%zu: $a -> %s, reachability: %s\n", i + 1,
                to_sexpr(result.graph, env.get_map("a")).c_str(),
                to_sexpr(result.graph, env.cur()).c_str());
  }
  std::printf("\n");
}

void figures5_and_6() {
  std::printf("--- Figures 5/6: array access + pre-structured $_FILES ---\n");
  Pipeline p(std::vector<std::pair<std::string, std::string>>{
      {"listing3.php", kListing3}});
  Interpreter interp(p.program, p.diags);
  AnalysisRoot root;
  root.file = &p.files[0];
  const InterpResult result = interp.run(root);
  std::printf("%s", to_dot(result.graph, result.envs).c_str());
  const Env& env = result.envs.at(0);
  std::printf("$myfile -> %s\n",
              to_sexpr(result.graph, env.get_map("myfile")).c_str());
  std::printf("$name   -> %s\n",
              to_sexpr(result.graph, env.get_map("name")).c_str());
  std::printf("$rnd    -> %s\n",
              to_sexpr(result.graph, env.get_map("rnd")).c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  figure3();
  figure4();
  figures5_and_6();
  return 0;
}
