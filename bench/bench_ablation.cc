// Ablations of the design choices the paper discusses in §VI:
//
//  A1. Admin-gating modeling. The paper attributes both Table III false
//      positives to not modeling add_action('admin_menu', ...). With the
//      extension enabled, those two plugins stop being flagged while
//      every true detection is preserved.
//
//  A2. Executable-extension list. The paper notes "variant
//      vulnerabilities may allow files with other potentially harmful
//      extensions such as '.asa' and '.swf'. UChecker can easily cover
//      these variants by verifying more extensions."
//
//  A3. Loop unrolling depth. More unrolling multiplies paths without
//      changing any corpus verdict (upload flaws are not loop-carried).
#include <cstdio>

#include "core/detector/detector.h"
#include "corpus/corpus.h"

using namespace uchecker::core;
using uchecker::corpus::CorpusEntry;

namespace {

struct Tally {
  int detected = 0;
  int fp = 0;
};

Tally sweep(const ScanOptions& options) {
  Detector detector(options);
  Tally tally;
  for (const CorpusEntry& entry : uchecker::corpus::full_corpus()) {
    const bool flagged =
        detector.scan(entry.app).verdict == Verdict::kVulnerable;
    if (entry.ground_truth_vulnerable) {
      tally.detected += flagged;
    } else {
      tally.fp += flagged;
    }
  }
  return tally;
}

}  // namespace

int main() {
  bool ok = true;

  std::printf("A1: admin-gating modeling (paper SVI false-positive fix)\n");
  ScanOptions published;  // as-published behaviour
  ScanOptions gated;
  gated.locality.model_admin_gating = true;
  const Tally base = sweep(published);
  const Tally fixed = sweep(gated);
  std::printf("  published behaviour : detected %d/16, FP %d/28\n",
              base.detected, base.fp);
  std::printf("  admin-gating modeled: detected %d/16, FP %d/28\n",
              fixed.detected, fixed.fp);
  ok &= base.fp == 2 && fixed.fp == 0 && fixed.detected == base.detected;

  std::printf("\nA2: executable-extension list\n");
  Application asa_app;
  asa_app.name = "asa-upload";
  asa_app.files.push_back(AppFile{"up.php", R"php(<?php
$ext = strtolower(pathinfo($_FILES['f']['name'], PATHINFO_EXTENSION));
if ($ext == 'php' || $ext == 'php5') {
    wp_die('blocked');
}
move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
)php"});
  ScanOptions wide;
  wide.vuln.executable_extensions = {"php", "php5", "phtml", "asa", "swf"};
  const bool narrow_flag =
      Detector(published).scan(asa_app).verdict == Verdict::kVulnerable;
  const bool wide_flag =
      Detector(wide).scan(asa_app).verdict == Verdict::kVulnerable;
  std::printf("  app blocking only php/php5: default list -> %s, "
              "extended list -> %s\n",
              narrow_flag ? "flagged" : "clean",
              wide_flag ? "flagged" : "clean");
  ok &= !narrow_flag && wide_flag;

  std::printf("\nA3: loop unrolling depth on a loop-bearing handler\n");
  Application loop_app;
  loop_app.name = "loop-upload";
  loop_app.files.push_back(AppFile{"up.php", R"php(<?php
$i = 0;
while ($i < intval($_POST['count'])) {
    $i = $i + 1;
}
move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
)php"});
  for (int unroll = 1; unroll <= 4; ++unroll) {
    ScanOptions options;
    options.budget.loop_unroll = unroll;
    const ScanReport report = Detector(options).scan(loop_app);
    std::printf("  unroll=%d: paths=%zu verdict=%s\n", unroll, report.paths,
                std::string(verdict_name(report.verdict)).c_str());
    ok &= report.verdict == Verdict::kVulnerable;
  }


  std::printf("\nA4: sink-function registry (copy()-based uploads)\n");
  Application copy_app;
  copy_app.name = "copy-upload";
  copy_app.files.push_back(AppFile{"up.php", R"php(<?php
copy($_FILES['f']['tmp_name'], '/www/' . $_FILES['f']['name']);
)php"});
  ScanOptions with_copy;
  with_copy.sinks.add(SinkSpec{"copy", SinkSignature::kSrcDst});
  const bool default_flag =
      Detector(published).scan(copy_app).verdict == Verdict::kVulnerable;
  const bool copy_flag =
      Detector(with_copy).scan(copy_app).verdict == Verdict::kVulnerable;
  std::printf("  copy()-based upload: paper sinks -> %s, +copy sink -> %s\n",
              default_flag ? "flagged" : "missed",
              copy_flag ? "flagged" : "missed");
  ok &= !default_flag && copy_flag;

  std::printf("\nAblation invariants: %s\n", ok ? "HOLD" : "VIOLATED");
  return ok ? 0 : 1;
}
