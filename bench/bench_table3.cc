// Experiment E1: regenerates paper Table III — detection results and
// per-application analysis measurements over the reconstructed corpus
// (13 known-vulnerable apps, 28 vulnerability-free apps of which 2 are
// expected false positives, 3 newly-discovered vulnerable plugins).
//
// Absolute LoC/time/memory differ from the paper (different corpus
// reconstruction, native C++ vs PHP-hosted analysis); verdicts and the
// locality/sharing shape are the reproduction targets.
#include <cstdio>
#include <string>

#include "core/detector/detector.h"
#include "corpus/corpus.h"

using uchecker::core::Detector;
using uchecker::core::ScanReport;
using uchecker::core::Verdict;
using uchecker::corpus::Category;
using uchecker::corpus::CorpusEntry;

namespace {

const char* category_name(Category c) {
  switch (c) {
    case Category::kKnownVulnerable: return "Known Vulnerable";
    case Category::kBenign: return "Benign";
    case Category::kNewVulnerable: return "New Vuln";
  }
  return "?";
}

void print_row(const CorpusEntry& entry, const ScanReport& report) {
  const bool flagged = report.verdict == Verdict::kVulnerable;
  std::printf(
      "| %-54s | %6llu | %6.2f | %8zu | %8zu | %5.0f | %7.2f | %7.3f | %-3s "
      "| %-5s |\n",
      entry.app.name.c_str(),
      static_cast<unsigned long long>(report.total_loc),
      report.analyzed_percent, report.paths, report.objects,
      report.objects_per_path, report.memory_mb, report.seconds,
      flagged ? "Yes" : "No",
      flagged == entry.paper_flagged_by_uchecker ? "match" : "DIFF");
}

}  // namespace

int main() {
  std::printf("Table III reproduction: UChecker detection results\n");
  std::printf(
      "| %-54s | %6s | %6s | %8s | %8s | %5s | %7s | %7s | %-3s | %-5s |\n",
      "System", "LoC", "%An", "Paths", "Objects", "O/P", "Mem(MB)", "Time(s)",
      "Vul", "Paper");

  Detector detector;
  int tp = 0, fn = 0, fp = 0, tn = 0, paper_match = 0, total = 0;
  Category last_category = Category::kKnownVulnerable;
  bool first = true;

  for (const CorpusEntry& entry : uchecker::corpus::full_corpus()) {
    if (first || entry.category != last_category) {
      std::printf("|---- %s ----|\n", category_name(entry.category));
      last_category = entry.category;
      first = false;
    }
    const ScanReport report = detector.scan(entry.app);
    print_row(entry, report);
    const bool flagged = report.verdict == Verdict::kVulnerable;
    if (entry.ground_truth_vulnerable) {
      flagged ? ++tp : ++fn;
    } else {
      flagged ? ++fp : ++tn;
    }
    if (flagged == entry.paper_flagged_by_uchecker) ++paper_match;
    ++total;
  }

  std::printf("\nSummary: TP=%d FN=%d FP=%d TN=%d (paper: TP=15 FN=1 FP=2 "
              "TN=26)\n", tp, fn, fp, tn);
  std::printf("Verdicts matching the paper's per-app column: %d/%d\n",
              paper_match, total);
  return (tp == 15 && fn == 1 && fp == 2 && tn == 26) ? 0 : 1;
}
