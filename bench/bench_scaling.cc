// Experiment E4: heap-graph sharing and path scaling.
//
// The paper's key memory argument (§IV-A): although path counts explode
// exponentially (up to 248832 for Cimy User Extra Fields), the heap graph
// shares objects across environments, keeping "objects per path" small —
// under 100 per path for every app, 6-28 in Table III. This bench sweeps
// the branch count of a synthetic upload handler, doubling paths each
// step, and shows objects/path stays near-constant. It also demonstrates
// the budget-exhaustion behaviour that produces the Cimy false negative.
#include <cstdio>

#include "core/detector/detector.h"
#include "corpus/corpus.h"

using uchecker::core::Detector;
using uchecker::core::ScanOptions;
using uchecker::core::ScanReport;
using uchecker::core::Verdict;
using uchecker::corpus::SynthSpec;

int main() {
  std::printf("Path scaling sweep: paths = 2^(ifs+1) on a synthetic "
              "handler\n");
  std::printf("| %4s | %9s | %9s | %7s | %8s | %8s |\n", "ifs", "paths",
              "objects", "obj/path", "mem(MB)", "time(s)");

  bool sharing_holds = true;
  double prev_obj_per_path = 0.0;
  for (int ifs = 1; ifs <= 14; ++ifs) {
    SynthSpec spec;
    spec.name = "scale";
    spec.sequential_ifs = ifs;
    spec.filler_loc = 0;
    spec.filler_files = 0;
    const auto app = uchecker::corpus::synth_app(spec);
    const ScanReport report = Detector().scan(app);
    std::printf("| %4d | %9zu | %9zu | %8.1f | %8.2f | %8.3f |\n", ifs,
                report.paths, report.objects, report.objects_per_path,
                report.memory_mb, report.seconds);
    // Sharing: objects/path must not grow with the path count (it in
    // fact shrinks, since shared prefix objects amortize).
    if (prev_obj_per_path > 0.0 &&
        report.objects_per_path > prev_obj_per_path * 1.5) {
      sharing_holds = false;
    }
    prev_obj_per_path = report.objects_per_path;
  }

  std::printf("\nBudget exhaustion (the Cimy-FN mechanism):\n");
  SynthSpec big;
  big.name = "exhaust";
  big.sequential_ifs = 18;  // 2^19 paths > default 100K budget
  big.filler_loc = 0;
  big.filler_files = 0;
  const ScanReport exhausted = Detector().scan(uchecker::corpus::synth_app(big));
  std::printf("  18 ifs: paths=%zu budget_exhausted=%s verdict=%s\n",
              exhausted.paths, exhausted.budget_exhausted ? "yes" : "no",
              std::string(uchecker::core::verdict_name(exhausted.verdict)).c_str());

  const bool exhaustion_ok =
      exhausted.budget_exhausted &&
      exhausted.verdict == Verdict::kAnalysisIncomplete;
  std::printf("\nObject-sharing invariant: %s; budget exhaustion: %s\n",
              sharing_holds ? "HOLDS" : "VIOLATED",
              exhaustion_ok ? "HOLDS" : "VIOLATED");
  return (sharing_holds && exhaustion_ok) ? 0 : 1;
}
