// Experiment E2: reproduces paper §IV-C — UChecker vs the RIPS-style and
// WAP-style baselines over the full 44-app corpus (16 vulnerable: 13
// known + 3 newly found; 28 vulnerability-free).
//
// Paper-reported results:
//   UChecker: 15/16 detected, 2/28 false positives
//   RIPS:     15/16 detected (missing WooCommerce Custom Profile
//             Picture), 27/28 false positives
//   WAP:       4/16 detected, 1/28 false positives
// The reproduction target is the *shape*: UChecker dominates on the
// FP axis at equal detection; RIPS floods FPs; WAP detects little.
#include <cstdio>
#include <string>

#include "baselines/rips.h"
#include "baselines/wap.h"
#include "core/detector/detector.h"
#include "corpus/corpus.h"

using uchecker::baselines::RipsScanner;
using uchecker::baselines::WapScanner;
using uchecker::core::Detector;
using uchecker::core::Verdict;
using uchecker::corpus::CorpusEntry;

int main() {
  Detector uchecker;
  RipsScanner rips;
  WapScanner wap;

  struct Tally {
    int detected = 0;
    int fp = 0;
  };
  Tally u, r, w;
  int vulnerable_total = 0;
  int benign_total = 0;

  std::printf("Per-app comparison (V = flagged vulnerable)\n");
  std::printf("| %-54s | %-5s | %-8s | %-4s | %-3s |\n", "System", "Truth",
              "UChecker", "RIPS", "WAP");

  for (const CorpusEntry& entry : uchecker::corpus::full_corpus()) {
    const bool truth = entry.ground_truth_vulnerable;
    truth ? ++vulnerable_total : ++benign_total;

    const bool u_flag = uchecker.scan(entry.app).verdict == Verdict::kVulnerable;
    const bool r_flag = rips.scan(entry.app).flagged;
    const bool w_flag = wap.scan(entry.app).flagged;

    if (truth) {
      u.detected += u_flag;
      r.detected += r_flag;
      w.detected += w_flag;
    } else {
      u.fp += u_flag;
      r.fp += r_flag;
      w.fp += w_flag;
    }
    std::printf("| %-54s | %-5s | %-8s | %-4s | %-3s |\n",
                entry.app.name.c_str(), truth ? "vuln" : "clean",
                u_flag ? "V" : "-", r_flag ? "V" : "-", w_flag ? "V" : "-");
  }

  std::printf("\nAggregate (paper values in parentheses):\n");
  std::printf("  UChecker: detected %d/%d (15/16), FP %d/%d (2/28)\n",
              u.detected, vulnerable_total, u.fp, benign_total);
  std::printf("  RIPS:     detected %d/%d (15/16), FP %d/%d (27/28)\n",
              r.detected, vulnerable_total, r.fp, benign_total);
  std::printf("  WAP:      detected %d/%d (4/16),  FP %d/%d (1/28)\n",
              w.detected, vulnerable_total, w.fp, benign_total);

  const bool shape_holds =
      u.detected >= 15 && u.fp <= 2 &&         // UChecker wins both axes
      r.detected >= u.detected - 1 &&          // RIPS detects comparably...
      r.fp > 20 &&                             // ...but floods FPs
      w.detected <= 6 && w.fp <= 2;            // WAP detects little, low FP
  std::printf("\nShape check (who wins / error structure): %s\n",
              shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
