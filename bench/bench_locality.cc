// Experiment E3: the vulnerability-oriented locality analysis ablation.
//
// Part 1 regenerates the "% of LoC analyzed" column of Table III: the
// paper reports reductions from 67% (Avatar Uploader) to 99.7% (WP
// Marketplace) of the code excluded from symbolic execution.
//
// Part 2 runs the same synthetic app with locality analysis ON vs OFF
// (whole-program symbolic execution) and reports paths/objects/time,
// quantifying what the LCA-based root selection buys.
#include <cstdio>

#include "core/detector/detector.h"
#include "corpus/corpus.h"

using uchecker::core::Detector;
using uchecker::core::ScanOptions;
using uchecker::core::ScanReport;
using uchecker::corpus::CorpusEntry;
using uchecker::corpus::SynthSpec;

int main() {
  std::printf("Part 1: %% of LoC analyzed per application (Table III col 4)\n");
  std::printf("| %-54s | %7s | %8s | %8s | %10s |\n", "System", "LoC",
              "Analyzed", "%%An", "paper %%An");
  Detector detector;
  double worst_reduction = 100.0;
  double best_reduction = 0.0;
  for (const CorpusEntry& entry : uchecker::corpus::full_corpus()) {
    const ScanReport report = detector.scan(entry.app);
    std::printf("| %-54s | %7llu | %8llu | %7.2f%% | %9.2f%% |\n",
                entry.app.name.c_str(),
                static_cast<unsigned long long>(report.total_loc),
                static_cast<unsigned long long>(report.analyzed_loc),
                report.analyzed_percent, entry.paper.pct_analyzed);
    if (report.analyzed_loc > 0) {
      const double reduction = 100.0 - report.analyzed_percent;
      if (reduction < worst_reduction) worst_reduction = reduction;
      if (reduction > best_reduction) best_reduction = reduction;
    }
  }
  std::printf("\nLoC reduction range: %.1f%% .. %.1f%% "
              "(paper: 67%% .. 99.7%%)\n\n",
              worst_reduction, best_reduction);

  std::printf("Part 2: locality ON vs OFF (whole-program) ablation\n");
  std::printf("| %-28s | %8s | %8s | %8s | %8s |\n", "Workload", "paths",
              "objects", "%%An", "time(s)");
  bool ablation_ok = true;
  for (int ifs = 2; ifs <= 6; ifs += 2) {
    SynthSpec spec;
    spec.name = "synth-ifs" + std::to_string(ifs);
    spec.sequential_ifs = ifs;
    spec.filler_loc = 4000;
    spec.filler_files = 4;
    const auto app = uchecker::corpus::synth_app(spec);

    ScanOptions with;
    ScanOptions without;
    without.run_locality = false;
    const ScanReport on = Detector(with).scan(app);
    const ScanReport off = Detector(without).scan(app);
    std::printf("| %-22s (on)  | %8zu | %8zu | %7.2f%% | %8.3f |\n",
                spec.name.c_str(), on.paths, on.objects, on.analyzed_percent,
                on.seconds);
    std::printf("| %-22s (off) | %8zu | %8zu | %7.2f%% | %8.3f |\n",
                spec.name.c_str(), off.paths, off.objects,
                off.analyzed_percent, off.seconds);
    if (on.verdict != off.verdict) ablation_ok = false;
    if (on.analyzed_percent >= off.analyzed_percent) ablation_ok = false;
  }
  std::printf("\nAblation invariant (same verdict, less code analyzed): %s\n",
              ablation_ok ? "HOLDS" : "VIOLATED");
  return ablation_ok ? 0 : 1;
}
