// Experiment E5: per-phase micro-costs of the pipeline (google-benchmark).
//
// Table III's Time column aggregates parsing, locality analysis, symbolic
// execution, translation and solving. These benchmarks separate the
// phases on a representative corpus app so the cost structure is visible.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "core/callgraph/callgraph.h"
#include "core/callgraph/locality.h"
#include "core/detector/detector.h"
#include "core/interp/interp.h"
#include "core/translate/translate.h"
#include "core/vulnmodel/vulnmodel.h"
#include "bench/prearena/lexer.h"
#include "bench/prearena/parser.h"
#include "corpus/corpus.h"
#include "phplex/lexer.h"
#include "phpparse/parse_pool.h"
#include "phpparse/parser.h"
#include "smt/solver.h"
#include "support/telemetry.h"

// Binary-wide allocation counter so BM_Lex can prove the "lexing never
// heap-allocates per token" contract as a measured number instead of a
// comment. Arena blocks come from std::malloc and are deliberately NOT
// counted — the counter sees exactly the operator-new traffic the arena
// was introduced to eliminate.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace uchecker;          // NOLINT
using namespace uchecker::core;    // NOLINT

const corpus::CorpusEntry& sample_app() {
  // Foxypress: mid-sized (15.8K LoC), 64 paths.
  static const auto* entry = new corpus::CorpusEntry(
      uchecker::corpus::known_vulnerable()[2]);
  return *entry;
}

struct Parsed {
  SourceManager sources;
  DiagnosticSink diags;
  std::vector<Arena> arenas;  // one per file; moves preserve AST pointers
  std::vector<phpast::PhpFile> files;
  Program program;
};

Parsed parse_sample() {
  Parsed p;
  for (const AppFile& f : sample_app().app.files) {
    const FileId id = p.sources.add_file(f.name, f.content);
    p.arenas.emplace_back();
    p.files.push_back(
        phpparse::parse_php(*p.sources.file(id), p.diags, p.arenas.back()));
  }
  std::vector<const phpast::PhpFile*> ptrs;
  for (const auto& f : p.files) ptrs.push_back(&f);
  p.program = build_program(ptrs);
  return p;
}

// Arena front end over the sample app: per file, one fresh arena and a
// full lex+parse. Mirrors BM_ParsePreArena exactly (files registered
// once outside the loop, statements counted, nothing else) so the
// BM_ParsePreArena / BM_Parse ratio isolates the front-end rebuild.
void BM_Parse(benchmark::State& state) {
  SourceManager sources;
  std::vector<const SourceFile*> files;
  for (const AppFile& f : sample_app().app.files) {
    files.push_back(sources.file(sources.add_file(f.name, f.content)));
  }
  for (auto _ : state) {
    std::size_t statements = 0;
    for (const SourceFile* f : files) {
      DiagnosticSink diags;
      Arena arena;
      const phpast::PhpFile file = phpparse::parse_php(*f, diags, arena);
      statements += file.statements.size();
    }
    benchmark::DoNotOptimize(statements);
  }
  state.counters["loc"] = static_cast<double>(sources.total_loc());
}
BENCHMARK(BM_Parse)->Unit(benchmark::kMillisecond);

// Lexing alone, across every file of the sample app. The contract under
// test: tokens are arena-backed views, so the only operator-new traffic
// is the per-file token vector's growth — fractions of an allocation per
// token, not one-plus (the pre-arena lexer paid a std::string per token
// and per interpolation part).
void BM_Lex(benchmark::State& state) {
  SourceManager sources;
  std::vector<const SourceFile*> files;
  std::uint64_t bytes = 0;
  for (const AppFile& f : sample_app().app.files) {
    files.push_back(sources.file(sources.add_file(f.name, f.content)));
    bytes += f.content.size();
  }
  std::uint64_t tokens = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    tokens = 0;
    const std::uint64_t before = heap_allocs();
    Arena arena;
    for (const SourceFile* f : files) {
      DiagnosticSink diags;
      const auto toks = phplex::lex_file(*f, diags, arena);
      tokens += toks.size();
      benchmark::DoNotOptimize(toks.data());
    }
    allocs = heap_allocs() - before;
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<std::int64_t>(bytes));
  }
  state.counters["tokens"] = static_cast<double>(tokens);
  state.counters["heap_allocs"] = static_cast<double>(allocs);
  state.counters["allocs_per_token"] =
      tokens == 0 ? 0.0
                  : static_cast<double>(allocs) / static_cast<double>(tokens);
}
BENCHMARK(BM_Lex)->Unit(benchmark::kMillisecond);

// The SAME app through the frozen pre-arena front end (bench/prearena/,
// the PR7-era lexer/parser kept verbatim): per-token std::string copies,
// unique_ptr AST nodes, per-node owned strings. The BM_Parse /
// BM_ParsePreArena ratio is the arena speedup, measured in one run on
// one machine — ci/check.sh step 10 gates it.
void BM_ParsePreArena(benchmark::State& state) {
  SourceManager sources;
  std::vector<const SourceFile*> files;
  for (const AppFile& f : sample_app().app.files) {
    files.push_back(sources.file(sources.add_file(f.name, f.content)));
  }
  for (auto _ : state) {
    std::size_t statements = 0;
    for (const SourceFile* f : files) {
      DiagnosticSink diags;
      const prearena::phpast::PhpFile file =
          prearena::phpparse::parse_php(*f, diags);
      statements += file.statements.size();
    }
    benchmark::DoNotOptimize(statements);
  }
}
BENCHMARK(BM_ParsePreArena)->Unit(benchmark::kMillisecond);

// Pre-arena lexing alone: the per-token allocation churn BM_Lex proves
// gone (compare the two allocs_per_token counters).
void BM_LexPreArena(benchmark::State& state) {
  SourceManager sources;
  std::vector<const SourceFile*> files;
  for (const AppFile& f : sample_app().app.files) {
    files.push_back(sources.file(sources.add_file(f.name, f.content)));
  }
  std::uint64_t tokens = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    tokens = 0;
    const std::uint64_t before = heap_allocs();
    for (const SourceFile* f : files) {
      DiagnosticSink diags;
      const auto toks = prearena::phplex::lex_file(*f, diags);
      tokens += toks.size();
      benchmark::DoNotOptimize(toks.data());
    }
    allocs = heap_allocs() - before;
  }
  state.counters["tokens"] = static_cast<double>(tokens);
  state.counters["heap_allocs"] = static_cast<double>(allocs);
  state.counters["allocs_per_token"] =
      tokens == 0 ? 0.0
                  : static_cast<double>(allocs) / static_cast<double>(tokens);
}
BENCHMARK(BM_LexPreArena)->Unit(benchmark::kMillisecond);

// Per-file parse fan-out on the same app: the parse pool with 1..N
// workers, one arena per file. Thread count 1 is the serial baseline the
// speedup is measured against.
void BM_ParseParallel(benchmark::State& state) {
  SourceManager sources;
  std::vector<const SourceFile*> files;
  for (const AppFile& f : sample_app().app.files) {
    files.push_back(sources.file(sources.add_file(f.name, f.content)));
  }
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto units = phpparse::parse_files(files, threads);
    benchmark::DoNotOptimize(units.size());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["files"] = static_cast<double>(files.size());
}
BENCHMARK(BM_ParseParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CallGraphAndLocality(benchmark::State& state) {
  Parsed p = parse_sample();
  for (auto _ : state) {
    const CallGraph graph = build_call_graph(p.program);
    const LocalityResult locality =
        analyze_locality(p.program, graph, p.sources);
    benchmark::DoNotOptimize(locality.roots.size());
  }
}
BENCHMARK(BM_CallGraphAndLocality)->Unit(benchmark::kMillisecond);

void BM_SymbolicExecution(benchmark::State& state) {
  Parsed p = parse_sample();
  const CallGraph graph = build_call_graph(p.program);
  const LocalityResult locality = analyze_locality(p.program, graph, p.sources);
  std::size_t paths = 0;
  for (auto _ : state) {
    Interpreter interp(p.program, p.diags);
    const InterpResult result = interp.run(locality.roots.at(0));
    paths = result.stats.paths;
    benchmark::DoNotOptimize(result.stats.objects);
  }
  state.counters["paths"] = static_cast<double>(paths);
}
BENCHMARK(BM_SymbolicExecution)->Unit(benchmark::kMillisecond);

void BM_TranslateAndSolve(benchmark::State& state) {
  Parsed p = parse_sample();
  const CallGraph graph = build_call_graph(p.program);
  const LocalityResult locality = analyze_locality(p.program, graph, p.sources);
  Interpreter interp(p.program, p.diags);
  const InterpResult exec = interp.run(locality.roots.at(0));
  for (auto _ : state) {
    smt::Checker checker;
    const VulnModelResult result = check_sinks(exec, checker);
    benchmark::DoNotOptimize(result.vulnerable);
  }
}
BENCHMARK(BM_TranslateAndSolve)->Unit(benchmark::kMillisecond);

void BM_EndToEnd(benchmark::State& state) {
  Detector detector;
  for (auto _ : state) {
    const ScanReport report = detector.scan(sample_app().app);
    benchmark::DoNotOptimize(report.verdict);
  }
}
BENCHMARK(BM_EndToEnd)->Unit(benchmark::kMillisecond);

// Cost of the pre-symbolic static pass alone: analyze_root over every
// locality root of the sample app. Counters report the prune rate and
// the pass throughput in KLoC/s — the pass is pure AST work (no solver,
// no interpreter), so it should stay orders of magnitude cheaper than
// the symbolic execution it skips.
void BM_StaticPass(benchmark::State& state) {
  Parsed p = parse_sample();
  const CallGraph graph = build_call_graph(p.program);
  const LocalityResult locality = analyze_locality(p.program, graph, p.sources);
  const SinkRegistry sinks;
  const staticpass::StaticPassOptions options;
  std::size_t pruned = 0;
  std::size_t lints = 0;
  for (auto _ : state) {
    pruned = 0;
    lints = 0;
    for (const AnalysisRoot& root : locality.roots) {
      const staticpass::RootAnalysis analysis = staticpass::analyze_root(
          p.program, graph, root, p.sources, sinks, options);
      if (analysis.prunable) ++pruned;
      lints += analysis.lints.size();
    }
    benchmark::DoNotOptimize(pruned);
  }
  state.counters["roots"] = static_cast<double>(locality.roots.size());
  state.counters["pruned"] = static_cast<double>(pruned);
  state.counters["lints"] = static_cast<double>(lints);
  state.counters["kloc_per_s"] = benchmark::Counter(
      static_cast<double>(p.sources.total_loc()) / 1000.0,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_StaticPass)->Unit(benchmark::kMillisecond);

// The same end-to-end scan with the pre-filter disabled: every root runs
// symbolically. The gap to BM_EndToEnd is the wall-clock the pruning
// saves on this app.
void BM_EndToEndPrefilterOff(benchmark::State& state) {
  ScanOptions options;
  options.prefilter = false;
  Detector detector(options);
  for (auto _ : state) {
    const ScanReport report = detector.scan(sample_app().app);
    benchmark::DoNotOptimize(report.verdict);
  }
}
BENCHMARK(BM_EndToEndPrefilterOff)->Unit(benchmark::kMillisecond);

// Telemetry overhead contract: BM_EndToEnd is the unattached case (the
// single null-check no-op path); this is the same scan with a trace
// attached, collecting spans, solver samples and progress samples. The
// gap between the two is the observability cost; ci/check.sh gates the
// unattached case against a recorded baseline.
void BM_EndToEndTelemetry(benchmark::State& state) {
  uchecker::telemetry::Telemetry telemetry;
  ScanOptions options;
  options.telemetry = &telemetry;
  Detector detector(options);
  for (auto _ : state) {
    const ScanReport report = detector.scan(sample_app().app);
    benchmark::DoNotOptimize(report.verdict);
  }
  state.counters["traces"] = static_cast<double>(telemetry.traces().size());
}
BENCHMARK(BM_EndToEndTelemetry)->Unit(benchmark::kMillisecond);

// Evidence overhead contract (mirrors the telemetry one): BM_EndToEnd is
// the explain-off case — check_sinks takes a single untaken branch per
// sink, the null-telemetry idiom — and this is the same scan with full
// provenance collection (taint paths, guards, witness decoding). The gap
// is the evidence cost, paid only by scans that asked for it;
// ci/check.sh gates the explain-off case against the recorded baseline.
void BM_EndToEndExplain(benchmark::State& state) {
  ScanOptions options;
  options.explain = true;
  Detector detector(options);
  std::size_t hops = 0;
  for (auto _ : state) {
    const ScanReport report = detector.scan(sample_app().app);
    hops = 0;
    for (const Finding& f : report.findings) {
      hops += f.evidence.taint_path.size();
    }
    benchmark::DoNotOptimize(report.verdict);
  }
  state.counters["taint_hops"] = static_cast<double>(hops);
}
BENCHMARK(BM_EndToEndExplain)->Unit(benchmark::kMillisecond);

// Evidence extraction alone: taint-path + guard walk over the sink
// verdicts of one symbolically-executed root (no solver in the loop).
void BM_EvidenceExtraction(benchmark::State& state) {
  Parsed p = parse_sample();
  const CallGraph graph = build_call_graph(p.program);
  const LocalityResult locality = analyze_locality(p.program, graph, p.sources);
  Interpreter interp(p.program, p.diags);
  const InterpResult exec = interp.run(locality.roots.at(0));
  std::size_t hops = 0;
  std::size_t guards = 0;
  for (auto _ : state) {
    hops = 0;
    guards = 0;
    for (const SinkHit& sink : exec.sinks) {
      if (sink.src != kNoLabel) {
        hops += extract_taint_path(exec.graph, sink.src, sink.loc).size();
      }
      guards += extract_guards(exec.graph, sink.reachability).size();
    }
    benchmark::DoNotOptimize(hops);
  }
  state.counters["sinks"] = static_cast<double>(exec.sinks.size());
  state.counters["taint_hops"] = static_cast<double>(hops);
  state.counters["guards"] = static_cast<double>(guards);
}
BENCHMARK(BM_EvidenceExtraction)->Unit(benchmark::kMicrosecond);

// Cost of one disarmed SpanScope: what every instrumentation site pays
// when no telemetry is attached. Should be on the order of a branch.
void BM_SpanScopeNull(benchmark::State& state) {
  uchecker::telemetry::ScanTrace* trace = nullptr;
  benchmark::DoNotOptimize(trace);
  for (auto _ : state) {
    const uchecker::telemetry::SpanScope span(trace, "parse");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanScopeNull);

// Cost of one live span begin/end pair against a real trace.
void BM_SpanScopeLive(benchmark::State& state) {
  uchecker::telemetry::Telemetry telemetry;
  uchecker::telemetry::ScanTrace& trace = telemetry.begin_scan("bench");
  for (auto _ : state) {
    const uchecker::telemetry::SpanScope span(&trace, "parse");
    benchmark::DoNotOptimize(&span);
  }
  state.counters["spans"] = static_cast<double>(trace.spans().size());
}
BENCHMARK(BM_SpanScopeLive);

// Histogram hot path: one observe() on a default latency histogram.
void BM_HistogramObserve(benchmark::State& state) {
  uchecker::telemetry::MetricsRegistry metrics;
  uchecker::telemetry::Histogram& h = metrics.histogram("bench.latency_ms");
  double v = 0.0;
  for (auto _ : state) {
    h.observe(v);
    v += 0.37;
    if (v > 70000.0) v = 0.0;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramObserve);

void BM_HeapGraphOps(benchmark::State& state) {
  for (auto _ : state) {
    HeapGraph graph;
    Label prev = graph.add_symbol("s", Type::kString, {});
    for (int i = 0; i < 1000; ++i) {
      const Label c = graph.add_concrete(Value(std::int64_t{i}), {});
      prev = graph.add_op(OpKind::kConcat, Type::kString, {prev, c}, {});
    }
    benchmark::DoNotOptimize(graph.object_count());
  }
}
BENCHMARK(BM_HeapGraphOps);

void BM_TaintReachability(benchmark::State& state) {
  HeapGraph graph;
  Label prev = graph.add_symbol("$_FILES", Type::kArray, {}, true);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const Label c = graph.add_concrete(Value(std::int64_t{i}), {});
    prev = graph.add_op(OpKind::kConcat, Type::kString, {prev, c}, {});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.reaches_files_taint(prev));
  }
}
BENCHMARK(BM_TaintReachability)->Arg(100)->Arg(1000)->Arg(10000);

// Structural sharing: the same 250-node concat chain built four times
// into one graph. Rounds 2-4 are answered entirely by the cons table, so
// the graph holds one copy and cons_hits counts the deduplicated builds.
void BM_HeapGraphConsDedup(benchmark::State& state) {
  std::size_t hits = 0;
  std::size_t objects = 0;
  for (auto _ : state) {
    HeapGraph graph;
    for (int rep = 0; rep < 4; ++rep) {
      Label prev = graph.add_concrete(Value(std::string("seed")), {});
      for (int i = 0; i < 250; ++i) {
        const Label c = graph.add_concrete(Value(std::int64_t{i}), {});
        prev = graph.add_op(OpKind::kConcat, Type::kString, {prev, c}, {});
      }
      benchmark::DoNotOptimize(prev);
    }
    hits = graph.cons_hits();
    objects = graph.object_count();
  }
  state.counters["cons_hits"] = static_cast<double>(hits);
  state.counters["objects"] = static_cast<double>(objects);
}
BENCHMARK(BM_HeapGraphConsDedup);

// Environment access through interned symbol IDs: the cost of the
// get/set pairs the interpreter issues on every statement. Names are
// interned once; steady-state lookups are integer binary searches over
// a flat array instead of string-keyed tree walks.
void BM_EnvVarAccess(benchmark::State& state) {
  const auto interner = std::make_shared<VarInterner>();
  std::vector<std::string> names;
  for (int i = 0; i < 64; ++i) names.push_back("$var_" + std::to_string(i));
  Env env;
  env.bind_interner(interner);
  for (auto _ : state) {
    for (const std::string& name : names) {
      env.set(interner->intern(name), Label{1});
      benchmark::DoNotOptimize(env.get(interner->intern(name)));
    }
  }
  state.counters["vars"] = static_cast<double>(interner->size());
}
BENCHMARK(BM_EnvVarAccess);

}  // namespace

BENCHMARK_MAIN();
