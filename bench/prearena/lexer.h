// FROZEN pre-arena reference front end — measurement baseline only.
//
// This is the PR7-era (pre-arena) lexer/parser/AST, kept verbatim under
// the uchecker::prearena namespace so bench_micro can measure the
// arena front end against its real predecessor in the same run, on the
// same machine, with the same compiler. ci/check.sh step 10 gates the
// BM_Parse / BM_ParsePreArena ratio. Never include this from src/ and
// never "improve" it: its only value is being the unchanged baseline.
// PHP lexer: converts a SourceFile into a token stream.
//
// Handles the PHP constructs needed by the UChecker corpus: open/close
// tags with inline HTML, single-/double-quoted strings with simple
// interpolation, heredoc/nowdoc, all comment styles, and the full
// operator set of the parser's grammar.
#pragma once

#include <string>
#include <vector>

#include "bench/prearena/token.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::prearena::phplex {

class Lexer {
 public:
  Lexer(const SourceFile& file, DiagnosticSink& diags);

  // Lexes the whole file. Always ends with a kEndOfFile token.
  [[nodiscard]] std::vector<Token> lex_all();

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool match(char expected);
  [[nodiscard]] SourceLoc loc_here() const;

  void lex_inline_html(std::vector<Token>& out);
  void lex_php_token(std::vector<Token>& out);
  Token lex_variable();
  Token lex_number();
  Token lex_identifier_or_keyword();
  Token lex_single_quoted();
  Token lex_double_quoted();
  Token lex_heredoc();
  void skip_line_comment();
  void skip_block_comment();

  // Parses the body of a double-quoted/heredoc string with interpolation
  // markers into parts; shared between lex_double_quoted and lex_heredoc.
  Token make_string_token(SourceLoc start, std::vector<InterpPart> parts);

  const SourceFile& file_;
  DiagnosticSink& diags_;
  std::string_view src_;
  std::size_t pos_ = 0;
  bool in_php_ = false;
};

// Convenience: lex a whole file.
[[nodiscard]] std::vector<Token> lex_file(const SourceFile& file,
                                          DiagnosticSink& diags);

}  // namespace uchecker::prearena::phplex
