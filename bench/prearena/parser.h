// FROZEN pre-arena reference front end — measurement baseline only.
//
// This is the PR7-era (pre-arena) lexer/parser/AST, kept verbatim under
// the uchecker::prearena namespace so bench_micro can measure the
// arena front end against its real predecessor in the same run, on the
// same machine, with the same compiler. ci/check.sh step 10 gates the
// BM_Parse / BM_ParsePreArena ratio. Never include this from src/ and
// never "improve" it: its only value is being the unchanged baseline.
// Recursive-descent parser for the PHP subset defined in phpast/ast.h.
//
// Replaces the paper's dependency on the external PHP-Parser tool. The
// grammar follows PHP 7 operator precedence; interpolated strings are
// desugared into concatenation chains so the downstream symbolic
// interpreter only sees the paper's Table I core syntax plus statements.
#pragma once

#include <memory>
#include <vector>

#include "bench/prearena/ast.h"
#include "bench/prearena/token.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::prearena::phpparse {

class Parser {
 public:
  Parser(const SourceFile& file, std::vector<prearena::phplex::Token> tokens,
         DiagnosticSink& diags);

  // Parses the whole token stream into a PhpFile. Parse errors are
  // reported to the sink; the parser recovers at statement boundaries so
  // one bad statement does not lose the rest of the file.
  [[nodiscard]] prearena::phpast::PhpFile parse_file();

 private:
  using ExprPtr = prearena::phpast::ExprPtr;
  using StmtPtr = prearena::phpast::StmtPtr;

  // --- token helpers
  [[nodiscard]] const prearena::phplex::Token& peek(std::size_t ahead = 0) const;
  const prearena::phplex::Token& advance();
  [[nodiscard]] bool check(prearena::phplex::TokenKind kind) const;
  bool match(prearena::phplex::TokenKind kind);
  const prearena::phplex::Token& expect(prearena::phplex::TokenKind kind, const char* what);
  [[nodiscard]] bool at_end() const;
  [[nodiscard]] bool check_ident(const char* name) const;
  void synchronize();

  // --- statements
  StmtPtr parse_statement();
  std::vector<StmtPtr> parse_block_or_single();
  std::vector<StmtPtr> parse_braced_block();
  // Alternative syntax body: statements until one of the given
  // end-keywords (checked as identifiers, e.g. "endif").
  std::vector<StmtPtr> parse_alt_body(std::initializer_list<const char*> ends);
  StmtPtr parse_if();
  StmtPtr parse_while();
  StmtPtr parse_do_while();
  StmtPtr parse_for();
  StmtPtr parse_foreach();
  StmtPtr parse_switch();
  StmtPtr parse_function_decl();
  StmtPtr parse_class_decl();
  StmtPtr parse_try();
  std::vector<prearena::phpast::Param> parse_param_list();

  // --- expressions (precedence climbing)
  ExprPtr parse_expr();
  ExprPtr parse_assignment();
  ExprPtr parse_ternary();
  ExprPtr parse_binary(int min_precedence);
  ExprPtr parse_unary();
  ExprPtr parse_postfix(ExprPtr base);
  ExprPtr parse_primary();
  ExprPtr parse_array_literal(SourceLoc loc, bool bracket_form);
  std::vector<ExprPtr> parse_arg_list();
  ExprPtr desugar_template_string(const prearena::phplex::Token& token);

  const SourceFile& file_;
  std::vector<prearena::phplex::Token> tokens_;
  DiagnosticSink& diags_;
  std::size_t pos_ = 0;
  // Expression/statement recursion depth, capped to keep the recursive-
  // descent parser within stack bounds on pathological inputs.
  int depth_ = 0;
};

// Convenience: lex + parse a registered source file.
[[nodiscard]] prearena::phpast::PhpFile parse_php(const SourceFile& file,
                                        DiagnosticSink& diags);

}  // namespace uchecker::prearena::phpparse
