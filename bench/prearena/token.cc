// FROZEN pre-arena reference front end — measurement baseline only.
// See bench/prearena/token.h.
#include "bench/prearena/token.h"

namespace uchecker::prearena::phplex {

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEndOfFile: return "end of file";
    case TokenKind::kInlineHtml: return "inline HTML";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kTemplateString: return "interpolated string";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwElseif: return "'elseif'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwForeach: return "'foreach'";
    case TokenKind::kKwAs: return "'as'";
    case TokenKind::kKwFunction: return "'function'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwEcho: return "'echo'";
    case TokenKind::kKwPrint: return "'print'";
    case TokenKind::kKwGlobal: return "'global'";
    case TokenKind::kKwStatic: return "'static'";
    case TokenKind::kKwInclude: return "'include'";
    case TokenKind::kKwIncludeOnce: return "'include_once'";
    case TokenKind::kKwRequire: return "'require'";
    case TokenKind::kKwRequireOnce: return "'require_once'";
    case TokenKind::kKwTrue: return "'true'";
    case TokenKind::kKwFalse: return "'false'";
    case TokenKind::kKwNull: return "'null'";
    case TokenKind::kKwArray: return "'array'";
    case TokenKind::kKwList: return "'list'";
    case TokenKind::kKwIsset: return "'isset'";
    case TokenKind::kKwEmpty: return "'empty'";
    case TokenKind::kKwUnset: return "'unset'";
    case TokenKind::kKwNew: return "'new'";
    case TokenKind::kKwClass: return "'class'";
    case TokenKind::kKwPublic: return "'public'";
    case TokenKind::kKwPrivate: return "'private'";
    case TokenKind::kKwProtected: return "'protected'";
    case TokenKind::kKwConst: return "'const'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kKwSwitch: return "'switch'";
    case TokenKind::kKwCase: return "'case'";
    case TokenKind::kKwDefault: return "'default'";
    case TokenKind::kKwDo: return "'do'";
    case TokenKind::kKwAnd: return "'and'";
    case TokenKind::kKwOr: return "'or'";
    case TokenKind::kKwXor: return "'xor'";
    case TokenKind::kKwDie: return "'die'";
    case TokenKind::kKwExit: return "'exit'";
    case TokenKind::kKwExtends: return "'extends'";
    case TokenKind::kKwTry: return "'try'";
    case TokenKind::kKwCatch: return "'catch'";
    case TokenKind::kKwFinally: return "'finally'";
    case TokenKind::kKwThrow: return "'throw'";
    case TokenKind::kKwNamespace: return "'namespace'";
    case TokenKind::kKwUse: return "'use'";
    case TokenKind::kKwInstanceof: return "'instanceof'";
    case TokenKind::kKwAbstract: return "'abstract'";
    case TokenKind::kKwFinal: return "'final'";
    case TokenKind::kKwInterface: return "'interface'";
    case TokenKind::kKwImplements: return "'implements'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kStarStar: return "'**'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kSlashAssign: return "'/='";
    case TokenKind::kDotAssign: return "'.='";
    case TokenKind::kPercentAssign: return "'%='";
    case TokenKind::kCoalesceAssign: return "'??='";
    case TokenKind::kEqual: return "'=='";
    case TokenKind::kNotEqual: return "'!='";
    case TokenKind::kIdentical: return "'==='";
    case TokenKind::kNotIdentical: return "'!=='";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kLessEqual: return "'<='";
    case TokenKind::kGreaterEqual: return "'>='";
    case TokenKind::kSpaceship: return "'<=>'";
    case TokenKind::kAmpAmp: return "'&&'";
    case TokenKind::kPipePipe: return "'||'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kShiftLeft: return "'<<'";
    case TokenKind::kShiftRight: return "'>>'";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kCoalesce: return "'??'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kDoubleArrow: return "'=>'";
    case TokenKind::kDoubleColon: return "'::'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kDollarBrace: return "'${'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kBackslash: return "'\\'";
    case TokenKind::kUnknown: return "unknown token";
  }
  return "invalid";
}

}  // namespace uchecker::prearena::phplex
