// FROZEN pre-arena reference front end — measurement baseline only.
//
// This is the PR7-era (pre-arena) lexer/parser/AST, kept verbatim under
// the uchecker::prearena namespace so bench_micro can measure the
// arena front end against its real predecessor in the same run, on the
// same machine, with the same compiler. ci/check.sh step 10 gates the
// BM_Parse / BM_ParsePreArena ratio. Never include this from src/ and
// never "improve" it: its only value is being the unchanged baseline.
#include "bench/prearena/parser.h"

#include <cassert>

#include "bench/prearena/lexer.h"
#include "support/fault_injector.h"
#include "support/strutil.h"

namespace uchecker::prearena::phpparse {

using prearena::phplex::Token;
using prearena::phplex::TokenKind;
using namespace phpast;  // NOLINT: parser is the AST's builder

namespace {

// Binary operator precedence, following PHP 7. Higher binds tighter.
struct BinOpInfo {
  BinaryOp op;
  int precedence;
  bool right_assoc;
};

std::optional<BinOpInfo> binop_info(TokenKind kind) {
  switch (kind) {
    case TokenKind::kStarStar: return BinOpInfo{BinaryOp::kPow, 120, true};
    case TokenKind::kKwInstanceof:
      return BinOpInfo{BinaryOp::kInstanceof, 110, false};
    case TokenKind::kStar: return BinOpInfo{BinaryOp::kMul, 100, false};
    case TokenKind::kSlash: return BinOpInfo{BinaryOp::kDiv, 100, false};
    case TokenKind::kPercent: return BinOpInfo{BinaryOp::kMod, 100, false};
    case TokenKind::kPlus: return BinOpInfo{BinaryOp::kAdd, 90, false};
    case TokenKind::kMinus: return BinOpInfo{BinaryOp::kSub, 90, false};
    case TokenKind::kDot: return BinOpInfo{BinaryOp::kConcat, 90, false};
    case TokenKind::kShiftLeft:
      return BinOpInfo{BinaryOp::kShiftLeft, 80, false};
    case TokenKind::kShiftRight:
      return BinOpInfo{BinaryOp::kShiftRight, 80, false};
    case TokenKind::kLess: return BinOpInfo{BinaryOp::kLess, 70, false};
    case TokenKind::kLessEqual:
      return BinOpInfo{BinaryOp::kLessEqual, 70, false};
    case TokenKind::kGreater: return BinOpInfo{BinaryOp::kGreater, 70, false};
    case TokenKind::kGreaterEqual:
      return BinOpInfo{BinaryOp::kGreaterEqual, 70, false};
    case TokenKind::kEqual: return BinOpInfo{BinaryOp::kEqual, 60, false};
    case TokenKind::kNotEqual:
      return BinOpInfo{BinaryOp::kNotEqual, 60, false};
    case TokenKind::kIdentical:
      return BinOpInfo{BinaryOp::kIdentical, 60, false};
    case TokenKind::kNotIdentical:
      return BinOpInfo{BinaryOp::kNotIdentical, 60, false};
    case TokenKind::kSpaceship:
      return BinOpInfo{BinaryOp::kSpaceship, 60, false};
    case TokenKind::kAmp: return BinOpInfo{BinaryOp::kBitAnd, 50, false};
    case TokenKind::kCaret: return BinOpInfo{BinaryOp::kBitXor, 48, false};
    case TokenKind::kPipe: return BinOpInfo{BinaryOp::kBitOr, 46, false};
    case TokenKind::kAmpAmp: return BinOpInfo{BinaryOp::kAnd, 40, false};
    case TokenKind::kPipePipe: return BinOpInfo{BinaryOp::kOr, 38, false};
    case TokenKind::kCoalesce:
      return BinOpInfo{BinaryOp::kCoalesce, 36, true};
    // 'and'/'xor'/'or' bind looser than '=' but we fold them in here;
    // assignments inside them are parenthesized in practice.
    case TokenKind::kKwAnd: return BinOpInfo{BinaryOp::kAnd, 20, false};
    case TokenKind::kKwXor: return BinOpInfo{BinaryOp::kXor, 18, false};
    case TokenKind::kKwOr: return BinOpInfo{BinaryOp::kOr, 16, false};
    default: return std::nullopt;
  }
}

std::optional<BinaryOp> compound_assign_op(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPlusAssign: return BinaryOp::kAdd;
    case TokenKind::kMinusAssign: return BinaryOp::kSub;
    case TokenKind::kStarAssign: return BinaryOp::kMul;
    case TokenKind::kSlashAssign: return BinaryOp::kDiv;
    case TokenKind::kDotAssign: return BinaryOp::kConcat;
    case TokenKind::kPercentAssign: return BinaryOp::kMod;
    case TokenKind::kCoalesceAssign: return BinaryOp::kCoalesce;
    default: return std::nullopt;
  }
}

// Recognizes "(int)", "(string)" etc. cast syntax from an identifier.
std::optional<CastKind> cast_kind_for(std::string_view name) {
  const std::string lower = strutil::to_lower(name);
  if (lower == "int" || lower == "integer") return CastKind::kInt;
  if (lower == "float" || lower == "double" || lower == "real") {
    return CastKind::kFloat;
  }
  if (lower == "string") return CastKind::kString;
  if (lower == "bool" || lower == "boolean") return CastKind::kBool;
  if (lower == "object") return CastKind::kObject;
  return std::nullopt;
}

}  // namespace

Parser::Parser(const SourceFile& file, std::vector<Token> tokens,
               DiagnosticSink& diags)
    : file_(file), tokens_(std::move(tokens)), diags_(diags) {
  assert(!tokens_.empty() && tokens_.back().kind == TokenKind::kEndOfFile);
}

prearena::phpast::PhpFile parse_php(const SourceFile& file, DiagnosticSink& diags) {
  FaultInjector::checkpoint("parse");
  Parser parser(file, prearena::phplex::lex_file(file, diags), diags);
  return parser.parse_file();
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[idx];
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::check(TokenKind kind) const { return peek().kind == kind; }

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, const char* what) {
  if (check(kind)) return advance();
  diags_.error(peek().loc, std::string("expected ") + what + " but found " +
                               std::string(prearena::phplex::token_kind_name(peek().kind)));
  return peek();  // do not consume; caller / synchronize() recovers
}

bool Parser::at_end() const { return check(TokenKind::kEndOfFile); }

bool Parser::check_ident(const char* name) const {
  return check(TokenKind::kIdentifier) && strutil::iequals(peek().text, name);
}

void Parser::synchronize() {
  // Skip to the next statement boundary.
  while (!at_end()) {
    if (match(TokenKind::kSemicolon)) return;
    if (check(TokenKind::kRBrace) || check(TokenKind::kKwFunction) ||
        check(TokenKind::kKwIf) || check(TokenKind::kKwClass)) {
      return;
    }
    advance();
  }
}

// Error placeholder: guarantees node constructors never receive a null
// required child after a failed sub-parse (the error itself has already
// been reported). Downstream passes treat it as a null literal.
static ExprPtr require_expr(ExprPtr expr, SourceLoc loc) {
  if (expr == nullptr) expr = std::make_unique<NullLit>(loc);
  return expr;
}

namespace {

// Recursion bound for the whole grammar. Real plugins nest a few dozen
// levels at most; pathological inputs (e.g. 100K open parens) would
// otherwise overflow the stack. The cap also bounds AST depth for every
// recursive pass downstream (call graph scan, locality, interpreter,
// translation), and is sized so those passes fit in an 8 MB stack even
// with sanitizer-inflated frames.
constexpr int kMaxParseDepth = 128;

class DepthGuard {
 public:
  explicit DepthGuard(int& depth) : depth_(depth) { ++depth_; }
  ~DepthGuard() { --depth_; }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;

 private:
  int& depth_;
};

// Left-deep chains ($a[0][1]..., a + b + ...) are built by loops, not
// recursion, so DepthGuard alone cannot bound the depth of the AST they
// produce — and every downstream consumer (call-graph scan, walk(),
// interpreter) recurses over that spine. Each chain link charges the
// shared depth budget for the lifetime of the enclosing expression.
class ChainDepth {
 public:
  explicit ChainDepth(int& depth) : depth_(depth) {}
  ~ChainDepth() { depth_ -= links_; }
  ChainDepth(const ChainDepth&) = delete;
  ChainDepth& operator=(const ChainDepth&) = delete;

  void add_link() {
    ++links_;
    ++depth_;
  }

 private:
  int& depth_;
  int links_ = 0;
};

}  // namespace

prearena::phpast::PhpFile Parser::parse_file() {
  PhpFile out;
  out.file = file_.id();
  out.name = file_.name();
  while (!at_end()) {
    const std::size_t before = pos_;
    StmtPtr stmt = parse_statement();
    if (stmt != nullptr) out.statements.push_back(std::move(stmt));
    if (pos_ == before) {
      // Defensive: guarantee forward progress on malformed input.
      diags_.error(peek().loc, "could not parse statement; skipping token");
      advance();
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Statements

StmtPtr Parser::parse_statement() {
  const SourceLoc loc = peek().loc;
  if (depth_ >= kMaxParseDepth) {
    diags_.error(loc, "statement nests too deeply");
    advance();  // guarantee forward progress
    return nullptr;
  }
  DepthGuard guard(depth_);
  switch (peek().kind) {
    case TokenKind::kSemicolon:
      advance();
      return nullptr;
    case TokenKind::kInlineHtml: {
      const Token& t = advance();
      return std::make_unique<InlineHtml>(loc, t.text);
    }
    case TokenKind::kLBrace: {
      advance();
      std::vector<StmtPtr> body;
      while (!check(TokenKind::kRBrace) && !at_end()) {
        StmtPtr s = parse_statement();
        if (s != nullptr) body.push_back(std::move(s));
      }
      expect(TokenKind::kRBrace, "'}'");
      return std::make_unique<Block>(loc, std::move(body));
    }
    case TokenKind::kKwIf:
      return parse_if();
    case TokenKind::kKwWhile:
      return parse_while();
    case TokenKind::kKwDo:
      return parse_do_while();
    case TokenKind::kKwFor:
      return parse_for();
    case TokenKind::kKwForeach:
      return parse_foreach();
    case TokenKind::kKwSwitch:
      return parse_switch();
    case TokenKind::kKwFunction:
      // Distinguish a declaration from a closure expression statement.
      if (peek(1).kind == TokenKind::kIdentifier) return parse_function_decl();
      break;  // fall through to expression statement
    case TokenKind::kKwAbstract:
    case TokenKind::kKwFinal:
      advance();
      return parse_statement();  // modifier before class; ignored
    case TokenKind::kKwClass:
    case TokenKind::kKwInterface:
      return parse_class_decl();
    case TokenKind::kKwTry:
      return parse_try();
    case TokenKind::kKwThrow: {
      advance();
      ExprPtr value = require_expr(parse_expr(), loc);
      match(TokenKind::kSemicolon);
      return std::make_unique<ThrowStmt>(loc, std::move(value));
    }
    case TokenKind::kKwReturn: {
      advance();
      ExprPtr value;
      if (!check(TokenKind::kSemicolon) && !check(TokenKind::kRBrace)) {
        value = require_expr(parse_expr(), loc);
      }
      match(TokenKind::kSemicolon);
      return std::make_unique<Return>(loc, std::move(value));
    }
    case TokenKind::kKwBreak: {
      advance();
      if (check(TokenKind::kIntLiteral)) advance();  // break N: level ignored
      match(TokenKind::kSemicolon);
      return std::make_unique<Break>(loc);
    }
    case TokenKind::kKwContinue: {
      advance();
      if (check(TokenKind::kIntLiteral)) advance();
      match(TokenKind::kSemicolon);
      return std::make_unique<Continue>(loc);
    }
    case TokenKind::kKwEcho: {
      advance();
      std::vector<ExprPtr> values;
      values.push_back(require_expr(parse_expr(), loc));
      while (match(TokenKind::kComma)) {
        values.push_back(require_expr(parse_expr(), loc));
      }
      match(TokenKind::kSemicolon);
      return std::make_unique<Echo>(loc, std::move(values));
    }
    case TokenKind::kKwGlobal: {
      advance();
      std::vector<std::string> names;
      do {
        if (check(TokenKind::kVariable)) {
          names.push_back(advance().text);
        } else {
          diags_.error(peek().loc, "expected variable after 'global'");
          break;
        }
      } while (match(TokenKind::kComma));
      match(TokenKind::kSemicolon);
      return std::make_unique<Global>(loc, std::move(names));
    }
    case TokenKind::kKwStatic: {
      // `static $x = ...;` at statement level. (Static method calls are
      // handled through expressions and never start with kKwStatic here.)
      if (peek(1).kind == TokenKind::kVariable) {
        advance();
        const std::string name = advance().text;
        ExprPtr init;
        if (match(TokenKind::kAssign)) init = require_expr(parse_expr(), loc);
        match(TokenKind::kSemicolon);
        return std::make_unique<StaticVarStmt>(loc, name, std::move(init));
      }
      break;
    }
    case TokenKind::kKwUnset: {
      advance();
      expect(TokenKind::kLParen, "'('");
      std::vector<ExprPtr> operands;
      if (!check(TokenKind::kRParen)) {
        operands.push_back(require_expr(parse_expr(), loc));
        while (match(TokenKind::kComma)) {
          operands.push_back(require_expr(parse_expr(), loc));
        }
      }
      expect(TokenKind::kRParen, "')'");
      match(TokenKind::kSemicolon);
      return std::make_unique<UnsetStmt>(loc, std::move(operands));
    }
    case TokenKind::kKwNamespace: {
      advance();
      std::string name;
      while (check(TokenKind::kIdentifier) || check(TokenKind::kBackslash)) {
        name += advance().text.empty() ? "\\" : tokens_[pos_ - 1].text;
      }
      match(TokenKind::kSemicolon);
      return std::make_unique<NamespaceDecl>(loc, name);
    }
    case TokenKind::kKwUse: {
      advance();
      std::string path;
      while (!check(TokenKind::kSemicolon) && !at_end()) {
        path += advance().text;
      }
      match(TokenKind::kSemicolon);
      return std::make_unique<UseDecl>(loc, path);
    }
    default:
      break;
  }

  // Expression statement.
  ExprPtr expr = parse_expr();
  if (expr == nullptr) {
    synchronize();
    return nullptr;
  }
  match(TokenKind::kSemicolon);
  return std::make_unique<ExprStmt>(loc, std::move(expr));
}

std::vector<StmtPtr> Parser::parse_block_or_single() {
  std::vector<StmtPtr> body;
  if (match(TokenKind::kLBrace)) {
    while (!check(TokenKind::kRBrace) && !at_end()) {
      StmtPtr s = parse_statement();
      if (s != nullptr) body.push_back(std::move(s));
    }
    expect(TokenKind::kRBrace, "'}'");
  } else {
    StmtPtr s = parse_statement();
    if (s != nullptr) body.push_back(std::move(s));
  }
  return body;
}

std::vector<StmtPtr> Parser::parse_braced_block() {
  std::vector<StmtPtr> body;
  expect(TokenKind::kLBrace, "'{'");
  while (!check(TokenKind::kRBrace) && !at_end()) {
    StmtPtr s = parse_statement();
    if (s != nullptr) body.push_back(std::move(s));
  }
  expect(TokenKind::kRBrace, "'}'");
  return body;
}

std::vector<StmtPtr> Parser::parse_alt_body(
    std::initializer_list<const char*> ends) {
  std::vector<StmtPtr> body;
  while (!at_end()) {
    bool hit_end = false;
    for (const char* e : ends) {
      if (check_ident(e) || (std::string_view(e) == "else" && check(TokenKind::kKwElse)) ||
          (std::string_view(e) == "elseif" && check(TokenKind::kKwElseif))) {
        hit_end = true;
        break;
      }
    }
    if (hit_end) break;
    StmtPtr s = parse_statement();
    if (s != nullptr) body.push_back(std::move(s));
  }
  return body;
}

StmtPtr Parser::parse_if() {
  const SourceLoc loc = peek().loc;
  expect(TokenKind::kKwIf, "'if'");
  expect(TokenKind::kLParen, "'('");
  ExprPtr cond = require_expr(parse_expr(), loc);
  expect(TokenKind::kRParen, "')'");

  // Alternative syntax: if (...): ... elseif: ... else: ... endif;
  if (match(TokenKind::kColon)) {
    std::vector<StmtPtr> then_body = parse_alt_body({"endif", "elseif", "else"});
    std::vector<ElseIfClause> elseifs;
    std::vector<StmtPtr> else_body;
    bool has_else = false;
    while (check(TokenKind::kKwElseif)) {
      advance();
      expect(TokenKind::kLParen, "'('");
      ExprPtr elseif_cond = require_expr(parse_expr(), loc);
      expect(TokenKind::kRParen, "')'");
      expect(TokenKind::kColon, "':'");
      std::vector<StmtPtr> body = parse_alt_body({"endif", "elseif", "else"});
      elseifs.push_back(ElseIfClause{std::move(elseif_cond), std::move(body)});
    }
    if (match(TokenKind::kKwElse)) {
      expect(TokenKind::kColon, "':'");
      has_else = true;
      else_body = parse_alt_body({"endif"});
    }
    if (check_ident("endif")) advance();
    match(TokenKind::kSemicolon);
    return std::make_unique<If>(loc, std::move(cond), std::move(then_body),
                                std::move(elseifs), std::move(else_body),
                                has_else);
  }

  std::vector<StmtPtr> then_body = parse_block_or_single();
  std::vector<ElseIfClause> elseifs;
  std::vector<StmtPtr> else_body;
  bool has_else = false;
  while (true) {
    if (check(TokenKind::kKwElseif)) {
      advance();
      expect(TokenKind::kLParen, "'('");
      ExprPtr elseif_cond = require_expr(parse_expr(), loc);
      expect(TokenKind::kRParen, "')'");
      std::vector<StmtPtr> body = parse_block_or_single();
      elseifs.push_back(ElseIfClause{std::move(elseif_cond), std::move(body)});
      continue;
    }
    if (check(TokenKind::kKwElse) && peek(1).kind == TokenKind::kKwIf) {
      // `else if` — treat as elseif.
      advance();
      advance();
      expect(TokenKind::kLParen, "'('");
      ExprPtr elseif_cond = require_expr(parse_expr(), loc);
      expect(TokenKind::kRParen, "')'");
      std::vector<StmtPtr> body = parse_block_or_single();
      elseifs.push_back(ElseIfClause{std::move(elseif_cond), std::move(body)});
      continue;
    }
    if (check(TokenKind::kKwElse)) {
      advance();
      has_else = true;
      else_body = parse_block_or_single();
    }
    break;
  }
  return std::make_unique<If>(loc, std::move(cond), std::move(then_body),
                              std::move(elseifs), std::move(else_body),
                              has_else);
}

StmtPtr Parser::parse_while() {
  const SourceLoc loc = peek().loc;
  expect(TokenKind::kKwWhile, "'while'");
  expect(TokenKind::kLParen, "'('");
  ExprPtr cond = require_expr(parse_expr(), loc);
  expect(TokenKind::kRParen, "')'");
  std::vector<StmtPtr> body;
  if (match(TokenKind::kColon)) {
    body = parse_alt_body({"endwhile"});
    if (check_ident("endwhile")) advance();
    match(TokenKind::kSemicolon);
  } else {
    body = parse_block_or_single();
  }
  return std::make_unique<While>(loc, std::move(cond), std::move(body));
}

StmtPtr Parser::parse_do_while() {
  const SourceLoc loc = peek().loc;
  expect(TokenKind::kKwDo, "'do'");
  std::vector<StmtPtr> body = parse_block_or_single();
  expect(TokenKind::kKwWhile, "'while'");
  expect(TokenKind::kLParen, "'('");
  ExprPtr cond = require_expr(parse_expr(), loc);
  expect(TokenKind::kRParen, "')'");
  match(TokenKind::kSemicolon);
  return std::make_unique<DoWhile>(loc, std::move(body), std::move(cond));
}

StmtPtr Parser::parse_for() {
  const SourceLoc loc = peek().loc;
  expect(TokenKind::kKwFor, "'for'");
  expect(TokenKind::kLParen, "'('");
  std::vector<ExprPtr> init;
  std::vector<ExprPtr> cond;
  std::vector<ExprPtr> step;
  if (!check(TokenKind::kSemicolon)) {
    init.push_back(require_expr(parse_expr(), loc));
    while (match(TokenKind::kComma)) {
      init.push_back(require_expr(parse_expr(), loc));
    }
  }
  expect(TokenKind::kSemicolon, "';'");
  if (!check(TokenKind::kSemicolon)) {
    cond.push_back(require_expr(parse_expr(), loc));
    while (match(TokenKind::kComma)) {
      cond.push_back(require_expr(parse_expr(), loc));
    }
  }
  expect(TokenKind::kSemicolon, "';'");
  if (!check(TokenKind::kRParen)) {
    step.push_back(require_expr(parse_expr(), loc));
    while (match(TokenKind::kComma)) {
      step.push_back(require_expr(parse_expr(), loc));
    }
  }
  expect(TokenKind::kRParen, "')'");
  std::vector<StmtPtr> body;
  if (match(TokenKind::kColon)) {
    body = parse_alt_body({"endfor"});
    if (check_ident("endfor")) advance();
    match(TokenKind::kSemicolon);
  } else {
    body = parse_block_or_single();
  }
  return std::make_unique<For>(loc, std::move(init), std::move(cond),
                               std::move(step), std::move(body));
}

StmtPtr Parser::parse_foreach() {
  const SourceLoc loc = peek().loc;
  expect(TokenKind::kKwForeach, "'foreach'");
  expect(TokenKind::kLParen, "'('");
  ExprPtr iterable = require_expr(parse_expr(), loc);
  expect(TokenKind::kKwAs, "'as'");
  match(TokenKind::kAmp);  // by-ref value
  ExprPtr first = require_expr(parse_expr(), loc);
  ExprPtr key_var;
  ExprPtr value_var;
  if (match(TokenKind::kDoubleArrow)) {
    key_var = std::move(first);
    match(TokenKind::kAmp);
    value_var = require_expr(parse_expr(), loc);
  } else {
    value_var = std::move(first);
  }
  expect(TokenKind::kRParen, "')'");
  std::vector<StmtPtr> body;
  if (match(TokenKind::kColon)) {
    body = parse_alt_body({"endforeach"});
    if (check_ident("endforeach")) advance();
    match(TokenKind::kSemicolon);
  } else {
    body = parse_block_or_single();
  }
  return std::make_unique<Foreach>(loc, std::move(iterable),
                                   std::move(key_var), std::move(value_var),
                                   std::move(body));
}

StmtPtr Parser::parse_switch() {
  const SourceLoc loc = peek().loc;
  expect(TokenKind::kKwSwitch, "'switch'");
  expect(TokenKind::kLParen, "'('");
  ExprPtr subject = require_expr(parse_expr(), loc);
  expect(TokenKind::kRParen, "')'");
  expect(TokenKind::kLBrace, "'{'");
  std::vector<SwitchCase> cases;
  while (!check(TokenKind::kRBrace) && !at_end()) {
    SwitchCase c;
    if (match(TokenKind::kKwCase)) {
      c.match = require_expr(parse_expr(), loc);
    } else if (match(TokenKind::kKwDefault)) {
      c.match = nullptr;
    } else {
      diags_.error(peek().loc, "expected 'case' or 'default' in switch");
      synchronize();
      continue;
    }
    if (!match(TokenKind::kColon)) match(TokenKind::kSemicolon);
    while (!check(TokenKind::kKwCase) && !check(TokenKind::kKwDefault) &&
           !check(TokenKind::kRBrace) && !at_end()) {
      StmtPtr s = parse_statement();
      if (s != nullptr) c.body.push_back(std::move(s));
    }
    cases.push_back(std::move(c));
  }
  expect(TokenKind::kRBrace, "'}'");
  return std::make_unique<Switch>(loc, std::move(subject), std::move(cases));
}

std::vector<Param> Parser::parse_param_list() {
  std::vector<Param> params;
  expect(TokenKind::kLParen, "'('");
  while (!check(TokenKind::kRParen) && !at_end()) {
    Param p;
    // Optional type hint: identifier, 'array', or nullable '?Type'.
    if (check(TokenKind::kQuestion)) advance();
    if (check(TokenKind::kIdentifier) || check(TokenKind::kKwArray)) {
      p.type_hint = advance().text;
    }
    p.by_ref = match(TokenKind::kAmp);
    if (check(TokenKind::kVariable)) {
      p.name = advance().text;
    } else {
      diags_.error(peek().loc, "expected parameter variable");
      synchronize();
      break;
    }
    if (match(TokenKind::kAssign)) p.default_value = parse_expr();
    params.push_back(std::move(p));
    if (!match(TokenKind::kComma)) break;
  }
  expect(TokenKind::kRParen, "')'");
  return params;
}

StmtPtr Parser::parse_function_decl() {
  const SourceLoc loc = peek().loc;
  expect(TokenKind::kKwFunction, "'function'");
  match(TokenKind::kAmp);  // return-by-ref
  std::string name = expect(TokenKind::kIdentifier, "function name").text;
  std::vector<Param> params = parse_param_list();
  if (match(TokenKind::kColon)) {  // return type hint
    match(TokenKind::kQuestion);
    if (check(TokenKind::kIdentifier) || check(TokenKind::kKwArray)) advance();
  }
  std::vector<StmtPtr> body = parse_braced_block();
  return std::make_unique<FunctionDecl>(loc, std::move(name),
                                        std::move(params), std::move(body));
}

StmtPtr Parser::parse_class_decl() {
  const SourceLoc loc = peek().loc;
  advance();  // 'class' or 'interface'
  std::string name = expect(TokenKind::kIdentifier, "class name").text;
  std::string parent;
  if (match(TokenKind::kKwExtends)) {
    parent = expect(TokenKind::kIdentifier, "parent class name").text;
  }
  if (match(TokenKind::kKwImplements)) {
    do {
      expect(TokenKind::kIdentifier, "interface name");
    } while (match(TokenKind::kComma));
  }
  expect(TokenKind::kLBrace, "'{'");

  std::vector<PropertyDecl> properties;
  std::vector<std::unique_ptr<FunctionDecl>> methods;
  while (!check(TokenKind::kRBrace) && !at_end()) {
    bool is_static = false;
    // Visibility / static / abstract / final modifiers, any order.
    while (check(TokenKind::kKwPublic) || check(TokenKind::kKwPrivate) ||
           check(TokenKind::kKwProtected) || check(TokenKind::kKwStatic) ||
           check(TokenKind::kKwAbstract) || check(TokenKind::kKwFinal)) {
      if (check(TokenKind::kKwStatic)) is_static = true;
      advance();
    }
    if (check(TokenKind::kKwFunction)) {
      const SourceLoc floc = peek().loc;
      advance();
      match(TokenKind::kAmp);
      std::string method = expect(TokenKind::kIdentifier, "method name").text;
      std::vector<Param> params = parse_param_list();
      if (match(TokenKind::kColon)) {
        match(TokenKind::kQuestion);
        if (check(TokenKind::kIdentifier) || check(TokenKind::kKwArray)) {
          advance();
        }
      }
      std::vector<StmtPtr> body;
      if (check(TokenKind::kLBrace)) {
        body = parse_braced_block();
      } else {
        match(TokenKind::kSemicolon);  // abstract / interface method
      }
      methods.push_back(std::make_unique<FunctionDecl>(
          floc, std::move(method), std::move(params), std::move(body)));
      continue;
    }
    if (check(TokenKind::kVariable)) {
      PropertyDecl p;
      p.name = advance().text;
      p.is_static = is_static;
      if (match(TokenKind::kAssign)) p.default_value = parse_expr();
      while (match(TokenKind::kComma)) {
        // Multiple declarations on one line; keep only names.
        if (check(TokenKind::kVariable)) {
          PropertyDecl extra;
          extra.name = advance().text;
          extra.is_static = is_static;
          if (match(TokenKind::kAssign)) extra.default_value = parse_expr();
          properties.push_back(std::move(extra));
        }
      }
      match(TokenKind::kSemicolon);
      properties.push_back(std::move(p));
      continue;
    }
    if (match(TokenKind::kKwConst)) {
      // const NAME = expr; — recorded as a static property.
      while (check(TokenKind::kIdentifier)) {
        PropertyDecl p;
        p.name = advance().text;
        p.is_static = true;
        if (match(TokenKind::kAssign)) p.default_value = parse_expr();
        properties.push_back(std::move(p));
        if (!match(TokenKind::kComma)) break;
      }
      match(TokenKind::kSemicolon);
      continue;
    }
    if (match(TokenKind::kKwUse)) {
      // Trait use; skip the list.
      while (!check(TokenKind::kSemicolon) && !at_end()) advance();
      match(TokenKind::kSemicolon);
      continue;
    }
    diags_.error(peek().loc, "unexpected token in class body");
    advance();
  }
  expect(TokenKind::kRBrace, "'}'");
  return std::make_unique<ClassDecl>(loc, std::move(name), std::move(parent),
                                     std::move(properties), std::move(methods));
}

StmtPtr Parser::parse_try() {
  const SourceLoc loc = peek().loc;
  expect(TokenKind::kKwTry, "'try'");
  std::vector<StmtPtr> body = parse_braced_block();
  std::vector<CatchClause> catches;
  while (check(TokenKind::kKwCatch)) {
    advance();
    expect(TokenKind::kLParen, "'('");
    CatchClause clause;
    // "catch (A | B $e)" — record the first class name.
    match(TokenKind::kBackslash);
    if (check(TokenKind::kIdentifier)) clause.exception_class = advance().text;
    while (match(TokenKind::kPipe)) {
      match(TokenKind::kBackslash);
      if (check(TokenKind::kIdentifier)) advance();
    }
    if (check(TokenKind::kVariable)) clause.variable = advance().text;
    expect(TokenKind::kRParen, "')'");
    clause.body = parse_braced_block();
    catches.push_back(std::move(clause));
  }
  std::vector<StmtPtr> finally_body;
  if (check(TokenKind::kKwFinally)) {
    advance();
    finally_body = parse_braced_block();
  }
  return std::make_unique<TryCatch>(loc, std::move(body), std::move(catches),
                                    std::move(finally_body));
}

// ---------------------------------------------------------------------------
// Expressions

ExprPtr Parser::parse_expr() { return parse_assignment(); }

ExprPtr Parser::parse_assignment() {
  ExprPtr lhs = parse_ternary();
  if (lhs == nullptr) return nullptr;
  const SourceLoc loc = peek().loc;
  if (check(TokenKind::kAssign)) {
    advance();
    const bool by_ref = match(TokenKind::kAmp);
    ExprPtr rhs = require_expr(parse_assignment(), loc);  // right-associative
    return std::make_unique<Assign>(loc, std::move(lhs), std::move(rhs),
                                    std::nullopt, by_ref);
  }
  if (auto op = compound_assign_op(peek().kind)) {
    advance();
    ExprPtr rhs = require_expr(parse_assignment(), loc);
    return std::make_unique<Assign>(loc, std::move(lhs), std::move(rhs), op);
  }
  return lhs;
}

ExprPtr Parser::parse_ternary() {
  ExprPtr cond = parse_binary(0);
  if (cond == nullptr) return nullptr;
  if (!check(TokenKind::kQuestion)) return cond;
  const SourceLoc loc = advance().loc;
  ExprPtr then_expr;
  if (!check(TokenKind::kColon)) then_expr = parse_expr();
  expect(TokenKind::kColon, "':'");
  ExprPtr else_expr = require_expr(parse_assignment(), loc);
  return std::make_unique<Ternary>(loc, std::move(cond), std::move(then_expr),
                                   std::move(else_expr));
}

ExprPtr Parser::parse_binary(int min_precedence) {
  ExprPtr lhs = parse_unary();
  if (lhs == nullptr) return nullptr;
  ChainDepth chain(depth_);
  while (true) {
    const auto info = binop_info(peek().kind);
    if (!info || info->precedence < min_precedence) return lhs;
    if (depth_ >= kMaxParseDepth) {
      diags_.error(peek().loc, "expression nests too deeply");
      return lhs;
    }
    const SourceLoc loc = advance().loc;
    const int next_min =
        info->right_assoc ? info->precedence : info->precedence + 1;
    ExprPtr rhs = parse_binary(next_min);
    if (rhs == nullptr) {
      diags_.error(loc, "missing right operand");
      return lhs;
    }
    lhs = std::make_unique<Binary>(loc, info->op, std::move(lhs),
                                   std::move(rhs));
    chain.add_link();
  }
}

ExprPtr Parser::parse_unary() {
  const SourceLoc loc = peek().loc;
  if (depth_ >= kMaxParseDepth) {
    diags_.error(loc, "expression nests too deeply");
    advance();  // guarantee forward progress
    return std::make_unique<NullLit>(loc);
  }
  DepthGuard guard(depth_);
  switch (peek().kind) {
    case TokenKind::kBang:
      advance();
      return std::make_unique<Unary>(loc, UnaryOp::kNot,
                                     require_expr(parse_unary(), loc));
    case TokenKind::kMinus:
      advance();
      return std::make_unique<Unary>(loc, UnaryOp::kMinus,
                                     require_expr(parse_unary(), loc));
    case TokenKind::kPlus:
      advance();
      return std::make_unique<Unary>(loc, UnaryOp::kPlus,
                                     require_expr(parse_unary(), loc));
    case TokenKind::kTilde:
      advance();
      return std::make_unique<Unary>(loc, UnaryOp::kBitNot,
                                     require_expr(parse_unary(), loc));
    case TokenKind::kAt:
      advance();
      return std::make_unique<Unary>(loc, UnaryOp::kErrorSuppress,
                                     require_expr(parse_unary(), loc));
    case TokenKind::kPlusPlus:
      advance();
      return std::make_unique<Unary>(loc, UnaryOp::kPreInc,
                                     require_expr(parse_unary(), loc));
    case TokenKind::kMinusMinus:
      advance();
      return std::make_unique<Unary>(loc, UnaryOp::kPreDec,
                                     require_expr(parse_unary(), loc));
    case TokenKind::kKwPrint:
      advance();
      return std::make_unique<Unary>(loc, UnaryOp::kPrint,
                                     require_expr(parse_expr(), loc));
    case TokenKind::kKwNew: {
      advance();
      std::string class_name = "stdClass";
      match(TokenKind::kBackslash);
      if (check(TokenKind::kIdentifier) || check(TokenKind::kKwStatic)) {
        class_name = advance().text;
        while (check(TokenKind::kBackslash)) {
          advance();
          if (check(TokenKind::kIdentifier)) class_name = advance().text;
        }
      } else if (check(TokenKind::kVariable)) {
        advance();  // dynamic class; keep stdClass placeholder
      }
      std::vector<ExprPtr> args;
      if (check(TokenKind::kLParen)) args = parse_arg_list();
      return parse_postfix(
          std::make_unique<New>(loc, std::move(class_name), std::move(args)));
    }
    case TokenKind::kLParen: {
      // Could be a cast "(int) expr" or a parenthesized expression.
      if (peek(1).kind == TokenKind::kIdentifier &&
          peek(2).kind == TokenKind::kRParen) {
        if (auto cast = cast_kind_for(peek(1).text)) {
          advance();  // (
          advance();  // type
          advance();  // )
          return std::make_unique<Cast>(loc, *cast,
                                        require_expr(parse_unary(), loc));
        }
      }
      if (peek(1).kind == TokenKind::kKwArray &&
          peek(2).kind == TokenKind::kRParen) {
        advance();
        advance();
        advance();
        return std::make_unique<Cast>(loc, CastKind::kArray,
                                      require_expr(parse_unary(), loc));
      }
      advance();  // (
      ExprPtr inner = require_expr(parse_expr(), loc);
      expect(TokenKind::kRParen, "')'");
      return parse_postfix(std::move(inner));
    }
    default:
      return parse_postfix(parse_primary());
  }
}

ExprPtr Parser::parse_postfix(ExprPtr base) {
  if (base == nullptr) return nullptr;
  ChainDepth chain(depth_);
  while (true) {
    const SourceLoc loc = peek().loc;
    if (depth_ >= kMaxParseDepth) {
      diags_.error(loc, "expression nests too deeply");
      return base;
    }
    if (match(TokenKind::kLBracket)) {
      ExprPtr index;
      if (!check(TokenKind::kRBracket)) {
        index = require_expr(parse_expr(), loc);
      }
      expect(TokenKind::kRBracket, "']'");
      base = std::make_unique<ArrayAccess>(loc, std::move(base),
                                           std::move(index));
      chain.add_link();
      continue;
    }
    if (match(TokenKind::kLBrace) &&
        base->kind() == NodeKind::kVariable) {
      // Legacy string offset syntax $s{0}; treat as array access.
      ExprPtr index = require_expr(parse_expr(), loc);
      expect(TokenKind::kRBrace, "'}'");
      base = std::make_unique<ArrayAccess>(loc, std::move(base),
                                           std::move(index));
      chain.add_link();
      continue;
    }
    if (check(TokenKind::kArrow)) {
      advance();
      std::string name;
      if (check(TokenKind::kIdentifier) || peek().is_keyword()) {
        name = advance().text;
      } else if (check(TokenKind::kVariable)) {
        name = "$" + advance().text;  // dynamic property; opaque name
      } else {
        diags_.error(peek().loc, "expected property or method name after '->'");
        return base;
      }
      if (check(TokenKind::kLParen)) {
        std::vector<ExprPtr> args = parse_arg_list();
        base = std::make_unique<MethodCall>(loc, std::move(base),
                                            std::move(name), std::move(args));
      } else {
        base = std::make_unique<PropertyAccess>(loc, std::move(base),
                                                std::move(name));
      }
      chain.add_link();
      continue;
    }
    if (check(TokenKind::kDoubleColon)) {
      advance();
      std::string class_name = "?";
      if (const auto* cf = dynamic_cast<const ConstFetch*>(base.get())) {
        class_name = cf->name;
      }
      std::string member;
      if (check(TokenKind::kIdentifier) || peek().is_keyword()) {
        member = advance().text;
      } else if (check(TokenKind::kVariable)) {
        member = advance().text;
      } else if (check(TokenKind::kKwClass)) {
        advance();
        base = std::make_unique<StringLit>(loc, class_name);
        continue;
      }
      if (check(TokenKind::kLParen)) {
        std::vector<ExprPtr> args = parse_arg_list();
        base = std::make_unique<StaticCall>(loc, std::move(class_name),
                                            std::move(member), std::move(args));
      } else {
        // Class constant / static property read: model as const fetch.
        base = std::make_unique<ConstFetch>(loc, class_name + "::" + member);
      }
      continue;
    }
    if (check(TokenKind::kLParen) &&
        base->kind() == NodeKind::kVariable) {
      // Dynamic call through a variable: $f(...).
      std::vector<ExprPtr> args = parse_arg_list();
      base = std::make_unique<Call>(loc, std::move(base), std::move(args));
      chain.add_link();
      continue;
    }
    if (check(TokenKind::kPlusPlus)) {
      advance();
      base = std::make_unique<Unary>(loc, UnaryOp::kPostInc, std::move(base));
      chain.add_link();
      continue;
    }
    if (check(TokenKind::kMinusMinus)) {
      advance();
      base = std::make_unique<Unary>(loc, UnaryOp::kPostDec, std::move(base));
      chain.add_link();
      continue;
    }
    return base;
  }
}

std::vector<Parser::ExprPtr> Parser::parse_arg_list() {
  std::vector<ExprPtr> args;
  expect(TokenKind::kLParen, "'('");
  while (!check(TokenKind::kRParen) && !at_end()) {
    match(TokenKind::kAmp);  // by-ref argument
    ExprPtr arg = parse_expr();
    if (arg == nullptr) break;
    args.push_back(std::move(arg));
    if (!match(TokenKind::kComma)) break;
  }
  expect(TokenKind::kRParen, "')'");
  return args;
}

ExprPtr Parser::parse_primary() {
  const SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case TokenKind::kKwTrue:
      advance();
      return std::make_unique<BoolLit>(loc, true);
    case TokenKind::kKwFalse:
      advance();
      return std::make_unique<BoolLit>(loc, false);
    case TokenKind::kKwNull:
      advance();
      return std::make_unique<NullLit>(loc);
    case TokenKind::kIntLiteral: {
      const Token& t = advance();
      return std::make_unique<IntLit>(loc, t.int_value);
    }
    case TokenKind::kFloatLiteral: {
      const Token& t = advance();
      return std::make_unique<FloatLit>(loc, t.float_value);
    }
    case TokenKind::kStringLiteral: {
      const Token& t = advance();
      return std::make_unique<StringLit>(loc, t.text);
    }
    case TokenKind::kTemplateString: {
      const Token& t = advance();
      return desugar_template_string(t);
    }
    case TokenKind::kVariable: {
      const Token& t = advance();
      return std::make_unique<Variable>(loc, t.text);
    }
    case TokenKind::kKwArray: {
      advance();
      if (check(TokenKind::kLParen)) {
        advance();
        return parse_array_literal(loc, /*bracket_form=*/false);
      }
      return std::make_unique<ConstFetch>(loc, "array");
    }
    case TokenKind::kLBracket: {
      advance();
      return parse_array_literal(loc, /*bracket_form=*/true);
    }
    case TokenKind::kKwList: {
      advance();
      expect(TokenKind::kLParen, "'('");
      std::vector<ExprPtr> elements;
      while (!check(TokenKind::kRParen) && !at_end()) {
        if (check(TokenKind::kComma)) {
          elements.push_back(nullptr);
        } else {
          elements.push_back(require_expr(parse_expr(), loc));
        }
        if (!match(TokenKind::kComma)) break;
      }
      expect(TokenKind::kRParen, "')'");
      return std::make_unique<ListExpr>(loc, std::move(elements));
    }
    case TokenKind::kKwIsset: {
      advance();
      expect(TokenKind::kLParen, "'('");
      std::vector<ExprPtr> operands;
      operands.push_back(require_expr(parse_expr(), loc));
      while (match(TokenKind::kComma)) {
        operands.push_back(require_expr(parse_expr(), loc));
      }
      expect(TokenKind::kRParen, "')'");
      return std::make_unique<Isset>(loc, std::move(operands));
    }
    case TokenKind::kKwEmpty: {
      advance();
      expect(TokenKind::kLParen, "'('");
      ExprPtr operand = require_expr(parse_expr(), loc);
      expect(TokenKind::kRParen, "')'");
      return std::make_unique<Empty>(loc, std::move(operand));
    }
    case TokenKind::kKwInclude:
    case TokenKind::kKwIncludeOnce:
    case TokenKind::kKwRequire:
    case TokenKind::kKwRequireOnce: {
      const TokenKind kind = advance().kind;
      IncludeKind ik = IncludeKind::kInclude;
      if (kind == TokenKind::kKwIncludeOnce) ik = IncludeKind::kIncludeOnce;
      if (kind == TokenKind::kKwRequire) ik = IncludeKind::kRequire;
      if (kind == TokenKind::kKwRequireOnce) ik = IncludeKind::kRequireOnce;
      ExprPtr path = require_expr(parse_expr(), loc);
      return std::make_unique<IncludeExpr>(loc, ik, std::move(path));
    }
    case TokenKind::kKwDie:
    case TokenKind::kKwExit: {
      advance();
      ExprPtr operand;
      if (match(TokenKind::kLParen)) {
        if (!check(TokenKind::kRParen)) {
          operand = require_expr(parse_expr(), loc);
        }
        expect(TokenKind::kRParen, "')'");
      }
      return std::make_unique<ExitExpr>(loc, std::move(operand));
    }
    case TokenKind::kKwFunction: {
      // Closure expression.
      advance();
      match(TokenKind::kAmp);
      std::vector<Param> params = parse_param_list();
      std::vector<std::string> uses;
      if (check(TokenKind::kKwUse)) {
        advance();
        expect(TokenKind::kLParen, "'('");
        while (!check(TokenKind::kRParen) && !at_end()) {
          match(TokenKind::kAmp);
          if (check(TokenKind::kVariable)) uses.push_back(advance().text);
          if (!match(TokenKind::kComma)) break;
        }
        expect(TokenKind::kRParen, "')'");
      }
      if (match(TokenKind::kColon)) {
        match(TokenKind::kQuestion);
        if (check(TokenKind::kIdentifier) || check(TokenKind::kKwArray)) {
          advance();
        }
      }
      std::vector<StmtPtr> body = parse_braced_block();
      return std::make_unique<Closure>(loc, std::move(params),
                                       std::move(uses), std::move(body));
    }
    case TokenKind::kBackslash:
      // Fully-qualified name: \foo(...) — strip the namespace separator.
      advance();
      return parse_primary();
    case TokenKind::kIdentifier: {
      const Token& t = advance();
      if (check(TokenKind::kLParen)) {
        std::vector<ExprPtr> args = parse_arg_list();
        return std::make_unique<Call>(loc, strutil::to_lower(t.text),
                                      std::move(args));
      }
      return std::make_unique<ConstFetch>(loc, t.text);
    }
    default:
      diags_.error(loc, "unexpected token " +
                            std::string(prearena::phplex::token_kind_name(peek().kind)) +
                            " in expression");
      return nullptr;
  }
}

ExprPtr Parser::parse_array_literal(SourceLoc loc, bool bracket_form) {
  const TokenKind closer =
      bracket_form ? TokenKind::kRBracket : TokenKind::kRParen;
  std::vector<ArrayItem> items;
  while (!check(closer) && !at_end()) {
    ExprPtr first = parse_expr();
    if (first == nullptr) break;
    ArrayItem item;
    if (match(TokenKind::kDoubleArrow)) {
      item.key = std::move(first);
      match(TokenKind::kAmp);
      item.value = require_expr(parse_expr(), loc);
    } else {
      item.value = std::move(first);
    }
    items.push_back(std::move(item));
    if (!match(TokenKind::kComma)) break;
  }
  expect(closer, bracket_form ? "']'" : "')'");
  return std::make_unique<ArrayLit>(loc, std::move(items));
}

ExprPtr Parser::desugar_template_string(const Token& token) {
  // "pre $a post" => ("pre" . $a) . " post"; interpolated variables with
  // an index/property become the matching access expression.
  ExprPtr acc;
  for (const prearena::phplex::InterpPart& part : token.parts) {
    ExprPtr piece;
    if (part.kind == prearena::phplex::InterpPart::Kind::kLiteral) {
      piece = std::make_unique<StringLit>(token.loc, part.text);
    } else {
      ExprPtr var = std::make_unique<Variable>(token.loc, part.text);
      if (part.has_index) {
        ExprPtr index;
        if (part.index_is_string) {
          index = std::make_unique<StringLit>(token.loc, part.index);
        } else {
          index = std::make_unique<IntLit>(
              token.loc, strutil::php_intval(part.index));
        }
        var = std::make_unique<ArrayAccess>(token.loc, std::move(var),
                                            std::move(index));
      } else if (!part.property.empty()) {
        var = std::make_unique<PropertyAccess>(token.loc, std::move(var),
                                               part.property);
      }
      piece = std::move(var);
    }
    if (acc == nullptr) {
      acc = std::move(piece);
    } else {
      acc = std::make_unique<Binary>(token.loc, BinaryOp::kConcat,
                                     std::move(acc), std::move(piece));
    }
  }
  if (acc == nullptr) acc = std::make_unique<StringLit>(token.loc, "");
  return acc;
}

}  // namespace uchecker::prearena::phpparse
