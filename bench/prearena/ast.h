// FROZEN pre-arena reference front end — measurement baseline only.
//
// This is the PR7-era (pre-arena) lexer/parser/AST, kept verbatim under
// the uchecker::prearena namespace so bench_micro can measure the
// arena front end against its real predecessor in the same run, on the
// same machine, with the same compiler. ci/check.sh step 10 gates the
// BM_Parse / BM_ParsePreArena ratio. Never include this from src/ and
// never "improve" it: its only value is being the unchanged baseline.
// Abstract syntax tree for the PHP subset interpreted by UChecker.
//
// The AST deliberately mirrors the paper's Table I core syntax (constants,
// variables, unary/binary operations, array access, function definition
// and call, sequence, assignment, conditional, return) extended with the
// constructs that real WordPress-style plugins use: loops, foreach,
// echo/print, include/require, global, switch, classes with methods,
// isset/empty, ternary, casts, and interpolated strings (desugared to
// concatenation by the parser).
//
// Every node carries a SourceLoc; the symbolic interpreter propagates it
// into heap-graph objects so reports can cite exact source lines.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/source.h"

namespace uchecker::prearena::phpast {

class Node;
class Expr;
class Stmt;

using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class NodeKind : std::uint8_t {
  // Expressions
  kNullLit, kBoolLit, kIntLit, kFloatLit, kStringLit,
  kVariable, kConstFetch, kArrayAccess, kPropertyAccess,
  kUnary, kBinary, kAssign, kTernary, kCast,
  kCall, kMethodCall, kStaticCall, kNew,
  kArrayLit, kIsset, kEmpty, kIncludeExpr, kExitExpr, kListExpr,
  kClosure,

  // Statements
  kExprStmt, kEcho, kIf, kWhile, kDoWhile, kFor, kForeach,
  kSwitch, kReturn, kBreak, kContinue, kGlobal, kStaticVarStmt,
  kUnsetStmt, kBlock, kFunctionDecl, kClassDecl, kTryCatch, kThrowStmt,
  kInlineHtml, kNamespaceDecl, kUseDecl,
};

[[nodiscard]] std::string_view node_kind_name(NodeKind kind);

// -------------------------------------------------------------------------
// Base classes

class Node {
 public:
  Node(NodeKind kind, SourceLoc loc) : kind_(kind), loc_(loc) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeKind kind() const { return kind_; }
  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  NodeKind kind_;
  SourceLoc loc_;
};

class Expr : public Node {
 public:
  using Node::Node;
};

class Stmt : public Node {
 public:
  using Node::Node;
};

// -------------------------------------------------------------------------
// Expressions

class NullLit final : public Expr {
 public:
  explicit NullLit(SourceLoc loc) : Expr(NodeKind::kNullLit, loc) {}
};

class BoolLit final : public Expr {
 public:
  BoolLit(SourceLoc loc, bool value)
      : Expr(NodeKind::kBoolLit, loc), value(value) {}
  bool value;
};

class IntLit final : public Expr {
 public:
  IntLit(SourceLoc loc, std::int64_t value)
      : Expr(NodeKind::kIntLit, loc), value(value) {}
  std::int64_t value;
};

class FloatLit final : public Expr {
 public:
  FloatLit(SourceLoc loc, double value)
      : Expr(NodeKind::kFloatLit, loc), value(value) {}
  double value;
};

class StringLit final : public Expr {
 public:
  StringLit(SourceLoc loc, std::string value)
      : Expr(NodeKind::kStringLit, loc), value(std::move(value)) {}
  std::string value;
};

// $name. Superglobals ($_FILES, $_POST, ...) appear here too; the
// interpreter gives them special treatment.
class Variable final : public Expr {
 public:
  Variable(SourceLoc loc, std::string name)
      : Expr(NodeKind::kVariable, loc), name(std::move(name)) {}
  std::string name;  // without the leading '$'
};

// A bare identifier used as an expression: PHP constants such as
// PATHINFO_EXTENSION, __DIR__, UPLOAD_ERR_OK, or class constants.
class ConstFetch final : public Expr {
 public:
  ConstFetch(SourceLoc loc, std::string name)
      : Expr(NodeKind::kConstFetch, loc), name(std::move(name)) {}
  std::string name;
};

// base[index]; index may be null for the push form `$a[] = v`.
class ArrayAccess final : public Expr {
 public:
  ArrayAccess(SourceLoc loc, ExprPtr base, ExprPtr index)
      : Expr(NodeKind::kArrayAccess, loc),
        base(std::move(base)),
        index(std::move(index)) {}
  ExprPtr base;
  ExprPtr index;  // may be null
};

// base->name (property read). Dynamic property names are not modeled.
class PropertyAccess final : public Expr {
 public:
  PropertyAccess(SourceLoc loc, ExprPtr base, std::string name)
      : Expr(NodeKind::kPropertyAccess, loc),
        base(std::move(base)),
        name(std::move(name)) {}
  ExprPtr base;
  std::string name;
};

enum class UnaryOp : std::uint8_t {
  kNot, kMinus, kPlus, kBitNot, kErrorSuppress,
  kPreInc, kPreDec, kPostInc, kPostDec, kPrint,
};
[[nodiscard]] std::string_view unary_op_name(UnaryOp op);

class Unary final : public Expr {
 public:
  Unary(SourceLoc loc, UnaryOp op, ExprPtr operand)
      : Expr(NodeKind::kUnary, loc), op(op), operand(std::move(operand)) {}
  UnaryOp op;
  ExprPtr operand;
};

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kPow, kConcat,
  kEqual, kNotEqual, kIdentical, kNotIdentical,
  kLess, kGreater, kLessEqual, kGreaterEqual, kSpaceship,
  kAnd, kOr, kXor,
  kBitAnd, kBitOr, kBitXor, kShiftLeft, kShiftRight,
  kCoalesce, kInstanceof,
};
[[nodiscard]] std::string_view binary_op_name(BinaryOp op);

class Binary final : public Expr {
 public:
  Binary(SourceLoc loc, BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(NodeKind::kBinary, loc),
        op(op),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

// target = value, or compound (target .= value etc., with `compound_op`).
class Assign final : public Expr {
 public:
  Assign(SourceLoc loc, ExprPtr target, ExprPtr value,
         std::optional<BinaryOp> compound_op = std::nullopt, bool by_ref = false)
      : Expr(NodeKind::kAssign, loc),
        target(std::move(target)),
        value(std::move(value)),
        compound_op(compound_op),
        by_ref(by_ref) {}
  ExprPtr target;
  ExprPtr value;
  std::optional<BinaryOp> compound_op;
  bool by_ref;
};

// cond ? then : else; `then` may be null for the short form `a ?: b`.
class Ternary final : public Expr {
 public:
  Ternary(SourceLoc loc, ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
      : Expr(NodeKind::kTernary, loc),
        cond(std::move(cond)),
        then_expr(std::move(then_expr)),
        else_expr(std::move(else_expr)) {}
  ExprPtr cond;
  ExprPtr then_expr;  // may be null (Elvis operator)
  ExprPtr else_expr;
};

enum class CastKind : std::uint8_t {
  kInt, kFloat, kString, kBool, kArray, kObject,
};
[[nodiscard]] std::string_view cast_kind_name(CastKind kind);

class Cast final : public Expr {
 public:
  Cast(SourceLoc loc, CastKind cast, ExprPtr operand)
      : Expr(NodeKind::kCast, loc), cast(cast), operand(std::move(operand)) {}
  CastKind cast;
  ExprPtr operand;
};

// f(args...) where the callee is a plain name (the common case) or a
// dynamic expression ($f(...), rare; modeled as unknown).
class Call final : public Expr {
 public:
  Call(SourceLoc loc, std::string callee, std::vector<ExprPtr> args)
      : Expr(NodeKind::kCall, loc),
        callee(std::move(callee)),
        args(std::move(args)) {}
  Call(SourceLoc loc, ExprPtr callee_expr, std::vector<ExprPtr> args)
      : Expr(NodeKind::kCall, loc),
        callee_expr(std::move(callee_expr)),
        args(std::move(args)) {}
  std::string callee;    // lowercase-insensitive function name; empty if dynamic
  ExprPtr callee_expr;   // non-null iff dynamic call
  std::vector<ExprPtr> args;

  [[nodiscard]] bool is_dynamic() const { return callee_expr != nullptr; }
};

class MethodCall final : public Expr {
 public:
  MethodCall(SourceLoc loc, ExprPtr object, std::string method,
             std::vector<ExprPtr> args)
      : Expr(NodeKind::kMethodCall, loc),
        object(std::move(object)),
        method(std::move(method)),
        args(std::move(args)) {}
  ExprPtr object;
  std::string method;
  std::vector<ExprPtr> args;
};

class StaticCall final : public Expr {
 public:
  StaticCall(SourceLoc loc, std::string class_name, std::string method,
             std::vector<ExprPtr> args)
      : Expr(NodeKind::kStaticCall, loc),
        class_name(std::move(class_name)),
        method(std::move(method)),
        args(std::move(args)) {}
  std::string class_name;
  std::string method;
  std::vector<ExprPtr> args;
};

class New final : public Expr {
 public:
  New(SourceLoc loc, std::string class_name, std::vector<ExprPtr> args)
      : Expr(NodeKind::kNew, loc),
        class_name(std::move(class_name)),
        args(std::move(args)) {}
  std::string class_name;
  std::vector<ExprPtr> args;
};

// array(k => v, ...) or [v, ...].
struct ArrayItem {
  ExprPtr key;  // may be null
  ExprPtr value;
};

class ArrayLit final : public Expr {
 public:
  ArrayLit(SourceLoc loc, std::vector<ArrayItem> items)
      : Expr(NodeKind::kArrayLit, loc), items(std::move(items)) {}
  std::vector<ArrayItem> items;
};

class Isset final : public Expr {
 public:
  Isset(SourceLoc loc, std::vector<ExprPtr> operands)
      : Expr(NodeKind::kIsset, loc), operands(std::move(operands)) {}
  std::vector<ExprPtr> operands;
};

class Empty final : public Expr {
 public:
  Empty(SourceLoc loc, ExprPtr operand)
      : Expr(NodeKind::kEmpty, loc), operand(std::move(operand)) {}
  ExprPtr operand;
};

enum class IncludeKind : std::uint8_t {
  kInclude, kIncludeOnce, kRequire, kRequireOnce,
};
[[nodiscard]] std::string_view include_kind_name(IncludeKind kind);

class IncludeExpr final : public Expr {
 public:
  IncludeExpr(SourceLoc loc, IncludeKind include_kind, ExprPtr path)
      : Expr(NodeKind::kIncludeExpr, loc),
        include_kind(include_kind),
        path(std::move(path)) {}
  IncludeKind include_kind;
  ExprPtr path;
};

// die/exit, optionally with a message/status expression.
class ExitExpr final : public Expr {
 public:
  ExitExpr(SourceLoc loc, ExprPtr operand)
      : Expr(NodeKind::kExitExpr, loc), operand(std::move(operand)) {}
  ExprPtr operand;  // may be null
};

// list($a, $b) destructuring target.
class ListExpr final : public Expr {
 public:
  ListExpr(SourceLoc loc, std::vector<ExprPtr> elements)
      : Expr(NodeKind::kListExpr, loc), elements(std::move(elements)) {}
  std::vector<ExprPtr> elements;  // entries may be null (skipped slots)
};

// -------------------------------------------------------------------------
// Statements

class ExprStmt final : public Stmt {
 public:
  ExprStmt(SourceLoc loc, ExprPtr expr)
      : Stmt(NodeKind::kExprStmt, loc), expr(std::move(expr)) {}
  ExprPtr expr;
};

class Echo final : public Stmt {
 public:
  Echo(SourceLoc loc, std::vector<ExprPtr> values)
      : Stmt(NodeKind::kEcho, loc), values(std::move(values)) {}
  std::vector<ExprPtr> values;
};

struct ElseIfClause {
  ExprPtr cond;
  std::vector<StmtPtr> body;
};

class If final : public Stmt {
 public:
  If(SourceLoc loc, ExprPtr cond, std::vector<StmtPtr> then_body,
     std::vector<ElseIfClause> elseifs, std::vector<StmtPtr> else_body,
     bool has_else)
      : Stmt(NodeKind::kIf, loc),
        cond(std::move(cond)),
        then_body(std::move(then_body)),
        elseifs(std::move(elseifs)),
        else_body(std::move(else_body)),
        has_else(has_else) {}
  ExprPtr cond;
  std::vector<StmtPtr> then_body;
  std::vector<ElseIfClause> elseifs;
  std::vector<StmtPtr> else_body;
  bool has_else;
};

class While final : public Stmt {
 public:
  While(SourceLoc loc, ExprPtr cond, std::vector<StmtPtr> body)
      : Stmt(NodeKind::kWhile, loc),
        cond(std::move(cond)),
        body(std::move(body)) {}
  ExprPtr cond;
  std::vector<StmtPtr> body;
};

class DoWhile final : public Stmt {
 public:
  DoWhile(SourceLoc loc, std::vector<StmtPtr> body, ExprPtr cond)
      : Stmt(NodeKind::kDoWhile, loc),
        body(std::move(body)),
        cond(std::move(cond)) {}
  std::vector<StmtPtr> body;
  ExprPtr cond;
};

class For final : public Stmt {
 public:
  For(SourceLoc loc, std::vector<ExprPtr> init, std::vector<ExprPtr> cond,
      std::vector<ExprPtr> step, std::vector<StmtPtr> body)
      : Stmt(NodeKind::kFor, loc),
        init(std::move(init)),
        cond(std::move(cond)),
        step(std::move(step)),
        body(std::move(body)) {}
  std::vector<ExprPtr> init;
  std::vector<ExprPtr> cond;
  std::vector<ExprPtr> step;
  std::vector<StmtPtr> body;
};

class Foreach final : public Stmt {
 public:
  Foreach(SourceLoc loc, ExprPtr iterable, ExprPtr key_var, ExprPtr value_var,
          std::vector<StmtPtr> body)
      : Stmt(NodeKind::kForeach, loc),
        iterable(std::move(iterable)),
        key_var(std::move(key_var)),
        value_var(std::move(value_var)),
        body(std::move(body)) {}
  ExprPtr iterable;
  ExprPtr key_var;    // may be null
  ExprPtr value_var;  // target for each element
  std::vector<StmtPtr> body;
};

struct SwitchCase {
  ExprPtr match;  // null for `default:`
  std::vector<StmtPtr> body;
};

class Switch final : public Stmt {
 public:
  Switch(SourceLoc loc, ExprPtr subject, std::vector<SwitchCase> cases)
      : Stmt(NodeKind::kSwitch, loc),
        subject(std::move(subject)),
        cases(std::move(cases)) {}
  ExprPtr subject;
  std::vector<SwitchCase> cases;
};

class Return final : public Stmt {
 public:
  Return(SourceLoc loc, ExprPtr value)
      : Stmt(NodeKind::kReturn, loc), value(std::move(value)) {}
  ExprPtr value;  // may be null
};

class Break final : public Stmt {
 public:
  explicit Break(SourceLoc loc) : Stmt(NodeKind::kBreak, loc) {}
};

class Continue final : public Stmt {
 public:
  explicit Continue(SourceLoc loc) : Stmt(NodeKind::kContinue, loc) {}
};

class Global final : public Stmt {
 public:
  Global(SourceLoc loc, std::vector<std::string> names)
      : Stmt(NodeKind::kGlobal, loc), names(std::move(names)) {}
  std::vector<std::string> names;
};

class StaticVarStmt final : public Stmt {
 public:
  StaticVarStmt(SourceLoc loc, std::string name, ExprPtr init)
      : Stmt(NodeKind::kStaticVarStmt, loc),
        name(std::move(name)),
        init(std::move(init)) {}
  std::string name;
  ExprPtr init;  // may be null
};

class UnsetStmt final : public Stmt {
 public:
  UnsetStmt(SourceLoc loc, std::vector<ExprPtr> operands)
      : Stmt(NodeKind::kUnsetStmt, loc), operands(std::move(operands)) {}
  std::vector<ExprPtr> operands;
};

class Block final : public Stmt {
 public:
  Block(SourceLoc loc, std::vector<StmtPtr> body)
      : Stmt(NodeKind::kBlock, loc), body(std::move(body)) {}
  std::vector<StmtPtr> body;
};

struct Param {
  std::string name;
  ExprPtr default_value;  // may be null
  bool by_ref = false;
  std::string type_hint;  // informational only
};

class FunctionDecl final : public Stmt {
 public:
  FunctionDecl(SourceLoc loc, std::string name, std::vector<Param> params,
               std::vector<StmtPtr> body)
      : Stmt(NodeKind::kFunctionDecl, loc),
        name(std::move(name)),
        params(std::move(params)),
        body(std::move(body)) {}
  std::string name;
  std::vector<Param> params;
  std::vector<StmtPtr> body;
};

// Anonymous function (closure). Shares Param with FunctionDecl.
class Closure final : public Expr {
 public:
  Closure(SourceLoc loc, std::vector<Param> params,
          std::vector<std::string> uses, std::vector<StmtPtr> body)
      : Expr(NodeKind::kClosure, loc),
        params(std::move(params)),
        uses(std::move(uses)),
        body(std::move(body)) {}
  std::vector<Param> params;
  std::vector<std::string> uses;
  std::vector<StmtPtr> body;
};

struct PropertyDecl {
  std::string name;
  ExprPtr default_value;  // may be null
  bool is_static = false;
};

class ClassDecl final : public Stmt {
 public:
  ClassDecl(SourceLoc loc, std::string name, std::string parent,
            std::vector<PropertyDecl> properties,
            std::vector<std::unique_ptr<FunctionDecl>> methods)
      : Stmt(NodeKind::kClassDecl, loc),
        name(std::move(name)),
        parent(std::move(parent)),
        properties(std::move(properties)),
        methods(std::move(methods)) {}
  std::string name;
  std::string parent;  // empty if no `extends`
  std::vector<PropertyDecl> properties;
  std::vector<std::unique_ptr<FunctionDecl>> methods;
};

struct CatchClause {
  std::string exception_class;
  std::string variable;
  std::vector<StmtPtr> body;
};

class TryCatch final : public Stmt {
 public:
  TryCatch(SourceLoc loc, std::vector<StmtPtr> body,
           std::vector<CatchClause> catches, std::vector<StmtPtr> finally_body)
      : Stmt(NodeKind::kTryCatch, loc),
        body(std::move(body)),
        catches(std::move(catches)),
        finally_body(std::move(finally_body)) {}
  std::vector<StmtPtr> body;
  std::vector<CatchClause> catches;
  std::vector<StmtPtr> finally_body;
};

class ThrowStmt final : public Stmt {
 public:
  ThrowStmt(SourceLoc loc, ExprPtr value)
      : Stmt(NodeKind::kThrowStmt, loc), value(std::move(value)) {}
  ExprPtr value;
};

class InlineHtml final : public Stmt {
 public:
  InlineHtml(SourceLoc loc, std::string text)
      : Stmt(NodeKind::kInlineHtml, loc), text(std::move(text)) {}
  std::string text;
};

class NamespaceDecl final : public Stmt {
 public:
  NamespaceDecl(SourceLoc loc, std::string name)
      : Stmt(NodeKind::kNamespaceDecl, loc), name(std::move(name)) {}
  std::string name;
};

class UseDecl final : public Stmt {
 public:
  UseDecl(SourceLoc loc, std::string path)
      : Stmt(NodeKind::kUseDecl, loc), path(std::move(path)) {}
  std::string path;
};

// -------------------------------------------------------------------------
// A parsed PHP file.

struct PhpFile {
  FileId file;
  std::string name;  // same as SourceFile::name()
  std::vector<StmtPtr> statements;
};

}  // namespace uchecker::prearena::phpast
