// FROZEN pre-arena reference front end — measurement baseline only.
//
// This is the PR7-era (pre-arena) lexer/parser/AST, kept verbatim under
// the uchecker::prearena namespace so bench_micro can measure the
// arena front end against its real predecessor in the same run, on the
// same machine, with the same compiler. ci/check.sh step 10 gates the
// BM_Parse / BM_ParsePreArena ratio. Never include this from src/ and
// never "improve" it: its only value is being the unchanged baseline.
#include "bench/prearena/lexer.h"

#include <cctype>
#include <unordered_map>

#include "support/strutil.h"

namespace uchecker::prearena::phplex {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

const std::unordered_map<std::string, TokenKind>& keyword_table() {
  static const auto* table = new std::unordered_map<std::string, TokenKind>{
      {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},
      {"elseif", TokenKind::kKwElseif},
      {"while", TokenKind::kKwWhile},
      {"for", TokenKind::kKwFor},
      {"foreach", TokenKind::kKwForeach},
      {"as", TokenKind::kKwAs},
      {"function", TokenKind::kKwFunction},
      {"return", TokenKind::kKwReturn},
      {"echo", TokenKind::kKwEcho},
      {"print", TokenKind::kKwPrint},
      {"global", TokenKind::kKwGlobal},
      {"static", TokenKind::kKwStatic},
      {"include", TokenKind::kKwInclude},
      {"include_once", TokenKind::kKwIncludeOnce},
      {"require", TokenKind::kKwRequire},
      {"require_once", TokenKind::kKwRequireOnce},
      {"true", TokenKind::kKwTrue},
      {"false", TokenKind::kKwFalse},
      {"null", TokenKind::kKwNull},
      {"array", TokenKind::kKwArray},
      {"list", TokenKind::kKwList},
      {"isset", TokenKind::kKwIsset},
      {"empty", TokenKind::kKwEmpty},
      {"unset", TokenKind::kKwUnset},
      {"new", TokenKind::kKwNew},
      {"class", TokenKind::kKwClass},
      {"public", TokenKind::kKwPublic},
      {"private", TokenKind::kKwPrivate},
      {"protected", TokenKind::kKwProtected},
      {"const", TokenKind::kKwConst},
      {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue},
      {"switch", TokenKind::kKwSwitch},
      {"case", TokenKind::kKwCase},
      {"default", TokenKind::kKwDefault},
      {"do", TokenKind::kKwDo},
      {"and", TokenKind::kKwAnd},
      {"or", TokenKind::kKwOr},
      {"xor", TokenKind::kKwXor},
      {"die", TokenKind::kKwDie},
      {"exit", TokenKind::kKwExit},
      {"extends", TokenKind::kKwExtends},
      {"try", TokenKind::kKwTry},
      {"catch", TokenKind::kKwCatch},
      {"finally", TokenKind::kKwFinally},
      {"throw", TokenKind::kKwThrow},
      {"namespace", TokenKind::kKwNamespace},
      {"use", TokenKind::kKwUse},
      {"instanceof", TokenKind::kKwInstanceof},
      {"abstract", TokenKind::kKwAbstract},
      {"final", TokenKind::kKwFinal},
      {"interface", TokenKind::kKwInterface},
      {"implements", TokenKind::kKwImplements},
  };
  return *table;
}

}  // namespace

Lexer::Lexer(const SourceFile& file, DiagnosticSink& diags)
    : file_(file), diags_(diags), src_(file.content()) {}

std::vector<Token> lex_file(const SourceFile& file, DiagnosticSink& diags) {
  return Lexer(file, diags).lex_all();
}

char Lexer::peek(std::size_t ahead) const {
  return (pos_ + ahead < src_.size()) ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  return at_end() ? '\0' : src_[pos_++];
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  ++pos_;
  return true;
}

SourceLoc Lexer::loc_here() const { return file_.loc_for_offset(pos_); }

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  while (!at_end()) {
    if (!in_php_) {
      lex_inline_html(out);
    } else {
      lex_php_token(out);
    }
  }
  Token eof;
  eof.kind = TokenKind::kEndOfFile;
  eof.loc = loc_here();
  out.push_back(std::move(eof));
  return out;
}

void Lexer::lex_inline_html(std::vector<Token>& out) {
  const SourceLoc start = loc_here();
  const std::size_t begin = pos_;
  const std::size_t open = src_.find("<?php", pos_);
  std::size_t html_end;
  if (open == std::string_view::npos) {
    // Also accept the short echo tag "<?=" which lexes as echo.
    const std::size_t short_open = src_.find("<?=", pos_);
    if (short_open == std::string_view::npos) {
      html_end = src_.size();
      pos_ = src_.size();
    } else {
      html_end = short_open;
      pos_ = short_open + 3;
      in_php_ = true;
    }
  } else {
    html_end = open;
    pos_ = open + 5;
    in_php_ = true;
  }
  if (html_end > begin) {
    Token t;
    t.kind = TokenKind::kInlineHtml;
    t.loc = start;
    t.text = std::string(src_.substr(begin, html_end - begin));
    // Pure-whitespace HTML between code blocks is noise; drop it.
    if (!strutil::trim(t.text).empty()) out.push_back(std::move(t));
  }
  if (in_php_ && open != std::string_view::npos &&
      src_.substr(pos_ - 5, 5) == "<?php") {
    // "<?=" emits an implicit echo keyword so `<?= $x ?>` parses.
  } else if (in_php_) {
    Token echo;
    echo.kind = TokenKind::kKwEcho;
    echo.loc = loc_here();
    out.push_back(std::move(echo));
  }
}

void Lexer::lex_php_token(std::vector<Token>& out) {
  // Skip whitespace and comments.
  while (!at_end()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++pos_;
    } else if (c == '/' && peek(1) == '/') {
      skip_line_comment();
    } else if (c == '#') {
      skip_line_comment();
    } else if (c == '/' && peek(1) == '*') {
      skip_block_comment();
    } else {
      break;
    }
  }
  if (at_end()) return;

  const SourceLoc start = loc_here();

  // Close tag?
  if (peek() == '?' && peek(1) == '>') {
    pos_ += 2;
    in_php_ = false;
    // PHP treats "?>" as an implicit statement terminator.
    Token t;
    t.kind = TokenKind::kSemicolon;
    t.loc = start;
    out.push_back(std::move(t));
    // Skip a single newline immediately following the close tag.
    if (peek() == '\n') ++pos_;
    return;
  }

  const char c = peek();
  if (c == '$') {
    if (peek(1) == '{') {
      pos_ += 2;
      Token t;
      t.kind = TokenKind::kDollarBrace;
      t.loc = start;
      out.push_back(std::move(t));
      return;
    }
    out.push_back(lex_variable());
    return;
  }
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
    out.push_back(lex_number());
    return;
  }
  if (is_ident_start(c)) {
    out.push_back(lex_identifier_or_keyword());
    return;
  }
  if (c == '\'') {
    out.push_back(lex_single_quoted());
    return;
  }
  if (c == '"') {
    out.push_back(lex_double_quoted());
    return;
  }
  if (c == '<' && peek(1) == '<' && peek(2) == '<') {
    out.push_back(lex_heredoc());
    return;
  }

  ++pos_;
  Token t;
  t.loc = start;
  switch (c) {
    case '+':
      t.kind = match('+') ? TokenKind::kPlusPlus
               : match('=') ? TokenKind::kPlusAssign
                            : TokenKind::kPlus;
      break;
    case '-':
      t.kind = match('-') ? TokenKind::kMinusMinus
               : match('=') ? TokenKind::kMinusAssign
               : match('>') ? TokenKind::kArrow
                            : TokenKind::kMinus;
      break;
    case '*':
      t.kind = match('*') ? TokenKind::kStarStar
               : match('=') ? TokenKind::kStarAssign
                            : TokenKind::kStar;
      break;
    case '/':
      t.kind = match('=') ? TokenKind::kSlashAssign : TokenKind::kSlash;
      break;
    case '%':
      t.kind = match('=') ? TokenKind::kPercentAssign : TokenKind::kPercent;
      break;
    case '.':
      t.kind = match('=') ? TokenKind::kDotAssign : TokenKind::kDot;
      break;
    case '=':
      if (match('=')) {
        t.kind = match('=') ? TokenKind::kIdentical : TokenKind::kEqual;
      } else if (match('>')) {
        t.kind = TokenKind::kDoubleArrow;
      } else {
        t.kind = TokenKind::kAssign;
      }
      break;
    case '!':
      if (match('=')) {
        t.kind = match('=') ? TokenKind::kNotIdentical : TokenKind::kNotEqual;
      } else {
        t.kind = TokenKind::kBang;
      }
      break;
    case '<':
      if (match('=')) {
        t.kind = match('>') ? TokenKind::kSpaceship : TokenKind::kLessEqual;
      } else if (match('<')) {
        t.kind = TokenKind::kShiftLeft;
      } else if (match('>')) {
        t.kind = TokenKind::kNotEqual;  // PHP's "<>"
      } else {
        t.kind = TokenKind::kLess;
      }
      break;
    case '>':
      if (match('=')) {
        t.kind = TokenKind::kGreaterEqual;
      } else if (match('>')) {
        t.kind = TokenKind::kShiftRight;
      } else {
        t.kind = TokenKind::kGreater;
      }
      break;
    case '&':
      t.kind = match('&') ? TokenKind::kAmpAmp : TokenKind::kAmp;
      break;
    case '|':
      t.kind = match('|') ? TokenKind::kPipePipe : TokenKind::kPipe;
      break;
    case '^': t.kind = TokenKind::kCaret; break;
    case '~': t.kind = TokenKind::kTilde; break;
    case '?':
      if (match('?')) {
        t.kind = match('=') ? TokenKind::kCoalesceAssign : TokenKind::kCoalesce;
      } else {
        t.kind = TokenKind::kQuestion;
      }
      break;
    case ':':
      t.kind = match(':') ? TokenKind::kDoubleColon : TokenKind::kColon;
      break;
    case '@': t.kind = TokenKind::kAt; break;
    case ',': t.kind = TokenKind::kComma; break;
    case ';': t.kind = TokenKind::kSemicolon; break;
    case '(': t.kind = TokenKind::kLParen; break;
    case ')': t.kind = TokenKind::kRParen; break;
    case '[': t.kind = TokenKind::kLBracket; break;
    case ']': t.kind = TokenKind::kRBracket; break;
    case '{': t.kind = TokenKind::kLBrace; break;
    case '}': t.kind = TokenKind::kRBrace; break;
    case '\\': t.kind = TokenKind::kBackslash; break;
    default:
      t.kind = TokenKind::kUnknown;
      t.text = std::string(1, c);
      diags_.warning(start, "unexpected character '" + t.text + "'");
      break;
  }
  out.push_back(std::move(t));
}

Token Lexer::lex_variable() {
  Token t;
  t.loc = loc_here();
  ++pos_;  // consume '$'
  std::string name;
  while (!at_end() && is_ident_char(peek())) name += advance();
  if (name.empty()) {
    diags_.warning(t.loc, "'$' not followed by a variable name");
    t.kind = TokenKind::kUnknown;
    t.text = "$";
    return t;
  }
  t.kind = TokenKind::kVariable;
  t.text = std::move(name);
  return t;
}

Token Lexer::lex_number() {
  Token t;
  t.loc = loc_here();
  std::string digits;
  bool is_float = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    pos_ += 2;
    std::int64_t value = 0;
    while (!at_end() && std::isxdigit(static_cast<unsigned char>(peek()))) {
      const char c = advance();
      const int digit = std::isdigit(static_cast<unsigned char>(c))
                            ? c - '0'
                            : (std::tolower(c) - 'a' + 10);
      value = value * 16 + digit;
    }
    t.kind = TokenKind::kIntLiteral;
    t.int_value = value;
    t.text = std::to_string(value);
    return t;
  }

  while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
    digits += advance();
  }
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    digits += advance();  // '.'
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      digits += advance();
    }
  }
  if (peek() == 'e' || peek() == 'E') {
    const char sign = peek(1);
    if (std::isdigit(static_cast<unsigned char>(sign)) ||
        ((sign == '+' || sign == '-') &&
         std::isdigit(static_cast<unsigned char>(peek(2))))) {
      is_float = true;
      digits += advance();  // 'e'
      if (peek() == '+' || peek() == '-') digits += advance();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        digits += advance();
      }
    }
  }
  t.text = digits;
  if (is_float) {
    t.kind = TokenKind::kFloatLiteral;
    t.float_value = std::stod(digits);
  } else {
    t.kind = TokenKind::kIntLiteral;
    t.int_value = strutil::php_intval(digits);
  }
  return t;
}

Token Lexer::lex_identifier_or_keyword() {
  Token t;
  t.loc = loc_here();
  std::string name;
  while (!at_end() && is_ident_char(peek())) name += advance();
  const auto it = keyword_table().find(strutil::to_lower(name));
  if (it != keyword_table().end()) {
    t.kind = it->second;
  } else {
    t.kind = TokenKind::kIdentifier;
  }
  t.text = std::move(name);
  return t;
}

Token Lexer::lex_single_quoted() {
  Token t;
  t.loc = loc_here();
  ++pos_;  // opening quote
  std::string value;
  while (!at_end() && peek() != '\'') {
    char c = advance();
    if (c == '\\' && (peek() == '\'' || peek() == '\\')) c = advance();
    value += c;
  }
  if (at_end()) {
    diags_.error(t.loc, "unterminated single-quoted string");
  } else {
    ++pos_;  // closing quote
  }
  t.kind = TokenKind::kStringLiteral;
  t.text = std::move(value);
  return t;
}

namespace {

// Decodes one escape sequence after a backslash in a double-quoted string.
char decode_escape(char c) {
  switch (c) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case 'v': return '\v';
    case 'f': return '\f';
    case '0': return '\0';
    default: return c;  // \" \\ \$ and everything else pass through
  }
}

}  // namespace

Token Lexer::lex_double_quoted() {
  const SourceLoc start = loc_here();
  ++pos_;  // opening quote
  std::vector<InterpPart> parts;
  std::string literal;

  auto flush_literal = [&] {
    if (!literal.empty()) {
      InterpPart p;
      p.kind = InterpPart::Kind::kLiteral;
      p.text = std::move(literal);
      parts.push_back(std::move(p));
      literal.clear();
    }
  };

  while (!at_end() && peek() != '"') {
    char c = advance();
    if (c == '\\' && !at_end()) {
      literal += decode_escape(advance());
      continue;
    }
    if (c == '$' && is_ident_start(peek())) {
      flush_literal();
      InterpPart p;
      p.kind = InterpPart::Kind::kVariable;
      while (!at_end() && is_ident_char(peek())) p.text += advance();
      // Simple syntax allows one [idx] or ->prop suffix.
      if (peek() == '[') {
        ++pos_;
        p.has_index = true;
        if (peek() == '\'' || peek() == '"') {
          const char q = advance();
          while (!at_end() && peek() != q) p.index += advance();
          if (!at_end()) ++pos_;
          p.index_is_string = true;
        } else if (peek() == '$') {
          // "$a[$i]" — dynamic index; approximate with an empty-string
          // index marker that the parser turns into a fresh symbol.
          ++pos_;
          while (!at_end() && is_ident_char(peek())) p.index += advance();
          p.index_is_string = true;
          diags_.warning(start,
                         "dynamic index in string interpolation approximated");
        } else {
          while (!at_end() && peek() != ']') p.index += advance();
          p.index_is_string =
              !strutil::parse_int(p.index).has_value();
        }
        if (peek() == ']') ++pos_;
      } else if (peek() == '-' && peek(1) == '>') {
        pos_ += 2;
        while (!at_end() && is_ident_char(peek())) p.property += advance();
      }
      parts.push_back(std::move(p));
      continue;
    }
    if (c == '{' && peek() == '$') {
      // Complex syntax {$var} / {$var['idx']}.
      flush_literal();
      ++pos_;  // '$'
      InterpPart p;
      p.kind = InterpPart::Kind::kVariable;
      while (!at_end() && is_ident_char(peek())) p.text += advance();
      if (peek() == '[') {
        ++pos_;
        p.has_index = true;
        if (peek() == '\'' || peek() == '"') {
          const char q = advance();
          while (!at_end() && peek() != q) p.index += advance();
          if (!at_end()) ++pos_;
          p.index_is_string = true;
        } else {
          while (!at_end() && peek() != ']') p.index += advance();
          p.index_is_string = !strutil::parse_int(p.index).has_value();
        }
        if (peek() == ']') ++pos_;
      } else if (peek() == '-' && peek(1) == '>') {
        pos_ += 2;
        while (!at_end() && is_ident_char(peek())) p.property += advance();
      }
      if (peek() == '}') {
        ++pos_;
      } else {
        diags_.warning(start, "unsupported complex interpolation syntax");
      }
      parts.push_back(std::move(p));
      continue;
    }
    literal += c;
  }
  if (at_end()) {
    diags_.error(start, "unterminated double-quoted string");
  } else {
    ++pos_;  // closing quote
  }
  flush_literal();
  return make_string_token(start, std::move(parts));
}

Token Lexer::lex_heredoc() {
  const SourceLoc start = loc_here();
  pos_ += 3;  // <<<
  while (peek() == ' ' || peek() == '\t') ++pos_;
  bool nowdoc = false;
  char quote = '\0';
  if (peek() == '\'' || peek() == '"') {
    quote = advance();
    nowdoc = (quote == '\'');
  }
  std::string tag;
  while (!at_end() && is_ident_char(peek())) tag += advance();
  if (quote != '\0' && peek() == quote) ++pos_;
  if (peek() == '\r') ++pos_;
  if (peek() == '\n') ++pos_;

  // Find the terminator line: the tag at line start, optionally indented,
  // optionally followed by ';'.
  std::string body;
  while (!at_end()) {
    const std::size_t line_start = pos_;
    std::size_t probe = pos_;
    while (probe < src_.size() && (src_[probe] == ' ' || src_[probe] == '\t')) {
      ++probe;
    }
    if (src_.substr(probe, tag.size()) == tag) {
      const std::size_t after = probe + tag.size();
      const char next = after < src_.size() ? src_[after] : '\n';
      if (!is_ident_char(next)) {
        pos_ = after;
        // Strip one trailing newline from the body per heredoc semantics.
        if (!body.empty() && body.back() == '\n') body.pop_back();
        if (!body.empty() && body.back() == '\r') body.pop_back();
        break;
      }
    }
    // Copy this whole line into the body.
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    if (pos_ < src_.size()) ++pos_;  // the newline
    body.append(src_.substr(line_start, pos_ - line_start));
  }

  if (nowdoc) {
    Token t;
    t.kind = TokenKind::kStringLiteral;
    t.loc = start;
    t.text = std::move(body);
    return t;
  }

  // Heredoc bodies interpolate like double-quoted strings; reuse that
  // decoder by scanning the body for "$ident" markers.
  std::vector<InterpPart> parts;
  std::string literal;
  std::size_t i = 0;
  auto flush_literal = [&] {
    if (!literal.empty()) {
      InterpPart p;
      p.kind = InterpPart::Kind::kLiteral;
      p.text = std::move(literal);
      parts.push_back(std::move(p));
      literal.clear();
    }
  };
  while (i < body.size()) {
    const char c = body[i];
    if (c == '\\' && i + 1 < body.size()) {
      literal += decode_escape(body[i + 1]);
      i += 2;
      continue;
    }
    if (c == '$' && i + 1 < body.size() && is_ident_start(body[i + 1])) {
      flush_literal();
      InterpPart p;
      p.kind = InterpPart::Kind::kVariable;
      ++i;
      while (i < body.size() && is_ident_char(body[i])) p.text += body[i++];
      parts.push_back(std::move(p));
      continue;
    }
    literal += c;
    ++i;
  }
  flush_literal();
  return make_string_token(start, std::move(parts));
}

Token Lexer::make_string_token(SourceLoc start, std::vector<InterpPart> parts) {
  Token t;
  t.loc = start;
  const bool pure_literal =
      parts.empty() ||
      (parts.size() == 1 && parts[0].kind == InterpPart::Kind::kLiteral);
  if (pure_literal) {
    t.kind = TokenKind::kStringLiteral;
    t.text = parts.empty() ? std::string() : std::move(parts[0].text);
  } else {
    t.kind = TokenKind::kTemplateString;
    t.parts = std::move(parts);
  }
  return t;
}

void Lexer::skip_line_comment() {
  while (!at_end() && peek() != '\n') {
    // A close tag inside a line comment still ends PHP mode in real PHP;
    // handle it so "// ?>" doesn't swallow the rest of the file.
    if (peek() == '?' && peek(1) == '>') return;
    ++pos_;
  }
}

void Lexer::skip_block_comment() {
  const SourceLoc start = loc_here();
  pos_ += 2;
  while (!at_end()) {
    if (peek() == '*' && peek(1) == '/') {
      pos_ += 2;
      return;
    }
    ++pos_;
  }
  diags_.error(start, "unterminated block comment");
}

}  // namespace uchecker::prearena::phplex
