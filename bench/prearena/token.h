// FROZEN pre-arena reference front end — measurement baseline only.
//
// This is the PR7-era (pre-arena) lexer/parser/AST, kept verbatim under
// the uchecker::prearena namespace so bench_micro can measure the
// arena front end against its real predecessor in the same run, on the
// same machine, with the same compiler. ci/check.sh step 10 gates the
// BM_Parse / BM_ParsePreArena ratio. Never include this from src/ and
// never "improve" it: its only value is being the unchanged baseline.
// Token definitions for the PHP lexer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/source.h"

namespace uchecker::prearena::phplex {

enum class TokenKind : std::uint8_t {
  kEndOfFile,
  kInlineHtml,     // raw text outside <?php ... ?>

  // Literals and names
  kVariable,       // $name (text holds "name" without the '$')
  kIdentifier,     // function names, constants, keywords not in list below
  kIntLiteral,     // 42, 0x1f, 0755
  kFloatLiteral,   // 3.14, 1e9
  kStringLiteral,  // fully-literal string (single-quoted, or double-quoted
                   // with no interpolation); text holds the decoded value
  kTemplateString, // double-quoted/heredoc string with interpolation;
                   // parts() holds the decoded segments

  // Keywords
  kKwIf, kKwElse, kKwElseif, kKwWhile, kKwFor, kKwForeach, kKwAs,
  kKwFunction, kKwReturn, kKwEcho, kKwPrint, kKwGlobal, kKwStatic,
  kKwInclude, kKwIncludeOnce, kKwRequire, kKwRequireOnce,
  kKwTrue, kKwFalse, kKwNull, kKwArray, kKwList, kKwIsset, kKwEmpty,
  kKwUnset, kKwNew, kKwClass, kKwPublic, kKwPrivate, kKwProtected,
  kKwConst, kKwBreak, kKwContinue, kKwSwitch, kKwCase, kKwDefault,
  kKwDo, kKwAnd, kKwOr, kKwXor, kKwDie, kKwExit, kKwExtends,
  kKwTry, kKwCatch, kKwFinally, kKwThrow, kKwNamespace, kKwUse,
  kKwInstanceof, kKwAbstract, kKwFinal, kKwInterface, kKwImplements,

  // Operators / punctuation
  kPlus, kMinus, kStar, kSlash, kPercent, kDot, kStarStar,
  kAssign,                      // =
  kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kDotAssign,
  kPercentAssign, kCoalesceAssign,
  kEqual, kNotEqual, kIdentical, kNotIdentical,  // == != === !==
  kLess, kGreater, kLessEqual, kGreaterEqual, kSpaceship,
  kAmpAmp, kPipePipe, kBang,
  kAmp, kPipe, kCaret, kTilde, kShiftLeft, kShiftRight,
  kPlusPlus, kMinusMinus,
  kQuestion, kColon, kCoalesce,  // ? : ??
  kArrow,        // ->
  kDoubleArrow,  // =>
  kDoubleColon,  // ::
  kAt,           // @
  kDollarBrace,  // ${  (rare; lexed but rejected by the parser)
  kComma, kSemicolon,
  kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kBackslash,    // namespace separator

  kUnknown,
};

[[nodiscard]] std::string_view token_kind_name(TokenKind kind);

// One decoded segment of an interpolated string. Literal segments carry
// text; variable segments carry the variable name plus an optional
// constant index or property access, covering the simple "$var",
// "$var[idx]", "$var->prop", and "{$var['idx']}" interpolation syntaxes.
struct InterpPart {
  enum class Kind : std::uint8_t { kLiteral, kVariable };
  Kind kind = Kind::kLiteral;
  std::string text;        // literal text, or variable name
  bool has_index = false;
  std::string index;       // constant array index, if has_index
  bool index_is_string = true;
  std::string property;    // non-empty for $var->prop
};

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  SourceLoc loc;
  std::string text;               // decoded literal value or identifier text
  std::int64_t int_value = 0;     // for kIntLiteral
  double float_value = 0.0;       // for kFloatLiteral
  std::vector<InterpPart> parts;  // for kTemplateString

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] bool is_keyword() const {
    return kind >= TokenKind::kKwIf && kind <= TokenKind::kKwImplements;
  }
};

}  // namespace uchecker::prearena::phplex
