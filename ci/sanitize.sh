#!/usr/bin/env bash
# Builds the tree with ASan+UBSan and runs the full test suite under the
# sanitizers, so the fault-injection and mutation robustness tests also
# exercise memory safety. Mirrors the "asan-ubsan" CMake preset for CI
# runners whose cmake predates presets.
#
# The heap-graph hash-consing/memoization paths (open-addressing cons
# table, rekeying, taint/s-expr caches, interned environments, shared
# solver query cache) are covered by the same suite; stack-use-after-
# return detection stays on to catch dangling references into rehashed
# or resized cache storage.
#
# With --tsan the tree is instead built with ThreadSanitizer (the "tsan"
# preset) and the concurrency-sensitive suites run: scan_many_test
# (parallel fleet driver, shared solver query cache, cancellation),
# telemetry_test (metrics registry and trace recording under concurrent
# scans), service_test (scand worker pool, watchdog, durable cache
# flushes under concurrent requests), observability_test (lock-free
# flight-recorder ring racing snapshot against a writer, concurrent
# trace/metrics export), parse_pool_test (parallel per-file parsing:
# work-stealing claim counter, per-file arenas/sinks, deadline expiry
# mid-pool), property_fuzz_test (serial-vs-parallel parse identity
# over generated multi-file apps, end to end through the detector) and
# summaries_test (the inter-procedural summary store's memoized
# instantiation cache exercised under scans the fleet driver may run
# concurrently; the store itself is per-scan, so this pins that no
# state leaks into shared registries) and profile_test (the path-
# explosion profiler's snapshot() racing a writer thread driving
# begin_root/enter_site/sample/end_root, the scand `profile` op's
# access pattern).
# ASan and TSan cannot share a build, hence the separate mode and build
# directory.
#
#   $ ci/sanitize.sh [ctest-args...]
#   $ ci/sanitize.sh --tsan [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=asan
if [[ "${1:-}" == "--tsan" ]]; then
  MODE=tsan
  shift
fi

if [[ "$MODE" == "tsan" ]]; then
  BUILD_DIR=build-tsan
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DUCHECKER_TSAN=ON
  cmake --build "$BUILD_DIR" -j"$(nproc)" \
    --target scan_many_test telemetry_test service_test observability_test \
             parse_pool_test property_fuzz_test summaries_test profile_test

  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$PWD/ci/tsan.supp"
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R '^(scan_many_test|telemetry_test|service_test|observability_test|parse_pool_test|property_fuzz_test|summaries_test|profile_test)$' "$@"
  exit 0
fi

BUILD_DIR=build-asan

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DUCHECKER_SANITIZE=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"

export ASAN_OPTIONS="detect_leaks=0:abort_on_error=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" "$@"
