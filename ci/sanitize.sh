#!/usr/bin/env bash
# Builds the tree with ASan+UBSan and runs the full test suite under the
# sanitizers, so the fault-injection and mutation robustness tests also
# exercise memory safety. Mirrors the "asan-ubsan" CMake preset for CI
# runners whose cmake predates presets.
#
# The heap-graph hash-consing/memoization paths (open-addressing cons
# table, rekeying, taint/s-expr caches, interned environments, shared
# solver query cache) are covered by the same suite; stack-use-after-
# return detection stays on to catch dangling references into rehashed
# or resized cache storage.
#
#   $ ci/sanitize.sh [ctest-args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build-asan

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DUCHECKER_SANITIZE=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"

export ASAN_OPTIONS="detect_leaks=0:abort_on_error=1:detect_stack_use_after_return=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" "$@"
