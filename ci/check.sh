#!/usr/bin/env bash
# The full CI gate, in dependency order:
#
#   1. configure + build the default tree, run the tier-1 test suite
#   2. clang-tidy over src/ with the repo .clang-tidy profile (skipped
#      with a note when clang-tidy is not installed, like the python3
#      checks below)
#   3. sanitizer build + test suite (ci/sanitize.sh)
#   4. telemetry smoke: scan a known-vulnerable sample with
#      --trace-out/--metrics-out and validate that both outputs are
#      well-formed JSON with the expected pipeline phases
#   5. telemetry + evidence overhead gate: bench_micro's unattached,
#      explain-off end-to-end scan must stay within OVERHEAD_TOLERANCE
#      of the recorded baseline (baseline is machine-local: recorded in
#      the build dir on the first run, compared on later runs). The same
#      number gates both zero-overhead contracts: no telemetry attached
#      AND no evidence collection requested.
#   6. perf baseline gate: BENCH_PR3.json must be valid (structure +
#      required keys), and a fresh bench_fleet serial sweep must stay
#      within 10% of the committed wall time. Wall time is machine-
#      dependent, so a miss is a warning unless BENCH_STRICT=1.
#   7. SARIF export gate: dump the corpus as PHP trees, scan each app
#      with --explain --sarif-out, and structurally validate every
#      emitted SARIF file (vulnerable apps must carry results with
#      codeFlows); plus prove evidence is purely additive by requiring
#      corpus_verdicts output byte-identical with --explain on and off.
#   8. scand service gate: start the daemon against a fresh state dir,
#      scan the whole dumped corpus through scanctl and require every
#      verdict to match single-shot scan_directory; scan it all again
#      and require warm cache hits with reports byte-identical to the
#      first pass; then kill -9 the daemon mid-scan, restart it on the
#      same state dir, and require it to recover and re-serve from the
#      durable caches. (The durable-store and service suites also run
#      under ASan/TSan via step 3.)
#   9. observability gate: BENCH_PR7.json structure; a daemon corpus
#      sweep with caller-supplied trace IDs asserting every ID lands in
#      the response envelope, the report, the structured log, the
#      Prometheus exemplars and the shutdown Chrome trace; every log
#      line validates against the JSON schema; the Prometheus
#      exposition passes a lint (TYPE coverage, counter naming,
#      cumulative buckets, +Inf == _count); a SIGTERM drain must leave
#      per-worker flight-recorder dumps; and the attached/unattached
#      telemetry micro ratio is gated at OVERHEAD_TOLERANCE (absolute
#      wall times vs. committed baselines warn unless BENCH_STRICT=1).
#  10. arena front-end gate: BENCH_PR8.json structure; corpus_verdicts
#      dumps must be byte-identical between --parse-threads 1 and
#      --parse-threads 4 (parallel parsing is behaviorally invisible);
#      and the same-run BM_ParsePreArena / BM_Parse ratio — the arena
#      front end vs. the PR7-era front end frozen in bench/prearena/ —
#      must be >= the committed arena_speedup_min (machine-independent
#      because both sides run in the same process on the same input).
#  11. inter-procedural summary gate: BENCH_PR9.json structure; the
#      Table III + helper-chain corpus crosscheck (both engines on every
#      root, summaries on) must report zero analysis disagreements; the
#      corpus dump must be byte-identical with --no-summaries (summaries
#      change pruning and lints, never verdicts); the helper-chain apps
#      must land on their ground-truth verdicts; the fleet prune rate
#      must stay >= the PR4-era 30% floor with summaries on; and the
#      summary cache must actually get hits on the helper suite.
#  12. engine introspection gate: BENCH_PR10.json structure; the bench
#      trajectory (ci/bench_history.py --check) must match the committed
#      BENCH_TRAJECTORY.json; a full-corpus --profile-out sweep must
#      produce schema-valid profile JSON on every app; the Cimy
#      budget-exhausted post-mortem must rank fork sites by paths
#      spawned and name its dominating construct; reports must be
#      byte-identical with profiling off (after dropping the profile
#      object and normalizing wall times); and the profiling-off
#      end-to-end scan must stay within OVERHEAD_TOLERANCE of the step-5
#      machine-local baseline (absolute wall time vs. the committed
#      number warns unless BENCH_STRICT=1).
#
#   $ ci/check.sh            # everything
#   $ SKIP_SANITIZE=1 ci/check.sh
#   $ SKIP_BENCH=1 ci/check.sh
#   $ SKIP_TIDY=1 ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build
OVERHEAD_TOLERANCE=${OVERHEAD_TOLERANCE:-1.05}   # 5% regression budget

echo "== [1/12] build + tier-1 tests =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo "== [2/12] clang-tidy =="
if [[ "${SKIP_TIDY:-0}" == "1" ]]; then
  echo "skipped (SKIP_TIDY=1)"
elif ! command -v clang-tidy >/dev/null; then
  echo "clang-tidy not found; lint step skipped"
else
  # Lint every translation unit under src/ against the repo profile.
  # run-clang-tidy parallelizes when available; otherwise iterate.
  mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
  if command -v run-clang-tidy >/dev/null; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "${TIDY_SOURCES[@]}"
  else
    clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_SOURCES[@]}"
  fi
fi

echo "== [3/12] sanitizers =="
if [[ "${SKIP_SANITIZE:-0}" == "1" ]]; then
  echo "skipped (SKIP_SANITIZE=1)"
else
  ci/sanitize.sh
fi

echo "== [4/12] telemetry smoke: trace + metrics JSON =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
cat > "$SMOKE_DIR/upload.php" <<'PHP'
<?php
move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
PHP
# Exit 1 = vulnerable (expected for this sample); anything else is a bug.
rc=0
"$BUILD_DIR/examples/scan_directory" "$SMOKE_DIR" --quiet \
  --trace-out="$SMOKE_DIR/trace.json" \
  --metrics-out="$SMOKE_DIR/metrics.json" >/dev/null || rc=$?
if [[ "$rc" != "1" ]]; then
  echo "FAIL: expected vulnerable verdict (exit 1), got exit $rc" >&2
  exit 1
fi
if command -v python3 >/dev/null; then
  python3 - "$SMOKE_DIR/trace.json" "$SMOKE_DIR/metrics.json" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
assert trace["displayTimeUnit"] == "ms", "bad displayTimeUnit"
names = {e["name"] for e in trace["traceEvents"]}
for phase in ("scan", "parse", "locality", "interp", "translate", "solve"):
    assert phase in names, f"trace missing phase span: {phase}"
metrics = json.load(open(sys.argv[2]))
phases = {p["phase"] for p in metrics["phases"]}
for phase in ("scan", "parse", "locality", "interp", "translate", "solve"):
    assert phase in phases, f"metrics missing phase stats: {phase}"
assert metrics["counters"].get("scan.count") == 1, "scan.count != 1"
print("trace + metrics JSON OK "
      f"({len(trace['traceEvents'])} events, {len(phases)} phases)")
PY
else
  echo "python3 not found; JSON structure check skipped"
fi

echo "== [5/12] telemetry overhead gate =="
if [[ "${SKIP_BENCH:-0}" == "1" ]]; then
  echo "skipped (SKIP_BENCH=1)"
elif ! command -v python3 >/dev/null; then
  echo "python3 not found; overhead gate skipped"
else
  BASELINE="$BUILD_DIR/bench_baseline_ms.txt"
  "$BUILD_DIR/bench/bench_micro" \
    --benchmark_filter='BM_EndToEnd$' \
    --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "$SMOKE_DIR/bench.json"
  CURRENT=$(python3 - "$SMOKE_DIR/bench.json" <<'PY'
import json, sys
for b in json.load(open(sys.argv[1]))["benchmarks"]:
    if b["name"].endswith("_median"):
        print(b["real_time"])
        break
PY
)
  if [[ -z "$CURRENT" ]]; then
    echo "FAIL: could not read BM_EndToEnd median from bench output" >&2
    exit 1
  fi
  if [[ ! -f "$BASELINE" ]]; then
    # First run on this machine/build dir: record, don't gate. The
    # baseline is intentionally not committed — wall-time is machine-
    # dependent, so the gate only compares runs on the same host.
    echo "$CURRENT" > "$BASELINE"
    echo "recorded baseline: ${CURRENT} ms (no gate on first run)"
  else
    python3 - "$BASELINE" "$CURRENT" "$OVERHEAD_TOLERANCE" <<'PY'
import sys
baseline = float(open(sys.argv[1]).read())
current = float(sys.argv[2])
tolerance = float(sys.argv[3])
ratio = current / baseline if baseline > 0 else 1.0
print(f"unattached scan: baseline {baseline:.3f} ms, "
      f"current {current:.3f} ms, ratio {ratio:.3f} (limit {tolerance})")
if ratio > tolerance:
    sys.exit(f"FAIL: no-op telemetry overhead regression >"
             f"{(tolerance - 1) * 100:.0f}%")
PY
  fi
fi

echo "== [6/12] perf baseline gate (BENCH_PR3.json) =="
if ! command -v python3 >/dev/null; then
  echo "python3 not found; perf baseline gate skipped"
else
  # Structure check is always fatal: a malformed committed baseline is a
  # repo bug, not a machine difference.
  python3 - BENCH_PR3.json <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
for key in ("fleet", "micro", "table3", "ci_gate"):
    assert key in bench, f"BENCH_PR3.json missing section: {key}"
for phase in ("pre", "post", "delta"):
    assert phase in bench["fleet"], f"fleet section missing: {phase}"
    assert phase in bench["micro"], f"micro section missing: {phase}"
post = bench["fleet"]["post"]
for key in ("serial_s", "parallel_s", "cons_hits", "solver_cache_hits"):
    assert key in post, f"fleet.post missing: {key}"
gate = bench["ci_gate"]
assert float(gate["fleet_serial_s_committed"]) > 0, "bad committed wall time"
assert 0 < float(gate["regression_tolerance"]) < 1, "bad tolerance"
print(f"BENCH_PR3.json OK (committed serial sweep: "
      f"{gate['fleet_serial_s_committed']}s)")
PY
  if [[ "${SKIP_BENCH:-0}" == "1" ]]; then
    echo "fleet regression check skipped (SKIP_BENCH=1)"
  else
    FLEET_OUT="$SMOKE_DIR/fleet.txt"
    "$BUILD_DIR/bench/bench_fleet" | tee "$FLEET_OUT"
    rc=0
    python3 - BENCH_PR3.json "$FLEET_OUT" <<'PY' || rc=$?
import json, re, sys
bench = json.load(open(sys.argv[1]))
committed = float(bench["ci_gate"]["fleet_serial_s_committed"])
tolerance = float(bench["ci_gate"]["regression_tolerance"])
m = re.search(r"serial\s*:\s*([0-9.]+)s", open(sys.argv[2]).read())
assert m, "could not parse serial wall time from bench_fleet output"
current = float(m.group(1))
ratio = current / committed
print(f"fleet serial sweep: committed {committed:.2f}s, "
      f"current {current:.2f}s, ratio {ratio:.2f} "
      f"(limit {1 + tolerance:.2f})")
if ratio > 1 + tolerance:
    sys.exit(1)
PY
    if [[ "$rc" != "0" ]]; then
      if [[ "${BENCH_STRICT:-0}" == "1" ]]; then
        echo "FAIL: fleet wall time regressed >10% vs BENCH_PR3.json" >&2
        exit 1
      fi
      echo "WARNING: fleet wall time >10% over the committed baseline" \
           "(machine-dependent; set BENCH_STRICT=1 to make this fatal)"
    fi
  fi
fi

echo "== [7/12] SARIF export gate =="
SARIF_DIR="$SMOKE_DIR/sarif"
mkdir -p "$SARIF_DIR/corpus"
# Evidence must be purely additive: same corpus dump byte-for-byte.
"$BUILD_DIR/examples/corpus_verdicts" --dump "$SARIF_DIR/corpus" \
  > "$SARIF_DIR/verdicts_plain.txt"
"$BUILD_DIR/examples/corpus_verdicts" --explain \
  > "$SARIF_DIR/verdicts_explain.txt"
if ! cmp -s "$SARIF_DIR/verdicts_plain.txt" "$SARIF_DIR/verdicts_explain.txt"; then
  echo "FAIL: corpus verdicts differ with --explain on vs off" >&2
  diff "$SARIF_DIR/verdicts_plain.txt" "$SARIF_DIR/verdicts_explain.txt" | head >&2
  exit 1
fi
echo "corpus verdicts byte-identical with --explain on/off"
SARIF_APPS=0
SARIF_VULN=0
while IFS= read -r -d '' appdir; do
  name=$(basename "$appdir")
  out="$SARIF_DIR/${name// /_}.sarif"
  rc=0
  "$BUILD_DIR/examples/scan_directory" "$appdir" --quiet --explain \
    --all-findings --sarif-out="$out" >/dev/null || rc=$?
  if [[ "$rc" != "0" && "$rc" != "1" ]]; then
    echo "FAIL: scan_directory exited $rc on $name" >&2
    exit 1
  fi
  if [[ "$rc" == "1" ]]; then
    # Vulnerable: the SARIF must carry results with full provenance.
    "$BUILD_DIR/examples/validate_sarif" "$out" \
      --require-result --require-codeflow >/dev/null
    SARIF_VULN=$((SARIF_VULN + 1))
  else
    "$BUILD_DIR/examples/validate_sarif" "$out" >/dev/null
  fi
  SARIF_APPS=$((SARIF_APPS + 1))
done < <(find "$SARIF_DIR/corpus" -mindepth 1 -maxdepth 1 -type d -print0)
if [[ "$SARIF_VULN" == "0" ]]; then
  echo "FAIL: no corpus app produced a vulnerable SARIF result" >&2
  exit 1
fi
echo "validated $SARIF_APPS SARIF file(s), $SARIF_VULN with codeFlows"

echo "== [8/12] scand service gate =="
SCAND_DIR="$SMOKE_DIR/scand"
SCAND_SOCK="$SCAND_DIR/scand.sock"
SCAND_STATE="$SCAND_DIR/state"
mkdir -p "$SCAND_STATE"
SCAND_PID=
stop_scand() {
  if [[ -n "$SCAND_PID" ]] && kill -0 "$SCAND_PID" 2>/dev/null; then
    kill -9 "$SCAND_PID" 2>/dev/null || true
    wait "$SCAND_PID" 2>/dev/null || true
  fi
  SCAND_PID=
}
start_scand() {
  "$BUILD_DIR/examples/scand" --socket "$SCAND_SOCK" \
    --state-dir "$SCAND_STATE" --request-timeout-ms 120000 \
    2>> "$SCAND_DIR/scand.log" &
  SCAND_PID=$!
  for _ in $(seq 100); do
    if "$BUILD_DIR/examples/scanctl" --socket "$SCAND_SOCK" ping \
         >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: scand did not come up on $SCAND_SOCK" >&2
  cat "$SCAND_DIR/scand.log" >&2 || true
  exit 1
}
trap 'stop_scand; rm -rf "$SMOKE_DIR"' EXIT

start_scand
# Pass 1 (cold): daemon verdicts must match single-shot scan_directory
# on every corpus app. Reports are stashed for the byte-identity check.
mkdir -p "$SCAND_DIR/pass1" "$SCAND_DIR/pass2"
SCAND_APPS=0
while IFS= read -r -d '' appdir; do
  name=$(basename "$appdir"); name=${name// /_}
  rc=0
  "$BUILD_DIR/examples/scanctl" --socket "$SCAND_SOCK" scan "$appdir" \
    > "$SCAND_DIR/pass1/$name.json" || rc=$?
  if [[ "$rc" != "0" && "$rc" != "1" ]]; then
    echo "FAIL: scanctl exited $rc on $name" >&2
    exit 1
  fi
  rc2=0
  "$BUILD_DIR/examples/scan_directory" "$appdir" --quiet --json \
    > "$SCAND_DIR/pass1/$name.batch.json" || rc2=$?
  if [[ "$rc" != "$rc2" ]]; then
    echo "FAIL: scanctl exit $rc != scan_directory exit $rc2 on $name" >&2
    exit 1
  fi
  python3 - "$SCAND_DIR/pass1/$name.json" \
    "$SCAND_DIR/pass1/$name.batch.json" <<'PY'
import json, sys
daemon = json.load(open(sys.argv[1]))
batch = json.load(open(sys.argv[2]))
assert daemon["status"] == "ok", f"daemon status: {daemon['status']}"
assert daemon["verdict"] == batch["verdict"], (
    f"daemon {daemon['verdict']} != batch {batch['verdict']}")
dfp = [f["fingerprint"] for f in daemon["report"]["findings"]]
bfp = [f["fingerprint"] for f in batch["findings"]]
assert dfp == bfp, f"finding fingerprints differ: {dfp} vs {bfp}"
PY
  SCAND_APPS=$((SCAND_APPS + 1))
done < <(find "$SARIF_DIR/corpus" -mindepth 1 -maxdepth 1 -type d -print0)
echo "cold pass: $SCAND_APPS daemon verdicts match scan_directory"

# Pass 2 (warm): every clean report must replay from the durable
# verdict cache byte-identically (degraded reports — e.g. the paper's
# budget-exhausted Cimy case — are deliberately never cached and only
# need to reproduce their verdict). At least one app must actually hit.
WARM_HITS=0
CACHED_APP=
while IFS= read -r -d '' appdir; do
  name=$(basename "$appdir"); name=${name// /_}
  rc=0
  "$BUILD_DIR/examples/scanctl" --socket "$SCAND_SOCK" scan "$appdir" \
    > "$SCAND_DIR/pass2/$name.json" || rc=$?
  if [[ "$rc" != "0" && "$rc" != "1" ]]; then
    echo "FAIL: warm scanctl exited $rc on $name" >&2
    exit 1
  fi
  mode=$(python3 - "$SCAND_DIR/pass1/$name.json" \
    "$SCAND_DIR/pass2/$name.json" <<'PY'
import json, sys
cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
assert warm["verdict"] == cold["verdict"], (
    f"warm verdict {warm['verdict']} != cold {cold['verdict']}")
report = cold["report"]
degraded = (bool(report["errors"]) or report["stats"]["budget_exhausted"]
            or report["stats"]["deadline_exceeded"])
if degraded:
    assert warm["cached"] is False, "degraded report must not be cached"
    print("recomputed")
else:
    assert warm["cached"] is True, "clean report missed the verdict cache"
    assert json.dumps(cold["report"], sort_keys=True) == \
           json.dumps(warm["report"], sort_keys=True), "warm report drifted"
    print("cached")
PY
)
  if [[ "$mode" == "cached" ]]; then
    WARM_HITS=$((WARM_HITS + 1))
    CACHED_APP="$appdir"
  fi
done < <(find "$SARIF_DIR/corpus" -mindepth 1 -maxdepth 1 -type d -print0)
if [[ "$WARM_HITS" == "0" || -z "$CACHED_APP" ]]; then
  echo "FAIL: no corpus app replayed from the verdict cache" >&2
  exit 1
fi
"$BUILD_DIR/examples/scanctl" --socket "$SCAND_SOCK" status \
  > "$SCAND_DIR/status.json"
python3 - "$SCAND_DIR/status.json" "$WARM_HITS" "$SCAND_APPS" <<'PY'
import json, sys
status = json.load(open(sys.argv[1]))
warm_hits, apps = int(sys.argv[2]), int(sys.argv[3])
hits = status["gauges"]["scand.verdict_cache.hits"]
assert hits >= warm_hits, f"status reports {hits} hits < {warm_hits} replays"
print(f"warm pass: {warm_hits}/{apps} byte-identical cache replays, "
      f"{int(hits)} verdict cache hits")
PY

# Crash recovery: kill -9 mid-scan, restart on the same state dir, and
# the daemon must come back up and re-serve from the durable caches.
# The in-flight scan targets *fresh* content (an edited corpus copy, so
# no cache can answer it) to guarantee the kill lands mid-analysis.
APPDIR="$CACHED_APP"
cp -r "$APPDIR" "$SCAND_DIR/killapp"
printf '<?php /* uncached variant */ $x = 1;\n' >> \
  "$(find "$SCAND_DIR/killapp" -name '*.php' | head -1)"
"$BUILD_DIR/examples/scanctl" --socket "$SCAND_SOCK" scan \
  "$SCAND_DIR/killapp" >/dev/null 2>&1 &
CTL_PID=$!
sleep 0.1
kill -9 "$SCAND_PID"
wait "$SCAND_PID" 2>/dev/null || true
SCAND_PID=
wait "$CTL_PID" 2>/dev/null || true
start_scand
rc=0
"$BUILD_DIR/examples/scanctl" --socket "$SCAND_SOCK" scan "$APPDIR" \
  > "$SCAND_DIR/recovered.json" || rc=$?
if [[ "$rc" != "0" && "$rc" != "1" ]]; then
  echo "FAIL: post-recovery scanctl exited $rc" >&2
  exit 1
fi
name=$(basename "$APPDIR"); name=${name// /_}
python3 - "$SCAND_DIR/pass1/$name.json" "$SCAND_DIR/recovered.json" <<'PY'
import json, sys
cold = json.load(open(sys.argv[1]))
recovered = json.load(open(sys.argv[2]))
assert recovered["status"] == "ok", "daemon did not recover"
assert recovered["cached"] is True, (
    "recovered daemon did not replay from the durable verdict cache")
assert json.dumps(cold["report"], sort_keys=True) == \
       json.dumps(recovered["report"], sort_keys=True), \
    "post-recovery report drifted"
print("kill -9 recovery: restarted daemon replayed the verdict "
      "byte-identically from the durable cache")
PY
"$BUILD_DIR/examples/scanctl" --socket "$SCAND_SOCK" shutdown >/dev/null
wait "$SCAND_PID" || { echo "FAIL: scand drain exited non-zero" >&2; exit 1; }
SCAND_PID=

echo "== [9/12] observability gate =="
if ! command -v python3 >/dev/null; then
  echo "python3 not found; observability gate skipped"
else
  # Committed baseline file must be structurally valid (always fatal: a
  # malformed committed baseline is a repo bug, not a machine
  # difference).
  python3 - BENCH_PR7.json <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
for key in ("micro", "fleet", "observability", "ci_gate"):
    assert key in bench, f"BENCH_PR7.json missing section: {key}"
micro = bench["micro"]
for key in ("BM_EndToEnd_ms", "BM_EndToEndTelemetry_ms",
            "telemetry_attached_ratio"):
    assert key in micro, f"micro section missing: {key}"
gate = bench["ci_gate"]
assert 1 < 1 + float(gate["telemetry_overhead_tolerance"]) < 2, "bad tolerance"
assert float(gate["micro_end_to_end_ms_pr4_committed"]) > 0, "bad committed ms"
print(f"BENCH_PR7.json OK (telemetry attached/unattached ratio committed: "
      f"{micro['telemetry_attached_ratio']})")
PY

  # Daemon sweep with caller-supplied trace IDs over the dumped corpus.
  OBS_DIR="$SMOKE_DIR/obs"
  OBS_SOCK="$OBS_DIR/scand.sock"
  OBS_STATE="$OBS_DIR/state"
  mkdir -p "$OBS_STATE" "$OBS_DIR/out"
  "$BUILD_DIR/examples/scand" --socket "$OBS_SOCK" --state-dir "$OBS_STATE" \
    --request-timeout-ms 120000 \
    --log-file "$OBS_DIR/scand.log" --log-level debug \
    --trace-out "$OBS_DIR/trace.json" 2>> "$OBS_DIR/stderr.log" &
  SCAND_PID=$!
  for _ in $(seq 100); do
    if "$BUILD_DIR/examples/scanctl" --socket "$OBS_SOCK" ping \
         >/dev/null 2>&1; then
      break
    fi
    sleep 0.1
  done
  # Identity: ping must report the engine version scanctl --version prints.
  ENGINE_VERSION=$("$BUILD_DIR/examples/scanctl" --version)
  "$BUILD_DIR/examples/scanctl" --socket "$OBS_SOCK" ping \
    | grep -q "\"version\": \"$ENGINE_VERSION\"" \
    || { echo "FAIL: ping does not report engine version" >&2; exit 1; }

  : > "$OBS_DIR/ids.txt"
  OBS_APPS=0
  while IFS= read -r -d '' appdir; do
    name=$(basename "$appdir"); name=${name// /_}
    tid=$(printf 'c0ffee%010d' "$OBS_APPS")
    rc=0
    "$BUILD_DIR/examples/scanctl" --socket "$OBS_SOCK" scan "$appdir" \
      --trace-id "$tid" > "$OBS_DIR/out/$name.json" || rc=$?
    if [[ "$rc" != "0" && "$rc" != "1" ]]; then
      echo "FAIL: scanctl exited $rc on $name" >&2
      exit 1
    fi
    # The caller's ID must come back in the envelope AND in the report.
    python3 - "$OBS_DIR/out/$name.json" "$tid" <<'PY'
import json, sys
resp = json.load(open(sys.argv[1]))
tid = sys.argv[2]
assert resp["trace_id"] == tid, f"envelope trace_id {resp['trace_id']!r}"
assert resp["report"]["trace_id"] == tid, "report trace_id drifted"
PY
    echo "$tid" >> "$OBS_DIR/ids.txt"
    OBS_APPS=$((OBS_APPS + 1))
  done < <(find "$SARIF_DIR/corpus" -mindepth 1 -maxdepth 1 -type d -print0)
  echo "trace sweep: $OBS_APPS apps, envelope + report carry the caller's ID"

  # Prometheus exposition lint + exemplar correlation.
  "$BUILD_DIR/examples/scanctl" --socket "$OBS_SOCK" metrics \
    > "$OBS_DIR/exposition.prom"
  python3 - "$OBS_DIR/exposition.prom" "$OBS_DIR/ids.txt" <<'PY'
import re, sys
text = open(sys.argv[1]).read()
ids = set(open(sys.argv[2]).read().split())
typed = {}
buckets = {}   # base name -> [(le, value)]
counts = {}    # base name -> _count value
exemplars = set()
sample_re = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+]+|\+Inf|NaN)'
    r'( # \{trace_id="([0-9a-f]+)"\} 1)?$')
for line in text.splitlines():
    if not line:
        continue
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split()
        typed[name] = kind
        continue
    if line.startswith("#"):
        continue
    m = sample_re.match(line)
    assert m, f"unlintable sample line: {line!r}"
    name, labels, value = m.group(1), m.group(2) or "", m.group(3)
    assert name.startswith("uchecker_"), f"unprefixed metric: {name}"
    base = name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in typed:
            base = name[: -len(suffix)]
    assert base in typed, f"sample without a # TYPE line: {name}"
    if m.group(5):
        exemplars.add(m.group(5))
    if name.endswith("_bucket") and typed.get(base) == "histogram":
        le = re.search(r'le="([^"]+)"', labels).group(1)
        buckets.setdefault(base, []).append((le, float(value)))
    if name.endswith("_count") and typed.get(base) == "histogram":
        counts[base] = float(value)
for name, kind in typed.items():
    if kind == "counter":
        assert name.endswith("_total"), f"counter without _total: {name}"
for base, series in buckets.items():
    values = [v for _, v in series]
    assert values == sorted(values), f"non-cumulative buckets: {base}"
    assert series[-1][0] == "+Inf", f"histogram missing +Inf: {base}"
    assert series[-1][1] == counts.get(base), f"+Inf != _count: {base}"
assert exemplars, "no trace-ID exemplars in the exposition"
assert exemplars <= ids, f"exemplar IDs not from this sweep: {exemplars - ids}"
print(f"prometheus lint OK ({len(typed)} metrics, "
      f"{len(buckets)} histograms, {len(exemplars)} exemplar ID(s))")
PY

  # Cost attribution: every `top` row must be one of this sweep's IDs.
  "$BUILD_DIR/examples/scanctl" --socket "$OBS_SOCK" top --n 5 \
    > "$OBS_DIR/top.txt"
  python3 - "$OBS_DIR/top.txt" "$OBS_DIR/ids.txt" <<'PY'
import sys
ids = set(open(sys.argv[2]).read().split())
rows = open(sys.argv[1]).read().splitlines()
assert len(rows) >= 2, "top returned no requests"
seen = [tok for row in rows[1:] for tok in row.split() if tok in ids]
assert seen, "top rows carry no trace ID from this sweep"
print(f"top OK ({len(rows) - 1} rows, most expensive: {rows[1].split()[0]}ms)")
PY

  # SIGTERM drain: must exit 0, leave per-worker flight-recorder dumps,
  # and write the Chrome trace.
  kill -TERM "$SCAND_PID"
  wait "$SCAND_PID" || { echo "FAIL: SIGTERM drain exited non-zero" >&2; exit 1; }
  SCAND_PID=
  ls "$OBS_STATE"/flightrec-worker*.json >/dev/null 2>&1 \
    || { echo "FAIL: no flight-recorder dump after SIGTERM" >&2; exit 1; }
  for dump in "$OBS_STATE"/flightrec-worker*.json; do
    python3 - "$dump" <<'PY'
import json, sys
rec = json.load(open(sys.argv[1]))
for key in ("total_recorded", "dropped", "wedged_phase", "last_progress",
            "events"):
    assert key in rec, f"flight dump missing: {key}"
assert rec["events"], "flight dump has no events"
kinds = {e["kind"] for e in rec["events"]}
assert "queue" in kinds, "flight dump missing queue pickups"
assert rec["wedged_phase"] is None, "drained worker reports a wedged phase"
PY
  done
  echo "flight recorder: SIGTERM dumped $(ls "$OBS_STATE"/flightrec-worker*.json | wc -l) worker ring(s)"

  # Log schema: every line is one JSON object with the required keys;
  # every sweep trace ID appears in the log and in the Chrome trace.
  python3 - "$OBS_DIR/scand.log" "$OBS_DIR/ids.txt" "$OBS_DIR/trace.json" <<'PY'
import json, sys
levels = {"debug", "info", "warn", "error"}
lines = 0
log_ids = set()
for raw in open(sys.argv[1]):
    raw = raw.strip()
    if not raw:
        continue
    line = json.loads(raw)
    assert isinstance(line, dict), "log line is not an object"
    for key in ("ts", "level", "event"):
        assert key in line, f"log line missing {key}: {raw[:120]}"
    assert line["level"] in levels, f"unknown level: {line['level']}"
    assert isinstance(line["event"], str) and line["event"]
    for key, value in line.items():
        assert isinstance(value, (str, int, float, bool)), (
            f"non-scalar log field {key}")
    if "trace_id" in line:
        assert isinstance(line["trace_id"], str) and line["trace_id"]
        log_ids.add(line["trace_id"])
    lines += 1
assert lines > 0, "structured log is empty"
ids = set(open(sys.argv[2]).read().split())
missing = ids - log_ids
assert not missing, f"trace IDs never logged: {sorted(missing)[:3]}"
trace = json.load(open(sys.argv[3]))
trace_ids = {e.get("args", {}).get("trace_id")
             for e in trace["traceEvents"]}
missing = ids - trace_ids
assert not missing, f"trace IDs absent from Chrome trace: {sorted(missing)[:3]}"
print(f"log schema OK ({lines} lines); all {len(ids)} sweep IDs present "
      "in log and Chrome trace")
PY

  # Observability overhead: the attached/unattached micro ratio is
  # same-run and same-machine, so it gates hard at OVERHEAD_TOLERANCE.
  # Absolute wall time vs. the PR4-era committed number is machine-
  # dependent and only warns (BENCH_STRICT=1 to make it fatal).
  if [[ "${SKIP_BENCH:-0}" == "1" ]]; then
    echo "observability overhead gate skipped (SKIP_BENCH=1)"
  else
    "$BUILD_DIR/bench/bench_micro" \
      --benchmark_filter='BM_EndToEnd$|BM_EndToEndTelemetry$' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
      --benchmark_format=json > "$OBS_DIR/bench.json"
    rc=0
    python3 - "$OBS_DIR/bench.json" BENCH_PR7.json "$OVERHEAD_TOLERANCE" \
      <<'PY' || rc=$?
import json, sys
medians = {}
for b in json.load(open(sys.argv[1]))["benchmarks"]:
    if b["name"].endswith("_median"):
        medians[b["name"].removesuffix("_median")] = b["real_time"]
plain = medians["BM_EndToEnd"]
attached = medians["BM_EndToEndTelemetry"]
tolerance = float(sys.argv[3])
ratio = attached / plain if plain > 0 else 1.0
print(f"attached {attached:.2f} ms vs unattached {plain:.2f} ms: "
      f"ratio {ratio:.3f} (limit {tolerance})")
if ratio > tolerance:
    sys.exit(f"FAIL: telemetry-attached scan > "
             f"{(tolerance - 1) * 100:.0f}% over unattached")
committed = float(
    json.load(open(sys.argv[2]))["ci_gate"]["micro_end_to_end_ms_pr4_committed"])
if plain > committed * tolerance:
    print(f"WARN: BM_EndToEnd {plain:.1f} ms exceeds PR4 committed "
          f"{committed} ms by >{(tolerance - 1) * 100:.0f}% "
          "(machine-dependent)")
    sys.exit(2)
PY
    if [[ "$rc" == "2" && "${BENCH_STRICT:-0}" == "1" ]]; then
      echo "FAIL: wall time regressed vs committed baseline (BENCH_STRICT=1)" >&2
      exit 1
    elif [[ "$rc" != "0" && "$rc" != "2" ]]; then
      exit 1
    fi
  fi
fi

echo "== [10/12] arena front-end gate (BENCH_PR8.json) =="
if ! command -v python3 >/dev/null; then
  echo "python3 not found; arena front-end gate skipped"
else
  # Committed baseline structure (always fatal).
  python3 - BENCH_PR8.json <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
for key in ("micro", "lex_allocation_contract", "parallel_parse",
            "fleet", "pre_vs_post_arena", "ci_gate"):
    assert key in bench, f"BENCH_PR8.json missing section: {key}"
micro = bench["micro"]
for key in ("BM_Parse_ms", "BM_ParsePreArena_ms", "arena_speedup"):
    assert key in micro, f"micro section missing: {key}"
contract = bench["lex_allocation_contract"]
assert contract["heap_allocs_arena"] < contract["tokens"] / 1000, (
    "committed lex allocation contract is not per-file")
gate = bench["ci_gate"]
assert float(gate["arena_speedup_min"]) >= 1, "bad arena_speedup_min"
print(f"BENCH_PR8.json OK (committed arena speedup: "
      f"{micro['arena_speedup']}x, gate >= {gate['arena_speedup_min']}x)")
PY

  # Parallel parsing must be behaviorally invisible: the corpus dump —
  # verdicts, findings, s-exprs, witnesses, fingerprints on all 44 apps
  # — must be byte-identical between a serial and a 4-thread parse.
  PP_DIR="$SMOKE_DIR/parse_pool"
  mkdir -p "$PP_DIR"
  "$BUILD_DIR/examples/corpus_verdicts" --parse-threads 1 \
    > "$PP_DIR/verdicts_serial.txt"
  "$BUILD_DIR/examples/corpus_verdicts" --parse-threads 4 \
    > "$PP_DIR/verdicts_parallel.txt"
  if ! cmp -s "$PP_DIR/verdicts_serial.txt" "$PP_DIR/verdicts_parallel.txt"; then
    echo "FAIL: corpus verdicts differ between serial and parallel parse" >&2
    diff "$PP_DIR/verdicts_serial.txt" "$PP_DIR/verdicts_parallel.txt" | head >&2
    exit 1
  fi
  APPS=$(grep -c '^app: ' "$PP_DIR/verdicts_serial.txt")
  echo "corpus verdicts byte-identical, serial vs 4-thread parse ($APPS apps)"

  # Same-run speedup gate: the frozen pre-arena front end and the arena
  # front end parse the same app in the same process, so the ratio is
  # machine-independent and gates hard.
  if [[ "${SKIP_BENCH:-0}" == "1" ]]; then
    echo "arena speedup gate skipped (SKIP_BENCH=1)"
  else
    "$BUILD_DIR/bench/bench_micro" \
      --benchmark_filter='BM_Parse$|BM_ParsePreArena$' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
      --benchmark_format=json > "$PP_DIR/bench.json"
    python3 - "$PP_DIR/bench.json" BENCH_PR8.json <<'PY'
import json, sys
medians = {}
for b in json.load(open(sys.argv[1]))["benchmarks"]:
    if b["name"].endswith("_median"):
        medians[b["name"].removesuffix("_median")] = b["real_time"]
arena = medians["BM_Parse"]
prearena = medians["BM_ParsePreArena"]
floor = float(json.load(open(sys.argv[2]))["ci_gate"]["arena_speedup_min"])
ratio = prearena / arena if arena > 0 else 0.0
print(f"arena front end {arena:.2f} ms vs pre-arena {prearena:.2f} ms: "
      f"{ratio:.2f}x (gate >= {floor}x)")
if ratio < floor:
    sys.exit(f"FAIL: arena front end only {ratio:.2f}x faster than the "
             f"frozen pre-arena baseline (floor {floor}x)")
PY
  fi
fi

echo "== [11/12] inter-procedural summary gate (BENCH_PR9.json) =="
SUM_DIR="$SMOKE_DIR/summaries"
mkdir -p "$SUM_DIR"
if command -v python3 >/dev/null; then
  # Committed baseline structure (always fatal).
  python3 - BENCH_PR9.json <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
for key in ("fleet", "helper_suite", "corpus", "ci_gate"):
    assert key in bench, f"BENCH_PR9.json missing section: {key}"
fleet = bench["fleet"]
for key in ("roots", "pruned_roots", "prune_rate"):
    assert key in fleet, f"fleet section missing: {key}"
helper = bench["helper_suite"]
assert int(helper["summary_cache_hits"]) > 0, (
    "committed helper-suite run shows no summary cache hits")
assert int(helper["summary_pruned_roots"]) > 0, (
    "committed helper-suite run shows no summary-attributed prunes")
gate = bench["ci_gate"]
assert 0 < float(gate["fleet_prune_rate_min"]) <= 1, "bad prune-rate floor"
print(f"BENCH_PR9.json OK (committed fleet prune rate: "
      f"{fleet['prune_rate']}, gate >= {gate['fleet_prune_rate_min']})")
PY
else
  echo "python3 not found; BENCH_PR9.json structure check skipped"
fi

# Verdict invariance: summaries must never change verdicts or findings,
# on the 44 Table III apps AND the helper-chain suite.
"$BUILD_DIR/examples/corpus_verdicts" --suite all \
  > "$SUM_DIR/verdicts_on.txt"
"$BUILD_DIR/examples/corpus_verdicts" --suite all --no-summaries \
  > "$SUM_DIR/verdicts_off.txt"
if ! cmp -s "$SUM_DIR/verdicts_on.txt" "$SUM_DIR/verdicts_off.txt"; then
  echo "FAIL: corpus verdicts differ with summaries on vs off" >&2
  diff "$SUM_DIR/verdicts_on.txt" "$SUM_DIR/verdicts_off.txt" | head >&2
  exit 1
fi
echo "corpus verdicts byte-identical with summaries on/off"

# Crosscheck oracle: both engines on every root, summaries on — any
# summary-pruned root the symbolic engine flags surfaces here.
"$BUILD_DIR/examples/corpus_verdicts" --suite all --crosscheck \
  > "$SUM_DIR/verdicts_crosscheck.txt"
if grep -q "analysis_disagreement" "$SUM_DIR/verdicts_crosscheck.txt"; then
  echo "FAIL: corpus crosscheck found analysis disagreement(s):" >&2
  grep -B 1 "analysis_disagreement" "$SUM_DIR/verdicts_crosscheck.txt" >&2
  exit 1
fi
echo "corpus crosscheck (summaries on): zero disagreements"

# Helper-chain apps: the sink is reachable only through user-defined
# helpers, so detecting them exercises the summary layer end to end.
"$BUILD_DIR/examples/corpus_verdicts" --suite helper --stats \
  > "$SUM_DIR/helper.txt"
if command -v python3 >/dev/null; then
  python3 - "$SUM_DIR/helper.txt" <<'PY'
import sys
apps = {}
cache_hits = 0
summary_pruned = 0
current = None
for line in open(sys.argv[1]):
    line = line.strip()
    if line.startswith("app: "):
        current = line[5:]
    elif line.startswith("verdict: "):
        apps[current] = line[9:]
    elif line.startswith("summary_cache_hits: "):
        cache_hits += int(line.split()[1])
    elif "summary_pruned: " in line:
        summary_pruned += int(line.split()[-1])
assert len(apps) >= 3, f"expected >= 3 helper-suite apps, got {len(apps)}"
vuln = [a for a, v in apps.items() if v == "vulnerable"]
benign = [a for a, v in apps.items() if v == "not_vulnerable"]
assert len(vuln) >= 2, f"helper-chain vulns not detected: {apps}"
assert len(benign) >= 1, f"benign helper app not cleared: {apps}"
assert len(vuln) + len(benign) == len(apps), f"indefinite verdicts: {apps}"
assert cache_hits > 0, "summary cache got no hits on the helper suite"
assert summary_pruned > 0, "no root was pruned via summary instantiation"
print(f"helper suite OK: {len(vuln)} detected, {len(benign)} cleared, "
      f"{cache_hits} cache hit(s), {summary_pruned} summary-pruned root(s)")
PY
else
  grep -q "verdict: vulnerable" "$SUM_DIR/helper.txt" \
    || { echo "FAIL: no helper-chain app detected" >&2; exit 1; }
  echo "python3 not found; helper suite deep-checked by grep only"
fi

# Fleet prune rate with summaries on must stay >= the PR4-era 30% floor.
"$BUILD_DIR/examples/corpus_verdicts" --suite full --stats \
  > "$SUM_DIR/fleet_stats.txt"
if command -v python3 >/dev/null; then
  python3 - "$SUM_DIR/fleet_stats.txt" BENCH_PR9.json <<'PY'
import json, sys
roots = pruned = 0
for line in open(sys.argv[1]):
    if line.startswith("roots: "):
        parts = line.split()
        roots += int(parts[1])
        pruned += int(parts[3])
floor = float(json.load(open(sys.argv[2]))["ci_gate"]["fleet_prune_rate_min"])
rate = pruned / roots if roots else 0.0
print(f"fleet prune rate (summaries on): {pruned}/{roots} = {rate:.1%} "
      f"(gate >= {floor:.0%})")
if rate < floor:
    sys.exit(f"FAIL: prune rate {rate:.1%} below the committed "
             f"{floor:.0%} floor")
PY
else
  echo "python3 not found; prune-rate gate skipped"
fi

echo "== [12/12] engine introspection gate (BENCH_PR10.json) =="
PROF_DIR="$SMOKE_DIR/profile"
mkdir -p "$PROF_DIR"
if ! command -v python3 >/dev/null; then
  echo "python3 not found; engine introspection gate skipped"
else
  # Committed baseline structure (always fatal).
  python3 - BENCH_PR10.json <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
for key in ("micro", "fleet", "profile", "ci_gate"):
    assert key in bench, f"BENCH_PR10.json missing section: {key}"
assert float(bench["micro"]["BM_EndToEnd_ms"]) > 0, "bad committed micro ms"
cimy = bench["profile"]["cimy_post_mortem"]
for key in ("reason", "peak_paths", "dominant_construct", "top_fork_site"):
    assert key in cimy, f"cimy_post_mortem missing: {key}"
assert cimy["reason"] == "budget_exhausted", "Cimy reason drifted"
assert int(cimy["peak_paths"]) > 0, "bad Cimy peak_paths"
top = cimy["top_fork_site"]
assert top["site"] and int(top["paths_spawned"]) > 0, "bad top fork site"
assert cimy["dominant_construct"], "no dominant construct committed"
gate = bench["ci_gate"]
assert 1 < 1 + float(gate["profile_overhead_tolerance"]) < 2, "bad tolerance"
print(f"BENCH_PR10.json OK (Cimy died of {cimy['reason']} at "
      f"{cimy['peak_paths']} live paths; dominant {cimy['dominant_construct']})")
PY

  # The committed trajectory must be regenerated whenever a BENCH file
  # changes; bench_history also hard-fails on any malformed BENCH file.
  python3 ci/bench_history.py --check

  # Fleet sweep with --profile-out: every app's profile JSON must
  # validate against the support/profile.h schema, and the report must
  # be byte-identical with profiling off once the profile object is
  # dropped and wall times are normalized (the zero-overhead contract's
  # behavioral half).
  PROF_APPS=0
  PROF_ROOTS=0
  PROF_INCOMPLETE=0
  while IFS= read -r -d '' appdir; do
    name=$(basename "$appdir"); name=${name// /_}
    rc=0
    "$BUILD_DIR/examples/scan_directory" "$appdir" --quiet --json \
      --profile-out="$PROF_DIR/$name.profile.json" \
      > "$PROF_DIR/$name.on.json" || rc=$?
    if [[ "$rc" != "0" && "$rc" != "1" ]]; then
      echo "FAIL: profiled scan_directory exited $rc on $name" >&2
      exit 1
    fi
    rc2=0
    "$BUILD_DIR/examples/scan_directory" "$appdir" --quiet --json \
      > "$PROF_DIR/$name.off.json" || rc2=$?
    if [[ "$rc" != "$rc2" ]]; then
      echo "FAIL: $name verdict drifted with profiling on ($rc) vs off ($rc2)" >&2
      exit 1
    fi
    counts=$(python3 - "$PROF_DIR/$name.profile.json" <<'PY'
import json, sys
prof = json.load(open(sys.argv[1]))
assert isinstance(prof.get("peak_rss_bytes"), int), "missing peak_rss_bytes"
assert isinstance(prof.get("roots"), list), "missing roots"
kinds = {"conditional", "switch", "loop", "foreach", "try", "call"}
for root in prof["roots"]:
    for key in ("root", "incomplete", "reason", "peak_paths", "fork_sites",
                "solver", "heap_by_depth"):
        assert key in root, f"root missing: {key}"
    spawned = [s["paths_spawned"] for s in root["fork_sites"]]
    assert spawned == sorted(spawned, reverse=True), "fork sites not ranked"
    for s in root["fork_sites"]:
        for key in ("site", "kind", "detail", "visits", "paths_spawned",
                    "self_paths"):
            assert key in s, f"fork site missing: {key}"
        assert s["kind"] in kinds, f"unknown fork kind: {s['kind']}"
        assert s["self_paths"] <= s["paths_spawned"], "self > cumulative"
        assert "#" not in s["site"], f"unresolved site: {s['site']}"
    for s in root["solver"]:
        for key in ("sink", "origin", "queries", "cache_hits", "wall_ms"):
            assert key in s, f"solver site missing: {key}"
    for h in root["heap_by_depth"]:
        for key in ("depth", "objects", "bytes"):
            assert key in h, f"heap bucket missing: {key}"
    if root["incomplete"]:
        pm = root.get("post_mortem")
        assert pm, "incomplete root has no post-mortem"
        for key in ("reason", "peak_paths", "dominant_loop",
                    "top_fork_sites", "live_path_histogram"):
            assert key in pm, f"post-mortem missing: {key}"
        assert len(pm["top_fork_sites"]) <= 10, "post-mortem top sites > 10"
print(len(prof["roots"]),
      sum(1 for r in prof["roots"] if r["incomplete"]))
PY
) || { echo "FAIL: profile schema on $name" >&2; exit 1; }
    PROF_ROOTS=$((PROF_ROOTS + ${counts%% *}))
    PROF_INCOMPLETE=$((PROF_INCOMPLETE + ${counts##* }))
    python3 - "$PROF_DIR/$name.on.json" "$PROF_DIR/$name.off.json" <<'PY'
import json, sys
on = json.load(open(sys.argv[1]))
off = json.load(open(sys.argv[2]))
# Apps where locality finds no analysis root never start the profiler
# (report.profiled stays false); every other profiled scan carries the
# profile object, even when the static pass pruned all its roots before
# the interpreter attributed anything.
assert ("profile" in on) == (on["stats"]["roots"] > 0), (
    "profile object does not match the scan's analysis roots")
assert "profile" not in off, "unprofiled report carries a profile object"
on.pop("profile", None)
def normalize(report):
    report["stats"]["seconds"] = 0.0
    cost = report.get("cost", {})
    for phase in cost.get("phases", {}):
        cost["phases"][phase] = 0.0
    for rc in cost.get("roots", []):
        for key in ("parse_ms", "interp_ms", "solve_ms"):
            if key in rc:
                rc[key] = 0.0
normalize(on)
normalize(off)
assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True), (
    "report differs with profiling on vs off beyond wall times")
PY
    PROF_APPS=$((PROF_APPS + 1))
  done < <(find "$SARIF_DIR/corpus" -mindepth 1 -maxdepth 1 -type d -print0)
  if [[ "$PROF_ROOTS" == "0" ]]; then
    echo "FAIL: profiled sweep attributed no analysis roots" >&2
    exit 1
  fi
  echo "profiled sweep: $PROF_APPS apps, $PROF_ROOTS profiled root(s)," \
       "$PROF_INCOMPLETE incomplete; reports identical with profiling off"

  # The paper's false negative must produce an actionable post-mortem:
  # fork sites ranked by paths spawned, and a dominating construct named
  # (Cimy's explosion is an if/elseif ladder, so the dominant-loop field
  # exercises its any-kind fallback).
  CIMY_PROFILE=$(find "$PROF_DIR" -name 'Cimy*.profile.json' | head -1)
  if [[ -z "$CIMY_PROFILE" ]]; then
    echo "FAIL: no Cimy profile in the corpus sweep" >&2
    exit 1
  fi
  python3 - "$CIMY_PROFILE" BENCH_PR10.json <<'PY'
import json, sys
prof = json.load(open(sys.argv[1]))
dead = [r for r in prof["roots"] if r["incomplete"]]
assert dead, "Cimy recorded no incomplete root"
root = max(dead, key=lambda r: r["peak_paths"])
assert root["reason"] == "budget_exhausted", f"reason: {root['reason']}"
pm = root["post_mortem"]
assert pm["reason"] == "budget_exhausted", "post-mortem reason drifted"
sites = pm["top_fork_sites"]
assert sites, "post-mortem lists no fork sites"
spawned = [s["paths_spawned"] for s in sites]
assert spawned == sorted(spawned, reverse=True), (
    "post-mortem sites not ranked by paths spawned")
assert pm["dominant_loop"], "post-mortem names no dominating construct"
named = {s["site"] for s in sites
         if s["kind"] in ("loop", "foreach")} or {sites[0]["site"]}
assert any(pm["dominant_loop"].startswith(site) for site in named), (
    f"dominant construct {pm['dominant_loop']!r} is not a ranked site")
assert pm["live_path_histogram"], "post-mortem has no live-path histogram"
committed = json.load(open(sys.argv[2]))["profile"]["cimy_post_mortem"]
assert pm["peak_paths"] == int(committed["peak_paths"]), (
    f"peak paths {pm['peak_paths']} != committed {committed['peak_paths']}")
assert pm["dominant_loop"] == committed["dominant_construct"], (
    f"dominant {pm['dominant_loop']!r} != committed "
    f"{committed['dominant_construct']!r}")
print(f"Cimy post-mortem OK: died of {pm['reason']} at "
      f"{pm['peak_paths']} live paths; top site {sites[0]['site']} "
      f"({sites[0]['paths_spawned']} paths); dominant {pm['dominant_loop']}")
PY

  # Profiling-off overhead: the null-pointer hook contract. Same-machine
  # gate against the step-5 baseline file; absolute wall time vs. the
  # committed number is machine-dependent and only warns.
  if [[ "${SKIP_BENCH:-0}" == "1" ]]; then
    echo "profiling-off overhead gate skipped (SKIP_BENCH=1)"
  else
    "$BUILD_DIR/bench/bench_micro" \
      --benchmark_filter='BM_EndToEnd$' \
      --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
      --benchmark_format=json > "$PROF_DIR/bench.json"
    rc=0
    python3 - "$PROF_DIR/bench.json" "$BUILD_DIR/bench_baseline_ms.txt" \
      BENCH_PR10.json "$OVERHEAD_TOLERANCE" <<'PY' || rc=$?
import json, os, sys
current = None
for b in json.load(open(sys.argv[1]))["benchmarks"]:
    if b["name"].endswith("_median"):
        current = b["real_time"]
        break
assert current is not None, "could not read BM_EndToEnd median"
tolerance = float(sys.argv[4])
if os.path.exists(sys.argv[2]):
    baseline = float(open(sys.argv[2]).read())
    ratio = current / baseline if baseline > 0 else 1.0
    print(f"profiling-off scan: baseline {baseline:.3f} ms, current "
          f"{current:.3f} ms, ratio {ratio:.3f} (limit {tolerance})")
    if ratio > tolerance:
        sys.exit(f"FAIL: profiling-off scan regressed >"
                 f"{(tolerance - 1) * 100:.0f}% vs the machine baseline")
else:
    print("no machine-local baseline (step 5 skipped); hard gate skipped")
committed = float(json.load(open(sys.argv[3]))["micro"]["BM_EndToEnd_ms"])
if current > committed * tolerance:
    print(f"WARN: BM_EndToEnd {current:.1f} ms exceeds the committed "
          f"{committed} ms by >{(tolerance - 1) * 100:.0f}% "
          "(machine-dependent)")
    sys.exit(2)
PY
    if [[ "$rc" == "2" && "${BENCH_STRICT:-0}" == "1" ]]; then
      echo "FAIL: wall time regressed vs committed baseline (BENCH_STRICT=1)" >&2
      exit 1
    elif [[ "$rc" != "0" && "$rc" != "2" ]]; then
      exit 1
    fi
  fi
fi

echo "== all checks passed =="
