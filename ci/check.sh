#!/usr/bin/env bash
# The full CI gate, in dependency order:
#
#   1. configure + build the default tree, run the tier-1 test suite
#   2. sanitizer build + test suite (ci/sanitize.sh)
#   3. telemetry smoke: scan a known-vulnerable sample with
#      --trace-out/--metrics-out and validate that both outputs are
#      well-formed JSON with the expected pipeline phases
#   4. telemetry overhead gate: bench_micro's unattached end-to-end scan
#      must stay within OVERHEAD_TOLERANCE of the recorded baseline
#      (baseline is machine-local: recorded in the build dir on the
#      first run, compared on later runs)
#
#   $ ci/check.sh            # everything
#   $ SKIP_SANITIZE=1 ci/check.sh
#   $ SKIP_BENCH=1 ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=build
OVERHEAD_TOLERANCE=${OVERHEAD_TOLERANCE:-1.05}   # 5% regression budget

echo "== [1/4] build + tier-1 tests =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo "== [2/4] sanitizers =="
if [[ "${SKIP_SANITIZE:-0}" == "1" ]]; then
  echo "skipped (SKIP_SANITIZE=1)"
else
  ci/sanitize.sh
fi

echo "== [3/4] telemetry smoke: trace + metrics JSON =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
cat > "$SMOKE_DIR/upload.php" <<'PHP'
<?php
move_uploaded_file($_FILES['f']['tmp_name'], '/u/' . $_FILES['f']['name']);
PHP
# Exit 1 = vulnerable (expected for this sample); anything else is a bug.
rc=0
"$BUILD_DIR/examples/scan_directory" "$SMOKE_DIR" --quiet \
  --trace-out="$SMOKE_DIR/trace.json" \
  --metrics-out="$SMOKE_DIR/metrics.json" >/dev/null || rc=$?
if [[ "$rc" != "1" ]]; then
  echo "FAIL: expected vulnerable verdict (exit 1), got exit $rc" >&2
  exit 1
fi
if command -v python3 >/dev/null; then
  python3 - "$SMOKE_DIR/trace.json" "$SMOKE_DIR/metrics.json" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
assert trace["displayTimeUnit"] == "ms", "bad displayTimeUnit"
names = {e["name"] for e in trace["traceEvents"]}
for phase in ("scan", "parse", "locality", "interp", "translate", "solve"):
    assert phase in names, f"trace missing phase span: {phase}"
metrics = json.load(open(sys.argv[2]))
phases = {p["phase"] for p in metrics["phases"]}
for phase in ("scan", "parse", "locality", "interp", "translate", "solve"):
    assert phase in phases, f"metrics missing phase stats: {phase}"
assert metrics["counters"].get("scan.count") == 1, "scan.count != 1"
print("trace + metrics JSON OK "
      f"({len(trace['traceEvents'])} events, {len(phases)} phases)")
PY
else
  echo "python3 not found; JSON structure check skipped"
fi

echo "== [4/4] telemetry overhead gate =="
if [[ "${SKIP_BENCH:-0}" == "1" ]]; then
  echo "skipped (SKIP_BENCH=1)"
elif ! command -v python3 >/dev/null; then
  echo "python3 not found; overhead gate skipped"
else
  BASELINE="$BUILD_DIR/bench_baseline_ms.txt"
  "$BUILD_DIR/bench/bench_micro" \
    --benchmark_filter='BM_EndToEnd$' \
    --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "$SMOKE_DIR/bench.json"
  CURRENT=$(python3 - "$SMOKE_DIR/bench.json" <<'PY'
import json, sys
for b in json.load(open(sys.argv[1]))["benchmarks"]:
    if b["name"].endswith("_median"):
        print(b["real_time"])
        break
PY
)
  if [[ -z "$CURRENT" ]]; then
    echo "FAIL: could not read BM_EndToEnd median from bench output" >&2
    exit 1
  fi
  if [[ ! -f "$BASELINE" ]]; then
    # First run on this machine/build dir: record, don't gate. The
    # baseline is intentionally not committed — wall-time is machine-
    # dependent, so the gate only compares runs on the same host.
    echo "$CURRENT" > "$BASELINE"
    echo "recorded baseline: ${CURRENT} ms (no gate on first run)"
  else
    python3 - "$BASELINE" "$CURRENT" "$OVERHEAD_TOLERANCE" <<'PY'
import sys
baseline = float(open(sys.argv[1]).read())
current = float(sys.argv[2])
tolerance = float(sys.argv[3])
ratio = current / baseline if baseline > 0 else 1.0
print(f"unattached scan: baseline {baseline:.3f} ms, "
      f"current {current:.3f} ms, ratio {ratio:.3f} (limit {tolerance})")
if ratio > tolerance:
    sys.exit(f"FAIL: no-op telemetry overhead regression >"
             f"{(tolerance - 1) * 100:.0f}%")
PY
  fi
fi

echo "== all checks passed =="
