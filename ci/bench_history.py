#!/usr/bin/env python3
"""Fold the committed BENCH_PR*.json files into one BENCH_TRAJECTORY.json.

Each PR commits a BENCH_PR<N>.json with its own shape (the methodology
sections differ on purpose), which makes the performance story
unreadable as a series. This tool extracts the comparable axes into a
single timeline:

  - fleet seconds (the 100-plugin serial sweep, where the PR ran one)
  - prune rate (static-pass discharges / analysis roots)
  - parse speedup (arena front end vs the frozen pre-arena baseline)
  - micro end-to-end milliseconds (bench_micro BM_EndToEnd median)

A malformed BENCH file (unparseable JSON, missing pr/title, or a pr
number that contradicts the filename) is a hard failure: the committed
benchmark record is part of the repo's evidence chain and must stay
loadable.

Usage:
  ci/bench_history.py                 # rewrite BENCH_TRAJECTORY.json
  ci/bench_history.py --check         # validate + diff against committed
  ci/bench_history.py --out FILE      # write elsewhere
"""

import argparse
import glob
import json
import os
import re
import sys


def fail(message):
    print("bench_history: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def dig(obj, path):
    """Follow a dotted path through nested dicts; None when absent."""
    node = obj
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def first_number(obj, paths):
    for path in paths:
        value = dig(obj, path)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return value
    return None


def prune_rate(bench):
    """pruned_roots/roots wherever the pair lives; explicit rate wins."""
    explicit = first_number(bench, ["fleet.prune_rate"])
    if explicit is not None:
        return explicit
    for scope in ["fleet", "fleet.prefilter_on", "fleet.post"]:
        pruned = first_number(bench, [scope + ".pruned_roots"])
        roots = first_number(bench, [scope + ".roots"])
        if pruned is not None and roots:
            return round(pruned / roots, 3)
    return None


def load_bench(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            bench = json.load(handle)
    except (OSError, ValueError) as error:
        fail("%s is not valid JSON: %s" % (os.path.basename(path), error))
    name = os.path.basename(path)
    if not isinstance(bench, dict):
        fail("%s: top level must be a JSON object" % name)
    pr = bench.get("pr")
    if not isinstance(pr, int) or isinstance(pr, bool) or pr <= 0:
        fail("%s: missing or invalid \"pr\" (positive integer)" % name)
    title = bench.get("title")
    if not isinstance(title, str) or not title.strip():
        fail("%s: missing or empty \"title\"" % name)
    claimed = int(re.fullmatch(r"BENCH_PR(\d+)\.json", name).group(1))
    if claimed != pr:
        fail("%s: \"pr\": %d contradicts the filename" % (name, pr))
    return bench


def trajectory_point(bench):
    return {
        "pr": bench["pr"],
        "title": bench["title"],
        "recorded": bench.get("recorded"),
        "fleet_serial_s": first_number(
            bench,
            [
                "fleet.serial_s",
                "fleet.prefilter_on.serial_s",
                "fleet.post.serial_s",
            ],
        ),
        "fleet_plugins_per_s": first_number(
            bench,
            [
                "fleet.serial_plugins_per_s",
                "fleet.prefilter_on.serial_plugins_per_s",
                "fleet.post.serial_plugins_per_s",
            ],
        ),
        "prune_rate": prune_rate(bench),
        "parse_speedup_x": first_number(
            bench, ["micro.arena_speedup", "micro.parse_speedup_x"]
        ),
        "micro_end_to_end_ms": first_number(
            bench, ["micro.BM_EndToEnd_ms", "micro.end_to_end_ms"]
        ),
    }


def build_trajectory(repo):
    paths = sorted(
        glob.glob(os.path.join(repo, "BENCH_PR*.json")),
        key=lambda p: int(
            re.fullmatch(
                r"BENCH_PR(\d+)\.json", os.path.basename(p)
            ).group(1)
        ),
    )
    bad = [
        os.path.basename(p)
        for p in glob.glob(os.path.join(repo, "BENCH_PR*.json"))
        if re.fullmatch(r"BENCH_PR(\d+)\.json", os.path.basename(p)) is None
    ]
    if bad:
        fail("unparseable BENCH filename(s): " + ", ".join(sorted(bad)))
    if not paths:
        fail("no BENCH_PR*.json files found under " + repo)
    points = [trajectory_point(load_bench(p)) for p in paths]
    # Deterministic output: derived entirely from the committed BENCH
    # files (no wall clock), so --check can diff byte-for-byte.
    return {
        "generated_by": "ci/bench_history.py",
        "source_files": [os.path.basename(p) for p in paths],
        "latest_recorded": max(
            (p["recorded"] for p in points if p["recorded"]), default=None
        ),
        "points": points,
    }


def render(trajectory):
    return json.dumps(trajectory, indent=1) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root holding BENCH_PR*.json",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: <repo>/BENCH_TRAJECTORY.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate BENCH files and require the committed trajectory "
        "to match the regenerated one",
    )
    options = parser.parse_args()
    out_path = options.out or os.path.join(
        options.repo, "BENCH_TRAJECTORY.json"
    )
    rendered = render(build_trajectory(options.repo))
    if options.check:
        try:
            with open(out_path, "r", encoding="utf-8") as handle:
                committed = handle.read()
        except OSError:
            fail(out_path + " is missing; run ci/bench_history.py")
        if committed != rendered:
            fail(
                os.path.basename(out_path)
                + " is stale; rerun ci/bench_history.py and commit the result"
            )
        print(
            "bench_history: OK: %s matches %d BENCH file(s)"
            % (os.path.basename(out_path), len(json.loads(rendered)["points"]))
        )
        return
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(rendered)
    print(
        "bench_history: wrote %s (%d point(s))"
        % (out_path, len(json.loads(rendered)["points"]))
    )


if __name__ == "__main__":
    main()
