#include "corpus/corpus.h"

#include <cctype>

namespace uchecker::corpus {
namespace {

// Small deterministic PRNG (no std::random to keep output stable across
// standard library versions).
class Lcg {
 public:
  explicit Lcg(unsigned seed) : state_(seed * 2654435761u + 12345u) {}

  unsigned next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_ >> 8;
  }
  unsigned next(unsigned bound) { return bound == 0 ? 0 : next() % bound; }

 private:
  unsigned state_;
};

const char* const kNouns[] = {
    "item",   "entry",  "record", "option", "setting", "field",
    "widget", "meta",   "token",  "label",  "notice",  "cache",
    "batch",  "result", "filter", "layout", "table",   "query",
};

const char* const kVerbs[] = {
    "format", "render",  "collect", "prepare", "merge",  "resolve",
    "build",  "refresh", "inspect", "reduce",  "expand", "register",
};

}  // namespace

namespace {

std::string filler_functions(std::size_t target_loc, unsigned seed,
                             const std::string& prefix, std::size_t loc);

}  // namespace

std::string filler_php(std::size_t target_loc, unsigned seed,
                       const std::string& prefix) {
  std::string out = "<?php\n";
  out += "// Auto-generated supporting code for the reconstructed corpus.\n";
  out += filler_functions(target_loc, seed, prefix, /*loc=*/1);
  return out;
}

std::string filler_php_body(std::size_t target_loc, unsigned seed,
                            const std::string& prefix) {
  return filler_functions(target_loc, seed, prefix, /*loc=*/0);
}

std::string filler_statements(std::size_t count, unsigned seed,
                              const std::string& indent) {
  Lcg rng(seed);
  std::string out;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string noun =
        kNouns[rng.next(sizeof(kNouns) / sizeof(*kNouns))];
    const std::string verb =
        kVerbs[rng.next(sizeof(kVerbs) / sizeof(*kVerbs))];
    switch (rng.next(3)) {
      case 0:
        out += indent + "$meta['" + noun + "_" + std::to_string(i) + "'] = '" +
               verb + "';\n";
        break;
      case 1:
        out += indent + "$labels[] = '" + verb + "-" + noun + "';\n";
        break;
      default:
        out += indent + "$totals['" + noun + "'] = " +
               std::to_string(rng.next(900) + 1) + ";\n";
        break;
    }
  }
  return out;
}

namespace {

std::string filler_functions(std::size_t target_loc, unsigned seed,
                             const std::string& raw_prefix, std::size_t loc) {
  Lcg rng(seed);
  std::string out;
  unsigned fn_index = 0;
  // Function names must be valid PHP identifiers even when the caller
  // passes a plugin slug like "secure-image-upload".
  std::string prefix = raw_prefix;
  for (char& c : prefix) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_')) {
      c = '_';
    }
  }

  while (loc + 12 < target_loc) {
    const std::string verb = kVerbs[rng.next(sizeof(kVerbs) / sizeof(*kVerbs))];
    const std::string noun = kNouns[rng.next(sizeof(kNouns) / sizeof(*kNouns))];
    const std::string fn =
        prefix + "_" + verb + "_" + noun + "_" + std::to_string(fn_index++);
    const unsigned shape = rng.next(4);
    const unsigned limit = 2 + rng.next(9);
    switch (shape) {
      case 0:
        out += "function " + fn + "($input, $limit = " +
               std::to_string(limit) + ") {\n";
        out += "    $result = array();\n";
        out += "    for ($i = 0; $i < $limit; $i++) {\n";
        out += "        $result[] = $input . '-" + noun + "-' . $i;\n";
        out += "    }\n";
        out += "    return $result;\n";
        out += "}\n";
        loc += 7;
        break;
      case 1:
        out += "function " + fn + "($value) {\n";
        out += "    if (!is_string($value)) {\n";
        out += "        return '';\n";
        out += "    }\n";
        out += "    $clean = trim($value);\n";
        out += "    $clean = str_replace('  ', ' ', $clean);\n";
        out += "    return strtolower($clean);\n";
        out += "}\n";
        loc += 8;
        break;
      case 2:
        out += "function " + fn + "($rows) {\n";
        out += "    $total = 0;\n";
        out += "    foreach ($rows as $row) {\n";
        out += "        if (isset($row['" + noun + "'])) {\n";
        out += "            $total = $total + intval($row['" + noun + "']);\n";
        out += "        }\n";
        out += "    }\n";
        out += "    return $total;\n";
        out += "}\n";
        loc += 9;
        break;
      default:
        out += "function " + fn + "($key, $fallback = null) {\n";
        out += "    $settings = array(\n";
        out += "        '" + noun + "_limit' => " + std::to_string(limit) +
               ",\n";
        out += "        '" + noun + "_label' => '" + verb + "',\n";
        out += "        '" + noun + "_active' => true,\n";
        out += "    );\n";
        out += "    if (isset($settings[$key])) {\n";
        out += "        return $settings[$key];\n";
        out += "    }\n";
        out += "    return $fallback;\n";
        out += "}\n";
        loc += 11;
        break;
    }
  }
  return out;
}

}  // namespace

}  // namespace uchecker::corpus
