// Reconstructed evaluation corpus (paper §IV, Table III).
//
// The paper evaluated 13 publicly-reported vulnerable applications, 28
// manually-audited vulnerability-free WordPress plugins, and 3 previously
// unreported vulnerable plugins it discovered. Source for those apps is
// not redistributable, so each entry here is reconstructed from the
// paper's own descriptions and listings:
//   - the three new-vuln plugins use the verbatim code of Listings 6-8;
//   - the known-vuln apps implement the described upload flaw with a
//     branch structure sized to the paper's path counts;
//   - the two false-positive apps gate their upload behind
//     add_action('admin_menu', ...) exactly as §IV-A explains;
//   - benign apps implement the validation idioms real plugins use
//     (extension whitelists, fixed renames, wp_handle_upload, ...).
// Deterministic filler code pads each app to the paper's LoC so the
// "% of LoC analyzed" locality metric is comparable.
#pragma once

#include <string>
#include <vector>

#include "core/detector/detector.h"

namespace uchecker::corpus {

enum class Category { kKnownVulnerable, kBenign, kNewVulnerable };

// Values published in Table III, kept for paper-vs-measured comparison.
struct PaperRow {
  int loc = 0;
  double pct_analyzed = 0.0;
  long paths = 0;
  long objects = 0;
  double memory_mb = 0.0;
  double seconds = 0.0;
  bool detected = false;
};

struct CorpusEntry {
  core::Application app;
  Category category = Category::kBenign;
  bool ground_truth_vulnerable = false;
  // Expected UChecker verdict per Table III (true also for the two
  // admin-gated benign plugins UChecker flags — the paper's FPs).
  bool paper_flagged_by_uchecker = false;
  PaperRow paper;
};

// The 13 publicly-reported vulnerable applications (Table III top).
[[nodiscard]] std::vector<CorpusEntry> known_vulnerable();

// The 28 vulnerability-free plugins, including Event Registration Pro
// Calendar and Tumult Hype Animations (the two expected false positives).
[[nodiscard]] std::vector<CorpusEntry> benign();

// The 3 newly discovered vulnerable plugins (Listings 6-8).
[[nodiscard]] std::vector<CorpusEntry> new_vulnerable();

// All 44 applications in Table III order.
[[nodiscard]] std::vector<CorpusEntry> full_corpus();

// Helper-chain apps for the inter-procedural summary layer (PR9): the
// upload taint reaches a copy()/rename() sink only through user-defined
// helper functions, so there is no lexical sink in the analysis root.
// Deliberately NOT part of full_corpus() — Table III's counts are pinned
// by tests; ci/check.sh gates on this suite separately.
[[nodiscard]] std::vector<CorpusEntry> helper_sink_suite();

// Deterministic filler: syntactically valid, upload-free PHP functions
// padding an app to ~`target_loc` physical lines of code. Same (seed,
// prefix, target) always yields identical text.
[[nodiscard]] std::string filler_php(std::size_t target_loc, unsigned seed,
                                     const std::string& prefix);

// Same, without the "<?php" prologue — for embedding helper functions
// into an existing handler file (they count toward the analyzed-LoC of a
// file-level analysis root but cost the symbolic executor nothing).
[[nodiscard]] std::string filler_php_body(std::size_t target_loc,
                                          unsigned seed,
                                          const std::string& prefix);

// Deterministic straight-line PHP statements (assignments into local
// arrays; no branching, no calls) for fattening a handler's body without
// changing its path count. `indent` is prepended to each line.
[[nodiscard]] std::string filler_statements(std::size_t count, unsigned seed,
                                            const std::string& indent);

// -------------------------------------------------------------------------
// Synthetic workload generator (benches E3/E4).

struct SynthSpec {
  std::string name = "synth";
  int sequential_ifs = 4;        // each doubles the path count
  int switch_ways = 0;           // 0 = no switch; else multiplies paths
  bool vulnerable = true;        // omit the extension check when true
  std::size_t filler_loc = 500;  // padding outside the handler
  int filler_files = 1;
};

// Builds one synthetic upload plugin according to the spec. The handler's
// expected path count is 2^sequential_ifs * max(1, switch_ways).
[[nodiscard]] core::Application synth_app(const SynthSpec& spec);

}  // namespace uchecker::corpus
