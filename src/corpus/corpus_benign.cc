// The 28 vulnerability-free upload plugins of paper §IV-A. All support
// file upload; 26 validate the uploaded file's extension with the idioms
// real plugins use, and two — Event Registration Pro Calendar 1.0.2 and
// Tumult Hype Animations 1.7.1 — accept arbitrary files but only behind
// the admin menu (add_action('admin_menu', ...)). UChecker does not model
// admin gating and flags those two: the paper's two false positives.
#include "corpus/corpus.h"
#include "corpus/corpus_util.h"

namespace uchecker::corpus {
namespace {

using core::AppFile;
using core::Application;
using detail::pad_to_loc;

CorpusEntry make_entry(Application app, bool expect_uchecker_flag,
                       PaperRow paper = {}) {
  CorpusEntry entry;
  entry.app = std::move(app);
  entry.category = Category::kBenign;
  entry.ground_truth_vulnerable = false;
  entry.paper_flagged_by_uchecker = expect_uchecker_flag;
  entry.paper = paper;
  return entry;
}

// Builds the standard WordPress plugin wrapper around one handler file.
Application wrap_plugin(const std::string& name, const std::string& slug,
                        const std::string& hook, std::string handler_php,
                        std::size_t target_loc, unsigned seed) {
  Application app;
  app.name = name;
  app.files.push_back(AppFile{
      slug + ".php",
      "<?php\n/*\nPlugin Name: " + name + "\n*/\n" +
          "add_action('wp_ajax_" + hook + "', '" + hook + "');\n" +
          "add_action('wp_ajax_nopriv_" + hook + "', '" + hook + "');\n"});
  app.files.push_back(AppFile{slug + "-handler.php", std::move(handler_php)});
  pad_to_loc(app, target_loc, seed, slug);
  return app;
}

// --- The two expected false positives ---------------------------------------

CorpusEntry event_registration_pro_calendar() {
  Application app;
  app.name = "Event Registration Pro Calendar 1.0.2";
  app.files.push_back(AppFile{"event-registration-pro-calendar.php", R"php(<?php
/*
Plugin Name: Event Registration Pro Calendar
Version: 1.0.2
*/
// Paper Listing 5: the upload page is reachable only through
// 'admin_menu', i.e. only an administrator can use it.
add_action('admin_menu', 'event_registration_pro_admin_menu');

function event_registration_pro_admin_menu() {
    add_menu_page('Event Registration Pro', 'Events', 'manage_options',
        'erp-calendar', 'erp_calendar_admin_page');
}

function erp_calendar_admin_page() {
    if (isset($_POST['erp_import_template'])) {
        erp_calendar_store_template();
    }
    echo '<form method="post" enctype="multipart/form-data">';
    echo '<input type="file" name="erp_template" />';
    echo '</form>';
}
)php"});
  app.files.push_back(AppFile{"includes/template-import.php", R"php(<?php
function erp_calendar_store_template() {
    $updir = wp_upload_dir();
    $dir = $updir['basedir'] . '/erp-templates/';
    if (!file_exists($dir)) {
        wp_mkdir_p($dir);
    }
    $template = $_FILES['erp_template'];
    $dest = $dir . $template['name'];
    if (move_uploaded_file($template['tmp_name'], $dest)) {
        update_option('erp_active_template', $dest);
        echo 'template installed';
    }
}
)php"});
  pad_to_loc(app, 16771, 211, "erp");
  return make_entry(std::move(app), /*expect_uchecker_flag=*/true,
                    PaperRow{16771, 0.20, 3, 79, 4.8, 0.25, true});
}

CorpusEntry tumult_hype_animations() {
  Application app;
  app.name = "Tumult Hype Animations 1.7.1";
  app.files.push_back(AppFile{"tumult-hype-animations.php", R"php(<?php
/*
Plugin Name: Tumult Hype Animations
Version: 1.7.1
*/
add_action('admin_menu', 'hypeanimations_menu');

function hypeanimations_menu() {
    add_menu_page('Hype Animations', 'Hype', 'manage_options',
        'hypeanimations', 'hypeanimations_panel');
}

function hypeanimations_panel() {
    if (isset($_POST['hype_upload'])) {
        hypeanimations_store_oam();
    }
}
)php"});
  app.files.push_back(AppFile{"includes/oam-upload.php", R"php(<?php
function hypeanimations_store_oam() {
    $updir = wp_upload_dir();
    $container = $updir['basedir'] . '/hypeanimations/';
    if (isset($_POST['hype_replace'])) {
        echo 'replacing animation';
    }
    $target = $container . $_FILES['hype_anim']['name'];
    if (move_uploaded_file($_FILES['hype_anim']['tmp_name'], $target)) {
        echo 'animation stored at ' . $target;
    }
}
)php"});
  pad_to_loc(app, 11914, 223, "hype");
  return make_entry(std::move(app), /*expect_uchecker_flag=*/true,
                    PaperRow{11914, 0.19, 4, 66, 5.0, 0.236, true});
}

// --- 26 correctly-validating upload plugins ---------------------------------

CorpusEntry secure_image_upload() {
  return make_entry(wrap_plugin(
      "Secure Image Upload 2.1", "secure-image-upload", "siu_upload",
      R"php(<?php
function siu_upload() {
    $updir = wp_upload_dir();
    $dir = $updir['basedir'] . '/siu/';
    $file = $_FILES['siu_image'];
    $ext = strtolower(pathinfo($file['name'], PATHINFO_EXTENSION));
    $allowed = array('jpg', 'jpeg', 'png', 'gif');
    if (in_array($ext, $allowed)) {
        $dest = $dir . basename($file['name']);
        if (move_uploaded_file($file['tmp_name'], $dest)) {
            echo 'ok';
        }
    } else {
        echo 'rejected';
    }
    wp_die();
}
)php",
      612, 301), false);
}

CorpusEntry gallery_lite() {
  return make_entry(wrap_plugin(
      "Gallery Lite 4.0", "gallery-lite", "gal_upload",
      R"php(<?php
function gal_upload() {
    $updir = wp_upload_dir();
    $photo = $_FILES['gal_photo'];
    $ext = pathinfo($photo['name'], PATHINFO_EXTENSION);
    if ($ext == 'jpg' || $ext == 'jpeg' || $ext == 'png' || $ext == 'gif') {
        $dest = $updir['basedir'] . '/gallery/' . $photo['name'];
        move_uploaded_file($photo['tmp_name'], $dest);
        echo 'stored';
    }
    wp_die();
}
)php",
      845, 307), false);
}

CorpusEntry doc_share() {
  return make_entry(wrap_plugin(
      "DocShare 1.4", "doc-share", "ds_upload",
      R"php(<?php
function ds_upload() {
    $updir = wp_upload_dir();
    $doc = $_FILES['ds_document'];
    $ext = strtolower(pathinfo($doc['name'], PATHINFO_EXTENSION));
    $banned = array('php', 'php5', 'phtml', 'asp', 'cgi');
    if (in_array($ext, $banned)) {
        wp_die('executable uploads are not allowed');
    }
    $dest = $updir['basedir'] . '/docshare/' . basename($doc['name']);
    if (move_uploaded_file($doc['tmp_name'], $dest)) {
        echo 'shared';
    }
    wp_die();
}
)php",
      1320, 311), false);
}

CorpusEntry avatar_manager() {
  return make_entry(wrap_plugin(
      "Avatar Manager 3.2", "avatar-manager", "avm_upload",
      R"php(<?php
function avm_upload() {
    $updir = wp_upload_dir();
    $avatar = $_FILES['avm_avatar'];
    // The stored name is derived, never the client-supplied one.
    $dest = $updir['basedir'] . '/avatars/' . md5($avatar['name']) . '.png';
    if (move_uploaded_file($avatar['tmp_name'], $dest)) {
        update_user_meta(get_current_user_id(), 'avm_avatar', $dest);
    }
    wp_die();
}
)php",
      731, 313), false);
}

CorpusEntry media_dropzone() {
  // Uses the WordPress-sanctioned wp_handle_upload(): no direct sink at
  // all. This is the one corpus app even plain taint analysis (RIPS)
  // does not flag.
  return make_entry(wrap_plugin(
      "Media Dropzone 2.0", "media-dropzone", "mdz_upload",
      R"php(<?php
function mdz_upload() {
    $overrides = array('test_form' => false);
    $result = wp_handle_upload($_FILES['mdz_file'], $overrides);
    if (isset($result['error'])) {
        echo $result['error'];
    } else {
        echo $result['url'];
    }
    wp_die();
}
)php",
      509, 317), false);
}

CorpusEntry form_attachments_pro() {
  return make_entry(wrap_plugin(
      "Form Attachments Pro 1.9", "form-attachments-pro", "fap_upload",
      R"php(<?php
function fap_upload() {
    $updir = wp_upload_dir();
    $file = $_FILES['fap_attachment'];
    if ($file['size'] > 8388608) {
        wp_die('attachment too large');
    }
    $ext = strtolower(pathinfo($file['name'], PATHINFO_EXTENSION));
    $allowed = array('pdf', 'doc', 'docx', 'txt', 'odt');
    if (!in_array($ext, $allowed)) {
        wp_die('attachment type not allowed');
    }
    $dest = $updir['basedir'] . '/attachments/' . basename($file['name']);
    if (move_uploaded_file($file['tmp_name'], $dest)) {
        echo 'attached';
    }
    wp_die();
}
)php",
      1104, 331), false);
}

CorpusEntry csv_importer() {
  return make_entry(wrap_plugin(
      "CSV Importer 2.3", "csv-importer", "csvi_upload",
      R"php(<?php
function csvi_upload() {
    $updir = wp_upload_dir();
    $csv = $_FILES['csvi_file'];
    $ext = strtolower(pathinfo($csv['name'], PATHINFO_EXTENSION));
    if ($ext !== 'csv') {
        wp_die('only CSV files can be imported');
    }
    $dest = $updir['basedir'] . '/imports/' . uniqid() . '.' . $ext;
    if (move_uploaded_file($csv['tmp_name'], $dest)) {
        echo 'import queued';
    }
    wp_die();
}
)php",
      933, 337), false);
}

CorpusEntry backup_restore_tool() {
  return make_entry(wrap_plugin(
      "Backup Restore Tool 1.1", "backup-restore-tool", "brt_upload",
      R"php(<?php
function brt_upload() {
    $archive = $_FILES['brt_archive'];
    $ext = strtolower(pathinfo($archive['name'], PATHINFO_EXTENSION));
    if ($ext != 'zip') {
        wp_die('backups must be .zip archives');
    }
    $updir = wp_upload_dir();
    $dest = $updir['basedir'] . '/backups/' . date('Ymd-His') . '.' . $ext;
    if (move_uploaded_file($archive['tmp_name'], $dest)) {
        update_option('brt_last_backup', $dest);
    }
    wp_die();
}
)php",
      1512, 347), false);
}

CorpusEntry pdf_catalog() {
  return make_entry(wrap_plugin(
      "PDF Catalog 3.5", "pdf-catalog", "pdfc_upload",
      R"php(<?php
function pdfc_upload() {
    $updir = wp_upload_dir();
    $file = $_FILES['pdfc_file'];
    $ext = strtolower(pathinfo($file['name'], PATHINFO_EXTENSION));
    switch ($ext) {
        case 'pdf':
            $folder = 'catalogs/';
            break;
        case 'epub':
            $folder = 'books/';
            break;
        default:
            wp_die('unsupported catalog format');
    }
    $dest = $updir['basedir'] . '/' . $folder . basename($file['name']);
    if (move_uploaded_file($file['tmp_name'], $dest)) {
        echo 'catalog published';
    }
    wp_die();
}
)php",
      1787, 349), false);
}

CorpusEntry photo_contest() {
  return make_entry(wrap_plugin(
      "Photo Contest 1.6", "photo-contest", "pc_upload",
      R"php(<?php
function pc_upload() {
    $updir = wp_upload_dir();
    $entry = $_FILES['pc_entry'];
    $parts = explode('.', $entry['name']);
    $ext = strtolower(end($parts));
    $allowed = array('jpg', 'jpeg', 'png');
    if (!in_array($ext, $allowed)) {
        wp_die('contest entries must be images');
    }
    $dest = $updir['basedir'] . '/contest/' . basename($entry['name']);
    if (move_uploaded_file($entry['tmp_name'], $dest)) {
        echo 'entry received';
    }
    wp_die();
}
)php",
      654, 353), false);
}

CorpusEntry resume_collector() {
  return make_entry(wrap_plugin(
      "Resume Collector 2.2", "resume-collector", "rc_upload",
      R"php(<?php
function rc_upload() {
    $updir = wp_upload_dir();
    $resume = $_FILES['rc_resume'];
    if ($resume['error'] != 0) {
        wp_die('upload failed');
    }
    $ext = strtolower(pathinfo(basename($resume['name']), PATHINFO_EXTENSION));
    if (!in_array($ext, array('pdf', 'doc', 'docx'))) {
        wp_die('resumes must be PDF or Word documents');
    }
    $dest = $updir['basedir'] . '/resumes/' . time() . '-' . basename($resume['name']);
    if (move_uploaded_file($resume['tmp_name'], $dest)) {
        echo 'resume received';
    }
    wp_die();
}
)php",
      1240, 359), false);
}

CorpusEntry ticket_attachments() {
  return make_entry(wrap_plugin(
      "Ticket Attachments 1.0", "ticket-attachments", "ta_upload",
      R"php(<?php
function ta_upload() {
    $updir = wp_upload_dir();
    $shot = $_FILES['ta_screenshot'];
    $name = strtolower($shot['name']);
    if (substr($name, -4) != '.png' && substr($name, -4) != '.jpg') {
        wp_die('screenshots must be .png or .jpg');
    }
    $dest = $updir['basedir'] . '/tickets/' . basename($name);
    if (move_uploaded_file($shot['tmp_name'], $dest)) {
        echo 'screenshot attached';
    }
    wp_die();
}
)php",
      488, 367), false);
}

CorpusEntry logo_uploader() {
  return make_entry(wrap_plugin(
      "Logo Uploader 1.3", "logo-uploader", "lu_upload",
      R"php(<?php
function lu_upload() {
    $updir = wp_upload_dir();
    // Fixed destination name: the client name is never used.
    $dest = $updir['basedir'] . '/branding/logo.png';
    if (move_uploaded_file($_FILES['lu_logo']['tmp_name'], $dest)) {
        update_option('lu_logo_path', $dest);
        echo 'logo replaced';
    }
    wp_die();
}
)php",
      395, 373), false);
}

CorpusEntry sound_board() {
  return make_entry(wrap_plugin(
      "Sound Board 2.7", "sound-board", "sb_upload",
      R"php(<?php
function sb_upload() {
    $updir = wp_upload_dir();
    $clip = $_FILES['sb_clip'];
    $ext = strtolower(pathinfo($clip['name'], PATHINFO_EXTENSION));
    $formats = array('mp3', 'wav', 'ogg', 'm4a');
    if (!in_array($ext, $formats)) {
        wp_die('unsupported audio format');
    }
    $dest = $updir['basedir'] . '/sounds/' . md5($clip['name']) . '.' . $ext;
    if (move_uploaded_file($clip['tmp_name'], $dest)) {
        echo 'clip added';
    }
    wp_die();
}
)php",
      702, 379), false);
}

CorpusEntry font_kit() {
  return make_entry(wrap_plugin(
      "Font Kit 1.8", "font-kit", "fk_upload",
      R"php(<?php
function fk_upload() {
    $updir = wp_upload_dir();
    $font = $_FILES['fk_font'];
    $ext = strtolower(pathinfo($font['name'], PATHINFO_EXTENSION));
    if ($ext == 'ttf' || $ext == 'otf' || $ext == 'woff' || $ext == 'woff2') {
        $dest = $updir['basedir'] . '/fonts/' . basename($font['name']);
        if (move_uploaded_file($font['tmp_name'], $dest)) {
            echo 'font installed';
        }
    } else {
        echo 'not a font file';
    }
    wp_die();
}
)php",
      583, 383), false);
}

CorpusEntry import_export_settings() {
  return make_entry(wrap_plugin(
      "Import Export Settings 1.2", "import-export-settings", "ies_upload",
      R"php(<?php
function ies_upload() {
    $blob = $_FILES['ies_settings'];
    $ext = strtolower(pathinfo($blob['name'], PATHINFO_EXTENSION));
    if ($ext !== 'json') {
        wp_die('settings must be a .json export');
    }
    $updir = wp_upload_dir();
    $dest = $updir['basedir'] . '/settings/' . date('Ymd') . '.' . $ext;
    if (move_uploaded_file($blob['tmp_name'], $dest)) {
        echo 'settings staged';
    }
    wp_die();
}
)php",
      867, 389), false);
}

CorpusEntry client_files() {
  return make_entry(wrap_plugin(
      "Client Files 3.0", "client-files", "cf_upload",
      R"php(<?php
function cf_upload() {
    $updir = wp_upload_dir();
    $file = $_FILES['cf_file'];
    $ext = strtolower(pathinfo($file['name'], PATHINFO_EXTENSION));
    $banned = array('php', 'php5', 'phtml');
    if (in_array($ext, $banned)) {
        wp_die('refused');
    }
    $allowed = array('pdf', 'png', 'jpg', 'zip', 'txt');
    if (!in_array($ext, $allowed)) {
        wp_die('type not in the client whitelist');
    }
    $dest = $updir['basedir'] . '/clients/' . basename($file['name']);
    if (move_uploaded_file($file['tmp_name'], $dest)) {
        echo 'delivered';
    }
    wp_die();
}
)php",
      1421, 397), false);
}

CorpusEntry banner_rotator() {
  return make_entry(wrap_plugin(
      "Banner Rotator 2.4", "banner-rotator", "br_upload",
      R"php(<?php
function br_upload() {
    $updir = wp_upload_dir();
    $banner = $_FILES['br_banner'];
    $stem = md5($banner['name'] . time());
    // Destination extension is hard-coded.
    $dest = $updir['basedir'] . '/banners/' . $stem . '.jpg';
    if (move_uploaded_file($banner['tmp_name'], $dest)) {
        echo 'banner queued';
    }
    wp_die();
}
)php",
      521, 401), false);
}

CorpusEntry event_tickets_lite() {
  return make_entry(wrap_plugin(
      "Event Tickets Lite 1.5", "event-tickets-lite", "etl_upload",
      R"php(<?php
function etl_check_extension($name) {
    $ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
    return in_array($ext, array('png', 'jpg', 'jpeg', 'svg'));
}

function etl_upload() {
    $updir = wp_upload_dir();
    $art = $_FILES['etl_artwork'];
    if (!etl_check_extension($art['name'])) {
        wp_die('artwork must be an image');
    }
    $dest = $updir['basedir'] . '/tickets/' . basename($art['name']);
    if (move_uploaded_file($art['tmp_name'], $dest)) {
        echo 'artwork saved';
    }
    wp_die();
}
)php",
      976, 409), false);
}

CorpusEntry portfolio_showcase() {
  return make_entry(wrap_plugin(
      "Portfolio Showcase 2.8", "portfolio-showcase", "ps_upload",
      R"php(<?php
function ps_upload() {
    $updir = wp_upload_dir();
    $work = $_FILES['ps_work'];
    $ext = strtolower(pathinfo($work['name'], PATHINFO_EXTENSION));
    $ok = false;
    if ($ext == 'jpg') {
        $ok = true;
    }
    if ($ext == 'png') {
        $ok = true;
    }
    if ($ext == 'webp') {
        $ok = true;
    }
    if (!$ok) {
        wp_die('images only');
    }
    $dest = $updir['basedir'] . '/portfolio/' . basename($work['name']);
    if (move_uploaded_file($work['tmp_name'], $dest)) {
        echo 'added to portfolio';
    }
    wp_die();
}
)php",
      1105, 419), false);
}

CorpusEntry recipe_box() {
  return make_entry(wrap_plugin(
      "Recipe Box 1.9", "recipe-box", "rb_upload",
      R"php(<?php
function rb_upload() {
    $updir = wp_upload_dir();
    $photo = $_FILES['rb_photo'];
    $ext = strtolower(pathinfo($photo['name'], PATHINFO_EXTENSION));
    if ($ext == 'jpg' || $ext == 'jpeg' || $ext == 'png') {
        $slot = intval($_POST['rb_slot']);
        $dest = $updir['basedir'] . '/recipes/' . $slot . '-' . basename($photo['name']);
        if (move_uploaded_file($photo['tmp_name'], $dest)) {
            echo 'photo pinned';
        }
    }
    wp_die();
}
)php",
      618, 421), false);
}

CorpusEntry newsletter_attach() {
  return make_entry(wrap_plugin(
      "Newsletter Attach 1.1", "newsletter-attach", "na_upload",
      R"php(<?php
function na_upload() {
    if (!current_user_can('manage_options')) {
        wp_die('insufficient privileges');
    }
    $updir = wp_upload_dir();
    $file = $_FILES['na_attachment'];
    $ext = strtolower(pathinfo($file['name'], PATHINFO_EXTENSION));
    if (!in_array($ext, array('pdf', 'png', 'jpg'))) {
        wp_die('attachment type rejected');
    }
    $dest = $updir['basedir'] . '/newsletter/' . basename($file['name']);
    if (move_uploaded_file($file['tmp_name'], $dest)) {
        echo 'attachment stored';
    }
    wp_die();
}
)php",
      836, 431), false);
}

CorpusEntry directory_listings() {
  return make_entry(wrap_plugin(
      "Directory Listings 4.2", "directory-listings", "dl_upload",
      R"php(<?php
function dl_upload() {
    $updir = wp_upload_dir();
    $logo = $_FILES['dl_logo'];
    $ext = strtolower(pathinfo($logo['name'], PATHINFO_EXTENSION));
    if (!in_array($ext, array('png', 'jpg', 'gif'))) {
        wp_die('listing logos must be images');
    }
    $dest = $updir['basedir'] . '/listings/' . uniqid('logo_') . '.' . $ext;
    if (move_uploaded_file($logo['tmp_name'], $dest)) {
        echo $dest;
    }
    wp_die();
}
)php",
      1954, 433), false);
}

CorpusEntry chat_file_share() {
  return make_entry(wrap_plugin(
      "Chat File Share 1.0", "chat-file-share", "cfs_upload",
      R"php(<?php
function cfs_upload() {
    $updir = wp_upload_dir();
    $file = $_FILES['cfs_file'];
    if (empty($file['name'])) {
        wp_die('no file');
    }
    $ext = strtolower(pathinfo($file['name'], PATHINFO_EXTENSION));
    $images = array('png', 'jpg', 'jpeg', 'gif', 'webp');
    if (!in_array($ext, $images)) {
        wp_die('chat only accepts images');
    }
    $dest = $updir['basedir'] . '/chat/' . md5($file['name'] . rand()) . '.' . $ext;
    if (move_uploaded_file($file['tmp_name'], $dest)) {
        echo $dest;
    }
    wp_die();
}
)php",
      449, 439), false);
}

CorpusEntry quiz_media() {
  return make_entry(wrap_plugin(
      "Quiz Media 2.0", "quiz-media", "qm_upload",
      R"php(<?php
function qm_upload() {
    $updir = wp_upload_dir();
    $media = $_FILES['qm_media'];
    $name = strtolower(basename($media['name']));
    $ext = pathinfo($name, PATHINFO_EXTENSION);
    if (!in_array($ext, array('png', 'jpg', 'mp3'))) {
        wp_die('unsupported quiz media');
    }
    $dest = $updir['basedir'] . '/quiz/' . $name;
    if (move_uploaded_file($media['tmp_name'], $dest)) {
        echo 'media ready';
    }
    wp_die();
}
)php",
      777, 443), false);
}

CorpusEntry map_pins() {
  return make_entry(wrap_plugin(
      "Map Pins 1.4", "map-pins", "mp_upload",
      R"php(<?php
function mp_upload() {
    $updir = wp_upload_dir();
    $pin = $_FILES['mp_icon'];
    $id = intval($_POST['mp_pin_id']);
    // Stored under a numeric id with a fixed extension.
    $dest = $updir['basedir'] . '/pins/pin-' . $id . '.png';
    if (move_uploaded_file($pin['tmp_name'], $dest)) {
        echo 'pin icon updated';
    }
    wp_die();
}
)php",
      364, 449), false);
}

}  // namespace

std::vector<CorpusEntry> benign() {
  std::vector<CorpusEntry> entries;
  entries.push_back(event_registration_pro_calendar());
  entries.push_back(tumult_hype_animations());
  entries.push_back(secure_image_upload());
  entries.push_back(gallery_lite());
  entries.push_back(doc_share());
  entries.push_back(avatar_manager());
  entries.push_back(media_dropzone());
  entries.push_back(form_attachments_pro());
  entries.push_back(csv_importer());
  entries.push_back(backup_restore_tool());
  entries.push_back(pdf_catalog());
  entries.push_back(photo_contest());
  entries.push_back(resume_collector());
  entries.push_back(ticket_attachments());
  entries.push_back(logo_uploader());
  entries.push_back(sound_board());
  entries.push_back(font_kit());
  entries.push_back(import_export_settings());
  entries.push_back(client_files());
  entries.push_back(banner_rotator());
  entries.push_back(event_tickets_lite());
  entries.push_back(portfolio_showcase());
  entries.push_back(recipe_box());
  entries.push_back(newsletter_attach());
  entries.push_back(directory_listings());
  entries.push_back(chat_file_share());
  entries.push_back(quiz_media());
  entries.push_back(map_pins());
  return entries;
}

}  // namespace uchecker::corpus
