#include "corpus/corpus_util.h"

#include <algorithm>

#include "support/strutil.h"

namespace uchecker::corpus::detail {

std::size_t count_loc(const std::string& content) {
  std::size_t count = 0;
  std::size_t start = 0;
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string_view line =
        strutil::trim(std::string_view(content).substr(start, end - start));
    if (!line.empty() && !line.starts_with("//") && !line.starts_with("#") &&
        !line.starts_with("*") && !line.starts_with("/*")) {
      ++count;
    }
    if (end == content.size()) break;
    start = end + 1;
  }
  return count;
}

void pad_to_loc(core::Application& app, std::size_t target_loc, unsigned seed,
                const std::string& prefix) {
  std::size_t current = 0;
  for (const core::AppFile& f : app.files) current += count_loc(f.content);
  int chunk_index = 0;
  while (current + 16 < target_loc) {
    const std::size_t remaining = target_loc - current;
    const std::size_t chunk = std::min<std::size_t>(remaining, 8000);
    std::string content =
        filler_php(chunk, seed + static_cast<unsigned>(chunk_index), prefix);
    current += count_loc(content);
    app.files.push_back(core::AppFile{
        prefix + "-includes-" + std::to_string(chunk_index) + ".php",
        std::move(content)});
    ++chunk_index;
  }
}

}  // namespace uchecker::corpus::detail
