// Helper-chain upload apps exercising the copy()/rename()-after-upload
// sink family THROUGH a user-defined helper function, so detection (and
// safe-pruning) depends on the inter-procedural summary layer rather
// than on a lexical sink in the analysis root. Kept out of full_corpus()
// — Table III's counts are pinned by tests — and exposed as a separate
// suite for the crosscheck/prune gates (ci/check.sh step 11).
#include "corpus/corpus.h"
#include "corpus/corpus_util.h"

namespace uchecker::corpus {
namespace {

using core::AppFile;
using core::Application;
using detail::pad_to_loc;

Application wrap_plugin(const std::string& name, const std::string& slug,
                        const std::string& hook, std::string handler_php,
                        std::size_t target_loc, unsigned seed) {
  Application app;
  app.name = name;
  app.files.push_back(AppFile{
      slug + ".php",
      "<?php\n/*\nPlugin Name: " + name + "\n*/\n" +
          "add_action('wp_ajax_" + hook + "', '" + hook + "');\n" +
          "add_action('wp_ajax_nopriv_" + hook + "', '" + hook + "');\n"});
  app.files.push_back(AppFile{slug + "-handler.php", std::move(handler_php)});
  pad_to_loc(app, target_loc, seed, slug);
  return app;
}

// Vulnerable: the handler stages the upload and persists it with a
// copy() inside a helper, keeping the client-controlled filename. The
// analysis root has no lexical sink; the taint reaches copy() only
// through the hcu_persist() chain (UC107).
CorpusEntry helper_copy_uploader() {
  CorpusEntry entry;
  entry.app = wrap_plugin(
      "Helper Copy Uploader 1.0", "helper-copy-uploader", "hcu_upload",
      R"php(<?php
function hcu_upload() {
    $updir = wp_upload_dir();
    $dir = $updir['basedir'] . '/hcu/';
    $file = $_FILES['hcu_file'];
    if (!isset($file['tmp_name'])) {
        wp_die();
    }
    $dest = $dir . $file['name'];
    hcu_persist($file['tmp_name'], $dest);
    wp_die();
}

function hcu_persist($tmp, $dest) {
    if (!copy($tmp, $dest)) {
        error_log('helper-copy-uploader: persist failed');
        return false;
    }
    return true;
}
)php",
      420, 911);
  entry.category = Category::kKnownVulnerable;
  entry.ground_truth_vulnerable = true;
  entry.paper_flagged_by_uchecker = true;
  return entry;
}

// Benign: same shape, but the helper whitelists the extension and
// renames to a server-generated name before persisting with rename().
// The summary layer proves the helper safe at the call site, so the
// root prunes without symbolic execution (summary_pruned).
CorpusEntry helper_rename_uploader() {
  CorpusEntry entry;
  entry.app = wrap_plugin(
      "Helper Rename Uploader 1.0", "helper-rename-uploader", "hru_upload",
      R"php(<?php
function hru_upload() {
    $updir = wp_upload_dir();
    $dir = $updir['basedir'] . '/hru/';
    $file = $_FILES['hru_file'];
    hru_store($file['tmp_name'], $file['name'], $dir);
    wp_die();
}

function hru_store($tmp, $name, $dir) {
    $ext = strtolower(pathinfo($name, PATHINFO_EXTENSION));
    $allowed = array('jpg', 'jpeg', 'png', 'gif');
    if (!in_array($ext, $allowed)) {
        return false;
    }
    $dest = $dir . 'img-' . md5($name) . '.' . $ext;
    if (!rename($tmp, $dest)) {
        return false;
    }
    return true;
}
)php",
      430, 912);
  entry.category = Category::kBenign;
  entry.ground_truth_vulnerable = false;
  entry.paper_flagged_by_uchecker = false;
  return entry;
}

// Vulnerable, two hops deep: the root calls a wrapper that calls the
// helper containing the rename() sink — the UC107 chain has length 3.
CorpusEntry helper_chain_mover() {
  CorpusEntry entry;
  entry.app = wrap_plugin(
      "Helper Chain Mover 1.0", "helper-chain-mover", "hcm_upload",
      R"php(<?php
function hcm_upload() {
    $updir = wp_upload_dir();
    $dir = $updir['basedir'] . '/hcm/';
    $file = $_FILES['hcm_file'];
    hcm_accept($file, $dir);
    wp_die();
}

function hcm_accept($file, $dir) {
    $target = $dir . $file['name'];
    return hcm_move($file['tmp_name'], $target);
}

function hcm_move($tmp, $target) {
    if (!rename($tmp, $target)) {
        return false;
    }
    return true;
}
)php",
      410, 913);
  entry.category = Category::kKnownVulnerable;
  entry.ground_truth_vulnerable = true;
  entry.paper_flagged_by_uchecker = true;
  return entry;
}

}  // namespace

std::vector<CorpusEntry> helper_sink_suite() {
  std::vector<CorpusEntry> entries;
  entries.push_back(helper_copy_uploader());
  entries.push_back(helper_rename_uploader());
  entries.push_back(helper_chain_mover());
  return entries;
}

}  // namespace uchecker::corpus
