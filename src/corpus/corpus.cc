#include "corpus/corpus.h"

#include "corpus/corpus_util.h"

namespace uchecker::corpus {

std::vector<CorpusEntry> full_corpus() {
  std::vector<CorpusEntry> all = known_vulnerable();
  for (CorpusEntry& e : benign()) all.push_back(std::move(e));
  for (CorpusEntry& e : new_vulnerable()) all.push_back(std::move(e));
  return all;
}

core::Application synth_app(const SynthSpec& spec) {
  core::Application app;
  app.name = spec.name;

  std::string handler = "<?php\nfunction synth_handle_upload() {\n";
  handler += "    $updir = wp_upload_dir();\n";
  handler += "    $dir = $updir['basedir'] . '/synth/';\n";
  handler += "    $trace = array();\n";
  for (int i = 0; i < spec.sequential_ifs; ++i) {
    handler += "    if (isset($_POST['opt_" + std::to_string(i) + "'])) {\n";
    handler += "        $trace[] = 'opt" + std::to_string(i) + "';\n";
    handler += "    }\n";
  }
  if (spec.switch_ways > 1) {
    handler += "    $mode = 'none';\n";
    handler += "    switch ($_POST['mode']) {\n";
    for (int i = 0; i < spec.switch_ways - 1; ++i) {
      handler += "        case 'mode" + std::to_string(i) + "':\n";
      handler += "            $mode = 'm" + std::to_string(i) + "';\n";
      handler += "            break;\n";
    }
    handler += "        default:\n";
    handler += "            $mode = 'none';\n";
    handler += "            break;\n";
    handler += "    }\n";
  }
  handler += "    $file = $_FILES['synth_file'];\n";
  if (!spec.vulnerable) {
    handler +=
        "    $ext = strtolower(pathinfo($file['name'], PATHINFO_EXTENSION));\n"
        "    if (!in_array($ext, array('jpg', 'png', 'gif'))) {\n"
        "        wp_die('rejected');\n"
        "    }\n";
  }
  handler += "    $target = $dir . $file['name'];\n";
  handler += "    if (move_uploaded_file($file['tmp_name'], $target)) {\n";
  handler += "        $trace[] = 'saved';\n";
  handler += "    }\n";
  handler += "    echo json_encode($trace);\n";
  handler += "}\n";

  std::string main_file = "<?php\n/*\nPlugin Name: " + spec.name + "\n*/\n";
  main_file += "add_action('wp_ajax_synth_upload', 'synth_handle_upload');\n";

  app.files.push_back(core::AppFile{spec.name + ".php", std::move(main_file)});
  app.files.push_back(core::AppFile{spec.name + "-handler.php", std::move(handler)});
  for (int i = 0; i < spec.filler_files; ++i) {
    const std::size_t chunk = spec.filler_loc / (spec.filler_files > 0 ? spec.filler_files : 1);
    app.files.push_back(core::AppFile{
        spec.name + "-lib-" + std::to_string(i) + ".php",
        filler_php(chunk, 1000 + static_cast<unsigned>(i), "synth")});
  }
  return app;
}

}  // namespace uchecker::corpus
