// Internal helpers shared by the corpus translation units.
#pragma once

#include <string>

#include "corpus/corpus.h"

namespace uchecker::corpus::detail {

// Physical LoC of a PHP source (same rules as SourceFile::loc_count()).
[[nodiscard]] std::size_t count_loc(const std::string& content);

// Appends deterministic filler files until the app reaches ~target LoC.
void pad_to_loc(core::Application& app, std::size_t target_loc, unsigned seed,
                const std::string& prefix);

}  // namespace uchecker::corpus::detail
