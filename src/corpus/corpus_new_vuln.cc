// The 3 previously-unreported vulnerable plugins UChecker discovered
// (paper §IV-B). The upload handlers are the paper's own Listings 6-8,
// reproduced verbatim (modulo surrounding plugin boilerplate).
#include "corpus/corpus.h"
#include "corpus/corpus_util.h"

namespace uchecker::corpus {
namespace {

using core::AppFile;
using core::Application;
using detail::pad_to_loc;

CorpusEntry make_entry(Application app, PaperRow paper) {
  CorpusEntry entry;
  entry.app = std::move(app);
  entry.category = Category::kNewVulnerable;
  entry.ground_truth_vulnerable = true;
  entry.paper_flagged_by_uchecker = true;
  entry.paper = paper;
  return entry;
}

// --- File Provider 1.2.3 (paper Listing 7) ----------------------------------
CorpusEntry file_provider() {
  Application app;
  app.name = "File Provider 1.2.3";
  app.files.push_back(AppFile{"file-provider.php", R"php(<?php
/*
Plugin Name: File Provider
Version: 1.2.3
*/
add_action('wp_ajax_fp_upload', 'upload_file');
add_action('wp_ajax_nopriv_fp_upload', 'upload_file');

function upload_file() {
    $paths = wp_upload_dir();
    $fileProviderPath = $paths['basedir'] . '/file-provider/';
    $msg = array();
    $labels = array();
    $meta = array();
    $totals = array();
    $meta['plugin'] = 'file-provider';
    $meta['version'] = '1.2.3';
    $meta['page'] = 'upload';
    $meta['view'] = 'grid';
    $meta['sort'] = 'name';
    $meta['order'] = 'asc';
    $meta['per_page'] = 20;
    $meta['columns'] = 4;
    $labels[] = 'file list';
    $labels[] = 'file search';
    $labels[] = 'file share';
    $totals['files'] = 0;
    $totals['folders'] = 1;
    $totals['shares'] = 0;
    $totals['bytes'] = 0;
    $totals['quota'] = 1073741824;
    if (!file_exists($fileProviderPath)) {
        wp_mkdir_p($fileProviderPath);
    }
    if (isset($_POST['fp_category'])) {
        $msg[] = 'category:' . $_POST['fp_category'];
    }
    if (isset($_POST['fp_share'])) {
        $msg[] = 'shared';
    }
    if (isset($_POST['fp_public'])) {
        $msg[] = 'public';
    }
    // Listing 7: the original filename is used as the destination
    // filename without a sanity check.
    $nome_final = $_FILES['userFile']['name'];
    $uploadfile = $fileProviderPath . $nome_final;
    if (move_uploaded_file($_FILES['userFile']['tmp_name'], $uploadfile)) {
        $msg[] = 'stored';
    }
    echo json_encode($msg);
    wp_die();
}
)php"});
  pad_to_loc(app, 138, 151, "fp");
  return make_entry(std::move(app),
                    PaperRow{138, 52.17, 33, 474, 5.2, 0.40, true});
}

// --- WooCommerce Custom Profile Picture 1.0 (paper Listing 6) ---------------
CorpusEntry woocommerce_custom_profile_picture() {
  Application app;
  app.name = "WooCommerce Custom Profile Picture 1.0";
  app.files.push_back(AppFile{"woo-custom-profile-picture.php", R"php(<?php
/*
Plugin Name: WooCommerce Custom Profile Picture
Version: 1.0
*/
if ($_FILES['profile_pic']) {
    $picture_id = wc_cus_upload_picture($_FILES['profile_pic']);
}

function wc_cus_upload_picture($foto) {
    $profilepicture = $foto;
    $wordpress_upload_dir = wp_upload_dir();
    $meta = array();
    $meta['source'] = 'woocommerce-account';
    $meta['field'] = 'profile_pic';
    $meta['widget'] = 'avatar';
    $meta['size_limit'] = 2097152;
    $meta['resize_to'] = 256;
    $meta['quality'] = 90;
    $meta['crop'] = 'center';
    $meta['fallback'] = 'gravatar';
    $meta['owner'] = get_current_user_id();
    $meta['time'] = time();
    $new_file_path = $wordpress_upload_dir['path'] . '/' . $profilepicture['name'];
    if (move_uploaded_file($profilepicture['tmp_name'], $new_file_path)) {
        update_user_meta(get_current_user_id(), 'wc_profile_pic', $new_file_path);
        return $new_file_path;
    }
    return false;
}
)php"});
  pad_to_loc(app, 983, 163, "wcpp");
  return make_entry(std::move(app), PaperRow{983, 2.65, 2, 45, 4.8, 0.28, true});
}

// --- WP Demo Buddy 1.0.2 (paper Listing 8) -----------------------------------
CorpusEntry wp_demo_buddy() {
  Application app;
  app.name = "WP Demo Buddy 1.0.2";
  app.files.push_back(AppFile{"wp-demo-buddy.php", R"php(<?php
/*
Plugin Name: WP Demo Buddy
Version: 1.0.2
*/
add_action('wp_ajax_wpdb_demo_upload', 'wpdemobuddy_handle');

function wpdemobuddy_handle() {
    $ret = file_Upload('demo_archive');
    echo json_encode($ret);
    wp_die();
}

function file_Upload($type)
{
    global $wpdb;
    $upload_dir = get_option('wp_demo_buddy_upload_dir');
    $meta = array();
    $meta['component'] = 'demo-builder';
    $meta['archive_limit'] = 52428800;
    $meta['retention_days'] = 7;
    $meta['sandbox'] = 'per-user';
    $meta['notify'] = 'admin';
    $meta['queue'] = 'default';
    $ext = pathinfo($_FILES[$type]['name'], PATHINFO_EXTENSION);
    if ($ext !== 'zip') return;
    $info = pathinfo($_FILES[$type]['name']);
    // Listing 8: ".php" is deliberately appended before the ".zip" file
    // is written, so "exploit.zip" is stored as "exploit.zip.php".
    $newname = time() . rand() . '_' . $info['basename'] . '.php';
    $target = $upload_dir . $newname;
    move_uploaded_file($_FILES[$type]['tmp_name'], $target);
    $ret = array($newname, $info['basename']);
    return $ret;
}
)php"});
  pad_to_loc(app, 2196, 167, "wpdb");
  return make_entry(std::move(app),
                    PaperRow{2196, 1.32, 2, 85, 4.83, 0.277, true});
}

}  // namespace

std::vector<CorpusEntry> new_vulnerable() {
  std::vector<CorpusEntry> entries;
  entries.push_back(file_provider());
  entries.push_back(woocommerce_custom_profile_picture());
  entries.push_back(wp_demo_buddy());
  return entries;
}

}  // namespace uchecker::corpus
