// The 13 publicly-reported vulnerable applications of Table III,
// reconstructed from the paper's descriptions.
//
// Reconstruction recipe per app:
//   - the upload flaw is the one the paper describes (client-controlled
//     file name reaching move_uploaded_file with no extension check);
//   - the branch structure is sized to the paper's reported path count
//     (e.g. Avatar Uploader: 9 option flags, a 9-way preset switch and
//     the sink conditional give 2^10 * 9 = 9216 paths, Table III's exact
//     figure; Cimy User Extra Fields: 2^10 * 3^5 = 248832 paths, which
//     exhausts the analysis budget the way the paper's run exhausted
//     memory);
//   - the analysis-root file/function is padded with inert helper code
//     to the paper's "% of LoC analyzed" region size, and the whole app
//     is padded with filler modules to the paper's LoC column.
#include "corpus/corpus.h"
#include "corpus/corpus_util.h"

namespace uchecker::corpus {
namespace {

using core::AppFile;
using core::Application;
using detail::count_loc;
using detail::pad_to_loc;

CorpusEntry make_entry(Application app, PaperRow paper) {
  CorpusEntry entry;
  entry.app = std::move(app);
  entry.category = Category::kKnownVulnerable;
  entry.ground_truth_vulnerable = true;
  entry.paper_flagged_by_uchecker = paper.detected;
  entry.paper = paper;
  return entry;
}

// Endpoint-style handler: top-level upload code plus embedded helper
// functions padding the file (the analysis root) to ~analyzed_loc.
std::string endpoint_file(const std::string& top_level,
                          std::size_t analyzed_loc, unsigned seed,
                          const std::string& prefix) {
  std::string out = "<?php\n" + top_level;
  const std::size_t current = count_loc(out);
  if (current + 12 < analyzed_loc) {
    out += filler_php_body(analyzed_loc - current, seed, prefix);
  }
  return out;
}

// Standard plugin main file (no upload logic).
AppFile main_file(const std::string& name, const std::string& slug) {
  return AppFile{slug + ".php",
                 "<?php\n/*\nPlugin Name: " + name + "\n*/\n" +
                     "function " + slug + "_enqueue() {\n" +
                     "    wp_enqueue_script('" + slug + "');\n" +
                     "    wp_enqueue_style('" + slug + "');\n}\n" +
                     "add_action('wp_enqueue_scripts', '" + slug +
                     "_enqueue');\n"};
}

// --- 1. Adblock Blocker 0.0.1: 3 binary forks = 8 paths (paper: 7) ---------
CorpusEntry adblock_blocker() {
  Application app;
  app.name = "Adblock Blocker 0.0.1";
  app.files.push_back(main_file("Adblock Blocker", "adblock_blocker"));
  app.files.push_back(AppFile{
      "abb-upload.php",
      endpoint_file(R"php($settings = get_option('abb_settings');
$upload = wp_upload_dir();
$dir = $upload['basedir'] . '/abb-icons/';
$file = $_FILES['abb_icon'];
$name = $file['name'];
$messages = array();
if ($file['size'] > 2097152) {
    $messages[] = 'icon larger than 2MB, resizing later';
}
if (isset($settings['flatten'])) {
    $name = str_replace(' ', '-', $name);
}
$target = $dir . $name;
// No extension validation at all: the original report for 0.0.1.
if (move_uploaded_file($file['tmp_name'], $target)) {
    $messages[] = 'stored ' . $target;
    update_option('abb_icon_path', $target);
}
echo json_encode($messages);
)php",
                    63, 11, "abb")});
  pad_to_loc(app, 484, 12, "abb_lib");
  return make_entry(std::move(app),
                    PaperRow{484, 13.02, 7, 158, 4.9, 0.50, true});
}

// --- 2. WP Marketplace 2.4.1: sink conditional only = 2 paths ---------------
CorpusEntry wp_marketplace() {
  Application app;
  app.name = "WP Marketplace 2.4.1";
  app.files.push_back(main_file("WP Marketplace", "wpmarketplace"));
  app.files.push_back(AppFile{
      "modules/listing-upload.php",
      endpoint_file(R"php($updir = wp_upload_dir();
$path = $updir['path'] . '/' . $_FILES['wpmp_file']['name'];
if (move_uploaded_file($_FILES['wpmp_file']['tmp_name'], $path)) {
    echo 'done:' . $path;
}
)php",
                    31, 23, "wpmp")});
  pad_to_loc(app, 10850, 24, "wpmp_lib");
  return make_entry(std::move(app),
                    PaperRow{10850, 0.29, 2, 55, 4.7, 2.60, true});
}

// --- 3. Foxypress 0.4.1.1-0.4.2.1: 6 binary forks = 64 paths (paper: 65) ----
CorpusEntry foxypress() {
  Application app;
  app.name = "Foxypress 0.4.1.1-0.4.2.1";
  app.files.push_back(main_file("Foxypress", "foxypress"));
  app.files.push_back(AppFile{
      "uploadify/uploadify.php",
      endpoint_file(R"php($options = get_option('foxypress_media');
$updir = wp_upload_dir();
$folder = $updir['basedir'] . '/foxypress/';
$flags = array();
if (!is_dir($folder)) {
    wp_mkdir_p($folder);
    $flags[] = 'created';
}
if (isset($options['watermark'])) {
    $flags[] = 'watermark';
}
if (isset($options['resize'])) {
    $flags[] = 'resize';
}
if (isset($options['thumbnail'])) {
    $flags[] = 'thumbnail';
}
if (isset($options['keep_original'])) {
    $flags[] = 'original';
}
$file = $_FILES['Filedata'];
$filename = $file['name'];
$target = $folder . $filename;
if (move_uploaded_file($file['tmp_name'], $target)) {
    $flags[] = 'moved';
}
echo json_encode(array('file' => $target, 'flags' => $flags));
)php",
                    95, 31, "foxypress")});
  pad_to_loc(app, 15815, 32, "foxypress_lib");
  return make_entry(std::move(app),
                    PaperRow{15815, 0.60, 65, 1671, 5.2, 2.98, true});
}

// --- 4. Estatik 2.2.5: 2 * 3 * 2 = 12 paths ---------------------------------
CorpusEntry estatik() {
  Application app;
  app.name = "Estatik 2.2.5";
  app.files.push_back(main_file("Estatik", "estatik"));
  app.files.push_back(AppFile{
      "admin/es-media.php",
      endpoint_file(R"php($property_id = intval($_POST['property_id']);
$updir = wp_upload_dir();
$base = $updir['basedir'] . '/estatik/' . $property_id . '/';
if (!file_exists($base)) {
    wp_mkdir_p($base);
}
$file = $_FILES['es_media'];
$slot = 'gallery';
switch ($_POST['es_slot']) {
    case 'plan':
        $slot = 'plan';
        break;
    case 'doc':
        $slot = 'doc';
        break;
    default:
        $slot = 'gallery';
        break;
}
$dest = $base . $slot . '-' . $file['name'];
if (move_uploaded_file($file['tmp_name'], $dest)) {
    update_post_meta($property_id, 'es_media_' . $slot, $dest);
    echo $dest;
}
)php",
                    176, 41, "estatik")});
  pad_to_loc(app, 9913, 42, "estatik_lib");
  return make_entry(std::move(app),
                    PaperRow{9913, 1.78, 12, 269, 5.2, 1.72, true});
}

// --- 5. Uploadify 1.0.0: 2 paths ---------------------------------------------
CorpusEntry uploadify() {
  Application app;
  app.name = "Uploadify 1.0.0";
  // The classic standalone endpoint: the file body is the analysis root.
  app.files.push_back(AppFile{"uploadify.php", R"php(<?php
// Uploadify server-side endpoint, version 1.0.0.
$targetFolder = '/uploads';
$verifyToken = md5('unique_salt' . $_POST['timestamp']);
$responses = array();
$responses['status'] = 'idle';
$responses['folder'] = $targetFolder;
$responses['limit'] = ini_get('upload_max_filesize');
$responses['time'] = time();
$responses['token'] = $verifyToken;
$responses['client'] = $_SERVER['REMOTE_ADDR'];
$responses['agent'] = $_SERVER['HTTP_USER_AGENT'];
$responses['method'] = $_SERVER['REQUEST_METHOD'];
$responses['host'] = $_SERVER['HTTP_HOST'];
$responses['uri'] = $_SERVER['REQUEST_URI'];
$responses['query'] = $_SERVER['QUERY_STRING'];
$responses['proto'] = $_SERVER['SERVER_PROTOCOL'];
$responses['port'] = $_SERVER['SERVER_PORT'];
$responses['root'] = $_SERVER['DOCUMENT_ROOT'];
if (!empty($_FILES)) {
    $tempFile = $_FILES['Filedata']['tmp_name'];
    $targetPath = $_SERVER['DOCUMENT_ROOT'] . $targetFolder;
    $targetFile = rtrim($targetPath, '/') . '/' . $_FILES['Filedata']['name'];
    move_uploaded_file($tempFile, $targetFile);
    $responses['status'] = 'saved';
    $responses['file'] = $targetFile;
    echo str_replace($_SERVER['DOCUMENT_ROOT'], '', $targetFile);
}
echo json_encode($responses);
)php"});
  app.files.push_back(AppFile{"check-exists.php", R"php(<?php
// Companion endpoint: reports whether a target file already exists.
$targetFolder = $_POST['folder'];
$fileName = $_POST['filename'];
if (file_exists($_SERVER['DOCUMENT_ROOT'] . $targetFolder . '/' . $fileName)) {
    echo 1;
} else {
    echo 0;
}
)php"});
  pad_to_loc(app, 80, 53, "uploadify_lib");
  return make_entry(std::move(app), PaperRow{80, 35.00, 2, 35, 4.7, 0.31, true});
}

// --- 6. MailCWP 1.100: 3 binary forks = 8 paths ------------------------------
CorpusEntry mailcwp() {
  Application app;
  app.name = "MailCWP 1.100";
  app.files.push_back(main_file("MailCWP", "mailcwp"));
  app.files.push_back(AppFile{
      "mailcwp-attach.php",
      endpoint_file(R"php($session = $_POST['mailcwp_session'];
$updir = wp_upload_dir();
$folder = $updir['basedir'] . '/mailcwp/' . $session . '/';
if (!file_exists($folder)) {
    wp_mkdir_p($folder);
}
if ($_FILES['attachment']['error'] > 0) {
    echo 'upload reported error';
}
$target = $folder . basename($_FILES['attachment']['name']);
if (move_uploaded_file($_FILES['attachment']['tmp_name'], $target)) {
    echo 'attached ' . $target;
}
)php",
                    28, 61, "mailcwp")});
  pad_to_loc(app, 2847, 62, "mailcwp_lib");
  return make_entry(std::move(app),
                    PaperRow{2847, 0.98, 8, 161, 4.7, 5.80, true});
}

// --- 7. WooCommerce Catalog Enquiry 3.0.1: 5 forks = 32 paths (paper: 34) ----
CorpusEntry woocommerce_catalog_enquiry() {
  Application app;
  app.name = "WooCommerce Catalog Enquiry 3.0.1";
  app.files.push_back(main_file("WooCommerce Catalog Enquiry", "wce"));
  app.files.push_back(AppFile{
      "classes/enquiry-form.php",
      endpoint_file(R"php($settings = get_option('wce_form_settings');
$updir = wp_upload_dir();
$dir = $updir['basedir'] . '/enquiry/';
$report = array();
if (isset($settings['notify_admin'])) {
    $report[] = 'notify';
}
if (isset($settings['copy_customer'])) {
    $report[] = 'copy';
}
if (isset($settings['store_message'])) {
    $report[] = 'store';
}
$enquiry_file = $_FILES['wce_attachment'];
$name = $enquiry_file['name'];
if (isset($settings['prefix_date'])) {
    $name = date('Ymd') . '-' . $name;
}
$destination = $dir . $name;
if (move_uploaded_file($enquiry_file['tmp_name'], $destination)) {
    $report[] = 'saved ' . $destination;
}
echo json_encode($report);
)php",
                    116, 71, "wce")});
  pad_to_loc(app, 3565, 72, "wce_lib");
  return make_entry(std::move(app),
                    PaperRow{3565, 3.25, 34, 373, 5.1, 0.96, true});
}

// --- 8. N-Media Contact Form 1.3.4: 7 forks = 128 paths (paper: 126) ---------
CorpusEntry nmedia_contact_form() {
  Application app;
  app.name = "N-Media Website Contact Form with File Uploader 1.3.4";
  app.files.push_back(main_file("N-Media Website Contact Form", "nmedia"));
  app.files.push_back(AppFile{
      "handler/upload.php",
      endpoint_file(R"php($form = get_option('nm_form_options');
$updir = wp_upload_dir();
$folder = $updir['basedir'] . '/nmedia/';
$log = array();
if (isset($form['require_name'])) {
    $log[] = 'require_name';
}
if (isset($form['require_email'])) {
    $log[] = 'require_email';
}
if (isset($form['require_phone'])) {
    $log[] = 'require_phone';
}
if (isset($form['auto_reply'])) {
    $log[] = 'auto_reply';
}
if (isset($form['save_entry'])) {
    $log[] = 'save_entry';
}
if (isset($form['notify_admin'])) {
    $log[] = 'notify_admin';
}
$uploaded = $_FILES['nm_uploader'];
$target = $folder . $uploaded['name'];
if (move_uploaded_file($uploaded['tmp_name'], $target)) {
    $log[] = 'saved';
    echo json_encode(array('file' => $target, 'log' => $log));
}
)php",
                    104, 83, "nm")});
  pad_to_loc(app, 1099, 84, "nm_lib");
  return make_entry(std::move(app),
                    PaperRow{1099, 9.46, 126, 1679, 5.2, 1.23, true});
}

// --- 9. Simple Ad Manager 2.5.94: 2^9 * 3 = 1536 paths (paper: 1476) ---------
CorpusEntry simple_ad_manager() {
  Application app;
  app.name = "Simple Ad Manager 2.5.94";
  app.files.push_back(main_file("Simple Ad Manager", "sam"));
  app.files.push_back(AppFile{
      "sam-media.php",
      endpoint_file(R"php($options = get_option('sam_options');
$updir = wp_upload_dir();
$dir = $updir['basedir'] . '/sam/';
$trace = array();
if (!file_exists($dir)) {
    wp_mkdir_p($dir);
}
if (isset($options['track_views'])) {
    $trace[] = 'views';
}
if (isset($options['track_clicks'])) {
    $trace[] = 'clicks';
}
if (isset($options['rotate'])) {
    $trace[] = 'rotate';
}
if (isset($options['schedule'])) {
    $trace[] = 'schedule';
}
if (isset($options['geo'])) {
    $trace[] = 'geo';
}
if (isset($options['mobile'])) {
    $trace[] = 'mobile';
}
if (isset($options['lazy'])) {
    $trace[] = 'lazy';
}
$place = $_POST['sam_place'];
if ($place == 'header') {
    $subdir = 'header/';
} elseif ($place == 'footer') {
    $subdir = 'footer/';
} else {
    $subdir = 'inline/';
}
$ad = $_FILES['sam_media'];
$target = $dir . $subdir . $ad['name'];
if (move_uploaded_file($ad['tmp_name'], $target)) {
    $trace[] = 'stored';
}
echo json_encode($trace);
)php",
                    334, 97, "sam")});
  pad_to_loc(app, 4340, 98, "sam_lib");
  return make_entry(std::move(app),
                    PaperRow{4340, 7.70, 1476, 13628, 9.3, 5.35, true});
}

// --- 10. wp-Powerplaygallery 3.3: 2^7 * 9 = 1152 paths (paper: 1224) ---------
CorpusEntry powerplay_gallery() {
  Application app;
  app.name = "wp-Powerplaygallery 3.3";
  app.files.push_back(main_file("wp-Powerplaygallery", "ppg"));
  app.files.push_back(AppFile{
      "ppg-upload.php",
      endpoint_file(R"php($conf = get_option('ppg_config');
$updir = wp_upload_dir();
$albums = $updir['basedir'] . '/ppg_albums/';
$steps = array();
if (!file_exists($albums)) {
    wp_mkdir_p($albums);
}
if (isset($conf['autoplay'])) {
    $steps[] = 'autoplay';
}
if (isset($conf['shuffle'])) {
    $steps[] = 'shuffle';
}
if (isset($conf['loop'])) {
    $steps[] = 'loop';
}
if (isset($conf['captions'])) {
    $steps[] = 'captions';
}
if (isset($conf['fullscreen'])) {
    $steps[] = 'fullscreen';
}
$effect = 'none';
switch ($_POST['ppg_effect']) {
    case 'fade':
        $effect = 'fade';
        break;
    case 'slide':
        $effect = 'slide';
        break;
    case 'zoom':
        $effect = 'zoom';
        break;
    case 'blur':
        $effect = 'blur';
        break;
    case 'flip':
        $effect = 'flip';
        break;
    case 'cube':
        $effect = 'cube';
        break;
    case 'wipe':
        $effect = 'wipe';
        break;
    case 'push':
        $effect = 'push';
        break;
    default:
        $effect = 'none';
        break;
}
$photo = $_FILES['ppg_photo'];
$target = $albums . $effect . '_' . $photo['name'];
if (move_uploaded_file($photo['tmp_name'], $target)) {
    $steps[] = 'saved';
}
echo json_encode($steps);
)php",
                    104, 101, "ppg")});
  pad_to_loc(app, 2757, 102, "ppg_lib");
  return make_entry(std::move(app),
                    PaperRow{2757, 3.77, 1224, 16138, 6.6, 2.78, true});
}

// --- 11. Joomla-Bible-study 9.1.1: 4 forks = 16 paths ------------------------
CorpusEntry joomla_bible_study() {
  Application app;
  app.name = "Joomla-Bible-study 9.1.1";
  app.files.push_back(AppFile{"admin/biblestudy.php", R"php(<?php
// Joomla Bible Study component entry point.
$task = $_POST['task'];
if ($task == 'mediafile.upload') {
    require 'controllers/mediafile.php';
}
)php"});
  app.files.push_back(AppFile{
      "admin/controllers/mediafile.php",
      endpoint_file(R"php($params = array('folder' => 'media/biblestudy');
$base = $_SERVER['DOCUMENT_ROOT'] . '/' . $params['folder'] . '/';
$notes = array();
if (isset($_POST['series_id'])) {
    $notes[] = 'series';
}
if (isset($_POST['teacher_id'])) {
    $notes[] = 'teacher';
}
if (isset($_POST['podcast'])) {
    $notes[] = 'podcast';
}
$media = $_FILES['study_media'];
$dest = $base . $media['name'];
if (move_uploaded_file($media['tmp_name'], $dest)) {
    $notes[] = 'uploaded ' . $dest;
}
echo implode(',', $notes);
)php",
                    237, 113, "jbs")});
  pad_to_loc(app, 94659, 114, "jbs_lib");
  return make_entry(std::move(app),
                    PaperRow{94659, 0.25, 16, 236, 5.6, 13.72, true});
}

// --- 12. Avatar Uploader 6.x-1.2: 2^10 * 9 = 9216 paths (exact) --------------
CorpusEntry avatar_uploader() {
  Application app;
  app.name = "Avatar Uploader 6.x-1.2";
  app.files.push_back(AppFile{
      "avatar_uploader.module",
      endpoint_file(R"php($dir = '/var/www/files/avatars/';
$flags = array();
if (isset($_POST['opt_border'])) {
    $flags[] = 'border';
}
if (isset($_POST['opt_shadow'])) {
    $flags[] = 'shadow';
}
if (isset($_POST['opt_round'])) {
    $flags[] = 'round';
}
if (isset($_POST['opt_gray'])) {
    $flags[] = 'gray';
}
if (isset($_POST['opt_flip'])) {
    $flags[] = 'flip';
}
if (isset($_POST['opt_mirror'])) {
    $flags[] = 'mirror';
}
if (isset($_POST['opt_invert'])) {
    $flags[] = 'invert';
}
if (isset($_POST['opt_scale'])) {
    $flags[] = 'scale';
}
if (isset($_POST['opt_tile'])) {
    $flags[] = 'tile';
}
$preset = 'free';
switch ($_POST['crop_preset']) {
    case 'square':
        $preset = 'square';
        break;
    case 'portrait':
        $preset = 'portrait';
        break;
    case 'landscape':
        $preset = 'landscape';
        break;
    case 'wide':
        $preset = 'wide';
        break;
    case 'tall':
        $preset = 'tall';
        break;
    case 'tiny':
        $preset = 'tiny';
        break;
    case 'large':
        $preset = 'large';
        break;
    case 'banner':
        $preset = 'banner';
        break;
    default:
        $preset = 'free';
        break;
}
$picture = $_FILES['picture_upload'];
$destination = $dir . $preset . '/' . $picture['name'];
if (move_uploaded_file($picture['tmp_name'], $destination)) {
    $flags[] = 'saved';
}
echo implode(' ', $flags);
)php",
                    149, 127, "avatar")});
  pad_to_loc(app, 458, 128, "avatar_lib");
  return make_entry(std::move(app),
                    PaperRow{458, 32.53, 9216, 62600, 62.9, 52.74, true});
}

// --- 13. Cimy User Extra Fields 2.3.8: 2^10 * 3^5 = 248832 paths -------------
CorpusEntry cimy_user_extra_fields() {
  Application app;
  app.name = "Cimy User Extra Fields 2.3.8";
  std::string top = R"php($fields = get_option('cimy_uef_fields');
$updir = wp_upload_dir();
$user_id = intval($_POST['user_id']);
$dir = $updir['basedir'] . '/cimy_uef/' . $user_id . '/';
$audit = array();
)php";
  const char* const kFlags[] = {"show_name",    "show_email",  "show_phone",
                                "show_city",    "show_country", "show_company",
                                "show_website", "show_bio",     "show_age"};
  for (const char* flag : kFlags) {
    top += "if (isset($fields['" + std::string(flag) + "'])) {\n";
    top += "    $audit[] = '" + std::string(flag) + "';\n";
    top += "}\n";
  }
  for (int i = 1; i <= 5; ++i) {
    const std::string var = "$t" + std::to_string(i);
    top += var + " = $_POST['cimy_type_" + std::to_string(i) + "'];\n";
    top += "if (" + var + " == 'text') {\n";
    top += "    $audit[] = 't" + std::to_string(i) + "-text';\n";
    top += "} elseif (" + var + " == 'file') {\n";
    top += "    $audit[] = 't" + std::to_string(i) + "-file';\n";
    top += "} else {\n";
    top += "    $audit[] = 't" + std::to_string(i) + "-other';\n";
    top += "}\n";
  }
  top += R"php($upload = $_FILES['cimy_uef_file'];
$target = $dir . $upload['name'];
if (move_uploaded_file($upload['tmp_name'], $target)) {
    update_user_meta($user_id, 'cimy_uef_file', $target);
}
echo implode(',', $audit);
)php";
  app.files.push_back(main_file("Cimy User Extra Fields", "cimy_uef"));
  app.files.push_back(
      AppFile{"cimy_uef_register.php", endpoint_file(top, 195, 131, "cimy")});
  pad_to_loc(app, 9432, 132, "cimy_lib");
  return make_entry(std::move(app),
                    PaperRow{9432, 2.07, 248832, 2780067, 0.0, 0.0, false});
}

}  // namespace

std::vector<CorpusEntry> known_vulnerable() {
  std::vector<CorpusEntry> entries;
  entries.push_back(adblock_blocker());
  entries.push_back(wp_marketplace());
  entries.push_back(foxypress());
  entries.push_back(estatik());
  entries.push_back(uploadify());
  entries.push_back(mailcwp());
  entries.push_back(woocommerce_catalog_enquiry());
  entries.push_back(nmedia_contact_form());
  entries.push_back(simple_ad_manager());
  entries.push_back(powerplay_gallery());
  entries.push_back(joomla_bible_study());
  entries.push_back(avatar_uploader());
  entries.push_back(cimy_user_extra_fields());
  return entries;
}

}  // namespace uchecker::corpus
