#include "baselines/wap.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "phpparse/parser.h"

namespace uchecker::baselines {
namespace {

struct Sample {
  WapFeatures x;
  bool vulnerable;
};

// Embedded training set: feature vectors distilled from labeled upload
// snippets (direct-name flows without validation are exploitable; flows
// with validation calls or indirect destinations are overwhelmingly
// safe or unprovable, which WAP treats as negative).
std::vector<Sample> training_set() {
  std::vector<Sample> samples;
  const auto add = [&samples](double direct_name, double sanitizer,
                              double tmp_src, double concat, double size,
                              bool label) {
    samples.push_back(Sample{{direct_name, sanitizer, tmp_src, concat, size},
                             label});
  };
  // Positives: destination directly embeds the client file name, no
  // validation in scope.
  add(1, 0, 1, 1, 0.10, true);
  add(1, 0, 1, 1, 0.25, true);
  add(1, 0, 1, 0, 0.05, true);
  add(1, 0, 0, 1, 0.15, true);
  add(1, 0, 1, 1, 0.40, true);
  add(1, 0, 0, 0, 0.08, true);
  add(1, 0, 1, 1, 0.60, true);
  add(1, 0, 1, 0, 0.30, true);
  // Negatives: validation present (even with direct name), or the
  // destination is assembled indirectly.
  add(1, 1, 1, 1, 0.20, false);
  add(1, 1, 0, 1, 0.10, false);
  add(1, 1, 1, 0, 0.35, false);
  add(0, 1, 1, 1, 0.12, false);
  add(0, 1, 1, 1, 0.50, false);
  add(0, 0, 1, 1, 0.18, false);
  add(0, 0, 1, 1, 0.22, false);
  add(0, 0, 0, 1, 0.09, false);
  add(0, 0, 1, 0, 0.45, false);
  add(0, 1, 0, 0, 0.70, false);
  add(0, 0, 1, 1, 0.33, false);
  add(0, 1, 1, 1, 0.28, false);
  return samples;
}

}  // namespace

WapFeatures wap_features(const TaintFinding& finding) {
  return WapFeatures{
      finding.dst_direct_files_name ? 1.0 : 0.0,
      finding.scope_has_sanitizer ? 1.0 : 0.0,
      finding.src_direct_tmp_name ? 1.0 : 0.0,
      finding.dst_has_concat ? 1.0 : 0.0,
      std::min<double>(static_cast<double>(finding.scope_statements), 100.0) /
          100.0,
  };
}

WapClassifier::WapClassifier() {
  // Averaged perceptron, fixed epoch count: deterministic training.
  const std::vector<Sample> data = training_set();
  std::array<double, kWapFeatureCount + 1> w{};
  std::array<double, kWapFeatureCount + 1> sum{};
  constexpr int kEpochs = 400;
  constexpr double kLearningRate = 0.5;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    for (const Sample& s : data) {
      double activation = w[kWapFeatureCount];
      for (std::size_t i = 0; i < kWapFeatureCount; ++i) {
        activation += w[i] * s.x[i];
      }
      const double target = s.vulnerable ? 1.0 : -1.0;
      if (activation * target <= 0) {
        for (std::size_t i = 0; i < kWapFeatureCount; ++i) {
          w[i] += kLearningRate * target * s.x[i];
        }
        w[kWapFeatureCount] += kLearningRate * target;
      }
      for (std::size_t i = 0; i <= kWapFeatureCount; ++i) sum[i] += w[i];
    }
  }
  const double steps = static_cast<double>(kEpochs) * data.size();
  for (std::size_t i = 0; i <= kWapFeatureCount; ++i) {
    weights_[i] = sum[i] / steps;
  }
  std::size_t correct = 0;
  for (const Sample& s : data) {
    if (predict_vulnerable(s.x) == s.vulnerable) ++correct;
  }
  training_accuracy_ = static_cast<double>(correct) / data.size();
}

double WapClassifier::score(const WapFeatures& x) const {
  double activation = weights_[kWapFeatureCount];
  for (std::size_t i = 0; i < kWapFeatureCount; ++i) {
    activation += weights_[i] * x[i];
  }
  return activation;
}

bool WapClassifier::predict_vulnerable(const WapFeatures& x) const {
  return score(x) > 0.0;
}

BaselineReport WapScanner::scan(const core::Application& app) const {
  const auto start = std::chrono::steady_clock::now();
  BaselineReport report;
  report.app_name = app.name;

  SourceManager sources;
  DiagnosticSink diags;
  std::vector<Arena> arenas;  // Arena moves preserve AST pointers
  arenas.reserve(app.files.size());
  std::vector<phpast::PhpFile> parsed;
  parsed.reserve(app.files.size());
  for (const core::AppFile& f : app.files) {
    const FileId id = sources.add_file(f.name, f.content);
    arenas.emplace_back();
    parsed.push_back(
        phpparse::parse_php(*sources.file(id), diags, arenas.back()));
  }
  std::vector<const phpast::PhpFile*> ptrs;
  for (const phpast::PhpFile& f : parsed) ptrs.push_back(&f);

  for (TaintFinding& finding : taint_scan(ptrs)) {
    if (classifier_.predict_vulnerable(wap_features(finding))) {
      report.findings.push_back(std::move(finding));
    }
  }
  report.flagged = !report.findings.empty();
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace uchecker::baselines
