// WAP-style baseline scanner (paper §IV-C).
//
// "WAP integrates taint analysis and machine learning for detection
// without particularly modeling the uploaded file." This baseline reuses
// the shared taint pass and then filters candidate findings through a
// small perceptron trained (deterministically, at first use) on an
// embedded synthetic corpus of labeled upload snippets. The classifier
// keeps only blunt source-to-sink flows — the destination built directly
// from $_FILES[..]['name'] with no validation calls in scope — which
// reproduces the paper's observed behaviour: few detections (4/16) and
// few false positives (1/28).
#pragma once

#include <array>

#include "baselines/rips.h"
#include "baselines/taint.h"

namespace uchecker::baselines {

inline constexpr std::size_t kWapFeatureCount = 5;
using WapFeatures = std::array<double, kWapFeatureCount>;

// Feature extraction from a taint finding.
[[nodiscard]] WapFeatures wap_features(const TaintFinding& finding);

// Linear classifier over wap_features(); trained once per process.
class WapClassifier {
 public:
  WapClassifier();  // trains on the embedded dataset

  [[nodiscard]] bool predict_vulnerable(const WapFeatures& x) const;
  [[nodiscard]] double score(const WapFeatures& x) const;
  [[nodiscard]] const std::array<double, kWapFeatureCount + 1>& weights() const {
    return weights_;
  }
  // Training accuracy on the embedded dataset (for tests).
  [[nodiscard]] double training_accuracy() const { return training_accuracy_; }

 private:
  std::array<double, kWapFeatureCount + 1> weights_{};  // +1 bias
  double training_accuracy_ = 0.0;
};

class WapScanner {
 public:
  [[nodiscard]] BaselineReport scan(const core::Application& app) const;

 private:
  WapClassifier classifier_;
};

}  // namespace uchecker::baselines
