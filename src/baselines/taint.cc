#include "baselines/taint.h"

#include <functional>

#include "phpast/visitor.h"
#include "support/strutil.h"

namespace uchecker::baselines {

using namespace phpast;  // NOLINT: baseline is an AST consumer

namespace {

bool is_user_source(std::string_view name) {
  return name == "_FILES" || name == "_POST" || name == "_GET" ||
         name == "_REQUEST" || name == "_COOKIE";
}

bool is_sink_name(std::string_view lower) {
  return lower == "move_uploaded_file" || lower == "file_put_contents" ||
         lower == "file_put_content";
}

bool is_sanitizer_name(std::string_view lower) {
  return lower == "in_array" || lower == "pathinfo" ||
         lower == "wp_check_filetype" || lower == "getimagesize" ||
         lower == "preg_match" || lower == "wp_handle_upload" ||
         lower == "finfo_file" || lower == "mime_content_type" ||
         lower == "exif_imagetype";
}

// Matches the exact AST shape $_FILES[<lit>]['name' / 'tmp_name'].
bool is_direct_files_member(const Expr& e, const char* member) {
  if (e.kind() != NodeKind::kArrayAccess) return false;
  const auto& outer = static_cast<const ArrayAccess&>(e);
  if (outer.index == nullptr ||
      outer.index->kind() != NodeKind::kStringLit ||
      static_cast<const StringLit&>(*outer.index).value != member) {
    return false;
  }
  if (outer.base->kind() != NodeKind::kArrayAccess) return false;
  const auto& inner = static_cast<const ArrayAccess&>(*outer.base);
  return inner.base->kind() == NodeKind::kVariable &&
         static_cast<const Variable&>(*inner.base).name == "_FILES";
}

// One scope's flow-sensitive taint pass.
class ScopeScanner {
 public:
  ScopeScanner(std::string scope_name, std::vector<TaintFinding>& out)
      : scope_(std::move(scope_name)), out_(out) {}

  void run(Span<const StmtPtr> body) {
    for (const auto& stmt : body) count_statements(*stmt);
    // Two passes give a cheap fixpoint for use-before-def ordering
    // produced by loops.
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& stmt : body) scan_stmt(*stmt);
    }
  }

 private:
  void count_statements(const Node& node) {
    ++statements_;
    for_each_child(node, [this](const Node& child) {
      if (child.kind() != NodeKind::kFunctionDecl &&
          child.kind() != NodeKind::kClassDecl) {
        count_statements(child);
      }
    });
  }

  bool tainted_expr(const Expr& e) {
    switch (e.kind()) {
      case NodeKind::kVariable: {
        const auto& v = static_cast<const Variable&>(e);
        return is_user_source(v.name) || tainted_vars_.contains(v.name);
      }
      case NodeKind::kArrayAccess: {
        const auto& a = static_cast<const ArrayAccess&>(e);
        return tainted_expr(*a.base);
      }
      case NodeKind::kPropertyAccess:
        return tainted_expr(*static_cast<const PropertyAccess&>(e).base);
      case NodeKind::kBinary: {
        const auto& b = static_cast<const Binary&>(e);
        return tainted_expr(*b.lhs) || tainted_expr(*b.rhs);
      }
      case NodeKind::kUnary:
        return tainted_expr(*static_cast<const Unary&>(e).operand);
      case NodeKind::kAssign: {
        const auto& a = static_cast<const Assign&>(e);
        return tainted_expr(*a.value);
      }
      case NodeKind::kTernary: {
        const auto& t = static_cast<const Ternary&>(e);
        return (t.then_expr != nullptr && tainted_expr(*t.then_expr)) ||
               tainted_expr(*t.else_expr) || tainted_expr(*t.cond);
      }
      case NodeKind::kCast:
        return tainted_expr(*static_cast<const Cast&>(e).operand);
      case NodeKind::kCall: {
        // Taint propagates through library string functions (RIPS's
        // builtin simulation), not through user-defined functions.
        const auto& c = static_cast<const Call&>(e);
        for (const auto& arg : c.args) {
          if (tainted_expr(*arg)) return true;
        }
        return false;
      }
      case NodeKind::kArrayLit: {
        const auto& lit = static_cast<const ArrayLit&>(e);
        for (const auto& item : lit.items) {
          if (tainted_expr(*item.value)) return true;
        }
        return false;
      }
      default:
        return false;
    }
  }

  void scan_expr(const Expr& e) {
    if (e.kind() == NodeKind::kAssign) {
      const auto& a = static_cast<const Assign&>(e);
      scan_expr(*a.value);
      if (a.target->kind() == NodeKind::kVariable) {
        const auto& v = static_cast<const Variable&>(*a.target);
        if (tainted_expr(*a.value)) {
          tainted_vars_.insert(std::string(v.name));
        }
      } else if (a.target->kind() == NodeKind::kArrayAccess) {
        // $arr[k] = tainted taints the whole array variable.
        const Expr* base = a.target;
        while (base->kind() == NodeKind::kArrayAccess) {
          base = static_cast<const ArrayAccess&>(*base).base;
        }
        if (base->kind() == NodeKind::kVariable && tainted_expr(*a.value)) {
          tainted_vars_.insert(
              std::string(static_cast<const Variable&>(*base).name));
        }
      }
      return;
    }
    if (is_direct_files_member(e, "name")) has_direct_name_ = true;
    if (e.kind() == NodeKind::kCall) {
      const auto& c = static_cast<const Call&>(e);
      if (!c.is_dynamic()) {
        if (is_sanitizer_name(c.callee)) has_sanitizer_ = true;
        if (is_sink_name(c.callee)) {
          record_sink(c);
        }
      }
      for (const auto& arg : c.args) scan_expr(*arg);
      return;
    }
    for_each_child(e, [this](const Node& child) {
      if (is_expr_kind(child.kind())) {
        scan_expr(static_cast<const Expr&>(child));
      }
    });
  }

  void record_sink(const Call& c) {
    const bool is_move = c.callee == "move_uploaded_file";
    const Expr* src = nullptr;
    const Expr* dst = nullptr;
    if (is_move) {
      src = c.args.size() > 0 ? c.args[0] : nullptr;
      dst = c.args.size() > 1 ? c.args[1] : nullptr;
    } else {
      dst = c.args.size() > 0 ? c.args[0] : nullptr;
      src = c.args.size() > 1 ? c.args[1] : nullptr;
    }
    if (src == nullptr || !tainted_expr(*src)) return;
    // Across fixpoint passes, update an existing finding's features (the
    // second pass sees the whole scope's flags) instead of duplicating.
    TaintFinding* finding = nullptr;
    for (TaintFinding& f : out_) {
      if (f.loc == c.loc() && f.scope == scope_) {
        finding = &f;
        break;
      }
    }
    if (finding == nullptr) {
      out_.push_back(TaintFinding{});
      finding = &out_.back();
      finding->sink_name = c.callee;
      finding->loc = c.loc();
      finding->scope = scope_;
    }
    finding->src_direct_tmp_name |= is_direct_files_member(*src, "tmp_name");
    if (dst != nullptr) {
      walk(*dst, [finding](const Node& n) {
        if (n.kind() == NodeKind::kBinary &&
            static_cast<const Binary&>(n).op == BinaryOp::kConcat) {
          finding->dst_has_concat = true;
        }
        return true;
      });
    }
    finding->dst_direct_files_name |= has_direct_name_;
    finding->scope_has_sanitizer |= has_sanitizer_;
    finding->scope_statements = statements_;
  }

  void scan_stmt(const Stmt& stmt) {
    switch (stmt.kind()) {
      case NodeKind::kFunctionDecl:
      case NodeKind::kClassDecl:
        return;  // separate scopes, scanned by the driver
      case NodeKind::kExprStmt:
        scan_expr(*static_cast<const ExprStmt&>(stmt).expr);
        return;
      default:
        break;
    }
    // Detect sanitizer mentions in conditions too.
    for_each_child(stmt, [this](const Node& child) {
      if (is_expr_kind(child.kind())) {
        scan_expr(static_cast<const Expr&>(child));
      } else {
        scan_stmt(static_cast<const Stmt&>(child));
      }
    });
  }

  std::string scope_;
  std::vector<TaintFinding>& out_;
  std::set<std::string, std::less<>> tainted_vars_;
  bool has_sanitizer_ = false;
  bool has_direct_name_ = false;
  std::size_t statements_ = 0;
};

void scan_scopes(const PhpFile& file, std::vector<TaintFinding>& out) {
  // File body scope.
  ScopeScanner file_scope(file.name, out);
  file_scope.run(as_span(file.statements));
  // Every function/method scope (including nested declarations).
  for (const auto& stmt : file.statements) {
    walk(*stmt, [&out](const Node& n) {
      if (n.kind() == NodeKind::kFunctionDecl) {
        const auto& fn = static_cast<const FunctionDecl&>(n);
        ScopeScanner fn_scope(std::string(fn.name), out);
        fn_scope.run(fn.body);
      }
      return true;
    });
  }
}

}  // namespace

std::vector<TaintFinding> taint_scan(
    const std::vector<const phpast::PhpFile*>& files) {
  std::vector<TaintFinding> out;
  for (const PhpFile* file : files) scan_scopes(*file, out);
  return out;
}

}  // namespace uchecker::baselines
