// Shared intraprocedural taint analysis used by the RIPS-style and
// WAP-style baselines (paper §IV-C).
//
// Models the comparator mechanism the paper describes: "RIPS detects
// sensitive sinks as potential vulnerable functions if they are tainted
// by untrusted inputs" — source-to-sink data flow with no modeling of the
// destination file name or extension. Analysis is per-scope (file body or
// function body) and flow-sensitive in statement order; taint does NOT
// propagate through user-defined function parameters, which reproduces
// RIPS's miss on the WooCommerce Custom Profile Picture plugin (the only
// corpus app whose upload data reaches the sink exclusively through a
// function parameter).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "phpast/ast.h"
#include "support/source.h"

namespace uchecker::baselines {

struct TaintFinding {
  std::string sink_name;
  SourceLoc loc;
  std::string scope;  // file name or function name
  // Feature signals for the WAP classifier stage.
  bool dst_direct_files_name = false;  // scope uses $_FILES[..]['name'] directly
  bool scope_has_sanitizer = false;    // extension/type validation in scope
  bool src_direct_tmp_name = false;    // source is $_FILES[..]['tmp_name']
  bool dst_has_concat = false;
  std::size_t scope_statements = 0;
};

// Scans all scopes of all files; returns every sink call whose *source*
// argument is tainted by a user-controlled superglobal.
[[nodiscard]] std::vector<TaintFinding> taint_scan(
    const std::vector<const phpast::PhpFile*>& files);

}  // namespace uchecker::baselines
