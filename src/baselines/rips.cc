#include "baselines/rips.h"

#include <chrono>

#include "phpparse/parser.h"

namespace uchecker::baselines {

BaselineReport RipsScanner::scan(const core::Application& app) const {
  const auto start = std::chrono::steady_clock::now();
  BaselineReport report;
  report.app_name = app.name;

  SourceManager sources;
  DiagnosticSink diags;
  std::vector<Arena> arenas;  // Arena moves preserve AST pointers
  arenas.reserve(app.files.size());
  std::vector<phpast::PhpFile> parsed;
  parsed.reserve(app.files.size());
  for (const core::AppFile& f : app.files) {
    const FileId id = sources.add_file(f.name, f.content);
    arenas.emplace_back();
    parsed.push_back(
        phpparse::parse_php(*sources.file(id), diags, arenas.back()));
  }
  std::vector<const phpast::PhpFile*> ptrs;
  for (const phpast::PhpFile& f : parsed) ptrs.push_back(&f);

  report.findings = taint_scan(ptrs);
  report.flagged = !report.findings.empty();
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace uchecker::baselines
