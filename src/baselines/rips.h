// RIPS-style baseline scanner (paper §IV-C).
//
// Pure taint analysis: any file-upload sink whose source argument is
// tainted by a user-controlled superglobal is reported, with no modeling
// of the destination file name or extension. The paper's observation —
// "while taint analysis concerns the source of the uploaded file, it does
// not model the name or the extension of this file, thereby being likely
// to introduce false positives" — is exactly this scanner's behaviour:
// validated upload handlers are still flagged (27/28 FP in the paper).
#pragma once

#include "baselines/taint.h"
#include "core/detector/detector.h"

namespace uchecker::baselines {

struct BaselineReport {
  std::string app_name;
  bool flagged = false;
  std::vector<TaintFinding> findings;
  double seconds = 0.0;
};

class RipsScanner {
 public:
  [[nodiscard]] BaselineReport scan(const core::Application& app) const;
};

}  // namespace uchecker::baselines
