// PHP lexer: converts a SourceFile into a token stream.
//
// Handles the PHP constructs needed by the UChecker corpus: open/close
// tags with inline HTML, single-/double-quoted strings with simple
// interpolation, heredoc/nowdoc, all comment styles, and the full
// operator set of the parser's grammar.
//
// The lexer first copies the file content into the Arena, then emits
// tokens whose `text` views point either straight into that copy
// (identifiers, numbers, escape-free strings) or into arena-allocated
// decoded buffers (strings with escapes, heredoc bodies). Lexing never
// heap-allocates per token; everything a Token references outlives the
// SourceFile and dies with the Arena.
#pragma once

#include <string>
#include <vector>

#include "phplex/token.h"
#include "support/arena.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::phplex {

class Lexer {
 public:
  Lexer(const SourceFile& file, DiagnosticSink& diags, Arena& arena);

  // Lexes the whole file. Always ends with a kEndOfFile token.
  [[nodiscard]] std::vector<Token> lex_all();

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool match(char expected);
  [[nodiscard]] SourceLoc loc_here() const;
  // View into the arena-backed source copy for [begin, end).
  [[nodiscard]] std::string_view slice(std::size_t begin,
                                       std::size_t end) const {
    return src_.substr(begin, end - begin);
  }

  void lex_inline_html(std::vector<Token>& out);
  void lex_php_token(std::vector<Token>& out);
  // The sub-lexers take the already-computed location of the token's
  // first character so it is not recomputed per token.
  Token lex_variable(SourceLoc start);
  Token lex_number(SourceLoc start);
  Token lex_identifier_or_keyword(SourceLoc start);
  Token lex_single_quoted(SourceLoc start);
  Token lex_double_quoted();
  Token lex_heredoc();
  void skip_line_comment();
  void skip_block_comment();

  // Folds the accumulated parts into a kStringLiteral (single literal
  // segment) or kTemplateString token; shared between lex_double_quoted
  // and lex_heredoc. The parts' views must already be arena-backed.
  Token make_string_token(SourceLoc start, std::vector<InterpPart>& parts);

  const SourceFile& file_;
  DiagnosticSink& diags_;
  Arena& arena_;
  std::string_view src_;  // arena-owned copy of the file content
  std::size_t pos_ = 0;
  // Line cursor for loc_here(): index into file_.line_offsets() of the
  // line containing the last queried position. Only ever moves forward,
  // mirroring pos_; mutable because loc_here() is logically const.
  mutable std::size_t line_idx_ = 0;
  bool in_php_ = false;

  // Reusable scratch buffers for decoding escaped strings; the decoded
  // bytes are copied into the arena before a token references them.
  std::string scratch_;
  std::vector<InterpPart> parts_scratch_;
};

// Convenience: lex a whole file into `arena`-backed tokens.
[[nodiscard]] std::vector<Token> lex_file(const SourceFile& file,
                                          DiagnosticSink& diags, Arena& arena);

}  // namespace uchecker::phplex
