#include "phplex/lexer.h"

#include <array>
#include <charconv>
#include <cstring>

#include "support/strutil.h"

namespace uchecker::phplex {
namespace {

// Character classes as a flat table: one load + mask instead of a
// locale-aware libc call per character. Lexing touches every byte of
// every file, so this is the hottest comparison in the front end.
enum CharClass : std::uint8_t {
  kCcIdentStart = 1 << 0,  // [A-Za-z_]
  kCcIdentCont = 1 << 1,   // [A-Za-z0-9_]
  kCcDigit = 1 << 2,       // [0-9]
  kCcXDigit = 1 << 3,      // [0-9A-Fa-f]
  kCcSpace = 1 << 4,       // space, \t, \r, \n
};

constexpr std::array<std::uint8_t, 256> make_char_classes() {
  std::array<std::uint8_t, 256> t{};
  for (int c = 'a'; c <= 'z'; ++c) t[c] = kCcIdentStart | kCcIdentCont;
  for (int c = 'A'; c <= 'Z'; ++c) t[c] = kCcIdentStart | kCcIdentCont;
  t['_'] = kCcIdentStart | kCcIdentCont;
  for (int c = '0'; c <= '9'; ++c) t[c] = kCcIdentCont | kCcDigit | kCcXDigit;
  for (int c = 'a'; c <= 'f'; ++c) t[c] |= kCcXDigit;
  for (int c = 'A'; c <= 'F'; ++c) t[c] |= kCcXDigit;
  t[' '] = kCcSpace;
  t['\t'] = kCcSpace;
  t['\r'] = kCcSpace;
  t['\n'] = kCcSpace;
  return t;
}

constexpr std::array<std::uint8_t, 256> kCharClasses = make_char_classes();

constexpr bool has_class(char c, std::uint8_t mask) {
  return (kCharClasses[static_cast<unsigned char>(c)] & mask) != 0;
}

bool is_ident_start(char c) { return has_class(c, kCcIdentStart); }
bool is_ident_char(char c) { return has_class(c, kCcIdentCont); }
bool is_digit(char c) { return has_class(c, kCcDigit); }
bool is_xdigit(char c) { return has_class(c, kCcXDigit); }

// Longest keyword is "include_once" (12 chars); anything longer cannot
// be a keyword, which lets the lookup lowercase into a stack buffer.
constexpr std::size_t kMaxKeywordLen = 12;

struct Keyword {
  std::string_view name;
  TokenKind kind;
};

constexpr Keyword kKeywords[] = {
    {"if", TokenKind::kKwIf},
    {"else", TokenKind::kKwElse},
    {"elseif", TokenKind::kKwElseif},
    {"while", TokenKind::kKwWhile},
    {"for", TokenKind::kKwFor},
    {"foreach", TokenKind::kKwForeach},
    {"as", TokenKind::kKwAs},
    {"function", TokenKind::kKwFunction},
    {"return", TokenKind::kKwReturn},
    {"echo", TokenKind::kKwEcho},
    {"print", TokenKind::kKwPrint},
    {"global", TokenKind::kKwGlobal},
    {"static", TokenKind::kKwStatic},
    {"include", TokenKind::kKwInclude},
    {"include_once", TokenKind::kKwIncludeOnce},
    {"require", TokenKind::kKwRequire},
    {"require_once", TokenKind::kKwRequireOnce},
    {"true", TokenKind::kKwTrue},
    {"false", TokenKind::kKwFalse},
    {"null", TokenKind::kKwNull},
    {"array", TokenKind::kKwArray},
    {"list", TokenKind::kKwList},
    {"isset", TokenKind::kKwIsset},
    {"empty", TokenKind::kKwEmpty},
    {"unset", TokenKind::kKwUnset},
    {"new", TokenKind::kKwNew},
    {"class", TokenKind::kKwClass},
    {"public", TokenKind::kKwPublic},
    {"private", TokenKind::kKwPrivate},
    {"protected", TokenKind::kKwProtected},
    {"const", TokenKind::kKwConst},
    {"break", TokenKind::kKwBreak},
    {"continue", TokenKind::kKwContinue},
    {"switch", TokenKind::kKwSwitch},
    {"case", TokenKind::kKwCase},
    {"default", TokenKind::kKwDefault},
    {"do", TokenKind::kKwDo},
    {"and", TokenKind::kKwAnd},
    {"or", TokenKind::kKwOr},
    {"xor", TokenKind::kKwXor},
    {"die", TokenKind::kKwDie},
    {"exit", TokenKind::kKwExit},
    {"extends", TokenKind::kKwExtends},
    {"try", TokenKind::kKwTry},
    {"catch", TokenKind::kKwCatch},
    {"finally", TokenKind::kKwFinally},
    {"throw", TokenKind::kKwThrow},
    {"namespace", TokenKind::kKwNamespace},
    {"use", TokenKind::kKwUse},
    {"instanceof", TokenKind::kKwInstanceof},
    {"abstract", TokenKind::kKwAbstract},
    {"final", TokenKind::kKwFinal},
    {"interface", TokenKind::kKwInterface},
    {"implements", TokenKind::kKwImplements},
};

// Keywords bucketed by (length, first letter): 55 keywords spread over
// 13*26 buckets leaves at most two candidates per bucket, so a lookup
// is one index plus one or two short memcmps — no hashing, no
// allocation. Replaces an unordered_map<string_view> probe that hashed
// every identifier in the stream.
struct KeywordBuckets {
  // [length][first letter - 'a'] -> index into order[], count.
  std::uint8_t start[kMaxKeywordLen + 1][26] = {};
  std::uint8_t count[kMaxKeywordLen + 1][26] = {};
  std::uint8_t order[std::size(kKeywords)] = {};
};

KeywordBuckets make_keyword_buckets() {
  KeywordBuckets b;
  std::uint8_t n = 0;
  for (std::size_t len = 2; len <= kMaxKeywordLen; ++len) {
    for (int first = 0; first < 26; ++first) {
      b.start[len][first] = n;
      for (std::size_t i = 0; i < std::size(kKeywords); ++i) {
        if (kKeywords[i].name.size() == len &&
            kKeywords[i].name[0] - 'a' == first) {
          b.order[n++] = static_cast<std::uint8_t>(i);
          ++b.count[len][first];
        }
      }
    }
  }
  return b;
}

// Keyword lookup without allocating: ASCII-lowercases into a stack
// buffer. Returns kIdentifier when `name` is not a keyword.
TokenKind classify_identifier(std::string_view name) {
  if (name.size() > kMaxKeywordLen || name.size() < 2) {
    return TokenKind::kIdentifier;
  }
  char buf[kMaxKeywordLen];
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    buf[i] = (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  if (buf[0] < 'a' || buf[0] > 'z') return TokenKind::kIdentifier;
  static const KeywordBuckets buckets = make_keyword_buckets();
  const std::size_t len = name.size();
  const int first = buf[0] - 'a';
  const std::uint8_t begin = buckets.start[len][first];
  const std::uint8_t end = begin + buckets.count[len][first];
  for (std::uint8_t i = begin; i < end; ++i) {
    const Keyword& kw = kKeywords[buckets.order[i]];
    if (std::memcmp(buf, kw.name.data(), len) == 0) return kw.kind;
  }
  return TokenKind::kIdentifier;
}

}  // namespace

Lexer::Lexer(const SourceFile& file, DiagnosticSink& diags, Arena& arena)
    : file_(file), diags_(diags), arena_(arena),
      src_(arena.copy(file.content())) {}

std::vector<Token> lex_file(const SourceFile& file, DiagnosticSink& diags,
                            Arena& arena) {
  return Lexer(file, diags, arena).lex_all();
}

char Lexer::peek(std::size_t ahead) const {
  return (pos_ + ahead < src_.size()) ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  return at_end() ? '\0' : src_[pos_++];
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  ++pos_;
  return true;
}

SourceLoc Lexer::loc_here() const {
  // The lexer only moves forward, so instead of binary-searching the
  // line table per token (what loc_for_offset does), walk a cursor
  // ahead to the line containing pos_. Amortized O(1) per token.
  const std::vector<std::size_t>& lines = file_.line_offsets();
  while (line_idx_ + 1 < lines.size() && lines[line_idx_ + 1] <= pos_) {
    ++line_idx_;
  }
  return SourceLoc{file_.id(),
                   static_cast<std::uint32_t>(line_idx_ + 1),
                   static_cast<std::uint32_t>(pos_ - lines[line_idx_] + 1)};
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  // Corpus PHP runs about one token per five bytes; reserving a quarter
  // of the byte count avoids the mid-lex regrowth (which copies the
  // whole 64-byte-per-token vector) without gross overcommit.
  out.reserve(src_.size() / 4 + 16);
  while (!at_end()) {
    if (!in_php_) {
      lex_inline_html(out);
    } else {
      lex_php_token(out);
    }
  }
  Token eof;
  eof.kind = TokenKind::kEndOfFile;
  eof.loc = loc_here();
  out.push_back(eof);
  return out;
}

void Lexer::lex_inline_html(std::vector<Token>& out) {
  const SourceLoc start = loc_here();
  const std::size_t begin = pos_;
  const std::size_t open = src_.find("<?php", pos_);
  std::size_t html_end;
  if (open == std::string_view::npos) {
    // Also accept the short echo tag "<?=" which lexes as echo.
    const std::size_t short_open = src_.find("<?=", pos_);
    if (short_open == std::string_view::npos) {
      html_end = src_.size();
      pos_ = src_.size();
    } else {
      html_end = short_open;
      pos_ = short_open + 3;
      in_php_ = true;
    }
  } else {
    html_end = open;
    pos_ = open + 5;
    in_php_ = true;
  }
  if (html_end > begin) {
    Token t;
    t.kind = TokenKind::kInlineHtml;
    t.loc = start;
    t.text = slice(begin, html_end);
    // Pure-whitespace HTML between code blocks is noise; drop it.
    if (!strutil::trim(t.text).empty()) out.push_back(t);
  }
  if (in_php_ && open != std::string_view::npos &&
      src_.substr(pos_ - 5, 5) == "<?php") {
    // "<?=" emits an implicit echo keyword so `<?= $x ?>` parses.
  } else if (in_php_) {
    Token echo;
    echo.kind = TokenKind::kKwEcho;
    echo.loc = loc_here();
    out.push_back(echo);
  }
}

void Lexer::lex_php_token(std::vector<Token>& out) {
  // Skip whitespace and comments. The inner loop is a plain table scan
  // so the common run of spaces/newlines costs one load per byte.
  while (true) {
    while (pos_ < src_.size() && has_class(src_[pos_], kCcSpace)) ++pos_;
    if (at_end()) return;
    const char c = src_[pos_];
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      skip_line_comment();
    } else if (c == '/' && peek(1) == '*') {
      skip_block_comment();
    } else {
      break;
    }
  }

  const SourceLoc start = loc_here();

  // Close tag?
  if (peek() == '?' && peek(1) == '>') {
    pos_ += 2;
    in_php_ = false;
    // PHP treats "?>" as an implicit statement terminator.
    Token t;
    t.kind = TokenKind::kSemicolon;
    t.loc = start;
    out.push_back(t);
    // Skip a single newline immediately following the close tag.
    if (peek() == '\n') ++pos_;
    return;
  }

  const char c = peek();
  if (c == '$') {
    if (peek(1) == '{') {
      pos_ += 2;
      Token t;
      t.kind = TokenKind::kDollarBrace;
      t.loc = start;
      out.push_back(t);
      return;
    }
    out.push_back(lex_variable(start));
    return;
  }
  if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
    out.push_back(lex_number(start));
    return;
  }
  if (is_ident_start(c)) {
    out.push_back(lex_identifier_or_keyword(start));
    return;
  }
  if (c == '\'') {
    out.push_back(lex_single_quoted(start));
    return;
  }
  if (c == '"') {
    out.push_back(lex_double_quoted());
    return;
  }
  if (c == '<' && peek(1) == '<' && peek(2) == '<') {
    out.push_back(lex_heredoc());
    return;
  }

  ++pos_;
  Token t;
  t.loc = start;
  switch (c) {
    case '+':
      t.kind = match('+') ? TokenKind::kPlusPlus
               : match('=') ? TokenKind::kPlusAssign
                            : TokenKind::kPlus;
      break;
    case '-':
      t.kind = match('-') ? TokenKind::kMinusMinus
               : match('=') ? TokenKind::kMinusAssign
               : match('>') ? TokenKind::kArrow
                            : TokenKind::kMinus;
      break;
    case '*':
      t.kind = match('*') ? TokenKind::kStarStar
               : match('=') ? TokenKind::kStarAssign
                            : TokenKind::kStar;
      break;
    case '/':
      t.kind = match('=') ? TokenKind::kSlashAssign : TokenKind::kSlash;
      break;
    case '%':
      t.kind = match('=') ? TokenKind::kPercentAssign : TokenKind::kPercent;
      break;
    case '.':
      t.kind = match('=') ? TokenKind::kDotAssign : TokenKind::kDot;
      break;
    case '=':
      if (match('=')) {
        t.kind = match('=') ? TokenKind::kIdentical : TokenKind::kEqual;
      } else if (match('>')) {
        t.kind = TokenKind::kDoubleArrow;
      } else {
        t.kind = TokenKind::kAssign;
      }
      break;
    case '!':
      if (match('=')) {
        t.kind = match('=') ? TokenKind::kNotIdentical : TokenKind::kNotEqual;
      } else {
        t.kind = TokenKind::kBang;
      }
      break;
    case '<':
      if (match('=')) {
        t.kind = match('>') ? TokenKind::kSpaceship : TokenKind::kLessEqual;
      } else if (match('<')) {
        t.kind = TokenKind::kShiftLeft;
      } else if (match('>')) {
        t.kind = TokenKind::kNotEqual;  // PHP's "<>"
      } else {
        t.kind = TokenKind::kLess;
      }
      break;
    case '>':
      if (match('=')) {
        t.kind = TokenKind::kGreaterEqual;
      } else if (match('>')) {
        t.kind = TokenKind::kShiftRight;
      } else {
        t.kind = TokenKind::kGreater;
      }
      break;
    case '&':
      t.kind = match('&') ? TokenKind::kAmpAmp : TokenKind::kAmp;
      break;
    case '|':
      t.kind = match('|') ? TokenKind::kPipePipe : TokenKind::kPipe;
      break;
    case '^': t.kind = TokenKind::kCaret; break;
    case '~': t.kind = TokenKind::kTilde; break;
    case '?':
      if (match('?')) {
        t.kind = match('=') ? TokenKind::kCoalesceAssign : TokenKind::kCoalesce;
      } else {
        t.kind = TokenKind::kQuestion;
      }
      break;
    case ':':
      t.kind = match(':') ? TokenKind::kDoubleColon : TokenKind::kColon;
      break;
    case '@': t.kind = TokenKind::kAt; break;
    case ',': t.kind = TokenKind::kComma; break;
    case ';': t.kind = TokenKind::kSemicolon; break;
    case '(': t.kind = TokenKind::kLParen; break;
    case ')': t.kind = TokenKind::kRParen; break;
    case '[': t.kind = TokenKind::kLBracket; break;
    case ']': t.kind = TokenKind::kRBracket; break;
    case '{': t.kind = TokenKind::kLBrace; break;
    case '}': t.kind = TokenKind::kRBrace; break;
    case '\\': t.kind = TokenKind::kBackslash; break;
    default:
      t.kind = TokenKind::kUnknown;
      t.text = slice(pos_ - 1, pos_);
      diags_.warning(start,
                     "unexpected character '" + std::string(t.text) + "'");
      break;
  }
  out.push_back(t);
}

Token Lexer::lex_variable(SourceLoc start) {
  Token t;
  t.loc = start;
  ++pos_;  // consume '$'
  const std::size_t begin = pos_;
  while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
  if (pos_ == begin) {
    diags_.warning(t.loc, "'$' not followed by a variable name");
    t.kind = TokenKind::kUnknown;
    t.text = "$";
    return t;
  }
  t.kind = TokenKind::kVariable;
  t.text = slice(begin, pos_);
  return t;
}

Token Lexer::lex_number(SourceLoc start) {
  Token t;
  t.loc = start;
  const std::size_t begin = pos_;
  bool is_float = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    pos_ += 2;
    std::int64_t value = 0;
    while (!at_end() && is_xdigit(peek())) {
      const char c = advance();
      const int digit = is_digit(c) ? c - '0' : ((c | 0x20) - 'a' + 10);
      value = value * 16 + digit;
    }
    t.kind = TokenKind::kIntLiteral;
    t.int_value = value;
    t.text = slice(begin, pos_);  // raw "0x1f" spelling
    return t;
  }

  while (pos_ < src_.size() && is_digit(src_[pos_])) ++pos_;
  if (peek() == '.' && is_digit(peek(1))) {
    is_float = true;
    ++pos_;  // '.'
    while (pos_ < src_.size() && is_digit(src_[pos_])) ++pos_;
  }
  if (peek() == 'e' || peek() == 'E') {
    const char sign = peek(1);
    if (is_digit(sign) ||
        ((sign == '+' || sign == '-') && is_digit(peek(2)))) {
      is_float = true;
      ++pos_;  // 'e'
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < src_.size() && is_digit(src_[pos_])) ++pos_;
    }
  }
  const std::string_view digits = slice(begin, pos_);
  t.text = digits;
  if (is_float) {
    t.kind = TokenKind::kFloatLiteral;
    std::from_chars(digits.data(), digits.data() + digits.size(),
                    t.float_value);
  } else {
    t.kind = TokenKind::kIntLiteral;
    t.int_value = strutil::php_intval(digits);
  }
  return t;
}

Token Lexer::lex_identifier_or_keyword(SourceLoc start) {
  Token t;
  t.loc = start;
  const std::size_t begin = pos_;
  while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
  t.text = slice(begin, pos_);
  t.kind = classify_identifier(t.text);
  return t;
}

Token Lexer::lex_single_quoted(SourceLoc start) {
  Token t;
  t.loc = start;
  ++pos_;  // opening quote
  const std::size_t begin = pos_;
  const std::size_t n = src_.size();
  // Fast path: no escapes means the decoded value is a plain slice.
  // Two compares per byte until the first quote or backslash; most
  // strings never leave this loop.
  while (pos_ < n && src_[pos_] != '\'' && src_[pos_] != '\\') ++pos_;
  bool has_escape = false;
  while (pos_ < n && src_[pos_] != '\'') {
    if (src_[pos_] == '\\' && (peek(1) == '\'' || peek(1) == '\\')) {
      has_escape = true;
      pos_ += 2;
    } else {
      ++pos_;
    }
  }
  const std::size_t body_end = pos_;
  if (at_end()) {
    diags_.error(t.loc, "unterminated single-quoted string");
  } else {
    ++pos_;  // closing quote
  }
  t.kind = TokenKind::kStringLiteral;
  if (!has_escape) {
    t.text = slice(begin, body_end);
    return t;
  }
  scratch_.clear();
  for (std::size_t i = begin; i < body_end; ++i) {
    char c = src_[i];
    if (c == '\\' && i + 1 < body_end &&
        (src_[i + 1] == '\'' || src_[i + 1] == '\\')) {
      c = src_[++i];
    }
    scratch_ += c;
  }
  t.text = arena_.copy(scratch_);
  return t;
}

namespace {

// Decodes one escape sequence after a backslash in a double-quoted string.
char decode_escape(char c) {
  switch (c) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case 'v': return '\v';
    case 'f': return '\f';
    case '0': return '\0';
    default: return c;  // \" \\ \$ and everything else pass through
  }
}

}  // namespace

Token Lexer::lex_double_quoted() {
  const SourceLoc start = loc_here();
  ++pos_;  // opening quote

  // Fast path: no escape and nothing that could start interpolation
  // before the closing quote means the decoded value is a plain slice
  // of the source copy — no scratch buffer, no arena copy. '$' and '{'
  // bail conservatively even when they would not interpolate.
  {
    std::size_t i = pos_;
    while (i < src_.size()) {
      const char c = src_[i];
      if (c == '"' || c == '\\' || c == '$' || c == '{') break;
      ++i;
    }
    if (i < src_.size() && src_[i] == '"') {
      Token t;
      t.kind = TokenKind::kStringLiteral;
      t.loc = start;
      t.text = slice(pos_, i);
      pos_ = i + 1;
      return t;
    }
  }

  parts_scratch_.clear();
  scratch_.clear();

  auto flush_literal = [&] {
    if (!scratch_.empty()) {
      InterpPart p;
      p.kind = InterpPart::Kind::kLiteral;
      p.text = arena_.copy(scratch_);
      parts_scratch_.push_back(p);
      scratch_.clear();
    }
  };
  auto scan_ident = [&]() -> std::string_view {
    const std::size_t begin = pos_;
    while (!at_end() && is_ident_char(peek())) ++pos_;
    return slice(begin, pos_);
  };

  while (!at_end() && peek() != '"') {
    char c = advance();
    if (c == '\\' && !at_end()) {
      scratch_ += decode_escape(advance());
      continue;
    }
    if (c == '$' && is_ident_start(peek())) {
      flush_literal();
      InterpPart p;
      p.kind = InterpPart::Kind::kVariable;
      p.text = scan_ident();
      // Simple syntax allows one [idx] or ->prop suffix.
      if (peek() == '[') {
        ++pos_;
        p.has_index = true;
        if (peek() == '\'' || peek() == '"') {
          const char q = advance();
          const std::size_t begin = pos_;
          while (!at_end() && peek() != q) ++pos_;
          p.index = slice(begin, pos_);
          if (!at_end()) ++pos_;
          p.index_is_string = true;
        } else if (peek() == '$') {
          // "$a[$i]" — dynamic index; approximate with an empty-string
          // index marker that the parser turns into a fresh symbol.
          ++pos_;
          p.index = scan_ident();
          p.index_is_string = true;
          diags_.warning(start,
                         "dynamic index in string interpolation approximated");
        } else {
          const std::size_t begin = pos_;
          while (!at_end() && peek() != ']') ++pos_;
          p.index = slice(begin, pos_);
          p.index_is_string = !strutil::parse_int(p.index).has_value();
        }
        if (peek() == ']') ++pos_;
      } else if (peek() == '-' && peek(1) == '>') {
        pos_ += 2;
        p.property = scan_ident();
      }
      parts_scratch_.push_back(p);
      continue;
    }
    if (c == '{' && peek() == '$') {
      // Complex syntax {$var} / {$var['idx']}.
      flush_literal();
      ++pos_;  // '$'
      InterpPart p;
      p.kind = InterpPart::Kind::kVariable;
      p.text = scan_ident();
      if (peek() == '[') {
        ++pos_;
        p.has_index = true;
        if (peek() == '\'' || peek() == '"') {
          const char q = advance();
          const std::size_t begin = pos_;
          while (!at_end() && peek() != q) ++pos_;
          p.index = slice(begin, pos_);
          if (!at_end()) ++pos_;
          p.index_is_string = true;
        } else {
          const std::size_t begin = pos_;
          while (!at_end() && peek() != ']') ++pos_;
          p.index = slice(begin, pos_);
          p.index_is_string = !strutil::parse_int(p.index).has_value();
        }
        if (peek() == ']') ++pos_;
      } else if (peek() == '-' && peek(1) == '>') {
        pos_ += 2;
        p.property = scan_ident();
      }
      if (peek() == '}') {
        ++pos_;
      } else {
        diags_.warning(start, "unsupported complex interpolation syntax");
      }
      parts_scratch_.push_back(p);
      continue;
    }
    scratch_ += c;
  }
  if (at_end()) {
    diags_.error(start, "unterminated double-quoted string");
  } else {
    ++pos_;  // closing quote
  }
  flush_literal();
  return make_string_token(start, parts_scratch_);
}

Token Lexer::lex_heredoc() {
  const SourceLoc start = loc_here();
  pos_ += 3;  // <<<
  while (peek() == ' ' || peek() == '\t') ++pos_;
  bool nowdoc = false;
  char quote = '\0';
  if (peek() == '\'' || peek() == '"') {
    quote = advance();
    nowdoc = (quote == '\'');
  }
  const std::size_t tag_begin = pos_;
  while (!at_end() && is_ident_char(peek())) ++pos_;
  const std::string_view tag = slice(tag_begin, pos_);
  if (quote != '\0' && peek() == quote) ++pos_;
  if (peek() == '\r') ++pos_;
  if (peek() == '\n') ++pos_;

  // Find the terminator line: the tag at line start, optionally indented,
  // optionally followed by ';'. Heredocs are rare enough that building
  // the body in a local buffer (then arena-copying what survives) is fine.
  std::string body;
  while (!at_end()) {
    const std::size_t line_start = pos_;
    std::size_t probe = pos_;
    while (probe < src_.size() && (src_[probe] == ' ' || src_[probe] == '\t')) {
      ++probe;
    }
    if (src_.substr(probe, tag.size()) == tag) {
      const std::size_t after = probe + tag.size();
      const char next = after < src_.size() ? src_[after] : '\n';
      if (!is_ident_char(next)) {
        pos_ = after;
        // Strip one trailing newline from the body per heredoc semantics.
        if (!body.empty() && body.back() == '\n') body.pop_back();
        if (!body.empty() && body.back() == '\r') body.pop_back();
        break;
      }
    }
    // Copy this whole line into the body.
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    if (pos_ < src_.size()) ++pos_;  // the newline
    body.append(src_.substr(line_start, pos_ - line_start));
  }

  if (nowdoc) {
    Token t;
    t.kind = TokenKind::kStringLiteral;
    t.loc = start;
    t.text = arena_.copy(body);
    return t;
  }

  // Heredoc bodies interpolate like double-quoted strings; reuse that
  // decoder by scanning the body for "$ident" markers.
  parts_scratch_.clear();
  scratch_.clear();
  std::size_t i = 0;
  auto flush_literal = [&] {
    if (!scratch_.empty()) {
      InterpPart p;
      p.kind = InterpPart::Kind::kLiteral;
      p.text = arena_.copy(scratch_);
      parts_scratch_.push_back(p);
      scratch_.clear();
    }
  };
  while (i < body.size()) {
    const char c = body[i];
    if (c == '\\' && i + 1 < body.size()) {
      scratch_ += decode_escape(body[i + 1]);
      i += 2;
      continue;
    }
    if (c == '$' && i + 1 < body.size() && is_ident_start(body[i + 1])) {
      flush_literal();
      InterpPart p;
      p.kind = InterpPart::Kind::kVariable;
      ++i;
      const std::size_t name_begin = i;
      while (i < body.size() && is_ident_char(body[i])) ++i;
      p.text = arena_.copy(
          std::string_view(body).substr(name_begin, i - name_begin));
      parts_scratch_.push_back(p);
      continue;
    }
    scratch_ += c;
    ++i;
  }
  flush_literal();
  return make_string_token(start, parts_scratch_);
}

Token Lexer::make_string_token(SourceLoc start,
                               std::vector<InterpPart>& parts) {
  Token t;
  t.loc = start;
  const bool pure_literal =
      parts.empty() ||
      (parts.size() == 1 && parts[0].kind == InterpPart::Kind::kLiteral);
  if (pure_literal) {
    t.kind = TokenKind::kStringLiteral;
    if (!parts.empty()) t.text = parts[0].text;
  } else {
    t.kind = TokenKind::kTemplateString;
    t.parts = arena_.make_span(parts);
  }
  return t;
}

void Lexer::skip_line_comment() {
  while (!at_end() && peek() != '\n') {
    // A close tag inside a line comment still ends PHP mode in real PHP;
    // handle it so "// ?>" doesn't swallow the rest of the file.
    if (peek() == '?' && peek(1) == '>') return;
    ++pos_;
  }
}

void Lexer::skip_block_comment() {
  const SourceLoc start = loc_here();
  pos_ += 2;
  while (!at_end()) {
    if (peek() == '*' && peek(1) == '/') {
      pos_ += 2;
      return;
    }
    ++pos_;
  }
  diags_.error(start, "unterminated block comment");
}

}  // namespace uchecker::phplex
