// Graphviz DOT export of the heap graph and environments, reproducing the
// visual layout of paper Fig. 4/5/6. Used by the explain_heapgraph example
// and the figure benches.
#pragma once

#include <string>
#include <vector>

#include "core/heapgraph/heapgraph.h"

namespace uchecker::core {

// Renders the heap graph (and, when given, environment variable maps and
// reachability pointers) as a DOT digraph.
[[nodiscard]] std::string to_dot(const HeapGraph& graph,
                                 const std::vector<Env>& envs = {});

}  // namespace uchecker::core
