#include "core/heapgraph/dot.h"

#include "support/strutil.h"

namespace uchecker::core {
namespace {

std::string node_label(const Object& obj) {
  std::string text;
  switch (obj.kind) {
    case Object::Kind::kConcrete:
      text = value_to_string(obj.value);
      break;
    case Object::Kind::kSymbol:
      text = obj.name;
      break;
    case Object::Kind::kFunc:
      text = obj.name + "()";
      break;
    case Object::Kind::kOp:
      text = std::string(op_kind_name(obj.op));
      break;
    case Object::Kind::kArray:
      text = "array[" + std::to_string(obj.entries.size()) + "]";
      break;
  }
  return "(" + text + ", " + std::string(type_name(obj.type)) + ", " +
         std::to_string(obj.label) + ")";
}

}  // namespace

std::string to_dot(const HeapGraph& graph, const std::vector<Env>& envs) {
  std::string out = "digraph heapgraph {\n  rankdir=BT;\n  node [shape=box];\n";
  for (const Object& obj : graph.objects()) {
    out += "  n" + std::to_string(obj.label) + " [label=" +
           strutil::quote(node_label(obj));
    if (obj.files_tainted) out += ", style=filled, fillcolor=lightpink";
    out += "];\n";
  }
  for (const Object& obj : graph.objects()) {
    for (std::size_t i = 0; i < obj.children.size(); ++i) {
      out += "  n" + std::to_string(obj.label) + " -> n" +
             std::to_string(obj.children[i]) + " [label=\"" +
             std::to_string(i) + "\"];\n";
    }
    for (const ArrayEntry& e : obj.entries) {
      out += "  n" + std::to_string(obj.label) + " -> n" +
             std::to_string(e.value) + " [label=" + strutil::quote(e.key) +
             ", style=dashed];\n";
    }
  }
  for (std::size_t i = 0; i < envs.size(); ++i) {
    const std::string env_node = "env" + std::to_string(i + 1);
    std::string label = "Env_" + std::to_string(i + 1) + "\\n";
    for (const auto& [var, l] : envs[i].map()) {
      label += "$" + var + " -> " + std::to_string(l) + "\\n";
    }
    label += "cur = " +
             (envs[i].cur() == kNoLabel ? std::string("null")
                                        : std::to_string(envs[i].cur()));
    out += "  " + env_node + " [shape=note, label=\"" + label + "\"];\n";
    if (envs[i].cur() != kNoLabel) {
      out += "  " + env_node + " -> n" + std::to_string(envs[i].cur()) +
             " [style=dotted];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace uchecker::core
