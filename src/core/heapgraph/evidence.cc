#include "core/heapgraph/evidence.h"

#include <algorithm>

#include "core/heapgraph/sexpr.h"
#include "support/strutil.h"

namespace uchecker::core {
namespace {

constexpr std::size_t kValuePreviewLimit = 40;

std::string describe_node(const Object& obj) {
  switch (obj.kind) {
    case Object::Kind::kConcrete: {
      std::string rendered = value_to_string(obj.value);
      if (rendered.size() > kValuePreviewLimit) {
        rendered.resize(kValuePreviewLimit);
        rendered += "...";
      }
      if (obj.type == Type::kString) return strutil::quote(rendered);
      return rendered;
    }
    case Object::Kind::kSymbol:
      return obj.name;
    case Object::Kind::kFunc:
      return obj.name + "()";
    case Object::Kind::kOp:
      return std::string(op_kind_name(obj.op));
    case Object::Kind::kArray:
      return "array";
  }
  return "?";
}

}  // namespace

std::vector<TaintHop> extract_taint_path(const HeapGraph& graph, Label from,
                                         SourceLoc fallback) {
  std::vector<TaintHop> hops;
  if (!graph.reaches_files_taint(from)) return hops;

  // Descend from the sink argument towards a tainted object, always
  // taking the first child (operands, then array entries) that still
  // reaches taint. Children carry strictly smaller labels than their
  // parent, so the walk terminates without a visited set.
  Label label = from;
  while (label != kNoLabel) {
    const Object& obj = graph.at(label);
    TaintHop hop;
    hop.label = label;
    hop.kind = obj.kind;
    hop.description = describe_node(obj);
    hop.loc = obj.loc;
    if (obj.files_tainted) {
      hops.push_back(std::move(hop));
      break;
    }
    Label next = kNoLabel;
    for (const Label c : obj.children) {
      if (c != kNoLabel && graph.reaches_files_taint(c)) {
        next = c;
        break;
      }
    }
    if (next == kNoLabel) {
      for (const ArrayEntry& e : obj.entries) {
        if (e.value != kNoLabel && graph.reaches_files_taint(e.value)) {
          next = e.value;
          hop.description = "array[" + e.key + "]";
          break;
        }
      }
    }
    hops.push_back(std::move(hop));
    // reaches_files_taint(label) held and the node itself is untainted,
    // so some child must reach taint; next == kNoLabel is unreachable
    // but guards against a concurrent-modification bug becoming a hang.
    if (next == kNoLabel) break;
    label = next;
  }

  // Sink-first as walked; the contract is source-first.
  std::reverse(hops.begin(), hops.end());

  // Anchor hops whose node has no location: inherit the nearest
  // neighbour's (prefer the previous hop — same direction the value
  // flowed), then the sink-site fallback.
  SourceLoc last_valid = fallback;
  for (TaintHop& hop : hops) {
    if (hop.loc.valid()) {
      last_valid = hop.loc;
    } else {
      hop.loc = last_valid;
    }
  }
  for (std::size_t i = hops.size(); i-- > 0;) {
    if (hops[i].loc.valid()) {
      last_valid = hops[i].loc;
    } else {
      hops[i].loc = last_valid;
    }
  }
  return hops;
}

std::vector<PathGuard> extract_guards(const HeapGraph& graph,
                                      Label reachability) {
  std::vector<PathGuard> guards;
  if (reachability == kNoLabel) return guards;

  // ER() builds cur as (AND (AND (AND g1 g2) g3) g4): a left-leaning
  // chain whose left spine holds earlier guards. Unwind it iteratively,
  // left-first, so conjuncts come out in program order.
  std::vector<Label> stack{reachability};
  std::vector<Label> conjuncts;
  while (!stack.empty()) {
    const Label label = stack.back();
    stack.pop_back();
    const Object* obj = graph.find(label);
    if (obj == nullptr) continue;
    if (obj->kind == Object::Kind::kOp && obj->op == OpKind::kAnd) {
      // Push left last so it is unwound first (earlier guards first).
      if (obj->children.size() == 2) {
        stack.push_back(obj->children[1]);
        stack.push_back(obj->children[0]);
        continue;
      }
    }
    conjuncts.push_back(label);
  }
  guards.reserve(conjuncts.size());
  for (const Label label : conjuncts) {
    PathGuard guard;
    guard.label = label;
    guard.sexpr = to_sexpr(graph, label);
    guard.loc = graph.at(label).loc;
    guards.push_back(std::move(guard));
  }
  return guards;
}

}  // namespace uchecker::core
