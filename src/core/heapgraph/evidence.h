// Finding provenance over the heap graph (paper Fig. 4/5/6): the
// reachability argument a verdict rests on, materialized as data.
//
// A vulnerable verdict says "the sink's source argument reaches a
// $_FILES-tainted object and the destination constraint is SAT", but the
// Finding used to expose only s-expressions — an auditor could not see
// *which* chain of operations carries the taint, or which branch guards
// make up the path constraint. The two extractors here walk the
// (immutable, acyclic) heap graph and return that argument as hop lists
// anchored in PHP source, cheap enough to run per finding:
//
//   extract_taint_path  — one concrete object path from the $_FILES
//                         source down to the sink argument, one hop per
//                         graph node, each with its SourceLoc.
//   extract_guards      — the conjuncts of the path's reachability
//                         constraint (Env::cur is a right-leaning AND
//                         chain built by ER()), each with the location
//                         of the branch condition that contributed it.
#pragma once

#include <string>
#include <vector>

#include "core/heapgraph/heapgraph.h"

namespace uchecker::core {

// One node on the source-to-sink taint path.
struct TaintHop {
  Label label = kNoLabel;
  Object::Kind kind = Object::Kind::kSymbol;
  // Human-readable node identity: the operator ("."), the builtin name
  // ("str_replace()"), the symbol name ("s_files_f_ext"), a concrete
  // value preview ("\"/uploads/\""), or "array[key]" for the entry
  // descended through.
  std::string description;
  SourceLoc loc;
};

// Walks from `from` (a sink argument) to a $_FILES-tainted object and
// returns the hops ordered source-first (the tainted origin is hop 0,
// `from` is the last hop). Empty when `from` does not reach taint.
// Nodes whose own location is unknown inherit the nearest anchored
// neighbour's location, falling back to `fallback` (pass the sink call
// site), so every returned hop is anchored when any anchor exists.
[[nodiscard]] std::vector<TaintHop> extract_taint_path(
    const HeapGraph& graph, Label from, SourceLoc fallback = {});

// One conjunct of a path's reachability constraint.
struct PathGuard {
  Label label = kNoLabel;
  std::string sexpr;  // the guard, paper notation, e.g. (== s_ext "php")
  SourceLoc loc;      // branch condition's source location
};

// Flattens the AND chain rooted at `reachability` (kNoLabel = "true",
// yielding no guards) into its conjuncts, in the order ER() conjoined
// them — i.e. program order of the branches taken.
[[nodiscard]] std::vector<PathGuard> extract_guards(const HeapGraph& graph,
                                                    Label reachability);

}  // namespace uchecker::core
