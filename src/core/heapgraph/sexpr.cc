#include "core/heapgraph/sexpr.h"

#include "support/strutil.h"

namespace uchecker::core {
namespace {

constexpr int kMaxDepth = 256;

void render(const HeapGraph& graph, Label label, std::string& out, int depth) {
  if (depth > kMaxDepth) {
    out += "...";
    return;
  }
  const Object* obj = graph.find(label);
  if (obj == nullptr) {
    out += "null";
    return;
  }
  switch (obj->kind) {
    case Object::Kind::kConcrete:
      if (obj->type == Type::kString) {
        out += strutil::quote(std::get<std::string>(obj->value));
      } else {
        out += value_to_string(obj->value);
      }
      break;
    case Object::Kind::kSymbol:
      out += obj->name;
      break;
    case Object::Kind::kFunc:
      out += '(';
      out += obj->name;
      for (Label child : obj->children) {
        out += ' ';
        render(graph, child, out, depth + 1);
      }
      out += ')';
      break;
    case Object::Kind::kOp:
      out += '(';
      out += op_kind_name(obj->op);
      for (Label child : obj->children) {
        out += ' ';
        render(graph, child, out, depth + 1);
      }
      out += ')';
      break;
    case Object::Kind::kArray:
      out += "(array";
      for (const ArrayEntry& e : obj->entries) {
        out += " (";
        out += e.int_key ? e.key : strutil::quote(e.key);
        out += " . ";
        render(graph, e.value, out, depth + 1);
        out += ')';
      }
      out += ')';
      break;
  }
}

}  // namespace

std::string to_sexpr(const HeapGraph& graph, Label label) {
  // Memoized per graph, keyed by the queried root label only. Rendered
  // forms never go stale: object structure, names, and values are
  // immutable after insertion, and the two monotone mutators
  // (refine_type / mark_files_tainted) touch fields render() ignores.
  // Subterm results are deliberately not reused across queries so the
  // depth-guard truncation ("...") behaves exactly as before.
  if (const std::string* cached = graph.cached_sexpr(label)) return *cached;
  std::string out;
  render(graph, label, out, 0);
  graph.cache_sexpr(label, out);
  return out;
}

}  // namespace uchecker::core
