#include "core/heapgraph/heapgraph.h"

#include <cassert>

namespace uchecker::core {

std::string_view type_name(Type t) {
  switch (t) {
    case Type::kUnknown: return "unknown";
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kFloat: return "float";
    case Type::kString: return "string";
    case Type::kArray: return "array";
  }
  return "invalid";
}

std::string_view op_kind_name(OpKind op) {
  switch (op) {
    case OpKind::kAdd: return "+";
    case OpKind::kSub: return "-";
    case OpKind::kMul: return "*";
    case OpKind::kDiv: return "/";
    case OpKind::kMod: return "%";
    case OpKind::kPow: return "**";
    case OpKind::kConcat: return ".";
    case OpKind::kEqual: return "==";
    case OpKind::kNotEqual: return "!=";
    case OpKind::kIdentical: return "===";
    case OpKind::kNotIdentical: return "!==";
    case OpKind::kLess: return "<";
    case OpKind::kGreater: return ">";
    case OpKind::kLessEqual: return "<=";
    case OpKind::kGreaterEqual: return ">=";
    case OpKind::kAnd: return "AND";
    case OpKind::kOr: return "OR";
    case OpKind::kXor: return "XOR";
    case OpKind::kNot: return "NOT";
    case OpKind::kBitAnd: return "&";
    case OpKind::kBitOr: return "|";
    case OpKind::kBitXor: return "^";
    case OpKind::kShiftLeft: return "<<";
    case OpKind::kShiftRight: return ">>";
    case OpKind::kNegate: return "neg";
    case OpKind::kArrayAccess: return "array_access";
    case OpKind::kTernary: return "ternary";
    case OpKind::kCoalesce: return "??";
  }
  return "invalid";
}

std::string_view object_kind_name(Object::Kind kind) {
  switch (kind) {
    case Object::Kind::kConcrete: return "concrete";
    case Object::Kind::kSymbol: return "symbol";
    case Object::Kind::kFunc: return "func";
    case Object::Kind::kOp: return "op";
    case Object::Kind::kArray: return "array";
  }
  return "invalid";
}

std::string value_to_string(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "null"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const { return std::to_string(d); }
    std::string operator()(const std::string& s) const { return s; }
  };
  return std::visit(Visitor{}, v);
}

Type value_type(const Value& v) {
  struct Visitor {
    Type operator()(std::monostate) const { return Type::kNull; }
    Type operator()(bool) const { return Type::kBool; }
    Type operator()(std::int64_t) const { return Type::kInt; }
    Type operator()(double) const { return Type::kFloat; }
    Type operator()(const std::string&) const { return Type::kString; }
  };
  return std::visit(Visitor{}, v);
}

Label HeapGraph::insert(Object obj) {
  obj.label = static_cast<Label>(objects_.size() + 1);
  edge_count_ += obj.children.size();
  string_bytes_ += obj.name.size();
  if (const auto* s = std::get_if<std::string>(&obj.value)) {
    string_bytes_ += s->size();
  }
  for (const ArrayEntry& e : obj.entries) string_bytes_ += e.key.size();
  objects_.push_back(std::move(obj));
  return objects_.back().label;
}

Label HeapGraph::add_concrete(Value value, SourceLoc loc) {
  Object obj;
  obj.kind = Object::Kind::kConcrete;
  obj.type = value_type(value);
  obj.value = std::move(value);
  obj.loc = loc;
  return insert(std::move(obj));
}

Label HeapGraph::add_symbol(std::string name, Type type, SourceLoc loc,
                            bool files_tainted) {
  Object obj;
  obj.kind = Object::Kind::kSymbol;
  obj.type = type;
  obj.name = std::move(name);
  obj.loc = loc;
  obj.files_tainted = files_tainted;
  return insert(std::move(obj));
}

Label HeapGraph::add_func(std::string name, Type result_type,
                          std::vector<Label> params, SourceLoc loc) {
  Object obj;
  obj.kind = Object::Kind::kFunc;
  obj.type = result_type;
  obj.name = std::move(name);
  obj.children = std::move(params);
  obj.loc = loc;
  return insert(std::move(obj));
}

Label HeapGraph::add_op(OpKind op, Type result_type, std::vector<Label> operands,
                        SourceLoc loc) {
  Object obj;
  obj.kind = Object::Kind::kOp;
  obj.type = result_type;
  obj.op = op;
  obj.children = std::move(operands);
  obj.loc = loc;
  return insert(std::move(obj));
}

Label HeapGraph::add_array(std::vector<ArrayEntry> entries, SourceLoc loc,
                           bool files_tainted) {
  Object obj;
  obj.kind = Object::Kind::kArray;
  obj.type = Type::kArray;
  obj.entries = std::move(entries);
  obj.loc = loc;
  obj.files_tainted = files_tainted;
  return insert(std::move(obj));
}

const Object* HeapGraph::find(Label label) const {
  if (label == kNoLabel || label > objects_.size()) return nullptr;
  return &objects_[label - 1];
}

const Object& HeapGraph::at(Label label) const {
  const Object* obj = find(label);
  assert(obj != nullptr && "HeapGraph::at on invalid label");
  return *obj;
}

void HeapGraph::refine_type(Label label, Type type) {
  if (label == kNoLabel || label > objects_.size()) return;
  Object& obj = objects_[label - 1];
  if (obj.type == Type::kUnknown) obj.type = type;
}

void HeapGraph::mark_files_tainted(Label label) {
  if (label == kNoLabel || label > objects_.size()) return;
  objects_[label - 1].files_tainted = true;
}

bool HeapGraph::reaches_files_taint(Label label) const {
  // Iterative DFS over children (and array entry values). The graph is
  // acyclic by construction (children always have smaller labels), so no
  // visited set is required for termination, but we keep one to bound
  // work on heavily shared DAGs.
  std::vector<Label> stack{label};
  std::vector<bool> visited(objects_.size() + 1, false);
  while (!stack.empty()) {
    const Label l = stack.back();
    stack.pop_back();
    const Object* obj = find(l);
    if (obj == nullptr || visited[l]) continue;
    visited[l] = true;
    if (obj->files_tainted) return true;
    for (Label child : obj->children) stack.push_back(child);
    for (const ArrayEntry& e : obj->entries) stack.push_back(e.value);
  }
  return false;
}

std::size_t HeapGraph::memory_bytes() const {
  return objects_.size() * sizeof(Object) + edge_count_ * sizeof(Label) +
         string_bytes_;
}

std::size_t Env::memory_bytes() const {
  std::size_t bytes = sizeof(Env);
  for (const auto& [name, label] : map_) {
    bytes += name.size() + sizeof(label) + 48;  // rb-tree node overhead
  }
  return bytes;
}

void extend_reachability(HeapGraph& graph, Env& env, Label label) {
  if (label == kNoLabel) return;
  if (env.cur() == kNoLabel) {
    env.set_cur(label);
    return;
  }
  // cur != null: conjoin via a boolean AND node (paper's ER()).
  const Label conj = graph.add_op(OpKind::kAnd, Type::kBool,
                                  {env.cur(), label}, graph.at(label).loc);
  env.set_cur(conj);
}

}  // namespace uchecker::core
