#include "core/heapgraph/heapgraph.h"

#include <algorithm>
#include <cassert>

namespace uchecker::core {

std::string_view type_name(Type t) {
  switch (t) {
    case Type::kUnknown: return "unknown";
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kFloat: return "float";
    case Type::kString: return "string";
    case Type::kArray: return "array";
  }
  return "invalid";
}

std::string_view op_kind_name(OpKind op) {
  switch (op) {
    case OpKind::kAdd: return "+";
    case OpKind::kSub: return "-";
    case OpKind::kMul: return "*";
    case OpKind::kDiv: return "/";
    case OpKind::kMod: return "%";
    case OpKind::kPow: return "**";
    case OpKind::kConcat: return ".";
    case OpKind::kEqual: return "==";
    case OpKind::kNotEqual: return "!=";
    case OpKind::kIdentical: return "===";
    case OpKind::kNotIdentical: return "!==";
    case OpKind::kLess: return "<";
    case OpKind::kGreater: return ">";
    case OpKind::kLessEqual: return "<=";
    case OpKind::kGreaterEqual: return ">=";
    case OpKind::kAnd: return "AND";
    case OpKind::kOr: return "OR";
    case OpKind::kXor: return "XOR";
    case OpKind::kNot: return "NOT";
    case OpKind::kBitAnd: return "&";
    case OpKind::kBitOr: return "|";
    case OpKind::kBitXor: return "^";
    case OpKind::kShiftLeft: return "<<";
    case OpKind::kShiftRight: return ">>";
    case OpKind::kNegate: return "neg";
    case OpKind::kArrayAccess: return "array_access";
    case OpKind::kTernary: return "ternary";
    case OpKind::kCoalesce: return "??";
  }
  return "invalid";
}

std::string_view object_kind_name(Object::Kind kind) {
  switch (kind) {
    case Object::Kind::kConcrete: return "concrete";
    case Object::Kind::kSymbol: return "symbol";
    case Object::Kind::kFunc: return "func";
    case Object::Kind::kOp: return "op";
    case Object::Kind::kArray: return "array";
  }
  return "invalid";
}

std::string value_to_string(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "null"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const { return std::to_string(d); }
    std::string operator()(const std::string& s) const { return s; }
  };
  return std::visit(Visitor{}, v);
}

Type value_type(const Value& v) {
  struct Visitor {
    Type operator()(std::monostate) const { return Type::kNull; }
    Type operator()(bool) const { return Type::kBool; }
    Type operator()(std::int64_t) const { return Type::kInt; }
    Type operator()(double) const { return Type::kFloat; }
    Type operator()(const std::string&) const { return Type::kString; }
  };
  return std::visit(Visitor{}, v);
}

namespace {

void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

std::size_t hash_value(const Value& v) {
  struct Visitor {
    std::size_t operator()(std::monostate) const { return 0x517cc1b7; }
    std::size_t operator()(bool b) const { return b ? 2u : 1u; }
    std::size_t operator()(std::int64_t i) const {
      return std::hash<std::int64_t>{}(i);
    }
    std::size_t operator()(double d) const { return std::hash<double>{}(d); }
    std::size_t operator()(const std::string& s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::size_t seed = v.index();
  hash_combine(seed, std::visit(Visitor{}, v));
  return seed;
}

// Slot marker for entries removed by rekey. Real labels are 1-based
// indexes into objects_ and can never reach this value.
constexpr Label kTombstoneSlot = 0xFFFFFFFFu;

}  // namespace

std::size_t HeapGraph::structural_hash(const Object& obj) {
  // Covers every field that participates in structurally_equal; two
  // objects the analysis could ever treat differently must hash (and
  // compare) as distinct, or consing would merge them.
  std::size_t seed = static_cast<std::size_t>(obj.kind);
  hash_combine(seed, static_cast<std::size_t>(obj.type));
  hash_combine(seed, static_cast<std::size_t>(obj.op));
  hash_combine(seed, obj.files_tainted ? 1u : 0u);
  hash_combine(seed, obj.loc.file.value);
  hash_combine(seed, obj.loc.line);
  hash_combine(seed, obj.loc.column);
  hash_combine(seed, std::hash<std::string_view>{}(obj.name));
  hash_combine(seed, hash_value(obj.value));
  hash_combine(seed, obj.children.size());
  for (const Label c : obj.children) hash_combine(seed, c);
  hash_combine(seed, obj.entries.size());
  for (const ArrayEntry& e : obj.entries) {
    hash_combine(seed, std::hash<std::string_view>{}(e.key));
    hash_combine(seed, e.int_key ? 1u : 0u);
    hash_combine(seed, e.value);
  }
  return seed;
}

bool HeapGraph::structurally_equal(const Object& a, const Object& b) {
  if (a.kind != b.kind || a.type != b.type || a.op != b.op ||
      a.files_tainted != b.files_tainted || !(a.loc == b.loc) ||
      a.name != b.name || a.value != b.value || a.children != b.children ||
      a.entries.size() != b.entries.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const ArrayEntry& ea = a.entries[i];
    const ArrayEntry& eb = b.entries[i];
    if (ea.key != eb.key || ea.int_key != eb.int_key || ea.value != eb.value) {
      return false;
    }
  }
  return true;
}

Label HeapGraph::insert(Object obj, std::size_t hash) {
  obj.label = static_cast<Label>(objects_.size() + 1);
  edge_count_ += obj.children.size();
  string_bytes_ += obj.name.size();
  if (const auto* s = std::get_if<std::string>(&obj.value)) {
    string_bytes_ += s->size();
  }
  for (const ArrayEntry& e : obj.entries) string_bytes_ += e.key.size();
  objects_.push_back(std::move(obj));
  hashes_.push_back(hash);
  return objects_.back().label;
}

void HeapGraph::grow_table() {
  std::vector<Label> old = std::move(slots_);
  slots_.assign(old.empty() ? 64 : old.size() * 2, kNoLabel);
  table_used_ = 0;
  for (const Label l : old) {
    if (l != kNoLabel && l != kTombstoneSlot) place(l);
  }
}

void HeapGraph::place(Label label) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = hashes_[label - 1] & mask;
  while (slots_[i] != kNoLabel && slots_[i] != kTombstoneSlot) {
    i = (i + 1) & mask;
  }
  if (slots_[i] == kNoLabel) ++table_used_;
  slots_[i] = label;
}

Label HeapGraph::intern(Object obj) {
  // Keep at least a quarter of the slots empty so probe chains stay
  // short and the absence scans below always terminate.
  if ((table_used_ + 1) * 4 >= slots_.size() * 3) grow_table();
  const std::size_t h = structural_hash(obj);
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t i = h & mask;; i = (i + 1) & mask) {
    const Label slot = slots_[i];
    if (slot == kNoLabel) break;
    if (slot == kTombstoneSlot) continue;
    if (hashes_[slot - 1] == h && structurally_equal(objects_[slot - 1], obj)) {
      ++cons_hits_;
      return slot;
    }
  }
  const Label label = insert(std::move(obj), h);
  place(label);
  return label;
}

void HeapGraph::rekey(Label label) {
  const std::size_t old_hash = hashes_[label - 1];
  hashes_[label - 1] = structural_hash(objects_[label - 1]);
  if (slots_.empty()) return;  // nothing consed yet, so nothing placed
  if ((table_used_ + 1) * 4 >= slots_.size() * 3) grow_table();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = old_hash & mask;
  for (;; i = (i + 1) & mask) {
    const Label slot = slots_[i];
    // Hitting an empty slot means the label was never placed: symbols
    // (plain insert) stay out of the table and stay out after rekey.
    if (slot == kNoLabel) return;
    if (slot == label) break;
  }
  slots_[i] = kTombstoneSlot;
  place(label);
}

Label HeapGraph::add_concrete(Value value, SourceLoc loc) {
  Object obj;
  obj.kind = Object::Kind::kConcrete;
  obj.type = value_type(value);
  obj.value = std::move(value);
  obj.loc = loc;
  return intern(std::move(obj));
}

Label HeapGraph::add_symbol(std::string name, Type type, SourceLoc loc,
                            bool files_tainted) {
  // Deliberately not consed: symbol names are unique by construction
  // (per-variable counters) and symbols are the targets of later
  // mark_files_tainted calls.
  Object obj;
  obj.kind = Object::Kind::kSymbol;
  obj.type = type;
  obj.name = std::move(name);
  obj.loc = loc;
  obj.files_tainted = files_tainted;
  const std::size_t h = structural_hash(obj);
  return insert(std::move(obj), h);
}

Label HeapGraph::add_func(std::string name, Type result_type,
                          std::vector<Label> params, SourceLoc loc) {
  Object obj;
  obj.kind = Object::Kind::kFunc;
  obj.type = result_type;
  obj.name = std::move(name);
  obj.children = std::move(params);
  obj.loc = loc;
  return intern(std::move(obj));
}

Label HeapGraph::add_op(OpKind op, Type result_type, std::vector<Label> operands,
                        SourceLoc loc) {
  Object obj;
  obj.kind = Object::Kind::kOp;
  obj.type = result_type;
  obj.op = op;
  obj.children = std::move(operands);
  obj.loc = loc;
  return intern(std::move(obj));
}

Label HeapGraph::add_array(std::vector<ArrayEntry> entries, SourceLoc loc,
                           bool files_tainted) {
  Object obj;
  obj.kind = Object::Kind::kArray;
  obj.type = Type::kArray;
  obj.entries = std::move(entries);
  obj.loc = loc;
  obj.files_tainted = files_tainted;
  return intern(std::move(obj));
}

const Object* HeapGraph::find(Label label) const {
  if (label == kNoLabel || label > objects_.size()) return nullptr;
  return &objects_[label - 1];
}

const Object& HeapGraph::at(Label label) const {
  const Object* obj = find(label);
  assert(obj != nullptr && "HeapGraph::at on invalid label");
  return *obj;
}

void HeapGraph::refine_type(Label label, Type type) {
  if (label == kNoLabel || label > objects_.size()) return;
  Object& obj = objects_[label - 1];
  if (obj.type != Type::kUnknown || type == Type::kUnknown) return;
  obj.type = type;
  rekey(label);
}

void HeapGraph::mark_files_tainted(Label label) {
  if (label == kNoLabel || label > objects_.size()) return;
  Object& obj = objects_[label - 1];
  if (obj.files_tainted) return;
  obj.files_tainted = true;
  rekey(label);
  // Cached "does not reach taint" answers may have just become wrong;
  // positive answers stay valid but a full reset keeps this simple.
  taint_memo_.clear();
}

bool HeapGraph::reaches_files_taint(Label label) const {
  const Object* root = find(label);
  if (root == nullptr) return false;
  if (taint_memo_.size() <= objects_.size()) {
    taint_memo_.resize(objects_.size() + 1, 0);
  }
  if (taint_memo_[label] != 0) return taint_memo_[label] == 2;

  // Iterative post-order DFS; children always carry smaller labels (they
  // must exist before their parent is inserted), so the graph is acyclic
  // and every finalized node's answer can be memoized for later queries.
  struct Frame {
    Label l;
    std::size_t next = 0;  // cursor over children ++ entry values
    bool reached = false;
  };
  std::vector<Frame> stack;
  stack.push_back({label});
  while (!stack.empty()) {
    Frame& f = stack.back();
    const Object& obj = objects_[f.l - 1];
    if (f.next == 0 && obj.files_tainted) f.reached = true;
    const std::size_t n_children = obj.children.size();
    const std::size_t n_total = n_children + obj.entries.size();
    bool descended = false;
    while (!f.reached && f.next < n_total) {
      const std::size_t i = f.next++;
      const Label c = i < n_children ? obj.children[i]
                                     : obj.entries[i - n_children].value;
      if (c == kNoLabel || c > objects_.size()) continue;
      const std::uint8_t memo = taint_memo_[c];
      if (memo == 2) {
        f.reached = true;
      } else if (memo == 0) {
        stack.push_back({c});
        descended = true;
        break;
      }  // memo == 1: known clean, skip
    }
    if (descended) continue;
    taint_memo_[f.l] = f.reached ? 2 : 1;
    const bool reached = f.reached;
    stack.pop_back();
    if (reached && !stack.empty()) stack.back().reached = true;
  }
  return taint_memo_[label] == 2;
}

const std::string* HeapGraph::cached_sexpr(Label label) const {
  auto it = sexpr_cache_.find(label);
  if (it == sexpr_cache_.end()) return nullptr;
  ++sexpr_cache_hits_;
  return &it->second;
}

void HeapGraph::cache_sexpr(Label label, std::string rendered) const {
  sexpr_cache_.emplace(label, std::move(rendered));
}

std::size_t HeapGraph::memory_bytes() const {
  return objects_.size() * sizeof(Object) + edge_count_ * sizeof(Label) +
         string_bytes_;
}

// ---------------------------------------------------------------------------
// VarInterner

VarId VarInterner::intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  names_.emplace_back(name);
  const VarId id = static_cast<VarId>(names_.size());
  ids_.emplace(names_.back(), id);
  return id;
}

VarId VarInterner::lookup(std::string_view name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kNoVar : it->second;
}

const std::string& VarInterner::name(VarId id) const {
  assert(id != kNoVar && id <= names_.size() && "invalid VarId");
  return names_[id - 1];
}

// ---------------------------------------------------------------------------
// Env

namespace {

template <typename Vec>
auto entry_pos(Vec& map, VarId id) {
  return std::lower_bound(
      map.begin(), map.end(), id,
      [](const Env::VarEntry& e, VarId v) { return e.first < v; });
}

}  // namespace

Label Env::get(VarId id) const {
  auto it = entry_pos(map_, id);
  return (it != map_.end() && it->first == id) ? it->second : kNoLabel;
}

void Env::set(VarId id, Label label) {
  auto it = entry_pos(map_, id);
  if (it != map_.end() && it->first == id) {
    it->second = label;
    return;
  }
  map_.insert(it, {id, label});
}

void Env::erase(VarId id) {
  auto it = entry_pos(map_, id);
  if (it != map_.end() && it->first == id) map_.erase(it);
}

void Env::set_entries(std::vector<VarEntry> entries) {
  map_ = std::move(entries);
}

VarInterner& Env::own_interner() {
  if (!interner_) interner_ = std::make_shared<VarInterner>();
  return *interner_;
}

Label Env::get_map(const std::string& var) const {
  if (!interner_) return kNoLabel;
  const VarId id = interner_->lookup(var);
  return id == kNoVar ? kNoLabel : get(id);
}

void Env::add_map(const std::string& var, Label label) {
  set(own_interner().intern(var), label);
}

void Env::remove_map(const std::string& var) {
  if (!interner_) return;
  const VarId id = interner_->lookup(var);
  if (id != kNoVar) erase(id);
}

std::map<std::string, Label> Env::map() const {
  std::map<std::string, Label> out;
  if (!interner_) return out;
  for (const auto& [id, label] : map_) out.emplace(interner_->name(id), label);
  return out;
}

std::size_t Env::memory_bytes() const {
  std::size_t bytes = sizeof(Env) + map_.capacity() * sizeof(VarEntry) +
                      stack_.capacity() * sizeof(Label);
  for (const auto& frame : frames_) bytes += frame.capacity() * sizeof(VarEntry);
  return bytes;
}

void extend_reachability(HeapGraph& graph, Env& env, Label label) {
  if (label == kNoLabel) return;
  if (env.cur() == kNoLabel) {
    env.set_cur(label);
    return;
  }
  // cur != null: conjoin via a boolean AND node (paper's ER()).
  const Label conj = graph.add_op(OpKind::kAnd, Type::kBool,
                                  {env.cur(), label}, graph.at(label).loc);
  env.set_cur(conj);
}

}  // namespace uchecker::core
