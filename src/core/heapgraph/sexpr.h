// S-expression rendering of heap-graph objects (paper §III-B1: "the
// tree-like structure of the heap graph enables the s-expression-based
// representation of an object value").
//
// The rendered form matches the paper's notation, e.g. the reachability
// constraint of Listing 2's first path renders as  (> (+ s 55) 10).
#pragma once

#include <string>

#include "core/heapgraph/heapgraph.h"

namespace uchecker::core {

// Renders the value rooted at `label` as a PHP-semantics s-expression.
// Concrete strings are quoted; symbols render as their names. Cycles are
// impossible (the graph is a DAG built bottom-up) but depth is guarded.
[[nodiscard]] std::string to_sexpr(const HeapGraph& graph, Label label);

}  // namespace uchecker::core
