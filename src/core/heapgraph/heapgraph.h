// The heap graph G = {C, S, FUNC, OP, L, T, O_C, O_S, O_FUNC, O_OP, Edge}
// of paper §III-B1, plus per-path environments Env = {Var, Map, cur}.
//
// The heap graph is an append-only arena of immutable objects. Each object
// gets a unique label (its index + 1, so labels match the paper's 1-based
// numbering). Edges are stored as an ordered child list on the source
// object, preserving operand order ("left"/"right") as §III-B3 requires.
//
// Objects are shared across environments: forking a path at a conditional
// copies only the small Var->Label map, never graph nodes. This is the
// paper's memory-compactness argument (Table III "Objects / Path").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "support/source.h"

namespace uchecker::core {

// Lightweight PHP type lattice used for light-weight type inference and
// for the Z3 translation's coercion rules. kUnknown is the paper's ⊥.
enum class Type : std::uint8_t {
  kUnknown, kNull, kBool, kInt, kFloat, kString, kArray,
};

[[nodiscard]] std::string_view type_name(Type t);

// Labels are 1-based; 0 is "no object" (the paper's null).
using Label = std::uint32_t;
inline constexpr Label kNoLabel = 0;

// Operator vocabulary for O_OP nodes. Mirrors PHP source operators plus
// the special array_access operation of §III-B3 and the AND/NOT nodes
// introduced by ER() / branch negation.
enum class OpKind : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kPow, kConcat,
  kEqual, kNotEqual, kIdentical, kNotIdentical,
  kLess, kGreater, kLessEqual, kGreaterEqual,
  kAnd, kOr, kXor, kNot,
  kBitAnd, kBitOr, kBitXor, kShiftLeft, kShiftRight,
  kNegate,        // unary minus
  kArrayAccess,   // (array_access base index)
  kTernary,       // (ternary cond then else) — kept for value modeling
  kCoalesce,
};

[[nodiscard]] std::string_view op_kind_name(OpKind op);

// Concrete PHP value payload for O_C nodes.
using Value = std::variant<std::monostate,  // null
                           bool, std::int64_t, double, std::string>;

[[nodiscard]] std::string value_to_string(const Value& v);
[[nodiscard]] Type value_type(const Value& v);

// One entry of a known-structure array object. Keys are stored as strings
// with an is-int flag (PHP array keys are int|string).
struct ArrayEntry {
  std::string key;
  bool int_key = false;
  Label value = kNoLabel;
};

// A node in the heap graph. Exactly one of the payloads is meaningful,
// selected by `kind`:
//   kConcrete: `value`
//   kSymbol:   `name` (the symbolic value's display name)
//   kFunc:     `name` (builtin function name) + `children` (parameters)
//   kOp:       `op` + `children` (ordered operands)
//   kArray:    `entries` (known structure array; used for array literals
//              and the pre-structured $_FILES array of §III-B4)
struct Object {
  enum class Kind : std::uint8_t { kConcrete, kSymbol, kFunc, kOp, kArray };

  Kind kind = Kind::kSymbol;
  Type type = Type::kUnknown;
  Label label = kNoLabel;
  SourceLoc loc;

  Value value;
  std::string name;
  OpKind op = OpKind::kAdd;
  std::vector<Label> children;
  std::vector<ArrayEntry> entries;

  // Constraint-1 bookkeeping: true when this object originates from the
  // $_FILES superglobal (directly, or via the pre-structured array).
  bool files_tainted = false;
};

[[nodiscard]] std::string_view object_kind_name(Object::Kind kind);

class HeapGraph {
 public:
  HeapGraph() = default;

  // --- node constructors (Create_*_Obj + Add_*_Obj of §III-B2, fused:
  //     labels are assigned uniquely on insertion).
  Label add_concrete(Value value, SourceLoc loc = {});
  Label add_symbol(std::string name, Type type, SourceLoc loc = {},
                   bool files_tainted = false);
  Label add_func(std::string name, Type result_type, std::vector<Label> params,
                 SourceLoc loc = {});
  Label add_op(OpKind op, Type result_type, std::vector<Label> operands,
               SourceLoc loc = {});
  Label add_array(std::vector<ArrayEntry> entries, SourceLoc loc = {},
                  bool files_tainted = false);

  // Find(G, l) — returns nullptr when l is kNoLabel or out of range.
  [[nodiscard]] const Object* find(Label label) const;
  // Checked access; label must be valid.
  [[nodiscard]] const Object& at(Label label) const;

  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  // Refines the type of an object whose type is still kUnknown. Used by
  // the interpreter's light-weight type inference (§III-B4); refinement
  // is monotone: a known type is never overwritten.
  void refine_type(Label label, Type type);

  // Marks an object as $_FILES-tainted after creation (used when a
  // symbol is later discovered to alias uploaded-file state).
  void mark_files_tainted(Label label);

  // Constraint-1 of §III-C: does any path in G lead from `label` to an
  // object that originates from $_FILES?
  [[nodiscard]] bool reaches_files_taint(Label label) const;

  // Approximate resident size, for the Table III "Memory" column.
  [[nodiscard]] std::size_t memory_bytes() const;

  // All objects, label order. Exposed for DOT export and tests.
  [[nodiscard]] const std::vector<Object>& objects() const { return objects_; }

 private:
  Label insert(Object obj);

  std::vector<Object> objects_;
  std::size_t edge_count_ = 0;
  std::size_t string_bytes_ = 0;
};

// -------------------------------------------------------------------------
// Per-path environment (paper §III-B1): variable map + reachability.

class Env {
 public:
  // How this path's execution ended (drives statement skipping).
  enum class Status : std::uint8_t { kRunning, kReturned, kExited };

  Env() = default;

  [[nodiscard]] Label get_map(const std::string& var) const {
    const auto it = map_.find(var);
    return it == map_.end() ? kNoLabel : it->second;
  }
  void add_map(const std::string& var, Label label) { map_[var] = label; }
  void remove_map(const std::string& var) { map_.erase(var); }

  [[nodiscard]] const std::map<std::string, Label>& map() const { return map_; }
  void set_map(std::map<std::string, Label> m) { map_ = std::move(m); }

  [[nodiscard]] Label cur() const { return cur_; }
  void set_cur(Label label) { cur_ = label; }

  [[nodiscard]] Status status() const { return status_; }
  void set_status(Status s) { status_ = s; }
  [[nodiscard]] bool running() const { return status_ == Status::kRunning; }

  [[nodiscard]] Label return_value() const { return return_value_; }
  void set_return_value(Label label) { return_value_ = label; }

  // Operand stack used by the interpreter's expression evaluation. A path
  // fork copies the stack, keeping partial results aligned with paths.
  [[nodiscard]] std::vector<Label>& stack() { return stack_; }
  [[nodiscard]] const std::vector<Label>& stack() const { return stack_; }

  // Saved caller variable maps for inlined user-function calls.
  [[nodiscard]] std::vector<std::map<std::string, Label>>& frames() {
    return frames_;
  }

  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::map<std::string, Label> map_;
  Label cur_ = kNoLabel;  // kNoLabel == the paper's cur = null
  Status status_ = Status::kRunning;
  Label return_value_ = kNoLabel;
  std::vector<Label> stack_;
  std::vector<std::map<std::string, Label>> frames_;
};

// ER(G, Env, l) of §III-B2 ("Extend_Reachability"): conjoins the object
// `label` onto the environment's reachability constraint.
void extend_reachability(HeapGraph& graph, Env& env, Label label);

}  // namespace uchecker::core
