// The heap graph G = {C, S, FUNC, OP, L, T, O_C, O_S, O_FUNC, O_OP, Edge}
// of paper §III-B1, plus per-path environments Env = {Var, Map, cur}.
//
// The heap graph is a hash-consed arena of immutable objects. Each object
// gets a unique label (its index + 1, so labels match the paper's 1-based
// numbering). Edges are stored as an ordered child list on the source
// object, preserving operand order ("left"/"right") as §III-B3 requires.
//
// Hash-consing: add_concrete/add_func/add_op/add_array return the label
// of an existing structurally identical object instead of appending a
// duplicate, so the graph is a maximally shared DAG. The cons key covers
// every field that affects analysis results — including the $_FILES
// taint flag (a tainted node must never be merged with its untainted
// structural twin) and the type (light-weight inference refines types
// in place, so nodes that could diverge by type stay distinct). The two
// monotone mutators, refine_type and mark_files_tainted, re-key the
// mutated node so stale cons-table entries can never alias it.
// add_symbol is not consed: symbol names are unique by construction and
// symbols are the primary targets of post-creation taint marking.
//
// Objects are shared across environments: forking a path at a conditional
// copies only the small interned-id Var->Label vector, never graph nodes.
// This is the paper's memory-compactness argument (Table III "Objects /
// Path"); consing is what makes the DAG *shared* rather than merely
// append-only when many paths evaluate the same expressions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "support/source.h"

namespace uchecker::core {

// Lightweight PHP type lattice used for light-weight type inference and
// for the Z3 translation's coercion rules. kUnknown is the paper's ⊥.
enum class Type : std::uint8_t {
  kUnknown, kNull, kBool, kInt, kFloat, kString, kArray,
};

[[nodiscard]] std::string_view type_name(Type t);

// Labels are 1-based; 0 is "no object" (the paper's null).
using Label = std::uint32_t;
inline constexpr Label kNoLabel = 0;

// Operator vocabulary for O_OP nodes. Mirrors PHP source operators plus
// the special array_access operation of §III-B3 and the AND/NOT nodes
// introduced by ER() / branch negation.
enum class OpKind : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kPow, kConcat,
  kEqual, kNotEqual, kIdentical, kNotIdentical,
  kLess, kGreater, kLessEqual, kGreaterEqual,
  kAnd, kOr, kXor, kNot,
  kBitAnd, kBitOr, kBitXor, kShiftLeft, kShiftRight,
  kNegate,        // unary minus
  kArrayAccess,   // (array_access base index)
  kTernary,       // (ternary cond then else) — kept for value modeling
  kCoalesce,
};

[[nodiscard]] std::string_view op_kind_name(OpKind op);

// Concrete PHP value payload for O_C nodes.
using Value = std::variant<std::monostate,  // null
                           bool, std::int64_t, double, std::string>;

[[nodiscard]] std::string value_to_string(const Value& v);
[[nodiscard]] Type value_type(const Value& v);

// One entry of a known-structure array object. Keys are stored as strings
// with an is-int flag (PHP array keys are int|string).
struct ArrayEntry {
  std::string key;
  bool int_key = false;
  Label value = kNoLabel;
};

// A node in the heap graph. Exactly one of the payloads is meaningful,
// selected by `kind`:
//   kConcrete: `value`
//   kSymbol:   `name` (the symbolic value's display name)
//   kFunc:     `name` (builtin function name) + `children` (parameters)
//   kOp:       `op` + `children` (ordered operands)
//   kArray:    `entries` (known structure array; used for array literals
//              and the pre-structured $_FILES array of §III-B4)
struct Object {
  enum class Kind : std::uint8_t { kConcrete, kSymbol, kFunc, kOp, kArray };

  Kind kind = Kind::kSymbol;
  Type type = Type::kUnknown;
  Label label = kNoLabel;
  SourceLoc loc;

  Value value;
  std::string name;
  OpKind op = OpKind::kAdd;
  std::vector<Label> children;
  std::vector<ArrayEntry> entries;

  // Constraint-1 bookkeeping: true when this object originates from the
  // $_FILES superglobal (directly, or via the pre-structured array).
  bool files_tainted = false;
};

[[nodiscard]] std::string_view object_kind_name(Object::Kind kind);

class HeapGraph {
 public:
  HeapGraph() = default;

  // --- node constructors (Create_*_Obj + Add_*_Obj of §III-B2, fused:
  //     labels are assigned uniquely on insertion). Hash-consed: a
  //     structurally identical object returns the existing label.
  Label add_concrete(Value value, SourceLoc loc = {});
  Label add_symbol(std::string name, Type type, SourceLoc loc = {},
                   bool files_tainted = false);
  Label add_func(std::string name, Type result_type, std::vector<Label> params,
                 SourceLoc loc = {});
  Label add_op(OpKind op, Type result_type, std::vector<Label> operands,
               SourceLoc loc = {});
  Label add_array(std::vector<ArrayEntry> entries, SourceLoc loc = {},
                  bool files_tainted = false);

  // Find(G, l) — returns nullptr when l is kNoLabel or out of range.
  [[nodiscard]] const Object* find(Label label) const;
  // Checked access; label must be valid.
  [[nodiscard]] const Object& at(Label label) const;

  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  // How many add_* calls were answered by an existing structurally
  // identical node instead of a fresh insertion (Table III sharing).
  [[nodiscard]] std::size_t cons_hits() const { return cons_hits_; }

  // Refines the type of an object whose type is still kUnknown. Used by
  // the interpreter's light-weight type inference (§III-B4); refinement
  // is monotone: a known type is never overwritten. Re-keys the node in
  // the cons table (type is part of the structural identity).
  void refine_type(Label label, Type type);

  // Marks an object as $_FILES-tainted after creation (used when a
  // symbol is later discovered to alias uploaded-file state). Re-keys
  // the node (taint is part of the structural identity, so an untainted
  // twin added later gets a fresh node) and drops cached negative
  // reachability answers, which the marking may have invalidated.
  void mark_files_tainted(Label label);

  // Constraint-1 of §III-C: does any path in G lead from `label` to an
  // object that originates from $_FILES? Memoized per node; the memo is
  // only invalidated by mark_files_tainted (taint is otherwise fixed at
  // creation, and new nodes can never become children of old ones).
  [[nodiscard]] bool reaches_files_taint(Label label) const;

  // --- s-expression render cache (used by to_sexpr). Object structure
  //     is immutable after insertion, so a rendered form stays valid for
  //     the graph's lifetime; entries are keyed by queried root label.
  [[nodiscard]] const std::string* cached_sexpr(Label label) const;
  void cache_sexpr(Label label, std::string rendered) const;
  [[nodiscard]] std::size_t sexpr_cache_hits() const {
    return sexpr_cache_hits_;
  }

  // Approximate resident size, for the Table III "Memory" column.
  // Counts the analysis-visible structure (objects, edges, strings), not
  // the cons-table/memo side tables.
  [[nodiscard]] std::size_t memory_bytes() const;

  // All objects, label order. Exposed for DOT export and tests.
  [[nodiscard]] const std::vector<Object>& objects() const { return objects_; }

 private:
  Label insert(Object obj, std::size_t hash);  // unconditional append
  Label intern(Object obj);                    // hash-cons lookup-or-append
  // Re-places `label` in the slot table after a monotone mutation changed
  // its structural identity (no-op for nodes outside the table: symbols).
  void rekey(Label label);
  void place(Label label);  // claims a slot for label by hashes_[label-1]
  void grow_table();

  [[nodiscard]] static std::size_t structural_hash(const Object& obj);
  [[nodiscard]] static bool structurally_equal(const Object& a,
                                               const Object& b);

  std::vector<Object> objects_;
  // Structural hash per label (parallel to objects_). Cached so probes
  // compare one word before falling back to full structural equality,
  // and so rekey can find a node's old slot without re-deriving the
  // pre-mutation hash.
  std::vector<std::size_t> hashes_;
  std::size_t edge_count_ = 0;
  std::size_t string_bytes_ = 0;

  // Open-addressing cons table over labels (linear probing, power-of-two
  // size). kNoLabel marks an empty slot, kTombstoneSlot an erased one
  // (rekey moves nodes; tombstones are recycled by probing inserts and
  // dropped wholesale on growth). A flat table keeps the per-node insert
  // cost allocation-free — the bucket-of-vectors shape paid two heap
  // allocations per unique node, which dominated graph construction.
  std::vector<Label> slots_;
  std::size_t table_used_ = 0;  // occupied + tombstoned slots (load input)
  std::size_t cons_hits_ = 0;

  // Per-node taint reachability memo: 0 = unknown, 1 = no, 2 = yes.
  // Indexed by label; lazily grown, cleared by mark_files_tainted.
  mutable std::vector<std::uint8_t> taint_memo_;

  mutable std::unordered_map<Label, std::string> sexpr_cache_;
  mutable std::size_t sexpr_cache_hits_ = 0;
};

// -------------------------------------------------------------------------
// Variable-name interning (per scan): path forks copy the Var->Label map
// once per fork, so map keys must be cheap to copy and compare. Interned
// ids make the per-path map a flat vector of 8-byte entries instead of an
// rb-tree of heap-allocated strings.

using VarId = std::uint32_t;
inline constexpr VarId kNoVar = 0;  // ids are 1-based; 0 means "absent"

class VarInterner {
 public:
  // Returns the id for `name`, creating one on first sight.
  VarId intern(std::string_view name);
  // Returns the id for `name`, or kNoVar when never interned.
  [[nodiscard]] VarId lookup(std::string_view name) const;
  // Display name for an interned id (id must be valid).
  [[nodiscard]] const std::string& name(VarId id) const;
  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, VarId, Hash, std::equal_to<>> ids_;
  std::vector<std::string> names_;
};

// -------------------------------------------------------------------------
// Per-path environment (paper §III-B1): variable map + reachability.
//
// The variable map is a flat vector of (interned id, label) pairs kept
// sorted by id: forking a path copies one contiguous allocation. The
// interner is shared (by pointer) between the interpreter and every
// environment it forks, so the string-keyed convenience API used by
// tests and the DOT export keeps working on result environments.

class Env {
 public:
  // How this path's execution ended (drives statement skipping).
  enum class Status : std::uint8_t { kRunning, kReturned, kExited };

  using VarEntry = std::pair<VarId, Label>;

  Env() = default;

  // --- interned-id map (interpreter hot path) ---
  [[nodiscard]] Label get(VarId id) const;
  void set(VarId id, Label label);
  void erase(VarId id);
  [[nodiscard]] const std::vector<VarEntry>& entries() const { return map_; }
  void set_entries(std::vector<VarEntry> entries);

  // --- name-keyed convenience API (tests, exports, debugging) ---
  [[nodiscard]] Label get_map(const std::string& var) const;
  void add_map(const std::string& var, Label label);
  void remove_map(const std::string& var);
  // Materializes the map with display names (ordered). For inspection
  // only; the interpreter works on `entries()`.
  [[nodiscard]] std::map<std::string, Label> map() const;

  void bind_interner(std::shared_ptr<VarInterner> interner) {
    interner_ = std::move(interner);
  }
  [[nodiscard]] const std::shared_ptr<VarInterner>& interner() const {
    return interner_;
  }

  [[nodiscard]] Label cur() const { return cur_; }
  void set_cur(Label label) { cur_ = label; }

  [[nodiscard]] Status status() const { return status_; }
  void set_status(Status s) { status_ = s; }
  [[nodiscard]] bool running() const { return status_ == Status::kRunning; }

  [[nodiscard]] Label return_value() const { return return_value_; }
  void set_return_value(Label label) { return_value_ = label; }

  // Operand stack used by the interpreter's expression evaluation. A path
  // fork copies the stack, keeping partial results aligned with paths.
  [[nodiscard]] std::vector<Label>& stack() { return stack_; }
  [[nodiscard]] const std::vector<Label>& stack() const { return stack_; }

  // Saved caller variable maps for inlined user-function calls.
  [[nodiscard]] std::vector<std::vector<VarEntry>>& frames() {
    return frames_;
  }

  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  // Lazily creates a private interner for standalone Envs (tests).
  VarInterner& own_interner();

  std::vector<VarEntry> map_;  // sorted by VarId
  std::shared_ptr<VarInterner> interner_;
  Label cur_ = kNoLabel;  // kNoLabel == the paper's cur = null
  Status status_ = Status::kRunning;
  Label return_value_ = kNoLabel;
  std::vector<Label> stack_;
  std::vector<std::vector<VarEntry>> frames_;
};

// ER(G, Env, l) of §III-B2 ("Extend_Reachability"): conjoins the object
// `label` onto the environment's reachability constraint.
void extend_reachability(HeapGraph& graph, Env& env, Label label);

}  // namespace uchecker::core
