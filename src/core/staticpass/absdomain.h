// The static pass's abstract taint lattice, shared between the
// intraprocedural analyzer (staticpass.cc) and the inter-procedural
// function-summary layer (summaries.h).
//
//   kBottom < {kConst, kSafeAtom, kUntainted} < kFiles* < kTop
//
// The kFiles* kinds remember *how* a value derives from $_FILES, because
// the sanitizer idioms the recognizer understands are all shape-specific
// (pathinfo on the client name, explode on the client name, ...):
//   kFilesArray  $_FILES or $_FILES[field]
//   kFilesName   the client-controlled file name (or a name-preserving
//                transformation of it: trim, basename, $_FILES[f]['type'])
//   kFilesInfo   pathinfo() of the client name
//   kFilesParts  explode('.', name)
//   kFilesExt    the final extension of the client name (pathinfo
//                PATHINFO_EXTENSION or end(explode('.', name)))
//   kFilesData   derived from $_FILES with no recognized structure
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace uchecker::core::staticpass {

struct AbsVal {
  enum class Kind : std::uint8_t {
    kBottom,
    kConst,      // exactly this literal string
    kSafeAtom,   // number / bool / server-generated token; never "." + ext
    kUntainted,  // not derived from $_FILES, contents unknown
    kFilesArray,
    kFilesInfo,
    kFilesName,
    kFilesParts,
    kFilesExt,
    kFilesData,
    kTop,
  };

  Kind kind = Kind::kBottom;
  std::string field;  // $_FILES field; "" = whole array, "*" = unknown
  std::string text;   // kConst only
  bool lowered = false;
  bool basenamed = false;

  friend bool operator==(const AbsVal&, const AbsVal&) = default;
};

inline AbsVal make_absval(AbsVal::Kind k) {
  return AbsVal{k, "", "", false, false};
}
inline AbsVal bottom() { return make_absval(AbsVal::Kind::kBottom); }
inline AbsVal top() { return make_absval(AbsVal::Kind::kTop); }
inline AbsVal safe_atom() { return make_absval(AbsVal::Kind::kSafeAtom); }
inline AbsVal untainted() { return make_absval(AbsVal::Kind::kUntainted); }
inline AbsVal constant(std::string_view text) {
  AbsVal v = make_absval(AbsVal::Kind::kConst);
  v.text = text;
  return v;
}
inline AbsVal files(AbsVal::Kind k, std::string_view field,
                    bool lowered = false, bool basenamed = false) {
  return AbsVal{k, std::string(field), "", lowered, basenamed};
}

inline bool is_files(AbsVal::Kind k) {
  return k >= AbsVal::Kind::kFilesArray && k <= AbsVal::Kind::kFilesData;
}
inline bool is_clean(AbsVal::Kind k) {
  return k == AbsVal::Kind::kConst || k == AbsVal::Kind::kSafeAtom ||
         k == AbsVal::Kind::kUntainted;
}

inline AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == AbsVal::Kind::kBottom) return b;
  if (b.kind == AbsVal::Kind::kBottom) return a;
  if (a == b) return a;
  if (is_clean(a.kind) && is_clean(b.kind)) return untainted();
  if (a.kind == b.kind && is_files(a.kind)) {
    AbsVal r = a;
    if (a.field != b.field) r.field = "*";
    r.lowered = a.lowered && b.lowered;
    r.basenamed = a.basenamed && b.basenamed;
    return r;
  }
  return top();
}

// Stable one-line rendering used in summary memo keys and test output.
inline std::string absval_key(const AbsVal& v) {
  std::string out;
  out += static_cast<char>('a' + static_cast<int>(v.kind));
  out += v.lowered ? 'L' : '-';
  out += v.basenamed ? 'B' : '-';
  out += '|';
  out += v.field;
  out += '|';
  out += v.text;
  return out;
}

}  // namespace uchecker::core::staticpass
