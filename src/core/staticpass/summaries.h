// Inter-procedural function summaries for the static pass.
//
// The intraprocedural analyzer (staticpass.cc) historically treated every
// call into a user-defined function as opaque: eval_call returned top()
// and any callee that could reach a sink in the call graph forced the
// whole root onto the symbolic path. This module closes that hole with
// two cooperating layers:
//
//  1. Context-insensitive FunctionFacts, computed once per scan by
//     walking the user-function call graph bottom-up (iterative Tarjan
//     SCC condensation; the per-SCC bit fixpoint is trivially reached in
//     one union pass because reachability bits are uniform within an
//     SCC). The facts record whether a function lexically contains a
//     sink, transitively reaches one, reads $_FILES/superglobals, or
//     "escapes" the analysis (dynamic call, eval/extract, callback
//     builtin, include, closure) — the blind spots UC108 reports.
//
//  2. Context-keyed SummaryInstances: a memoized run of the body
//     analyzer with the *actual* abstract argument values of one call
//     site bound to the parameters. Instantiating a summary is
//     abstractly identical to inlining the callee at the call site, so
//     every guard-recognition and suffix rule of the intraprocedural
//     pass (already crosschecked against the symbolic engine) carries
//     over unchanged. Functions in a recursive SCC conservatively
//     degrade to top — matching the symbolic interpreter, which replaces
//     recursive calls with a fresh unknown symbol.
//
// Reachability here deliberately follows only calls the symbolic
// interpreter actually inlines (direct calls, method/static calls
// resolved by name) — not the call graph's callback-registration edges,
// which the interpreter never executes. That makes "summary-proven
// sink-free" an over-approximation of what interp can find, so pruning
// a root whose whole transitive callee set is sink-free is sound; the
// crosscheck oracle gates it at runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/callgraph/callgraph.h"
#include "core/sinks.h"
#include "core/staticpass/absdomain.h"
#include "core/staticpass/staticpass.h"
#include "support/source.h"

namespace uchecker::core::staticpass {

// Builtins that invoke a callback or otherwise escape static analysis
// (call_user_func, array_map, eval, extract, ...). Shared by the
// analyzer's bail scan, the UC108 escaped-call walk, and the summary
// fact builder so the three can never drift apart.
[[nodiscard]] const std::set<std::string, std::less<>>& callback_builtins();

// Context-insensitive facts about one user-defined function, valid at
// every call site. Computed bottom-up over the SCC condensation.
struct FunctionFacts {
  std::string name;     // lowercase key in Program::functions
  int scc = -1;         // condensation index; callees never have a larger one
  bool recursive = false;       // member of a nontrivial SCC or self-loop
  bool has_local_sink = false;  // own body contains a lexical sink call
  bool reaches_sink = false;    // transitively, over interp-inlinable calls
  bool reads_files = false;     // $_FILES / superglobal read, transitively
  bool escapes = false;  // dynamic call, callback builtin (call_user_func,
                         // array_map, eval, extract, ...), include or
                         // closure anywhere in the transitive body set
  // A witness call chain name -> ... -> sink-containing function, for
  // UC107 evidence. Empty unless reaches_sink.
  std::vector<std::string> sink_chain;
};

// One memoized instantiation of a function at an abstract argument tuple.
struct SummaryInstance {
  AbsVal return_value;       // join over the body's return expressions
  bool analyzable = false;   // body + callees fully understood (no bail)
  bool all_sinks_safe = false;  // every reachable sink classified prunable
  std::string reason;        // bail reason or first unsafe sink's reason
  std::vector<SinkSummary> sinks;  // classification of the body's sinks
};

struct SummaryStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

class SummaryStore {
 public:
  SummaryStore(const Program& program, const CallGraph& graph,
               const SourceManager& sources, const SinkRegistry& sinks,
               const StaticPassOptions& options);

  // Null when `lower_name` is not a user-defined function.
  [[nodiscard]] const FunctionFacts* facts(std::string_view lower_name) const;

  // Conservative reachability query replacing the analyzer's call-graph
  // walk: true when the function reaches a sink over interp-inlinable
  // calls OR escapes the analysis (an escaped body might do anything).
  [[nodiscard]] bool function_reaches_sink(std::string_view lower_name) const;

  // Memoized context-keyed instantiation. Recursive or escaped functions
  // yield a conservative instance (return top, not analyzable).
  const SummaryInstance& instantiate(std::string_view lower_name,
                                     const std::vector<AbsVal>& args);

  [[nodiscard]] SummaryStats& stats() { return stats_; }
  [[nodiscard]] const SummaryStats& stats() const { return stats_; }

  // SCCs of the user-function call graph in bottom-up (callee-first)
  // emission order; members sorted by name. Exposed for tests.
  [[nodiscard]] const std::vector<std::vector<std::string>>& sccs() const {
    return sccs_;
  }

 private:
  void build();

  const Program& program_;
  const CallGraph& graph_;
  const SourceManager& sources_;
  const SinkRegistry& sinks_;
  const StaticPassOptions& options_;

  std::map<std::string, FunctionFacts, std::less<>> facts_;
  std::vector<std::vector<std::string>> sccs_;
  std::map<std::string, SummaryInstance, std::less<>> instances_;
  std::set<std::string, std::less<>> in_progress_;
  SummaryStats stats_;
};

// The workhorse behind SummaryStore::instantiate, implemented in
// staticpass.cc because it reuses the intraprocedural Analyzer: analyzes
// one function body with the given abstract parameter values (missing
// trailing arguments fall back to the declared defaults, then top).
[[nodiscard]] SummaryInstance analyze_function_body(
    const Program& program, const CallGraph& graph,
    const phpast::FunctionDecl& fn, const std::vector<AbsVal>& args,
    const SourceManager& sources, const SinkRegistry& sinks,
    const StaticPassOptions& options, SummaryStore* store);

}  // namespace uchecker::core::staticpass
