#include "core/staticpass/staticpass.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <utility>

#include "core/staticpass/absdomain.h"
#include "core/staticpass/summaries.h"
#include "phpast/ast.h"
#include "phpast/dataflow.h"
#include "phpast/visitor.h"

namespace uchecker::core::staticpass {
namespace {

using phpast::ArrayAccess;
using phpast::ArrayItem;
using phpast::ArrayLit;
using phpast::Assign;
using phpast::Binary;
using phpast::BinaryOp;
using phpast::Call;
using phpast::Cast;
using phpast::CastKind;
using phpast::ConstFetch;
using phpast::Expr;
using phpast::Foreach;
using phpast::FunctionDecl;
using phpast::If;
using phpast::IntLit;
using phpast::MethodCall;
using phpast::New;
using phpast::Node;
using phpast::NodeKind;
using phpast::Return;
using phpast::StaticCall;
using phpast::Stmt;
using phpast::StmtPtr;
using phpast::StringLit;
using phpast::Switch;
using phpast::Ternary;
using phpast::TryCatch;
using phpast::Unary;
using phpast::UnaryOp;
using phpast::VarBinding;
using phpast::Variable;

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}


// The AbsVal taint lattice lives in core/staticpass/absdomain.h so the
// function-summary layer (summaries.h) shares it.
using Kind = AbsVal::Kind;
using Env = std::map<std::string, AbsVal, std::less<>>;

// -------------------------------------------------------------------------
// Destination suffix abstraction (for the vulnerability model's C2: "can
// the destination end with an executable extension?").
struct Suffix {
  enum class Kind : std::uint8_t {
    kLit,       // suffix is one of `texts`; invariant: each text either is
                // the whole string (whole == true) or contains a '.'
    kSafeAtom,  // string ends with a non-empty server token (digits, hash)
    kName,      // suffix is the client-controlled file name
    kExtVar,    // suffix is the guarded extension variable + `trailing`
    kUnknown,
  };

  Kind kind = Kind::kUnknown;
  std::vector<std::string> texts;  // kLit
  bool whole = false;              // kLit: literal is the entire string
  std::string field;               // kName / kExtVar
  bool lowered = false;
  bool basenamed = false;
  std::string trailing;  // kExtVar: constant text appended after the var

  friend bool operator==(const Suffix&, const Suffix&) = default;
};

Suffix unknown_suffix() { return Suffix{}; }

Suffix lit_suffix(std::string_view text, bool whole) {
  Suffix s;
  s.kind = Suffix::Kind::kLit;
  s.texts.push_back(std::string(text));
  s.whole = whole;
  return s;
}

Suffix suffix_join(const Suffix& a, const Suffix& b) {
  if (a == b) return a;
  if (a.kind == Suffix::Kind::kLit && b.kind == Suffix::Kind::kLit) {
    const bool all_whole = a.whole && b.whole;
    auto all_dotted = [](const std::vector<std::string>& ts) {
      return std::all_of(ts.begin(), ts.end(), [](const std::string& t) {
        return t.find('.') != std::string::npos;
      });
    };
    if (all_whole || (all_dotted(a.texts) && all_dotted(b.texts))) {
      Suffix r = a;
      r.whole = all_whole;
      for (const std::string& t : b.texts) {
        if (std::find(r.texts.begin(), r.texts.end(), t) == r.texts.end()) {
          r.texts.push_back(t);
        }
      }
      return r;
    }
    return unknown_suffix();
  }
  if (a.kind == b.kind &&
      (a.kind == Suffix::Kind::kName || a.kind == Suffix::Kind::kExtVar) &&
      a.field == b.field && a.trailing == b.trailing) {
    Suffix r = a;
    r.lowered = a.lowered && b.lowered;
    r.basenamed = a.basenamed && b.basenamed;
    return r;
  }
  if (a.kind == Suffix::Kind::kSafeAtom && b.kind == Suffix::Kind::kSafeAtom) {
    Suffix r;
    r.kind = Suffix::Kind::kSafeAtom;
    return r;
  }
  return unknown_suffix();
}

// -------------------------------------------------------------------------
// Guard facts: conditions known to hold at a sink site.
struct Fact {
  const Expr* cond = nullptr;  // null => switch membership fact
  bool polarity = true;        // cond evaluated to this at the sink
  const Expr* subject = nullptr;          // switch facts only
  std::vector<std::string> case_lits;     // switch facts only
};

struct SinkSite {
  const Call* call = nullptr;
  std::vector<Fact> facts;
};

// Extension constraints extracted from one condition, for one $_FILES
// field. `allowed_*`: if the condition has that truth value, the
// extension is confined to the set. `excluded_*`: the extension is known
// not to be in the set (a blacklist — never sufficient for pruning).
struct CondInfo {
  std::optional<std::vector<std::string>> allowed_true;
  std::optional<std::vector<std::string>> excluded_true;
  std::optional<std::vector<std::string>> allowed_false;
  std::optional<std::vector<std::string>> excluded_false;
  bool unlowered = false;
};

std::optional<std::vector<std::string>> merge_union(
    const std::optional<std::vector<std::string>>& a,
    const std::optional<std::vector<std::string>>& b) {
  if (!a.has_value()) return b;
  if (!b.has_value()) return a;
  std::vector<std::string> out = *a;
  for (const std::string& s : *b) {
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  return out;
}

std::optional<std::vector<std::string>> merge_intersect(
    const std::optional<std::vector<std::string>>& a,
    const std::optional<std::vector<std::string>>& b) {
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  std::vector<std::string> out;
  for (const std::string& s : *a) {
    if (std::find(b->begin(), b->end(), s) != b->end()) out.push_back(s);
  }
  return out;
}

// Aggregated guard evidence for one sink.
struct GuardEval {
  std::optional<std::vector<std::string>> allowed;
  std::vector<std::string> excluded;
  bool any = false;        // at least one extension-relevant fact
  bool unlowered = false;  // a contributing guard compares unlowered input
  const Expr* allowed_cond = nullptr;   // for UC103 location
  const Expr* excluded_cond = nullptr;  // for UC102 location
};

// -------------------------------------------------------------------------

const std::set<std::string, std::less<>>& terminator_builtins() {
  // Mirrors the symbolic interpreter's is_terminator() list.
  static const std::set<std::string, std::less<>> kSet{
      "wp_die",           "wp_send_json",         "wp_send_json_error",
      "wp_send_json_success", "wp_redirect_and_exit", "drupal_exit",
  };
  return kSet;
}

bool is_superglobal(std::string_view name) {
  return name == "_POST" || name == "_GET" || name == "_REQUEST" ||
         name == "_COOKIE" || name == "_SERVER" || name == "_SESSION" ||
         name == "_ENV" || name == "GLOBALS";
}

class Analyzer {
 public:
  // Root mode: analyzes one locality root.
  Analyzer(const Program& program, const CallGraph& graph,
           const AnalysisRoot& root, const SourceManager& sources,
           const SinkRegistry& sinks, const StaticPassOptions& options)
      : program_(program),
        graph_(graph),
        root_(&root),
        sources_(sources),
        sinks_(sinks),
        summaries_(options.summaries) {
    for (const std::string& e : options.executable_extensions) {
      exec_.insert(lower(e));
    }
  }

  // Summary mode: analyzes one function body under explicit abstract
  // parameter values (the workhorse of SummaryStore::instantiate).
  Analyzer(const Program& program, const CallGraph& graph,
           const FunctionDecl& fn, const std::vector<AbsVal>& args,
           const SourceManager& sources, const SinkRegistry& sinks,
           const StaticPassOptions& options, SummaryStore* store)
      : program_(program),
        graph_(graph),
        root_(nullptr),
        summary_fn_(&fn),
        summary_args_(&args),
        sources_(sources),
        sinks_(sinks),
        summaries_(store) {
    for (const std::string& e : options.executable_extensions) {
      exec_.insert(lower(e));
    }
  }

  RootAnalysis run();
  SummaryInstance run_summary();

 private:
  // --- taint lattice -----------------------------------------------------
  AbsVal transfer(const VarBinding& b, const Env& env);
  AbsVal eval(const Expr& e, const Env& env);
  AbsVal eval_var(std::string_view name, const Env& env);
  AbsVal eval_array_access(const ArrayAccess& aa, const Env& env);
  AbsVal eval_call(const Call& call, const Env& env);
  AbsVal concat_val(const AbsVal& lhs, const AbsVal& rhs);

  // --- destination suffixes ----------------------------------------------
  Suffix suffix_of(const Expr& e, std::set<std::string, std::less<>>& visiting,
                   int depth);
  Suffix var_suffix(std::string_view name,
                    std::set<std::string, std::less<>>& visiting,
                    int depth);
  Suffix absval_to_suffix(const AbsVal& v) const;

  // --- guard recognition -------------------------------------------------
  void scan_stmts(Span<const StmtPtr> stmts);
  void scan_stmt(const Stmt& s);
  void collect_sinks_expr(const Expr& e);
  void collect_sinks_children(const Stmt& s);
  bool always_exits(Span<const StmtPtr> stmts) const;
  bool stmt_exits(const Stmt& s) const;

  CondInfo cond_info(const Expr& cond, const std::string& field);
  std::optional<std::vector<std::string>> literal_set(const Expr& e);
  GuardEval guard_eval(const SinkSite& site, const std::string& field);

  // --- classification ----------------------------------------------------
  SinkSummary classify_sink(const SinkSite& site);
  bool name_words_safe(const std::vector<std::string>& words) const;
  bool extvar_words_safe(const std::vector<std::string>& words,
                         const std::string& trailing) const;

  // --- escape hatches ----------------------------------------------------
  std::string find_bail(Span<const StmtPtr> stmts);
  bool function_reaches_sink(std::string_view lower_name);
  bool method_reaches_sink(const std::string& lower_method);
  // Summary-based vetting of one resolved call site: returns the empty
  // string when the callee provably cannot produce an unsafe sink with
  // these arguments, a bail reason otherwise (emitting UC107 on the way).
  std::string vet_call_site(std::string_view callee, phpast::ExprList args,
                            SourceLoc loc);
  // UC108 + escaped-call accounting over the whole body (single walk,
  // unlike find_bail which stops at the first bail).
  void scan_escapes(Span<const StmtPtr> stmts);
  // Shared solve pipeline: bindings -> params -> fixpoint env.
  void solve_body(Span<const StmtPtr> body);
  AbsVal collect_return_value(Span<const StmtPtr> body);

  // --- lints -------------------------------------------------------------
  void add_lint(const char* rule, Severity severity, SourceLoc loc,
                std::string message);
  std::string line_evidence(SourceLoc loc) const;

  const Program& program_;
  const CallGraph& graph_;
  const AnalysisRoot* root_;                       // root mode
  const FunctionDecl* summary_fn_ = nullptr;       // summary mode
  const std::vector<AbsVal>* summary_args_ = nullptr;
  const SourceManager& sources_;
  const SinkRegistry& sinks_;
  SummaryStore* summaries_ = nullptr;
  std::set<std::string> exec_;
  bool summary_used_ = false;   // a prune decision leaned on the store
  std::size_t escaped_calls_ = 0;

  std::vector<VarBinding> bindings_;
  std::map<std::string, std::vector<const VarBinding*>, std::less<>>
      bindings_by_name_;
  std::set<std::string, std::less<>> bound_names_;
  std::map<std::string, AbsVal, std::less<>> param_values_;
  bool caller_scope_ = false;
  Env env_;

  std::vector<Fact> facts_;
  std::vector<SinkSite> sink_sites_;

  std::map<std::string, NodeId, std::less<>> function_nodes_;
  std::map<NodeId, bool> reach_memo_;

  std::set<std::pair<std::string, std::string>> lint_keys_;
  std::vector<std::pair<SourceLoc, LintFinding>> lints_;
};

// --- taint lattice -------------------------------------------------------

AbsVal Analyzer::transfer(const VarBinding& b, const Env& env) {
  switch (b.kind) {
    case VarBinding::Kind::kAssign: {
      if (b.value == nullptr) {
        auto it = param_values_.find(b.name);
        return it == param_values_.end() ? top() : it->second;
      }
      return eval(*b.value, env);
    }
    case VarBinding::Kind::kCompound: {
      if (b.compound_op != BinaryOp::kConcat) return safe_atom();
      auto it = env.find(b.name);
      AbsVal cur = it == env.end() ? bottom() : it->second;
      AbsVal rhs = b.value != nullptr ? eval(*b.value, env) : top();
      return concat_val(cur, rhs);
    }
    case VarBinding::Kind::kForeachValue: {
      AbsVal it = b.value != nullptr ? eval(*b.value, env) : top();
      switch (it.kind) {
        case Kind::kFilesArray:
          return it.field.empty() ? files(Kind::kFilesArray, "*")
                                  : files(Kind::kFilesName, it.field);
        case Kind::kFilesInfo:
        case Kind::kFilesParts:
          return files(Kind::kFilesName, it.field, it.lowered);
        case Kind::kConst:
        case Kind::kSafeAtom:
        case Kind::kUntainted:
          return untainted();
        case Kind::kBottom:
          return bottom();
        case Kind::kFilesName:
        case Kind::kFilesExt:
        case Kind::kFilesData:
          return it;
        default:
          return top();
      }
    }
    case VarBinding::Kind::kForeachKey: {
      AbsVal it = b.value != nullptr ? eval(*b.value, env) : top();
      if (it.kind == Kind::kBottom) return bottom();
      // Keys of $_FILES are form field names; PHP mangles '.' to '_' in
      // them, so they cannot carry an extension.
      if (is_clean(it.kind) ||
          (it.kind == Kind::kFilesArray && it.field.empty())) {
        return untainted();
      }
      return top();
    }
    case VarBinding::Kind::kListElement: {
      AbsVal it = b.value != nullptr ? eval(*b.value, env) : top();
      if (it.kind == Kind::kBottom) return bottom();
      if (it.kind == Kind::kFilesParts) {
        return files(Kind::kFilesName, it.field, it.lowered);
      }
      if (is_files(it.kind)) return files(Kind::kFilesData, it.field);
      if (is_clean(it.kind)) return untainted();
      return top();
    }
    case VarBinding::Kind::kOpaque:
      return top();
  }
  return top();
}

AbsVal Analyzer::eval_var(std::string_view name, const Env& env) {
  if (name == "_FILES") return files(Kind::kFilesArray, "");
  if (is_superglobal(name)) return top();
  if (caller_scope_) return top();
  if (bound_names_.count(name) != 0) {
    auto it = env.find(name);
    return it == env.end() ? bottom() : it->second;
  }
  return top();
}

AbsVal Analyzer::eval_array_access(const ArrayAccess& aa, const Env& env) {
  AbsVal base = eval(*aa.base, env);
  const StringLit* lit =
      aa.index != nullptr && aa.index->kind() == NodeKind::kStringLit
          ? static_cast<const StringLit*>(aa.index)
          : nullptr;
  switch (base.kind) {
    case Kind::kBottom:
      return bottom();
    case Kind::kFilesArray: {
      if (base.field.empty()) {
        return files(Kind::kFilesArray, lit != nullptr ? lit->value : "*");
      }
      const std::string key = lit != nullptr ? lower(lit->value) : "";
      if (lit != nullptr &&
          (key == "tmp_name" || key == "size" || key == "error")) {
        return files(Kind::kFilesData, base.field);
      }
      return files(Kind::kFilesName, base.field);
    }
    case Kind::kFilesInfo: {
      if (lit != nullptr && lower(lit->value) == "extension") {
        return files(Kind::kFilesExt, base.field, base.lowered);
      }
      const bool base_comp =
          lit != nullptr &&
          (lower(lit->value) == "basename" || lower(lit->value) == "filename");
      return files(Kind::kFilesName, base.field, base.lowered,
                   base.basenamed || base_comp);
    }
    case Kind::kFilesParts: {
      if (aa.index != nullptr && aa.index->kind() == NodeKind::kIntLit) {
        add_lint("UC104", Severity::kWarning, aa.loc(),
                 "extension taken from a fixed explode('.') segment; "
                 "double extensions like name.php.jpg bypass this check");
      }
      return files(Kind::kFilesName, base.field, base.lowered);
    }
    case Kind::kConst:
    case Kind::kSafeAtom:
    case Kind::kUntainted:
      return untainted();
    case Kind::kFilesName:
    case Kind::kFilesExt:
    case Kind::kFilesData:
      return files(Kind::kFilesData, base.field);
    default:
      return top();
  }
}

AbsVal Analyzer::concat_val(const AbsVal& lhs, const AbsVal& rhs) {
  if (lhs.kind == Kind::kBottom || rhs.kind == Kind::kBottom) return bottom();
  if (lhs.kind == Kind::kConst && rhs.kind == Kind::kConst) {
    return constant(lhs.text + rhs.text);
  }
  if (is_clean(lhs.kind) && is_clean(rhs.kind)) return untainted();
  if (is_clean(lhs.kind) &&
      (rhs.kind == Kind::kFilesName || rhs.kind == Kind::kFilesExt)) {
    return rhs;  // prefixing preserves the suffix structure
  }
  if (is_files(lhs.kind) || is_files(rhs.kind)) {
    std::string field = "*";
    if (is_files(lhs.kind) && !is_files(rhs.kind)) field = lhs.field;
    if (is_files(rhs.kind) && !is_files(lhs.kind)) field = rhs.field;
    if (is_files(lhs.kind) && is_files(rhs.kind) && lhs.field == rhs.field) {
      field = lhs.field;
    }
    return files(Kind::kFilesData, field);
  }
  return top();
}

AbsVal Analyzer::eval_call(const Call& call, const Env& env) {
  if (call.is_dynamic()) return top();
  const std::string_view name = call.callee;
  // User-defined functions resolve by summary instantiation instead of
  // degrading to top(). They are checked before the builtin models to
  // match the interpreter's resolution order (sink registry, then user
  // functions, then builtins).
  if (summaries_ != nullptr && !sinks_.is_sink(name) &&
      program_.functions.count(name) != 0) {
    std::vector<AbsVal> vals;
    vals.reserve(call.args.size());
    for (const Expr* a : call.args) {
      vals.push_back(a != nullptr ? eval(*a, env) : top());
    }
    return summaries_->instantiate(name, vals).return_value;
  }
  auto arg = [&](std::size_t i) -> AbsVal {
    if (i >= call.args.size() || call.args[i] == nullptr) return top();
    return eval(*call.args[i], env);
  };

  if (name == "strtolower" || name == "mb_strtolower") {
    AbsVal v = arg(0);
    if (v.kind == Kind::kConst) return constant(lower(v.text));
    if (is_files(v.kind)) v.lowered = true;
    return v;
  }
  if (name == "strtoupper" || name == "mb_strtoupper") {
    AbsVal v = arg(0);
    if (v.kind == Kind::kConst) {
      for (char& c : v.text) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      return v;
    }
    if (is_files(v.kind)) v.lowered = false;
    return v;
  }
  if (name == "trim" || name == "ltrim" || name == "rtrim" ||
      name == "stripslashes" || name == "urldecode" || name == "rawurldecode") {
    AbsVal v = arg(0);
    if (v.kind == Kind::kConst) return untainted();  // text may change
    return v;
  }
  if (name == "basename" || name == "wp_basename" ||
      name == "sanitize_file_name") {
    AbsVal v = arg(0);
    if (v.kind == Kind::kFilesName) {
      v.basenamed = true;
      return v;
    }
    if (v.kind == Kind::kFilesExt) return v;
    if (is_files(v.kind)) return files(Kind::kFilesData, v.field);
    if (is_clean(v.kind)) return untainted();
    return v.kind == Kind::kBottom ? bottom() : top();
  }
  if (name == "wp_unique_filename") {
    AbsVal v = arg(1);
    if (v.kind == Kind::kFilesName) return v;  // keeps the extension
    if (is_files(v.kind)) return files(Kind::kFilesData, v.field);
    return is_clean(v.kind) ? untainted() : top();
  }
  if (name == "pathinfo") {
    AbsVal v = arg(0);
    if (v.kind == Kind::kFilesName) {
      if (call.args.size() >= 2 && call.args[1] != nullptr &&
          call.args[1]->kind() == NodeKind::kConstFetch) {
        const std::string_view flag =
            static_cast<const ConstFetch&>(*call.args[1]).name;
        if (flag == "PATHINFO_EXTENSION") {
          return files(Kind::kFilesExt, v.field, v.lowered);
        }
        if (flag == "PATHINFO_BASENAME" || flag == "PATHINFO_FILENAME") {
          return files(Kind::kFilesName, v.field, v.lowered, true);
        }
        return files(Kind::kFilesName, v.field, v.lowered);
      }
      if (call.args.size() >= 2) return files(Kind::kFilesName, v.field);
      return files(Kind::kFilesInfo, v.field, v.lowered);
    }
    if (is_files(v.kind)) return files(Kind::kFilesData, v.field);
    if (is_clean(v.kind)) return untainted();
    return v.kind == Kind::kBottom ? bottom() : top();
  }
  if (name == "explode") {
    AbsVal v = arg(1);
    const bool dot_sep = !call.args.empty() && call.args[0] != nullptr &&
                         call.args[0]->kind() == NodeKind::kStringLit &&
                         static_cast<const StringLit&>(*call.args[0]).value ==
                             ".";
    if (v.kind == Kind::kFilesName && dot_sep) {
      return files(Kind::kFilesParts, v.field, v.lowered);
    }
    if (is_files(v.kind)) return files(Kind::kFilesData, v.field);
    if (is_clean(v.kind)) return untainted();
    return v.kind == Kind::kBottom ? bottom() : top();
  }
  if (name == "end" || name == "array_pop") {
    AbsVal v = arg(0);
    if (v.kind == Kind::kFilesParts) {
      return files(Kind::kFilesExt, v.field, v.lowered);
    }
    if (is_files(v.kind)) return files(Kind::kFilesData, v.field);
    if (is_clean(v.kind)) return untainted();
    return v.kind == Kind::kBottom ? bottom() : top();
  }
  if (name == "current" || name == "reset" || name == "array_shift") {
    AbsVal v = arg(0);
    if (v.kind == Kind::kFilesParts) {
      return files(Kind::kFilesName, v.field, v.lowered);
    }
    if (is_files(v.kind)) return files(Kind::kFilesData, v.field);
    if (is_clean(v.kind)) return untainted();
    return v.kind == Kind::kBottom ? bottom() : top();
  }
  if (name == "substr") {
    AbsVal v = arg(0);
    bool negative_start = false;
    if (call.args.size() == 2 && call.args[1] != nullptr) {
      const Expr& start = *call.args[1];
      if (start.kind() == NodeKind::kUnary &&
          static_cast<const Unary&>(start).op == UnaryOp::kMinus) {
        negative_start = true;
      } else if (start.kind() == NodeKind::kIntLit &&
                 static_cast<const IntLit&>(start).value < 0) {
        negative_start = true;
      }
    }
    if (v.kind == Kind::kFilesName && negative_start) return v;
    if (is_files(v.kind)) return files(Kind::kFilesData, v.field);
    if (is_clean(v.kind)) return untainted();
    return v.kind == Kind::kBottom ? bottom() : top();
  }
  if (name == "md5" || name == "sha1" || name == "crc32" || name == "md5_file" ||
      name == "sha1_file" || name == "uniqid" || name == "time" ||
      name == "rand" || name == "mt_rand" || name == "random_int" ||
      name == "intval" || name == "floatval" || name == "count" ||
      name == "sizeof" || name == "strlen" || name == "abs" ||
      name == "floor" || name == "ceil" || name == "round" ||
      name == "filesize" || name == "getmypid" || name == "microtime") {
    return safe_atom();
  }
  if (name == "date") {
    if (!call.args.empty() && call.args[0] != nullptr &&
        call.args[0]->kind() == NodeKind::kStringLit &&
        static_cast<const StringLit&>(*call.args[0]).value.find('.') ==
            std::string::npos) {
      return safe_atom();
    }
    return untainted();
  }
  if (name == "in_array" || name == "array_key_exists" ||
      name == "file_exists" || name == "is_uploaded_file" ||
      name == "is_dir" || name == "is_file" || name == "is_writable" ||
      name == "function_exists" || name == "preg_match" ||
      name == "strpos" || name == "stripos" || name == "strcmp" ||
      name == "strcasecmp" || name == "move_uploaded_file" ||
      name == "copy" || name == "rename" || name == "unlink" ||
      name == "mkdir" || name == "chmod" || name == "file_put_contents" ||
      name == "file_put_content" || name == "error_log" ||
      name == "wp_mkdir_p" || name == "checked" || name == "current_user_can") {
    return safe_atom();
  }
  return top();
}

AbsVal Analyzer::eval(const Expr& e, const Env& env) {
  switch (e.kind()) {
    case NodeKind::kStringLit:
      return constant(static_cast<const StringLit&>(e).value);
    case NodeKind::kIntLit:
    case NodeKind::kFloatLit:
    case NodeKind::kBoolLit:
    case NodeKind::kNullLit:
      return safe_atom();
    case NodeKind::kConstFetch:
      return untainted();
    case NodeKind::kVariable:
      return eval_var(static_cast<const Variable&>(e).name, env);
    case NodeKind::kArrayAccess:
      return eval_array_access(static_cast<const ArrayAccess&>(e), env);
    case NodeKind::kBinary: {
      const auto& bin = static_cast<const Binary&>(e);
      if (bin.op == BinaryOp::kConcat) {
        return concat_val(eval(*bin.lhs, env), eval(*bin.rhs, env));
      }
      if (bin.op == BinaryOp::kCoalesce) {
        return join(eval(*bin.lhs, env), eval(*bin.rhs, env));
      }
      return safe_atom();  // arithmetic / comparison / boolean results
    }
    case NodeKind::kUnary: {
      const auto& un = static_cast<const Unary&>(e);
      if (un.op == UnaryOp::kErrorSuppress) return eval(*un.operand, env);
      return safe_atom();
    }
    case NodeKind::kAssign: {
      const auto& as = static_cast<const Assign&>(e);
      return as.value != nullptr ? eval(*as.value, env) : top();
    }
    case NodeKind::kTernary: {
      const auto& t = static_cast<const Ternary&>(e);
      AbsVal then_v = t.then_expr != nullptr ? eval(*t.then_expr, env)
                                             : eval(*t.cond, env);
      return join(then_v, eval(*t.else_expr, env));
    }
    case NodeKind::kCast: {
      const auto& c = static_cast<const Cast&>(e);
      if (c.cast == CastKind::kInt || c.cast == CastKind::kFloat ||
          c.cast == CastKind::kBool) {
        return safe_atom();
      }
      return eval(*c.operand, env);
    }
    case NodeKind::kCall:
      return eval_call(static_cast<const Call&>(e), env);
    case NodeKind::kIsset:
    case NodeKind::kEmpty:
    case NodeKind::kExitExpr:
      return safe_atom();
    case NodeKind::kArrayLit:
      return untainted();
    default:
      return top();  // method/static calls, new, closures, includes, ...
  }
}

// --- destination suffixes ------------------------------------------------

Suffix Analyzer::absval_to_suffix(const AbsVal& v) const {
  switch (v.kind) {
    case Kind::kConst:
      return lit_suffix(v.text, true);
    case Kind::kSafeAtom: {
      Suffix s;
      s.kind = Suffix::Kind::kSafeAtom;
      return s;
    }
    case Kind::kFilesName: {
      if (v.field == "*") return unknown_suffix();
      Suffix s;
      s.kind = Suffix::Kind::kName;
      s.field = v.field;
      s.lowered = v.lowered;
      s.basenamed = v.basenamed;
      return s;
    }
    case Kind::kFilesExt: {
      if (v.field == "*") return unknown_suffix();
      Suffix s;
      s.kind = Suffix::Kind::kExtVar;
      s.field = v.field;
      s.lowered = v.lowered;
      return s;
    }
    default:
      return unknown_suffix();
  }
}

Suffix Analyzer::var_suffix(std::string_view name,
                            std::set<std::string, std::less<>>& visiting,
                            int depth) {
  if (depth > 8 || visiting.count(name) != 0 ||
      bound_names_.count(name) == 0) {
    auto it = env_.find(name);
    return it == env_.end() ? unknown_suffix() : absval_to_suffix(it->second);
  }
  const auto bit = bindings_by_name_.find(name);
  if (bit == bindings_by_name_.end()) return unknown_suffix();
  visiting.insert(std::string(name));
  std::optional<Suffix> acc;
  bool syntactic = true;
  for (const VarBinding* b : bit->second) {
    Suffix s;
    if (b->kind == VarBinding::Kind::kAssign && b->value != nullptr) {
      s = suffix_of(*b->value, visiting, depth + 1);
    } else if (b->kind == VarBinding::Kind::kCompound &&
               b->compound_op == BinaryOp::kConcat && b->value != nullptr) {
      s = suffix_of(*b->value, visiting, depth + 1);
    } else {
      syntactic = false;
      break;
    }
    acc = acc.has_value() ? suffix_join(*acc, s) : s;
  }
  visiting.erase(std::string(name));
  if (!syntactic || !acc.has_value()) {
    auto it = env_.find(name);
    return it == env_.end() ? unknown_suffix() : absval_to_suffix(it->second);
  }
  return *acc;
}

Suffix Analyzer::suffix_of(const Expr& e,
                           std::set<std::string, std::less<>>& visiting,
                           int depth) {
  if (depth > 32) return unknown_suffix();
  switch (e.kind()) {
    case NodeKind::kStringLit:
      return lit_suffix(static_cast<const StringLit&>(e).value, true);
    case NodeKind::kIntLit:
    case NodeKind::kFloatLit: {
      Suffix s;
      s.kind = Suffix::Kind::kSafeAtom;
      return s;
    }
    case NodeKind::kVariable:
      return var_suffix(static_cast<const Variable&>(e).name, visiting, depth);
    case NodeKind::kBinary: {
      const auto& bin = static_cast<const Binary&>(e);
      if (bin.op != BinaryOp::kConcat) break;
      Suffix rhs = suffix_of(*bin.rhs, visiting, depth + 1);
      switch (rhs.kind) {
        case Suffix::Kind::kLit: {
          // A dotted literal tail fully determines the extension.
          const bool dotted = std::all_of(
              rhs.texts.begin(), rhs.texts.end(), [](const std::string& t) {
                return t.find('.') != std::string::npos;
              });
          if (dotted) {
            Suffix r = rhs;
            r.whole = false;
            return r;
          }
          // Dot-free literal tail: the extension depends on the prefix.
          if (rhs.texts.size() != 1) return unknown_suffix();
          const std::string& tail = rhs.texts[0];
          if (tail.empty()) return suffix_of(*bin.lhs, visiting, depth + 1);
          Suffix lhs = suffix_of(*bin.lhs, visiting, depth + 1);
          switch (lhs.kind) {
            case Suffix::Kind::kLit: {
              Suffix r = lhs;
              for (std::string& t : r.texts) t += tail;
              return r;
            }
            case Suffix::Kind::kSafeAtom: {
              // digits + dot-free text cannot equal "." + ext, but guard
              // against tails that themselves spell an extension.
              const std::string lt = lower(tail);
              for (const std::string& ex : exec_) {
                if (ends_with(lt, ex)) return unknown_suffix();
              }
              return lhs;
            }
            case Suffix::Kind::kExtVar: {
              Suffix r = lhs;
              r.trailing += tail;
              return r;
            }
            default:
              return unknown_suffix();
          }
        }
        case Suffix::Kind::kSafeAtom:
        case Suffix::Kind::kName:
        case Suffix::Kind::kExtVar:
          return rhs;  // the suffix is determined by the right operand
        case Suffix::Kind::kUnknown:
          return unknown_suffix();
      }
      return unknown_suffix();
    }
    case NodeKind::kUnary: {
      const auto& un = static_cast<const Unary&>(e);
      if (un.op == UnaryOp::kErrorSuppress) {
        return suffix_of(*un.operand, visiting, depth + 1);
      }
      break;
    }
    case NodeKind::kAssign: {
      const auto& as = static_cast<const Assign&>(e);
      if (as.value != nullptr && !as.compound_op.has_value()) {
        return suffix_of(*as.value, visiting, depth + 1);
      }
      break;
    }
    case NodeKind::kTernary: {
      const auto& t = static_cast<const Ternary&>(e);
      Suffix a = t.then_expr != nullptr
                     ? suffix_of(*t.then_expr, visiting, depth + 1)
                     : suffix_of(*t.cond, visiting, depth + 1);
      return suffix_join(a, suffix_of(*t.else_expr, visiting, depth + 1));
    }
    case NodeKind::kCall: {
      const auto& call = static_cast<const Call&>(e);
      if (!call.is_dynamic() && !call.args.empty() &&
          call.args[0] != nullptr &&
          (call.callee == "strtolower" || call.callee == "mb_strtolower")) {
        Suffix s = suffix_of(*call.args[0], visiting, depth + 1);
        if (s.kind == Suffix::Kind::kLit) {
          for (std::string& t : s.texts) t = lower(t);
        } else {
          s.lowered = true;
        }
        return s;
      }
      if (!call.is_dynamic() && !call.args.empty() &&
          call.args[0] != nullptr &&
          (call.callee == "basename" || call.callee == "wp_basename")) {
        Suffix s = suffix_of(*call.args[0], visiting, depth + 1);
        if (s.kind == Suffix::Kind::kName) s.basenamed = true;
        if (s.kind == Suffix::Kind::kLit) return unknown_suffix();
        return s;
      }
      break;
    }
    default:
      break;
  }
  return absval_to_suffix(eval(e, env_));
}

// --- guard recognition ---------------------------------------------------

bool Analyzer::stmt_exits(const Stmt& s) const {
  switch (s.kind()) {
    case NodeKind::kReturn:
    case NodeKind::kThrowStmt:
      return true;
    case NodeKind::kExprStmt: {
      const Expr* e = static_cast<const phpast::ExprStmt&>(s).expr;
      if (e == nullptr) return false;
      if (e->kind() == NodeKind::kExitExpr) return true;
      if (e->kind() == NodeKind::kCall) {
        const auto& call = static_cast<const Call&>(*e);
        return !call.is_dynamic() &&
               terminator_builtins().count(call.callee) != 0;
      }
      return false;
    }
    case NodeKind::kBlock:
      return always_exits(static_cast<const phpast::Block&>(s).body);
    case NodeKind::kIf: {
      const auto& f = static_cast<const If&>(s);
      if (!f.has_else) return false;
      if (!always_exits(f.then_body) || !always_exits(f.else_body)) {
        return false;
      }
      for (const auto& ei : f.elseifs) {
        if (!always_exits(ei.body)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

bool Analyzer::always_exits(Span<const StmtPtr> stmts) const {
  for (const StmtPtr& s : stmts) {
    if (s != nullptr && stmt_exits(*s)) return true;
  }
  return false;
}

void Analyzer::collect_sinks_expr(const Expr& e) {
  phpast::walk(e, [this](const Node& n) -> bool {
    if (n.kind() == NodeKind::kClosure) return false;
    if (n.kind() == NodeKind::kCall) {
      const auto& call = static_cast<const Call&>(n);
      if (!call.is_dynamic() && sinks_.is_sink(call.callee)) {
        sink_sites_.push_back(SinkSite{&call, facts_});
      }
    }
    return true;
  });
}

void Analyzer::collect_sinks_children(const Stmt& s) {
  phpast::for_each_child(s, [this](const Node& child) {
    if (is_expr_kind(child.kind())) {
      collect_sinks_expr(static_cast<const Expr&>(child));
    }
  });
}

void Analyzer::scan_stmt(const Stmt& s) {
  switch (s.kind()) {
    case NodeKind::kIf: {
      const auto& f = static_cast<const If&>(s);
      collect_sinks_expr(*f.cond);
      const std::size_t mark = facts_.size();
      facts_.push_back(Fact{f.cond, true, nullptr, {}});
      scan_stmts(f.then_body);
      facts_.resize(mark);
      std::vector<const Expr*> negations{f.cond};
      for (const auto& ei : f.elseifs) {
        for (const Expr* c : negations) {
          facts_.push_back(Fact{c, false, nullptr, {}});
        }
        collect_sinks_expr(*ei.cond);
        facts_.push_back(Fact{ei.cond, true, nullptr, {}});
        scan_stmts(ei.body);
        facts_.resize(mark);
        negations.push_back(ei.cond);
      }
      if (f.has_else) {
        for (const Expr* c : negations) {
          facts_.push_back(Fact{c, false, nullptr, {}});
        }
        scan_stmts(f.else_body);
        facts_.resize(mark);
      }
      // Exit guards establish persistent facts for the rest of this
      // statement list: `if (c) { die; }` implies !c afterwards.
      if (f.elseifs.empty() && !f.has_else && always_exits(f.then_body)) {
        facts_.push_back(Fact{f.cond, false, nullptr, {}});
      } else if (f.elseifs.empty() && f.has_else &&
                 always_exits(f.else_body) && !always_exits(f.then_body)) {
        facts_.push_back(Fact{f.cond, true, nullptr, {}});
      }
      return;
    }
    case NodeKind::kSwitch: {
      const auto& sw = static_cast<const Switch&>(s);
      collect_sinks_expr(*sw.subject);
      std::vector<std::string> lits;
      bool lits_ok = true;
      bool has_default = false;
      bool default_exits = false;
      for (const auto& c : sw.cases) {
        if (c.match == nullptr) {
          has_default = true;
          default_exits = always_exits(c.body);
        } else if (c.match->kind() == NodeKind::kStringLit) {
          lits.push_back(std::string(static_cast<const StringLit&>(*c.match).value));
        } else {
          lits_ok = false;
        }
      }
      const bool constrains = lits_ok && (!has_default || default_exits);
      const std::size_t mark = facts_.size();
      for (const auto& c : sw.cases) {
        if (c.match == nullptr) {
          scan_stmts(c.body);  // default body: subject unconstrained
        } else {
          if (constrains) {
            facts_.push_back(Fact{nullptr, true, sw.subject, lits});
          }
          scan_stmts(c.body);
          facts_.resize(mark);
        }
      }
      if (lits_ok && has_default && default_exits) {
        facts_.push_back(Fact{nullptr, true, sw.subject, lits});
      }
      return;
    }
    case NodeKind::kBlock:
      scan_stmts(static_cast<const phpast::Block&>(s).body);
      return;
    case NodeKind::kWhile: {
      const auto& w = static_cast<const phpast::While&>(s);
      collect_sinks_expr(*w.cond);
      const std::size_t mark = facts_.size();
      scan_stmts(w.body);
      facts_.resize(mark);
      return;
    }
    case NodeKind::kDoWhile: {
      const auto& w = static_cast<const phpast::DoWhile&>(s);
      const std::size_t mark = facts_.size();
      scan_stmts(w.body);
      facts_.resize(mark);
      collect_sinks_expr(*w.cond);
      return;
    }
    case NodeKind::kFor: {
      const auto& f = static_cast<const phpast::For&>(s);
      for (const auto& e : f.init) {
        if (e != nullptr) collect_sinks_expr(*e);
      }
      for (const auto& e : f.cond) {
        if (e != nullptr) collect_sinks_expr(*e);
      }
      for (const auto& e : f.step) {
        if (e != nullptr) collect_sinks_expr(*e);
      }
      const std::size_t mark = facts_.size();
      scan_stmts(f.body);
      facts_.resize(mark);
      return;
    }
    case NodeKind::kForeach: {
      const auto& f = static_cast<const Foreach&>(s);
      collect_sinks_expr(*f.iterable);
      const std::size_t mark = facts_.size();
      scan_stmts(f.body);
      facts_.resize(mark);
      return;
    }
    case NodeKind::kTryCatch: {
      const auto& t = static_cast<const TryCatch&>(s);
      const std::size_t mark = facts_.size();
      scan_stmts(t.body);
      facts_.resize(mark);
      for (const auto& c : t.catches) {
        scan_stmts(c.body);
        facts_.resize(mark);
      }
      scan_stmts(t.finally_body);
      facts_.resize(mark);
      return;
    }
    case NodeKind::kFunctionDecl:
    case NodeKind::kClassDecl:
      return;  // separate scopes
    default:
      collect_sinks_children(s);
      return;
  }
}

void Analyzer::scan_stmts(Span<const StmtPtr> stmts) {
  for (const StmtPtr& s : stmts) {
    if (s != nullptr) scan_stmt(*s);
  }
}

std::optional<std::vector<std::string>> Analyzer::literal_set(const Expr& e) {
  if (e.kind() == NodeKind::kArrayLit) {
    std::vector<std::string> out;
    for (const ArrayItem& item : static_cast<const ArrayLit&>(e).items) {
      if (item.value == nullptr ||
          item.value->kind() != NodeKind::kStringLit) {
        return std::nullopt;
      }
      out.push_back(std::string(static_cast<const StringLit&>(*item.value).value));
    }
    return out;
  }
  if (e.kind() == NodeKind::kVariable) {
    const std::string_view name = static_cast<const Variable&>(e).name;
    auto it = bindings_by_name_.find(name);
    if (it == bindings_by_name_.end()) return std::nullopt;
    std::optional<std::vector<std::string>> acc;
    for (const VarBinding* b : it->second) {
      if (b->kind != VarBinding::Kind::kAssign || b->value == nullptr ||
          b->value->kind() != NodeKind::kArrayLit) {
        return std::nullopt;
      }
      auto set = literal_set(*b->value);
      if (!set.has_value()) return std::nullopt;
      acc = merge_union(acc, set);
    }
    return acc;
  }
  return std::nullopt;
}

CondInfo Analyzer::cond_info(const Expr& cond, const std::string& field) {
  CondInfo info;
  switch (cond.kind()) {
    case NodeKind::kCall: {
      const auto& call = static_cast<const Call&>(cond);
      if (call.is_dynamic() || call.callee != "in_array" ||
          call.args.size() < 2 || call.args[0] == nullptr ||
          call.args[1] == nullptr) {
        break;
      }
      AbsVal subject = eval(*call.args[0], env_);
      if (subject.kind != Kind::kFilesExt || subject.field != field) break;
      auto set = literal_set(*call.args[1]);
      if (!set.has_value()) break;
      info.allowed_true = set;
      info.excluded_false = set;
      info.unlowered = !subject.lowered;
      break;
    }
    case NodeKind::kBinary: {
      const auto& bin = static_cast<const Binary&>(cond);
      if (bin.op == BinaryOp::kAnd || bin.op == BinaryOp::kOr) {
        CondInfo a = cond_info(*bin.lhs, field);
        CondInfo b = cond_info(*bin.rhs, field);
        info.unlowered = a.unlowered || b.unlowered;
        if (bin.op == BinaryOp::kAnd) {
          // true => both true; false => at least one false.
          info.allowed_true =
              a.allowed_true.has_value() && b.allowed_true.has_value()
                  ? merge_intersect(a.allowed_true, b.allowed_true)
                  : (a.allowed_true.has_value() ? a.allowed_true
                                                : b.allowed_true);
          info.excluded_true = merge_union(a.excluded_true, b.excluded_true);
          if (a.allowed_false.has_value() && b.allowed_false.has_value()) {
            info.allowed_false =
                merge_union(a.allowed_false, b.allowed_false);
          }
          if (a.excluded_false.has_value() && b.excluded_false.has_value()) {
            info.excluded_false =
                merge_intersect(a.excluded_false, b.excluded_false);
          }
        } else {
          // true => at least one true; false => both false.
          if (a.allowed_true.has_value() && b.allowed_true.has_value()) {
            info.allowed_true = merge_union(a.allowed_true, b.allowed_true);
          }
          if (a.excluded_true.has_value() && b.excluded_true.has_value()) {
            info.excluded_true =
                merge_intersect(a.excluded_true, b.excluded_true);
          }
          info.allowed_false =
              a.allowed_false.has_value() && b.allowed_false.has_value()
                  ? merge_intersect(a.allowed_false, b.allowed_false)
                  : (a.allowed_false.has_value() ? a.allowed_false
                                                 : b.allowed_false);
          info.excluded_false =
              merge_union(a.excluded_false, b.excluded_false);
        }
        break;
      }
      const bool eq =
          bin.op == BinaryOp::kEqual || bin.op == BinaryOp::kIdentical;
      const bool neq = bin.op == BinaryOp::kNotEqual ||
                       bin.op == BinaryOp::kNotIdentical;
      if (!eq && !neq) break;
      const Expr* lhs = bin.lhs;
      const Expr* rhs = bin.rhs;
      if (lhs->kind() == NodeKind::kStringLit) std::swap(lhs, rhs);
      if (rhs->kind() != NodeKind::kStringLit) break;
      const std::string_view lit = static_cast<const StringLit&>(*rhs).value;
      // substr($name, -k) == '.ext' constrains the name's suffix.
      if (lhs->kind() == NodeKind::kCall) {
        const auto& call = static_cast<const Call&>(*lhs);
        if (call.is_dynamic() || call.callee != "substr" ||
            call.args.size() != 2 || call.args[0] == nullptr ||
            call.args[1] == nullptr) {
          break;
        }
        AbsVal subject = eval(*call.args[0], env_);
        if (subject.kind != Kind::kFilesName || subject.field != field) break;
        std::int64_t k = 0;
        const Expr& start = *call.args[1];
        if (start.kind() == NodeKind::kIntLit) {
          k = -static_cast<const IntLit&>(start).value;
        } else if (start.kind() == NodeKind::kUnary &&
                   static_cast<const Unary&>(start).op == UnaryOp::kMinus &&
                   static_cast<const Unary&>(start).operand->kind() ==
                       NodeKind::kIntLit) {
          k = static_cast<const IntLit&>(
                  *static_cast<const Unary&>(start).operand)
                  .value;
        } else {
          break;
        }
        if (k <= 1 || lit.size() != static_cast<std::size_t>(k) ||
            lit[0] != '.') {
          break;
        }
        const std::string word(lit.substr(1));
        if (word.find('.') != std::string::npos) break;
        if (eq) {
          info.allowed_true = std::vector<std::string>{word};
          info.excluded_false = std::vector<std::string>{word};
        } else {
          info.excluded_true = std::vector<std::string>{word};
          info.allowed_false = std::vector<std::string>{word};
        }
        info.unlowered = !subject.lowered;
        break;
      }
      AbsVal subject = eval(*lhs, env_);
      if (subject.kind != Kind::kFilesExt || subject.field != field) break;
      if (eq) {
        info.allowed_true = std::vector<std::string>{std::string(lit)};
        info.excluded_false = std::vector<std::string>{std::string(lit)};
      } else {
        info.excluded_true = std::vector<std::string>{std::string(lit)};
        info.allowed_false = std::vector<std::string>{std::string(lit)};
      }
      info.unlowered = !subject.lowered;
      break;
    }
    case NodeKind::kUnary: {
      const auto& un = static_cast<const Unary&>(cond);
      if (un.op != UnaryOp::kNot) break;
      CondInfo inner = cond_info(*un.operand, field);
      info.allowed_true = inner.allowed_false;
      info.excluded_true = inner.excluded_false;
      info.allowed_false = inner.allowed_true;
      info.excluded_false = inner.excluded_true;
      info.unlowered = inner.unlowered;
      break;
    }
    default:
      break;
  }
  return info;
}

GuardEval Analyzer::guard_eval(const SinkSite& site,
                               const std::string& field) {
  GuardEval g;
  for (const Fact& fact : site.facts) {
    if (fact.cond == nullptr) {
      if (fact.subject == nullptr) continue;
      AbsVal subject = eval(*fact.subject, env_);
      if (subject.kind != Kind::kFilesExt || subject.field != field) continue;
      g.any = true;
      g.allowed = g.allowed.has_value()
                      ? merge_intersect(g.allowed, fact.case_lits)
                      : std::optional<std::vector<std::string>>(fact.case_lits);
      if (!subject.lowered) g.unlowered = true;
      if (g.allowed_cond == nullptr) g.allowed_cond = fact.subject;
      continue;
    }
    CondInfo info = cond_info(*fact.cond, field);
    const auto& allowed = fact.polarity ? info.allowed_true : info.allowed_false;
    const auto& excluded =
        fact.polarity ? info.excluded_true : info.excluded_false;
    if (allowed.has_value()) {
      g.any = true;
      g.allowed = g.allowed.has_value() ? merge_intersect(g.allowed, allowed)
                                        : allowed;
      if (info.unlowered) g.unlowered = true;
      if (g.allowed_cond == nullptr) g.allowed_cond = fact.cond;
    }
    if (excluded.has_value()) {
      g.any = true;
      for (const std::string& s : *excluded) {
        if (std::find(g.excluded.begin(), g.excluded.end(), s) ==
            g.excluded.end()) {
          g.excluded.push_back(s);
        }
      }
      if (g.excluded_cond == nullptr) g.excluded_cond = fact.cond;
    }
  }
  return g;
}

// --- classification ------------------------------------------------------

bool Analyzer::name_words_safe(const std::vector<std::string>& words) const {
  if (words.empty()) return false;
  for (const std::string& w : words) {
    const std::string lw = lower(w);
    if (lw.empty()) return false;
    if (exec_.count(lw) != 0) return false;
    for (const std::string& ex : exec_) {
      if (ends_with(lw, "." + ex)) return false;
    }
  }
  return true;
}

bool Analyzer::extvar_words_safe(const std::vector<std::string>& words,
                                 const std::string& trailing) const {
  if (words.empty()) return false;
  for (const std::string& w : words) {
    const std::string s = lower(w + trailing);
    if (s.empty()) return false;
    for (const std::string& ex : exec_) {
      // Two-way suffix check: the destination's final extension is an
      // unknown prefix + s, so s must neither end with an executable
      // extension nor be completable into one from the left.
      if (ends_with(s, ex) || ends_with(ex, s)) return false;
    }
    if (s.find('.') != std::string::npos) {
      const std::string tail = s.substr(s.rfind('.') + 1);
      if (exec_.count(tail) != 0) return false;
    }
  }
  return true;
}

SinkSummary Analyzer::classify_sink(const SinkSite& site) {
  SinkSummary out;
  out.sink_name = site.call->callee;
  out.loc = site.call->loc();
  if (site.call->args.size() < 2) {
    out.reason = "malformed sink call";
    return out;
  }
  const SinkSignature sig = sinks_.signature(site.call->callee);
  const Expr* src_expr = sig == SinkSignature::kSrcDst
                             ? site.call->args[0]
                             : site.call->args[1];
  const Expr* dst_expr = sig == SinkSignature::kSrcDst
                             ? site.call->args[1]
                             : site.call->args[0];
  if (src_expr == nullptr || dst_expr == nullptr) {
    out.reason = "malformed sink call";
    return out;
  }

  const AbsVal src = eval(*src_expr, env_);
  if (is_clean(src.kind)) {
    out.prunable = true;
    out.reason = "source not derived from $_FILES";
    return out;
  }

  std::set<std::string, std::less<>> visiting;
  const Suffix dst = suffix_of(*dst_expr, visiting, 0);
  switch (dst.kind) {
    case Suffix::Kind::kLit: {
      for (const std::string& text : dst.texts) {
        const auto dot = text.rfind('.');
        if (dot == std::string::npos) {
          if (dst.whole) continue;  // whole literal without extension
          out.reason = "unresolved destination prefix";
          return out;
        }
        const std::string ext = lower(text.substr(dot + 1));
        if (exec_.count(ext) != 0) {
          add_lint("UC105", Severity::kError, dst_expr->loc(),
                   "destination filename is forced to the executable "
                   "extension ." + ext);
          out.reason = "destination forced to executable extension";
          return out;
        }
      }
      out.prunable = true;
      out.reason = "constant safe destination extension";
      return out;
    }
    case Suffix::Kind::kSafeAtom:
      out.prunable = true;
      out.reason = "server-generated destination name";
      return out;
    case Suffix::Kind::kName:
    case Suffix::Kind::kExtVar: {
      const GuardEval g = guard_eval(site, dst.field);
      const bool safe =
          g.allowed.has_value() &&
          (dst.kind == Suffix::Kind::kName
               ? name_words_safe(*g.allowed)
               : extvar_words_safe(*g.allowed, dst.trailing));
      if (dst.kind == Suffix::Kind::kName && !dst.basenamed) {
        add_lint("UC106", Severity::kInfo, dst_expr->loc(),
                 "client-supplied filename used in the destination without "
                 "basename()/sanitize_file_name()");
      }
      if (safe) {
        out.guard = GuardClass::kStrongGuard;
        out.prunable = true;
        out.reason = "extension confined to safe whitelist";
        if (g.unlowered) {
          const SourceLoc loc = g.allowed_cond != nullptr
                                    ? g.allowed_cond->loc()
                                    : site.call->loc();
          add_lint("UC103", Severity::kWarning, loc,
                   "extension compared without strtolower(); uploads with "
                   "upper-case extensions take the unguarded path");
        }
        return out;
      }
      if (g.any) {
        out.guard = GuardClass::kWeakGuard;
        out.reason = !g.excluded.empty()
                         ? "extension blacklist is not exhaustive"
                         : "guard does not confine the extension to a "
                           "safe whitelist";
        if (!g.excluded.empty()) {
          const SourceLoc loc = g.excluded_cond != nullptr
                                    ? g.excluded_cond->loc()
                                    : site.call->loc();
          add_lint("UC102", Severity::kWarning, loc,
                   "extension deny-list guard; blacklists miss executable "
                   "variants (php5, phtml, case changes)");
        }
        return out;
      }
      out.guard = GuardClass::kNoGuard;
      out.reason = "client-controlled destination with no recognized guard";
      add_lint("UC101", Severity::kError, site.call->loc(),
               "client-controlled upload reaches " + out.sink_name +
                   " with no recognized extension guard");
      return out;
    }
    case Suffix::Kind::kUnknown:
      break;
  }

  if (!site.facts.empty()) {
    out.guard = GuardClass::kWeakGuard;
    out.reason = "destination not understood by the static pass";
  } else {
    out.guard = GuardClass::kNoGuard;
    out.reason = "unguarded sink with unstructured destination";
    if (is_files(src.kind) ||
        (is_files(eval(*dst_expr, env_).kind))) {
      add_lint("UC101", Severity::kError, site.call->loc(),
               "upload data reaches " + out.sink_name +
                   " with no recognized extension guard");
    }
  }
  return out;
}

// --- escape hatches ------------------------------------------------------

bool Analyzer::function_reaches_sink(std::string_view lower_name) {
  // With the summary layer available this becomes a fact lookup (over
  // interp-inlinable calls, escapes counted as reaching); the call-graph
  // walk below remains the purely intraprocedural fallback.
  if (summaries_ != nullptr) {
    return summaries_->function_reaches_sink(lower_name);
  }
  if (function_nodes_.empty()) {
    for (NodeId i = 0; i < static_cast<NodeId>(graph_.node_count()); ++i) {
      const CallGraphNode& n = graph_.node(i);
      if (n.kind == CallGraphNode::Kind::kFunction) {
        function_nodes_.emplace(n.name, i);
      }
    }
  }
  auto it = function_nodes_.find(lower_name);
  if (it == function_nodes_.end()) return false;
  auto memo = reach_memo_.find(it->second);
  if (memo != reach_memo_.end()) return memo->second;
  const bool reaches =
      graph_.reaches_kind(it->second, CallGraphNode::Kind::kSink);
  reach_memo_.emplace(it->second, reaches);
  return reaches;
}

bool Analyzer::method_reaches_sink(const std::string& lower_method) {
  const std::string suffix = "::" + lower_method;
  for (const auto& [name, info] : program_.functions) {
    if (ends_with(name, suffix) && function_reaches_sink(name)) return true;
  }
  return false;
}

std::string Analyzer::find_bail(Span<const StmtPtr> stmts) {
  std::string reason;
  auto visit = [this, &reason](const Node& n) -> bool {
    if (!reason.empty()) return false;
    switch (n.kind()) {
      case NodeKind::kFunctionDecl:
      case NodeKind::kClassDecl:
        return false;
      case NodeKind::kClosure:
        reason = "closure in root body";
        return false;
      case NodeKind::kIncludeExpr:
        reason = "include/require in root body";
        return false;
      case NodeKind::kCall: {
        const auto& call = static_cast<const Call&>(n);
        if (call.is_dynamic()) {
          reason = "dynamic call in root body";
          return false;
        }
        if (callback_builtins().count(call.callee) != 0) {
          reason = "higher-order builtin ";
          reason += call.callee;
          return false;
        }
        if (summaries_ != nullptr) {
          // Sink-named calls are classified as sink sites even when a
          // user function shadows the name (the interpreter checks the
          // sink registry before the function registry).
          if (!sinks_.is_sink(call.callee) &&
              program_.functions.count(call.callee) != 0) {
            reason = vet_call_site(call.callee, call.args, call.loc());
          }
          return reason.empty();
        }
        if (program_.functions.count(call.callee) != 0 &&
            function_reaches_sink(call.callee)) {
          reason = "call into ";
          reason += call.callee;
          reason += "() which reaches a sink";
          return false;
        }
        return true;
      }
      case NodeKind::kMethodCall: {
        const auto& mc = static_cast<const MethodCall&>(n);
        const std::string m = lower(mc.method);
        if (summaries_ != nullptr) {
          // The interpreter resolves method calls by bare lowercased
          // name; unknown names never record sinks.
          if (program_.functions.count(m) != 0) {
            reason = vet_call_site(m, mc.args, mc.loc());
          }
          return reason.empty();
        }
        if (method_reaches_sink(m)) {
          reason = "method call ->" + m + "() may reach a sink";
          return false;
        }
        return true;
      }
      case NodeKind::kStaticCall: {
        const auto& sc = static_cast<const StaticCall&>(n);
        const std::string m = lower(sc.method);
        if (summaries_ != nullptr) {
          // Interpreter resolution order: "class::method", then bare.
          std::string resolved = lower(sc.class_name) + "::" + m;
          if (program_.functions.count(resolved) == 0) resolved = m;
          if (program_.functions.count(resolved) != 0) {
            reason = vet_call_site(resolved, sc.args, sc.loc());
          }
          return reason.empty();
        }
        if (method_reaches_sink(m)) {
          reason = "static call ::" + m + "() may reach a sink";
          return false;
        }
        return true;
      }
      case NodeKind::kNew: {
        // The interpreter never runs constructors — `new` yields a fresh
        // symbol — so with summaries available object construction is
        // known not to reach a sink.
        if (summaries_ == nullptr && method_reaches_sink("__construct")) {
          reason = "constructor may reach a sink";
          return false;
        }
        return true;
      }
      default:
        return true;
    }
  };
  for (const StmtPtr& s : stmts) {
    if (s != nullptr) phpast::walk(*s, visit);
    if (!reason.empty()) break;
  }
  return reason;
}

std::string Analyzer::vet_call_site(std::string_view callee,
                                    phpast::ExprList args, SourceLoc loc) {
  const FunctionFacts* facts = summaries_->facts(callee);
  if (facts == nullptr) {
    return "";  // not user-defined; the interpreter treats it as a builtin
  }
  if (facts->escapes) {
    std::string r = "call into ";
    r += callee;
    r += "() whose body escapes static analysis";
    return r;
  }
  if (!facts->reaches_sink) return "";  // whole callee set is sink-free

  // The callee can reach a sink: instantiate its summary at this call
  // site's abstract argument values — equivalent to inlining the body.
  std::vector<AbsVal> vals;
  vals.reserve(args.size());
  for (const phpast::Expr* a : args) {
    vals.push_back(a != nullptr ? eval(*a, env_) : top());
  }
  const SummaryInstance& inst = summaries_->instantiate(callee, vals);
  if (inst.analyzable && inst.all_sinks_safe) {
    summary_used_ = true;  // the waiver leaned on the summary layer
    return "";
  }

  std::string chain(callee);
  for (std::size_t i = 1; i < facts->sink_chain.size(); ++i) {
    chain += " -> ";
    chain += facts->sink_chain[i];
  }
  bool taint_in = facts->reads_files;
  for (const AbsVal& v : vals) {
    if (is_files(v.kind) || v.kind == Kind::kTop) {
      taint_in = true;
      break;
    }
  }
  if (taint_in) {
    std::string msg = "upload taint can reach a sink through the helper "
                      "chain " + chain;
    if (!inst.reason.empty()) msg += ": " + inst.reason;
    add_lint("UC107", Severity::kError, loc, std::move(msg));
  }
  std::string r = "call into ";
  r += callee;
  r += "() reaches a sink";
  if (!inst.reason.empty()) {
    r += " (";
    r += inst.reason;
    r += ")";
  }
  return r;
}

void Analyzer::scan_escapes(Span<const StmtPtr> stmts) {
  auto visit = [this](const Node& n) -> bool {
    switch (n.kind()) {
      case NodeKind::kFunctionDecl:
      case NodeKind::kClassDecl:
        return false;  // separate scopes
      case NodeKind::kCall: {
        const auto& call = static_cast<const Call&>(n);
        if (call.is_dynamic()) {
          ++escaped_calls_;
          add_lint("UC108", Severity::kInfo, call.loc(),
                   "dynamic/variable call defeats static analysis at this "
                   "site");
          return true;
        }
        if (callback_builtins().count(call.callee) != 0) {
          ++escaped_calls_;
          add_lint("UC108", Severity::kInfo, call.loc(),
                   "callback builtin " + std::string(call.callee) +
                       "() escapes static analysis at this site");
          return true;
        }
        if (summaries_ != nullptr) {
          const FunctionFacts* f = summaries_->facts(call.callee);
          if (f != nullptr && f->escapes) {
            ++escaped_calls_;
            add_lint("UC108", Severity::kInfo, call.loc(),
                     "call into " + std::string(call.callee) +
                         "() whose body escapes static analysis");
          }
        }
        return true;
      }
      default:
        return true;
    }
  };
  for (const StmtPtr& s : stmts) {
    if (s != nullptr) phpast::walk(*s, visit);
  }
}

// --- lints ---------------------------------------------------------------

std::string Analyzer::line_evidence(SourceLoc loc) const {
  if (!loc.valid()) return "";
  const SourceFile* f = sources_.file(loc.file);
  if (f == nullptr) return "";
  std::string_view line = f->line(loc.line);
  const auto first = line.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) return "";
  const auto last = line.find_last_not_of(" \t\r\n");
  line = line.substr(first, last - first + 1);
  if (line.size() > 160) line = line.substr(0, 160);
  return std::string(line);
}

void Analyzer::add_lint(const char* rule, Severity severity, SourceLoc loc,
                        std::string message) {
  const std::string location = sources_.describe(loc);
  if (!lint_keys_.emplace(rule, location).second) return;
  LintFinding f;
  f.rule = rule;
  f.severity = severity;
  f.location = location;
  f.message = std::move(message);
  f.evidence = line_evidence(loc);
  lints_.emplace_back(loc, std::move(f));
}

// --- driver --------------------------------------------------------------

void Analyzer::solve_body(Span<const StmtPtr> body) {
  phpast::collect_var_bindings(body, bindings_);

  const phpast::FunctionDecl* fn =
      root_ != nullptr ? root_->function : summary_fn_;
  if (fn != nullptr) {
    caller_scope_ = true;
    const Env empty;
    for (std::size_t i = 0; i < fn->params.size(); ++i) {
      const phpast::Param& p = fn->params[i];
      AbsVal v = top();
      if (summary_args_ != nullptr && i < summary_args_->size()) {
        v = (*summary_args_)[i];
      } else if (root_ != nullptr && root_->binding_call != nullptr &&
                 i < root_->binding_call->args.size() &&
                 root_->binding_call->args[i] != nullptr) {
        v = eval(*root_->binding_call->args[i], empty);
      } else if (p.default_value != nullptr) {
        v = eval(*p.default_value, empty);
      }
      param_values_.emplace(p.name, std::move(v));
      bindings_.push_back(VarBinding{std::string(p.name),
                                     VarBinding::Kind::kAssign, nullptr,
                                     BinaryOp::kConcat, nullptr});
    }
    caller_scope_ = false;
  }

  for (const VarBinding& b : bindings_) {
    bound_names_.insert(b.name);
    bindings_by_name_[b.name].push_back(&b);
  }

  env_ = phpast::solve_flow_insensitive<AbsVal>(
      bindings_,
      [this](const VarBinding& b, const Env& env) { return transfer(b, env); },
      [](const AbsVal& a, const AbsVal& b) { return join(a, b); });
}

AbsVal Analyzer::collect_return_value(Span<const StmtPtr> body) {
  AbsVal acc = bottom();
  bool any = false;
  auto visit = [&](const Node& n) -> bool {
    switch (n.kind()) {
      case NodeKind::kFunctionDecl:
      case NodeKind::kClassDecl:
      case NodeKind::kClosure:
        return false;  // separate scopes
      case NodeKind::kReturn: {
        const auto& r = static_cast<const Return&>(n);
        any = true;
        acc = join(acc,
                   r.value != nullptr ? eval(*r.value, env_) : safe_atom());
        return true;
      }
      default:
        return true;
    }
  };
  for (const StmtPtr& s : body) {
    if (s != nullptr) phpast::walk(*s, visit);
  }
  // Falling off the end returns null — a safe atom: it can neither be
  // $_FILES-derived (C1) nor carry an executable suffix (C2).
  if (!any) return safe_atom();
  return acc;
}

RootAnalysis Analyzer::run() {
  const Span<const StmtPtr> body =
      root_->function != nullptr ? Span<const StmtPtr>(root_->function->body)
                                 : as_span(root_->file->statements);
  solve_body(body);

  const std::string bail = find_bail(body);
  scan_stmts(body);
  scan_escapes(body);

  RootAnalysis result;
  result.escaped_calls = escaped_calls_;
  bool all_prunable = true;
  for (const SinkSite& site : sink_sites_) {
    SinkSummary summary = classify_sink(site);
    all_prunable = all_prunable && summary.prunable;
    result.sinks.push_back(std::move(summary));
  }

  if (!bail.empty()) {
    result.prunable = false;
    result.reason = bail;
  } else if (result.sinks.empty()) {
    if (summaries_ != nullptr) {
      // Summary-proven sink-free root: the body has no lexical sink and
      // a clean bail scan already vetted every reachable callee (sink-
      // free, or instantiated with all sinks safe), so the interpreter
      // cannot record a sink for this root.
      result.prunable = true;
      result.summary_pruned = true;
      result.reason = "no lexical sink; callee set summary-proven sink-free";
    } else {
      result.prunable = false;
      result.reason = "no lexical sink in root body";
    }
  } else if (all_prunable) {
    result.prunable = true;
    result.summary_pruned = summary_used_;
    result.reason = "all sinks proven safe";
  } else {
    result.prunable = false;
    for (const SinkSummary& s : result.sinks) {
      if (!s.prunable) {
        result.reason = s.reason;
        break;
      }
    }
  }

  std::stable_sort(lints_.begin(), lints_.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first.file.value != b.first.file.value) {
                       return a.first.file.value < b.first.file.value;
                     }
                     if (a.first.line != b.first.line) {
                       return a.first.line < b.first.line;
                     }
                     return a.second.rule < b.second.rule;
                   });
  result.lints.reserve(lints_.size());
  for (auto& [loc, lint] : lints_) result.lints.push_back(std::move(lint));
  return result;
}

SummaryInstance Analyzer::run_summary() {
  const Span<const StmtPtr> body(summary_fn_->body);
  solve_body(body);

  SummaryInstance out;
  out.return_value = collect_return_value(body);

  const std::string bail = find_bail(body);
  scan_stmts(body);

  bool all_safe = true;
  for (const SinkSite& site : sink_sites_) {
    SinkSummary summary = classify_sink(site);
    all_safe = all_safe && summary.prunable;
    out.sinks.push_back(std::move(summary));
  }

  if (!bail.empty()) {
    out.analyzable = false;
    out.all_sinks_safe = false;
    out.reason = bail;
    out.return_value = top();  // an escaped body may return anything
    return out;
  }
  out.analyzable = true;
  out.all_sinks_safe = all_safe;
  if (!all_safe) {
    for (const SinkSummary& s : out.sinks) {
      if (!s.prunable) {
        out.reason = s.reason;
        break;
      }
    }
  }
  return out;
}

}  // namespace

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::optional<Severity> parse_severity(std::string_view text) {
  if (text == "info") return Severity::kInfo;
  if (text == "warning") return Severity::kWarning;
  if (text == "error") return Severity::kError;
  return std::nullopt;
}

std::string_view guard_class_name(GuardClass g) {
  switch (g) {
    case GuardClass::kNoGuard:
      return "NoGuard";
    case GuardClass::kWeakGuard:
      return "WeakGuard";
    case GuardClass::kStrongGuard:
      return "StrongGuard";
  }
  return "unknown";
}

RootAnalysis analyze_root(const Program& program, const CallGraph& graph,
                          const AnalysisRoot& root,
                          const SourceManager& sources,
                          const SinkRegistry& sinks,
                          const StaticPassOptions& options) {
  Analyzer analyzer(program, graph, root, sources, sinks, options);
  return analyzer.run();
}

SummaryInstance analyze_function_body(const Program& program,
                                      const CallGraph& graph,
                                      const phpast::FunctionDecl& fn,
                                      const std::vector<AbsVal>& args,
                                      const SourceManager& sources,
                                      const SinkRegistry& sinks,
                                      const StaticPassOptions& options,
                                      SummaryStore* store) {
  Analyzer analyzer(program, graph, fn, args, sources, sinks, options, store);
  return analyzer.run_summary();
}

}  // namespace uchecker::core::staticpass
