#include "core/staticpass/summaries.h"

#include <algorithm>
#include <utility>

#include "phpast/ast.h"
#include "phpast/visitor.h"
#include "support/strutil.h"

namespace uchecker::core::staticpass {

const std::set<std::string, std::less<>>& callback_builtins() {
  static const std::set<std::string, std::less<>> kSet{
      "call_user_func", "call_user_func_array", "array_map", "array_walk",
      "array_filter",   "usort",                "uasort",    "uksort",
      "array_reduce",   "preg_replace_callback", "register_shutdown_function",
      "extract",        "parse_str",            "eval",      "assert",
      "create_function",
  };
  return kSet;
}

namespace {

using phpast::Node;
using phpast::NodeKind;
using phpast::StmtPtr;

bool reads_attacker_input(std::string_view var) {
  return var == "_FILES" || var == "_POST" || var == "_GET" ||
         var == "_REQUEST" || var == "_COOKIE";
}

// Per-function local facts and interp-inlinable call edges, before the
// bottom-up propagation.
struct LocalFacts {
  bool sink = false;     // lexical call to a registered sink name
  bool files = false;    // reads $_FILES (or another attacker superglobal)
  bool escapes = false;  // dynamic call, callback builtin, include,
                         // closure, or by-ref parameter
  std::vector<std::string> callees;  // user-defined, deduped, sorted
};

}  // namespace

SummaryStore::SummaryStore(const Program& program, const CallGraph& graph,
                           const SourceManager& sources,
                           const SinkRegistry& sinks,
                           const StaticPassOptions& options)
    : program_(program),
      graph_(graph),
      sources_(sources),
      sinks_(sinks),
      options_(options) {
  build();
}

void SummaryStore::build() {
  // 1. Local facts + interp-inlinable call edges per registered function.
  //    Edges follow only calls the symbolic interpreter actually inlines:
  //    direct calls, method calls resolved by bare name, static calls
  //    resolved "class::method"-then-bare. Callback registrations,
  //    constructors (never run by the interpreter) and closures (never
  //    invoked) are not edges; the opaque ones count as escapes instead.
  std::map<std::string, LocalFacts, std::less<>> locals;
  for (const auto& [name, info] : program_.functions) {
    LocalFacts local;
    if (info.decl == nullptr) {
      local.escapes = true;  // registry entry without a body
      locals.emplace(name, std::move(local));
      continue;
    }
    for (const phpast::Param& p : info.decl->params) {
      // A by-ref parameter lets the body mutate the caller's scope,
      // which the summary environment does not model.
      if (p.by_ref) local.escapes = true;
    }
    std::set<std::string, std::less<>> callees;
    auto visit = [&](const Node& n) -> bool {
      switch (n.kind()) {
        case NodeKind::kFunctionDecl:
        case NodeKind::kClassDecl:
          return false;  // separately registered scopes
        case NodeKind::kClosure:
        case NodeKind::kIncludeExpr:
          local.escapes = true;
          return false;
        case NodeKind::kVariable: {
          const auto& v = static_cast<const phpast::Variable&>(n);
          if (reads_attacker_input(v.name)) local.files = true;
          return true;
        }
        case NodeKind::kCall: {
          const auto& call = static_cast<const phpast::Call&>(n);
          if (call.is_dynamic()) {
            local.escapes = true;
            return true;  // still scan the arguments
          }
          if (callback_builtins().count(call.callee) != 0) {
            local.escapes = true;
            return true;
          }
          if (sinks_.is_sink(call.callee)) {
            local.sink = true;
            return true;
          }
          if (program_.functions.count(call.callee) != 0) {
            callees.insert(std::string(call.callee));
          }
          return true;
        }
        case NodeKind::kMethodCall: {
          const std::string m = strutil::to_lower(
              static_cast<const phpast::MethodCall&>(n).method);
          if (program_.functions.count(m) != 0) callees.insert(m);
          return true;
        }
        case NodeKind::kStaticCall: {
          const auto& sc = static_cast<const phpast::StaticCall&>(n);
          std::string q = strutil::to_lower(sc.class_name) +
                          "::" + strutil::to_lower(sc.method);
          if (program_.functions.count(q) == 0) {
            q = strutil::to_lower(sc.method);
          }
          if (program_.functions.count(q) != 0) callees.insert(std::move(q));
          return true;
        }
        default:
          return true;
      }
    };
    for (const StmtPtr& s : info.decl->body) {
      if (s != nullptr) phpast::walk(*s, visit);
    }
    local.callees.assign(callees.begin(), callees.end());
    locals.emplace(name, std::move(local));
  }

  // 2. Iterative Tarjan SCC condensation. SCCs are emitted callee-first
  //    (an SCC completes only after every component reachable from it),
  //    which is exactly the bottom-up order the fact propagation needs.
  std::map<std::string, int, std::less<>> index;
  std::map<std::string, int, std::less<>> low;
  std::set<std::string, std::less<>> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;

  struct Frame {
    const std::string* name = nullptr;
    const LocalFacts* local = nullptr;
    std::size_t next = 0;
  };
  std::vector<Frame> frames;
  auto open_node = [&](const std::string& stable_name,
                       const LocalFacts& local) {
    index[stable_name] = low[stable_name] = next_index++;
    stack.push_back(stable_name);
    on_stack.insert(stable_name);
    frames.push_back(Frame{&stable_name, &local, 0});
  };

  for (const auto& [start, start_local] : locals) {
    if (index.count(start) != 0) continue;
    open_node(start, start_local);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < f.local->callees.size()) {
        const std::string& callee = f.local->callees[f.next];
        ++f.next;
        auto cit = locals.find(callee);
        if (cit == locals.end()) continue;
        auto iit = index.find(callee);
        if (iit == index.end()) {
          open_node(cit->first, cit->second);  // invalidates f; loop re-reads
        } else if (on_stack.count(callee) != 0) {
          int& lw = low[*f.name];
          lw = std::min(lw, iit->second);
        }
        continue;
      }
      const std::string done = *f.name;
      frames.pop_back();
      if (!frames.empty()) {
        int& parent_low = low[*frames.back().name];
        parent_low = std::min(parent_low, low[done]);
      }
      if (low[done] == index[done]) {
        std::vector<std::string> scc;
        while (true) {
          std::string member = std::move(stack.back());
          stack.pop_back();
          on_stack.erase(member);
          const bool is_root = member == done;
          scc.push_back(std::move(member));
          if (is_root) break;
        }
        std::sort(scc.begin(), scc.end());
        sccs_.push_back(std::move(scc));
      }
    }
  }

  // 3. Fact propagation in emission (callee-first) order. Reachability
  //    bits are uniform within an SCC, so one union pass over the members
  //    and their already-finalized external callees is the fixpoint.
  for (std::size_t si = 0; si < sccs_.size(); ++si) {
    const std::vector<std::string>& members = sccs_[si];
    bool recursive = members.size() > 1;
    bool sink = false;
    bool files = false;
    bool escapes = false;
    bool reaches = false;
    for (const std::string& m : members) {
      const LocalFacts& l = locals.find(m)->second;
      sink = sink || l.sink;
      files = files || l.files;
      escapes = escapes || l.escapes;
      for (const std::string& c : l.callees) {
        if (c == m) recursive = true;  // self-loop
        if (std::find(members.begin(), members.end(), c) != members.end()) {
          continue;  // intra-SCC edge: bits already unioned above
        }
        auto cf = facts_.find(c);
        if (cf == facts_.end()) continue;
        reaches = reaches || cf->second.reaches_sink;
        escapes = escapes || cf->second.escapes;
        files = files || cf->second.reads_files;
      }
    }
    reaches = reaches || sink;
    for (const std::string& m : members) {
      FunctionFacts ff;
      ff.name = m;
      ff.scc = static_cast<int>(si);
      ff.recursive = recursive;
      ff.has_local_sink = locals.find(m)->second.sink;
      ff.reaches_sink = reaches;
      ff.reads_files = files;
      ff.escapes = escapes;
      facts_.emplace(m, std::move(ff));
    }
  }

  // 4. UC107 witness chains: function -> ... -> sink-containing function.
  for (auto& [name, ff] : facts_) {
    if (!ff.reaches_sink) continue;
    std::vector<std::string> chain;
    std::set<std::string, std::less<>> visited;
    std::string cur = name;
    while (chain.size() < 8) {
      chain.push_back(cur);
      visited.insert(cur);
      const LocalFacts& l = locals.find(cur)->second;
      if (l.sink) break;
      std::string next;
      for (const std::string& c : l.callees) {
        if (visited.count(c) != 0) continue;
        auto cf = facts_.find(c);
        if (cf != facts_.end() && cf->second.reaches_sink) {
          next = c;
          break;
        }
      }
      if (next.empty()) break;
      cur = std::move(next);
    }
    ff.sink_chain = std::move(chain);
  }
}

const FunctionFacts* SummaryStore::facts(std::string_view lower_name) const {
  auto it = facts_.find(lower_name);
  return it == facts_.end() ? nullptr : &it->second;
}

bool SummaryStore::function_reaches_sink(std::string_view lower_name) const {
  const FunctionFacts* f = facts(lower_name);
  return f != nullptr && (f->reaches_sink || f->escapes);
}

const SummaryInstance& SummaryStore::instantiate(
    std::string_view lower_name, const std::vector<AbsVal>& args) {
  std::string key(lower_name);
  key += '\n';
  for (const AbsVal& a : args) {
    key += absval_key(a);
    key += ';';
  }
  auto it = instances_.find(key);
  if (it != instances_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  ++stats_.cache_misses;

  SummaryInstance inst;
  inst.return_value = top();
  const FunctionFacts* f = facts(lower_name);
  auto fit = program_.functions.find(lower_name);
  const std::string name(lower_name);
  if (f == nullptr || fit == program_.functions.end() ||
      fit->second.decl == nullptr) {
    inst.reason = "unknown function";
  } else if (f->recursive) {
    // Matches the interpreter, which replaces recursive calls with a
    // fresh unknown symbol instead of unrolling.
    inst.reason = "recursive function";
  } else if (f->escapes) {
    inst.reason = "body escapes static analysis";
  } else if (!in_progress_.insert(name).second) {
    inst.reason = "re-entrant instantiation";  // cycle backstop
  } else {
    inst = analyze_function_body(program_, graph_, *fit->second.decl, args,
                                 sources_, sinks_, options_, this);
    in_progress_.erase(name);
  }
  // std::map node stability keeps the returned reference valid across
  // later (including recursive) insertions.
  return instances_.emplace(std::move(key), std::move(inst)).first->second;
}

}  // namespace uchecker::core::staticpass
