// Pre-symbolic static analysis pass (lints + symbolic-execution pruning).
//
// Runs over the parsed AST of each analysis root *before* symbolic
// execution. Three jobs:
//
//  - an intraprocedural, flow-insensitive taint lattice
//    (bottom < untainted < $_FILES-tainted) seeded from $_FILES accesses
//    and propagated with the phpast dataflow engine;
//  - a sanitizer-idiom recognizer that classifies the guards dominating
//    each upload sink (in_array whitelists, `== 'jpg'` literal chains,
//    blacklists + wp_die, substr suffix compares, switch whitelists,
//    explode/end extension splits) into StrongGuard / WeakGuard / NoGuard
//    and derives structured lint findings from the weak idioms;
//  - a per-root prune decision the detector uses to skip symbolic
//    execution entirely (ScanOptions::prefilter).
//
// Soundness contract for pruning: a root is marked prunable ONLY when
// every lexical sink in its body is individually proven safe — either
// its tainted inputs are provably not derived from $_FILES (condition C1
// of the vulnerability model cannot hold) or the destination's extension
// is provably confined to a non-executable whitelist (condition C2
// cannot hold) — AND the body contains no construct that could reach a
// sink outside this analysis (dynamic calls, includes, closures, calls
// into user functions that reach a sink in the call graph). Anything the
// recognizer does not understand keeps the root on the symbolic path, so
// pruning never changes a verdict; ScanOptions::crosscheck turns that
// contract into a runtime oracle.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/callgraph/callgraph.h"
#include "core/callgraph/locality.h"
#include "core/sinks.h"
#include "support/source.h"

namespace uchecker::core::staticpass {

class SummaryStore;  // core/staticpass/summaries.h

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

[[nodiscard]] std::string_view severity_name(Severity s);
// Parses "info" / "warning" / "error" (for --fail-on-lint).
[[nodiscard]] std::optional<Severity> parse_severity(std::string_view text);

// One structured lint finding. Rules:
//   UC101 unrestricted-upload        error    tainted name reaches sink
//                                             with no recognized guard
//   UC102 extension-blacklist        warning  deny-list guard idiom
//   UC103 case-sensitive-compare     warning  extension compared without
//                                             strtolower()
//   UC104 double-extension-split     warning  extension taken from a fixed
//                                             explode() segment instead of
//                                             the last one
//   UC105 forced-executable-dest     error    destination ends with a
//                                             constant executable extension
//   UC106 raw-client-filename        info     client filename used in the
//                                             destination without basename()
//   UC107 helper-chain-taint         error    taint reaches a sink through
//                                             a helper-function chain (the
//                                             message reports the chain)
//   UC108 escaped-call-site          info     dynamic/variable call or
//                                             callback builtin defeats
//                                             static analysis at this site
struct LintFinding {
  std::string rule;      // "UC101" ...
  Severity severity = Severity::kWarning;
  std::string location;  // "file:line"
  std::string message;
  std::string evidence;  // the source line
};

// Guard strength of the sanitizer idioms dominating one sink.
enum class GuardClass : std::uint8_t {
  kNoGuard,      // nothing between the taint source and the sink
  kWeakGuard,    // some guard exists but safety is not proven (blacklist,
                 // helper-function check, unrecognized condition)
  kStrongGuard,  // extension provably confined to a safe whitelist
};

[[nodiscard]] std::string_view guard_class_name(GuardClass g);

// Static classification of one lexical sink call in a root body.
struct SinkSummary {
  std::string sink_name;
  SourceLoc loc;
  GuardClass guard = GuardClass::kNoGuard;
  bool prunable = false;  // proven untainted or strongly guarded
  std::string reason;     // human-readable justification
};

struct RootAnalysis {
  // True iff symbolic execution of this root provably cannot produce a
  // vulnerable verdict (see the soundness contract above).
  bool prunable = false;
  std::string reason;
  std::vector<SinkSummary> sinks;
  std::vector<LintFinding> lints;
  // True when the prune decision required the inter-procedural summary
  // layer (a sink-free callee set, or a call-site instantiation proving
  // a sink-reaching helper safe). Telemetry:
  // staticpass.summary_pruned_roots.
  bool summary_pruned = false;
  // Call sites in this root whose callees the analysis cannot follow
  // (dynamic calls, callback builtins, escaped helpers) — the UC108
  // sites. Telemetry: staticpass.escaped_calls.
  std::size_t escaped_calls = 0;
};

struct StaticPassOptions {
  // Extensions the vulnerability model treats as executable; mirror
  // VulnModelOptions::executable_extensions.
  std::vector<std::string> executable_extensions{"php", "php5", "phtml"};
  // Inter-procedural function summaries (core/staticpass/summaries.h).
  // When set, calls into user-defined functions are resolved by summary
  // instantiation instead of degrading to top(); null reproduces the
  // purely intraprocedural pass. The store memoizes across roots — the
  // detector owns one per scan.
  SummaryStore* summaries = nullptr;
};

// Analyzes one locality root intraprocedurally. Pure AST work: no solver,
// no interpreter, linear in the body size.
[[nodiscard]] RootAnalysis analyze_root(const Program& program,
                                        const CallGraph& graph,
                                        const AnalysisRoot& root,
                                        const SourceManager& sources,
                                        const SinkRegistry& sinks,
                                        const StaticPassOptions& options);

}  // namespace uchecker::core::staticpass
