// Vulnerability-oriented locality analysis (paper §III-A, step 2).
//
// Given the extended call graph, finds the lowest common ancestor(s) of a
// $_FILES read access and a file-upload sink invocation. Only the body of
// such an ancestor — a PHP file or a function — is symbolically executed,
// which is the paper's main cost reduction (Table III "% of LoC Analyzed",
// 0.19%–52% of each application).
//
// The paper assumes each call graph is a tree with a unique LCA; real
// plugins can register several independent upload handlers, so this
// implementation returns every *minimal* ancestor (an ancestor none of
// whose descendants is itself an ancestor of both special nodes). The
// detector analyzes each root and ORs the verdicts.
#pragma once

#include <vector>

#include "core/callgraph/callgraph.h"
#include "support/source.h"

namespace uchecker::core {

struct AnalysisRoot {
  NodeId node = kNoNode;
  // Exactly one of `file` / `function` is non-null.
  const phpast::PhpFile* file = nullptr;
  const phpast::FunctionDecl* function = nullptr;
  // For function roots: a call site whose arguments mention $_FILES, if
  // one exists. The interpreter evaluates these arguments to bind the
  // function's parameters, so upload taint flows into the root (this is
  // how the paper's WooCommerce example, whose LCA is the function
  // wc_cus_upload_picture($_FILES['profile_pic']), stays detectable).
  const phpast::Call* binding_call = nullptr;
  // Physical LoC of the root body (for the "% analyzed" metric).
  std::uint64_t body_loc = 0;
};

struct LocalityResult {
  std::vector<AnalysisRoot> roots;
  std::uint64_t total_loc = 0;     // whole application
  std::uint64_t analyzed_loc = 0;  // sum of root body LoC

  [[nodiscard]] double analyzed_percent() const {
    return total_loc == 0 ? 0.0
                          : 100.0 * static_cast<double>(analyzed_loc) /
                                static_cast<double>(total_loc);
  }
};

struct LocalityOptions {
  // Paper §VI extension: when true, analysis roots reachable only via
  // add_action('admin_menu', ...) registrations are skipped — an admin
  // may upload arbitrary files anyway, so such flows are not treated as
  // vulnerabilities. Off by default to match the published system (and
  // its two Table III false positives).
  bool model_admin_gating = false;
};

[[nodiscard]] LocalityResult analyze_locality(const Program& program,
                                              const CallGraph& graph,
                                              const SourceManager& sources,
                                              const LocalityOptions& options = {});

}  // namespace uchecker::core
