#include "core/callgraph/locality.h"

#include <algorithm>

#include "phpast/visitor.h"
#include "support/fault_injector.h"
#include "support/strutil.h"

namespace uchecker::core {
namespace {

// Physical LoC between two 1-based lines of a file (inclusive), skipping
// blank and pure-comment lines; mirrors SourceFile::loc_count().
std::uint64_t loc_between(const SourceFile& file, std::uint32_t first,
                          std::uint32_t last) {
  std::uint64_t count = 0;
  for (std::uint32_t i = first; i <= last && i <= file.line_count(); ++i) {
    const std::string_view text = strutil::trim(file.line(i));
    if (text.empty()) continue;
    if (text.starts_with("//") || text.starts_with("#") ||
        text.starts_with("*") || text.starts_with("/*")) {
      continue;
    }
    ++count;
  }
  return count;
}

// Does any node of this subtree read the $_FILES superglobal?
bool mentions_files(const phpast::Node& node) {
  bool found = false;
  phpast::walk(node, [&found](const phpast::Node& n) {
    if (n.kind() == phpast::NodeKind::kVariable &&
        static_cast<const phpast::Variable&>(n).name == "_FILES") {
      found = true;
    }
    return !found;
  });
  return found;
}

// Finds a call site of `name` whose arguments mention $_FILES (preferred)
// or, failing that, any call site of `name`.
const phpast::Call* find_binding_call(const Program& program,
                                      const std::string& name) {
  const phpast::Call* any_call = nullptr;
  const phpast::Call* files_call = nullptr;
  for (const phpast::PhpFile* file : program.files) {
    for (const auto& stmt : file->statements) {
      phpast::walk(*stmt, [&](const phpast::Node& n) {
        if (files_call != nullptr) return false;
        if (n.kind() != phpast::NodeKind::kCall) return true;
        const auto& call = static_cast<const phpast::Call&>(n);
        if (call.is_dynamic() || call.callee != name) return true;
        if (any_call == nullptr) any_call = &call;
        for (const auto& arg : call.args) {
          if (mentions_files(*arg)) {
            files_call = &call;
            break;
          }
        }
        return true;
      });
      if (files_call != nullptr) break;
    }
    if (files_call != nullptr) break;
  }
  return files_call != nullptr ? files_call : any_call;
}

std::uint64_t function_body_loc(const phpast::FunctionDecl& fn,
                                FileId file_id, const SourceManager& sources) {
  const SourceFile* file = sources.file(file_id);
  if (file == nullptr) return 0;
  std::uint32_t first = fn.loc().line;
  std::uint32_t last = first;
  for (const auto& stmt : fn.body) {
    last = std::max(last, phpast::max_line(*stmt));
  }
  if (first == 0) return 0;
  return loc_between(*file, first, last);
}

}  // namespace

LocalityResult analyze_locality(const Program& program, const CallGraph& graph,
                                const SourceManager& sources,
                                const LocalityOptions& options) {
  FaultInjector::checkpoint("locality");
  LocalityResult result;
  result.total_loc = sources.total_loc();
  const std::vector<bool> admin_only =
      options.model_admin_gating ? graph.admin_only_nodes()
                                 : std::vector<bool>(graph.node_count(), false);

  // Candidates: file/function nodes that reach both a $_FILES access and
  // a sink invocation.
  std::vector<NodeId> candidates;
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    const CallGraphNode& node = graph.node(id);
    if (node.kind != CallGraphNode::Kind::kFile &&
        node.kind != CallGraphNode::Kind::kFunction) {
      continue;
    }
    if (admin_only[id]) continue;  // §VI extension, see LocalityOptions
    // With admin gating modeled, admin-gated callback edges do not count
    // toward upload reachability either (a file whose only path to the
    // sink runs through the admin menu is not an attack surface).
    const bool use_admin = !options.model_admin_gating;
    if (graph.reaches_kind(id, CallGraphNode::Kind::kFilesAccess, use_admin) &&
        graph.reaches_kind(id, CallGraphNode::Kind::kSink, use_admin)) {
      candidates.push_back(id);
    }
  }

  // Minimal candidates: no *other* candidate is reachable from them.
  // (In the paper's tree setting this is exactly the unique LCA.)
  std::vector<NodeId> minimal;
  for (NodeId c : candidates) {
    bool has_lower = false;
    for (NodeId other : candidates) {
      if (other != c && graph.reaches(c, other)) {
        has_lower = true;
        break;
      }
    }
    if (!has_lower) minimal.push_back(c);
  }

  for (NodeId id : minimal) {
    const CallGraphNode& node = graph.node(id);
    AnalysisRoot root;
    root.node = id;
    if (node.kind == CallGraphNode::Kind::kFile) {
      const auto it =
          std::find_if(program.files.begin(), program.files.end(),
                       [&](const phpast::PhpFile* f) { return f->name == node.name; });
      if (it == program.files.end()) continue;
      root.file = *it;
      const SourceFile* sf = sources.file_by_name(node.name);
      root.body_loc = sf != nullptr ? sf->loc_count() : 0;
    } else {
      const auto it = program.functions.find(node.name);
      if (it == program.functions.end()) continue;
      root.function = it->second.decl;
      root.binding_call = find_binding_call(program, node.name);
      root.body_loc =
          function_body_loc(*it->second.decl, it->second.file, sources);
    }
    result.analyzed_loc += root.body_loc;
    result.roots.push_back(root);
  }
  return result;
}

}  // namespace uchecker::core
