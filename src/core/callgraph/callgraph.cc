#include "core/callgraph/callgraph.h"

#include <algorithm>

#include "phpast/visitor.h"
#include "support/strutil.h"

namespace uchecker::core {

using phpast::Node;
using phpast::NodeKind;

namespace {

// Does any node of this subtree read the $_FILES superglobal? Used for
// the paper's "or its parameter input if a is a function" edge rule: a
// call f($_FILES[...]) gives the *callee* f an edge to $_FILES.
bool mentions_files(const Node& node) {
  bool found = false;
  phpast::walk(node, [&found](const Node& n) {
    if (n.kind() == NodeKind::kVariable &&
        static_cast<const phpast::Variable&>(n).name == "_FILES") {
      found = true;
    }
    return !found;
  });
  return found;
}

}  // namespace

Program build_program(const std::vector<const phpast::PhpFile*>& files) {
  Program program;
  program.files = files;
  for (const phpast::PhpFile* file : files) {
    for (const auto& stmt : file->statements) {
      phpast::walk(*stmt, [&](const Node& node) {
        if (node.kind() == NodeKind::kFunctionDecl) {
          const auto& fn = static_cast<const phpast::FunctionDecl&>(node);
          const std::string key = strutil::to_lower(fn.name);
          program.functions.emplace(
              key, Program::FunctionInfo{key, &fn, file->file});
          return true;  // keep walking: nested declarations are legal PHP
        }
        if (node.kind() == NodeKind::kClassDecl) {
          const auto& cls = static_cast<const phpast::ClassDecl&>(node);
          for (const auto& method : cls.methods) {
            const std::string qualified =
                strutil::to_lower(cls.name) + "::" + strutil::to_lower(method->name);
            program.functions.emplace(
                qualified,
                Program::FunctionInfo{qualified, method, file->file});
            // Also register by bare method name if unambiguous, since
            // WordPress hooks often receive bare method names.
            const std::string bare = strutil::to_lower(method->name);
            program.functions.emplace(
                bare, Program::FunctionInfo{bare, method, file->file});
          }
          return false;  // methods handled above
        }
        return true;
      });
    }
  }
  return program;
}

NodeId CallGraph::add_node(CallGraphNode::Kind kind, std::string name,
                           SourceLoc loc) {
  CallGraphNode node;
  node.kind = kind;
  node.name = std::move(name);
  node.loc = loc;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void CallGraph::add_edge(NodeId from, NodeId to, bool admin_gated) {
  if (from == to) return;  // self-recursion
  auto& children = nodes_[from].children;
  if (std::find(children.begin(), children.end(), to) != children.end()) {
    // An existing non-gated edge subsumes a gated one; an existing gated
    // edge is widened by a non-gated registration.
    if (!admin_gated) admin_edges_.erase({from, to});
    return;
  }
  if (reaches(to, from)) return;  // mutual recursion would form a cycle
  children.push_back(to);
  if (admin_gated) admin_edges_.insert({from, to});
}

bool CallGraph::reaches(NodeId from, NodeId to) const {
  if (from == to) return true;
  std::vector<NodeId> stack{from};
  std::vector<bool> visited(nodes_.size(), false);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (id >= nodes_.size() || visited[id]) continue;
    visited[id] = true;
    if (id == to) return true;
    for (NodeId child : nodes_[id].children) stack.push_back(child);
  }
  return false;
}

bool CallGraph::reaches_kind(NodeId from, CallGraphNode::Kind kind,
                             bool use_admin_edges) const {
  std::vector<NodeId> stack{from};
  std::vector<bool> visited(nodes_.size(), false);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (id >= nodes_.size() || visited[id]) continue;
    visited[id] = true;
    if (nodes_[id].kind == kind) return true;
    for (NodeId child : nodes_[id].children) {
      if (!use_admin_edges && admin_edges_.contains({id, child})) continue;
      stack.push_back(child);
    }
  }
  return false;
}

std::vector<bool> CallGraph::reachable_from_files(bool use_admin_edges) const {
  std::vector<bool> visited(nodes_.size(), false);
  std::vector<NodeId> stack;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == CallGraphNode::Kind::kFile) {
      stack.push_back(id);
      visited[id] = true;
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId child : nodes_[id].children) {
      if (visited[child]) continue;
      if (!use_admin_edges && admin_edges_.contains({id, child})) continue;
      visited[child] = true;
      stack.push_back(child);
    }
  }
  return visited;
}

std::vector<bool> CallGraph::admin_only_nodes() const {
  const std::vector<bool> all = reachable_from_files(/*use_admin_edges=*/true);
  const std::vector<bool> pub = reachable_from_files(/*use_admin_edges=*/false);
  std::vector<bool> admin_only(nodes_.size(), false);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    admin_only[id] = all[id] && !pub[id];
  }
  return admin_only;
}

std::string CallGraph::to_dot() const {
  std::string out = "digraph callgraph {\n  node [shape=box];\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const CallGraphNode& n = nodes_[i];
    std::string shape;
    switch (n.kind) {
      case CallGraphNode::Kind::kFile: shape = "folder"; break;
      case CallGraphNode::Kind::kFunction: shape = "box"; break;
      case CallGraphNode::Kind::kFilesAccess: shape = "ellipse"; break;
      case CallGraphNode::Kind::kSink: shape = "octagon"; break;
    }
    out += "  n" + std::to_string(i) + " [shape=" + shape + ", label=" +
           strutil::quote(n.name) + "];\n";
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (NodeId child : nodes_[i].children) {
      out += "  n" + std::to_string(i) + " -> n" + std::to_string(child) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

namespace {

// Builder state shared across all files of one program.
class GraphBuilder {
 public:
  GraphBuilder(const Program& program, const SinkRegistry& sinks)
      : program_(program), sinks_(sinks) {
    for (const phpast::PhpFile* file : program.files) {
      file_nodes_[file->name] =
          graph_.add_node(CallGraphNode::Kind::kFile, file->name);
    }
    for (const auto& [name, info] : program.functions) {
      if (function_nodes_.contains(name)) continue;
      function_nodes_[name] = graph_.add_node(CallGraphNode::Kind::kFunction,
                                              name, info.decl->loc());
    }
  }

  CallGraph build() {
    for (const phpast::PhpFile* file : program_.files) {
      const NodeId file_node = file_nodes_.at(file->name);
      for (const auto& stmt : file->statements) {
        scan_scope_stmt(*stmt, file_node, file);
      }
    }
    return std::move(graph_);
  }

 private:
  NodeId files_access_node() {
    if (files_node_ == kNoNode) {
      files_node_ = graph_.add_node(CallGraphNode::Kind::kFilesAccess, "$_FILES");
    }
    return files_node_;
  }

  NodeId sink_node(std::string_view name) {
    auto it = sink_nodes_.find(name);
    if (it != sink_nodes_.end()) return it->second;
    const NodeId id =
        graph_.add_node(CallGraphNode::Kind::kSink, std::string(name) + "()");
    sink_nodes_.emplace(std::string(name), id);
    return id;
  }

  // Scans a statement that is part of scope `scope`. Function/method
  // declarations open their own scope; everything else is walked.
  void scan_scope_stmt(const Node& node, NodeId scope,
                       const phpast::PhpFile* file) {
    if (node.kind() == NodeKind::kFunctionDecl) {
      const auto& fn = static_cast<const phpast::FunctionDecl&>(node);
      const auto it = function_nodes_.find(strutil::to_lower(fn.name));
      if (it != function_nodes_.end()) {
        for (const auto& s : fn.body) scan_scope_stmt(*s, it->second, file);
      }
      return;
    }
    if (node.kind() == NodeKind::kClassDecl) {
      const auto& cls = static_cast<const phpast::ClassDecl&>(node);
      for (const auto& method : cls.methods) {
        const auto it = function_nodes_.find(strutil::to_lower(method->name));
        if (it != function_nodes_.end()) {
          for (const auto& s : method->body) {
            scan_scope_stmt(*s, it->second, file);
          }
        }
      }
      return;
    }
    // Expressions and other statements: record accesses/calls, then
    // recurse without changing scope.
    record_node(node, scope, file);
    phpast::for_each_child(node, [&](const Node& child) {
      scan_scope_stmt(child, scope, file);
    });
  }

  void record_node(const Node& node, NodeId scope,
                   const phpast::PhpFile* file) {
    switch (node.kind()) {
      case NodeKind::kVariable: {
        const auto& var = static_cast<const phpast::Variable&>(node);
        if (var.name == "_FILES") {
          graph_.add_edge(scope, files_access_node());
        }
        break;
      }
      case NodeKind::kCall: {
        const auto& call = static_cast<const phpast::Call&>(node);
        if (call.is_dynamic()) break;
        if (sinks_.is_sink(call.callee)) {
          graph_.add_edge(scope, sink_node(call.callee));
          break;
        }
        const auto it = function_nodes_.find(call.callee);
        if (it != function_nodes_.end()) {
          graph_.add_edge(scope, it->second);
          // Parameter-input access to $_FILES (paper §III-A edge rule):
          // the callee is treated as accessing $_FILES.
          for (const auto& arg : call.args) {
            if (mentions_files(*arg)) {
              graph_.add_edge(it->second, files_access_node());
              break;
            }
          }
        }
        // Callback edges: string-literal arguments naming user functions
        // (WordPress hook registration and PHP callable arguments).
        // add_action('admin_menu', cb) registrations are flagged as
        // admin-gated: the callback only runs for administrators.
        const bool admin_hook =
            call.callee == "add_action" && !call.args.empty() &&
            call.args[0]->kind() == NodeKind::kStringLit &&
            static_cast<const phpast::StringLit&>(*call.args[0]).value ==
                "admin_menu";
        for (const auto& arg : call.args) {
          record_callback_arg(*arg, scope, admin_hook);
        }
        break;
      }
      case NodeKind::kMethodCall: {
        const auto& call = static_cast<const phpast::MethodCall&>(node);
        const auto it = function_nodes_.find(strutil::to_lower(call.method));
        if (it != function_nodes_.end()) graph_.add_edge(scope, it->second);
        for (const auto& arg : call.args) {
          record_callback_arg(*arg, scope, /*admin_gated=*/false);
        }
        break;
      }
      case NodeKind::kStaticCall: {
        const auto& call = static_cast<const phpast::StaticCall&>(node);
        const std::string qualified = strutil::to_lower(call.class_name) +
                                      "::" + strutil::to_lower(call.method);
        auto it = function_nodes_.find(qualified);
        if (it == function_nodes_.end()) {
          it = function_nodes_.find(strutil::to_lower(call.method));
        }
        if (it != function_nodes_.end()) graph_.add_edge(scope, it->second);
        break;
      }
      case NodeKind::kIncludeExpr: {
        const auto& inc = static_cast<const phpast::IncludeExpr&>(node);
        resolve_include(*inc.path, scope, file);
        break;
      }
      default:
        break;
    }
  }

  // Recognizes PHP callable arguments and adds a call edge from the
  // registering scope to the named function:
  //   'func_name'                       — plain function callback
  //   array($this, 'method'),           — method callbacks; resolved by
  //   array('Class', 'method'), [...]     bare method name
  void record_callback_arg(const phpast::Expr& arg, NodeId scope,
                           bool admin_gated) {
    if (arg.kind() == NodeKind::kStringLit) {
      const auto& lit = static_cast<const phpast::StringLit&>(arg);
      const auto cb = function_nodes_.find(strutil::to_lower(lit.value));
      if (cb != function_nodes_.end()) {
        graph_.add_edge(scope, cb->second, admin_gated);
      }
      return;
    }
    if (arg.kind() == NodeKind::kArrayLit) {
      const auto& lit = static_cast<const phpast::ArrayLit&>(arg);
      if (lit.items.size() != 2) return;
      const phpast::Expr* member = lit.items[1].value;
      if (member == nullptr || member->kind() != NodeKind::kStringLit) return;
      const std::string method = strutil::to_lower(
          static_cast<const phpast::StringLit&>(*member).value);
      // Prefer Class::method when the receiver names a class.
      if (lit.items[0].value != nullptr &&
          lit.items[0].value->kind() == NodeKind::kStringLit) {
        const std::string qualified =
            strutil::to_lower(static_cast<const phpast::StringLit&>(
                                  *lit.items[0].value)
                                  .value) +
            "::" + method;
        if (const auto it = function_nodes_.find(qualified);
            it != function_nodes_.end()) {
          graph_.add_edge(scope, it->second, admin_gated);
          return;
        }
      }
      if (const auto it = function_nodes_.find(method);
          it != function_nodes_.end()) {
        graph_.add_edge(scope, it->second, admin_gated);
      }
    }
  }

  void resolve_include(const phpast::Expr& path, NodeId scope,
                       const phpast::PhpFile* including) {
    // Collect trailing string literals in the path expression and match
    // them against registered file names by suffix.
    std::string suffix;
    phpast::walk(path, [&suffix](const Node& n) {
      if (n.kind() == NodeKind::kStringLit) {
        suffix = static_cast<const phpast::StringLit&>(n).value;
      }
      return true;
    });
    if (suffix.empty()) return;
    while (!suffix.empty() && (suffix.front() == '/' || suffix.front() == '.')) {
      suffix.erase(suffix.begin());
    }
    for (const auto& [name, node_id] : file_nodes_) {
      if (name != including->name && name.size() >= suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
        graph_.add_edge(scope, node_id);
        return;
      }
    }
  }

  const Program& program_;
  const SinkRegistry& sinks_;
  CallGraph graph_;
  std::map<std::string, NodeId, std::less<>> file_nodes_;
  std::map<std::string, NodeId, std::less<>> function_nodes_;
  std::map<std::string, NodeId, std::less<>> sink_nodes_;
  NodeId files_node_ = kNoNode;
};

}  // namespace

CallGraph build_call_graph(const Program& program, const SinkRegistry& sinks) {
  return GraphBuilder(program, sinks).build();
}

}  // namespace uchecker::core
