// Extended call graph of paper §III-A.
//
// Nodes represent PHP files, functions (including class methods), read
// accesses to the $_FILES superglobal, and invocations of the file-upload
// sinks move_uploaded_file() / file_put_contents(). Edges:
//   file -> file          (include / require with a resolvable path)
//   file -> function      (call in the file body)
//   function -> function  (call in the function body)
//   scope -> $_FILES      (read access)
//   scope -> sink         (sink invocation)
// plus WordPress-style callback edges: a string-literal argument of a
// hook-registration call (add_action, add_filter, register_*_hook, ...)
// naming a user-defined function creates a call edge from the registering
// scope to that function.
//
// Recursive edges are skipped so the graph stays acyclic (paper: "we will
// not build edges for recursive calls").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/sinks.h"
#include "phpast/ast.h"
#include "support/source.h"

namespace uchecker::core {

// The program under analysis: all parsed files plus a function registry.
struct Program {
  std::vector<const phpast::PhpFile*> files;

  struct FunctionInfo {
    std::string name;  // lowercase; methods as "class::method" (lowercase)
    const phpast::FunctionDecl* decl = nullptr;
    FileId file;
  };
  // Keyed by lowercase name. Populated by build_program().
  std::map<std::string, FunctionInfo, std::less<>> functions;
};

// Collects every file-level and method-level function into a registry.
[[nodiscard]] Program build_program(const std::vector<const phpast::PhpFile*>& files);

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

struct CallGraphNode {
  enum class Kind : std::uint8_t { kFile, kFunction, kFilesAccess, kSink };

  Kind kind = Kind::kFile;
  std::string name;  // file name, function name, "$_FILES", or sink name
  SourceLoc loc;
  std::vector<NodeId> children;  // outgoing edges, insertion order
};

class CallGraph {
 public:
  [[nodiscard]] NodeId add_node(CallGraphNode::Kind kind, std::string name,
                                SourceLoc loc = {});
  // Adds a directed edge a -> b unless it already exists or would create
  // a cycle (covers both self-recursion and mutual recursion).
  // `admin_gated` marks callback registrations that WordPress exposes
  // only to administrators (add_action('admin_menu', ...)); see
  // admin_only_nodes().
  void add_edge(NodeId from, NodeId to, bool admin_gated = false);

  [[nodiscard]] const CallGraphNode& node(NodeId id) const { return nodes_[id]; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<CallGraphNode>& nodes() const { return nodes_; }

  [[nodiscard]] bool reaches(NodeId from, NodeId to) const;

  // All special nodes reachable from `from`, split by kind. With
  // `use_admin_edges == false`, admin-gated callback registrations are
  // not traversed (the §VI admin-gating extension).
  [[nodiscard]] bool reaches_kind(NodeId from, CallGraphNode::Kind kind,
                                  bool use_admin_edges = true) const;

  // Nodes reachable from file entry points *only* through admin-gated
  // edges. Paper §VI: the two false positives of Table III exist because
  // "UChecker ... does not currently model add_action() to consider
  // whether a script is running under admin's privilege"; this predicate
  // implements that modeling as an opt-in extension.
  [[nodiscard]] std::vector<bool> admin_only_nodes() const;

  // Graphviz rendering (paper Fig. 3).
  [[nodiscard]] std::string to_dot() const;

 private:
  [[nodiscard]] std::vector<bool> reachable_from_files(bool use_admin_edges) const;

  std::vector<CallGraphNode> nodes_;
  std::set<std::pair<NodeId, NodeId>> admin_edges_;
};

// Builds the extended call graph for a program. `sinks` selects the
// file-writing functions treated as upload sinks (paper defaults:
// move_uploaded_file + file_put_contents).
[[nodiscard]] CallGraph build_call_graph(
    const Program& program,
    const SinkRegistry& sinks = SinkRegistry::paper_defaults());

}  // namespace uchecker::core
