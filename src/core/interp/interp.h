// AST-based symbolic execution engine (paper §III-B).
//
// The interpreter statically evaluates the AST of the analysis root
// selected by locality analysis, producing one shared heap graph plus one
// environment per execution path. Forking happens at conditionals (and at
// loop heads, switch cases, foreach entry), exactly as the paper's
// eval(if e then S1 else S2) rule describes: the environment set is
// duplicated, each copy's reachability constraint `cur` is extended with
// the (negated) branch condition via ER(), and the results are joined.
//
// Expression evaluation uses a per-environment operand stack instead of
// the paper's label vectors: a path fork copies the stack, which keeps
// partial results aligned with their paths even when a user-defined
// function call forks mid-expression.
//
// Loops are not executed precisely (paper §VI acknowledges the same
// limitation): each loop forks into a skip path and a bounded number of
// unrolled iterations.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/callgraph/callgraph.h"
#include "core/callgraph/locality.h"
#include "core/heapgraph/heapgraph.h"
#include "core/sinks.h"
#include "phpast/ast.h"
#include "support/deadline.h"
#include "support/diag.h"

namespace uchecker::telemetry {
class ScanTrace;
}  // namespace uchecker::telemetry

namespace uchecker::profile {
class PathProfiler;
}  // namespace uchecker::profile

namespace uchecker::core {

// Resource limits. Exhaustion is reported, never fatal: the detector
// turns it into a "analysis incomplete" verdict, which is how the paper's
// Cimy-User-Extra-Fields false negative arises (248K paths exceeded the
// machine's memory).
struct Budget {
  std::size_t max_paths = 100'000;
  std::size_t max_objects = 2'000'000;
  int max_call_depth = 24;
  int loop_unroll = 1;
  int max_foreach_entries = 4;  // full unroll bound for known arrays
  // include/require whose path resolves to a file of the program are
  // executed inline up to this nesting depth (0 disables following).
  int max_include_depth = 8;
  // Wall-clock budget for one whole scan, distinct from the path/object
  // budgets above (0 = unlimited). The detector starts the clock when
  // scan() begins; expiry degrades the scan to a partial report with
  // deadline_exceeded set instead of hanging.
  std::chrono::milliseconds time_limit{0};
  // Materialized deadline/cancellation token for the current scan. Set
  // by the detector (from time_limit and any fleet-level deadline);
  // user code configures time_limit instead.
  Deadline deadline;
  // Per-scan telemetry trace, set by the detector when a Telemetry is
  // attached to ScanOptions. When non-null, the interpreter samples
  // progress (live paths, heap-graph objects, bytes) next to the
  // deadline poll and records budget/deadline exhaustion events. Null
  // (the default) costs one pointer test per poll.
  telemetry::ScanTrace* trace = nullptr;
  // Per-scan path-explosion profiler (ScanOptions::profile). When
  // non-null the interpreter attributes forked paths to source fork
  // sites and samples live-path/heap growth on the deadline-poll
  // stride. Null (the default) costs one pointer test per fork
  // construct — the same zero-overhead contract as `trace`.
  profile::PathProfiler* profiler = nullptr;
};

// One reachable invocation of a file-upload sink, with everything the
// vulnerability model (§III-C) needs: the source/destination objects and
// the path's reachability constraint at the moment of the call.
struct SinkHit {
  std::string sink_name;
  SourceLoc loc;
  Label src = kNoLabel;           // e_src — the uploaded content
  Label dst = kNoLabel;           // e_dst — the destination file name
  Label reachability = kNoLabel;  // env.cur() at the call site
};

struct InterpStats {
  std::size_t paths = 0;        // final environment count
  std::size_t objects = 0;      // heap graph size
  std::size_t peak_paths = 0;
  std::size_t env_bytes = 0;    // accounted environment memory
  std::size_t cons_hits = 0;    // add_* calls answered by hash-consing
  bool budget_exhausted = false;
  bool deadline_exceeded = false;  // wall-clock deadline hit mid-run
};

struct InterpResult {
  HeapGraph graph;
  std::vector<Env> envs;
  std::vector<SinkHit> sinks;
  InterpStats stats;
};

class Interpreter {
 public:
  Interpreter(const Program& program, DiagnosticSink& diags,
              Budget budget = {},
              const SinkRegistry& sinks = SinkRegistry::paper_defaults());

  // Symbolically executes the body of `root` (a PHP file or a function).
  // For a function root, parameters are bound to fresh symbolic values.
  [[nodiscard]] InterpResult run(const AnalysisRoot& root);

  // --- helpers shared with the builtin models (builtins.cc) ---

  [[nodiscard]] HeapGraph& graph() { return graph_; }

  // Fresh symbol with a stable, unique display name derived from `hint`.
  Label fresh_symbol(std::string_view hint, Type type, SourceLoc loc,
                     bool tainted = false);

  // The pre-structured $_FILES entry array for a given field index
  // (paper §III-B4 / Fig. 6); cached per field key.
  Label files_entry_array(const std::string& field_key, SourceLoc loc);

  // Registered association from an uploaded-file "name" object to the
  // symbols for its filename stem and extension. Lets builtin models of
  // pathinfo()/explode()/strrchr() return the very extension symbol the
  // destination constraint mentions.
  [[nodiscard]] std::optional<std::pair<Label, Label>> name_parts(Label name) const;
  void register_name_parts(Label name, Label stem, Label ext);

 private:
  friend struct BuiltinContext;

  // --- env-set plumbing
  // Interned id for a variable name; hoisted out of per-env loops so a
  // fork-heavy statement interns each name once, not once per path.
  [[nodiscard]] VarId vid(std::string_view name) {
    return interner_->intern(name);
  }
  void push(Env& env, Label label);
  Label pop(Env& env);
  [[nodiscard]] bool any_running() const;
  void check_budget();

  // --- evaluation (pushes one operand per running env)
  void eval_expr(const phpast::Expr& expr);
  void eval_variable(const phpast::Variable& var);
  void eval_array_access(const phpast::ArrayAccess& access);
  void eval_assign(const phpast::Assign& assign);
  void eval_call(const phpast::Call& call);
  void eval_builtin_or_unknown(std::string_view name,
                               const std::vector<const phpast::Expr*>& arg_exprs,
                               SourceLoc loc);
  void eval_user_function(const Program::FunctionInfo& info,
                          std::size_t arg_count, SourceLoc loc);
  void record_sink(std::string_view name, std::size_t arg_count,
                   SourceLoc loc);

  // Assignment into a possibly-nested lvalue for one environment.
  void assign_into(Env& env, const phpast::Expr& target, Label value,
                   SourceLoc loc);

  // --- statements
  void exec_stmts(Span<const phpast::StmtPtr> stmts);
  void exec_stmt(const phpast::Stmt& stmt);
  void exec_if(const phpast::If& stmt);
  void exec_branch(const std::vector<Label>& cond_labels, bool negate,
                   Span<const phpast::StmtPtr> body,
                   std::vector<Env> base_envs, std::vector<Env>& out);
  void exec_switch(const phpast::Switch& stmt);
  void exec_loop(const phpast::Expr* cond,
                 Span<const phpast::StmtPtr> body,
                 const phpast::ExprList* step, SourceLoc loc,
                 std::string_view kind_detail);
  void exec_foreach(const phpast::Foreach& stmt);

  // Pops per-statement expression results from running envs.
  void discard_results(std::size_t count);

  // include/require: resolves the path expression against the program's
  // files (trailing-string-literal suffix match, as in the call graph)
  // and executes the included file's top-level statements inline.
  void eval_include(const phpast::IncludeExpr& include);
  [[nodiscard]] const phpast::PhpFile* resolve_include_target(
      const phpast::Expr& path) const;

  const Program& program_;
  DiagnosticSink& diags_;
  Budget budget_;
  const SinkRegistry& sink_registry_;

  HeapGraph graph_;
  // Variable-name interner shared with every environment forked during
  // this run (environments copy the shared_ptr, not the table).
  std::shared_ptr<VarInterner> interner_ = std::make_shared<VarInterner>();
  std::vector<Env> envs_;
  std::vector<SinkHit> sinks_;
  InterpStats stats_;
  bool aborted_ = false;

  // Shared (cross-environment) object caches.
  std::map<std::string, Label, std::less<>> superglobals_;
  std::map<std::string, Label> files_entries_;
  std::map<std::string, Label, std::less<>> globals_;
  std::map<Label, std::pair<Label, Label>> name_parts_;

  std::vector<std::string> call_chain_;     // active user-function inlining
  std::vector<std::string> include_chain_;  // active include nesting
  std::set<std::string> included_once_;     // include_once/require_once
  std::uint64_t symbol_counter_ = 0;
  std::uint32_t deadline_poll_ = 0;  // stride counter for deadline checks
};

}  // namespace uchecker::core
