#include "core/interp/builtins.h"

#include <functional>
#include <map>
#include <optional>

#include "core/interp/interp.h"
#include "support/strutil.h"

namespace uchecker::core {
namespace {

using Handler = std::function<Label(BuiltinContext&)>;

Label arg_or_fresh(BuiltinContext& ctx, std::size_t i, Type type,
                   const char* hint) {
  if (i < ctx.args.size() && ctx.args[i] != kNoLabel) return ctx.args[i];
  return ctx.interp.fresh_symbol(hint, type, ctx.loc);
}

// Typed opaque model: an O_FUNC node over the argument objects.
Label opaque(BuiltinContext& ctx, std::string_view name, Type type) {
  std::vector<Label> children;
  for (Label a : ctx.args) {
    if (a != kNoLabel) children.push_back(a);
  }
  return ctx.graph.add_func(std::string(name), type, std::move(children),
                            ctx.loc);
}

// Recognizes (stem . "." . ext) built by the pre-structured $_FILES
// model behind identity wrappers; returns {stem, ext} labels.
std::optional<std::pair<Label, Label>> find_name_parts(BuiltinContext& ctx,
                                                       Label label) {
  const Label resolved = resolve_through_identity(ctx.graph, label);
  return ctx.interp.name_parts(resolved);
}

// ---------------------------------------------------------------------------
// Semantic models

Label model_basename(BuiltinContext& ctx) {
  const Label arg = arg_or_fresh(ctx, 0, Type::kString, "basename_arg");
  const Object& obj = ctx.graph.at(arg);
  if (obj.kind == Object::Kind::kConcrete && obj.type == Type::kString) {
    const std::string base(
        strutil::path_basename(std::get<std::string>(obj.value)));
    return ctx.graph.add_concrete(Value(base), ctx.loc);
  }
  return ctx.graph.add_func("basename", Type::kString, {arg}, ctx.loc);
}

Label model_pathinfo(BuiltinContext& ctx) {
  const Label arg = arg_or_fresh(ctx, 0, Type::kString, "pathinfo_arg");
  const auto parts = find_name_parts(ctx, arg);

  // Which component? Second argument is a PATHINFO_* constant.
  std::int64_t component = 0;  // 0 == whole array
  if (ctx.args.size() > 1) {
    const Object& sel = ctx.graph.at(ctx.args[1]);
    if (sel.kind == Object::Kind::kConcrete && sel.type == Type::kInt) {
      component = std::get<std::int64_t>(sel.value);
    } else {
      component = -1;  // dynamic selector: fall back to a fresh symbol
    }
  }

  const auto stem_label = [&] {
    return parts ? parts->first
                 : ctx.interp.fresh_symbol("pathinfo_filename", Type::kString,
                                           ctx.loc);
  };
  const auto ext_label = [&] {
    return parts ? parts->second
                 : ctx.interp.fresh_symbol("pathinfo_ext", Type::kString,
                                           ctx.loc);
  };

  switch (component) {
    case 0: {  // full array: dirname, basename, extension, filename
      std::vector<ArrayEntry> entries{
          {"dirname", false,
           ctx.interp.fresh_symbol("pathinfo_dir", Type::kString, ctx.loc)},
          {"basename", false, arg},
          {"extension", false, ext_label()},
          {"filename", false, stem_label()},
      };
      return ctx.graph.add_array(std::move(entries), ctx.loc);
    }
    case 1:  // PATHINFO_DIRNAME
      return ctx.interp.fresh_symbol("pathinfo_dir", Type::kString, ctx.loc);
    case 2:  // PATHINFO_BASENAME
      return arg;
    case 4:  // PATHINFO_EXTENSION
      return ext_label();
    case 8:  // PATHINFO_FILENAME
      return stem_label();
    default:
      return ctx.interp.fresh_symbol("pathinfo", Type::kString, ctx.loc);
  }
}

Label model_explode(BuiltinContext& ctx) {
  // explode('.', $files_name) is the idiomatic extension split; when the
  // subject is the pre-structured name, return a known-structure array
  // [stem, ext] so end()/[count-1] retrieves the extension symbol.
  if (ctx.args.size() >= 2) {
    const Object& sep = ctx.graph.at(ctx.args[0]);
    if (sep.kind == Object::Kind::kConcrete && sep.type == Type::kString &&
        std::get<std::string>(sep.value) == ".") {
      if (const auto parts = find_name_parts(ctx, ctx.args[1])) {
        std::vector<ArrayEntry> entries{
            {"0", true, parts->first},
            {"1", true, parts->second},
        };
        return ctx.graph.add_array(std::move(entries), ctx.loc);
      }
    }
  }
  return opaque(ctx, "explode", Type::kArray);
}

Label model_end(BuiltinContext& ctx) {
  // Table II "Tail Element": trl(e_n) when the haystack structure is
  // known; a fresh string symbol otherwise.
  const Label arg = arg_or_fresh(ctx, 0, Type::kArray, "end_arg");
  const Object& obj = ctx.graph.at(arg);
  if (obj.kind == Object::Kind::kArray && !obj.entries.empty()) {
    return obj.entries.back().value;
  }
  return ctx.graph.add_func("end", Type::kString, {arg}, ctx.loc);
}

Label model_reset(BuiltinContext& ctx) {
  const Label arg = arg_or_fresh(ctx, 0, Type::kArray, "reset_arg");
  const Object& obj = ctx.graph.at(arg);
  if (obj.kind == Object::Kind::kArray && !obj.entries.empty()) {
    return obj.entries.front().value;
  }
  return ctx.graph.add_func("reset", Type::kString, {arg}, ctx.loc);
}

Label model_in_array(BuiltinContext& ctx) {
  // Table II "Array Check": an OR over equality tests when the haystack
  // is a recognized array; a fresh symbol otherwise.
  if (ctx.args.size() >= 2) {
    const Label needle = ctx.args[0];
    const Object& haystack = ctx.graph.at(ctx.args[1]);
    if (haystack.kind == Object::Kind::kArray && !haystack.entries.empty()) {
      // Copy: adding op nodes below may reallocate the object arena and
      // invalidate `haystack`.
      const std::vector<ArrayEntry> entries = haystack.entries;
      Label acc = kNoLabel;
      for (const ArrayEntry& e : entries) {
        const Label eq = ctx.graph.add_op(OpKind::kEqual, Type::kBool,
                                          {needle, e.value}, ctx.loc);
        acc = acc == kNoLabel
                  ? eq
                  : ctx.graph.add_op(OpKind::kOr, Type::kBool, {acc, eq},
                                     ctx.loc);
      }
      return acc;
    }
  }
  return ctx.interp.fresh_symbol("in_array", Type::kBool, ctx.loc);
}

Label model_array_keys(BuiltinContext& ctx) {
  const Label arg = arg_or_fresh(ctx, 0, Type::kArray, "array_keys_arg");
  const Object& obj = ctx.graph.at(arg);
  if (obj.kind == Object::Kind::kArray) {
    // Copy: adding key objects below may reallocate the object arena.
    const std::vector<ArrayEntry> source = obj.entries;
    std::vector<ArrayEntry> entries;
    std::int64_t i = 0;
    for (const ArrayEntry& e : source) {
      const Label key = ctx.graph.add_concrete(
          e.int_key ? Value(strutil::php_intval(e.key)) : Value(e.key),
          ctx.loc);
      entries.push_back(ArrayEntry{std::to_string(i++), true, key});
    }
    return ctx.graph.add_array(std::move(entries), ctx.loc);
  }
  return opaque(ctx, "array_keys", Type::kArray);
}

Label model_count(BuiltinContext& ctx) {
  const Label arg = arg_or_fresh(ctx, 0, Type::kArray, "count_arg");
  const Object& obj = ctx.graph.at(arg);
  if (obj.kind == Object::Kind::kArray) {
    return ctx.graph.add_concrete(
        Value(static_cast<std::int64_t>(obj.entries.size())), ctx.loc);
  }
  return ctx.graph.add_func("count", Type::kInt, {arg}, ctx.loc);
}

Label model_array_merge(BuiltinContext& ctx) {
  // Merge known-structure arrays; any unknown operand degrades the whole
  // result to an opaque array (its keys are unknowable).
  std::vector<ArrayEntry> entries;
  std::int64_t next_index = 0;
  for (Label arg : ctx.args) {
    const Object& obj = ctx.graph.at(arg);
    if (obj.kind != Object::Kind::kArray) {
      return opaque(ctx, "array_merge", Type::kArray);
    }
    for (const ArrayEntry& e : obj.entries) {
      ArrayEntry merged = e;
      if (e.int_key) {
        // PHP renumbers integer keys on merge.
        merged.key = std::to_string(next_index++);
      }
      // String keys: later arrays overwrite earlier ones.
      bool replaced = false;
      if (!merged.int_key) {
        for (ArrayEntry& existing : entries) {
          if (!existing.int_key && existing.key == merged.key) {
            existing.value = merged.value;
            replaced = true;
            break;
          }
        }
      }
      if (!replaced) entries.push_back(std::move(merged));
    }
  }
  return ctx.graph.add_array(std::move(entries), ctx.loc);
}

Label model_implode(BuiltinContext& ctx) {
  // implode(glue, known-array) desugars into a concatenation chain, so
  // extension symbols keep flowing through path assembly.
  if (ctx.args.size() >= 2) {
    const Object& glue = ctx.graph.at(ctx.args[0]);
    const Object& arr = ctx.graph.at(ctx.args[1]);
    if (glue.kind == Object::Kind::kConcrete &&
        glue.type == Type::kString &&
        arr.kind == Object::Kind::kArray && !arr.entries.empty()) {
      // Copy glue text and entries: adding concat nodes below may
      // reallocate the object arena and invalidate `glue`/`arr`.
      const std::string glue_text = std::get<std::string>(glue.value);
      const std::vector<ArrayEntry> entries = arr.entries;
      Label acc = entries.front().value;
      for (std::size_t i = 1; i < entries.size(); ++i) {
        const Label g = ctx.graph.add_concrete(Value(glue_text), ctx.loc);
        acc = ctx.graph.add_op(OpKind::kConcat, Type::kString, {acc, g},
                               ctx.loc);
        acc = ctx.graph.add_op(OpKind::kConcat, Type::kString,
                               {acc, entries[i].value}, ctx.loc);
      }
      return acc;
    }
  }
  return opaque(ctx, "implode", Type::kString);
}

Label model_sprintf(BuiltinContext& ctx) {
  // Concrete formats containing only %s/%d directives desugar into a
  // concatenation chain, preserving extension flow through the format.
  if (!ctx.args.empty()) {
    const Object& fmt = ctx.graph.at(ctx.args[0]);
    if (fmt.kind == Object::Kind::kConcrete && fmt.type == Type::kString) {
      const std::string& format = std::get<std::string>(fmt.value);
      std::vector<Label> pieces;
      std::string literal;
      std::size_t next_arg = 1;
      bool simple = true;
      for (std::size_t i = 0; i < format.size() && simple; ++i) {
        if (format[i] == '%' && i + 1 < format.size()) {
          const char d = format[i + 1];
          if (d == '%') {
            literal += '%';
            ++i;
          } else if (d == 's' || d == 'd') {
            if (!literal.empty()) {
              pieces.push_back(ctx.graph.add_concrete(Value(literal), ctx.loc));
              literal.clear();
            }
            pieces.push_back(
                arg_or_fresh(ctx, next_arg++, Type::kString, "sprintf_arg"));
            ++i;
          } else {
            simple = false;
          }
        } else {
          literal += format[i];
        }
      }
      if (simple) {
        if (!literal.empty()) {
          pieces.push_back(ctx.graph.add_concrete(Value(literal), ctx.loc));
        }
        if (pieces.empty()) {
          return ctx.graph.add_concrete(Value(std::string()), ctx.loc);
        }
        Label acc = pieces[0];
        for (std::size_t i = 1; i < pieces.size(); ++i) {
          acc = ctx.graph.add_op(OpKind::kConcat, Type::kString,
                                 {acc, pieces[i]}, ctx.loc);
        }
        return acc;
      }
    }
  }
  return opaque(ctx, "sprintf", Type::kString);
}

Label model_strrchr(BuiltinContext& ctx) {
  // strrchr($name, '.') on the pre-structured name yields "." . ext.
  if (ctx.args.size() >= 2) {
    const Object& needle = ctx.graph.at(ctx.args[1]);
    if (needle.kind == Object::Kind::kConcrete &&
        needle.type == Type::kString &&
        std::get<std::string>(needle.value) == ".") {
      if (const auto parts = find_name_parts(ctx, ctx.args[0])) {
        const Label dot = ctx.graph.add_concrete(Value(std::string(".")),
                                                 ctx.loc);
        return ctx.graph.add_op(OpKind::kConcat, Type::kString,
                                {dot, parts->second}, ctx.loc);
      }
    }
  }
  return opaque(ctx, "strrchr", Type::kString);
}

// ---------------------------------------------------------------------------
// Registry

const std::map<std::string, Handler, std::less<>>& semantic_registry() {
  static const auto* registry = new std::map<std::string, Handler, std::less<>>{
      {"basename", model_basename},
      {"pathinfo", model_pathinfo},
      {"explode", model_explode},
      {"end", model_end},
      {"reset", model_reset},
      {"current", model_reset},
      {"in_array", model_in_array},
      {"array_keys", model_array_keys},
      {"count", model_count},
      {"sizeof", model_count},
      {"sprintf", model_sprintf},
      {"strrchr", model_strrchr},
      {"array_merge", model_array_merge},
      {"implode", model_implode},
      {"join", model_implode},
  };
  return *registry;
}

// Result types for typed opaque builtins (Table II operations plus the
// common library surface of WordPress-style plugins).
const std::map<std::string, Type, std::less<>>& typed_registry() {
  static const auto* registry = new std::map<std::string, Type, std::less<>>{
      {"strlen", Type::kInt},
      {"strpos", Type::kInt},
      {"strrpos", Type::kInt},
      {"stripos", Type::kInt},
      {"intval", Type::kInt},
      {"abs", Type::kInt},
      {"filesize", Type::kInt},
      {"time", Type::kInt},
      {"rand", Type::kInt},
      {"mt_rand", Type::kInt},
      {"substr", Type::kString},
      {"str_replace", Type::kString},
      {"preg_replace", Type::kString},
      {"strstr", Type::kString},
      {"strval", Type::kString},
      {"implode", Type::kString},
      {"join", Type::kString},
      {"md5", Type::kString},
      {"sha1", Type::kString},
      {"uniqid", Type::kString},
      {"date", Type::kString},
      {"dirname", Type::kString},
      {"realpath", Type::kString},
      {"tempnam", Type::kString},
      {"json_encode", Type::kString},
      {"serialize", Type::kString},
      {"wp_generate_password", Type::kString},
      {"number_format", Type::kString},
      {"file_exists", Type::kBool},
      {"is_dir", Type::kBool},
      {"is_file", Type::kBool},
      {"is_writable", Type::kBool},
      {"is_readable", Type::kBool},
      {"is_uploaded_file", Type::kBool},
      {"mkdir", Type::kBool},
      {"unlink", Type::kBool},
      {"chmod", Type::kBool},
      {"copy", Type::kBool},
      {"rename", Type::kBool},
      {"fwrite", Type::kInt},
      {"fclose", Type::kBool},
      {"preg_match", Type::kInt},
      {"function_exists", Type::kBool},
      {"current_user_can", Type::kBool},
      {"is_admin", Type::kBool},
      {"wp_verify_nonce", Type::kBool},
      {"check_admin_referer", Type::kBool},
      {"getimagesize", Type::kArray},
      {"wp_handle_upload", Type::kArray},
      {"wp_check_filetype", Type::kArray},
      {"get_option", Type::kUnknown},
      {"wp_upload_dir", Type::kUnknown},
      {"get_current_user_id", Type::kInt},
      {"update_option", Type::kBool},
      {"update_user_meta", Type::kBool},
      {"get_user_meta", Type::kUnknown},
      {"esc_attr", Type::kString},
      {"esc_html", Type::kString},
      {"esc_url", Type::kString},
      {"__", Type::kString},
      {"_e", Type::kString},
      {"fopen", Type::kUnknown},
      {"fread", Type::kString},
      {"file_get_contents", Type::kString},
      {"ini_get", Type::kString},
      {"extract", Type::kInt},
      {"error_log", Type::kBool},
      {"header", Type::kNull},
      {"die", Type::kNull},
      {"wp_die", Type::kNull},
      {"plugin_dir_path", Type::kString},
      {"plugin_dir_url", Type::kString},
      {"plugins_url", Type::kString},
      {"admin_url", Type::kString},
      {"site_url", Type::kString},
      {"home_url", Type::kString},
      {"wp_mkdir_p", Type::kBool},
      {"trailingslashit", Type::kString},
      {"wp_max_upload_size", Type::kInt},
      {"size_format", Type::kString},
      {"wp_insert_attachment", Type::kInt},
      {"wp_update_attachment_metadata", Type::kBool},
      {"wp_generate_attachment_metadata", Type::kArray},
      {"get_post_meta", Type::kUnknown},
      {"update_post_meta", Type::kBool},
      {"wp_enqueue_script", Type::kNull},
      {"wp_enqueue_style", Type::kNull},
      {"add_option", Type::kBool},
      {"delete_option", Type::kBool},
      {"zip_open", Type::kUnknown},
      {"ziparchive::open", Type::kBool},
      {"apply_filters", Type::kUnknown},
      {"do_action", Type::kNull},
  };
  return *registry;
}

// Hook registrars return true and have no symbolic effect here: the call
// graph already models their callback edges.
bool is_hook_registrar(std::string_view name) {
  return name == "add_action" || name == "add_filter" ||
         name == "remove_action" || name == "remove_filter" ||
         name == "register_activation_hook" ||
         name == "register_deactivation_hook" ||
         name == "add_shortcode" || name == "add_menu_page" ||
         name == "add_submenu_page" || name == "add_options_page";
}

}  // namespace

bool is_identity_builtin(std::string_view name) {
  return name == "strtolower" || name == "strtoupper" || name == "trim" ||
         name == "ltrim" || name == "rtrim" || name == "stripslashes" ||
         name == "addslashes" || name == "urldecode" ||
         name == "rawurldecode" || name == "urlencode" ||
         name == "sanitize_file_name" || name == "sanitize_text_field" ||
         name == "wp_unslash" || name == "htmlspecialchars" ||
         name == "wp_unique_filename" || name == "strval" ||
         name == "ucfirst" || name == "lcfirst" || name == "ucwords" ||
         name == "mb_strtolower" || name == "mb_strtoupper";
}

Label resolve_through_identity(const HeapGraph& graph, Label label) {
  for (int guard = 0; guard < 64; ++guard) {
    const Object* obj = graph.find(label);
    if (obj == nullptr || obj->kind != Object::Kind::kFunc ||
        obj->children.empty()) {
      return label;
    }
    if (is_identity_builtin(obj->name) || obj->name == "basename") {
      label = obj->children.back();
      continue;
    }
    return label;
  }
  return label;
}

Label dispatch_builtin(BuiltinContext& ctx, std::string_view name) {
  const auto& semantic = semantic_registry();
  if (const auto it = semantic.find(name); it != semantic.end()) {
    return it->second(ctx);
  }
  if (is_identity_builtin(name)) {
    const Label arg = arg_or_fresh(ctx, 0, Type::kString, "identity_arg");
    ctx.graph.refine_type(arg, Type::kString);
    return ctx.graph.add_func(std::string(name), Type::kString, {arg},
                              ctx.loc);
  }
  if (is_hook_registrar(name)) {
    return ctx.graph.add_concrete(Value(true), ctx.loc);
  }
  const auto& typed = typed_registry();
  if (const auto it = typed.find(name); it != typed.end()) {
    return opaque(ctx, name, it->second);
  }
  // Level 3: unknown function, unknown type.
  return opaque(ctx, name, Type::kUnknown);
}

Label builtin_const_value(Interpreter& interp, std::string_view name,
                          SourceLoc loc) {
  HeapGraph& graph = interp.graph();
  static const std::map<std::string, std::int64_t, std::less<>>* int_consts =
      new std::map<std::string, std::int64_t, std::less<>>{
          {"PATHINFO_DIRNAME", 1},    {"PATHINFO_BASENAME", 2},
          {"PATHINFO_EXTENSION", 4},  {"PATHINFO_FILENAME", 8},
          {"UPLOAD_ERR_OK", 0},       {"UPLOAD_ERR_INI_SIZE", 1},
          {"UPLOAD_ERR_FORM_SIZE", 2}, {"UPLOAD_ERR_PARTIAL", 3},
          {"UPLOAD_ERR_NO_FILE", 4},  {"PHP_INT_MAX", 9223372036854775807LL},
          {"E_ALL", 32767},           {"E_ERROR", 1},
          {"JSON_PRETTY_PRINT", 128}, {"FILTER_VALIDATE_INT", 257},
      };
  if (const auto it = int_consts->find(name); it != int_consts->end()) {
    return graph.add_concrete(Value(it->second), loc);
  }
  if (name == "DIRECTORY_SEPARATOR") {
    return graph.add_concrete(Value(std::string("/")), loc);
  }
  if (name == "PHP_EOL") {
    return graph.add_concrete(Value(std::string("\n")), loc);
  }
  return interp.fresh_symbol(strutil::cat("const_", name), Type::kUnknown,
                             loc);
}

}  // namespace uchecker::core
