#include "core/interp/interp.h"

#include <algorithm>
#include <cassert>

#include "core/interp/builtins.h"
#include "phpast/visitor.h"
#include "support/fault_injector.h"
#include "support/profile.h"
#include "support/strutil.h"
#include "support/telemetry.h"

namespace uchecker::core {

using phpast::BinaryOp;
using phpast::Expr;
using phpast::NodeKind;
using phpast::Stmt;
using phpast::UnaryOp;

namespace {

bool is_superglobal(std::string_view name) {
  return name == "_FILES" || name == "_POST" || name == "_GET" ||
         name == "_REQUEST" || name == "_SERVER" || name == "_COOKIE" ||
         name == "_SESSION" || name == "_ENV" || name == "GLOBALS";
}

OpKind op_kind_for(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return OpKind::kAdd;
    case BinaryOp::kSub: return OpKind::kSub;
    case BinaryOp::kMul: return OpKind::kMul;
    case BinaryOp::kDiv: return OpKind::kDiv;
    case BinaryOp::kMod: return OpKind::kMod;
    case BinaryOp::kPow: return OpKind::kPow;
    case BinaryOp::kConcat: return OpKind::kConcat;
    case BinaryOp::kEqual: return OpKind::kEqual;
    case BinaryOp::kNotEqual: return OpKind::kNotEqual;
    case BinaryOp::kIdentical: return OpKind::kIdentical;
    case BinaryOp::kNotIdentical: return OpKind::kNotIdentical;
    case BinaryOp::kLess: return OpKind::kLess;
    case BinaryOp::kGreater: return OpKind::kGreater;
    case BinaryOp::kLessEqual: return OpKind::kLessEqual;
    case BinaryOp::kGreaterEqual: return OpKind::kGreaterEqual;
    case BinaryOp::kSpaceship: return OpKind::kSub;  // ordering proxy
    case BinaryOp::kAnd: return OpKind::kAnd;
    case BinaryOp::kOr: return OpKind::kOr;
    case BinaryOp::kXor: return OpKind::kXor;
    case BinaryOp::kBitAnd: return OpKind::kBitAnd;
    case BinaryOp::kBitOr: return OpKind::kBitOr;
    case BinaryOp::kBitXor: return OpKind::kBitXor;
    case BinaryOp::kShiftLeft: return OpKind::kShiftLeft;
    case BinaryOp::kShiftRight: return OpKind::kShiftRight;
    case BinaryOp::kCoalesce: return OpKind::kCoalesce;
    case BinaryOp::kInstanceof: return OpKind::kEqual;  // opaque boolean
  }
  return OpKind::kAdd;
}

Type result_type_for(OpKind op, Type lhs, Type rhs) {
  switch (op) {
    case OpKind::kConcat:
      return Type::kString;
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kDiv:
    case OpKind::kMod:
    case OpKind::kPow:
    case OpKind::kBitAnd:
    case OpKind::kBitOr:
    case OpKind::kBitXor:
    case OpKind::kShiftLeft:
    case OpKind::kShiftRight:
    case OpKind::kNegate:
      return (lhs == Type::kFloat || rhs == Type::kFloat) ? Type::kFloat
                                                          : Type::kInt;
    case OpKind::kEqual:
    case OpKind::kNotEqual:
    case OpKind::kIdentical:
    case OpKind::kNotIdentical:
    case OpKind::kLess:
    case OpKind::kGreater:
    case OpKind::kLessEqual:
    case OpKind::kGreaterEqual:
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kXor:
    case OpKind::kNot:
      return Type::kBool;
    case OpKind::kCoalesce:
    case OpKind::kTernary:
      return lhs == rhs ? lhs : Type::kUnknown;
    case OpKind::kArrayAccess:
      return Type::kUnknown;
  }
  return Type::kUnknown;
}

// RAII fork-site attribution (Budget::profiler). Enters the site on
// construct entry and attributes the env-count delta on every exit
// path — normal completion, early break, or budget abort — so the
// cumulative/self bookkeeping stays balanced. One null test when no
// profiler is attached.
class ForkSiteScope {
 public:
  ForkSiteScope(profile::PathProfiler* profiler, const std::vector<Env>& envs,
                profile::ForkKind kind, SourceLoc loc,
                std::string_view detail)
      : profiler_(profiler), envs_(envs) {
    if (profiler_ != nullptr) {
      profiler_->enter_site(kind, loc.file.value, loc.line, detail,
                            envs_.size());
    }
  }
  ForkSiteScope(const ForkSiteScope&) = delete;
  ForkSiteScope& operator=(const ForkSiteScope&) = delete;
  ~ForkSiteScope() {
    if (profiler_ != nullptr) profiler_->exit_site(envs_.size());
  }

 private:
  profile::PathProfiler* profiler_;
  const std::vector<Env>& envs_;
};

}  // namespace

Interpreter::Interpreter(const Program& program, DiagnosticSink& diags,
                         Budget budget, const SinkRegistry& sinks)
    : program_(program), diags_(diags), budget_(budget), sink_registry_(sinks) {}

void Interpreter::push(Env& env, Label label) { env.stack().push_back(label); }

Label Interpreter::pop(Env& env) {
  if (env.stack().empty()) return kNoLabel;  // defensive; cleared stacks
  const Label label = env.stack().back();
  env.stack().pop_back();
  return label;
}

bool Interpreter::any_running() const {
  return std::any_of(envs_.begin(), envs_.end(),
                     [](const Env& e) { return e.running(); });
}

void Interpreter::check_budget() {
  stats_.peak_paths = std::max(stats_.peak_paths, envs_.size());
  if (envs_.size() > budget_.max_paths ||
      graph_.object_count() > budget_.max_objects) {
    aborted_ = true;
    if (!stats_.budget_exhausted && budget_.trace != nullptr) {
      budget_.trace->record_event(
          "budget_exhausted", std::to_string(envs_.size()) + " paths, " +
                                  std::to_string(graph_.object_count()) +
                                  " objects");
    }
    stats_.budget_exhausted = true;
  }
  // Wall-clock deadline, polled on a stride so the steady_clock read
  // stays off the per-statement fast path. 16 keeps worst-case overshoot
  // small (a handful of statements), which matters for tight deadlines.
  // Telemetry progress samples share the stride (and its decimation in
  // ScanTrace), so an attached trace adds no extra clock reads to the
  // fast path and an unattached one costs a single null test.
  if ((deadline_poll_++ & 0xF) == 0) {
    if (budget_.deadline.expired()) {
      aborted_ = true;
      if (!stats_.deadline_exceeded && budget_.trace != nullptr) {
        budget_.trace->record_event("deadline_exceeded");
      }
      stats_.deadline_exceeded = true;
    }
    if (budget_.trace != nullptr) {
      budget_.trace->sample_progress(envs_.size(), graph_.object_count(),
                                     graph_.memory_bytes());
    }
    // The explosion profiler shares the stride too: the same sample
    // feeds the live-path histogram and attributes heap growth to the
    // current fork depth.
    if (budget_.profiler != nullptr) {
      budget_.profiler->sample(envs_.size(), graph_.object_count(),
                               graph_.memory_bytes());
    }
  }
}

Label Interpreter::fresh_symbol(std::string_view hint, Type type,
                                SourceLoc loc, bool tainted) {
  std::string name = "s_";
  name += hint;
  name += "_";
  name += std::to_string(++symbol_counter_);
  return graph_.add_symbol(std::move(name), type, loc, tainted);
}

Label Interpreter::files_entry_array(const std::string& field_key,
                                     SourceLoc loc) {
  const auto it = files_entries_.find(field_key);
  if (it != files_entries_.end()) return it->second;

  // Pre-structured $_FILES entry (paper §III-B4 / Fig. 6). The "name"
  // value is the concatenation of a filename stem, a literal dot, and an
  // extension symbol, so extension checks in the analyzed program bind
  // to exactly the symbol the destination constraint mentions.
  const std::string base = "files_" + field_key;
  const Label stem =
      graph_.add_symbol("s_" + base + "_filename", Type::kString, loc, true);
  const Label ext =
      graph_.add_symbol("s_" + base + "_ext", Type::kString, loc, true);
  const Label dot = graph_.add_concrete(std::string("."), loc);
  const Label stem_dot =
      graph_.add_op(OpKind::kConcat, Type::kString, {stem, dot}, loc);
  const Label name =
      graph_.add_op(OpKind::kConcat, Type::kString, {stem_dot, ext}, loc);
  register_name_parts(name, stem, ext);

  const Label type_sym =
      graph_.add_symbol("s_" + base + "_type", Type::kString, loc, true);
  const Label tmp_sym =
      graph_.add_symbol("s_" + base + "_tmp", Type::kString, loc, true);
  const Label err_sym =
      graph_.add_symbol("s_" + base + "_error", Type::kInt, loc, true);
  const Label size_sym =
      graph_.add_symbol("s_" + base + "_size", Type::kInt, loc, true);

  std::vector<ArrayEntry> entries{
      {"name", false, name},       {"type", false, type_sym},
      {"tmp_name", false, tmp_sym}, {"error", false, err_sym},
      {"size", false, size_sym},
  };
  const Label arr = graph_.add_array(std::move(entries), loc, true);
  files_entries_.emplace(field_key, arr);
  return arr;
}

std::optional<std::pair<Label, Label>> Interpreter::name_parts(
    Label name) const {
  const auto it = name_parts_.find(name);
  if (it == name_parts_.end()) return std::nullopt;
  return it->second;
}

void Interpreter::register_name_parts(Label name, Label stem, Label ext) {
  name_parts_.emplace(name, std::make_pair(stem, ext));
}

void Interpreter::discard_results(std::size_t count) {
  // Pops `count` expression results from each running environment's
  // operand stack (statement boundary). Stacks of non-running paths are
  // left untouched: they may hold partial results of an enclosing
  // expression in some caller frame.
  for (Env& env : envs_) {
    if (!env.running()) continue;
    for (std::size_t i = 0; i < count && !env.stack().empty(); ++i) {
      env.stack().pop_back();
    }
  }
}

// ---------------------------------------------------------------------------
// Entry point

InterpResult Interpreter::run(const AnalysisRoot& root) {
  FaultInjector::checkpoint("interp");
  graph_ = HeapGraph();
  interner_ = std::make_shared<VarInterner>();
  envs_.clear();
  envs_.emplace_back();
  envs_.back().bind_interner(interner_);
  sinks_.clear();
  stats_ = InterpStats{};
  aborted_ = false;
  deadline_poll_ = 0;

  if (root.function != nullptr) {
    // Bind parameters. If locality captured a binding call site whose
    // arguments mention $_FILES, evaluate those arguments so taint and
    // the pre-structured upload model flow into the function.
    const phpast::FunctionDecl& fn = *root.function;
    if (root.binding_call != nullptr &&
        root.binding_call->args.size() <= fn.params.size() + 4) {
      const auto& args = root.binding_call->args;
      for (std::size_t i = 0; i < fn.params.size(); ++i) {
        const VarId pid = vid(fn.params[i].name);
        if (i < args.size()) {
          eval_expr(*args[i]);
          for (Env& env : envs_) {
            if (!env.running()) continue;
            env.set(pid, pop(env));
          }
        } else {
          const Label sym = fresh_symbol(
              strutil::cat("param_", fn.params[i].name), Type::kUnknown,
              fn.loc());
          for (Env& env : envs_) env.set(pid, sym);
        }
      }
    } else {
      for (const phpast::Param& p : fn.params) {
        const VarId pid = vid(p.name);
        const Label sym = fresh_symbol(strutil::cat("param_", p.name),
                                       Type::kUnknown, fn.loc());
        for (Env& env : envs_) env.set(pid, sym);
      }
    }
    exec_stmts(fn.body);
  } else if (root.file != nullptr) {
    exec_stmts(as_span(root.file->statements));
  }

  stats_.paths = envs_.size();
  stats_.objects = graph_.object_count();
  stats_.cons_hits = graph_.cons_hits();
  stats_.peak_paths = std::max(stats_.peak_paths, envs_.size());
  for (const Env& env : envs_) stats_.env_bytes += env.memory_bytes();

  InterpResult result;
  result.envs = std::move(envs_);
  result.sinks = std::move(sinks_);
  result.stats = stats_;
  result.graph = std::move(graph_);
  return result;
}

// ---------------------------------------------------------------------------
// Statements

void Interpreter::exec_stmts(Span<const phpast::StmtPtr> stmts) {
  for (const auto& stmt : stmts) {
    if (aborted_ || !any_running()) return;
    exec_stmt(*stmt);
  }
}

void Interpreter::exec_stmt(const Stmt& stmt) {
  switch (stmt.kind()) {
    case NodeKind::kExprStmt:
      eval_expr(*static_cast<const phpast::ExprStmt&>(stmt).expr);
      discard_results(1);
      break;
    case NodeKind::kEcho: {
      const auto& echo = static_cast<const phpast::Echo&>(stmt);
      for (const auto& e : echo.values) eval_expr(*e);
      discard_results(echo.values.size());
      break;
    }
    case NodeKind::kIf:
      exec_if(static_cast<const phpast::If&>(stmt));
      break;
    case NodeKind::kWhile: {
      const auto& s = static_cast<const phpast::While&>(stmt);
      exec_loop(s.cond, s.body, nullptr, stmt.loc(), "while");
      break;
    }
    case NodeKind::kDoWhile: {
      const auto& s = static_cast<const phpast::DoWhile&>(stmt);
      exec_stmts(s.body);
      if (any_running()) {
        eval_expr(*s.cond);  // side effects only; loop exits after one pass
        discard_results(1);
      }
      break;
    }
    case NodeKind::kFor: {
      const auto& s = static_cast<const phpast::For&>(stmt);
      for (const auto& e : s.init) {
        eval_expr(*e);
        discard_results(1);
      }
      exec_loop(s.cond.empty() ? nullptr : s.cond.front(), s.body, &s.step,
                stmt.loc(), "for");
      break;
    }
    case NodeKind::kForeach:
      exec_foreach(static_cast<const phpast::Foreach&>(stmt));
      break;
    case NodeKind::kSwitch:
      exec_switch(static_cast<const phpast::Switch&>(stmt));
      break;
    case NodeKind::kReturn: {
      const auto& s = static_cast<const phpast::Return&>(stmt);
      if (s.value != nullptr) {
        eval_expr(*s.value);
        for (Env& env : envs_) {
          if (!env.running()) continue;
          env.set_return_value(pop(env));
          env.set_status(Env::Status::kReturned);
        }
      } else {
        for (Env& env : envs_) {
          if (!env.running()) continue;
          env.set_return_value(kNoLabel);
          env.set_status(Env::Status::kReturned);
        }
      }
      break;
    }
    case NodeKind::kBreak:
    case NodeKind::kContinue:
      // Loops are unrolled a bounded number of times; break/continue in
      // the unrolled body is a no-op approximation.
      break;
    case NodeKind::kGlobal: {
      const auto& s = static_cast<const phpast::Global&>(stmt);
      for (const std::string_view name : s.names) {
        auto it = globals_.find(name);
        if (it == globals_.end()) {
          const Label sym = fresh_symbol(strutil::cat("global_", name),
                                         Type::kUnknown, stmt.loc());
          it = globals_.emplace(std::string(name), sym).first;
        }
        const VarId id = vid(name);
        for (Env& env : envs_) {
          if (env.running()) env.set(id, it->second);
        }
      }
      break;
    }
    case NodeKind::kStaticVarStmt: {
      const auto& s = static_cast<const phpast::StaticVarStmt&>(stmt);
      const VarId id = vid(s.name);
      if (s.init != nullptr) {
        eval_expr(*s.init);
        for (Env& env : envs_) {
          if (env.running()) env.set(id, pop(env));
        }
      } else {
        const Label sym = fresh_symbol(strutil::cat("static_", s.name),
                                       Type::kUnknown, stmt.loc());
        for (Env& env : envs_) {
          if (env.running()) env.set(id, sym);
        }
      }
      break;
    }
    case NodeKind::kUnsetStmt: {
      const auto& s = static_cast<const phpast::UnsetStmt&>(stmt);
      for (const auto& e : s.operands) {
        if (e->kind() == NodeKind::kVariable) {
          const auto& var = static_cast<const phpast::Variable&>(*e);
          const VarId id = vid(var.name);
          for (Env& env : envs_) {
            if (env.running()) env.erase(id);
          }
        }
      }
      break;
    }
    case NodeKind::kBlock:
      exec_stmts(static_cast<const phpast::Block&>(stmt).body);
      break;
    case NodeKind::kFunctionDecl:
    case NodeKind::kClassDecl:
      break;  // declarations were collected by build_program()
    case NodeKind::kTryCatch: {
      // Fork: the no-exception path runs the try body; one alternative
      // path per catch clause runs its handler with a fresh exception.
      const auto& s = static_cast<const phpast::TryCatch&>(stmt);
      const ForkSiteScope fork_scope(budget_.profiler, envs_,
                                     profile::ForkKind::kTryCatch, stmt.loc(),
                                     "try");
      std::vector<Env> base = envs_;  // pre-try snapshot
      exec_stmts(s.body);
      std::vector<Env> joined = std::move(envs_);
      for (const phpast::CatchClause& c : s.catches) {
        envs_ = base;
        const VarId cid = c.variable.empty() ? kNoVar : vid(c.variable);
        for (Env& env : envs_) {
          if (env.running() && cid != kNoVar) {
            env.set(cid, fresh_symbol(strutil::cat("exc_", c.exception_class),
                                      Type::kUnknown, stmt.loc()));
          }
        }
        exec_stmts(c.body);
        for (Env& env : envs_) joined.push_back(std::move(env));
      }
      envs_ = std::move(joined);
      check_budget();
      if (!s.finally_body.empty()) exec_stmts(s.finally_body);
      break;
    }
    case NodeKind::kThrowStmt: {
      const auto& s = static_cast<const phpast::ThrowStmt&>(stmt);
      eval_expr(*s.value);
      for (Env& env : envs_) {
        if (env.running()) env.set_status(Env::Status::kExited);
      }
      break;
    }
    case NodeKind::kInlineHtml:
    case NodeKind::kNamespaceDecl:
    case NodeKind::kUseDecl:
      break;
    default:
      diags_.warning(stmt.loc(), "unsupported statement kind skipped: " +
                                     std::string(node_kind_name(stmt.kind())));
      break;
  }
}

void Interpreter::exec_branch(const std::vector<Label>& cond_labels,
                              bool negate,
                              Span<const phpast::StmtPtr> body,
                              std::vector<Env> base_envs,
                              std::vector<Env>& out) {
  envs_ = std::move(base_envs);
  std::size_t idx = 0;
  for (Env& env : envs_) {
    if (!env.running()) continue;
    Label cond = idx < cond_labels.size() ? cond_labels[idx] : kNoLabel;
    ++idx;
    if (cond == kNoLabel) continue;
    if (negate) {
      cond = graph_.add_op(OpKind::kNot, Type::kBool, {cond},
                           graph_.at(cond).loc);
    }
    extend_reachability(graph_, env, cond);
  }
  exec_stmts(body);
  for (Env& env : envs_) out.push_back(std::move(env));
  envs_.clear();
}

void Interpreter::exec_if(const phpast::If& stmt) {
  const ForkSiteScope fork_scope(budget_.profiler, envs_,
                                 profile::ForkKind::kConditional, stmt.loc(),
                                 "if");
  // Normalize the elseif chain: execute it as a nested if in the else
  // branch by repeatedly processing clauses.
  struct Clause {
    const Expr* cond;
    phpast::StmtList body;
  };
  std::vector<Clause> clauses;
  clauses.push_back({stmt.cond, stmt.then_body});
  for (const auto& c : stmt.elseifs) clauses.push_back({c.cond, c.body});

  // Processes clause `i` over the current envs_; joins into `result`.
  std::vector<Env> result;
  // Set aside non-running envs once, up front.
  {
    std::vector<Env> running;
    for (Env& env : envs_) {
      if (env.running()) {
        running.push_back(std::move(env));
      } else {
        result.push_back(std::move(env));
      }
    }
    envs_ = std::move(running);
  }

  const phpast::StmtList kEmptyBody;
  std::vector<Env> pending = std::move(envs_);
  envs_.clear();
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (aborted_) break;
    // Evaluate the condition on the pending ("all previous conditions
    // false") env set.
    envs_ = std::move(pending);
    pending.clear();
    eval_expr(*clauses[i].cond);
    std::vector<Label> cond_labels;
    for (Env& env : envs_) {
      if (env.running()) cond_labels.push_back(pop(env));
    }
    std::vector<Env> base = std::move(envs_);
    envs_.clear();

    // True branch.
    exec_branch(cond_labels, /*negate=*/false, clauses[i].body, base, result);
    // False branch: either the next clause's pending set or the else body.
    const bool last = (i + 1 == clauses.size());
    if (last) {
      exec_branch(cond_labels, /*negate=*/true,
                  stmt.has_else ? stmt.else_body : kEmptyBody, std::move(base),
                  result);
    } else {
      std::vector<Env> next_pending;
      exec_branch(cond_labels, /*negate=*/true, kEmptyBody, std::move(base),
                  next_pending);
      pending = std::move(next_pending);
    }
    check_budget();
  }
  for (Env& env : pending) result.push_back(std::move(env));
  envs_ = std::move(result);
  check_budget();
}

void Interpreter::exec_switch(const phpast::Switch& stmt) {
  const ForkSiteScope fork_scope(budget_.profiler, envs_,
                                 profile::ForkKind::kSwitch, stmt.loc(),
                                 "switch");
  eval_expr(*stmt.subject);
  std::vector<Env> result;
  std::vector<Env> running;
  std::vector<Label> subject_labels;
  for (Env& env : envs_) {
    if (env.running()) {
      subject_labels.push_back(pop(env));
      running.push_back(std::move(env));
    } else {
      result.push_back(std::move(env));
    }
  }
  envs_.clear();

  bool has_default = false;
  // Collected negations per base env: conjunction of (subject != case_i),
  // applied to the default (or implicit fall-past) path.
  std::vector<std::vector<Label>> negations(running.size());

  for (const phpast::SwitchCase& c : stmt.cases) {
    if (aborted_) break;
    if (c.match == nullptr) {
      has_default = true;
      continue;  // handled after equality cases
    }
    envs_ = running;  // copy
    eval_expr(*c.match);
    std::size_t idx = 0;
    std::vector<Label> eq_labels;
    for (Env& env : envs_) {
      if (!env.running()) continue;
      const Label match_label = pop(env);
      const Label eq = graph_.add_op(OpKind::kEqual, Type::kBool,
                                     {subject_labels[idx], match_label},
                                     stmt.loc());
      eq_labels.push_back(eq);
      negations[idx].push_back(eq);
      ++idx;
    }
    idx = 0;
    for (Env& env : envs_) {
      if (!env.running()) continue;
      extend_reachability(graph_, env, eq_labels[idx]);
      ++idx;
    }
    exec_stmts(c.body);
    for (Env& env : envs_) result.push_back(std::move(env));
    envs_.clear();
    check_budget();
  }

  // Default (or implicit skip) path: all equalities negated.
  envs_ = std::move(running);
  std::size_t idx = 0;
  for (Env& env : envs_) {
    if (!env.running()) continue;
    for (Label eq : negations[idx]) {
      const Label neg =
          graph_.add_op(OpKind::kNot, Type::kBool, {eq}, stmt.loc());
      extend_reachability(graph_, env, neg);
    }
    ++idx;
  }
  if (has_default) {
    for (const phpast::SwitchCase& c : stmt.cases) {
      if (c.match == nullptr) {
        exec_stmts(c.body);
        break;
      }
    }
  }
  for (Env& env : envs_) result.push_back(std::move(env));
  envs_ = std::move(result);
  check_budget();
}

void Interpreter::exec_loop(const Expr* cond,
                            Span<const phpast::StmtPtr> body,
                            const phpast::ExprList* step, SourceLoc loc,
                            std::string_view kind_detail) {
  const ForkSiteScope fork_scope(budget_.profiler, envs_,
                                 profile::ForkKind::kLoop, loc, kind_detail);
  // Approximate `while (c) S` as a bounded unrolling that forks into a
  // skip path (NOT c) and an enter path (c asserted, S executed once per
  // unroll round). Paper §VI: "UChecker does not precisely model loops".
  for (int round = 0; round < budget_.loop_unroll; ++round) {
    if (aborted_ || !any_running()) return;
    std::vector<Env> result;
    std::vector<Label> cond_labels;
    if (cond != nullptr) {
      eval_expr(*cond);
      std::vector<Env> running;
      for (Env& env : envs_) {
        if (env.running()) {
          cond_labels.push_back(pop(env));
          running.push_back(std::move(env));
        } else {
          result.push_back(std::move(env));
        }
      }
      envs_ = std::move(running);
    } else {
      std::vector<Env> running;
      for (Env& env : envs_) {
        if (env.running()) {
          running.push_back(std::move(env));
        } else {
          result.push_back(std::move(env));
        }
      }
      envs_ = std::move(running);
      cond_labels.assign(envs_.size(), kNoLabel);
    }
    std::vector<Env> base = std::move(envs_);
    envs_.clear();

    // Skip path.
    if (cond != nullptr) {
      exec_branch(cond_labels, /*negate=*/true, {}, base, result);
    }
    // Enter path: body once (+ step expressions for `for` loops).
    std::vector<Env> entered;
    exec_branch(cond_labels, /*negate=*/false, body, std::move(base), entered);
    if (step != nullptr) {
      envs_ = std::move(entered);
      for (const auto& e : *step) {
        eval_expr(*e);
        discard_results(1);
      }
      entered = std::move(envs_);
    }
    if (round + 1 == budget_.loop_unroll) {
      for (Env& env : entered) result.push_back(std::move(env));
      envs_ = std::move(result);
    } else {
      // Next round continues only on the entered paths; finished skip
      // paths accumulate in result.
      envs_ = std::move(entered);
      for (Env& env : result) envs_.push_back(std::move(env));
    }
    check_budget();
  }
}

void Interpreter::exec_foreach(const phpast::Foreach& stmt) {
  const ForkSiteScope fork_scope(budget_.profiler, envs_,
                                 profile::ForkKind::kForeach, stmt.loc(),
                                 "foreach");
  // kNoVar encodes "no binding": key/value targets that are absent or
  // not plain variables are skipped, exactly as before interning.
  const VarId key_id =
      (stmt.key_var != nullptr && stmt.key_var->kind() == NodeKind::kVariable)
          ? vid(static_cast<const phpast::Variable&>(*stmt.key_var).name)
          : kNoVar;
  const VarId value_id =
      stmt.value_var->kind() == NodeKind::kVariable
          ? vid(static_cast<const phpast::Variable&>(*stmt.value_var).name)
          : kNoVar;
  eval_expr(*stmt.iterable);
  // Partition running/finished and take the iterable labels.
  std::vector<Env> result;
  std::vector<Env> running;
  std::vector<Label> iter_labels;
  for (Env& env : envs_) {
    if (env.running()) {
      iter_labels.push_back(pop(env));
      running.push_back(std::move(env));
    } else {
      result.push_back(std::move(env));
    }
  }
  envs_.clear();

  // Known-structure arrays iterate their first max_foreach_entries
  // entries deterministically; unknown iterables fork into skip /
  // enter-once with a fresh boolean guard.
  // Group: all envs are processed uniformly using each env's own label.
  // For simplicity, decide the strategy per env.
  std::vector<Env> known_envs;
  std::vector<Label> known_labels;
  std::vector<Env> unknown_envs;
  std::vector<Label> unknown_labels;
  for (std::size_t i = 0; i < running.size(); ++i) {
    const Object* obj = graph_.find(iter_labels[i]);
    if (obj != nullptr && obj->kind == Object::Kind::kArray) {
      known_envs.push_back(std::move(running[i]));
      known_labels.push_back(iter_labels[i]);
    } else {
      unknown_envs.push_back(std::move(running[i]));
      unknown_labels.push_back(iter_labels[i]);
    }
  }

  // Known arrays: unroll entries.
  if (!known_envs.empty()) {
    envs_ = std::move(known_envs);
    const int bound = budget_.max_foreach_entries;
    for (int entry_idx = 0; entry_idx < bound; ++entry_idx) {
      bool any = false;
      std::size_t running_idx = 0;
      for (Env& env : envs_) {
        if (!env.running()) continue;
        const Label arr_label = running_idx < known_labels.size()
                                    ? known_labels[running_idx]
                                    : kNoLabel;
        ++running_idx;
        const Object* obj = graph_.find(arr_label);
        if (obj == nullptr ||
            static_cast<std::size_t>(entry_idx) >= obj->entries.size()) {
          continue;
        }
        any = true;
        // Copy: creating the key object below may reallocate the arena
        // and invalidate a reference into obj->entries.
        const ArrayEntry e = obj->entries[static_cast<std::size_t>(entry_idx)];
        if (key_id != kNoVar) {
          const Label key = graph_.add_concrete(
              e.int_key ? Value(strutil::php_intval(e.key)) : Value(e.key),
              stmt.loc());
          env.set(key_id, key);
        }
        if (value_id != kNoVar) env.set(value_id, e.value);
      }
      if (!any) break;
      exec_stmts(stmt.body);
      // NOTE: forked envs inside the body lose per-entry alignment for
      // subsequent entries; this approximation stops unrolling then.
      if (envs_.size() != known_labels.size()) break;
    }
    for (Env& env : envs_) result.push_back(std::move(env));
    envs_.clear();
  }

  // Unknown iterables: fork skip / enter-once.
  if (!unknown_envs.empty()) {
    envs_ = std::move(unknown_envs);
    std::vector<Label> guards;
    std::size_t idx = 0;
    for (Env& env : envs_) {
      if (!env.running()) continue;
      guards.push_back(
          fresh_symbol("loop_nonempty", Type::kBool, stmt.loc()));
      // Bind the iteration variables to symbolic elements derived from
      // the iterable via array_access, preserving taint flow.
      const Label elem = graph_.add_op(
          OpKind::kArrayAccess, Type::kUnknown,
          {unknown_labels[idx],
           fresh_symbol("foreach_key", Type::kUnknown, stmt.loc())},
          stmt.loc());
      if (value_id != kNoVar) env.set(value_id, elem);
      if (key_id != kNoVar) {
        env.set(key_id, fresh_symbol("foreach_k", Type::kUnknown, stmt.loc()));
      }
      ++idx;
    }
    std::vector<Env> base = std::move(envs_);
    envs_.clear();
    exec_branch(guards, /*negate=*/true, {}, base, result);
    exec_branch(guards, /*negate=*/false, stmt.body, std::move(base), result);
  }

  envs_ = std::move(result);
  check_budget();
}

const phpast::PhpFile* Interpreter::resolve_include_target(
    const phpast::Expr& path) const {
  // Trailing string literal, matched by suffix against program file names
  // (same resolution rule the call-graph builder uses).
  std::string suffix;
  phpast::walk(path, [&suffix](const phpast::Node& n) {
    if (n.kind() == NodeKind::kStringLit) {
      suffix = static_cast<const phpast::StringLit&>(n).value;
    }
    return true;
  });
  while (!suffix.empty() && (suffix.front() == '/' || suffix.front() == '.')) {
    suffix.erase(suffix.begin());
  }
  if (suffix.empty()) return nullptr;
  for (const phpast::PhpFile* file : program_.files) {
    if (file->name.size() >= suffix.size() &&
        file->name.compare(file->name.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
      return file;
    }
  }
  return nullptr;
}

void Interpreter::eval_include(const phpast::IncludeExpr& include) {
  const SourceLoc loc = include.loc();
  // Evaluate the path for its side effects, then discard it.
  eval_expr(*include.path);
  for (Env& env : envs_) {
    if (env.running()) pop(env);
  }

  const phpast::PhpFile* target = resolve_include_target(*include.path);
  const bool once =
      include.include_kind == phpast::IncludeKind::kIncludeOnce ||
      include.include_kind == phpast::IncludeKind::kRequireOnce;
  const bool cycle =
      target != nullptr &&
      std::find(include_chain_.begin(), include_chain_.end(), target->name) !=
          include_chain_.end();
  const bool depth_ok =
      include_chain_.size() <
      static_cast<std::size_t>(std::max(budget_.max_include_depth, 0));

  if (target == nullptr || cycle || !depth_ok ||
      (once && included_once_.contains(target->name))) {
    // Unresolvable (or suppressed): the include evaluates to an opaque
    // value, exactly as before this feature.
    const Label sym = fresh_symbol("include", Type::kUnknown, loc);
    for (Env& env : envs_) {
      if (env.running()) push(env, sym);
    }
    return;
  }

  included_once_.insert(target->name);
  include_chain_.push_back(target->name);
  exec_stmts(as_span(target->statements));
  include_chain_.pop_back();
  // A PHP include evaluates to 1 unless the file returns a value; the
  // distinction rarely matters, so push the conventional 1.
  const Label one = graph_.add_concrete(Value(std::int64_t{1}), loc);
  for (Env& env : envs_) {
    if (env.running()) push(env, one);
  }
}

// ---------------------------------------------------------------------------
// Expressions

void Interpreter::eval_expr(const Expr& expr) {
  if (aborted_) return;
  const SourceLoc loc = expr.loc();
  switch (expr.kind()) {
    case NodeKind::kNullLit: {
      const Label l = graph_.add_concrete(Value(std::monostate{}), loc);
      for (Env& env : envs_) {
        if (env.running()) push(env, l);
      }
      break;
    }
    case NodeKind::kBoolLit: {
      const Label l = graph_.add_concrete(
          Value(static_cast<const phpast::BoolLit&>(expr).value), loc);
      for (Env& env : envs_) {
        if (env.running()) push(env, l);
      }
      break;
    }
    case NodeKind::kIntLit: {
      const Label l = graph_.add_concrete(
          Value(static_cast<const phpast::IntLit&>(expr).value), loc);
      for (Env& env : envs_) {
        if (env.running()) push(env, l);
      }
      break;
    }
    case NodeKind::kFloatLit: {
      const Label l = graph_.add_concrete(
          Value(static_cast<const phpast::FloatLit&>(expr).value), loc);
      for (Env& env : envs_) {
        if (env.running()) push(env, l);
      }
      break;
    }
    case NodeKind::kStringLit: {
      const Label l = graph_.add_concrete(
          Value(std::string(static_cast<const phpast::StringLit&>(expr).value)),
          loc);
      for (Env& env : envs_) {
        if (env.running()) push(env, l);
      }
      break;
    }
    case NodeKind::kVariable:
      eval_variable(static_cast<const phpast::Variable&>(expr));
      break;
    case NodeKind::kConstFetch: {
      const auto& cf = static_cast<const phpast::ConstFetch&>(expr);
      const Label l = builtin_const_value(*this, cf.name, loc);
      for (Env& env : envs_) {
        if (env.running()) push(env, l);
      }
      break;
    }
    case NodeKind::kArrayAccess:
      eval_array_access(static_cast<const phpast::ArrayAccess&>(expr));
      break;
    case NodeKind::kPropertyAccess: {
      const auto& pa = static_cast<const phpast::PropertyAccess&>(expr);
      eval_expr(*pa.base);
      const Label key =
          graph_.add_concrete(Value(strutil::cat("->", pa.name)), loc);
      for (Env& env : envs_) {
        if (!env.running()) continue;
        const Label base = pop(env);
        const Object* obj = graph_.find(base);
        if (obj != nullptr && obj->kind == Object::Kind::kArray) {
          bool found = false;
          for (const ArrayEntry& e : obj->entries) {
            if (!e.int_key && e.key == strutil::cat("->", pa.name)) {
              push(env, e.value);
              found = true;
              break;
            }
          }
          if (found) continue;
        }
        push(env, graph_.add_op(OpKind::kArrayAccess, Type::kUnknown,
                                {base, key}, loc));
      }
      break;
    }
    case NodeKind::kUnary: {
      const auto& un = static_cast<const phpast::Unary&>(expr);
      switch (un.op) {
        case UnaryOp::kNot: {
          eval_expr(*un.operand);
          for (Env& env : envs_) {
            if (!env.running()) continue;
            const Label v = pop(env);
            push(env, graph_.add_op(OpKind::kNot, Type::kBool, {v}, loc));
          }
          break;
        }
        case UnaryOp::kMinus: {
          eval_expr(*un.operand);
          for (Env& env : envs_) {
            if (!env.running()) continue;
            const Label v = pop(env);
            push(env, graph_.add_op(OpKind::kNegate, Type::kInt, {v}, loc));
          }
          break;
        }
        case UnaryOp::kPlus:
        case UnaryOp::kErrorSuppress:
        case UnaryOp::kPrint:
          eval_expr(*un.operand);  // value passes through
          break;
        case UnaryOp::kBitNot: {
          eval_expr(*un.operand);
          for (Env& env : envs_) {
            if (!env.running()) continue;
            const Label v = pop(env);
            push(env, graph_.add_op(OpKind::kBitXor, Type::kInt,
                                    {v, graph_.add_concrete(
                                            Value(std::int64_t{-1}), loc)},
                                    loc));
          }
          break;
        }
        case UnaryOp::kPreInc:
        case UnaryOp::kPreDec:
        case UnaryOp::kPostInc:
        case UnaryOp::kPostDec: {
          eval_expr(*un.operand);
          const bool inc =
              un.op == UnaryOp::kPreInc || un.op == UnaryOp::kPostInc;
          const bool pre =
              un.op == UnaryOp::kPreInc || un.op == UnaryOp::kPreDec;
          const Label one = graph_.add_concrete(Value(std::int64_t{1}), loc);
          const VarId target_id =
              un.operand->kind() == NodeKind::kVariable
                  ? vid(static_cast<const phpast::Variable&>(*un.operand).name)
                  : kNoVar;
          for (Env& env : envs_) {
            if (!env.running()) continue;
            const Label old_value = pop(env);
            const Label new_value =
                graph_.add_op(inc ? OpKind::kAdd : OpKind::kSub, Type::kInt,
                              {old_value, one}, loc);
            if (target_id != kNoVar) env.set(target_id, new_value);
            push(env, pre ? new_value : old_value);
          }
          break;
        }
      }
      break;
    }
    case NodeKind::kBinary: {
      const auto& bin = static_cast<const phpast::Binary&>(expr);
      eval_expr(*bin.lhs);
      eval_expr(*bin.rhs);
      const OpKind op = op_kind_for(bin.op);
      for (Env& env : envs_) {
        if (!env.running()) continue;
        const Label rhs = pop(env);
        const Label lhs = pop(env);
        const Type lt = graph_.at(lhs).type;
        const Type rt = graph_.at(rhs).type;
        const Type result = result_type_for(op, lt, rt);
        // Light-weight type inference (§III-B4): operand symbols of a
        // concatenation must be strings; of arithmetic, ints.
        if (op == OpKind::kConcat) {
          graph_.refine_type(lhs, Type::kString);
          graph_.refine_type(rhs, Type::kString);
        } else if (result == Type::kInt || result == Type::kFloat) {
          graph_.refine_type(lhs, Type::kInt);
          graph_.refine_type(rhs, Type::kInt);
        }
        push(env, graph_.add_op(op, result, {lhs, rhs}, loc));
      }
      break;
    }
    case NodeKind::kAssign:
      eval_assign(static_cast<const phpast::Assign&>(expr));
      break;
    case NodeKind::kTernary: {
      const auto& t = static_cast<const phpast::Ternary&>(expr);
      eval_expr(*t.cond);
      if (t.then_expr != nullptr) {
        eval_expr(*t.then_expr);
      }
      eval_expr(*t.else_expr);
      for (Env& env : envs_) {
        if (!env.running()) continue;
        const Label else_v = pop(env);
        const Label then_v = t.then_expr != nullptr ? pop(env) : kNoLabel;
        const Label cond_v = pop(env);
        // Elvis `a ?: b` uses the condition value as the then-value.
        const Label then_final = then_v != kNoLabel ? then_v : cond_v;
        const Type type = result_type_for(OpKind::kTernary,
                                          graph_.at(then_final).type,
                                          graph_.at(else_v).type);
        push(env, graph_.add_op(OpKind::kTernary, type,
                                {cond_v, then_final, else_v}, loc));
      }
      break;
    }
    case NodeKind::kCast: {
      const auto& cast = static_cast<const phpast::Cast&>(expr);
      eval_expr(*cast.operand);
      for (Env& env : envs_) {
        if (!env.running()) continue;
        const Label v = pop(env);
        switch (cast.cast) {
          case phpast::CastKind::kInt:
            push(env, graph_.add_func("intval", Type::kInt, {v}, loc));
            break;
          case phpast::CastKind::kString:
            push(env, graph_.add_func("strval", Type::kString, {v}, loc));
            break;
          case phpast::CastKind::kBool:
            push(env, graph_.add_func("boolval", Type::kBool, {v}, loc));
            break;
          default:
            push(env, v);  // float/array/object casts pass through
            break;
        }
      }
      break;
    }
    case NodeKind::kCall:
      eval_call(static_cast<const phpast::Call&>(expr));
      break;
    case NodeKind::kMethodCall: {
      const auto& call = static_cast<const phpast::MethodCall&>(expr);
      eval_expr(*call.object);
      for (Env& env : envs_) {
        if (env.running()) pop(env);  // receiver is not modeled
      }
      const auto it = program_.functions.find(strutil::to_lower(call.method));
      std::vector<const Expr*> arg_exprs;
      for (const auto& a : call.args) arg_exprs.push_back(a);
      if (it != program_.functions.end()) {
        for (const auto& a : call.args) eval_expr(*a);
        eval_user_function(it->second, call.args.size(), loc);
      } else {
        eval_builtin_or_unknown(strutil::to_lower(call.method), arg_exprs, loc);
      }
      break;
    }
    case NodeKind::kStaticCall: {
      const auto& call = static_cast<const phpast::StaticCall&>(expr);
      const std::string qualified = strutil::to_lower(call.class_name) +
                                    "::" + strutil::to_lower(call.method);
      auto it = program_.functions.find(qualified);
      if (it == program_.functions.end()) {
        it = program_.functions.find(strutil::to_lower(call.method));
      }
      std::vector<const Expr*> arg_exprs;
      for (const auto& a : call.args) arg_exprs.push_back(a);
      if (it != program_.functions.end()) {
        for (const auto& a : call.args) eval_expr(*a);
        eval_user_function(it->second, call.args.size(), loc);
      } else {
        eval_builtin_or_unknown(strutil::to_lower(call.method), arg_exprs, loc);
      }
      break;
    }
    case NodeKind::kNew: {
      const auto& n = static_cast<const phpast::New&>(expr);
      for (const auto& a : n.args) {
        eval_expr(*a);
      }
      for (Env& env : envs_) {
        if (!env.running()) continue;
        for (std::size_t i = 0; i < n.args.size(); ++i) pop(env);
        push(env, fresh_symbol(strutil::cat("obj_", n.class_name),
                               Type::kUnknown, loc));
      }
      break;
    }
    case NodeKind::kArrayLit: {
      const auto& lit = static_cast<const phpast::ArrayLit&>(expr);
      for (const auto& item : lit.items) {
        if (item.key != nullptr) eval_expr(*item.key);
        eval_expr(*item.value);
      }
      for (Env& env : envs_) {
        if (!env.running()) continue;
        // Pop in reverse, then build entries in source order.
        std::vector<std::pair<Label, Label>> kv(lit.items.size());
        for (std::size_t i = lit.items.size(); i-- > 0;) {
          kv[i].second = pop(env);
          kv[i].first = lit.items[i].key != nullptr ? pop(env) : kNoLabel;
        }
        std::vector<ArrayEntry> entries;
        std::int64_t next_index = 0;
        for (const auto& [key_label, value_label] : kv) {
          ArrayEntry e;
          e.value = value_label;
          if (key_label == kNoLabel) {
            e.key = std::to_string(next_index++);
            e.int_key = true;
          } else {
            const Object& key_obj = graph_.at(key_label);
            if (key_obj.kind == Object::Kind::kConcrete) {
              if (key_obj.type == Type::kInt) {
                const auto iv = std::get<std::int64_t>(key_obj.value);
                e.key = std::to_string(iv);
                e.int_key = true;
                next_index = std::max(next_index, iv + 1);
              } else {
                e.key = value_to_string(key_obj.value);
              }
            } else {
              e.key = "?" + std::to_string(key_label);  // symbolic key
            }
          }
          entries.push_back(std::move(e));
        }
        push(env, graph_.add_array(std::move(entries), loc));
      }
      break;
    }
    case NodeKind::kIsset: {
      const auto& is = static_cast<const phpast::Isset&>(expr);
      for (const auto& e : is.operands) eval_expr(*e);
      for (Env& env : envs_) {
        if (!env.running()) continue;
        std::vector<Label> children(is.operands.size());
        for (std::size_t i = is.operands.size(); i-- > 0;) {
          children[i] = pop(env);
        }
        push(env, graph_.add_func("isset", Type::kBool, std::move(children),
                                  loc));
      }
      break;
    }
    case NodeKind::kEmpty: {
      const auto& em = static_cast<const phpast::Empty&>(expr);
      eval_expr(*em.operand);
      for (Env& env : envs_) {
        if (!env.running()) continue;
        const Label v = pop(env);
        push(env, graph_.add_func("empty", Type::kBool, {v}, loc));
      }
      break;
    }
    case NodeKind::kIncludeExpr:
      eval_include(static_cast<const phpast::IncludeExpr&>(expr));
      break;
    case NodeKind::kExitExpr: {
      const auto& ex = static_cast<const phpast::ExitExpr&>(expr);
      if (ex.operand != nullptr) eval_expr(*ex.operand);
      for (Env& env : envs_) {
        if (!env.running()) continue;
        if (ex.operand != nullptr) pop(env);
        env.set_status(Env::Status::kExited);
        push(env, kNoLabel);
      }
      break;
    }
    case NodeKind::kListExpr: {
      // list() only appears as an assignment target; bare evaluation
      // yields a fresh symbol.
      const Label sym = fresh_symbol("list", Type::kArray, loc);
      for (Env& env : envs_) {
        if (env.running()) push(env, sym);
      }
      break;
    }
    case NodeKind::kClosure: {
      const Label sym = fresh_symbol("closure", Type::kUnknown, loc);
      for (Env& env : envs_) {
        if (env.running()) push(env, sym);
      }
      break;
    }
    default: {
      diags_.warning(loc, "unsupported expression kind: " +
                              std::string(node_kind_name(expr.kind())));
      const Label sym = fresh_symbol("unsupported", Type::kUnknown, loc);
      for (Env& env : envs_) {
        if (env.running()) push(env, sym);
      }
      break;
    }
  }
}

void Interpreter::eval_variable(const phpast::Variable& var) {
  const SourceLoc loc = var.loc();
  if (is_superglobal(var.name)) {
    auto it = superglobals_.find(var.name);
    if (it == superglobals_.end()) {
      const bool is_files = var.name == "_FILES";
      const Label sym =
          graph_.add_symbol(strutil::cat("$", var.name), Type::kArray, loc,
                            /*files_tainted=*/is_files);
      it = superglobals_.emplace(std::string(var.name), sym).first;
    }
    for (Env& env : envs_) {
      if (env.running()) push(env, it->second);
    }
    return;
  }
  const VarId id = vid(var.name);
  for (Env& env : envs_) {
    if (!env.running()) continue;
    Label label = env.get(id);
    if (label == kNoLabel) {
      label = fresh_symbol(var.name, Type::kUnknown, loc);
      env.set(id, label);
    }
    push(env, label);
  }
}

void Interpreter::eval_array_access(const phpast::ArrayAccess& access) {
  const SourceLoc loc = access.loc();
  eval_expr(*access.base);
  if (access.index != nullptr) {
    eval_expr(*access.index);
  }
  for (Env& env : envs_) {
    if (!env.running()) continue;
    const Label index =
        access.index != nullptr ? pop(env) : kNoLabel;
    const Label base = pop(env);
    const Object& base_obj = graph_.at(base);

    // $_FILES[field]: return the pre-structured entry array (§III-B4).
    if (base_obj.kind == Object::Kind::kSymbol && base_obj.name == "$_FILES") {
      std::string field_key = "any";
      if (index != kNoLabel) {
        const Object& idx_obj = graph_.at(index);
        if (idx_obj.kind == Object::Kind::kConcrete) {
          field_key = value_to_string(idx_obj.value);
        }
      }
      push(env, files_entry_array(field_key, loc));
      continue;
    }

    // Known-structure array with a concrete index: direct entry lookup.
    if (base_obj.kind == Object::Kind::kArray && index != kNoLabel) {
      const Object& idx_obj = graph_.at(index);
      if (idx_obj.kind == Object::Kind::kConcrete) {
        const std::string key = value_to_string(idx_obj.value);
        bool found = false;
        for (const ArrayEntry& e : base_obj.entries) {
          if (e.key == key) {
            push(env, e.value);
            found = true;
            break;
          }
        }
        if (found) continue;
      }
    }

    // General case: an array_access operation node (paper §III-B3),
    // preserving the (array, index) edge order.
    const Label idx_label =
        index != kNoLabel ? index
                          : fresh_symbol("idx", Type::kUnknown, loc);
    push(env, graph_.add_op(OpKind::kArrayAccess, Type::kUnknown,
                            {base, idx_label}, loc));
  }
}

void Interpreter::assign_into(Env& env, const Expr& target, Label value,
                              SourceLoc loc) {
  switch (target.kind()) {
    case NodeKind::kVariable: {
      const auto& var = static_cast<const phpast::Variable&>(target);
      env.set(vid(var.name), value);
      return;
    }
    case NodeKind::kArrayAccess: {
      const auto& access = static_cast<const phpast::ArrayAccess&>(target);
      // Resolve the base's current value for this env (without pushing
      // through the shared eval path, which would touch all envs).
      // Only variable/array-access/property bases are supported; other
      // bases degrade to no-op.
      std::string key;
      bool int_key = false;
      bool generated_key = false;  // synthesized, not from the source
      if (access.index == nullptr) {
        key = "#push" + std::to_string(graph_.object_count());
        int_key = true;
        generated_key = true;
      } else if (access.index->kind() == NodeKind::kStringLit) {
        key = static_cast<const phpast::StringLit&>(*access.index).value;
      } else if (access.index->kind() == NodeKind::kIntLit) {
        key = std::to_string(
            static_cast<const phpast::IntLit&>(*access.index).value);
        int_key = true;
      } else {
        key = "?dyn" + std::to_string(graph_.object_count());
        generated_key = true;
      }
      // Current base value: only direct-variable bases can be rebound.
      if (access.base->kind() == NodeKind::kVariable) {
        const auto& var = static_cast<const phpast::Variable&>(*access.base);
        const VarId base_id = vid(var.name);
        const Label base = env.get(base_id);
        std::vector<ArrayEntry> entries;
        if (const Object* obj = graph_.find(base);
            obj != nullptr && obj->kind == Object::Kind::kArray) {
          entries = obj->entries;
        }
        if (generated_key) {
          // object_count() no longer advances on every add (hash-consing
          // can answer from existing nodes), so two synthesized keys may
          // collide; a collision must append, never overwrite the
          // earlier push.
          const std::string base_key = key;
          int bump = 0;
          auto taken = [&entries](const std::string& k) {
            for (const ArrayEntry& e : entries) {
              if (e.key == k) return true;
            }
            return false;
          };
          while (taken(key)) key = base_key + "_" + std::to_string(++bump);
        }
        bool replaced = false;
        for (ArrayEntry& e : entries) {
          if (e.key == key) {
            e.value = value;
            replaced = true;
            break;
          }
        }
        if (!replaced) entries.push_back(ArrayEntry{key, int_key, value});
        env.set(base_id, graph_.add_array(std::move(entries), loc));
      }
      return;
    }
    case NodeKind::kPropertyAccess: {
      const auto& pa = static_cast<const phpast::PropertyAccess&>(target);
      if (pa.base->kind() == NodeKind::kVariable) {
        const auto& var = static_cast<const phpast::Variable&>(*pa.base);
        const VarId base_id = vid(var.name);
        const Label base = env.get(base_id);
        std::vector<ArrayEntry> entries;
        if (const Object* obj = graph_.find(base);
            obj != nullptr && obj->kind == Object::Kind::kArray) {
          entries = obj->entries;
        }
        const std::string key = strutil::cat("->", pa.name);
        bool replaced = false;
        for (ArrayEntry& e : entries) {
          if (e.key == key) {
            e.value = value;
            replaced = true;
            break;
          }
        }
        if (!replaced) entries.push_back(ArrayEntry{key, false, value});
        env.set(base_id, graph_.add_array(std::move(entries), loc));
      }
      return;
    }
    case NodeKind::kListExpr: {
      const auto& list = static_cast<const phpast::ListExpr&>(target);
      // Copy the entries: element assignment below adds objects, which
      // may reallocate the arena behind a held reference.
      std::vector<ArrayEntry> entries;
      bool is_array = false;
      if (const Object* obj = graph_.find(value);
          obj != nullptr && obj->kind == Object::Kind::kArray) {
        is_array = true;
        entries = obj->entries;
      }
      for (std::size_t i = 0; i < list.elements.size(); ++i) {
        if (list.elements[i] == nullptr) continue;
        Label element = kNoLabel;
        if (is_array && i < entries.size()) {
          element = entries[i].value;
        } else {
          const Label idx = graph_.add_concrete(
              Value(static_cast<std::int64_t>(i)), loc);
          element = graph_.add_op(OpKind::kArrayAccess, Type::kUnknown,
                                  {value, idx}, loc);
        }
        assign_into(env, *list.elements[i], element, loc);
      }
      return;
    }
    default:
      diags_.warning(loc, "unsupported assignment target skipped");
      return;
  }
}

void Interpreter::eval_assign(const phpast::Assign& assign) {
  const SourceLoc loc = assign.loc();
  if (assign.compound_op) {
    // target op= value  ==>  target = target op value.
    eval_expr(*assign.target);
    eval_expr(*assign.value);
    const OpKind op = op_kind_for(*assign.compound_op);
    for (Env& env : envs_) {
      if (!env.running()) continue;
      const Label rhs = pop(env);
      const Label lhs = pop(env);
      const Type result =
          result_type_for(op, graph_.at(lhs).type, graph_.at(rhs).type);
      if (op == OpKind::kConcat) {
        graph_.refine_type(lhs, Type::kString);
        graph_.refine_type(rhs, Type::kString);
      }
      const Label combined = graph_.add_op(op, result, {lhs, rhs}, loc);
      assign_into(env, *assign.target, combined, loc);
      push(env, combined);
    }
    return;
  }
  eval_expr(*assign.value);
  for (Env& env : envs_) {
    if (!env.running()) continue;
    const Label value = pop(env);
    assign_into(env, *assign.target, value, loc);
    push(env, value);
  }
}

void Interpreter::eval_call(const phpast::Call& call) {
  const SourceLoc loc = call.loc();
  if (call.is_dynamic()) {
    eval_expr(*call.callee_expr);
    for (const auto& a : call.args) eval_expr(*a);
    for (Env& env : envs_) {
      if (!env.running()) continue;
      for (std::size_t i = 0; i < call.args.size() + 1; ++i) pop(env);
      push(env, fresh_symbol("dyncall", Type::kUnknown, loc));
    }
    return;
  }

  if (sink_registry_.is_sink(call.callee)) {
    for (const auto& a : call.args) eval_expr(*a);
    record_sink(call.callee, call.args.size(), loc);
    return;
  }

  const auto it = program_.functions.find(call.callee);
  if (it != program_.functions.end()) {
    for (const auto& a : call.args) eval_expr(*a);
    eval_user_function(it->second, call.args.size(), loc);
    return;
  }

  std::vector<const Expr*> arg_exprs;
  for (const auto& a : call.args) arg_exprs.push_back(a);
  eval_builtin_or_unknown(call.callee, arg_exprs, loc);
}

void Interpreter::record_sink(std::string_view name, std::size_t arg_count,
                              SourceLoc loc) {
  for (Env& env : envs_) {
    if (!env.running()) continue;
    std::vector<Label> args(arg_count);
    for (std::size_t i = arg_count; i-- > 0;) args[i] = pop(env);
    SinkHit hit;
    hit.sink_name = name;
    hit.loc = loc;
    if (sink_registry_.signature(name) == SinkSignature::kSrcDst) {
      hit.src = arg_count > 0 ? args[0] : kNoLabel;
      hit.dst = arg_count > 1 ? args[1] : kNoLabel;
    } else {  // f(dst, src), e.g. file_put_contents
      hit.dst = arg_count > 0 ? args[0] : kNoLabel;
      hit.src = arg_count > 1 ? args[1] : kNoLabel;
    }
    hit.reachability = env.cur();
    sinks_.push_back(hit);
    // The sink call itself evaluates to a boolean in the program.
    push(env, graph_.add_func(std::string(name), Type::kBool,
                              std::move(args), loc));
  }
}

namespace {

// Functions that terminate the PHP request: execution does not continue
// past them, so paths through them never reach a later sink. Missing
// this is exactly how a guard like `if (!valid) wp_die();` would turn
// into a false positive.
bool is_terminator(std::string_view name) {
  return name == "wp_die" || name == "wp_send_json" ||
         name == "wp_send_json_error" || name == "wp_send_json_success" ||
         name == "wp_redirect_and_exit" || name == "drupal_exit";
}

}  // namespace

void Interpreter::eval_builtin_or_unknown(
    std::string_view name, const std::vector<const Expr*>& arg_exprs,
    SourceLoc loc) {
  for (const Expr* a : arg_exprs) eval_expr(*a);
  const bool terminates = is_terminator(name);
  for (Env& env : envs_) {
    if (!env.running()) continue;
    std::vector<Label> args(arg_exprs.size());
    for (std::size_t i = arg_exprs.size(); i-- > 0;) args[i] = pop(env);
    BuiltinContext ctx{*this, graph_, env, loc, args, arg_exprs};
    push(env, dispatch_builtin(ctx, name));
    if (terminates) env.set_status(Env::Status::kExited);
  }
}

void Interpreter::eval_user_function(const Program::FunctionInfo& info,
                                     std::size_t arg_count, SourceLoc loc) {
  // Args are already on each running env's stack. Guard against
  // recursion and excessive depth; both degrade to a fresh symbol.
  const bool recursive =
      std::find(call_chain_.begin(), call_chain_.end(), info.name) !=
      call_chain_.end();
  if (recursive ||
      call_chain_.size() >= static_cast<std::size_t>(budget_.max_call_depth)) {
    for (Env& env : envs_) {
      if (!env.running()) continue;
      for (std::size_t i = 0; i < arg_count; ++i) pop(env);
      push(env, fresh_symbol("call_" + info.name, Type::kUnknown, loc));
    }
    return;
  }

  const ForkSiteScope fork_scope(budget_.profiler, envs_,
                                 profile::ForkKind::kCall, loc, info.name);
  call_chain_.push_back(info.name);
  const phpast::FunctionDecl& fn = *info.decl;

  // Set non-running environments aside: they take no part in the call,
  // and their frame stacks (possibly belonging to an outer call) must
  // not be touched by the post-call frame pop below.
  std::vector<Env> set_aside;
  {
    std::vector<Env> running;
    for (Env& env : envs_) {
      if (env.running()) {
        running.push_back(std::move(env));
      } else {
        set_aside.push_back(std::move(env));
      }
    }
    envs_ = std::move(running);
  }

  std::vector<VarId> param_ids;
  param_ids.reserve(fn.params.size());
  for (const phpast::Param& p : fn.params) param_ids.push_back(vid(p.name));

  for (Env& env : envs_) {
    std::vector<Label> args(arg_count);
    for (std::size_t i = arg_count; i-- > 0;) args[i] = pop(env);
    env.frames().push_back(env.entries());
    env.set_entries({});
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (i < args.size()) {
        env.set(param_ids[i], args[i]);
      } else if (fn.params[i].default_value != nullptr) {
        // Evaluate simple literal defaults; others degrade to symbols.
        const Expr& def = *fn.params[i].default_value;
        Label label;
        switch (def.kind()) {
          case NodeKind::kIntLit:
            label = graph_.add_concrete(
                Value(static_cast<const phpast::IntLit&>(def).value), loc);
            break;
          case NodeKind::kStringLit:
            label = graph_.add_concrete(
                Value(std::string(
                    static_cast<const phpast::StringLit&>(def).value)),
                loc);
            break;
          case NodeKind::kBoolLit:
            label = graph_.add_concrete(
                Value(static_cast<const phpast::BoolLit&>(def).value), loc);
            break;
          case NodeKind::kNullLit:
            label = graph_.add_concrete(Value(std::monostate{}), loc);
            break;
          default:
            label = fresh_symbol(strutil::cat("default_", fn.params[i].name),
                                 Type::kUnknown, loc);
            break;
        }
        env.set(param_ids[i], label);
      } else {
        env.set(param_ids[i],
                fresh_symbol(strutil::cat("param_", fn.params[i].name),
                             Type::kUnknown, loc));
      }
    }
  }

  exec_stmts(fn.body);

  const Label null_label = graph_.add_concrete(Value(std::monostate{}), loc);
  for (Env& env : envs_) {
    if (env.frames().empty()) continue;  // defensive
    Label result = null_label;
    if (env.status() == Env::Status::kReturned) {
      result =
          env.return_value() != kNoLabel ? env.return_value() : null_label;
      env.set_status(Env::Status::kRunning);
      env.set_return_value(kNoLabel);
    }
    env.set_entries(std::move(env.frames().back()));
    env.frames().pop_back();
    if (env.running()) push(env, result);
  }
  for (Env& env : set_aside) envs_.push_back(std::move(env));
  call_chain_.pop_back();
}

}  // namespace uchecker::core
