// Models of PHP built-in (and WordPress platform) functions for symbolic
// execution (paper §III-B4: FUNC "is initialized with built-in functions
// of PHP languages or specific platforms (such as WordPress)").
//
// Three levels of modeling fidelity:
//   1. Semantic models — functions whose result structure matters for the
//      upload constraints: pathinfo(), explode(), end(), in_array(),
//      basename(), sprintf(), $_FILES-aware helpers. These return
//      structured heap-graph values (e.g. the very extension symbol the
//      pre-structured $_FILES model introduced).
//   2. Typed opaque models — functions with a known result type
//      (strlen -> int, substr -> string, ...). These become O_FUNC nodes
//      that the Z3 translation layer maps per paper Table II.
//   3. Unknown functions — become O_FUNC nodes of unknown type; the
//      translation replaces them by fresh symbols of the expected sort
//      (paper §III-D's exception rule).
#pragma once

#include <string_view>
#include <vector>

#include "core/heapgraph/heapgraph.h"
#include "phpast/ast.h"
#include "support/source.h"

namespace uchecker::core {

class Interpreter;

struct BuiltinContext {
  Interpreter& interp;
  HeapGraph& graph;
  Env& env;
  SourceLoc loc;
  const std::vector<Label>& args;                   // evaluated, this env
  const std::vector<const phpast::Expr*>& arg_exprs;  // source expressions
};

// Evaluates builtin `name` (lowercase) for one environment; returns the
// result object's label. Unknown names get the level-3 default model.
[[nodiscard]] Label dispatch_builtin(BuiltinContext& ctx,
                                     std::string_view name);

// Value of a PHP constant (PATHINFO_EXTENSION, UPLOAD_ERR_OK, ...);
// unknown constants become named symbols.
[[nodiscard]] Label builtin_const_value(Interpreter& interp,
                                        std::string_view name,
                                        SourceLoc loc);

// String functions whose symbolic value is translated as the identity on
// their first argument (strtolower, trim, ...): for satisfiability
// checking the attacker controls the input, so case/whitespace mapping
// does not change whether a ".php" suffix is reachable.
[[nodiscard]] bool is_identity_builtin(std::string_view name);

// Follows identity builtins (and basename) down to the underlying value;
// used to recognize the pre-structured $_FILES "name" object behind
// wrappers like strtolower(basename($f['name'])).
[[nodiscard]] Label resolve_through_identity(const HeapGraph& graph,
                                             Label label);

}  // namespace uchecker::core
