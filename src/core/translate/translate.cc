#include "core/translate/translate.h"

#include "core/interp/builtins.h"
#include "support/fault_injector.h"
#include "support/strutil.h"

namespace uchecker::core {
namespace {

// The sort a value of this PHP type translates into. Floats ride on Int
// (the upload constraints never need real arithmetic); arrays and nulls
// have no Z3 carrier and always go through the fallback rule.
enum class Carrier { kBool, kInt, kString };

Carrier carrier_for(Type type) {
  switch (type) {
    case Type::kBool: return Carrier::kBool;
    case Type::kInt:
    case Type::kFloat: return Carrier::kInt;
    default: return Carrier::kString;
  }
}

}  // namespace

Translator::Translator(smt::Checker& checker, const HeapGraph& graph)
    : checker_(checker), graph_(graph) {}

z3::context& Translator::ctx() { return checker_.ctx(); }

z3::sort Translator::sort_for(Type type) {
  switch (carrier_for(type)) {
    case Carrier::kBool: return ctx().bool_sort();
    case Carrier::kInt: return ctx().int_sort();
    case Carrier::kString: return ctx().string_sort();
  }
  return ctx().string_sort();
}

z3::expr Translator::fresh(Type type, const std::string& hint) {
  ++fallback_count_;
  const std::string name =
      "u_" + hint + "_" + std::to_string(++fresh_counter_);
  return ctx().constant(name.c_str(), sort_for(type));
}

z3::expr Translator::coerce(const z3::expr& e, Type from, Type to) {
  const Carrier src = carrier_for(from);
  const Carrier dst = carrier_for(to);
  if (src == dst) return e;
  switch (dst) {
    case Carrier::kBool:
      if (src == Carrier::kInt) return e != 0;
      return e.length() > 0;  // string truthiness ("" is falsy)
    case Carrier::kInt:
      if (src == Carrier::kBool) return z3::ite(e, ctx().int_val(1), ctx().int_val(0));
      return e.stoi();  // PHP intval() semantics, approximately
    case Carrier::kString:
      if (src == Carrier::kInt) return e.itos();
      return z3::ite(e, ctx().string_val("1"), ctx().string_val(""));
  }
  return e;
}

Type Translator::resolve_pair(Type mine, Type sibling) {
  if (mine != Type::kUnknown) return mine;
  if (sibling != Type::kUnknown && sibling != Type::kArray &&
      sibling != Type::kNull) {
    return sibling;
  }
  return Type::kString;
}

z3::expr Translator::truthy(Label label) {
  const Object* obj = graph_.find(label);
  if (obj == nullptr) return ctx().bool_val(true);
  const Type type = obj->type == Type::kUnknown ? Type::kBool : obj->type;
  switch (carrier_for(type)) {
    case Carrier::kBool:
      return translate(label, Type::kBool);
    case Carrier::kInt:
      return translate(label, Type::kInt) != 0;  // Table II Logical Not, int
    case Carrier::kString:
      if (type == Type::kArray || type == Type::kNull) {
        // Arrays/null have no precise carrier; a fresh boolean keeps the
        // constraint satisfiable either way (exception rule).
        return fresh(Type::kBool, "truthy");
      }
      // Table II Logical Not, string: "" is falsy. (PHP also treats "0"
      // as falsy; that refinement rarely matters for upload logic.)
      return translate(label, Type::kString).length() > 0;
  }
  return ctx().bool_val(true);
}

z3::expr Translator::translate(Label label, Type expected) {
  FaultInjector::checkpoint("translate");
  const Object* obj = graph_.find(label);
  if (obj == nullptr) return fresh(expected, "null");
  const Type resolved = obj->type == Type::kUnknown ? expected : obj->type;
  const std::uint64_t key = (static_cast<std::uint64_t>(label) << 2) |
                            static_cast<std::uint64_t>(carrier_for(resolved));
  if (const auto it = cache_.find(key); it != cache_.end()) {
    // Cached at the object's own carrier; coerce to the caller's.
    return coerce(it->second, resolved, expected);
  }

  z3::expr result = ctx().bool_val(false);  // placeholder; overwritten
  switch (obj->kind) {
    case Object::Kind::kConcrete:
      switch (obj->type) {
        case Type::kBool:
          result = coerce(ctx().bool_val(std::get<bool>(obj->value)),
                          Type::kBool, resolved);
          break;
        case Type::kInt:
          result = coerce(
              ctx().int_val(static_cast<std::int64_t>(
                  std::get<std::int64_t>(obj->value))),
              Type::kInt, resolved);
          break;
        case Type::kFloat:
          result = coerce(ctx().int_val(static_cast<std::int64_t>(
                              std::get<double>(obj->value))),
                          Type::kInt, resolved);
          break;
        case Type::kString:
          result = coerce(ctx().string_val(std::get<std::string>(obj->value)),
                          Type::kString, resolved);
          break;
        default:  // null
          result = coerce(ctx().string_val(""), Type::kString, resolved);
          break;
      }
      break;
    case Object::Kind::kSymbol: {
      // Table II row 2: a Z3 symbol with the value's type. Unknown-typed
      // symbols adopt the sort of their first use (cached).
      result = ctx().constant(obj->name.c_str(), sort_for(resolved));
      break;
    }
    case Object::Kind::kOp:
      result = translate_op(*obj, resolved);
      break;
    case Object::Kind::kFunc:
      result = translate_func(*obj, resolved);
      break;
    case Object::Kind::kArray:
      // Arrays have no Z3 carrier; exception rule.
      result = fresh(resolved, "array");
      break;
  }
  // Op/func translations may come back at a different carrier than the
  // object's nominal type (e.g. an unknown func translated at the
  // caller's expectation); normalize to `resolved` before caching.
  const z3::sort want = sort_for(resolved);
  if (!z3::eq(result.get_sort(), want)) {
    const Type actual = result.is_bool()  ? Type::kBool
                        : result.is_int() ? Type::kInt
                                          : Type::kString;
    result = coerce(result, actual, resolved);
  }
  cache_.emplace(key, result);
  return coerce(result, resolved, expected);
}

z3::expr Translator::translate_equal(const Object& obj, bool negate) {
  // Table II "Logical Equal": dispatch on operand types, coercing the
  // unknown side into the known side's domain.
  const Object& lhs = graph_.at(obj.children[0]);
  const Object& rhs = graph_.at(obj.children[1]);
  const Type lt = resolve_pair(lhs.type, rhs.type);
  const Type rt = resolve_pair(rhs.type, lt);
  z3::expr l = translate(obj.children[0], lt);
  z3::expr r = translate(obj.children[1], rt);
  if (carrier_for(lt) != carrier_for(rt)) {
    // Coerce toward the "wider" domain: string > int > bool.
    const Type target =
        (carrier_for(lt) == Carrier::kString || carrier_for(rt) == Carrier::kString)
            ? Type::kString
            : Type::kInt;
    l = coerce(l, lt, target);
    r = coerce(r, rt, target);
  }
  const z3::expr eq = l == r;
  return negate ? !eq : eq;
}

z3::expr Translator::translate_op(const Object& obj, Type expected) {
  const auto child = [&](std::size_t i, Type t) {
    return translate(obj.children[i], t);
  };
  const auto int_pair_type = [&]() {
    // Comparisons between strings compare as strings in PHP when both
    // sides are strings; otherwise integer comparison.
    const Type lt = graph_.at(obj.children[0]).type;
    const Type rt = graph_.at(obj.children[1]).type;
    return (lt == Type::kString && rt == Type::kString) ? Type::kString
                                                        : Type::kInt;
  };

  switch (obj.op) {
    case OpKind::kConcat: {
      // Table II "String concat": (str.++ a b); non-string operands are
      // coerced (PHP juggles ints into strings when concatenating).
      return z3::concat(child(0, Type::kString), child(1, Type::kString));
    }
    case OpKind::kAdd:
      return child(0, Type::kInt) + child(1, Type::kInt);
    case OpKind::kSub:
      return child(0, Type::kInt) - child(1, Type::kInt);
    case OpKind::kMul:
      return child(0, Type::kInt) * child(1, Type::kInt);
    case OpKind::kDiv: {
      const z3::expr denom = child(1, Type::kInt);
      return child(0, Type::kInt) / z3::ite(denom == 0, ctx().int_val(1), denom);
    }
    case OpKind::kMod: {
      const z3::expr denom = child(1, Type::kInt);
      return z3::mod(child(0, Type::kInt),
                     z3::ite(denom == 0, ctx().int_val(1), denom));
    }
    case OpKind::kPow:
      return fresh(Type::kInt, "pow");  // nonlinear; exception rule
    case OpKind::kNegate:
      return -child(0, Type::kInt);
    case OpKind::kEqual:
    case OpKind::kIdentical:
      return translate_equal(obj, /*negate=*/false);
    case OpKind::kNotEqual:
    case OpKind::kNotIdentical:
      return translate_equal(obj, /*negate=*/true);
    case OpKind::kLess: {
      const Type t = int_pair_type();
      if (t == Type::kString) return fresh(Type::kBool, "strcmp");
      return child(0, t) < child(1, t);
    }
    case OpKind::kGreater: {
      const Type t = int_pair_type();
      if (t == Type::kString) return fresh(Type::kBool, "strcmp");
      return child(0, t) > child(1, t);
    }
    case OpKind::kLessEqual: {
      const Type t = int_pair_type();
      if (t == Type::kString) return fresh(Type::kBool, "strcmp");
      return child(0, t) <= child(1, t);
    }
    case OpKind::kGreaterEqual: {
      const Type t = int_pair_type();
      if (t == Type::kString) return fresh(Type::kBool, "strcmp");
      return child(0, t) >= child(1, t);
    }
    case OpKind::kAnd:
      // Table II "Logical AND": operand truthiness per type.
      return truthy(obj.children[0]) && truthy(obj.children[1]);
    case OpKind::kOr:
      return truthy(obj.children[0]) || truthy(obj.children[1]);
    case OpKind::kXor:
      return truthy(obj.children[0]) != truthy(obj.children[1]);
    case OpKind::kNot:
      // Table II "Logical Not".
      return !truthy(obj.children[0]);
    case OpKind::kBitAnd:
    case OpKind::kBitOr:
    case OpKind::kBitXor:
    case OpKind::kShiftLeft:
    case OpKind::kShiftRight:
      return fresh(Type::kInt, "bitop");  // exception rule
    case OpKind::kArrayAccess:
      // Element of an unknown array: exception rule, but cached per
      // node so the same access denotes one value everywhere.
      return fresh(expected, "array_access");
    case OpKind::kTernary: {
      const Type branch_type =
          expected == Type::kUnknown ? Type::kString : expected;
      return z3::ite(truthy(obj.children[0]), child(1, branch_type),
                     child(2, branch_type));
    }
    case OpKind::kCoalesce: {
      const Type branch_type =
          expected == Type::kUnknown ? Type::kString : expected;
      return z3::ite(fresh(Type::kBool, "isnull"), child(0, branch_type),
                     child(1, branch_type));
    }
  }
  return fresh(expected, "op");
}

z3::expr Translator::translate_func(const Object& obj, Type expected) {
  const std::string& name = obj.name;
  const auto child = [&](std::size_t i, Type t) {
    return translate(obj.children[i], t);
  };
  const std::size_t n = obj.children.size();

  // Identity-translated string functions (strtolower, trim, basename on
  // attacker-controlled names, ...): trl(f(e)) = trl(e).
  if ((is_identity_builtin(name) || name == "basename") && n >= 1) {
    return coerce(child(n - 1 == 0 ? 0 : 0, Type::kString), Type::kString,
                  expected);
  }
  if (name == "strlen" && n == 1) {  // Table II "String length"
    return child(0, Type::kString).length();
  }
  if (name == "strpos" && n >= 2) {  // Table II "Index of string"
    return z3::indexof(child(0, Type::kString), child(1, Type::kString),
                       n >= 3 ? child(2, Type::kInt) : ctx().int_val(0));
  }
  if (name == "str_replace" && n >= 3) {  // Table II "String replace"
    // PHP order: (search, replace, subject); Z3: subject.replace(src, dst).
    return child(2, Type::kString)
        .replace(child(0, Type::kString), child(1, Type::kString));
  }
  if (name == "intval" && n >= 1) {  // Table II "String to int"
    const Object& a = graph_.at(obj.children[0]);
    if (a.type == Type::kInt || a.type == Type::kFloat ||
        a.type == Type::kBool) {
      return coerce(child(0, Type::kInt), Type::kInt, expected);
    }
    return coerce(child(0, Type::kString).stoi(), Type::kInt, expected);
  }
  if (name == "strval" && n >= 1) {
    return coerce(child(0, Type::kString), Type::kString, expected);
  }
  if (name == "boolval" && n >= 1) {
    return coerce(truthy(obj.children[0]), Type::kBool, expected);
  }
  if (name == "substr") {  // Table II "Substring", both arities
    // PHP's negative start/length count from the end of the string;
    // normalize before Z3's extract, which expects non-negative offsets.
    const auto normalize = [&](const z3::expr& s, const z3::expr& v) {
      return z3::ite(v < 0, s.length() + v, v);
    };
    if (n == 2) {
      const z3::expr s = child(0, Type::kString);
      return s.extract(normalize(s, child(1, Type::kInt)), s.length());
    }
    if (n >= 3) {
      const z3::expr s = child(0, Type::kString);
      return s.extract(normalize(s, child(1, Type::kInt)),
                       normalize(s, child(2, Type::kInt)));
    }
  }
  if (name == "empty" && n == 1) {
    return coerce(!truthy(obj.children[0]), Type::kBool, expected);
  }
  if (name == "sprintf" || name == "implode" || name == "join") {
    // Reaches here only when the semantic model could not decompose it.
    return fresh(expected == Type::kUnknown ? Type::kString : expected, name);
  }

  // Exception rule (§III-D): a fresh symbol of the expected sort.
  const Type t = expected == Type::kUnknown
                     ? (obj.type == Type::kUnknown ? Type::kString : obj.type)
                     : expected;
  return fresh(t, name);
}

}  // namespace uchecker::core
