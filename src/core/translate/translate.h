// Z3-oriented constraint translation (paper §III-D, Table II).
//
// trl() recursively translates PHP-semantics heap-graph values into Z3
// terms, mitigating four semantic gaps the paper identifies:
//   i.   different operation names     (PHP "." -> Z3 str.++, ...)
//   ii.  parameter order / arity       (str_replace, substr, ...)
//   iii. PHP's dynamic typing          (the coercion rules of Table II's
//                                       Logical Not / And / Equal rows)
//   iv.  operations missing in Z3      (fresh symbols of the expected
//                                       sort — the paper's exception rule)
//
// Every heap-graph object translates to at most one Z3 term per expected
// sort; the per-label cache guarantees that a shared object (e.g. one
// array_access node reused by several constraints) denotes one value.
#pragma once

#include <z3++.h>

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/heapgraph/heapgraph.h"
#include "smt/solver.h"

namespace uchecker::core {

class Translator {
 public:
  Translator(smt::Checker& checker, const HeapGraph& graph);

  // trl(label : expected). `expected` guides sort selection for unknown-
  // typed values; a typed object is translated at its own type and then
  // coerced (PHP-style) to `expected`.
  [[nodiscard]] z3::expr translate(Label label, Type expected);

  // The PHP truthiness of a value, as a Z3 boolean — used for the
  // reachability constraint (Constraint-3) and for Logical Not/And.
  [[nodiscard]] z3::expr truthy(Label label);

  // Number of fresh symbols introduced by the exception rule; a measure
  // of how much of the program escaped precise modeling.
  [[nodiscard]] std::size_t fallback_count() const { return fallback_count_; }

 private:
  [[nodiscard]] z3::context& ctx();
  [[nodiscard]] z3::sort sort_for(Type type);
  [[nodiscard]] z3::expr fresh(Type type, const std::string& hint);
  // PHP-style cross-type coercion of a translated term.
  [[nodiscard]] z3::expr coerce(const z3::expr& e, Type from, Type to);
  // Resolves kUnknown operand types against a sibling (PHP comparison
  // semantics: compare in the known operand's domain, default string).
  [[nodiscard]] static Type resolve_pair(Type mine, Type sibling);

  [[nodiscard]] z3::expr translate_op(const Object& obj, Type expected);
  [[nodiscard]] z3::expr translate_func(const Object& obj, Type expected);
  [[nodiscard]] z3::expr translate_equal(const Object& obj, bool negate);

  smt::Checker& checker_;
  const HeapGraph& graph_;
  // Cache keyed by (label << 2) | carrier — one term per (object, sort).
  // With the hash-consed heap graph, shared subterms across the sink's
  // dst/src/reachability constraints translate exactly once.
  std::unordered_map<std::uint64_t, z3::expr> cache_;
  std::size_t fallback_count_ = 0;
  std::size_t fresh_counter_ = 0;
};

}  // namespace uchecker::core
