#include "core/sinks.h"

#include <algorithm>

namespace uchecker::core {

SinkRegistry::SinkRegistry() {
  specs_.push_back(SinkSpec{"move_uploaded_file", SinkSignature::kSrcDst});
  specs_.push_back(SinkSpec{"file_put_contents", SinkSignature::kDstSrc});
  // The paper's spelling of the same builtin.
  specs_.push_back(SinkSpec{"file_put_content", SinkSignature::kDstSrc});
  // Copy/rename-after-upload family: plugins that stage the upload in a
  // temp location and persist it with copy()/rename() share
  // move_uploaded_file's (src, dst) shape and constraint model.
  specs_.push_back(SinkSpec{"copy", SinkSignature::kSrcDst});
  specs_.push_back(SinkSpec{"rename", SinkSignature::kSrcDst});
}

void SinkRegistry::add(SinkSpec spec) { specs_.push_back(std::move(spec)); }

bool SinkRegistry::is_sink(std::string_view lower_name) const {
  for (const SinkSpec& s : specs_) {
    if (s.name == lower_name) return true;
  }
  return false;
}

SinkSignature SinkRegistry::signature(std::string_view lower_name) const {
  for (const SinkSpec& s : specs_) {
    if (s.name == lower_name) return s.signature;
  }
  return SinkSignature::kSrcDst;
}

const SinkRegistry& SinkRegistry::paper_defaults() {
  // Strictly the paper's sink vocabulary — without the copy()/rename()
  // family the default constructor adds. Baseline comparisons against
  // the paper's numbers use this registry.
  static const SinkRegistry* registry = [] {
    auto* reg = new SinkRegistry();
    reg->specs_.erase(
        std::remove_if(reg->specs_.begin(), reg->specs_.end(),
                       [](const SinkSpec& s) {
                         return s.name == "copy" || s.name == "rename";
                       }),
        reg->specs_.end());
    return reg;
  }();
  return *registry;
}

}  // namespace uchecker::core
