#include "core/sinks.h"

namespace uchecker::core {

SinkRegistry::SinkRegistry() {
  specs_.push_back(SinkSpec{"move_uploaded_file", SinkSignature::kSrcDst});
  specs_.push_back(SinkSpec{"file_put_contents", SinkSignature::kDstSrc});
  // The paper's spelling of the same builtin.
  specs_.push_back(SinkSpec{"file_put_content", SinkSignature::kDstSrc});
}

void SinkRegistry::add(SinkSpec spec) { specs_.push_back(std::move(spec)); }

bool SinkRegistry::is_sink(std::string_view lower_name) const {
  for (const SinkSpec& s : specs_) {
    if (s.name == lower_name) return true;
  }
  return false;
}

SinkSignature SinkRegistry::signature(std::string_view lower_name) const {
  for (const SinkSpec& s : specs_) {
    if (s.name == lower_name) return s.signature;
  }
  return SinkSignature::kSrcDst;
}

const SinkRegistry& SinkRegistry::paper_defaults() {
  static const SinkRegistry* registry = new SinkRegistry();
  return *registry;
}

}  // namespace uchecker::core
