#include "core/vulnmodel/vulnmodel.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/heapgraph/sexpr.h"
#include "core/interp/builtins.h"
#include "core/translate/translate.h"
#include "support/jsonlite.h"
#include "support/profile.h"
#include "support/strutil.h"
#include "support/telemetry.h"

namespace uchecker::core {
namespace {

bool is_ext_symbol(const Object& obj) {
  return obj.kind == Object::Kind::kSymbol && obj.files_tainted &&
         obj.name.size() > 4 &&
         obj.name.compare(obj.name.size() - 4, 4, "_ext") == 0;
}

// Does the value rooted at `label` textually end with a literal '.'?
// (Descends the rightmost spine of concatenations.)
bool ends_with_literal_dot(const HeapGraph& graph, Label label) {
  for (int guard = 0; guard < 256; ++guard) {
    const Object* obj = graph.find(label);
    if (obj == nullptr) return false;
    if (obj->kind == Object::Kind::kOp && obj->op == OpKind::kConcat) {
      label = obj->children[1];
      continue;
    }
    if (obj->kind == Object::Kind::kConcrete && obj->type == Type::kString) {
      const std::string& s = std::get<std::string>(obj->value);
      return !s.empty() && s.back() == '.';
    }
    return false;
  }
  return false;
}

// If `dst` structurally ends with  ... . "." . s_ext  (the pre-structured
// $_FILES name shape, possibly behind identity wrappers and benign
// str_replace calls), returns the extension symbol's label. In that
// case, given the domain axiom that s_ext contains no '.' (and attacker
// control of s_ext), the suffix constraint  (str.suffixof ".X" dst)  is
// *equivalent* to  s_ext == "X": the dot of ".X" can only align with the
// structural dot separator. This rewrite matters in practice: Z3 4.8's
// sequence solver cannot refute suffixof-vs-blacklist combinations
// (observed >60s), while the equality form is decided instantly.
//
// str_replace(search, repl, subject) with concrete search/repl passes
// through to `subject`: the attacker picks a witness input avoiding
// `search`, so satisfiability is preserved — with two guards. If `repl`
// contains a '.', the replacement itself could synthesize an executable
// suffix and the structural argument breaks (caller falls back to the
// general suffixof encoding). And any extension X whose mandatory tail
// ".X" contains `search` cannot be chosen avoidance-free; such X are
// appended to `excluded_exts` and dropped from the equality disjunction.
//
// Ternary/coalesce destinations ($dir_a . $n vs $dir_b . $n) are common
// and kill the sequence solver outright once the suffix disjunction has
// three or more arms, so the walk also descends through kTernary and
// kCoalesce: when BOTH value branches structurally end in the SAME
// extension symbol, suffixof distributes over the ite and the equality
// rewrite stays an equivalence. Different (or non-structural) branches
// fall back to the general encoding.
Label trailing_extension_symbol_impl(const HeapGraph& graph, Label dst,
                                     std::vector<std::string>* excluded_searches,
                                     int depth) {
  if (depth <= 0) return kNoLabel;
  Label label = resolve_through_identity(graph, dst);
  for (int guard = 0; guard < 256; ++guard) {
    const Object* obj = graph.find(label);
    if (obj == nullptr) return kNoLabel;
    if (obj->kind == Object::Kind::kOp &&
        (obj->op == OpKind::kTernary || obj->op == OpKind::kCoalesce)) {
      // Value branches: (ternary cond then else) / (coalesce lhs rhs).
      const std::size_t first = obj->op == OpKind::kTernary ? 1 : 0;
      if (obj->children.size() != first + 2) return kNoLabel;
      const Label then_ext = trailing_extension_symbol_impl(
          graph, obj->children[first], excluded_searches, depth - 1);
      if (then_ext == kNoLabel) return kNoLabel;
      const Label else_ext = trailing_extension_symbol_impl(
          graph, obj->children[first + 1], excluded_searches, depth - 1);
      return then_ext == else_ext ? then_ext : kNoLabel;
    }
    if (obj->kind == Object::Kind::kFunc) {
      if (obj->name == "str_replace" && obj->children.size() >= 3) {
        const Object& search = graph.at(obj->children[0]);
        const Object& repl = graph.at(obj->children[1]);
        if (search.kind == Object::Kind::kConcrete &&
            search.type == Type::kString &&
            repl.kind == Object::Kind::kConcrete &&
            repl.type == Type::kString &&
            std::get<std::string>(repl.value).find('.') ==
                std::string::npos &&
            !std::get<std::string>(search.value).empty()) {
          excluded_searches->push_back(std::get<std::string>(search.value));
          label = resolve_through_identity(graph, obj->children[2]);
          continue;
        }
        return kNoLabel;
      }
      const Label through = resolve_through_identity(graph, label);
      if (through == label) return kNoLabel;
      label = through;
      continue;
    }
    if (obj->kind != Object::Kind::kOp || obj->op != OpKind::kConcat) {
      return kNoLabel;
    }
    const Label right = resolve_through_identity(graph, obj->children[1]);
    const Object* right_obj = graph.find(right);
    if (right_obj == nullptr) return kNoLabel;
    if (is_ext_symbol(*right_obj) &&
        ends_with_literal_dot(graph, obj->children[0])) {
      return right;
    }
    if ((right_obj->kind == Object::Kind::kOp &&
         right_obj->op == OpKind::kConcat) ||
        right_obj->kind == Object::Kind::kFunc) {
      // Descend into the trailing component (a nested concat, or a
      // str_replace/identity wrapper handled at the top of the loop).
      label = right;
      continue;
    }
    return kNoLabel;
  }
  return kNoLabel;
}

Label trailing_extension_symbol(const HeapGraph& graph, Label dst,
                                std::vector<std::string>* excluded_searches) {
  // Depth bounds only the ternary/coalesce branching, not the rightmost
  // concat spine (the loop above handles arbitrarily long spines).
  return trailing_extension_symbol_impl(graph, dst, excluded_searches, 8);
}

// Hash for the per-call (dst, reachability) memo; labels are dense small
// ints, so splicing them into one word distributes fine.
struct LabelPairHash {
  std::size_t operator()(const std::pair<Label, Label>& p) const noexcept {
    return (static_cast<std::size_t>(p.first) << 32) ^
           static_cast<std::size_t>(p.second);
  }
};

// Renders the destination term with model bindings substituted. Tracks
// whether every subterm resolved to a concrete string.
struct DestinationResolver {
  const HeapGraph& graph;
  const std::map<std::string, std::string>& assignments;
  const VulnModelOptions& options;
  bool complete = true;

  void render(Label label, std::string& out, int depth) {
    if (depth > 64) {
      out += "<...>";
      complete = false;
      return;
    }
    const Object* obj = graph.find(label);
    if (obj == nullptr) {
      complete = false;
      out += "<null>";
      return;
    }
    switch (obj->kind) {
      case Object::Kind::kConcrete:
        out += value_to_string(obj->value);
        return;
      case Object::Kind::kSymbol: {
        const auto it = assignments.find(obj->name);
        if (it != assignments.end()) {
          out += decode_z3_value(it->second);
          return;
        }
        if (obj->files_tainted) {
          // Unconstrained attacker-controlled input: any value satisfies
          // the model, so pick a presentable one. Extension symbols get
          // an executable extension (that is the attack), stems a stub.
          if (obj->name.find("_ext") != std::string::npos &&
              !options.executable_extensions.empty()) {
            out += options.executable_extensions.front();
          } else {
            out += "payload";
          }
          return;
        }
        complete = false;
        out += "<" + obj->name + ">";
        return;
      }
      case Object::Kind::kOp:
        if (obj->op == OpKind::kConcat && obj->children.size() == 2) {
          render(obj->children[0], out, depth + 1);
          render(obj->children[1], out, depth + 1);
          return;
        }
        complete = false;
        out += "<" + std::string(op_kind_name(obj->op)) + ">";
        return;
      case Object::Kind::kFunc: {
        const Label through = resolve_through_identity(graph, label);
        if (through != label) {
          render(through, out, depth + 1);
          return;
        }
        complete = false;
        out += "<" + obj->name + "(...)>";
        return;
      }
      case Object::Kind::kArray:
        complete = false;
        out += "<array>";
        return;
    }
  }
};

}  // namespace

std::string decode_z3_value(std::string_view raw) {
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') {
    return std::string(raw);  // numeral / boolean / uninterpreted
  }
  const std::string_view body = raw.substr(1, raw.size() - 2);
  std::string out;
  out.reserve(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '"' && i + 1 < body.size() && body[i + 1] == '"') {
      out += '"';  // SMT-LIB doubles quotes inside string literals
      ++i;
      continue;
    }
    if (c == '\\' && i + 1 < body.size()) {
      // Z3 renders non-printables as \xNN or \u{NN...}.
      const auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      if (body[i + 1] == 'x' && i + 3 < body.size() && hex(body[i + 2]) >= 0 &&
          hex(body[i + 3]) >= 0) {
        out += static_cast<char>(hex(body[i + 2]) * 16 + hex(body[i + 3]));
        i += 3;
        continue;
      }
      if (body[i + 1] == 'u' && i + 2 < body.size() && body[i + 2] == '{') {
        const std::size_t close = body.find('}', i + 3);
        if (close != std::string_view::npos && close - i - 3 <= 6) {
          unsigned code = 0;
          bool ok = true;
          for (std::size_t j = i + 3; j < close; ++j) {
            const int h = hex(body[j]);
            if (h < 0) {
              ok = false;
              break;
            }
            code = code * 16 + static_cast<unsigned>(h);
          }
          if (ok && code < 0x80) {
            out += static_cast<char>(code);
            i = close;
            continue;
          }
        }
      }
    }
    out += c;
  }
  return out;
}

AttackWitness decode_witness(
    const HeapGraph& graph, Label dst,
    const std::map<std::string, std::string>& assignments,
    const VulnModelOptions& options) {
  AttackWitness attack;
  // No assignments means no model (unsat/unknown, or a solver that
  // produced none): nothing to decode, no attack to reconstruct.
  if (assignments.empty()) return attack;
  attack.has_model = true;
  attack.bindings.reserve(assignments.size());
  std::string ext_value;
  std::string stem_value;
  for (const auto& [symbol, raw] : assignments) {
    WitnessBinding binding;
    binding.symbol = symbol;
    binding.raw = raw;
    binding.decoded = decode_z3_value(raw);
    if (symbol.find("_ext") != std::string::npos && ext_value.empty()) {
      ext_value = binding.decoded;
    }
    if (symbol.find("_filename") != std::string::npos && stem_value.empty()) {
      stem_value = binding.decoded;
    }
    attack.bindings.push_back(std::move(binding));
  }

  // The attacker's upload filename: the bound stem/extension of the
  // pre-structured $_FILES name, with free (attacker-chosen) parts
  // defaulted. Without an extension binding — the suffixof encoding
  // constrains the whole destination, not the extension symbol — any
  // executable extension realizes the attack.
  if (stem_value.empty()) stem_value = "payload";
  if (ext_value.empty() && !options.executable_extensions.empty()) {
    ext_value = options.executable_extensions.front();
  }
  if (!ext_value.empty()) {
    attack.upload_filename = stem_value + "." + ext_value;
  }

  if (dst != kNoLabel) {
    DestinationResolver resolver{graph, assignments, options};
    resolver.render(dst, attack.destination, 0);
    attack.destination_complete = resolver.complete;
  }
  return attack;
}

std::optional<SolverQueryCache::Outcome> SolverQueryCache::lookup(
    const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  ++hits_;
  return it->second;
}

void SolverQueryCache::store(const std::string& key, Outcome outcome) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = map_.emplace(key, std::move(outcome));
  (void)it;
  if (inserted) dirty_.push_back(key);
}

void SolverQueryCache::preload(const std::string& key, Outcome outcome) {
  const std::lock_guard<std::mutex> lock(mutex_);
  map_.emplace(key, std::move(outcome));
}

std::vector<std::pair<std::string, SolverQueryCache::Outcome>>
SolverQueryCache::drain_dirty() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Outcome>> out;
  out.reserve(dirty_.size());
  for (const std::string& key : dirty_) {
    const auto it = map_.find(key);
    if (it != map_.end()) out.emplace_back(it->first, it->second);
  }
  dirty_.clear();
  return out;
}

std::vector<std::pair<std::string, SolverQueryCache::Outcome>>
SolverQueryCache::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Outcome>> out;
  out.reserve(map_.size());
  for (const auto& [key, outcome] : map_) out.emplace_back(key, outcome);
  return out;
}

std::size_t SolverQueryCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t SolverQueryCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

VulnModelResult check_sinks(const InterpResult& interp, smt::Checker& checker,
                            const VulnModelOptions& options,
                            SolverQueryCache* query_cache) {
  VulnModelResult result;

  // Domain axioms for the pre-structured $_FILES model: a PHP file
  // extension (everything after the *last* dot) contains neither a dot
  // nor a path separator. Without these, blacklist-style validation
  // ("$ext !== 'php'") would be bypassable with s_ext = "x.php", which
  // no real pathinfo() result can produce. The `_ext` symbols are fixed
  // for the whole InterpResult, so collect them (and build their axiom
  // terms) once instead of rescanning every graph object per sink.
  std::vector<z3::expr> domain_axioms;
  std::string axiom_fingerprint;
  std::string axiom_error;  // hoisted translation failure, reported per sink
  try {
    Translator axiom_trl(checker, interp.graph);
    for (const Object& obj : interp.graph.objects()) {
      if (!is_ext_symbol(obj)) continue;
      const z3::expr ext = axiom_trl.translate(obj.label, Type::kString);
      domain_axioms.push_back(!ext.contains(checker.ctx().string_val(".")));
      domain_axioms.push_back(!ext.contains(checker.ctx().string_val("/")));
      axiom_fingerprint += obj.name;
      axiom_fingerprint += ';';
    }
  } catch (const z3::exception& e) {
    axiom_error = e.msg();
  }

  // Paths that share the same (dst, reachability) objects would repeat
  // the identical solver query; memoize outcomes. The witness and model
  // bindings ride along so a memoized duplicate carries the same
  // evidence bundle as the sink that actually solved.
  struct MemoOutcome {
    smt::SatResult result = smt::SatResult::kUnknown;
    std::string witness;
    std::map<std::string, std::string> bindings;
  };
  std::unordered_map<std::pair<Label, Label>, MemoOutcome, LabelPairHash> memo;

  // Provenance is additive-only: attached after the verdict is decided,
  // never consulted before, so collect_evidence cannot change results.
  // The off path is a single branch (null-telemetry idiom).
  const auto attach_evidence =
      [&](SinkVerdict& verdict,
          const std::map<std::string, std::string>& bindings) {
        if (!options.collect_evidence) return;
        if (verdict.taint_ok && verdict.sink.src != kNoLabel) {
          verdict.taint_path = extract_taint_path(
              interp.graph, verdict.sink.src, verdict.sink.loc);
        }
        verdict.guards = extract_guards(interp.graph, verdict.sink.reachability);
        if (verdict.constraints == smt::SatResult::kSat) {
          verdict.attack =
              decode_witness(interp.graph, verdict.sink.dst, bindings, options);
        }
      };

  for (const SinkHit& sink : interp.sinks) {
    if (checker.deadline().expired()) {
      // Degrade instead of hanging: unchecked sinks get no verdicts and
      // the caller reports the scan as deadline-bounded.
      result.deadline_exceeded = true;
      break;
    }
    SinkVerdict verdict;
    verdict.sink = sink;
    // Attribute everything the solver does for this sink — including the
    // warm memo/query-cache hits below — to the sink occurrence.
    checker.set_query_origin(sink.sink_name, sink.loc.file.value,
                             sink.loc.line);

    // Constraint-1: the uploaded content must come from $_FILES.
    verdict.taint_ok =
        sink.src != kNoLabel && interp.graph.reaches_files_taint(sink.src);
    verdict.dst_sexpr = to_sexpr(interp.graph, sink.dst);
    verdict.reach_sexpr = sink.reachability == kNoLabel
                              ? "true"
                              : to_sexpr(interp.graph, sink.reachability);
    if (!verdict.taint_ok || sink.dst == kNoLabel) {
      verdict.constraints = smt::SatResult::kUnsat;
      result.verdicts.push_back(std::move(verdict));
      continue;
    }

    const auto memo_key = std::make_pair(sink.dst, sink.reachability);
    if (const auto it = memo.find(memo_key); it != memo.end()) {
      if (checker.profiler() != nullptr) {
        checker.profiler()->record_solver(sink.sink_name, sink.loc.file.value,
                                          sink.loc.line, 0.0,
                                          /*cache_hit=*/true);
      }
      verdict.constraints = it->second.result;
      verdict.witness = it->second.witness;
      attach_evidence(verdict, it->second.bindings);
      if (verdict.exploitable()) result.vulnerable = true;
      result.verdicts.push_back(std::move(verdict));
      if (result.vulnerable && options.stop_at_first_finding) break;
      continue;
    }

    if (!axiom_error.empty()) {
      // Same degradation the per-sink exception rule applies: the sink
      // stays unknown, with the failure recorded in place of a witness.
      verdict.constraints = smt::SatResult::kUnknown;
      verdict.witness = "translation error: " + axiom_error;
      result.verdicts.push_back(std::move(verdict));
      continue;
    }

    // Cross-root cache: the axiom fingerprint plus both s-expressions
    // pin down the full constraint set, so a hit replays the earlier
    // root's outcome — including the witness a fresh solve would yield.
    std::string cache_key;
    if (query_cache != nullptr) {
      cache_key.reserve(axiom_fingerprint.size() + verdict.dst_sexpr.size() +
                        verdict.reach_sexpr.size() + 2);
      cache_key += axiom_fingerprint;
      cache_key += '\x1e';
      cache_key += verdict.dst_sexpr;
      cache_key += '\x1f';
      cache_key += verdict.reach_sexpr;
      if (const std::optional<SolverQueryCache::Outcome> hit =
              query_cache->lookup(cache_key)) {
        if (checker.profiler() != nullptr) {
          checker.profiler()->record_solver(sink.sink_name,
                                            sink.loc.file.value, sink.loc.line,
                                            0.0, /*cache_hit=*/true);
        }
        verdict.constraints = hit->result;
        verdict.witness = hit->witness;
        attach_evidence(verdict, hit->bindings);
        ++result.query_cache_hits;
        memo.emplace(memo_key, MemoOutcome{hit->result, hit->witness,
                                           hit->bindings});
        if (verdict.exploitable()) result.vulnerable = true;
        const bool stop =
            verdict.exploitable() && options.stop_at_first_finding;
        result.verdicts.push_back(std::move(verdict));
        if (stop) break;
        continue;
      }
    }

    // Translation gets its own phase span (per sink) so the fleet's
    // per-phase breakdown separates term construction from Z3 search.
    std::vector<z3::expr> constraints = domain_axioms;
    {
    const telemetry::SpanScope translate_span(checker.trace(), "translate",
                                              sink.sink_name);
    Translator trl(checker, interp.graph);
    try {
    // Constraint-2: (or (str.suffixof ".php" dst) (str.suffixof ".php5" dst)).
    // When dst structurally ends in the pre-structured "." . s_ext, use
    // the equivalent (and far cheaper) equality form over s_ext.
    z3::expr ext_constraint = checker.ctx().bool_val(false);
    std::vector<std::string> excluded_searches;
    if (const Label trailing = trailing_extension_symbol(interp.graph, sink.dst,
                                                         &excluded_searches);
        trailing != kNoLabel) {
      const z3::expr ext_sym = trl.translate(trailing, Type::kString);
      for (const std::string& ext : options.executable_extensions) {
        const std::string tail = "." + ext;
        const bool clobbered = std::any_of(
            excluded_searches.begin(), excluded_searches.end(),
            [&tail](const std::string& s) {
              return tail.find(s) != std::string::npos;
            });
        if (clobbered) continue;  // ".X" cannot survive the str_replace
        ext_constraint =
            ext_constraint || (ext_sym == checker.ctx().string_val(ext));
      }
    } else {
      const z3::expr dst = trl.translate(sink.dst, Type::kString);
      for (const std::string& ext : options.executable_extensions) {
        ext_constraint = ext_constraint ||
                         z3::suffixof(checker.ctx().string_val("." + ext), dst);
      }
    }
    constraints.push_back(ext_constraint);
    // Constraint-3: the path condition.
    if (sink.reachability != kNoLabel) {
      constraints.push_back(trl.truthy(sink.reachability));
    }
    } catch (const z3::exception& e) {
      // A translation gap severe enough to break term construction is
      // treated like the paper's exception rule at whole-sink scope.
      verdict.constraints = smt::SatResult::kUnknown;
      verdict.witness = std::string("translation error: ") + e.msg();
      result.verdicts.push_back(std::move(verdict));
      continue;
    }
    }

    const smt::SolverOutcome outcome = checker.check(constraints);
    ++result.solver_calls;
    verdict.constraints = outcome.result;
    result.deadline_exceeded |= outcome.deadline_exceeded;
    static const std::map<std::string, std::string> kNoBindings;
    const std::map<std::string, std::string>& bindings =
        outcome.model.has_value() ? outcome.model->assignments : kNoBindings;
    if (outcome.model.has_value()) verdict.witness = outcome.model->to_string();
    memo.emplace(memo_key,
                 MemoOutcome{outcome.result, verdict.witness, bindings});
    attach_evidence(verdict, bindings);
    if (query_cache != nullptr && (outcome.result == smt::SatResult::kSat ||
                                   outcome.result == smt::SatResult::kUnsat)) {
      query_cache->store(cache_key, {outcome.result, verdict.witness, bindings});
    }
    if (verdict.exploitable()) result.vulnerable = true;
    const bool stop = verdict.exploitable() && options.stop_at_first_finding;
    result.verdicts.push_back(std::move(verdict));
    if (stop) break;
  }
  return result;
}

std::string encode_outcome(const SolverQueryCache::Outcome& o) {
  std::string out = "{\"result\": \"";
  out += sat_result_name(o.result);
  out += "\", \"witness\": " + strutil::quote(o.witness);
  out += ", \"bindings\": {";
  bool first = true;
  for (const auto& [symbol, raw] : o.bindings) {
    if (!first) out += ", ";
    first = false;
    out += strutil::quote(symbol) + ": " + strutil::quote(raw);
  }
  out += "}}";
  return out;
}

std::optional<SolverQueryCache::Outcome> decode_outcome(std::string_view json) {
  const std::optional<jsonlite::Value> doc = jsonlite::parse(json);
  if (!doc.has_value() || !doc->is_object()) return std::nullopt;
  const jsonlite::Value* result = doc->find("result");
  const jsonlite::Value* witness = doc->find("witness");
  const jsonlite::Value* bindings = doc->find("bindings");
  if (result == nullptr || !result->is_string() || witness == nullptr ||
      !witness->is_string() || bindings == nullptr || !bindings->is_object()) {
    return std::nullopt;
  }
  SolverQueryCache::Outcome o;
  if (result->str() == "sat") {
    o.result = smt::SatResult::kSat;
  } else if (result->str() == "unsat") {
    o.result = smt::SatResult::kUnsat;
  } else {
    // Only definitive outcomes are ever stored; an "unknown" on disk
    // means the record is not one of ours.
    return std::nullopt;
  }
  o.witness = witness->str();
  for (const auto& [symbol, raw] : bindings->members()) {
    if (!raw.is_string()) return std::nullopt;
    o.bindings[symbol] = raw.str();
  }
  return o;
}

}  // namespace uchecker::core
