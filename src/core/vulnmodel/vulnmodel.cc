#include "core/vulnmodel/vulnmodel.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/heapgraph/sexpr.h"
#include "core/interp/builtins.h"
#include "core/translate/translate.h"
#include "support/telemetry.h"

namespace uchecker::core {
namespace {

bool is_ext_symbol(const Object& obj) {
  return obj.kind == Object::Kind::kSymbol && obj.files_tainted &&
         obj.name.size() > 4 &&
         obj.name.compare(obj.name.size() - 4, 4, "_ext") == 0;
}

// Does the value rooted at `label` textually end with a literal '.'?
// (Descends the rightmost spine of concatenations.)
bool ends_with_literal_dot(const HeapGraph& graph, Label label) {
  for (int guard = 0; guard < 256; ++guard) {
    const Object* obj = graph.find(label);
    if (obj == nullptr) return false;
    if (obj->kind == Object::Kind::kOp && obj->op == OpKind::kConcat) {
      label = obj->children[1];
      continue;
    }
    if (obj->kind == Object::Kind::kConcrete && obj->type == Type::kString) {
      const std::string& s = std::get<std::string>(obj->value);
      return !s.empty() && s.back() == '.';
    }
    return false;
  }
  return false;
}

// If `dst` structurally ends with  ... . "." . s_ext  (the pre-structured
// $_FILES name shape, possibly behind identity wrappers and benign
// str_replace calls), returns the extension symbol's label. In that
// case, given the domain axiom that s_ext contains no '.' (and attacker
// control of s_ext), the suffix constraint  (str.suffixof ".X" dst)  is
// *equivalent* to  s_ext == "X": the dot of ".X" can only align with the
// structural dot separator. This rewrite matters in practice: Z3 4.8's
// sequence solver cannot refute suffixof-vs-blacklist combinations
// (observed >60s), while the equality form is decided instantly.
//
// str_replace(search, repl, subject) with concrete search/repl passes
// through to `subject`: the attacker picks a witness input avoiding
// `search`, so satisfiability is preserved — with two guards. If `repl`
// contains a '.', the replacement itself could synthesize an executable
// suffix and the structural argument breaks (caller falls back to the
// general suffixof encoding). And any extension X whose mandatory tail
// ".X" contains `search` cannot be chosen avoidance-free; such X are
// appended to `excluded_exts` and dropped from the equality disjunction.
Label trailing_extension_symbol(const HeapGraph& graph, Label dst,
                                std::vector<std::string>* excluded_searches) {
  Label label = resolve_through_identity(graph, dst);
  for (int guard = 0; guard < 256; ++guard) {
    const Object* obj = graph.find(label);
    if (obj == nullptr) return kNoLabel;
    if (obj->kind == Object::Kind::kFunc) {
      if (obj->name == "str_replace" && obj->children.size() >= 3) {
        const Object& search = graph.at(obj->children[0]);
        const Object& repl = graph.at(obj->children[1]);
        if (search.kind == Object::Kind::kConcrete &&
            search.type == Type::kString &&
            repl.kind == Object::Kind::kConcrete &&
            repl.type == Type::kString &&
            std::get<std::string>(repl.value).find('.') ==
                std::string::npos &&
            !std::get<std::string>(search.value).empty()) {
          excluded_searches->push_back(std::get<std::string>(search.value));
          label = resolve_through_identity(graph, obj->children[2]);
          continue;
        }
        return kNoLabel;
      }
      const Label through = resolve_through_identity(graph, label);
      if (through == label) return kNoLabel;
      label = through;
      continue;
    }
    if (obj->kind != Object::Kind::kOp || obj->op != OpKind::kConcat) {
      return kNoLabel;
    }
    const Label right = resolve_through_identity(graph, obj->children[1]);
    const Object* right_obj = graph.find(right);
    if (right_obj == nullptr) return kNoLabel;
    if (is_ext_symbol(*right_obj) &&
        ends_with_literal_dot(graph, obj->children[0])) {
      return right;
    }
    if ((right_obj->kind == Object::Kind::kOp &&
         right_obj->op == OpKind::kConcat) ||
        right_obj->kind == Object::Kind::kFunc) {
      // Descend into the trailing component (a nested concat, or a
      // str_replace/identity wrapper handled at the top of the loop).
      label = right;
      continue;
    }
    return kNoLabel;
  }
  return kNoLabel;
}

// Hash for the per-call (dst, reachability) memo; labels are dense small
// ints, so splicing them into one word distributes fine.
struct LabelPairHash {
  std::size_t operator()(const std::pair<Label, Label>& p) const noexcept {
    return (static_cast<std::size_t>(p.first) << 32) ^
           static_cast<std::size_t>(p.second);
  }
};

}  // namespace

std::optional<SolverQueryCache::Outcome> SolverQueryCache::lookup(
    const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  ++hits_;
  return it->second;
}

void SolverQueryCache::store(const std::string& key, Outcome outcome) {
  const std::lock_guard<std::mutex> lock(mutex_);
  map_.emplace(key, std::move(outcome));
}

std::size_t SolverQueryCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t SolverQueryCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

VulnModelResult check_sinks(const InterpResult& interp, smt::Checker& checker,
                            const VulnModelOptions& options,
                            SolverQueryCache* query_cache) {
  VulnModelResult result;

  // Domain axioms for the pre-structured $_FILES model: a PHP file
  // extension (everything after the *last* dot) contains neither a dot
  // nor a path separator. Without these, blacklist-style validation
  // ("$ext !== 'php'") would be bypassable with s_ext = "x.php", which
  // no real pathinfo() result can produce. The `_ext` symbols are fixed
  // for the whole InterpResult, so collect them (and build their axiom
  // terms) once instead of rescanning every graph object per sink.
  std::vector<z3::expr> domain_axioms;
  std::string axiom_fingerprint;
  std::string axiom_error;  // hoisted translation failure, reported per sink
  try {
    Translator axiom_trl(checker, interp.graph);
    for (const Object& obj : interp.graph.objects()) {
      if (!is_ext_symbol(obj)) continue;
      const z3::expr ext = axiom_trl.translate(obj.label, Type::kString);
      domain_axioms.push_back(!ext.contains(checker.ctx().string_val(".")));
      domain_axioms.push_back(!ext.contains(checker.ctx().string_val("/")));
      axiom_fingerprint += obj.name;
      axiom_fingerprint += ';';
    }
  } catch (const z3::exception& e) {
    axiom_error = e.msg();
  }

  // Paths that share the same (dst, reachability) objects would repeat
  // the identical solver query; memoize outcomes.
  std::unordered_map<std::pair<Label, Label>, smt::SatResult, LabelPairHash>
      memo;
  for (const SinkHit& sink : interp.sinks) {
    if (checker.deadline().expired()) {
      // Degrade instead of hanging: unchecked sinks get no verdicts and
      // the caller reports the scan as deadline-bounded.
      result.deadline_exceeded = true;
      break;
    }
    SinkVerdict verdict;
    verdict.sink = sink;

    // Constraint-1: the uploaded content must come from $_FILES.
    verdict.taint_ok =
        sink.src != kNoLabel && interp.graph.reaches_files_taint(sink.src);
    verdict.dst_sexpr = to_sexpr(interp.graph, sink.dst);
    verdict.reach_sexpr = sink.reachability == kNoLabel
                              ? "true"
                              : to_sexpr(interp.graph, sink.reachability);
    if (!verdict.taint_ok || sink.dst == kNoLabel) {
      verdict.constraints = smt::SatResult::kUnsat;
      result.verdicts.push_back(std::move(verdict));
      continue;
    }

    const auto memo_key = std::make_pair(sink.dst, sink.reachability);
    if (const auto it = memo.find(memo_key); it != memo.end()) {
      verdict.constraints = it->second;
      if (verdict.exploitable()) result.vulnerable = true;
      result.verdicts.push_back(std::move(verdict));
      if (result.vulnerable && options.stop_at_first_finding) break;
      continue;
    }

    if (!axiom_error.empty()) {
      // Same degradation the per-sink exception rule applies: the sink
      // stays unknown, with the failure recorded in place of a witness.
      verdict.constraints = smt::SatResult::kUnknown;
      verdict.witness = "translation error: " + axiom_error;
      result.verdicts.push_back(std::move(verdict));
      continue;
    }

    // Cross-root cache: the axiom fingerprint plus both s-expressions
    // pin down the full constraint set, so a hit replays the earlier
    // root's outcome — including the witness a fresh solve would yield.
    std::string cache_key;
    if (query_cache != nullptr) {
      cache_key.reserve(axiom_fingerprint.size() + verdict.dst_sexpr.size() +
                        verdict.reach_sexpr.size() + 2);
      cache_key += axiom_fingerprint;
      cache_key += '\x1e';
      cache_key += verdict.dst_sexpr;
      cache_key += '\x1f';
      cache_key += verdict.reach_sexpr;
      if (const std::optional<SolverQueryCache::Outcome> hit =
              query_cache->lookup(cache_key)) {
        verdict.constraints = hit->result;
        verdict.witness = hit->witness;
        ++result.query_cache_hits;
        memo.emplace(memo_key, hit->result);
        if (verdict.exploitable()) result.vulnerable = true;
        const bool stop =
            verdict.exploitable() && options.stop_at_first_finding;
        result.verdicts.push_back(std::move(verdict));
        if (stop) break;
        continue;
      }
    }

    // Translation gets its own phase span (per sink) so the fleet's
    // per-phase breakdown separates term construction from Z3 search.
    std::vector<z3::expr> constraints = domain_axioms;
    {
    const telemetry::SpanScope translate_span(checker.trace(), "translate",
                                              sink.sink_name);
    Translator trl(checker, interp.graph);
    try {
    // Constraint-2: (or (str.suffixof ".php" dst) (str.suffixof ".php5" dst)).
    // When dst structurally ends in the pre-structured "." . s_ext, use
    // the equivalent (and far cheaper) equality form over s_ext.
    z3::expr ext_constraint = checker.ctx().bool_val(false);
    std::vector<std::string> excluded_searches;
    if (const Label trailing = trailing_extension_symbol(interp.graph, sink.dst,
                                                         &excluded_searches);
        trailing != kNoLabel) {
      const z3::expr ext_sym = trl.translate(trailing, Type::kString);
      for (const std::string& ext : options.executable_extensions) {
        const std::string tail = "." + ext;
        const bool clobbered = std::any_of(
            excluded_searches.begin(), excluded_searches.end(),
            [&tail](const std::string& s) {
              return tail.find(s) != std::string::npos;
            });
        if (clobbered) continue;  // ".X" cannot survive the str_replace
        ext_constraint =
            ext_constraint || (ext_sym == checker.ctx().string_val(ext));
      }
    } else {
      const z3::expr dst = trl.translate(sink.dst, Type::kString);
      for (const std::string& ext : options.executable_extensions) {
        ext_constraint = ext_constraint ||
                         z3::suffixof(checker.ctx().string_val("." + ext), dst);
      }
    }
    constraints.push_back(ext_constraint);
    // Constraint-3: the path condition.
    if (sink.reachability != kNoLabel) {
      constraints.push_back(trl.truthy(sink.reachability));
    }
    } catch (const z3::exception& e) {
      // A translation gap severe enough to break term construction is
      // treated like the paper's exception rule at whole-sink scope.
      verdict.constraints = smt::SatResult::kUnknown;
      verdict.witness = std::string("translation error: ") + e.msg();
      result.verdicts.push_back(std::move(verdict));
      continue;
    }
    }

    const smt::SolverOutcome outcome = checker.check(constraints);
    ++result.solver_calls;
    verdict.constraints = outcome.result;
    result.deadline_exceeded |= outcome.deadline_exceeded;
    memo.emplace(memo_key, outcome.result);
    if (outcome.model.has_value()) verdict.witness = outcome.model->to_string();
    if (query_cache != nullptr && (outcome.result == smt::SatResult::kSat ||
                                   outcome.result == smt::SatResult::kUnsat)) {
      query_cache->store(cache_key, {outcome.result, verdict.witness});
    }
    if (verdict.exploitable()) result.vulnerable = true;
    const bool stop = verdict.exploitable() && options.stop_at_first_finding;
    result.verdicts.push_back(std::move(verdict));
    if (stop) break;
  }
  return result;
}

}  // namespace uchecker::core
