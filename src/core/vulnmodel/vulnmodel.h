// Vulnerability modeling (paper §III-C).
//
// A sink move_uploaded_file(e_src, e_dst) / file_put_contents(e_dst,
// e_src) is exploitable on a path when three constraints hold together:
//   C1  e_src is tainted by $_FILES            (heap-graph reachability)
//   C2  e_dst can end with an executable extension (".php"/".php5")
//   C3  the path's reachability constraint is satisfiable
// C1 is decided structurally; C2 ∧ C3 are translated (§III-D) and decided
// by Z3. One SAT path suffices for a vulnerable verdict.
#pragma once

#include <string>
#include <vector>

#include "core/heapgraph/heapgraph.h"
#include "core/interp/interp.h"
#include "smt/solver.h"

namespace uchecker::core {

struct VulnModelOptions {
  // Extensions considered server-executable. Paper default; §VI notes
  // variants (".asa", ".swf", ...) are covered by extending this list.
  std::vector<std::string> executable_extensions{"php", "php5"};
  unsigned solver_timeout_ms = 5000;
  // One SAT path proves the vulnerability; stop checking further paths.
  // Disable to enumerate every exploitable sink (audit reports).
  bool stop_at_first_finding = true;
};

// One analyzed sink occurrence (per path).
struct SinkVerdict {
  SinkHit sink;
  bool taint_ok = false;                                   // C1
  smt::SatResult constraints = smt::SatResult::kUnknown;   // C2 ∧ C3
  std::string dst_sexpr;          // se_dst, PHP-semantics s-expression
  std::string reach_sexpr;        // se_reachability
  std::string witness;            // satisfying assignment when SAT

  [[nodiscard]] bool exploitable() const {
    return taint_ok && constraints == smt::SatResult::kSat;
  }
};

struct VulnModelResult {
  std::vector<SinkVerdict> verdicts;
  std::size_t solver_calls = 0;
  bool vulnerable = false;  // any exploitable verdict
  // The checker's scan deadline expired mid-check; remaining sinks were
  // skipped and the surviving verdicts are partial.
  bool deadline_exceeded = false;
};

// Checks every sink hit recorded by the interpreter. `checker` supplies
// the Z3 context; a fresh Translator is built per sink so per-path
// symbol caches do not leak across unrelated checks (objects shared
// across paths still translate identically within one sink's check).
[[nodiscard]] VulnModelResult check_sinks(const InterpResult& interp,
                                          smt::Checker& checker,
                                          const VulnModelOptions& options = {});

}  // namespace uchecker::core
