// Vulnerability modeling (paper §III-C).
//
// A sink move_uploaded_file(e_src, e_dst) / file_put_contents(e_dst,
// e_src) is exploitable on a path when three constraints hold together:
//   C1  e_src is tainted by $_FILES            (heap-graph reachability)
//   C2  e_dst can end with an executable extension (".php"/".php5")
//   C3  the path's reachability constraint is satisfiable
// C1 is decided structurally; C2 ∧ C3 are translated (§III-D) and decided
// by Z3. One SAT path suffices for a vulnerable verdict.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/heapgraph/evidence.h"
#include "core/heapgraph/heapgraph.h"
#include "core/interp/interp.h"
#include "smt/solver.h"

namespace uchecker::core {

// Solver query cache, shared by every scan of one detector. Different
// analysis roots — and, fleet-wide, different applications built from
// the same plugin boilerplate — frequently reach byte-identical sink
// constraints; keying by the canonical s-expressions of (dst,
// reachability) — prefixed by the graph's `_ext` domain-axiom
// fingerprint, so a hit implies the *whole* constraint set is textually
// identical — lets later queries reuse the earlier verdict and witness
// without calling Z3. Only definitive kSat/kUnsat outcomes are stored;
// kUnknown (timeouts, translation gaps) is always re-attempted.
// Thread-safe: parallel fleet drivers share one detector across workers.
class SolverQueryCache {
 public:
  struct Outcome {
    smt::SatResult result = smt::SatResult::kUnknown;
    std::string witness;
    // The structured Z3 model the witness text was rendered from.
    // Cached so a hit can replay the *whole* evidence bundle — witness
    // decoding re-runs against the current root's graph — rather than
    // only the witness text (symbol names are part of the cache key via
    // the s-expressions, so the bindings transfer exactly).
    std::map<std::string, std::string> bindings;
  };

  // Returns the cached outcome on a hit (counted), nullopt on a miss.
  [[nodiscard]] std::optional<Outcome> lookup(const std::string& key) const;
  void store(const std::string& key, Outcome outcome);
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t size() const;

  // Persistence hooks (scand durable caches). preload() inserts an
  // outcome recovered from disk without marking it dirty; drain_dirty()
  // returns every entry store()d since the last drain, so a service can
  // flush incrementally after each scan instead of rewriting the world.
  void preload(const std::string& key, Outcome outcome);
  [[nodiscard]] std::vector<std::pair<std::string, Outcome>> drain_dirty();
  [[nodiscard]] std::vector<std::pair<std::string, Outcome>> snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Outcome> map_;
  std::vector<std::string> dirty_;  // keys inserted since the last drain
  mutable std::size_t hits_ = 0;
};

// Serialization of one cached outcome for the durable solver-cache
// store: a stable JSON object (parsed back with support/jsonlite).
// decode returns nullopt on any structural mismatch — the caller counts
// the record corrupt and re-solves.
[[nodiscard]] std::string encode_outcome(const SolverQueryCache::Outcome& o);
[[nodiscard]] std::optional<SolverQueryCache::Outcome> decode_outcome(
    std::string_view json);

struct VulnModelOptions {
  // Extensions considered server-executable. The paper models php/php5;
  // §VI notes variants are covered by extending this list, and phtml is
  // executable under the default Apache/mod_php handler map, so it is
  // part of the default C2 suffix set. Further variants (".asa",
  // ".swf", ...) extend the list the same way.
  std::vector<std::string> executable_extensions{"php", "php5", "phtml"};
  unsigned solver_timeout_ms = 5000;
  // One SAT path proves the vulnerability; stop checking further paths.
  // Disable to enumerate every exploitable sink (audit reports).
  bool stop_at_first_finding = true;
  // Attach provenance to each verdict: the source→sink taint path, the
  // path-constraint guards, and the decoded attack reconstruction.
  // Off (the default) keeps check_sinks on its zero-overhead path —
  // verdicts are byte-identical either way, evidence is purely additive.
  bool collect_evidence = false;
};

// One Z3 model assignment, decoded for human consumption.
struct WitnessBinding {
  std::string symbol;   // e.g. s_files_f_ext
  std::string raw;      // Z3 rendering, e.g. "\"php\""
  std::string decoded;  // e.g. php
};

// The concrete attack a SAT model describes, reconstructed against the
// sink's destination term: what the attacker names the uploaded file,
// and where the server ends up writing it.
struct AttackWitness {
  bool has_model = false;  // false for unsat/unknown or modelless SAT
  std::vector<WitnessBinding> bindings;
  // Attacker-controlled upload filename, e.g. "payload.php5". Built
  // from the $_FILES stem/extension bindings; unbound attacker-chosen
  // parts default to "payload" (any value satisfies the model).
  std::string upload_filename;
  // The destination term with every binding substituted, e.g.
  // "/uploads/payload.php". Unresolved subterms render as <name>.
  std::string destination;
  bool destination_complete = false;  // no unresolved subterm remains
};

// Unescapes one Z3 value rendering: strips surrounding quotes and
// decodes SMT-LIB string escapes ("" and \xNN / \uNNNN). Non-string
// renderings (numerals, booleans) pass through unchanged.
[[nodiscard]] std::string decode_z3_value(std::string_view raw);

// Decodes `assignments` (a Z3 model, as rendered by smt::Model) into an
// AttackWitness for the sink destination `dst`. Pure; safe to replay on
// SolverQueryCache hits because symbol names are pinned by the cache key.
[[nodiscard]] AttackWitness decode_witness(
    const HeapGraph& graph, Label dst,
    const std::map<std::string, std::string>& assignments,
    const VulnModelOptions& options);

// One analyzed sink occurrence (per path).
struct SinkVerdict {
  SinkHit sink;
  bool taint_ok = false;                                   // C1
  smt::SatResult constraints = smt::SatResult::kUnknown;   // C2 ∧ C3
  std::string dst_sexpr;          // se_dst, PHP-semantics s-expression
  std::string reach_sexpr;        // se_reachability
  std::string witness;            // satisfying assignment when SAT

  // Provenance, populated only under VulnModelOptions::collect_evidence
  // (empty otherwise). taint_path is ordered source→sink.
  std::vector<TaintHop> taint_path;
  std::vector<PathGuard> guards;
  AttackWitness attack;

  [[nodiscard]] bool exploitable() const {
    return taint_ok && constraints == smt::SatResult::kSat;
  }
};

struct VulnModelResult {
  std::vector<SinkVerdict> verdicts;
  std::size_t solver_calls = 0;
  std::size_t query_cache_hits = 0;  // sinks answered by SolverQueryCache
  bool vulnerable = false;  // any exploitable verdict
  // The checker's scan deadline expired mid-check; remaining sinks were
  // skipped and the surviving verdicts are partial.
  bool deadline_exceeded = false;
};

// Checks every sink hit recorded by the interpreter. `checker` supplies
// the Z3 context; a fresh Translator is built per sink so per-path
// symbol caches do not leak across unrelated checks (objects shared
// across paths still translate identically within one sink's check).
// `query_cache`, when non-null, memoizes definitive solver outcomes
// across check_sinks calls (the detector owns one cache for all of its
// scans; see SolverQueryCache).
[[nodiscard]] VulnModelResult check_sinks(const InterpResult& interp,
                                          smt::Checker& checker,
                                          const VulnModelOptions& options = {},
                                          SolverQueryCache* query_cache = nullptr);

}  // namespace uchecker::core
