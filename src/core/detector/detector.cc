#include "core/detector/detector.h"

#include <chrono>

#include "phpparse/parser.h"
#include "smt/solver.h"

namespace uchecker::core {

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kVulnerable: return "Vulnerable";
    case Verdict::kNotVulnerable: return "Not vulnerable";
    case Verdict::kAnalysisIncomplete: return "Analysis incomplete";
  }
  return "invalid";
}

Detector::Detector(ScanOptions options) : options_(std::move(options)) {}

ScanReport Detector::scan(const Application& app) const {
  const auto start = std::chrono::steady_clock::now();

  ScanReport report;
  report.app_name = app.name;

  // Phase 1: parsing.
  SourceManager sources;
  DiagnosticSink diags;
  std::vector<phpast::PhpFile> parsed;
  parsed.reserve(app.files.size());
  for (const AppFile& f : app.files) {
    const FileId id = sources.add_file(f.name, f.content);
    parsed.push_back(phpparse::parse_php(*sources.file(id), diags));
  }
  report.parse_errors = diags.error_count();
  report.total_loc = sources.total_loc();

  std::vector<const phpast::PhpFile*> file_ptrs;
  for (const phpast::PhpFile& f : parsed) file_ptrs.push_back(&f);
  const Program program = build_program(file_ptrs);

  // Phase 2: vulnerability-oriented locality analysis.
  const CallGraph call_graph = build_call_graph(program, options_.sinks);
  LocalityResult locality;
  if (options_.run_locality) {
    locality = analyze_locality(program, call_graph, sources,
                                options_.locality);
  } else {
    // Ablation: whole-program symbolic execution — every file body and
    // every user-defined function is a root.
    locality.total_loc = sources.total_loc();
    for (const phpast::PhpFile* f : program.files) {
      AnalysisRoot root;
      root.file = f;
      const SourceFile* sf = sources.file_by_name(f->name);
      root.body_loc = sf != nullptr ? sf->loc_count() : 0;
      locality.analyzed_loc += root.body_loc;
      locality.roots.push_back(root);
    }
    for (const auto& [name, info] : program.functions) {
      AnalysisRoot root;
      root.function = info.decl;
      locality.roots.push_back(root);
    }
    locality.analyzed_loc = locality.total_loc;
  }
  report.roots = locality.roots.size();
  report.analyzed_loc = locality.analyzed_loc;
  report.analyzed_percent = locality.analyzed_percent();

  if (locality.roots.empty()) {
    // No scope both reads $_FILES and reaches a sink: not vulnerable by
    // construction (paper: "Other scripts, if they do not contain such
    // lowest common ancestors, will not be analyzed").
    report.verdict = Verdict::kNotVulnerable;
    report.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return report;
  }

  // Phases 3-6 per analysis root.
  smt::Checker checker(options_.vuln.solver_timeout_ms);
  std::size_t env_bytes_total = 0;
  std::size_t graph_bytes_total = 0;
  for (const AnalysisRoot& root : locality.roots) {
    Interpreter interp(program, diags, options_.budget, options_.sinks);
    InterpResult exec = interp.run(root);

    report.paths += exec.stats.paths;
    report.objects += exec.stats.objects;
    report.budget_exhausted |= exec.stats.budget_exhausted;
    report.sink_hits += exec.sinks.size();
    env_bytes_total += exec.stats.env_bytes;
    graph_bytes_total += exec.graph.memory_bytes();

    if (exec.stats.budget_exhausted) {
      // The paper's behaviour: the run that exhausts memory produces no
      // verdict for this root (Cimy FN). Continue with other roots.
      continue;
    }

    const VulnModelResult vuln = check_sinks(exec, checker, options_.vuln);
    report.solver_calls += vuln.solver_calls;
    if (vuln.vulnerable) {
      report.verdict = Verdict::kVulnerable;
      for (const SinkVerdict& sv : vuln.verdicts) {
        if (!sv.exploitable()) continue;
        Finding finding;
        finding.sink_name = sv.sink.sink_name;
        finding.location = sources.describe(sv.sink.loc);
        if (const SourceFile* sf = sources.file(sv.sink.loc.file)) {
          finding.source_line = std::string(sf->line(sv.sink.loc.line));
        }
        finding.dst_sexpr = sv.dst_sexpr;
        finding.reach_sexpr = sv.reach_sexpr;
        finding.witness = sv.witness;
        report.findings.push_back(std::move(finding));
      }
    }
  }

  if (report.verdict != Verdict::kVulnerable && report.budget_exhausted) {
    report.verdict = Verdict::kAnalysisIncomplete;
  }

  report.objects_per_path =
      report.paths == 0
          ? 0.0
          : static_cast<double>(report.objects) / static_cast<double>(report.paths);
  report.memory_mb = static_cast<double>(graph_bytes_total + env_bytes_total) /
                     (1024.0 * 1024.0);
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace uchecker::core
