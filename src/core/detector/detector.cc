#include "core/detector/detector.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <new>
#include <optional>

#include "core/staticpass/summaries.h"
#include "phpparse/parse_pool.h"
#include "phpparse/parser.h"
#include "support/strutil.h"
#include "smt/solver.h"
#include "support/fault_injector.h"
#include "support/flight_recorder.h"
#include "support/telemetry.h"

namespace uchecker::core {
namespace {

// Mints a process-unique 16-hex-digit trace ID for scans that arrive
// without one (direct Detector::scan calls with telemetry attached, as
// opposed to scand requests, which carry the client's ID). FNV-1a 64
// over the app name, a monotone counter and the clock, so concurrent
// scans of the same app still get distinct IDs.
std::string mint_trace_id(std::string_view app_name) {
  static std::atomic<std::uint64_t> sequence{0};
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= v & 0xFF;
      h *= 1099511628211ULL;
      v >>= 8;
    }
  };
  for (const char c : app_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  mix(sequence.fetch_add(1, std::memory_order_relaxed));
  mix(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

// Display name of an analysis root for error attribution.
std::string root_name(const AnalysisRoot& root) {
  if (root.function != nullptr) return strutil::cat(root.function->name, "()");
  if (root.file != nullptr) return root.file->name;
  return "<root>";
}

// "file:line" anchor for an evidence hop/guard (no column: hops anchor
// whole lines). Returns empty strings when the location is unknown.
void render_anchor(const SourceManager& sources, SourceLoc loc,
                   std::string& file, std::uint32_t& line,
                   std::string& location) {
  const SourceFile* sf = sources.file(loc.file);
  if (sf == nullptr || loc.line == 0) return;
  file = sf->name();
  line = loc.line;
  location = file + ":" + std::to_string(loc.line);
}

// Maps the structural evidence on a SinkVerdict into the rendered,
// source-anchored bundle a Finding carries.
FindingEvidence render_evidence(const SourceManager& sources,
                                const SinkVerdict& sv) {
  FindingEvidence evidence;
  evidence.taint_path.reserve(sv.taint_path.size());
  for (const TaintHop& hop : sv.taint_path) {
    EvidenceHop rendered;
    rendered.kind = std::string(object_kind_name(hop.kind));
    rendered.description = hop.description;
    render_anchor(sources, hop.loc, rendered.file, rendered.line,
                  rendered.location);
    evidence.taint_path.push_back(std::move(rendered));
  }
  evidence.guards.reserve(sv.guards.size());
  for (const PathGuard& guard : sv.guards) {
    EvidenceGuard rendered;
    rendered.sexpr = guard.sexpr;
    render_anchor(sources, guard.loc, rendered.file, rendered.line,
                  rendered.location);
    evidence.guards.push_back(std::move(rendered));
  }
  evidence.bindings = sv.attack.bindings;
  evidence.upload_filename = sv.attack.upload_filename;
  evidence.destination = sv.attack.destination;
  evidence.destination_complete = sv.attack.destination_complete;
  return evidence;
}

// Converts the exception in flight into a ScanError. InjectedFault
// carries its exact fault point, which overrides the containment-site
// phase — that is how tests prove phase provenance end to end.
ScanError describe_current_exception(std::string phase, std::string root) {
  ScanError error;
  error.phase = std::move(phase);
  error.root = std::move(root);
  try {
    throw;
  } catch (const InjectedFault& e) {
    error.phase = e.point();
    error.message = e.what();
    error.transient = e.transient();
  } catch (const TransientError& e) {
    error.message = e.what();
    error.transient = true;
  } catch (const std::bad_alloc&) {
    error.message = "out of memory";
    error.transient = true;
  } catch (const std::exception& e) {
    error.message = e.what();
  } catch (...) {
    error.message = "unknown error";
  }
  return error;
}

}  // namespace

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kVulnerable: return "Vulnerable";
    case Verdict::kNotVulnerable: return "Not vulnerable";
    case Verdict::kAnalysisIncomplete: return "Analysis incomplete";
    case Verdict::kAnalysisError: return "Analysis error";
    case Verdict::kAnalysisDisagreement: return "Analysis disagreement";
  }
  return "invalid";
}

std::string finding_fingerprint(std::string_view app, std::string_view sink,
                                std::string_view dst_sexpr) {
  // FNV-1a 64 over the identity triple, fields separated by a byte that
  // cannot occur in any of them. The dst s-expression is canonical
  // (hash-consed graph → one rendering per term), so the hash is stable
  // across line-number churn from unrelated edits.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0x1f;
    h *= 1099511628211ULL;
  };
  mix(app);
  mix(sink);
  mix(dst_sexpr);
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

Detector::Detector(ScanOptions options) : options_(std::move(options)) {}

ScanReport Detector::scan(const Application& app) const {
  return scan(app, Deadline::unlimited());
}

ScanReport Detector::scan(const Application& app,
                          const Deadline& deadline) const {
  const auto start = std::chrono::steady_clock::now();

  Deadline effective = deadline;
  if (options_.budget.time_limit.count() > 0) {
    effective =
        Deadline::sooner(deadline, Deadline::after(options_.budget.time_limit));
  }

  // Traced scans are always addressable: use the request's trace ID when
  // one was supplied, mint one otherwise. With no telemetry attached the
  // ID stays empty — nothing would carry it, and minting would break the
  // zero-overhead contract.
  std::string trace_id = options_.trace_id;
  if (trace_id.empty() && options_.telemetry != nullptr) {
    trace_id = mint_trace_id(app.name);
  }
  telemetry::ScanTrace* trace =
      options_.telemetry != nullptr
          ? &options_.telemetry->begin_scan(app.name, trace_id)
          : nullptr;
  if (trace != nullptr && options_.flight != nullptr) {
    trace->set_flight_recorder(options_.flight);
  }

  ScanReport report;
  report.app_name = app.name;
  report.trace_id = trace_id;
  {
    const telemetry::SpanScope scan_span(trace, "scan", app.name);
    try {
      scan_impl(app, effective, report, trace);
    } catch (...) {
      // Last-resort containment: scan() must never throw (workers run it
      // on noexcept thread boundaries). Phase-level handlers in scan_impl
      // attribute errors more precisely; anything reaching here is from
      // the glue between phases.
      report.errors.push_back(describe_current_exception("scan", ""));
    }
  }
  // Verdict precedence: a crosscheck disagreement is a soundness alarm
  // and outranks everything; then a proven finding survives degradation;
  // otherwise contained errors outrank resource exhaustion.
  if (!report.disagreements.empty()) {
    report.verdict = Verdict::kAnalysisDisagreement;
  } else if (report.verdict != Verdict::kVulnerable) {
    if (!report.errors.empty()) {
      report.verdict = Verdict::kAnalysisError;
    } else if (report.budget_exhausted || report.deadline_exceeded) {
      report.verdict = Verdict::kAnalysisIncomplete;
    }
  }

  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Recorded uniformly (profiled or not) so fleet drivers can always
  // compare accounted analysis bytes against the process high-water
  // mark. Only the profile JSON serializes the nondeterministic RSS.
  report.peak_rss_bytes = profile::peak_rss_bytes();
  if (report.profiled) {
    report.profile.peak_rss_bytes = report.peak_rss_bytes;
  }

  if (options_.telemetry != nullptr) {
    telemetry::MetricsRegistry& m = options_.telemetry->metrics();
    m.counter("scan.count").add(1);
    if (report.degraded()) m.counter("scan.degraded").add(1);
    if (report.deadline_exceeded) m.counter("scan.deadline_exceeded").add(1);
    if (report.budget_exhausted) m.counter("scan.budget_exhausted").add(1);
    for (const ScanError& e : report.errors) {
      m.counter("scan.errors." + e.phase).add(1);
    }
    if (report.cons_hits > 0) {
      m.counter("graph.cons_hits").add(report.cons_hits);
    }
    if (report.solver_cache_hits > 0) {
      m.counter("solver.cache_hits").add(report.solver_cache_hits);
    }
    if (report.pruned_roots > 0) {
      m.counter("staticpass.pruned_roots").add(report.pruned_roots);
    }
    if (report.summary_pruned_roots > 0) {
      m.counter("staticpass.summary_pruned_roots")
          .add(report.summary_pruned_roots);
    }
    if (report.summary_cache_hits > 0) {
      m.counter("staticpass.summary_cache_hits")
          .add(report.summary_cache_hits);
    }
    if (report.escaped_calls > 0) {
      m.counter("staticpass.escaped_calls").add(report.escaped_calls);
    }
    if (!report.lints.empty()) {
      m.counter("staticpass.lint_findings").add(report.lints.size());
    }
    m.histogram("scan.seconds_ms").observe(report.seconds * 1000.0);
    m.gauge("scan.peak_bytes").set(static_cast<double>(report.peak_rss_bytes));
    m.gauge("interp.path_budget")
        .set(static_cast<double>(options_.budget.max_paths));
    if (report.profiled) {
      std::size_t fork_sites = 0;
      std::uint64_t peak_paths = 0;
      for (const profile::RootProfile& rp : report.profile.roots) {
        fork_sites += rp.fork_sites.size();
        peak_paths = std::max(peak_paths, rp.peak_paths);
      }
      m.gauge("interp.fork_sites").set(static_cast<double>(fork_sites));
      m.gauge("interp.peak_paths").set(static_cast<double>(peak_paths));
    }
    // Exemplars: the Prometheus exposition links these series to the
    // most recent request that moved them.
    m.set_exemplar("scan.count", trace_id);
    m.set_exemplar("scan.seconds_ms", trace_id);
  }
  return report;
}

void Detector::scan_impl(const Application& app, const Deadline& deadline,
                         ScanReport& report,
                         telemetry::ScanTrace* trace) const {
  // Phase 1: parsing. A file whose parse *throws* (as opposed to
  // reporting diagnostics) is dropped and recorded; the rest of the app
  // is still analyzed.
  SourceManager sources;
  DiagnosticSink diags;
  // Copies the per-phase diagnostic counts onto the report on every exit
  // path out of scan_impl, including exceptions contained by scan().
  struct DiagPhaseCapture {
    const DiagnosticSink& diags;
    ScanReport& report;
    ~DiagPhaseCapture() {
      report.diagnostics_by_phase = diags.error_counts_by_phase();
    }
  } diag_capture{diags, report};

  // Cost attribution: wall time per phase and per root, kept on the
  // report so the service and audit tooling can say where a scan's time
  // went without a trace attached. A handful of steady_clock reads per
  // root — noise next to a single solver call.
  using CostClock = std::chrono::steady_clock;
  const auto ms_since = [](CostClock::time_point t0) {
    return std::chrono::duration<double, std::milli>(CostClock::now() - t0)
        .count();
  };

  diags.set_phase("parse");
  const CostClock::time_point parse_start = CostClock::now();
  // Registration is serial (it fixes FileIds and SourceFile addresses);
  // the parse itself fans out per file — one arena and one diagnostic
  // sink each, merged back in registration order so the diagnostic
  // stream and every downstream verdict are independent of thread count
  // (see phpparse/parse_pool.h).
  std::vector<const SourceFile*> source_files;
  source_files.reserve(app.files.size());
  for (const AppFile& f : app.files) {
    const FileId id = sources.add_file(f.name, f.content);
    source_files.push_back(sources.file(id));
  }
  const std::size_t parse_threads = phpparse::resolve_parse_threads(
      options_.parse_threads, source_files.size());
  std::vector<phpparse::ParsedUnit> units;
  {
    const telemetry::SpanScope parse_span(trace, "parse");
    units = phpparse::parse_files(source_files, parse_threads, &deadline);
    for (std::size_t i = 0; i < units.size(); ++i) {
      phpparse::ParsedUnit& unit = units[i];
      if (!unit.attempted) {
        report.deadline_exceeded = true;
        if (trace != nullptr) {
          trace->record_event("deadline_exceeded", "during parse");
        }
        break;
      }
      const telemetry::SpanScope file_span(trace, "parse.file",
                                           app.files[i].name);
      diags.merge(unit.diags);
      if (unit.error != nullptr) {
        try {
          std::rethrow_exception(unit.error);
        } catch (...) {
          report.errors.push_back(
              describe_current_exception("parse", app.files[i].name));
        }
      }
    }
  }
  report.phase_ms["parse"] = ms_since(parse_start);
  const std::size_t parse_diags = diags.error_count();
  report.parse_errors = parse_diags;
  report.total_loc = sources.total_loc();

  std::vector<const phpast::PhpFile*> file_ptrs;
  for (const phpparse::ParsedUnit& unit : units) {
    if (unit.attempted && unit.error == nullptr) file_ptrs.push_back(&unit.ast);
  }
  const Program program = build_program(file_ptrs);

  // Phase 2: vulnerability-oriented locality analysis. Without roots
  // nothing downstream runs, so a failure here ends the scan (contained,
  // with the partial parse results kept).
  diags.set_phase("locality");
  const CostClock::time_point locality_start = CostClock::now();
  const CallGraph call_graph = build_call_graph(program, options_.sinks);
  LocalityResult locality;
  try {
    const telemetry::SpanScope locality_span(trace, "locality");
    if (options_.run_locality) {
      locality =
          analyze_locality(program, call_graph, sources, options_.locality);
    } else {
      // Ablation: whole-program symbolic execution — every file body and
      // every user-defined function is a root.
      locality.total_loc = sources.total_loc();
      for (const phpast::PhpFile* f : program.files) {
        AnalysisRoot root;
        root.file = f;
        const SourceFile* sf = sources.file_by_name(f->name);
        root.body_loc = sf != nullptr ? sf->loc_count() : 0;
        locality.analyzed_loc += root.body_loc;
        locality.roots.push_back(root);
      }
      for (const auto& [name, info] : program.functions) {
        AnalysisRoot root;
        root.function = info.decl;
        locality.roots.push_back(root);
      }
      locality.analyzed_loc = locality.total_loc;
    }
  } catch (...) {
    report.errors.push_back(describe_current_exception("locality", ""));
    report.phase_ms["locality"] = ms_since(locality_start);
    return;
  }
  report.phase_ms["locality"] = ms_since(locality_start);
  report.roots = locality.roots.size();
  report.analyzed_loc = locality.analyzed_loc;
  // Explicit zero-denominator guard: an app whose files are all empty
  // (or unparseable) has total_loc == 0, and the percentage must come
  // out 0.0, not NaN (which would also poison the JSON report).
  report.analyzed_percent =
      report.total_loc == 0
          ? 0.0
          : 100.0 * static_cast<double>(report.analyzed_loc) /
                static_cast<double>(report.total_loc);

  if (locality.roots.empty()) {
    // No scope both reads $_FILES and reaches a sink: not vulnerable by
    // construction (paper: "Other scripts, if they do not contain such
    // lowest common ancestors, will not be analyzed").
    return;
  }

  // Phase 2b: pre-symbolic static pass. Proves roots safe so symbolic
  // execution can skip them (prefilter), collects structured lints, and
  // in crosscheck mode doubles as a soundness oracle for the pruning
  // decision. A failure here degrades to "no pruning" — the symbolic
  // path still runs everything.
  std::vector<staticpass::RootAnalysis> pre;
  if (options_.prefilter || options_.lint || options_.crosscheck) {
    diags.set_phase("staticpass");
    const CostClock::time_point staticpass_start = CostClock::now();
    try {
      const telemetry::SpanScope staticpass_span(trace, "staticpass");
      staticpass::StaticPassOptions pass_options;
      pass_options.executable_extensions =
          options_.vuln.executable_extensions;
      // The summary store memoizes across every root of this scan;
      // pass_options must outlive it (the store keeps a reference).
      std::optional<staticpass::SummaryStore> summaries;
      if (options_.summaries) {
        summaries.emplace(program, call_graph, sources, options_.sinks,
                          pass_options);
        pass_options.summaries = &*summaries;
      }
      pre.reserve(locality.roots.size());
      for (const AnalysisRoot& root : locality.roots) {
        pre.push_back(staticpass::analyze_root(
            program, call_graph, root, sources, options_.sinks,
            pass_options));
      }
      if (summaries.has_value()) {
        report.summary_cache_hits = summaries->stats().cache_hits;
      }
      for (const staticpass::RootAnalysis& ra : pre) {
        report.escaped_calls += ra.escaped_calls;
        if (ra.prunable && ra.summary_pruned) {
          report.summary_pruned_roots += 1;
        }
      }
      if (options_.lint) {
        for (const staticpass::RootAnalysis& ra : pre) {
          for (const staticpass::LintFinding& lint : ra.lints) {
            report.lints.push_back(lint);
          }
        }
      }
    } catch (...) {
      report.errors.push_back(
          describe_current_exception("staticpass", ""));
      pre.clear();
    }
    report.phase_ms["staticpass"] = ms_since(staticpass_start);
  }

  // Phases 3-6 per analysis root. A root whose analysis throws is
  // recorded and skipped; remaining roots still run, so one hostile
  // root degrades the verdict instead of erasing the whole app.
  diags.set_phase("interp");
  smt::Checker checker(options_.vuln.solver_timeout_ms);
  checker.set_deadline(deadline);
  checker.set_telemetry(options_.telemetry, trace);
  // Engine introspection (ScanOptions::profile): one recorder for the
  // whole scan, threaded through Budget (fork sites, path samples) and
  // the checker (solver attribution). Roots pruned by the static pass
  // never begin_root — they fork no paths and issue no queries.
  std::optional<profile::PathProfiler> profiler;
  if (options_.profile) {
    profiler.emplace();
    checker.set_profiler(&*profiler);
  }
  std::size_t env_bytes_total = 0;
  std::size_t graph_bytes_total = 0;
  for (std::size_t ri = 0; ri < locality.roots.size(); ++ri) {
    const AnalysisRoot& root = locality.roots[ri];
    RootCost cost;
    cost.root = root_name(root);
    const bool proven_safe = ri < pre.size() && pre[ri].prunable;
    if (proven_safe) {
      report.pruned_roots += 1;
      if (options_.prefilter && !options_.crosscheck) {
        if (trace != nullptr) {
          trace->record_event("staticpass_pruned", root_name(root));
        }
        cost.pruned = true;
        report.root_costs.push_back(std::move(cost));
        continue;
      }
    }
    if (deadline.expired()) {
      report.deadline_exceeded = true;
      if (trace != nullptr) {
        trace->record_event("deadline_exceeded", "before " + root_name(root));
      }
      break;
    }
    const telemetry::SpanScope root_span(trace, "root", root_name(root));
    if (profiler.has_value()) profiler->begin_root(root_name(root));

    InterpResult exec;
    const CostClock::time_point interp_start = CostClock::now();
    try {
      const telemetry::SpanScope interp_span(trace, "interp");
      Budget budget = options_.budget;
      budget.deadline = deadline;
      budget.trace = trace;
      budget.profiler = profiler.has_value() ? &*profiler : nullptr;
      Interpreter interp(program, diags, budget, options_.sinks);
      exec = interp.run(root);
    } catch (...) {
      report.errors.push_back(
          describe_current_exception("interp", root_name(root)));
      if (profiler.has_value()) profiler->end_root(true, "analysis_error");
      cost.interp_ms = ms_since(interp_start);
      report.root_costs.push_back(std::move(cost));
      continue;
    }
    cost.interp_ms = ms_since(interp_start);
    cost.paths = exec.stats.paths;
    cost.objects = exec.stats.objects;

    report.paths += exec.stats.paths;
    report.objects += exec.stats.objects;
    report.cons_hits += exec.stats.cons_hits;
    report.budget_exhausted |= exec.stats.budget_exhausted;
    report.deadline_exceeded |= exec.stats.deadline_exceeded;
    report.sink_hits += exec.sinks.size();
    env_bytes_total += exec.stats.env_bytes;
    graph_bytes_total += exec.graph.memory_bytes();

    if (exec.stats.budget_exhausted || exec.stats.deadline_exceeded) {
      // The paper's behaviour: the run that exhausts memory produces no
      // verdict for this root (Cimy FN). Continue with other roots
      // (deadline expiry ends the loop at the next iteration's check).
      if (profiler.has_value()) {
        profiler->end_root(true, exec.stats.budget_exhausted
                                     ? "budget_exhausted"
                                     : "deadline_exceeded");
      }
      report.root_costs.push_back(std::move(cost));
      continue;
    }

    VulnModelResult vuln;
    const CostClock::time_point solve_start = CostClock::now();
    try {
      VulnModelOptions vuln_options = options_.vuln;
      vuln_options.collect_evidence = options_.explain;
      vuln = check_sinks(exec, checker, vuln_options, &query_cache());
    } catch (...) {
      report.errors.push_back(
          describe_current_exception("solve", root_name(root)));
      if (profiler.has_value()) profiler->end_root(true, "analysis_error");
      cost.solve_ms = ms_since(solve_start);
      report.root_costs.push_back(std::move(cost));
      continue;
    }
    cost.solve_ms = ms_since(solve_start);
    cost.solver_calls = vuln.solver_calls;
    cost.solver_cache_hits = vuln.query_cache_hits;
    report.solver_calls += vuln.solver_calls;
    report.solver_cache_hits += vuln.query_cache_hits;
    report.deadline_exceeded |= vuln.deadline_exceeded;
    if (options_.crosscheck && proven_safe && vuln.vulnerable) {
      ScanError disagreement;
      disagreement.phase = "crosscheck";
      disagreement.root = root_name(root);
      disagreement.message =
          "static pass proved this root safe (" + pre[ri].reason +
          ") but the symbolic engine found it vulnerable";
      report.disagreements.push_back(std::move(disagreement));
    }
    if (vuln.vulnerable) {
      report.verdict = Verdict::kVulnerable;
      for (const SinkVerdict& sv : vuln.verdicts) {
        if (!sv.exploitable()) continue;
        Finding finding;
        finding.sink_name = sv.sink.sink_name;
        finding.location = sources.describe(sv.sink.loc);
        if (const SourceFile* sf = sources.file(sv.sink.loc.file)) {
          finding.source_line = std::string(sf->line(sv.sink.loc.line));
          finding.file = sf->name();
          finding.line = sv.sink.loc.line;
        }
        finding.dst_sexpr = sv.dst_sexpr;
        finding.reach_sexpr = sv.reach_sexpr;
        finding.witness = sv.witness;
        finding.fingerprint =
            finding_fingerprint(app.name, sv.sink.sink_name, sv.dst_sexpr);
        if (options_.explain) {
          finding.evidence = render_evidence(sources, sv);
        }
        report.findings.push_back(std::move(finding));
      }
    }
    if (profiler.has_value()) profiler->end_root(false, "");
    report.root_costs.push_back(std::move(cost));
  }
  report.solver_retries = checker.retry_count();
  {
    double interp_ms = 0.0;
    double solve_ms = 0.0;
    for (const RootCost& rc : report.root_costs) {
      interp_ms += rc.interp_ms;
      solve_ms += rc.solve_ms;
    }
    report.phase_ms["interp"] = interp_ms;
    report.phase_ms["solve"] = solve_ms;
  }

  // Diagnostics reported after parsing come from the interpreter phases
  // (unknown syntax, unresolved includes, ...) sharing the same sink.
  report.analysis_errors = diags.error_count() - parse_diags;

  report.objects_per_path =
      report.paths == 0
          ? 0.0
          : static_cast<double>(report.objects) / static_cast<double>(report.paths);
  report.memory_mb = static_cast<double>(graph_bytes_total + env_bytes_total) /
                     (1024.0 * 1024.0);
  report.accounted_bytes = graph_bytes_total + env_bytes_total;

  if (profiler.has_value()) {
    report.profile = profiler->take();
    // The interpreter records raw (FileId, line) pairs; resolve them to
    // the "name:line" form humans (and the post-mortem) read. FileId 0
    // is the invalid id — leave the raw rendering in place.
    const auto resolve = [&sources](std::uint32_t file, std::uint32_t line,
                                    std::string& out) {
      const SourceFile* sf = sources.file(FileId{file});
      if (sf == nullptr || line == 0) return;
      out = sf->name() + ":" + std::to_string(line);
    };
    for (profile::RootProfile& rp : report.profile.roots) {
      for (profile::ForkSiteStats& site : rp.fork_sites) {
        resolve(site.file, site.line, site.site);
      }
      for (profile::SolverSiteStats& site : rp.solver) {
        resolve(site.file, site.line, site.origin);
      }
      if (rp.incomplete) rp.post_mortem = profile::build_post_mortem(rp);
    }
    report.profiled = true;
  }
}

}  // namespace uchecker::core
