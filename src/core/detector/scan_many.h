// Parallel scan driver: runs Detector::scan over a batch of
// applications on a small thread pool.
//
// Detector::scan is stateless with respect to the detector object (all
// analysis state — source manager, heap graph, Z3 context — is created
// per scan), so scans of distinct applications can run concurrently.
// Z3 contexts are not shared across threads; each scan owns its own.
#pragma once

#include <vector>

#include "core/detector/detector.h"

namespace uchecker::core {

// Scans every application, in input order, using up to `threads` worker
// threads (0 = hardware concurrency). Reports are returned in the same
// order as the inputs and are identical to serial scans (modulo the
// wall-clock `seconds` field).
[[nodiscard]] std::vector<ScanReport> scan_many(
    const Detector& detector, const std::vector<Application>& apps,
    unsigned threads = 0);

}  // namespace uchecker::core
