// Parallel scan driver: runs Detector::scan over a batch of
// applications on a small thread pool.
//
// Detector::scan is stateless with respect to the detector object (all
// analysis state — source manager, heap graph, Z3 context — is created
// per scan), so scans of distinct applications can run concurrently.
// Z3 contexts are not shared across threads; each scan owns its own.
//
// Fault isolation: one hostile or pathological application can never
// take down the batch. Detector::scan contains its own errors, workers
// additionally catch anything that still escapes (no exception ever
// reaches the noexcept thread boundary), every app gets a per-app
// wall-clock timeout, apps that failed with only transient errors are
// retried a bounded number of times, and a shared cancellation token
// aborts the whole fleet cleanly — scans not yet started report
// kAnalysisError ("cancelled") instead of silently missing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/detector/detector.h"
#include "support/deadline.h"

namespace uchecker::core {

struct ScanManyOptions {
  unsigned threads = 0;  // 0 = hardware concurrency
  // Per-app wall-clock budget (0 = unlimited). Combined with the
  // detector's own budget.time_limit; the stricter one wins.
  std::chrono::milliseconds app_timeout{0};
  // Re-scan an app whose report failed with *only transient* errors
  // (ScanReport::only_transient_errors) up to this many extra times.
  unsigned max_retries = 1;
  // Base delay before retry k (attempt k+1): retry_backoff * 2^k plus a
  // deterministic jitter of up to half the delay, derived from
  // (retry_jitter_seed, app name, attempt) — so a transiently flaky app
  // never hot-loops the fleet, retries of different apps decorrelate,
  // and a test can predict every delay exactly. 0 (the default) keeps
  // the immediate-retry behaviour. The sleep polls `cancel`, so a fleet
  // cancellation is never held up by a backoff in progress.
  std::chrono::milliseconds retry_backoff{0};
  std::uint64_t retry_jitter_seed = 0;
  // Optional fleet-wide cancellation (CancellationSource::token()).
  // Cancelling aborts in-flight scans at their next deadline poll and
  // prevents new ones from starting.
  std::shared_ptr<const std::atomic<bool>> cancel;
};

// Scans every application, in input order, using up to `threads` worker
// threads (0 = hardware concurrency). Reports are returned in the same
// order as the inputs and are identical to serial scans (modulo the
// wall-clock `seconds` field).
[[nodiscard]] std::vector<ScanReport> scan_many(
    const Detector& detector, const std::vector<Application>& apps,
    unsigned threads = 0);

// As above with full fleet controls. Always returns one report per app.
[[nodiscard]] std::vector<ScanReport> scan_many(
    const Detector& detector, const std::vector<Application>& apps,
    const ScanManyOptions& options);

// The exact delay scan_many waits before retry `attempt` (0-based: the
// wait before the first re-scan is attempt 0) of `app_name`. Pure and
// deterministic in (options, app_name, attempt); exposed so tests and
// capacity planning can reproduce the fleet's retry schedule. Doubles
// per attempt from options.retry_backoff, plus jitter in [0, delay/2]
// hashed from (retry_jitter_seed, app_name, attempt); capped at 60s.
[[nodiscard]] std::chrono::milliseconds retry_backoff_delay(
    const ScanManyOptions& options, std::string_view app_name,
    unsigned attempt);

}  // namespace uchecker::core
