#include "core/detector/scan_many.h"

#include <algorithm>
#include <thread>

#include "core/detector/report_io.h"
#include "support/store.h"
#include "support/strutil.h"
#include "support/telemetry.h"

namespace uchecker::core {
namespace {

bool fleet_cancelled(const ScanManyOptions& options) {
  return options.cancel != nullptr &&
         options.cancel->load(std::memory_order_relaxed);
}

// Sleeps `delay` in short slices, aborting early on fleet cancellation
// (a cancelled fleet must not sit out a long backoff before noticing).
void backoff_sleep(std::chrono::milliseconds delay,
                   const ScanManyOptions& options) {
  const auto until = std::chrono::steady_clock::now() + delay;
  while (!fleet_cancelled(options)) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= until) return;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(until - now);
    std::this_thread::sleep_for(
        std::min(left, std::chrono::milliseconds{10}));
  }
}

ScanReport cancelled_report(const Application& app) {
  ScanReport report;
  report.app_name = app.name;
  report.verdict = Verdict::kAnalysisError;
  report.deadline_exceeded = true;
  report.errors.push_back(
      ScanError{"scan", "", "fleet cancelled before scan", false});
  return report;
}

// One app, with per-app deadline, bounded transient retry, and a final
// catch-all so the worker's thread boundary stays exception-free.
ScanReport scan_one(const Detector& detector, const Application& app,
                    const ScanManyOptions& options) {
  for (unsigned attempt = 0;; ++attempt) {
    if (fleet_cancelled(options)) return cancelled_report(app);

    Deadline deadline = options.app_timeout.count() > 0
                            ? Deadline::after(options.app_timeout)
                            : Deadline::unlimited();
    if (options.cancel != nullptr) deadline.attach(options.cancel);

    ScanReport report;
    try {
      report = detector.scan(app, deadline);
    } catch (const std::exception& e) {
      // scan() contains its own errors; this is belt and braces.
      report = ScanReport{};
      report.app_name = app.name;
      report.errors.push_back(ScanError{"scan", "", e.what(), false});
      report.verdict = Verdict::kAnalysisError;
    } catch (...) {
      report = ScanReport{};
      report.app_name = app.name;
      report.errors.push_back(ScanError{"scan", "", "unknown error", false});
      report.verdict = Verdict::kAnalysisError;
    }

    if (report.only_transient_errors() && attempt < options.max_retries &&
        !fleet_cancelled(options)) {
      const std::chrono::milliseconds delay =
          retry_backoff_delay(options, app.name, attempt);
      if (telemetry::Telemetry* t = detector.options().telemetry) {
        t->metrics().counter("fleet.app_retries").add(1);
        if (delay.count() > 0) {
          t->metrics()
              .counter("fleet.retry_backoff_ms")
              .add(static_cast<std::uint64_t>(delay.count()));
        }
      }
      if (delay.count() > 0) backoff_sleep(delay, options);
      continue;
    }

    // Structured per-app progress: one JSON object per completed scan,
    // delivered through the telemetry event sink (fleet drivers and
    // scan_directory -v attach a sink that prints these).
    if (telemetry::Telemetry* t = detector.options().telemetry) {
      std::string line = "{\"event\": \"app_done\", \"app\": " +
                         strutil::quote(report.app_name) +
                         (report.trace_id.empty()
                              ? std::string()
                              : ", \"trace_id\": " +
                                    strutil::quote(report.trace_id)) +
                         ", \"verdict\": \"" +
                         std::string(verdict_slug(report.verdict)) +
                         "\", \"seconds\": " + std::to_string(report.seconds) +
                         ", \"errors\": " + std::to_string(report.errors.size()) +
                         ", \"attempts\": " + std::to_string(attempt + 1) + "}";
      t->emit_progress(line);
    }
    return report;
  }
}

// Folds one fleet's reports into the shared metrics registry: verdict
// and degradation counts (by ScanError::phase), solver totals, and the
// per-app wall-time histogram. Phase latency percentiles come from the
// traces themselves (Telemetry::fleet_phase_stats) at export time.
void aggregate_fleet_metrics(telemetry::Telemetry& telemetry,
                             const std::vector<ScanReport>& reports) {
  telemetry::MetricsRegistry& m = telemetry.metrics();
  m.counter("fleet.apps").add(reports.size());
  for (const ScanReport& r : reports) {
    m.counter("fleet.verdict." + std::string(verdict_slug(r.verdict))).add(1);
    if (r.degraded()) m.counter("fleet.degraded").add(1);
    for (const ScanError& e : r.errors) {
      m.counter("fleet.degraded_phase." + e.phase).add(1);
    }
    if (r.deadline_exceeded) m.counter("fleet.deadline_exceeded").add(1);
    if (r.budget_exhausted) m.counter("fleet.budget_exhausted").add(1);
    m.counter("fleet.solver_calls").add(r.solver_calls);
    m.counter("fleet.solver_retries").add(r.solver_retries);
    m.counter("fleet.findings").add(r.findings.size());
    m.histogram("fleet.app_seconds_ms").observe(r.seconds * 1000.0);
    // Per-root cost attribution: where fleet wall time concentrates
    // (interp vs solve), over every executed root of every app.
    for (const RootCost& rc : r.root_costs) {
      if (rc.pruned) continue;
      m.histogram("fleet.root_interp_ms").observe(rc.interp_ms);
      m.histogram("fleet.root_solve_ms").observe(rc.solve_ms);
    }
  }
}

}  // namespace

std::chrono::milliseconds retry_backoff_delay(const ScanManyOptions& options,
                                              std::string_view app_name,
                                              unsigned attempt) {
  if (options.retry_backoff.count() <= 0) return std::chrono::milliseconds{0};
  constexpr std::int64_t kCapMs = 60'000;
  // Exponential base: retry_backoff doubled per attempt, saturating at
  // the cap (the shift alone would overflow past attempt 62).
  std::int64_t base = options.retry_backoff.count();
  for (unsigned i = 0; i < attempt && base < kCapMs; ++i) base *= 2;
  base = std::min(base, kCapMs);
  // Deterministic jitter in [0, base/2]: FNV over seed, app and attempt
  // decorrelates retries of different apps that failed in the same
  // instant (the thundering-herd case) without any global random state.
  std::uint64_t h = store::fnv1a64(app_name);
  h = store::fnv1a64(std::string_view("\x1f", 1), h ^ options.retry_jitter_seed);
  h ^= attempt;
  h *= store::kFnvPrime;
  const std::int64_t jitter =
      base < 2 ? 0 : static_cast<std::int64_t>(h % static_cast<std::uint64_t>(
                                                       base / 2 + 1));
  return std::chrono::milliseconds{std::min(base + jitter, kCapMs)};
}

std::vector<ScanReport> scan_many(const Detector& detector,
                                  const std::vector<Application>& apps,
                                  unsigned threads) {
  ScanManyOptions options;
  options.threads = threads;
  return scan_many(detector, apps, options);
}

std::vector<ScanReport> scan_many(const Detector& detector,
                                  const std::vector<Application>& apps,
                                  const ScanManyOptions& options) {
  unsigned threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(apps.size()));
  std::vector<ScanReport> reports(apps.size());
  if (apps.empty()) return reports;

  if (threads <= 1) {
    for (std::size_t i = 0; i < apps.size(); ++i) {
      reports[i] = scan_one(detector, apps[i], options);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= apps.size()) return;
          // scan_one never throws, so nothing can cross this noexcept
          // thread boundary and call std::terminate.
          reports[i] = scan_one(detector, apps[i], options);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  if (telemetry::Telemetry* t = detector.options().telemetry) {
    aggregate_fleet_metrics(*t, reports);
  }
  return reports;
}

}  // namespace uchecker::core
