#include "core/detector/scan_many.h"

#include <thread>

namespace uchecker::core {
namespace {

bool fleet_cancelled(const ScanManyOptions& options) {
  return options.cancel != nullptr &&
         options.cancel->load(std::memory_order_relaxed);
}

ScanReport cancelled_report(const Application& app) {
  ScanReport report;
  report.app_name = app.name;
  report.verdict = Verdict::kAnalysisError;
  report.deadline_exceeded = true;
  report.errors.push_back(
      ScanError{"scan", "", "fleet cancelled before scan", false});
  return report;
}

// One app, with per-app deadline, bounded transient retry, and a final
// catch-all so the worker's thread boundary stays exception-free.
ScanReport scan_one(const Detector& detector, const Application& app,
                    const ScanManyOptions& options) {
  for (unsigned attempt = 0;; ++attempt) {
    if (fleet_cancelled(options)) return cancelled_report(app);

    Deadline deadline = options.app_timeout.count() > 0
                            ? Deadline::after(options.app_timeout)
                            : Deadline::unlimited();
    if (options.cancel != nullptr) deadline.attach(options.cancel);

    ScanReport report;
    try {
      report = detector.scan(app, deadline);
    } catch (const std::exception& e) {
      // scan() contains its own errors; this is belt and braces.
      report = ScanReport{};
      report.app_name = app.name;
      report.errors.push_back(ScanError{"scan", "", e.what(), false});
      report.verdict = Verdict::kAnalysisError;
    } catch (...) {
      report = ScanReport{};
      report.app_name = app.name;
      report.errors.push_back(ScanError{"scan", "", "unknown error", false});
      report.verdict = Verdict::kAnalysisError;
    }

    if (report.only_transient_errors() && attempt < options.max_retries &&
        !fleet_cancelled(options)) {
      continue;
    }
    return report;
  }
}

}  // namespace

std::vector<ScanReport> scan_many(const Detector& detector,
                                  const std::vector<Application>& apps,
                                  unsigned threads) {
  ScanManyOptions options;
  options.threads = threads;
  return scan_many(detector, apps, options);
}

std::vector<ScanReport> scan_many(const Detector& detector,
                                  const std::vector<Application>& apps,
                                  const ScanManyOptions& options) {
  unsigned threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(apps.size()));
  std::vector<ScanReport> reports(apps.size());
  if (apps.empty()) return reports;

  if (threads <= 1) {
    for (std::size_t i = 0; i < apps.size(); ++i) {
      reports[i] = scan_one(detector, apps[i], options);
    }
    return reports;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= apps.size()) return;
        // scan_one never throws, so nothing can cross this noexcept
        // thread boundary and call std::terminate.
        reports[i] = scan_one(detector, apps[i], options);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return reports;
}

}  // namespace uchecker::core
