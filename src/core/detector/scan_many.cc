#include "core/detector/scan_many.h"

#include <atomic>
#include <thread>

namespace uchecker::core {

std::vector<ScanReport> scan_many(const Detector& detector,
                                  const std::vector<Application>& apps,
                                  unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(apps.size()));
  std::vector<ScanReport> reports(apps.size());
  if (apps.empty()) return reports;

  if (threads <= 1) {
    for (std::size_t i = 0; i < apps.size(); ++i) {
      reports[i] = detector.scan(apps[i]);
    }
    return reports;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= apps.size()) return;
        reports[i] = detector.scan(apps[i]);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return reports;
}

}  // namespace uchecker::core
