#include "core/detector/report_io.h"

#include <cmath>

#include "support/strutil.h"

namespace uchecker::core {
namespace {

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

std::string_view verdict_slug(Verdict v) {
  switch (v) {
    case Verdict::kVulnerable: return "vulnerable";
    case Verdict::kNotVulnerable: return "not_vulnerable";
    case Verdict::kAnalysisIncomplete: return "analysis_incomplete";
    case Verdict::kAnalysisError: return "analysis_error";
    case Verdict::kAnalysisDisagreement: return "analysis_disagreement";
  }
  return "invalid";
}

std::string to_json(const ScanReport& report) {
  std::string out = "{";
  out += "\"app\": " + strutil::quote(report.app_name) + ", ";
  out += "\"verdict\": \"" + std::string(verdict_slug(report.verdict)) +
         "\", ";
  out += "\"stats\": {";
  out += "\"total_loc\": " + std::to_string(report.total_loc) + ", ";
  out += "\"analyzed_loc\": " + std::to_string(report.analyzed_loc) + ", ";
  out += "\"analyzed_percent\": " + json_number(report.analyzed_percent) + ", ";
  out += "\"paths\": " + std::to_string(report.paths) + ", ";
  out += "\"objects\": " + std::to_string(report.objects) + ", ";
  out += "\"objects_per_path\": " + json_number(report.objects_per_path) + ", ";
  out += "\"memory_mb\": " + json_number(report.memory_mb) + ", ";
  out += "\"seconds\": " + json_number(report.seconds) + ", ";
  out += "\"roots\": " + std::to_string(report.roots) + ", ";
  out += "\"sink_hits\": " + std::to_string(report.sink_hits) + ", ";
  out += "\"solver_calls\": " + std::to_string(report.solver_calls) + ", ";
  out += "\"solver_retries\": " + std::to_string(report.solver_retries) + ", ";
  out += "\"cons_hits\": " + std::to_string(report.cons_hits) + ", ";
  out += "\"solver_cache_hits\": " +
         std::to_string(report.solver_cache_hits) + ", ";
  out += std::string("\"budget_exhausted\": ") +
         (report.budget_exhausted ? "true" : "false") + ", ";
  out += std::string("\"deadline_exceeded\": ") +
         (report.deadline_exceeded ? "true" : "false") + ", ";
  out += "\"parse_errors\": " + std::to_string(report.parse_errors) + ", ";
  out += "\"analysis_errors\": " + std::to_string(report.analysis_errors) + ", ";
  out += "\"pruned_roots\": " + std::to_string(report.pruned_roots);
  out += "}, \"diagnostics_by_phase\": {";
  bool first_phase = true;
  for (const auto& [phase, count] : report.diagnostics_by_phase) {
    if (!first_phase) out += ", ";
    first_phase = false;
    out += strutil::quote(phase) + ": " + std::to_string(count);
  }
  out += "}, \"errors\": [";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    const ScanError& e = report.errors[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"phase\": " + strutil::quote(e.phase) + ", ";
    out += "\"root\": " + strutil::quote(e.root) + ", ";
    out += "\"message\": " + strutil::quote(e.message) + ", ";
    out += std::string("\"transient\": ") + (e.transient ? "true" : "false");
    out += "}";
  }
  out += "], \"disagreements\": [";
  for (std::size_t i = 0; i < report.disagreements.size(); ++i) {
    const ScanError& e = report.disagreements[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"root\": " + strutil::quote(e.root) + ", ";
    out += "\"message\": " + strutil::quote(e.message);
    out += "}";
  }
  out += "], \"lints\": [";
  for (std::size_t i = 0; i < report.lints.size(); ++i) {
    const staticpass::LintFinding& l = report.lints[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"rule\": " + strutil::quote(l.rule) + ", ";
    out += "\"severity\": \"" +
           std::string(staticpass::severity_name(l.severity)) + "\", ";
    out += "\"location\": " + strutil::quote(l.location) + ", ";
    out += "\"message\": " + strutil::quote(l.message) + ", ";
    out += "\"evidence\": " + strutil::quote(l.evidence);
    out += "}";
  }
  out += "], \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"sink\": " + strutil::quote(f.sink_name) + ", ";
    out += "\"location\": " + strutil::quote(f.location) + ", ";
    out += "\"source_line\": " + strutil::quote(f.source_line) + ", ";
    out += "\"dst\": " + strutil::quote(f.dst_sexpr) + ", ";
    out += "\"reachability\": " + strutil::quote(f.reach_sexpr) + ", ";
    out += "\"witness\": " + strutil::quote(f.witness);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string to_text(const ScanReport& report) {
  std::string out;
  out += "application : " + report.app_name + "\n";
  out += "verdict     : " + std::string(verdict_name(report.verdict)) + "\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "analysis    : %llu LoC total, %llu analyzed (%.2f%%), "
                "%zu root(s)\n",
                static_cast<unsigned long long>(report.total_loc),
                static_cast<unsigned long long>(report.analyzed_loc),
                report.analyzed_percent, report.roots);
  out += line;
  std::snprintf(line, sizeof(line),
                "execution   : %zu paths, %zu objects (%.1f/path), %.2f MB, "
                "%.3fs, %zu solver call(s)\n",
                report.paths, report.objects, report.objects_per_path,
                report.memory_mb, report.seconds, report.solver_calls);
  out += line;
  if (report.budget_exhausted) {
    out += "warning     : analysis budget exhausted; results are partial\n";
  }
  if (report.deadline_exceeded) {
    out += "warning     : scan deadline exceeded; results are partial\n";
  }
  if (report.parse_errors > 0) {
    out += "warning     : " + std::to_string(report.parse_errors) +
           " parse error(s)\n";
  }
  if (report.analysis_errors > 0) {
    out += "warning     : " + std::to_string(report.analysis_errors) +
           " analysis diagnostic(s)\n";
  }
  if (!report.diagnostics_by_phase.empty()) {
    out += "diagnostics :";
    for (const auto& [phase, count] : report.diagnostics_by_phase) {
      out += " " + (phase.empty() ? std::string("<unattributed>") : phase) +
             "=" + std::to_string(count);
    }
    out += "\n";
  }
  if (report.solver_retries > 0) {
    out += "warning     : " + std::to_string(report.solver_retries) +
           " solver retr" + (report.solver_retries == 1 ? "y" : "ies") +
           " with escalated timeouts\n";
  }
  for (const ScanError& e : report.errors) {
    out += "error       : [" + e.phase + "] ";
    if (!e.root.empty()) out += e.root + ": ";
    out += e.message;
    if (e.transient) out += " (transient)";
    out += "\n";
  }
  for (const ScanError& e : report.disagreements) {
    out += "disagreement: " + e.root + ": " + e.message + "\n";
  }
  for (const staticpass::LintFinding& l : report.lints) {
    out += "lint        : [" + l.rule + "/" +
           std::string(staticpass::severity_name(l.severity)) + "] " +
           l.location + ": " + l.message + "\n";
    if (!l.evidence.empty()) out += "              " + l.evidence + "\n";
  }
  for (const Finding& f : report.findings) {
    out += "finding     : " + f.sink_name + " at " + f.location + "\n";
    out += "              " + f.source_line + "\n";
    out += "              exploitable when " + f.witness + "\n";
  }
  return out;
}

}  // namespace uchecker::core
