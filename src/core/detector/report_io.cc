#include "core/detector/report_io.h"

#include <cmath>

#include "support/jsonlite.h"
#include "support/profile.h"
#include "support/strutil.h"

namespace uchecker::core {
namespace {

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

// Serializes one finding's provenance bundle (ScanOptions::explain).
std::string evidence_json(const FindingEvidence& ev) {
  std::string out = "{\"taint_path\": [";
  for (std::size_t i = 0; i < ev.taint_path.size(); ++i) {
    const EvidenceHop& hop = ev.taint_path[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"kind\": " + strutil::quote(hop.kind) + ", ";
    out += "\"description\": " + strutil::quote(hop.description) + ", ";
    out += "\"file\": " + strutil::quote(hop.file) + ", ";
    out += "\"line\": " + std::to_string(hop.line) + ", ";
    out += "\"location\": " + strutil::quote(hop.location);
    out += "}";
  }
  out += "], \"guards\": [";
  for (std::size_t i = 0; i < ev.guards.size(); ++i) {
    const EvidenceGuard& g = ev.guards[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"sexpr\": " + strutil::quote(g.sexpr) + ", ";
    out += "\"file\": " + strutil::quote(g.file) + ", ";
    out += "\"line\": " + std::to_string(g.line) + ", ";
    out += "\"location\": " + strutil::quote(g.location);
    out += "}";
  }
  out += "], \"bindings\": [";
  for (std::size_t i = 0; i < ev.bindings.size(); ++i) {
    const WitnessBinding& b = ev.bindings[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"symbol\": " + strutil::quote(b.symbol) + ", ";
    out += "\"raw\": " + strutil::quote(b.raw) + ", ";
    out += "\"decoded\": " + strutil::quote(b.decoded);
    out += "}";
  }
  out += "], \"upload_filename\": " + strutil::quote(ev.upload_filename);
  out += ", \"destination\": " + strutil::quote(ev.destination);
  out += std::string(", \"destination_complete\": ") +
         (ev.destination_complete ? "true" : "false");
  out += "}";
  return out;
}

// --- report_from_json helpers. Every getter returns false on a missing
// or mistyped field, so one bad byte fails the whole parse (and the
// caller recomputes) instead of yielding a half-filled report.

bool get_string(const jsonlite::Value& obj, std::string_view key,
                std::string& out) {
  const jsonlite::Value* v = obj.find(key);
  if (v == nullptr || !v->is_string()) return false;
  out = v->str();
  return true;
}

bool get_double(const jsonlite::Value& obj, std::string_view key,
                double& out) {
  const jsonlite::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return false;
  out = v->number();
  return true;
}

bool get_bool(const jsonlite::Value& obj, std::string_view key, bool& out) {
  const jsonlite::Value* v = obj.find(key);
  if (v == nullptr || !v->is_bool()) return false;
  out = v->boolean();
  return true;
}

template <typename UInt>
bool get_uint(const jsonlite::Value& obj, std::string_view key, UInt& out) {
  double d = 0.0;
  if (!get_double(obj, key, d) || d < 0.0) return false;
  out = static_cast<UInt>(d);
  return true;
}

bool parse_verdict(std::string_view slug, Verdict& out) {
  for (const Verdict v :
       {Verdict::kVulnerable, Verdict::kNotVulnerable,
        Verdict::kAnalysisIncomplete, Verdict::kAnalysisError,
        Verdict::kAnalysisDisagreement}) {
    if (slug == verdict_slug(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

bool parse_evidence(const jsonlite::Value& ev, FindingEvidence& out) {
  const jsonlite::Value* taint = ev.find("taint_path");
  const jsonlite::Value* guards = ev.find("guards");
  const jsonlite::Value* bindings = ev.find("bindings");
  if (taint == nullptr || !taint->is_array() || guards == nullptr ||
      !guards->is_array() || bindings == nullptr || !bindings->is_array()) {
    return false;
  }
  for (const jsonlite::Value& h : taint->items()) {
    EvidenceHop hop;
    if (!h.is_object() || !get_string(h, "kind", hop.kind) ||
        !get_string(h, "description", hop.description) ||
        !get_string(h, "file", hop.file) || !get_uint(h, "line", hop.line) ||
        !get_string(h, "location", hop.location)) {
      return false;
    }
    out.taint_path.push_back(std::move(hop));
  }
  for (const jsonlite::Value& g : guards->items()) {
    EvidenceGuard guard;
    if (!g.is_object() || !get_string(g, "sexpr", guard.sexpr) ||
        !get_string(g, "file", guard.file) ||
        !get_uint(g, "line", guard.line) ||
        !get_string(g, "location", guard.location)) {
      return false;
    }
    out.guards.push_back(std::move(guard));
  }
  for (const jsonlite::Value& b : bindings->items()) {
    WitnessBinding binding;
    if (!b.is_object() || !get_string(b, "symbol", binding.symbol) ||
        !get_string(b, "raw", binding.raw) ||
        !get_string(b, "decoded", binding.decoded)) {
      return false;
    }
    out.bindings.push_back(std::move(binding));
  }
  return get_string(ev, "upload_filename", out.upload_filename) &&
         get_string(ev, "destination", out.destination) &&
         get_bool(ev, "destination_complete", out.destination_complete);
}

}  // namespace

std::optional<ScanReport> report_from_json(std::string_view json) {
  const std::optional<jsonlite::Value> doc = jsonlite::parse(json);
  if (!doc.has_value() || !doc->is_object()) return std::nullopt;

  ScanReport r;
  std::string verdict;
  if (!get_string(*doc, "app", r.app_name) ||
      !get_string(*doc, "verdict", verdict) ||
      !parse_verdict(verdict, r.verdict)) {
    return std::nullopt;
  }
  // Optional (omitted for untraced scans); must be a string if present.
  if (doc->find("trace_id") != nullptr &&
      !get_string(*doc, "trace_id", r.trace_id)) {
    return std::nullopt;
  }

  const jsonlite::Value* stats = doc->find("stats");
  if (stats == nullptr || !stats->is_object()) return std::nullopt;
  if (!get_uint(*stats, "total_loc", r.total_loc) ||
      !get_uint(*stats, "analyzed_loc", r.analyzed_loc) ||
      !get_double(*stats, "analyzed_percent", r.analyzed_percent) ||
      !get_uint(*stats, "paths", r.paths) ||
      !get_uint(*stats, "objects", r.objects) ||
      !get_double(*stats, "objects_per_path", r.objects_per_path) ||
      !get_double(*stats, "memory_mb", r.memory_mb) ||
      !get_double(*stats, "seconds", r.seconds) ||
      !get_uint(*stats, "roots", r.roots) ||
      !get_uint(*stats, "sink_hits", r.sink_hits) ||
      !get_uint(*stats, "solver_calls", r.solver_calls) ||
      !get_uint(*stats, "solver_retries", r.solver_retries) ||
      !get_uint(*stats, "cons_hits", r.cons_hits) ||
      !get_uint(*stats, "solver_cache_hits", r.solver_cache_hits) ||
      !get_bool(*stats, "budget_exhausted", r.budget_exhausted) ||
      !get_bool(*stats, "deadline_exceeded", r.deadline_exceeded) ||
      !get_uint(*stats, "parse_errors", r.parse_errors) ||
      !get_uint(*stats, "analysis_errors", r.analysis_errors) ||
      !get_uint(*stats, "pruned_roots", r.pruned_roots)) {
    return std::nullopt;
  }
  // Optional summary-layer counters (absent in pre-PR9 reports) and the
  // accounted-bytes gauge (absent in pre-PR10 reports).
  if ((stats->find("summary_cache_hits") != nullptr &&
       !get_uint(*stats, "summary_cache_hits", r.summary_cache_hits)) ||
      (stats->find("summary_pruned_roots") != nullptr &&
       !get_uint(*stats, "summary_pruned_roots", r.summary_pruned_roots)) ||
      (stats->find("escaped_calls") != nullptr &&
       !get_uint(*stats, "escaped_calls", r.escaped_calls)) ||
      (stats->find("accounted_bytes") != nullptr &&
       !get_uint(*stats, "accounted_bytes", r.accounted_bytes))) {
    return std::nullopt;
  }

  const jsonlite::Value* diags = doc->find("diagnostics_by_phase");
  if (diags == nullptr || !diags->is_object()) return std::nullopt;
  for (const auto& [phase, count] : diags->members()) {
    if (!count.is_number() || count.number() < 0.0) return std::nullopt;
    r.diagnostics_by_phase[phase] = static_cast<std::size_t>(count.number());
  }

  // Optional cost attribution (omitted when the scan recorded none).
  if (const jsonlite::Value* cost = doc->find("cost")) {
    if (!cost->is_object()) return std::nullopt;
    const jsonlite::Value* phases = cost->find("phases");
    const jsonlite::Value* roots = cost->find("roots");
    if (phases == nullptr || !phases->is_object() || roots == nullptr ||
        !roots->is_array()) {
      return std::nullopt;
    }
    for (const auto& [phase, ms] : phases->members()) {
      if (!ms.is_number()) return std::nullopt;
      r.phase_ms[phase] = ms.number();
    }
    for (const jsonlite::Value& rc_json : roots->items()) {
      RootCost rc;
      if (!rc_json.is_object() || !get_string(rc_json, "root", rc.root) ||
          !get_double(rc_json, "interp_ms", rc.interp_ms) ||
          !get_double(rc_json, "solve_ms", rc.solve_ms) ||
          !get_uint(rc_json, "paths", rc.paths) ||
          !get_uint(rc_json, "objects", rc.objects) ||
          !get_uint(rc_json, "solver_calls", rc.solver_calls) ||
          !get_uint(rc_json, "solver_cache_hits", rc.solver_cache_hits) ||
          !get_bool(rc_json, "pruned", rc.pruned)) {
        return std::nullopt;
      }
      r.root_costs.push_back(std::move(rc));
    }
  }

  // Optional engine-introspection profile (ScanOptions::profile).
  if (const jsonlite::Value* prof = doc->find("profile")) {
    std::optional<profile::ExplosionProfile> parsed =
        profile::from_json(*prof);
    if (!parsed.has_value()) return std::nullopt;
    r.profile = std::move(*parsed);
    r.profiled = true;
    r.peak_rss_bytes = r.profile.peak_rss_bytes;
  }

  const jsonlite::Value* errors = doc->find("errors");
  if (errors == nullptr || !errors->is_array()) return std::nullopt;
  for (const jsonlite::Value& e : errors->items()) {
    ScanError err;
    if (!e.is_object() || !get_string(e, "phase", err.phase) ||
        !get_string(e, "root", err.root) ||
        !get_string(e, "message", err.message) ||
        !get_bool(e, "transient", err.transient)) {
      return std::nullopt;
    }
    r.errors.push_back(std::move(err));
  }

  const jsonlite::Value* disagreements = doc->find("disagreements");
  if (disagreements == nullptr || !disagreements->is_array()) {
    return std::nullopt;
  }
  for (const jsonlite::Value& d : disagreements->items()) {
    ScanError err;
    err.phase = "crosscheck";
    if (!d.is_object() || !get_string(d, "root", err.root) ||
        !get_string(d, "message", err.message)) {
      return std::nullopt;
    }
    r.disagreements.push_back(std::move(err));
  }

  const jsonlite::Value* lints = doc->find("lints");
  if (lints == nullptr || !lints->is_array()) return std::nullopt;
  for (const jsonlite::Value& l : lints->items()) {
    staticpass::LintFinding lint;
    std::string severity;
    if (!l.is_object() || !get_string(l, "rule", lint.rule) ||
        !get_string(l, "severity", severity) ||
        !get_string(l, "location", lint.location) ||
        !get_string(l, "message", lint.message) ||
        !get_string(l, "evidence", lint.evidence)) {
      return std::nullopt;
    }
    const auto parsed = staticpass::parse_severity(severity);
    if (!parsed.has_value()) return std::nullopt;
    lint.severity = *parsed;
    r.lints.push_back(std::move(lint));
  }

  const jsonlite::Value* findings = doc->find("findings");
  if (findings == nullptr || !findings->is_array()) return std::nullopt;
  for (const jsonlite::Value& f : findings->items()) {
    Finding finding;
    if (!f.is_object() || !get_string(f, "sink", finding.sink_name) ||
        !get_string(f, "location", finding.location) ||
        !get_string(f, "file", finding.file) ||
        !get_uint(f, "line", finding.line) ||
        !get_string(f, "source_line", finding.source_line) ||
        !get_string(f, "dst", finding.dst_sexpr) ||
        !get_string(f, "reachability", finding.reach_sexpr) ||
        !get_string(f, "witness", finding.witness) ||
        !get_string(f, "fingerprint", finding.fingerprint)) {
      return std::nullopt;
    }
    if (const jsonlite::Value* ev = f.find("evidence")) {
      if (!ev->is_object() || !parse_evidence(*ev, finding.evidence)) {
        return std::nullopt;
      }
    }
    r.findings.push_back(std::move(finding));
  }
  return r;
}

std::string_view verdict_slug(Verdict v) {
  switch (v) {
    case Verdict::kVulnerable: return "vulnerable";
    case Verdict::kNotVulnerable: return "not_vulnerable";
    case Verdict::kAnalysisIncomplete: return "analysis_incomplete";
    case Verdict::kAnalysisError: return "analysis_error";
    case Verdict::kAnalysisDisagreement: return "analysis_disagreement";
  }
  return "invalid";
}

std::string to_json(const ScanReport& report) {
  std::string out = "{";
  out += "\"app\": " + strutil::quote(report.app_name) + ", ";
  if (!report.trace_id.empty()) {
    out += "\"trace_id\": " + strutil::quote(report.trace_id) + ", ";
  }
  out += "\"verdict\": \"" + std::string(verdict_slug(report.verdict)) +
         "\", ";
  out += "\"stats\": {";
  out += "\"total_loc\": " + std::to_string(report.total_loc) + ", ";
  out += "\"analyzed_loc\": " + std::to_string(report.analyzed_loc) + ", ";
  out += "\"analyzed_percent\": " + json_number(report.analyzed_percent) + ", ";
  out += "\"paths\": " + std::to_string(report.paths) + ", ";
  out += "\"objects\": " + std::to_string(report.objects) + ", ";
  out += "\"objects_per_path\": " + json_number(report.objects_per_path) + ", ";
  out += "\"memory_mb\": " + json_number(report.memory_mb) + ", ";
  out += "\"seconds\": " + json_number(report.seconds) + ", ";
  out += "\"roots\": " + std::to_string(report.roots) + ", ";
  out += "\"sink_hits\": " + std::to_string(report.sink_hits) + ", ";
  out += "\"solver_calls\": " + std::to_string(report.solver_calls) + ", ";
  out += "\"solver_retries\": " + std::to_string(report.solver_retries) + ", ";
  out += "\"cons_hits\": " + std::to_string(report.cons_hits) + ", ";
  out += "\"solver_cache_hits\": " +
         std::to_string(report.solver_cache_hits) + ", ";
  out += std::string("\"budget_exhausted\": ") +
         (report.budget_exhausted ? "true" : "false") + ", ";
  out += std::string("\"deadline_exceeded\": ") +
         (report.deadline_exceeded ? "true" : "false") + ", ";
  out += "\"parse_errors\": " + std::to_string(report.parse_errors) + ", ";
  out += "\"analysis_errors\": " + std::to_string(report.analysis_errors) + ", ";
  out += "\"pruned_roots\": " + std::to_string(report.pruned_roots) + ", ";
  out += "\"summary_cache_hits\": " +
         std::to_string(report.summary_cache_hits) + ", ";
  out += "\"summary_pruned_roots\": " +
         std::to_string(report.summary_pruned_roots) + ", ";
  out += "\"escaped_calls\": " + std::to_string(report.escaped_calls) + ", ";
  out += "\"accounted_bytes\": " + std::to_string(report.accounted_bytes);
  out += "}, \"diagnostics_by_phase\": {";
  bool first_phase = true;
  for (const auto& [phase, count] : report.diagnostics_by_phase) {
    if (!first_phase) out += ", ";
    first_phase = false;
    out += strutil::quote(phase) + ": " + std::to_string(count);
  }
  out += "}";
  if (!report.phase_ms.empty() || !report.root_costs.empty()) {
    out += ", \"cost\": {\"phases\": {";
    bool first_cost = true;
    for (const auto& [phase, ms] : report.phase_ms) {
      if (!first_cost) out += ", ";
      first_cost = false;
      out += strutil::quote(phase) + ": " + json_number(ms);
    }
    out += "}, \"roots\": [";
    for (std::size_t i = 0; i < report.root_costs.size(); ++i) {
      const RootCost& rc = report.root_costs[i];
      if (i != 0) out += ", ";
      out += "{";
      out += "\"root\": " + strutil::quote(rc.root) + ", ";
      out += "\"interp_ms\": " + json_number(rc.interp_ms) + ", ";
      out += "\"solve_ms\": " + json_number(rc.solve_ms) + ", ";
      out += "\"paths\": " + std::to_string(rc.paths) + ", ";
      out += "\"objects\": " + std::to_string(rc.objects) + ", ";
      out += "\"solver_calls\": " + std::to_string(rc.solver_calls) + ", ";
      out += "\"solver_cache_hits\": " +
             std::to_string(rc.solver_cache_hits) + ", ";
      out += std::string("\"pruned\": ") + (rc.pruned ? "true" : "false");
      out += "}";
    }
    out += "]}";
  }
  // Present only on profiled scans: the one place the report carries
  // nondeterministic data (peak RSS, wall-clock samples). Unprofiled
  // reports of the same app stay byte-identical run to run.
  if (report.profiled) {
    out += ", \"profile\": " + profile::to_json(report.profile);
  }
  out += ", \"errors\": [";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    const ScanError& e = report.errors[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"phase\": " + strutil::quote(e.phase) + ", ";
    out += "\"root\": " + strutil::quote(e.root) + ", ";
    out += "\"message\": " + strutil::quote(e.message) + ", ";
    out += std::string("\"transient\": ") + (e.transient ? "true" : "false");
    out += "}";
  }
  out += "], \"disagreements\": [";
  for (std::size_t i = 0; i < report.disagreements.size(); ++i) {
    const ScanError& e = report.disagreements[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"root\": " + strutil::quote(e.root) + ", ";
    out += "\"message\": " + strutil::quote(e.message);
    out += "}";
  }
  out += "], \"lints\": [";
  for (std::size_t i = 0; i < report.lints.size(); ++i) {
    const staticpass::LintFinding& l = report.lints[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"rule\": " + strutil::quote(l.rule) + ", ";
    out += "\"severity\": \"" +
           std::string(staticpass::severity_name(l.severity)) + "\", ";
    out += "\"location\": " + strutil::quote(l.location) + ", ";
    out += "\"message\": " + strutil::quote(l.message) + ", ";
    out += "\"evidence\": " + strutil::quote(l.evidence);
    out += "}";
  }
  out += "], \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"sink\": " + strutil::quote(f.sink_name) + ", ";
    out += "\"location\": " + strutil::quote(f.location) + ", ";
    out += "\"file\": " + strutil::quote(f.file) + ", ";
    out += "\"line\": " + std::to_string(f.line) + ", ";
    out += "\"source_line\": " + strutil::quote(f.source_line) + ", ";
    out += "\"dst\": " + strutil::quote(f.dst_sexpr) + ", ";
    out += "\"reachability\": " + strutil::quote(f.reach_sexpr) + ", ";
    out += "\"witness\": " + strutil::quote(f.witness) + ", ";
    out += "\"fingerprint\": " + strutil::quote(f.fingerprint);
    if (!f.evidence.empty()) {
      out += ", \"evidence\": " + evidence_json(f.evidence);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string to_text(const ScanReport& report) {
  std::string out;
  out += "application : " + report.app_name + "\n";
  if (!report.trace_id.empty()) {
    out += "trace       : " + report.trace_id + "\n";
  }
  out += "verdict     : " + std::string(verdict_name(report.verdict)) + "\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "analysis    : %llu LoC total, %llu analyzed (%.2f%%), "
                "%zu root(s)\n",
                static_cast<unsigned long long>(report.total_loc),
                static_cast<unsigned long long>(report.analyzed_loc),
                report.analyzed_percent, report.roots);
  out += line;
  std::snprintf(line, sizeof(line),
                "execution   : %zu paths, %zu objects (%.1f/path), %.2f MB, "
                "%.3fs, %zu solver call(s)\n",
                report.paths, report.objects, report.objects_per_path,
                report.memory_mb, report.seconds, report.solver_calls);
  out += line;
  if (!report.phase_ms.empty()) {
    out += "cost        :";
    for (const char* phase :
         {"parse", "locality", "staticpass", "interp", "solve"}) {
      const auto it = report.phase_ms.find(phase);
      if (it == report.phase_ms.end()) continue;
      std::snprintf(line, sizeof(line), " %s=%.1fms", phase, it->second);
      out += line;
    }
    out += "\n";
  }
  if (report.budget_exhausted) {
    out += "warning     : analysis budget exhausted; results are partial\n";
  }
  if (report.deadline_exceeded) {
    out += "warning     : scan deadline exceeded; results are partial\n";
  }
  if (report.parse_errors > 0) {
    out += "warning     : " + std::to_string(report.parse_errors) +
           " parse error(s)\n";
  }
  if (report.analysis_errors > 0) {
    out += "warning     : " + std::to_string(report.analysis_errors) +
           " analysis diagnostic(s)\n";
  }
  if (!report.diagnostics_by_phase.empty()) {
    out += "diagnostics :";
    for (const auto& [phase, count] : report.diagnostics_by_phase) {
      out += " " + (phase.empty() ? std::string("<unattributed>") : phase) +
             "=" + std::to_string(count);
    }
    out += "\n";
  }
  if (report.solver_retries > 0) {
    out += "warning     : " + std::to_string(report.solver_retries) +
           " solver retr" + (report.solver_retries == 1 ? "y" : "ies") +
           " with escalated timeouts\n";
  }
  for (const ScanError& e : report.errors) {
    out += "error       : [" + e.phase + "] ";
    if (!e.root.empty()) out += e.root + ": ";
    out += e.message;
    if (e.transient) out += " (transient)";
    out += "\n";
  }
  for (const ScanError& e : report.disagreements) {
    out += "disagreement: " + e.root + ": " + e.message + "\n";
  }
  for (const staticpass::LintFinding& l : report.lints) {
    out += "lint        : [" + l.rule + "/" +
           std::string(staticpass::severity_name(l.severity)) + "] " +
           l.location + ": " + l.message + "\n";
    if (!l.evidence.empty()) out += "              " + l.evidence + "\n";
  }
  for (const Finding& f : report.findings) {
    out += "finding     : " + f.sink_name + " at " + f.location + "\n";
    out += "              " + f.source_line + "\n";
    out += "              exploitable when " + f.witness + "\n";
    out += "              fingerprint " + f.fingerprint + "\n";
    const FindingEvidence& ev = f.evidence;
    if (ev.empty()) continue;
    if (!ev.taint_path.empty()) {
      out += "  taint path:\n";
      for (const EvidenceHop& hop : ev.taint_path) {
        out += "    " + hop.kind + " " + hop.description;
        if (!hop.location.empty()) out += "  [" + hop.location + "]";
        out += "\n";
      }
    }
    if (!ev.guards.empty()) {
      out += "  guarded by:\n";
      for (const EvidenceGuard& g : ev.guards) {
        out += "    " + g.sexpr;
        if (!g.location.empty()) out += "  [" + g.location + "]";
        out += "\n";
      }
    }
    if (!ev.upload_filename.empty()) {
      out += "  attack      : upload \"" + ev.upload_filename +
             "\" -> written to \"" + ev.destination + "\"";
      if (!ev.destination_complete) out += " (partially resolved)";
      out += "\n";
    }
  }
  return out;
}

namespace {

// Splits a "file:line" (lint) or "file:line:col" (finding) rendering
// into artifact uri + 1-based line. Unparsable text keeps the whole
// string as the uri with line 0 (region suppressed).
sarif::Location split_location(std::string_view rendered) {
  sarif::Location loc;
  loc.uri = std::string(rendered);
  // Walk colon-separated numeric suffixes off the right (at most two:
  // column, then line).
  std::string_view rest = rendered;
  std::uint32_t numbers[2] = {0, 0};
  int taken = 0;
  while (taken < 2) {
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos) break;
    const std::optional<std::int64_t> n =
        strutil::parse_int(rest.substr(colon + 1));
    if (!n.has_value() || *n < 0) break;
    numbers[taken++] = static_cast<std::uint32_t>(*n);
    rest = rest.substr(0, colon);
  }
  if (taken == 0) return loc;
  loc.uri = std::string(rest);
  // With one numeric suffix it is the line; with two, the line is the
  // first of the pair (the rightmost number was the column).
  loc.line = taken == 1 ? numbers[0] : numbers[1];
  return loc;
}

std::string_view lint_rule_name(std::string_view rule) {
  if (rule == "UC101") return "UnrestrictedUpload";
  if (rule == "UC102") return "ExtensionBlacklist";
  if (rule == "UC103") return "CaseSensitiveCompare";
  if (rule == "UC104") return "DoubleExtensionSplit";
  if (rule == "UC105") return "ForcedExecutableDest";
  if (rule == "UC106") return "RawClientFilename";
  if (rule == "UC107") return "HelperChainTaint";
  if (rule == "UC108") return "EscapedCallSite";
  return "UnknownLint";
}

std::string_view lint_rule_description(std::string_view rule) {
  if (rule == "UC101") {
    return "A tainted upload filename reaches a file-write sink with no "
           "recognized guard.";
  }
  if (rule == "UC102") {
    return "Upload extension filtered with a deny-list; unlisted "
           "executable extensions pass.";
  }
  if (rule == "UC103") {
    return "Extension compared case-sensitively; \".PhP\" bypasses the "
           "check.";
  }
  if (rule == "UC104") {
    return "Extension taken from a fixed explode() segment; "
           "\"a.php.jpg\" style double extensions bypass the check.";
  }
  if (rule == "UC105") {
    return "Upload destination is forced to end with a server-executable "
           "extension.";
  }
  if (rule == "UC106") {
    return "Client-supplied filename used in the destination path "
           "without sanitization.";
  }
  if (rule == "UC107") {
    return "Upload taint can reach a file-write sink through a "
           "helper-function chain that is not proven safe.";
  }
  if (rule == "UC108") {
    return "A dynamic/variable call or callback builtin defeats static "
           "analysis at this call site.";
  }
  return "Unknown lint rule.";
}

std::string_view severity_level(staticpass::Severity s) {
  switch (s) {
    case staticpass::Severity::kError: return "error";
    case staticpass::Severity::kWarning: return "warning";
    case staticpass::Severity::kInfo: return "note";
  }
  return "warning";
}

}  // namespace

sarif::Log to_sarif(const ScanReport& report) {
  sarif::Log log;
  log.tool.name = "uchecker";
  log.tool.version = "1.0.0";
  log.tool.information_uri =
      "https://www.usenix.org/conference/usenixsecurity19/presentation/huang";

  // Declare the full rule vocabulary up front so every result's ruleId
  // resolves regardless of which rules fired in this particular scan.
  log.rules.push_back(
      {"UC001", "UnrestrictedFileUpload",
       "An attacker-controlled upload can be written with a "
       "server-executable extension (verified satisfiable by the SMT "
       "solver)."});
  for (const char* rule : {"UC101", "UC102", "UC103", "UC104", "UC105",
                           "UC106", "UC107", "UC108"}) {
    log.rules.push_back({rule, std::string(lint_rule_name(rule)),
                         std::string(lint_rule_description(rule))});
  }

  for (const Finding& f : report.findings) {
    sarif::Result result;
    result.rule_id = "UC001";
    result.level = "error";
    result.message = "Unrestricted file upload: attacker-controlled data "
                     "reaches " +
                     f.sink_name + "() with a server-executable extension";
    if (!f.evidence.upload_filename.empty()) {
      result.message += "; uploading \"" + f.evidence.upload_filename +
                        "\" writes \"" + f.evidence.destination + "\"";
    }
    result.message += ".";
    result.location.uri = f.file.empty() ? report.app_name : f.file;
    result.location.line = f.line;
    result.fingerprints.emplace_back("uchecker/v1", f.fingerprint);
    if (!f.evidence.taint_path.empty()) {
      sarif::CodeFlow flow;
      for (const EvidenceHop& hop : f.evidence.taint_path) {
        sarif::Location step;
        step.uri = hop.file.empty() ? result.location.uri : hop.file;
        step.line = hop.line;
        step.message = hop.kind + ": " + hop.description;
        flow.locations.push_back(std::move(step));
      }
      sarif::Location sink_step = result.location;
      sink_step.message = "sink: " + f.sink_name + "()";
      flow.locations.push_back(std::move(sink_step));
      result.code_flows.push_back(std::move(flow));
    }
    log.results.push_back(std::move(result));
  }

  for (const staticpass::LintFinding& l : report.lints) {
    sarif::Result result;
    result.rule_id = l.rule;
    result.level = std::string(severity_level(l.severity));
    result.message = l.message;
    if (!l.evidence.empty()) result.message += " (" + l.evidence + ")";
    result.location = split_location(l.location);
    log.results.push_back(std::move(result));
  }
  return log;
}

}  // namespace uchecker::core
