#include "core/detector/report_io.h"

#include <cmath>

#include "support/strutil.h"

namespace uchecker::core {
namespace {

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

// Serializes one finding's provenance bundle (ScanOptions::explain).
std::string evidence_json(const FindingEvidence& ev) {
  std::string out = "{\"taint_path\": [";
  for (std::size_t i = 0; i < ev.taint_path.size(); ++i) {
    const EvidenceHop& hop = ev.taint_path[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"kind\": " + strutil::quote(hop.kind) + ", ";
    out += "\"description\": " + strutil::quote(hop.description) + ", ";
    out += "\"file\": " + strutil::quote(hop.file) + ", ";
    out += "\"line\": " + std::to_string(hop.line) + ", ";
    out += "\"location\": " + strutil::quote(hop.location);
    out += "}";
  }
  out += "], \"guards\": [";
  for (std::size_t i = 0; i < ev.guards.size(); ++i) {
    const EvidenceGuard& g = ev.guards[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"sexpr\": " + strutil::quote(g.sexpr) + ", ";
    out += "\"file\": " + strutil::quote(g.file) + ", ";
    out += "\"line\": " + std::to_string(g.line) + ", ";
    out += "\"location\": " + strutil::quote(g.location);
    out += "}";
  }
  out += "], \"bindings\": [";
  for (std::size_t i = 0; i < ev.bindings.size(); ++i) {
    const WitnessBinding& b = ev.bindings[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"symbol\": " + strutil::quote(b.symbol) + ", ";
    out += "\"raw\": " + strutil::quote(b.raw) + ", ";
    out += "\"decoded\": " + strutil::quote(b.decoded);
    out += "}";
  }
  out += "], \"upload_filename\": " + strutil::quote(ev.upload_filename);
  out += ", \"destination\": " + strutil::quote(ev.destination);
  out += std::string(", \"destination_complete\": ") +
         (ev.destination_complete ? "true" : "false");
  out += "}";
  return out;
}

}  // namespace

std::string_view verdict_slug(Verdict v) {
  switch (v) {
    case Verdict::kVulnerable: return "vulnerable";
    case Verdict::kNotVulnerable: return "not_vulnerable";
    case Verdict::kAnalysisIncomplete: return "analysis_incomplete";
    case Verdict::kAnalysisError: return "analysis_error";
    case Verdict::kAnalysisDisagreement: return "analysis_disagreement";
  }
  return "invalid";
}

std::string to_json(const ScanReport& report) {
  std::string out = "{";
  out += "\"app\": " + strutil::quote(report.app_name) + ", ";
  out += "\"verdict\": \"" + std::string(verdict_slug(report.verdict)) +
         "\", ";
  out += "\"stats\": {";
  out += "\"total_loc\": " + std::to_string(report.total_loc) + ", ";
  out += "\"analyzed_loc\": " + std::to_string(report.analyzed_loc) + ", ";
  out += "\"analyzed_percent\": " + json_number(report.analyzed_percent) + ", ";
  out += "\"paths\": " + std::to_string(report.paths) + ", ";
  out += "\"objects\": " + std::to_string(report.objects) + ", ";
  out += "\"objects_per_path\": " + json_number(report.objects_per_path) + ", ";
  out += "\"memory_mb\": " + json_number(report.memory_mb) + ", ";
  out += "\"seconds\": " + json_number(report.seconds) + ", ";
  out += "\"roots\": " + std::to_string(report.roots) + ", ";
  out += "\"sink_hits\": " + std::to_string(report.sink_hits) + ", ";
  out += "\"solver_calls\": " + std::to_string(report.solver_calls) + ", ";
  out += "\"solver_retries\": " + std::to_string(report.solver_retries) + ", ";
  out += "\"cons_hits\": " + std::to_string(report.cons_hits) + ", ";
  out += "\"solver_cache_hits\": " +
         std::to_string(report.solver_cache_hits) + ", ";
  out += std::string("\"budget_exhausted\": ") +
         (report.budget_exhausted ? "true" : "false") + ", ";
  out += std::string("\"deadline_exceeded\": ") +
         (report.deadline_exceeded ? "true" : "false") + ", ";
  out += "\"parse_errors\": " + std::to_string(report.parse_errors) + ", ";
  out += "\"analysis_errors\": " + std::to_string(report.analysis_errors) + ", ";
  out += "\"pruned_roots\": " + std::to_string(report.pruned_roots);
  out += "}, \"diagnostics_by_phase\": {";
  bool first_phase = true;
  for (const auto& [phase, count] : report.diagnostics_by_phase) {
    if (!first_phase) out += ", ";
    first_phase = false;
    out += strutil::quote(phase) + ": " + std::to_string(count);
  }
  out += "}, \"errors\": [";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    const ScanError& e = report.errors[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"phase\": " + strutil::quote(e.phase) + ", ";
    out += "\"root\": " + strutil::quote(e.root) + ", ";
    out += "\"message\": " + strutil::quote(e.message) + ", ";
    out += std::string("\"transient\": ") + (e.transient ? "true" : "false");
    out += "}";
  }
  out += "], \"disagreements\": [";
  for (std::size_t i = 0; i < report.disagreements.size(); ++i) {
    const ScanError& e = report.disagreements[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"root\": " + strutil::quote(e.root) + ", ";
    out += "\"message\": " + strutil::quote(e.message);
    out += "}";
  }
  out += "], \"lints\": [";
  for (std::size_t i = 0; i < report.lints.size(); ++i) {
    const staticpass::LintFinding& l = report.lints[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"rule\": " + strutil::quote(l.rule) + ", ";
    out += "\"severity\": \"" +
           std::string(staticpass::severity_name(l.severity)) + "\", ";
    out += "\"location\": " + strutil::quote(l.location) + ", ";
    out += "\"message\": " + strutil::quote(l.message) + ", ";
    out += "\"evidence\": " + strutil::quote(l.evidence);
    out += "}";
  }
  out += "], \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i != 0) out += ", ";
    out += "{";
    out += "\"sink\": " + strutil::quote(f.sink_name) + ", ";
    out += "\"location\": " + strutil::quote(f.location) + ", ";
    out += "\"file\": " + strutil::quote(f.file) + ", ";
    out += "\"line\": " + std::to_string(f.line) + ", ";
    out += "\"source_line\": " + strutil::quote(f.source_line) + ", ";
    out += "\"dst\": " + strutil::quote(f.dst_sexpr) + ", ";
    out += "\"reachability\": " + strutil::quote(f.reach_sexpr) + ", ";
    out += "\"witness\": " + strutil::quote(f.witness) + ", ";
    out += "\"fingerprint\": " + strutil::quote(f.fingerprint);
    if (!f.evidence.empty()) {
      out += ", \"evidence\": " + evidence_json(f.evidence);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string to_text(const ScanReport& report) {
  std::string out;
  out += "application : " + report.app_name + "\n";
  out += "verdict     : " + std::string(verdict_name(report.verdict)) + "\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "analysis    : %llu LoC total, %llu analyzed (%.2f%%), "
                "%zu root(s)\n",
                static_cast<unsigned long long>(report.total_loc),
                static_cast<unsigned long long>(report.analyzed_loc),
                report.analyzed_percent, report.roots);
  out += line;
  std::snprintf(line, sizeof(line),
                "execution   : %zu paths, %zu objects (%.1f/path), %.2f MB, "
                "%.3fs, %zu solver call(s)\n",
                report.paths, report.objects, report.objects_per_path,
                report.memory_mb, report.seconds, report.solver_calls);
  out += line;
  if (report.budget_exhausted) {
    out += "warning     : analysis budget exhausted; results are partial\n";
  }
  if (report.deadline_exceeded) {
    out += "warning     : scan deadline exceeded; results are partial\n";
  }
  if (report.parse_errors > 0) {
    out += "warning     : " + std::to_string(report.parse_errors) +
           " parse error(s)\n";
  }
  if (report.analysis_errors > 0) {
    out += "warning     : " + std::to_string(report.analysis_errors) +
           " analysis diagnostic(s)\n";
  }
  if (!report.diagnostics_by_phase.empty()) {
    out += "diagnostics :";
    for (const auto& [phase, count] : report.diagnostics_by_phase) {
      out += " " + (phase.empty() ? std::string("<unattributed>") : phase) +
             "=" + std::to_string(count);
    }
    out += "\n";
  }
  if (report.solver_retries > 0) {
    out += "warning     : " + std::to_string(report.solver_retries) +
           " solver retr" + (report.solver_retries == 1 ? "y" : "ies") +
           " with escalated timeouts\n";
  }
  for (const ScanError& e : report.errors) {
    out += "error       : [" + e.phase + "] ";
    if (!e.root.empty()) out += e.root + ": ";
    out += e.message;
    if (e.transient) out += " (transient)";
    out += "\n";
  }
  for (const ScanError& e : report.disagreements) {
    out += "disagreement: " + e.root + ": " + e.message + "\n";
  }
  for (const staticpass::LintFinding& l : report.lints) {
    out += "lint        : [" + l.rule + "/" +
           std::string(staticpass::severity_name(l.severity)) + "] " +
           l.location + ": " + l.message + "\n";
    if (!l.evidence.empty()) out += "              " + l.evidence + "\n";
  }
  for (const Finding& f : report.findings) {
    out += "finding     : " + f.sink_name + " at " + f.location + "\n";
    out += "              " + f.source_line + "\n";
    out += "              exploitable when " + f.witness + "\n";
    out += "              fingerprint " + f.fingerprint + "\n";
    const FindingEvidence& ev = f.evidence;
    if (ev.empty()) continue;
    if (!ev.taint_path.empty()) {
      out += "  taint path:\n";
      for (const EvidenceHop& hop : ev.taint_path) {
        out += "    " + hop.kind + " " + hop.description;
        if (!hop.location.empty()) out += "  [" + hop.location + "]";
        out += "\n";
      }
    }
    if (!ev.guards.empty()) {
      out += "  guarded by:\n";
      for (const EvidenceGuard& g : ev.guards) {
        out += "    " + g.sexpr;
        if (!g.location.empty()) out += "  [" + g.location + "]";
        out += "\n";
      }
    }
    if (!ev.upload_filename.empty()) {
      out += "  attack      : upload \"" + ev.upload_filename +
             "\" -> written to \"" + ev.destination + "\"";
      if (!ev.destination_complete) out += " (partially resolved)";
      out += "\n";
    }
  }
  return out;
}

namespace {

// Splits a "file:line" (lint) or "file:line:col" (finding) rendering
// into artifact uri + 1-based line. Unparsable text keeps the whole
// string as the uri with line 0 (region suppressed).
sarif::Location split_location(std::string_view rendered) {
  sarif::Location loc;
  loc.uri = std::string(rendered);
  // Walk colon-separated numeric suffixes off the right (at most two:
  // column, then line).
  std::string_view rest = rendered;
  std::uint32_t numbers[2] = {0, 0};
  int taken = 0;
  while (taken < 2) {
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos) break;
    const std::optional<std::int64_t> n =
        strutil::parse_int(rest.substr(colon + 1));
    if (!n.has_value() || *n < 0) break;
    numbers[taken++] = static_cast<std::uint32_t>(*n);
    rest = rest.substr(0, colon);
  }
  if (taken == 0) return loc;
  loc.uri = std::string(rest);
  // With one numeric suffix it is the line; with two, the line is the
  // first of the pair (the rightmost number was the column).
  loc.line = taken == 1 ? numbers[0] : numbers[1];
  return loc;
}

std::string_view lint_rule_name(std::string_view rule) {
  if (rule == "UC101") return "UnrestrictedUpload";
  if (rule == "UC102") return "ExtensionBlacklist";
  if (rule == "UC103") return "CaseSensitiveCompare";
  if (rule == "UC104") return "DoubleExtensionSplit";
  if (rule == "UC105") return "ForcedExecutableDest";
  if (rule == "UC106") return "RawClientFilename";
  return "UnknownLint";
}

std::string_view lint_rule_description(std::string_view rule) {
  if (rule == "UC101") {
    return "A tainted upload filename reaches a file-write sink with no "
           "recognized guard.";
  }
  if (rule == "UC102") {
    return "Upload extension filtered with a deny-list; unlisted "
           "executable extensions pass.";
  }
  if (rule == "UC103") {
    return "Extension compared case-sensitively; \".PhP\" bypasses the "
           "check.";
  }
  if (rule == "UC104") {
    return "Extension taken from a fixed explode() segment; "
           "\"a.php.jpg\" style double extensions bypass the check.";
  }
  if (rule == "UC105") {
    return "Upload destination is forced to end with a server-executable "
           "extension.";
  }
  if (rule == "UC106") {
    return "Client-supplied filename used in the destination path "
           "without sanitization.";
  }
  return "Unknown lint rule.";
}

std::string_view severity_level(staticpass::Severity s) {
  switch (s) {
    case staticpass::Severity::kError: return "error";
    case staticpass::Severity::kWarning: return "warning";
    case staticpass::Severity::kInfo: return "note";
  }
  return "warning";
}

}  // namespace

sarif::Log to_sarif(const ScanReport& report) {
  sarif::Log log;
  log.tool.name = "uchecker";
  log.tool.version = "1.0.0";
  log.tool.information_uri =
      "https://www.usenix.org/conference/usenixsecurity19/presentation/huang";

  // Declare the full rule vocabulary up front so every result's ruleId
  // resolves regardless of which rules fired in this particular scan.
  log.rules.push_back(
      {"UC001", "UnrestrictedFileUpload",
       "An attacker-controlled upload can be written with a "
       "server-executable extension (verified satisfiable by the SMT "
       "solver)."});
  for (const char* rule :
       {"UC101", "UC102", "UC103", "UC104", "UC105", "UC106"}) {
    log.rules.push_back({rule, std::string(lint_rule_name(rule)),
                         std::string(lint_rule_description(rule))});
  }

  for (const Finding& f : report.findings) {
    sarif::Result result;
    result.rule_id = "UC001";
    result.level = "error";
    result.message = "Unrestricted file upload: attacker-controlled data "
                     "reaches " +
                     f.sink_name + "() with a server-executable extension";
    if (!f.evidence.upload_filename.empty()) {
      result.message += "; uploading \"" + f.evidence.upload_filename +
                        "\" writes \"" + f.evidence.destination + "\"";
    }
    result.message += ".";
    result.location.uri = f.file.empty() ? report.app_name : f.file;
    result.location.line = f.line;
    result.fingerprints.emplace_back("uchecker/v1", f.fingerprint);
    if (!f.evidence.taint_path.empty()) {
      sarif::CodeFlow flow;
      for (const EvidenceHop& hop : f.evidence.taint_path) {
        sarif::Location step;
        step.uri = hop.file.empty() ? result.location.uri : hop.file;
        step.line = hop.line;
        step.message = hop.kind + ": " + hop.description;
        flow.locations.push_back(std::move(step));
      }
      sarif::Location sink_step = result.location;
      sink_step.message = "sink: " + f.sink_name + "()";
      flow.locations.push_back(std::move(sink_step));
      result.code_flows.push_back(std::move(flow));
    }
    log.results.push_back(std::move(result));
  }

  for (const staticpass::LintFinding& l : report.lints) {
    sarif::Result result;
    result.rule_id = l.rule;
    result.level = std::string(severity_level(l.severity));
    result.message = l.message;
    if (!l.evidence.empty()) result.message += " (" + l.evidence + ")";
    result.location = split_location(l.location);
    log.results.push_back(std::move(result));
  }
  return log;
}

}  // namespace uchecker::core
