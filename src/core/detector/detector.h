// End-to-end UChecker pipeline (paper Fig. 2):
//   parsing -> locality analysis -> AST-based symbolic execution ->
//   vulnerability modeling -> Z3 translation -> SMT verification.
//
// Detector::scan() runs the whole pipeline over one application (a set
// of PHP sources) and produces the measurements of paper Table III:
// LoC, % of LoC analyzed, paths, objects, objects/path, memory, time,
// and the verdict, plus per-finding source locations and witnesses.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/callgraph/callgraph.h"
#include "core/callgraph/locality.h"
#include "core/interp/interp.h"
#include "core/staticpass/staticpass.h"
#include "core/vulnmodel/vulnmodel.h"
#include "support/diag.h"
#include "support/profile.h"
#include "support/source.h"

namespace uchecker::telemetry {
class FlightRecorder;
class ScanTrace;
class Telemetry;
}  // namespace uchecker::telemetry

namespace uchecker::core {

// Bumped whenever a change can alter verdicts, findings or the report
// JSON schema. Persistent caches (scand's verdict and solver stores)
// key on it, so an engine upgrade cold-starts them instead of replaying
// stale analysis results.
inline constexpr std::string_view kEngineVersion = "uchecker-pr10";

struct ScanOptions {
  Budget budget;
  VulnModelOptions vuln;
  LocalityOptions locality;
  SinkRegistry sinks;        // copy()/rename() included by default
  bool run_locality = true;  // ablation switch for bench_locality
  // Pre-symbolic static pass (core/staticpass). `prefilter` skips
  // symbolic execution for roots the pass proves safe; `lint` collects
  // the pass's structured findings into ScanReport::lints even when
  // pruning is off; `crosscheck` runs *both* engines on every root and
  // reports any root the pass would prune but the symbolic engine finds
  // vulnerable as Verdict::kAnalysisDisagreement (a soundness oracle —
  // see the contract in core/staticpass/staticpass.h).
  bool prefilter = true;
  bool lint = true;
  bool crosscheck = false;
  // Inter-procedural function summaries (core/staticpass/summaries.h):
  // calls into user functions resolve by summary instantiation instead
  // of degrading the root to the symbolic path, and roots whose whole
  // transitive callee set is summary-proven sink-free are pruned before
  // symbolic execution. Off reproduces the purely intraprocedural pass
  // (an ablation switch; verdicts are identical either way — summaries
  // only change pruning and lints, never interpreter results).
  bool summaries = true;
  // Finding provenance: attach a source→sink taint path, the path's
  // branch guards, and a decoded attack reconstruction to every finding
  // (and fill Finding::evidence). Purely additive — verdicts and every
  // other report field are byte-identical with it on or off; off keeps
  // the vulnerability model on its zero-overhead path.
  bool explain = false;
  // Optional externally-owned solver query cache. When set it replaces
  // the detector's internal one, letting several Detector instances (a
  // service handling per-request option variants) share one fleet-wide
  // cache — and letting a daemon preload it from disk and drain newly
  // solved outcomes for incremental persistence. The cache locks
  // internally; the pointee must outlive every scan.
  SolverQueryCache* query_cache = nullptr;
  // Optional observability handle (see support/telemetry.h). When set,
  // every scan records a phase-scoped span tree, interpreter progress
  // samples and solver latencies into a per-scan trace, and shared
  // counters/histograms into the registry. Null (the default) keeps the
  // pipeline on its zero-overhead path.
  telemetry::Telemetry* telemetry = nullptr;
  // Request trace ID correlating this scan with the request that caused
  // it (minted by scanctl or the scand server). Stamped into the per-scan
  // trace, the report and metric exemplars. When empty and telemetry is
  // attached, Detector::scan mints one so every traced scan is
  // addressable; with no telemetry it stays empty (zero-overhead path).
  std::string trace_id;
  // Engine introspection (support/profile.h): attribute forked paths to
  // source fork sites, solver wall time to sinks, and heap growth to
  // fork depth, per analysis root. Incomplete roots additionally get a
  // budget post-mortem. Purely additive — verdicts and every other
  // report field are byte-identical with it on or off; off keeps the
  // interpreter and solver on their zero-overhead paths.
  bool profile = false;
  // Parse-phase worker threads. 0 = auto (hardware concurrency capped
  // at 8); 1 = serial parsing on the scanning thread. Parsing is
  // per-file independent (one arena, one diagnostic sink per file; see
  // phpparse/parse_pool.h), so thread count never changes verdicts,
  // diagnostics, or their order — only wall-clock time.
  std::size_t parse_threads = 0;
  // Optional per-worker flight recorder (support/flight_recorder.h):
  // phase transitions, progress samples and solver calls are mirrored
  // into its lock-free ring so a watchdog can dump what a wedged scan
  // was doing. Requires telemetry to be attached (events flow through
  // the scan trace). The pointee must outlive the scan.
  telemetry::FlightRecorder* flight = nullptr;
};

enum class Verdict : std::uint8_t {
  kVulnerable,
  kNotVulnerable,
  kAnalysisIncomplete,  // budget/deadline exhausted before a verdict
                        // (paper's Cimy-User-Extra-Fields false negative)
  kAnalysisError,       // a pipeline phase failed; report is partial and
                        // the errors list says which phase and why
  kAnalysisDisagreement,  // crosscheck mode: the static pass proved a root
                          // safe that the symbolic engine found vulnerable
};

[[nodiscard]] std::string_view verdict_name(Verdict v);

// One contained pipeline failure. A broken file or analysis root degrades
// the scan to a partial report carrying these instead of killing it.
struct ScanError {
  std::string phase;    // "parse"|"locality"|"interp"|"translate"|"solve"|"scan"
  std::string root;     // file or analysis-root name; "" for app-scoped errors
  std::string message;
  bool transient = false;  // a retry may clear it (OOM, injected transient)
};

// One rendered hop of a finding's source→sink taint path: which heap
// object carries the taint, and the PHP line it came from.
struct EvidenceHop {
  std::string kind;         // "symbol" | "concrete" | "func" | "op" | "array"
  std::string description;  // operator / builtin / symbol name / value
  std::string file;         // source file name ("" when unknown)
  std::uint32_t line = 0;   // 1-based; 0 when unknown
  std::string location;     // "file:line" rendering ("" when unknown)
};

// One rendered conjunct of the finding's path constraint.
struct EvidenceGuard {
  std::string sexpr;        // e.g. (== s_files_f_ext "php")
  std::string file;
  std::uint32_t line = 0;
  std::string location;     // "file:line"
};

// The full provenance bundle of one finding (ScanOptions::explain).
struct FindingEvidence {
  std::vector<EvidenceHop> taint_path;  // ordered $_FILES source → sink
  std::vector<EvidenceGuard> guards;    // path constraint, program order
  std::vector<WitnessBinding> bindings; // decoded Z3 model assignments
  std::string upload_filename;          // e.g. payload.php5
  std::string destination;              // resolved destination string
  bool destination_complete = false;

  [[nodiscard]] bool empty() const {
    return taint_path.empty() && guards.empty() && bindings.empty() &&
           upload_filename.empty() && destination.empty();
  }
};

struct Finding {
  std::string sink_name;
  std::string location;     // "file:line:col"
  std::string file;         // source file name (SARIF artifact uri)
  std::uint32_t line = 0;   // 1-based sink line; 0 when unknown
  std::string source_line;  // the vulnerable line of PHP
  std::string dst_sexpr;
  std::string reach_sexpr;
  std::string witness;      // Z3 model, e.g. s_ext = "php"
  // Stable cross-scan identity: hash of (app, sink name, canonical dst
  // s-expression). Survives line-number churn from unrelated edits, so
  // CI can dedup findings across scans (SARIF partialFingerprints).
  std::string fingerprint;
  // Populated only under ScanOptions::explain; empty() otherwise.
  FindingEvidence evidence;
};

// The fingerprint scheme behind Finding::fingerprint (FNV-1a 64,
// rendered as 16 hex digits). Exposed so tests and external triage
// tooling can recompute it.
[[nodiscard]] std::string finding_fingerprint(std::string_view app,
                                              std::string_view sink,
                                              std::string_view dst_sexpr);

// Per-analysis-root cost attribution: where one root's wall time went.
// Collected whenever telemetry is attached; surfaced in the report JSON
// ("cost" object), audit_report's most-expensive-roots table and
// scanctl top.
struct RootCost {
  std::string root;           // analysis-root name (file or entry point)
  double interp_ms = 0.0;     // symbolic execution wall time
  double solve_ms = 0.0;      // vulnerability modeling + Z3 wall time
  std::size_t paths = 0;
  std::size_t objects = 0;
  std::size_t solver_calls = 0;
  std::size_t solver_cache_hits = 0;
  bool pruned = false;        // static pass skipped symbolic execution
};

struct ScanReport {
  std::string app_name;
  // The request trace ID the scan ran under ("" when untraced). Carried
  // through the report JSON so a stored report links back to the scand
  // log lines and Chrome-trace spans of the request that computed it.
  std::string trace_id;
  Verdict verdict = Verdict::kNotVulnerable;
  std::vector<Finding> findings;

  // Table III columns.
  std::uint64_t total_loc = 0;
  std::uint64_t analyzed_loc = 0;
  double analyzed_percent = 0.0;
  std::size_t paths = 0;
  std::size_t objects = 0;
  double objects_per_path = 0.0;
  double memory_mb = 0.0;
  double seconds = 0.0;

  // Extra diagnostics.
  std::size_t roots = 0;
  std::size_t sink_hits = 0;
  std::size_t solver_calls = 0;
  std::size_t solver_retries = 0;  // escalated re-solves of unknown outcomes
  // Sharing/memoization effectiveness (summed over analysis roots).
  std::size_t cons_hits = 0;          // heap-graph nodes answered by consing
  std::size_t solver_cache_hits = 0;  // sinks answered by the per-scan
                                      // cross-root solver query cache
  // Roots the static pass proved safe. With prefilter on these skip
  // symbolic execution; in crosscheck mode they are still executed and
  // the count says how many *would* be pruned.
  std::size_t pruned_roots = 0;
  // Inter-procedural summary layer effectiveness (ScanOptions::summaries).
  // Telemetry counters staticpass.summary_cache_hits,
  // staticpass.summary_pruned_roots and staticpass.escaped_calls mirror
  // these per scan.
  std::size_t summary_cache_hits = 0;    // memoized instantiation hits
  std::size_t summary_pruned_roots = 0;  // prunes that needed summaries
  std::size_t escaped_calls = 0;         // UC108 sites across all roots
  bool budget_exhausted = false;
  bool deadline_exceeded = false;  // wall-clock limit hit; report partial
  std::size_t parse_errors = 0;
  std::size_t analysis_errors = 0;  // interpreter-phase diagnostics
  // Error-severity diagnostics grouped by the pipeline phase that
  // reported them (same vocabulary as ScanError::phase).
  std::map<std::string, std::size_t> diagnostics_by_phase;

  // Process peak RSS (VmHWM) observed when the scan finished, and the
  // engine-accounted analysis bytes (heap-graph arenas + environment
  // memory summed over roots). Recorded uniformly on every scan; the
  // nondeterministic peak_rss_bytes is surfaced only inside the profile
  // JSON so unprofiled reports stay byte-reproducible.
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t accounted_bytes = 0;

  // Engine introspection (ScanOptions::profile): per-root fork-site,
  // solver and heap attribution plus budget post-mortems for incomplete
  // roots. `profiled` gates the report JSON "profile" object.
  bool profiled = false;
  profile::ExplosionProfile profile;

  // Cost attribution (filled on every scan; all zeros cost nothing to
  // serialize — report_io omits the "cost" object when empty).
  // Wall milliseconds per pipeline phase ("parse", "locality",
  // "staticpass", "interp", "solve").
  std::map<std::string, double> phase_ms;
  // Per-root breakdown, in analysis order.
  std::vector<RootCost> root_costs;

  // Contained failures (exceptions converted to data). Non-empty errors
  // with no vulnerable finding yield Verdict::kAnalysisError.
  std::vector<ScanError> errors;

  // Structured lint findings from the static pass (ScanOptions::lint).
  std::vector<staticpass::LintFinding> lints;

  // Crosscheck mode only: roots where the static pass and the symbolic
  // engine disagree (phase "crosscheck"). Any entry forces the verdict to
  // kAnalysisDisagreement.
  std::vector<ScanError> disagreements;

  [[nodiscard]] bool vulnerable() const {
    return verdict == Verdict::kVulnerable;
  }

  [[nodiscard]] bool degraded() const {
    return !errors.empty() || budget_exhausted || deadline_exceeded;
  }

  // True when every contained failure is transient (and there is at
  // least one): a fleet driver may retry the app once.
  [[nodiscard]] bool only_transient_errors() const {
    if (errors.empty()) return false;
    for (const ScanError& e : errors) {
      if (!e.transient) return false;
    }
    return true;
  }
};

// One source file of an application.
struct AppFile {
  std::string name;
  std::string content;
};

struct Application {
  std::string name;
  std::vector<AppFile> files;
};

class Detector {
 public:
  explicit Detector(ScanOptions options = {});

  // Never throws: any error escaping a pipeline phase is contained and
  // recorded on the report (see ScanReport::errors). The wall-clock
  // budget is options.budget.time_limit, whose clock starts here.
  [[nodiscard]] ScanReport scan(const Application& app) const;

  // As above, additionally bounded by `deadline` (the stricter of the
  // two applies). Fleet drivers use this for per-app timeouts and shared
  // cancellation.
  [[nodiscard]] ScanReport scan(const Application& app,
                                const Deadline& deadline) const;

  // The configuration this detector scans with (fleet drivers read the
  // attached telemetry handle from here).
  [[nodiscard]] const ScanOptions& options() const { return options_; }

  // The solver query cache scans actually use: the externally shared one
  // when ScanOptions::query_cache is set, the detector's own otherwise.
  [[nodiscard]] SolverQueryCache& query_cache() const {
    return options_.query_cache != nullptr ? *options_.query_cache
                                           : query_cache_;
  }

 private:
  void scan_impl(const Application& app, const Deadline& deadline,
                 ScanReport& report, telemetry::ScanTrace* trace) const;

  ScanOptions options_;
  // Solver outcomes shared across every scan this detector runs (and, in
  // parallel fleet drivers, across worker threads — the cache locks
  // internally). Apps assembled from the same boilerplate reach
  // byte-identical sink constraints, so a crawl pays for each distinct
  // constraint set once. Keys pin the full constraint text, making a hit
  // indistinguishable from a fresh solve; see SolverQueryCache.
  mutable SolverQueryCache query_cache_;
};

}  // namespace uchecker::core
