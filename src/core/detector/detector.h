// End-to-end UChecker pipeline (paper Fig. 2):
//   parsing -> locality analysis -> AST-based symbolic execution ->
//   vulnerability modeling -> Z3 translation -> SMT verification.
//
// Detector::scan() runs the whole pipeline over one application (a set
// of PHP sources) and produces the measurements of paper Table III:
// LoC, % of LoC analyzed, paths, objects, objects/path, memory, time,
// and the verdict, plus per-finding source locations and witnesses.
#pragma once

#include <string>
#include <vector>

#include "core/callgraph/callgraph.h"
#include "core/callgraph/locality.h"
#include "core/interp/interp.h"
#include "core/vulnmodel/vulnmodel.h"
#include "support/diag.h"
#include "support/source.h"

namespace uchecker::core {

struct ScanOptions {
  Budget budget;
  VulnModelOptions vuln;
  LocalityOptions locality;
  SinkRegistry sinks;        // extend to treat copy()/rename() as sinks
  bool run_locality = true;  // ablation switch for bench_locality
};

enum class Verdict : std::uint8_t {
  kVulnerable,
  kNotVulnerable,
  kAnalysisIncomplete,  // budget exhausted before a verdict (paper's
                        // Cimy-User-Extra-Fields false negative)
};

[[nodiscard]] std::string_view verdict_name(Verdict v);

struct Finding {
  std::string sink_name;
  std::string location;     // "file:line"
  std::string source_line;  // the vulnerable line of PHP
  std::string dst_sexpr;
  std::string reach_sexpr;
  std::string witness;      // Z3 model, e.g. s_ext = "php"
};

struct ScanReport {
  std::string app_name;
  Verdict verdict = Verdict::kNotVulnerable;
  std::vector<Finding> findings;

  // Table III columns.
  std::uint64_t total_loc = 0;
  std::uint64_t analyzed_loc = 0;
  double analyzed_percent = 0.0;
  std::size_t paths = 0;
  std::size_t objects = 0;
  double objects_per_path = 0.0;
  double memory_mb = 0.0;
  double seconds = 0.0;

  // Extra diagnostics.
  std::size_t roots = 0;
  std::size_t sink_hits = 0;
  std::size_t solver_calls = 0;
  bool budget_exhausted = false;
  std::size_t parse_errors = 0;

  [[nodiscard]] bool vulnerable() const {
    return verdict == Verdict::kVulnerable;
  }
};

// One source file of an application.
struct AppFile {
  std::string name;
  std::string content;
};

struct Application {
  std::string name;
  std::vector<AppFile> files;
};

class Detector {
 public:
  explicit Detector(ScanOptions options = {});

  [[nodiscard]] ScanReport scan(const Application& app) const;

 private:
  ScanOptions options_;
};

}  // namespace uchecker::core
