// Serialization of ScanReport: machine-readable JSON (stable schema for
// CI integration) and a human-readable text rendering.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/detector/detector.h"
#include "support/sarif_export.h"

namespace uchecker::core {

// Renders a report as a single JSON object:
// {
//   "app": "...",
//   "trace_id": "16 hex chars",  // only when the scan ran under one
//   "verdict": "vulnerable" | "not_vulnerable" |
//   "analysis_incomplete" | "analysis_error",
//   "stats": { "total_loc": N, "analyzed_loc": N, "analyzed_percent": X,
//              "paths": N, "objects": N, "objects_per_path": X,
//              "memory_mb": X, "seconds": X, "roots": N, "sink_hits": N,
//              "solver_calls": N, "solver_retries": N,
//              "cons_hits": N, "solver_cache_hits": N,
//              "budget_exhausted": B, "deadline_exceeded": B,
//              "parse_errors": N, "analysis_errors": N,
//              "accounted_bytes": N },
//   "diagnostics_by_phase": { "parse": N, "interp": N, ... },
//   "cost": {  // omitted when the scan recorded no cost attribution
//     "phases": { "parse": ms, "locality": ms, "staticpass": ms,
//                 "interp": ms, "solve": ms },
//     "roots": [ { "root": "...", "interp_ms": X, "solve_ms": X,
//                  "paths": N, "objects": N, "solver_calls": N,
//                  "solver_cache_hits": N, "pruned": B }, ... ] },
//   "profile": { ... },  // only under ScanOptions::profile — the
//                        // engine-introspection object (fork-site,
//                        // solver and heap attribution plus budget
//                        // post-mortems; schema in support/profile.h).
//                        // The ONLY nondeterministic part of the report:
//                        // unprofiled reports are byte-reproducible.
//   "errors": [ { "phase": "parse" | "locality" | "interp" | "translate" |
//                 "solve" | "scan", "root": "...", "message": "...",
//                 "transient": B }, ... ],
//   "findings": [ { "sink": "...", "location": "...", "file": "...",
//                   "line": N, "source_line": "...", "dst": "...",
//                   "reachability": "...", "witness": "...",
//                   "fingerprint": "16 hex chars",
//                   "evidence": {  // only under ScanOptions::explain
//                     "taint_path": [ { "kind": "...", "description": "...",
//                                       "file": "...", "line": N,
//                                       "location": "file:line" }, ... ],
//                     "guards": [ { "sexpr": "...", "file": "...",
//                                   "line": N, "location": "..." }, ... ],
//                     "bindings": [ { "symbol": "...", "raw": "...",
//                                     "decoded": "..." }, ... ],
//                     "upload_filename": "payload.php5",
//                     "destination": "...",
//                     "destination_complete": B } }, ... ]
// }
//
// Degradation fields (stable, additive):
//  - "errors": contained pipeline failures; each names the phase that
//    failed, the file/root it failed on, and whether a retry may clear it.
//  - "deadline_exceeded": the scan's wall-clock budget expired; stats and
//    findings cover only the work finished before the cut-off.
//  - "solver_retries": how many solver attempts were re-run with
//    escalated timeouts after a retryable unknown.
//  - "analysis_errors": diagnostics reported by post-parse phases
//    (previously folded into nothing; "parse_errors" remains parse-only).
//  - "diagnostics_by_phase": error-severity diagnostic counts keyed by
//    the pipeline phase that reported them (the same phase vocabulary as
//    "errors[].phase", so diagnostic and ScanError provenance agree).
//    Diagnostics reported outside any phase group under "".
//  - "cons_hits" / "solver_cache_hits": sharing effectiveness — heap-graph
//    node constructions answered by hash-consing, and sinks answered by
//    the per-scan cross-root solver query cache instead of a Z3 call.
[[nodiscard]] std::string to_json(const ScanReport& report);

// Multi-line human-readable rendering (what scan_directory prints).
[[nodiscard]] std::string to_text(const ScanReport& report);

// Parses a report previously rendered by to_json back into a ScanReport.
// Exact inverse on to_json's output: to_json(*report_from_json(j)) == j.
// Returns nullopt on any structural mismatch — a persistent verdict
// cache treats that as a corrupt record and recomputes, so a schema
// drift can never be replayed as a wrong verdict.
[[nodiscard]] std::optional<ScanReport> report_from_json(
    std::string_view json);

// Stable slug for a verdict ("vulnerable", "not_vulnerable",
// "analysis_incomplete", "analysis_error").
[[nodiscard]] std::string_view verdict_slug(Verdict v);

// Maps a report into a SARIF 2.1.0 log (serialize with sarif::to_json).
// Symbolic findings become rule UC001 results; when a finding carries
// evidence (ScanOptions::explain) its taint path becomes a codeFlow /
// threadFlow walking source → sink and the decoded attack joins the
// message. Static-pass lints (UC101–UC106) become results at their
// severity-mapped level (error/warning/note). Finding::fingerprint is
// emitted under partialFingerprints as "uchecker/v1".
[[nodiscard]] sarif::Log to_sarif(const ScanReport& report);

}  // namespace uchecker::core
