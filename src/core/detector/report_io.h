// Serialization of ScanReport: machine-readable JSON (stable schema for
// CI integration) and a human-readable text rendering.
#pragma once

#include <string>

#include "core/detector/detector.h"

namespace uchecker::core {

// Renders a report as a single JSON object:
// {
//   "app": "...", "verdict": "vulnerable" | "not_vulnerable" |
//   "analysis_incomplete",
//   "stats": { "total_loc": N, "analyzed_loc": N, "analyzed_percent": X,
//              "paths": N, "objects": N, "objects_per_path": X,
//              "memory_mb": X, "seconds": X, "roots": N, "sink_hits": N,
//              "solver_calls": N, "budget_exhausted": B,
//              "parse_errors": N },
//   "findings": [ { "sink": "...", "location": "...", "source_line": "...",
//                   "dst": "...", "reachability": "...",
//                   "witness": "..." }, ... ]
// }
[[nodiscard]] std::string to_json(const ScanReport& report);

// Multi-line human-readable rendering (what scan_directory prints).
[[nodiscard]] std::string to_text(const ScanReport& report);

// Stable slug for a verdict ("vulnerable", "not_vulnerable",
// "analysis_incomplete").
[[nodiscard]] std::string_view verdict_slug(Verdict v);

}  // namespace uchecker::core
