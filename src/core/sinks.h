// The file-writing sink vocabulary shared by the call-graph builder and
// the symbolic interpreter.
//
// The paper models two sinks: move_uploaded_file(e_src, e_dst) and
// file_put_contents(e_dst, e_src). Real plugins also persist uploads
// through copy()/rename() after staging them, so the default registry
// recognizes that family too (ScanOptions::vuln is unaffected — the
// constraint model is identical, only the set of recognized calls
// grows).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace uchecker::core {

// Positional convention of a sink's (source, destination) arguments.
enum class SinkSignature {
  kSrcDst,  // f(src, dst): move_uploaded_file, copy, rename
  kDstSrc,  // f(dst, src): file_put_contents
};

struct SinkSpec {
  std::string name;  // lowercase function name
  SinkSignature signature = SinkSignature::kSrcDst;
};

class SinkRegistry {
 public:
  // The default scan registry: the paper's sinks (move_uploaded_file,
  // file_put_contents and the paper's own "file_put_content" spelling)
  // plus the copy()/rename() staging family.
  SinkRegistry();

  // Registers an additional sink (lowercase name).
  void add(SinkSpec spec);

  [[nodiscard]] bool is_sink(std::string_view lower_name) const;
  // Signature lookup; defaults to kSrcDst for unknown names.
  [[nodiscard]] SinkSignature signature(std::string_view lower_name) const;

  [[nodiscard]] const std::vector<SinkSpec>& specs() const { return specs_; }

  // Strictly the paper's registry (shared, immutable): no copy/rename.
  // For baseline comparisons against the paper's published numbers.
  [[nodiscard]] static const SinkRegistry& paper_defaults();

 private:
  std::vector<SinkSpec> specs_;
};

}  // namespace uchecker::core
