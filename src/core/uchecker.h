// Umbrella header: the complete public API of the UChecker library.
//
//   #include "core/uchecker.h"
//
//   uchecker::core::Detector detector;
//   auto report = detector.scan(app);
//
// Individual headers remain includable for finer-grained dependencies.
#pragma once

#include "core/callgraph/callgraph.h"   // extended call graph (§III-A)
#include "core/callgraph/locality.h"    // locality analysis + LCA roots
#include "core/detector/detector.h"     // end-to-end pipeline
#include "core/detector/report_io.h"    // JSON / text report rendering
#include "core/detector/scan_many.h"    // parallel batch scanning
#include "core/heapgraph/dot.h"         // Graphviz export (Figs. 3-6)
#include "core/heapgraph/heapgraph.h"   // heap graph + environments (§III-B)
#include "core/heapgraph/sexpr.h"       // s-expression rendering
#include "core/interp/interp.h"         // AST symbolic execution engine
#include "core/translate/translate.h"   // PHP -> Z3 rules (Table II, §III-D)
#include "core/vulnmodel/vulnmodel.h"   // constraints C1/C2/C3 (§III-C)
