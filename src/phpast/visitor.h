// Generic AST traversal helpers.
//
// `for_each_child` invokes a callback on every direct child of a node;
// `walk` performs a pre-order traversal of a whole subtree. Both are used
// by the call-graph builder, line-span accounting, and the baselines.
#pragma once

#include <functional>

#include "phpast/ast.h"

namespace uchecker::phpast {

// Calls `fn` for each direct child node (expressions and statements).
void for_each_child(const Node& node, const std::function<void(const Node&)>& fn);

// Pre-order traversal: `fn` is called on `node` first, then descendants.
// If `fn` returns false the subtree below the current node is skipped.
void walk(const Node& node, const std::function<bool(const Node&)>& fn);

// The maximum source line of any node in the subtree (0 if unknown).
[[nodiscard]] std::uint32_t max_line(const Node& node);

// The minimum valid source line of any node in the subtree (0 if unknown).
[[nodiscard]] std::uint32_t min_line(const Node& node);

}  // namespace uchecker::phpast
