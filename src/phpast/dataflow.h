// Reusable flow-insensitive intraprocedural dataflow over the AST.
//
// Two pieces, both scope-local (they never descend into nested function,
// method, or closure bodies — those are separate scopes):
//
//  1. collect_var_bindings(): enumerates every site that binds a simple
//     variable in a statement list — plain and compound assignments,
//     foreach key/value bindings, list() destructuring elements, and
//     opaque bindings whose value the AST cannot express (global/static
//     declarations, ++/--, by-reference aliasing, writes through array
//     subscripts).
//
//  2. solve_flow_insensitive(): a worklist-free fixpoint driver that
//     re-evaluates every binding under the current variable valuation
//     until nothing changes. The client supplies the abstract value type,
//     the transfer function (evaluate a binding under an environment) and
//     the lattice join. Flow insensitivity means a variable's value is
//     the join over *all* its binding sites, which is what makes the
//     result a sound over-approximation for clients that prune work
//     (core/staticpass): a guard on a variable that is ever rebound to
//     something worse sees the joined, worse value.
//
// The engine is deliberately small: clients with lattices of bounded
// height converge in O(height) passes over the bindings, and the cap on
// iterations bounds hostile inputs without affecting soundness (the
// client treats "not stabilized" the same as top).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "phpast/ast.h"

namespace uchecker::phpast {

// One binding site of a simple variable.
struct VarBinding {
  enum class Kind : std::uint8_t {
    kAssign,        // $x = value
    kCompound,      // $x op= value; `op` says which operator
    kForeachValue,  // foreach (value as ... => $x)
    kForeachKey,    // foreach (value as $x => ...)
    kListElement,   // list(..., $x, ...) = value
    kOpaque,        // global $x, static $x, $x++, &$x aliasing, $x[..] = v:
                    // the bound value is unknown to this analysis
  };

  std::string name;             // variable name, without the leading '$'
  Kind kind = Kind::kAssign;
  const Expr* value = nullptr;  // RHS / iterable / list source; null for kOpaque
  BinaryOp compound_op = BinaryOp::kConcat;  // valid iff kind == kCompound
  const Node* site = nullptr;   // the node that performs the binding
};

// Collects every binding of simple variables in `stmts`, recursing into
// nested statements and expressions but not into nested FunctionDecl /
// ClassDecl / Closure bodies.
void collect_var_bindings(Span<const StmtPtr> stmts,
                          std::vector<VarBinding>& out);

// Flow-insensitive fixpoint over `bindings`.
//
//   Value eval(const VarBinding& b, const std::map<std::string, Value>& env)
//   Value join(const Value& a, const Value& b)
//
// `eval` must be monotone in `env` for termination within the lattice
// height; `max_rounds` is a hard backstop either way. Variables never
// bound do not appear in the result — the client decides what an absent
// entry means (typically top).
template <typename Value, typename Eval, typename Join>
std::map<std::string, Value, std::less<>> solve_flow_insensitive(
    const std::vector<VarBinding>& bindings, Eval&& eval, Join&& join,
    std::size_t max_rounds = 16) {
  std::map<std::string, Value, std::less<>> env;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (const VarBinding& b : bindings) {
      Value v = eval(b, env);
      auto it = env.find(b.name);
      if (it == env.end()) {
        env.emplace(b.name, std::move(v));
        changed = true;
      } else {
        Value joined = join(it->second, v);
        if (!(joined == it->second)) {
          it->second = std::move(joined);
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return env;
}

}  // namespace uchecker::phpast
