#include "phpast/visitor.h"

#include <algorithm>

namespace uchecker::phpast {
namespace {

void visit_if(const std::function<void(const Node&)>& fn, const Expr* e) {
  if (e != nullptr) fn(*e);
}

void visit_if(const std::function<void(const Node&)>& fn, const Stmt* s) {
  if (s != nullptr) fn(*s);
}

// Works for any container of raw node pointers: arena Spans of
// ExprPtr/StmtPtr/FunctionDecl*, and the PhpFile statement vector.
template <typename Container>
void visit_all(const std::function<void(const Node&)>& fn,
               const Container& nodes) {
  for (const auto* n : nodes) visit_if(fn, n);
}

}  // namespace

void for_each_child(const Node& node,
                    const std::function<void(const Node&)>& fn) {
  switch (node.kind()) {
    case NodeKind::kNullLit:
    case NodeKind::kBoolLit:
    case NodeKind::kIntLit:
    case NodeKind::kFloatLit:
    case NodeKind::kStringLit:
    case NodeKind::kVariable:
    case NodeKind::kConstFetch:
    case NodeKind::kBreak:
    case NodeKind::kContinue:
    case NodeKind::kGlobal:
    case NodeKind::kInlineHtml:
    case NodeKind::kNamespaceDecl:
    case NodeKind::kUseDecl:
      break;
    case NodeKind::kArrayAccess: {
      const auto& n = static_cast<const ArrayAccess&>(node);
      visit_if(fn, n.base);
      visit_if(fn, n.index);
      break;
    }
    case NodeKind::kPropertyAccess:
      visit_if(fn, static_cast<const PropertyAccess&>(node).base);
      break;
    case NodeKind::kUnary:
      visit_if(fn, static_cast<const Unary&>(node).operand);
      break;
    case NodeKind::kBinary: {
      const auto& n = static_cast<const Binary&>(node);
      visit_if(fn, n.lhs);
      visit_if(fn, n.rhs);
      break;
    }
    case NodeKind::kAssign: {
      const auto& n = static_cast<const Assign&>(node);
      visit_if(fn, n.target);
      visit_if(fn, n.value);
      break;
    }
    case NodeKind::kTernary: {
      const auto& n = static_cast<const Ternary&>(node);
      visit_if(fn, n.cond);
      visit_if(fn, n.then_expr);
      visit_if(fn, n.else_expr);
      break;
    }
    case NodeKind::kCast:
      visit_if(fn, static_cast<const Cast&>(node).operand);
      break;
    case NodeKind::kCall: {
      const auto& n = static_cast<const Call&>(node);
      visit_if(fn, n.callee_expr);
      visit_all(fn, n.args);
      break;
    }
    case NodeKind::kMethodCall: {
      const auto& n = static_cast<const MethodCall&>(node);
      visit_if(fn, n.object);
      visit_all(fn, n.args);
      break;
    }
    case NodeKind::kStaticCall:
      visit_all(fn, static_cast<const StaticCall&>(node).args);
      break;
    case NodeKind::kNew:
      visit_all(fn, static_cast<const New&>(node).args);
      break;
    case NodeKind::kArrayLit:
      for (const ArrayItem& item : static_cast<const ArrayLit&>(node).items) {
        visit_if(fn, item.key);
        visit_if(fn, item.value);
      }
      break;
    case NodeKind::kIsset:
      visit_all(fn, static_cast<const Isset&>(node).operands);
      break;
    case NodeKind::kEmpty:
      visit_if(fn, static_cast<const Empty&>(node).operand);
      break;
    case NodeKind::kIncludeExpr:
      visit_if(fn, static_cast<const IncludeExpr&>(node).path);
      break;
    case NodeKind::kExitExpr:
      visit_if(fn, static_cast<const ExitExpr&>(node).operand);
      break;
    case NodeKind::kListExpr:
      visit_all(fn, static_cast<const ListExpr&>(node).elements);
      break;
    case NodeKind::kClosure: {
      const auto& n = static_cast<const Closure&>(node);
      for (const Param& p : n.params) visit_if(fn, p.default_value);
      visit_all(fn, n.body);
      break;
    }
    case NodeKind::kExprStmt:
      visit_if(fn, static_cast<const ExprStmt&>(node).expr);
      break;
    case NodeKind::kEcho:
      visit_all(fn, static_cast<const Echo&>(node).values);
      break;
    case NodeKind::kIf: {
      const auto& n = static_cast<const If&>(node);
      visit_if(fn, n.cond);
      visit_all(fn, n.then_body);
      for (const ElseIfClause& c : n.elseifs) {
        visit_if(fn, c.cond);
        visit_all(fn, c.body);
      }
      visit_all(fn, n.else_body);
      break;
    }
    case NodeKind::kWhile: {
      const auto& n = static_cast<const While&>(node);
      visit_if(fn, n.cond);
      visit_all(fn, n.body);
      break;
    }
    case NodeKind::kDoWhile: {
      const auto& n = static_cast<const DoWhile&>(node);
      visit_all(fn, n.body);
      visit_if(fn, n.cond);
      break;
    }
    case NodeKind::kFor: {
      const auto& n = static_cast<const For&>(node);
      visit_all(fn, n.init);
      visit_all(fn, n.cond);
      visit_all(fn, n.step);
      visit_all(fn, n.body);
      break;
    }
    case NodeKind::kForeach: {
      const auto& n = static_cast<const Foreach&>(node);
      visit_if(fn, n.iterable);
      visit_if(fn, n.key_var);
      visit_if(fn, n.value_var);
      visit_all(fn, n.body);
      break;
    }
    case NodeKind::kSwitch: {
      const auto& n = static_cast<const Switch&>(node);
      visit_if(fn, n.subject);
      for (const SwitchCase& c : n.cases) {
        visit_if(fn, c.match);
        visit_all(fn, c.body);
      }
      break;
    }
    case NodeKind::kReturn:
      visit_if(fn, static_cast<const Return&>(node).value);
      break;
    case NodeKind::kStaticVarStmt:
      visit_if(fn, static_cast<const StaticVarStmt&>(node).init);
      break;
    case NodeKind::kUnsetStmt:
      visit_all(fn, static_cast<const UnsetStmt&>(node).operands);
      break;
    case NodeKind::kBlock:
      visit_all(fn, static_cast<const Block&>(node).body);
      break;
    case NodeKind::kFunctionDecl: {
      const auto& n = static_cast<const FunctionDecl&>(node);
      for (const Param& p : n.params) visit_if(fn, p.default_value);
      visit_all(fn, n.body);
      break;
    }
    case NodeKind::kClassDecl: {
      const auto& n = static_cast<const ClassDecl&>(node);
      for (const PropertyDecl& p : n.properties) {
        visit_if(fn, p.default_value);
      }
      for (const auto& m : n.methods) visit_if(fn, m);
      break;
    }
    case NodeKind::kTryCatch: {
      const auto& n = static_cast<const TryCatch&>(node);
      visit_all(fn, n.body);
      for (const CatchClause& c : n.catches) visit_all(fn, c.body);
      visit_all(fn, n.finally_body);
      break;
    }
    case NodeKind::kThrowStmt:
      visit_if(fn, static_cast<const ThrowStmt&>(node).value);
      break;
  }
}

void walk(const Node& node, const std::function<bool(const Node&)>& fn) {
  if (!fn(node)) return;
  for_each_child(node, [&fn](const Node& child) { walk(child, fn); });
}

std::uint32_t max_line(const Node& node) {
  std::uint32_t result = 0;
  walk(node, [&result](const Node& n) {
    result = std::max(result, n.loc().line);
    return true;
  });
  return result;
}

std::uint32_t min_line(const Node& node) {
  std::uint32_t result = 0;
  walk(node, [&result](const Node& n) {
    if (n.loc().line != 0 && (result == 0 || n.loc().line < result)) {
      result = n.loc().line;
    }
    return true;
  });
  return result;
}

}  // namespace uchecker::phpast
