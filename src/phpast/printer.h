// Debug printer: renders an AST as an indented s-expression-like dump.
// Used by parser tests and the explain_heapgraph example.
#pragma once

#include <string>

#include "phpast/ast.h"

namespace uchecker::phpast {

// Renders one node (recursively). Deterministic; stable across runs.
[[nodiscard]] std::string dump(const Node& node);

// Renders a whole file.
[[nodiscard]] std::string dump(const PhpFile& file);

}  // namespace uchecker::phpast
