#include "phpast/dataflow.h"

#include "phpast/visitor.h"

namespace uchecker::phpast {
namespace {

void bind_target(const Expr& target, const Expr* value, const Node& site,
                 std::vector<VarBinding>& out);

// Assignment through an array subscript ($a['k'] = v, $a[] = v) rebinds
// the *root* variable of the subscript chain to something this analysis
// cannot track element-wise; record it as opaque so joins degrade it.
const Variable* subscript_root(const Expr& expr) {
  const Expr* e = &expr;
  while (e->kind() == NodeKind::kArrayAccess) {
    e = static_cast<const ArrayAccess&>(*e).base;
  }
  return e->kind() == NodeKind::kVariable ? static_cast<const Variable*>(e)
                                          : nullptr;
}

void bind_target(const Expr& target, const Expr* value, const Node& site,
                 std::vector<VarBinding>& out) {
  switch (target.kind()) {
    case NodeKind::kVariable:
      out.push_back(
          VarBinding{std::string(static_cast<const Variable&>(target).name),
                     VarBinding::Kind::kAssign, value, BinaryOp::kConcat,
                     &site});
      break;
    case NodeKind::kArrayAccess:
      if (const Variable* root = subscript_root(target)) {
        out.push_back(VarBinding{std::string(root->name),
                                 VarBinding::Kind::kOpaque, nullptr,
                                 BinaryOp::kConcat, &site});
      }
      break;
    case NodeKind::kListExpr:
      for (const ExprPtr& element :
           static_cast<const ListExpr&>(target).elements) {
        if (element == nullptr) continue;
        if (element->kind() == NodeKind::kVariable) {
          out.push_back(VarBinding{
              std::string(static_cast<const Variable&>(*element).name),
              VarBinding::Kind::kListElement, value, BinaryOp::kConcat, &site});
        } else {
          bind_target(*element, nullptr, site, out);
        }
      }
      break;
    default:
      break;  // property writes and friends are outside the variable model
  }
}

void collect_from_node(const Node& node, std::vector<VarBinding>& out) {
  walk(node, [&out](const Node& n) -> bool {
    switch (n.kind()) {
      // Nested scopes have their own variables.
      case NodeKind::kFunctionDecl:
      case NodeKind::kClassDecl:
      case NodeKind::kClosure:
        return false;

      case NodeKind::kAssign: {
        const auto& assign = static_cast<const Assign&>(n);
        if (assign.compound_op.has_value() &&
            assign.target->kind() == NodeKind::kVariable) {
          out.push_back(VarBinding{
              std::string(static_cast<const Variable&>(*assign.target).name),
              VarBinding::Kind::kCompound, assign.value, *assign.compound_op,
              &n});
        } else {
          bind_target(*assign.target, assign.value, n, out);
        }
        // `$a = &$b` aliases: later writes through $a also change $b, so
        // $b's value is no longer fully described by its own bindings.
        if (assign.by_ref && assign.value != nullptr &&
            assign.value->kind() == NodeKind::kVariable) {
          out.push_back(VarBinding{
              std::string(static_cast<const Variable&>(*assign.value).name),
              VarBinding::Kind::kOpaque, nullptr, BinaryOp::kConcat, &n});
        }
        return true;
      }

      case NodeKind::kForeach: {
        const auto& fe = static_cast<const Foreach&>(n);
        if (fe.value_var != nullptr) {
          if (fe.value_var->kind() == NodeKind::kVariable) {
            out.push_back(VarBinding{
                std::string(static_cast<const Variable&>(*fe.value_var).name),
                VarBinding::Kind::kForeachValue, fe.iterable,
                BinaryOp::kConcat, &n});
          } else {
            bind_target(*fe.value_var, fe.iterable, n, out);
          }
        }
        if (fe.key_var != nullptr &&
            fe.key_var->kind() == NodeKind::kVariable) {
          out.push_back(VarBinding{
              std::string(static_cast<const Variable&>(*fe.key_var).name),
              VarBinding::Kind::kForeachKey, fe.iterable, BinaryOp::kConcat,
              &n});
        }
        return true;
      }

      case NodeKind::kGlobal:
        for (const std::string_view name :
             static_cast<const Global&>(n).names) {
          out.push_back(VarBinding{std::string(name),
                                   VarBinding::Kind::kOpaque, nullptr,
                                   BinaryOp::kConcat, &n});
        }
        return true;

      case NodeKind::kStaticVarStmt:
        // A static local persists across calls; its joined value is not
        // derivable from this body alone.
        out.push_back(VarBinding{
            std::string(static_cast<const StaticVarStmt&>(n).name),
            VarBinding::Kind::kOpaque, nullptr, BinaryOp::kConcat, &n});
        return true;

      case NodeKind::kUnary: {
        const auto& unary = static_cast<const Unary&>(n);
        const bool mutates = unary.op == UnaryOp::kPreInc ||
                             unary.op == UnaryOp::kPreDec ||
                             unary.op == UnaryOp::kPostInc ||
                             unary.op == UnaryOp::kPostDec;
        if (mutates && unary.operand->kind() == NodeKind::kVariable) {
          out.push_back(VarBinding{
              std::string(static_cast<const Variable&>(*unary.operand).name),
              VarBinding::Kind::kOpaque, nullptr, BinaryOp::kConcat, &n});
        }
        return true;
      }

      default:
        return true;
    }
  });
}

}  // namespace

void collect_var_bindings(Span<const StmtPtr> stmts,
                          std::vector<VarBinding>& out) {
  for (const StmtPtr stmt : stmts) {
    if (stmt != nullptr) collect_from_node(*stmt, out);
  }
}

}  // namespace uchecker::phpast
