#include "phpast/printer.h"

#include "support/strutil.h"

namespace uchecker::phpast {
namespace {

class Printer {
 public:
  std::string take() { return std::move(out_); }

  void print(const Node& node, int indent) {
    pad(indent);
    switch (node.kind()) {
      case NodeKind::kNullLit:
        out_ += "(null)\n";
        break;
      case NodeKind::kBoolLit:
        out_ += static_cast<const BoolLit&>(node).value ? "(bool true)\n"
                                                        : "(bool false)\n";
        break;
      case NodeKind::kIntLit:
        out_ += "(int " +
                std::to_string(static_cast<const IntLit&>(node).value) + ")\n";
        break;
      case NodeKind::kFloatLit:
        out_ += "(float " +
                std::to_string(static_cast<const FloatLit&>(node).value) +
                ")\n";
        break;
      case NodeKind::kStringLit:
        out_ += "(string " +
                strutil::quote(static_cast<const StringLit&>(node).value) +
                ")\n";
        break;
      case NodeKind::kVariable:
        out_ += "(var $";
        out_ += static_cast<const Variable&>(node).name;
        out_ += ")\n";
        break;
      case NodeKind::kConstFetch:
        out_ += "(const ";
        out_ += static_cast<const ConstFetch&>(node).name;
        out_ += ")\n";
        break;
      case NodeKind::kArrayAccess: {
        const auto& n = static_cast<const ArrayAccess&>(node);
        out_ += "(array-access\n";
        print(*n.base, indent + 1);
        if (n.index != nullptr) {
          print(*n.index, indent + 1);
        } else {
          pad(indent + 1);
          out_ += "(push)\n";
        }
        close(indent);
        break;
      }
      case NodeKind::kPropertyAccess: {
        const auto& n = static_cast<const PropertyAccess&>(node);
        out_ += "(prop ";
        out_ += n.name;
        out_ += "\n";
        print(*n.base, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kUnary: {
        const auto& n = static_cast<const Unary&>(node);
        out_ += "(unary " + std::string(unary_op_name(n.op)) + "\n";
        print(*n.operand, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kBinary: {
        const auto& n = static_cast<const Binary&>(node);
        out_ += "(binary " + std::string(binary_op_name(n.op)) + "\n";
        print(*n.lhs, indent + 1);
        print(*n.rhs, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kAssign: {
        const auto& n = static_cast<const Assign&>(node);
        out_ += "(assign";
        if (n.compound_op) {
          out_ += " " + std::string(binary_op_name(*n.compound_op)) + "=";
        }
        if (n.by_ref) out_ += " by-ref";
        out_ += "\n";
        print(*n.target, indent + 1);
        print(*n.value, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kTernary: {
        const auto& n = static_cast<const Ternary&>(node);
        out_ += "(ternary\n";
        print(*n.cond, indent + 1);
        if (n.then_expr != nullptr) print(*n.then_expr, indent + 1);
        print(*n.else_expr, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kCast: {
        const auto& n = static_cast<const Cast&>(node);
        out_ += "(cast " + std::string(cast_kind_name(n.cast)) + "\n";
        print(*n.operand, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kCall: {
        const auto& n = static_cast<const Call&>(node);
        if (n.is_dynamic()) {
          out_ += "(dyncall\n";
          print(*n.callee_expr, indent + 1);
        } else {
          out_ += "(call ";
          out_ += n.callee;
          out_ += "\n";
        }
        for (const auto& a : n.args) print(*a, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kMethodCall: {
        const auto& n = static_cast<const MethodCall&>(node);
        out_ += "(method-call ";
        out_ += n.method;
        out_ += "\n";
        print(*n.object, indent + 1);
        for (const auto& a : n.args) print(*a, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kStaticCall: {
        const auto& n = static_cast<const StaticCall&>(node);
        out_ += "(static-call ";
        out_ += n.class_name;
        out_ += "::";
        out_ += n.method;
        out_ += "\n";
        for (const auto& a : n.args) print(*a, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kNew: {
        const auto& n = static_cast<const New&>(node);
        out_ += "(new ";
        out_ += n.class_name;
        out_ += "\n";
        for (const auto& a : n.args) print(*a, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kArrayLit: {
        const auto& n = static_cast<const ArrayLit&>(node);
        out_ += "(array-lit\n";
        for (const auto& item : n.items) {
          pad(indent + 1);
          out_ += "(item\n";
          if (item.key != nullptr) print(*item.key, indent + 2);
          print(*item.value, indent + 2);
          close(indent + 1);
        }
        close(indent);
        break;
      }
      case NodeKind::kIsset: {
        const auto& n = static_cast<const Isset&>(node);
        out_ += "(isset\n";
        for (const auto& e : n.operands) print(*e, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kEmpty: {
        const auto& n = static_cast<const Empty&>(node);
        out_ += "(empty\n";
        print(*n.operand, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kIncludeExpr: {
        const auto& n = static_cast<const IncludeExpr&>(node);
        out_ += "(" + std::string(include_kind_name(n.include_kind)) + "\n";
        print(*n.path, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kExitExpr: {
        const auto& n = static_cast<const ExitExpr&>(node);
        out_ += "(exit\n";
        if (n.operand != nullptr) print(*n.operand, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kListExpr: {
        const auto& n = static_cast<const ListExpr&>(node);
        out_ += "(list\n";
        for (const auto& e : n.elements) {
          if (e != nullptr) {
            print(*e, indent + 1);
          } else {
            pad(indent + 1);
            out_ += "(skip)\n";
          }
        }
        close(indent);
        break;
      }
      case NodeKind::kClosure: {
        const auto& n = static_cast<const Closure&>(node);
        out_ += "(closure (";
        for (std::size_t i = 0; i < n.params.size(); ++i) {
          if (i != 0) out_ += ' ';
          out_ += '$';
          out_ += n.params[i].name;
        }
        out_ += ")\n";
        for (const auto& s : n.body) print(*s, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kExprStmt: {
        const auto& n = static_cast<const ExprStmt&>(node);
        out_ += "(expr-stmt\n";
        print(*n.expr, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kEcho: {
        const auto& n = static_cast<const Echo&>(node);
        out_ += "(echo\n";
        for (const auto& e : n.values) print(*e, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kIf: {
        const auto& n = static_cast<const If&>(node);
        out_ += "(if\n";
        print(*n.cond, indent + 1);
        pad(indent + 1);
        out_ += "(then\n";
        for (const auto& s : n.then_body) print(*s, indent + 2);
        close(indent + 1);
        for (const auto& clause : n.elseifs) {
          pad(indent + 1);
          out_ += "(elseif\n";
          print(*clause.cond, indent + 2);
          for (const auto& s : clause.body) print(*s, indent + 2);
          close(indent + 1);
        }
        if (n.has_else) {
          pad(indent + 1);
          out_ += "(else\n";
          for (const auto& s : n.else_body) print(*s, indent + 2);
          close(indent + 1);
        }
        close(indent);
        break;
      }
      case NodeKind::kWhile: {
        const auto& n = static_cast<const While&>(node);
        out_ += "(while\n";
        print(*n.cond, indent + 1);
        for (const auto& s : n.body) print(*s, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kDoWhile: {
        const auto& n = static_cast<const DoWhile&>(node);
        out_ += "(do-while\n";
        for (const auto& s : n.body) print(*s, indent + 1);
        print(*n.cond, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kFor: {
        const auto& n = static_cast<const For&>(node);
        out_ += "(for\n";
        for (const auto& e : n.init) print(*e, indent + 1);
        for (const auto& e : n.cond) print(*e, indent + 1);
        for (const auto& e : n.step) print(*e, indent + 1);
        for (const auto& s : n.body) print(*s, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kForeach: {
        const auto& n = static_cast<const Foreach&>(node);
        out_ += "(foreach\n";
        print(*n.iterable, indent + 1);
        if (n.key_var != nullptr) print(*n.key_var, indent + 1);
        print(*n.value_var, indent + 1);
        for (const auto& s : n.body) print(*s, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kSwitch: {
        const auto& n = static_cast<const Switch&>(node);
        out_ += "(switch\n";
        print(*n.subject, indent + 1);
        for (const auto& c : n.cases) {
          pad(indent + 1);
          out_ += c.match != nullptr ? "(case\n" : "(default\n";
          if (c.match != nullptr) print(*c.match, indent + 2);
          for (const auto& s : c.body) print(*s, indent + 2);
          close(indent + 1);
        }
        close(indent);
        break;
      }
      case NodeKind::kReturn: {
        const auto& n = static_cast<const Return&>(node);
        out_ += "(return\n";
        if (n.value != nullptr) print(*n.value, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kBreak:
        out_ += "(break)\n";
        break;
      case NodeKind::kContinue:
        out_ += "(continue)\n";
        break;
      case NodeKind::kGlobal: {
        const auto& n = static_cast<const Global&>(node);
        out_ += "(global";
        for (const auto& name : n.names) {
          out_ += " $";
          out_ += name;
        }
        out_ += ")\n";
        break;
      }
      case NodeKind::kStaticVarStmt: {
        const auto& n = static_cast<const StaticVarStmt&>(node);
        out_ += "(static $";
        out_ += n.name;
        out_ += "\n";
        if (n.init != nullptr) print(*n.init, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kUnsetStmt: {
        const auto& n = static_cast<const UnsetStmt&>(node);
        out_ += "(unset\n";
        for (const auto& e : n.operands) print(*e, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kBlock: {
        const auto& n = static_cast<const Block&>(node);
        out_ += "(block\n";
        for (const auto& s : n.body) print(*s, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kFunctionDecl: {
        const auto& n = static_cast<const FunctionDecl&>(node);
        out_ += "(function ";
        out_ += n.name;
        out_ += " (";
        for (std::size_t i = 0; i < n.params.size(); ++i) {
          if (i != 0) out_ += ' ';
          out_ += '$';
          out_ += n.params[i].name;
        }
        out_ += ")\n";
        for (const auto& s : n.body) print(*s, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kClassDecl: {
        const auto& n = static_cast<const ClassDecl&>(node);
        out_ += "(class ";
        out_ += n.name;
        if (!n.parent.empty()) {
          out_ += " extends ";
          out_ += n.parent;
        }
        out_ += "\n";
        for (const auto& m : n.methods) print(*m, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kTryCatch: {
        const auto& n = static_cast<const TryCatch&>(node);
        out_ += "(try\n";
        for (const auto& s : n.body) print(*s, indent + 1);
        for (const auto& c : n.catches) {
          pad(indent + 1);
          out_ += "(catch ";
          out_ += c.exception_class;
          out_ += " $";
          out_ += c.variable;
          out_ += "\n";
          for (const auto& s : c.body) print(*s, indent + 2);
          close(indent + 1);
        }
        if (!n.finally_body.empty()) {
          pad(indent + 1);
          out_ += "(finally\n";
          for (const auto& s : n.finally_body) print(*s, indent + 2);
          close(indent + 1);
        }
        close(indent);
        break;
      }
      case NodeKind::kThrowStmt: {
        const auto& n = static_cast<const ThrowStmt&>(node);
        out_ += "(throw\n";
        print(*n.value, indent + 1);
        close(indent);
        break;
      }
      case NodeKind::kInlineHtml:
        out_ += "(html)\n";
        break;
      case NodeKind::kNamespaceDecl:
        out_ += "(namespace ";
        out_ += static_cast<const NamespaceDecl&>(node).name;
        out_ += ")\n";
        break;
      case NodeKind::kUseDecl:
        out_ += "(use ";
        out_ += static_cast<const UseDecl&>(node).path;
        out_ += ")\n";
        break;
    }
  }

 private:
  void pad(int indent) { out_.append(static_cast<std::size_t>(indent) * 2, ' '); }
  void close(int indent) {
    pad(indent);
    out_ += ")\n";
  }

  std::string out_;
};

}  // namespace

std::string dump(const Node& node) {
  Printer p;
  p.print(node, 0);
  return p.take();
}

std::string dump(const PhpFile& file) {
  Printer p;
  for (const auto& stmt : file.statements) p.print(*stmt, 0);
  return p.take();
}

}  // namespace uchecker::phpast
