#include "phpast/ast.h"

namespace uchecker::phpast {

std::string_view node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kNullLit: return "NullLit";
    case NodeKind::kBoolLit: return "BoolLit";
    case NodeKind::kIntLit: return "IntLit";
    case NodeKind::kFloatLit: return "FloatLit";
    case NodeKind::kStringLit: return "StringLit";
    case NodeKind::kVariable: return "Variable";
    case NodeKind::kConstFetch: return "ConstFetch";
    case NodeKind::kArrayAccess: return "ArrayAccess";
    case NodeKind::kPropertyAccess: return "PropertyAccess";
    case NodeKind::kUnary: return "Unary";
    case NodeKind::kBinary: return "Binary";
    case NodeKind::kAssign: return "Assign";
    case NodeKind::kTernary: return "Ternary";
    case NodeKind::kCast: return "Cast";
    case NodeKind::kCall: return "Call";
    case NodeKind::kMethodCall: return "MethodCall";
    case NodeKind::kStaticCall: return "StaticCall";
    case NodeKind::kNew: return "New";
    case NodeKind::kArrayLit: return "ArrayLit";
    case NodeKind::kIsset: return "Isset";
    case NodeKind::kEmpty: return "Empty";
    case NodeKind::kIncludeExpr: return "IncludeExpr";
    case NodeKind::kExitExpr: return "ExitExpr";
    case NodeKind::kListExpr: return "ListExpr";
    case NodeKind::kClosure: return "Closure";
    case NodeKind::kExprStmt: return "ExprStmt";
    case NodeKind::kEcho: return "Echo";
    case NodeKind::kIf: return "If";
    case NodeKind::kWhile: return "While";
    case NodeKind::kDoWhile: return "DoWhile";
    case NodeKind::kFor: return "For";
    case NodeKind::kForeach: return "Foreach";
    case NodeKind::kSwitch: return "Switch";
    case NodeKind::kReturn: return "Return";
    case NodeKind::kBreak: return "Break";
    case NodeKind::kContinue: return "Continue";
    case NodeKind::kGlobal: return "Global";
    case NodeKind::kStaticVarStmt: return "StaticVarStmt";
    case NodeKind::kUnsetStmt: return "UnsetStmt";
    case NodeKind::kBlock: return "Block";
    case NodeKind::kFunctionDecl: return "FunctionDecl";
    case NodeKind::kClassDecl: return "ClassDecl";
    case NodeKind::kTryCatch: return "TryCatch";
    case NodeKind::kThrowStmt: return "ThrowStmt";
    case NodeKind::kInlineHtml: return "InlineHtml";
    case NodeKind::kNamespaceDecl: return "NamespaceDecl";
    case NodeKind::kUseDecl: return "UseDecl";
  }
  return "Unknown";
}

std::string_view unary_op_name(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot: return "!";
    case UnaryOp::kMinus: return "-";
    case UnaryOp::kPlus: return "+";
    case UnaryOp::kBitNot: return "~";
    case UnaryOp::kErrorSuppress: return "@";
    case UnaryOp::kPreInc: return "++pre";
    case UnaryOp::kPreDec: return "--pre";
    case UnaryOp::kPostInc: return "post++";
    case UnaryOp::kPostDec: return "post--";
    case UnaryOp::kPrint: return "print";
  }
  return "?";
}

std::string_view binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kPow: return "**";
    case BinaryOp::kConcat: return ".";
    case BinaryOp::kEqual: return "==";
    case BinaryOp::kNotEqual: return "!=";
    case BinaryOp::kIdentical: return "===";
    case BinaryOp::kNotIdentical: return "!==";
    case BinaryOp::kLess: return "<";
    case BinaryOp::kGreater: return ">";
    case BinaryOp::kLessEqual: return "<=";
    case BinaryOp::kGreaterEqual: return ">=";
    case BinaryOp::kSpaceship: return "<=>";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
    case BinaryOp::kXor: return "xor";
    case BinaryOp::kBitAnd: return "&";
    case BinaryOp::kBitOr: return "|";
    case BinaryOp::kBitXor: return "^";
    case BinaryOp::kShiftLeft: return "<<";
    case BinaryOp::kShiftRight: return ">>";
    case BinaryOp::kCoalesce: return "??";
    case BinaryOp::kInstanceof: return "instanceof";
  }
  return "?";
}

std::string_view cast_kind_name(CastKind kind) {
  switch (kind) {
    case CastKind::kInt: return "int";
    case CastKind::kFloat: return "float";
    case CastKind::kString: return "string";
    case CastKind::kBool: return "bool";
    case CastKind::kArray: return "array";
    case CastKind::kObject: return "object";
  }
  return "?";
}

std::string_view include_kind_name(IncludeKind kind) {
  switch (kind) {
    case IncludeKind::kInclude: return "include";
    case IncludeKind::kIncludeOnce: return "include_once";
    case IncludeKind::kRequire: return "require";
    case IncludeKind::kRequireOnce: return "require_once";
  }
  return "?";
}

}  // namespace uchecker::phpast
