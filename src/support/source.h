// Source file management: files, line/column mapping, source locations.
//
// Every AST node and every heap-graph object carries a SourceLoc so that
// detection reports can point at exact lines of PHP source (the paper's
// "Source-Code-Focused" design objective).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace uchecker {

// Identifies a file registered with a SourceManager. Value 0 is invalid.
struct FileId {
  std::uint32_t value = 0;

  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(FileId, FileId) = default;
};

// A 1-based line/column position inside a file. line==0 means "unknown".
struct SourceLoc {
  FileId file;
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return file.valid() && line != 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

// One registered source file. Owns the content; hands out string_views
// that remain valid for the lifetime of the SourceManager.
class SourceFile {
 public:
  SourceFile(FileId id, std::string name, std::string content);

  [[nodiscard]] FileId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string_view content() const { return content_; }

  // Number of newline-terminated (or final partial) lines.
  [[nodiscard]] std::uint32_t line_count() const;

  // 1-based line lookup. Returns an empty view for out-of-range lines.
  [[nodiscard]] std::string_view line(std::uint32_t line_no) const;

  // Maps a byte offset into the content to a (line, column) pair.
  [[nodiscard]] SourceLoc loc_for_offset(std::size_t offset) const;

  // Byte offset of each line start (always non-empty; [0] == 0). The
  // lexer walks this incrementally instead of binary-searching per
  // token via loc_for_offset.
  [[nodiscard]] const std::vector<std::size_t>& line_offsets() const {
    return line_offsets_;
  }

  // Counts "physical lines of code": non-empty lines that are not pure
  // comment lines. Used by the locality-analysis LoC accounting.
  [[nodiscard]] std::uint32_t loc_count() const;

 private:
  FileId id_;
  std::string name_;
  std::string content_;
  std::vector<std::size_t> line_offsets_;  // byte offset of each line start
};

// Registry of all files in a scan. Append-only; FileIds are stable, and
// so are SourceFile addresses: files live in a deque, so a pointer from
// file() survives later add_file calls. The parallel parse pool relies
// on this — registration hands out per-file pointers that stay valid
// while more files are registered and while workers lex from them.
class SourceManager {
 public:
  SourceManager() = default;

  SourceManager(const SourceManager&) = delete;
  SourceManager& operator=(const SourceManager&) = delete;
  SourceManager(SourceManager&&) = default;
  SourceManager& operator=(SourceManager&&) = default;

  // Registers a file and returns its id. `name` is typically a path.
  FileId add_file(std::string name, std::string content);

  [[nodiscard]] const SourceFile* file(FileId id) const;
  [[nodiscard]] const SourceFile* file_by_name(std::string_view name) const;
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

  // All registered files, in registration order.
  [[nodiscard]] const std::deque<SourceFile>& files() const { return files_; }

  // Human-readable "name:line:col" rendering of a location.
  [[nodiscard]] std::string describe(SourceLoc loc) const;

  // Total physical LoC across all files (for the "% of LoC analyzed"
  // column of Table III).
  [[nodiscard]] std::uint64_t total_loc() const;

 private:
  std::deque<SourceFile> files_;
};

}  // namespace uchecker
