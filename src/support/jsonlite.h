// Minimal dependency-free JSON validator (RFC 8259 grammar, UTF-8 not
// verified). Used by tests and CI to assert that emitted trace/metrics/
// report JSON parses, without pulling in a JSON library.
#pragma once

#include <string_view>

namespace uchecker::jsonlite {

// True iff `text` is exactly one valid JSON value (surrounding
// whitespace allowed). Nesting deeper than 256 levels is rejected.
[[nodiscard]] bool valid(std::string_view text);

}  // namespace uchecker::jsonlite
