// Minimal dependency-free JSON support (RFC 8259 grammar, UTF-8 not
// verified). Used by tests and CI to assert that emitted trace/metrics/
// report JSON parses — and, via parse(), to structurally inspect SARIF
// output — without pulling in a JSON library.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uchecker::jsonlite {

// True iff `text` is exactly one valid JSON value (surrounding
// whitespace allowed). Nesting deeper than 256 levels is rejected.
[[nodiscard]] bool valid(std::string_view text);

// One parsed JSON value. Objects preserve insertion order (duplicate
// keys keep the last occurrence, matching most consumers). Numbers are
// held as double; string escapes are decoded (\uXXXX outside the BMP's
// ASCII range is rendered as UTF-8).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(Kind kind) : kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool boolean() const { return bool_; }
  [[nodiscard]] double number() const { return number_; }
  [[nodiscard]] const std::string& str() const { return string_; }

  // Array/object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const {
    return kind_ == Kind::kArray ? items_.size() : members_.size();
  }
  // Array element; nullptr when out of range or not an array.
  [[nodiscard]] const Value* at(std::size_t index) const {
    if (kind_ != Kind::kArray || index >= items_.size()) return nullptr;
    return &items_[index];
  }
  // Object member by key; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] const std::vector<Value>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const {
    return members_;
  }

 private:
  friend std::optional<Value> parse(std::string_view);
  friend struct DomParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;                              // kArray
  std::vector<std::pair<std::string, Value>> members_;    // kObject
};

// Parses exactly one JSON value (surrounding whitespace allowed) into a
// DOM; nullopt on any syntax error or nesting beyond 256 levels. A text
// accepted by parse() is also accepted by valid() and vice versa.
[[nodiscard]] std::optional<Value> parse(std::string_view text);

}  // namespace uchecker::jsonlite
