#include "support/fault_injector.h"

#include <map>
#include <mutex>
#include <thread>

namespace uchecker {

struct FaultInjector::State {
  struct Point {
    Action action = Action::kThrow;
    std::chrono::milliseconds stall{0};
    int remaining = 0;  // fires left; -1 = unlimited; 0 = inactive
    std::size_t hits = 0;
  };

  std::mutex mu;
  std::map<std::string, Point, std::less<>> points;
};

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::State& FaultInjector::state() {
  static State s;
  return s;
}

void FaultInjector::arm(std::string_view point, Action action,
                        std::chrono::milliseconds stall, int max_hits) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  auto [it, inserted] = s.points.try_emplace(std::string(point));
  const bool was_active = !inserted && it->second.remaining != 0;
  it->second.action = action;
  it->second.stall = stall;
  it->second.remaining = max_hits;
  const bool now_active = max_hits != 0;
  if (now_active && !was_active) {
    armed_points_.fetch_add(1, std::memory_order_relaxed);
  } else if (!now_active && was_active) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::disarm(std::string_view point) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.points.find(point);
  if (it == s.points.end() || it->second.remaining == 0) return;
  it->second.remaining = 0;
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::disarm_all() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.points.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

std::size_t FaultInjector::hits(std::string_view point) const {
  State& s = const_cast<FaultInjector*>(this)->state();
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.points.find(point);
  return it == s.points.end() ? 0 : it->second.hits;
}

namespace {

bool is_io_action(FaultInjector::Action a) {
  switch (a) {
    case FaultInjector::Action::kShortWrite:
    case FaultInjector::Action::kTornRename:
    case FaultInjector::Action::kEnospc:
    case FaultInjector::Action::kBitFlip:
      return true;
    case FaultInjector::Action::kThrow:
    case FaultInjector::Action::kThrowTransient:
    case FaultInjector::Action::kStall:
      return false;
  }
  return false;
}

}  // namespace

std::optional<FaultInjector::Action> FaultInjector::fire(std::string_view point,
                                                         bool io) {
  Action action;
  std::chrono::milliseconds stall{0};
  {
    State& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.points.find(point);
    if (it == s.points.end() || it->second.remaining == 0) return std::nullopt;
    State::Point& p = it->second;
    // An I/O action armed here only fires at an io_checkpoint — a plain
    // checkpoint cannot simulate it, and must not burn the hit budget.
    if (is_io_action(p.action) && !io) return std::nullopt;
    ++p.hits;
    if (p.remaining > 0 && --p.remaining == 0) {
      armed_points_.fetch_sub(1, std::memory_order_relaxed);
    }
    action = p.action;
    stall = p.stall;
  }
  switch (action) {
    case Action::kThrow:
      throw InjectedFault(std::string(point), /*transient=*/false);
    case Action::kThrowTransient:
      throw InjectedFault(std::string(point), /*transient=*/true);
    case Action::kStall:
      std::this_thread::sleep_for(stall);
      return std::nullopt;
    case Action::kShortWrite:
    case Action::kTornRename:
    case Action::kEnospc:
    case Action::kBitFlip:
      return action;
  }
  return std::nullopt;
}

}  // namespace uchecker
