#include "support/trace_export.h"

#include <cmath>
#include <cstdio>

#include "support/strutil.h"

namespace uchecker::telemetry {
namespace {

std::string num(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

// One trace-event object. `extra` is appended verbatim after the common
// fields (leading ", " included by the caller when non-empty).
void append_event(std::string& out, bool& first, std::string_view name,
                  std::string_view cat, char ph, std::uint64_t ts,
                  std::uint32_t tid, const std::string& extra) {
  if (!first) out += ",\n";
  first = false;
  out += "  {\"name\": " + strutil::quote(name) + ", \"cat\": " +
         strutil::quote(cat) + ", \"ph\": \"" + ph + "\", \"ts\": " +
         std::to_string(ts) + ", \"pid\": 1, \"tid\": " + std::to_string(tid);
  out += extra;
  out += "}";
}

// Shared body of both to_chrome_trace_json overloads: every event of
// every trace, without the surrounding traceEvents wrapper.
void append_trace_events(std::string& out, bool& first,
                         const Telemetry& telemetry,
                         const ChromeTraceOptions& options) {
  for (const ScanTrace* trace : telemetry.traces()) {
    // Consistent copy: safe even while the scan is still writing.
    const TraceSnapshot snap = trace->snapshot();
    const std::uint32_t tid = snap.tid;
    // Request correlation: every event of a trace begun with a trace ID
    // carries it in args, so one grep over the trace file finds the
    // request. Empty for traces begun without one (keeps the golden
    // format test byte-stable).
    const std::string tid_arg =
        snap.trace_id.empty()
            ? std::string()
            : ", \"trace_id\": " + strutil::quote(snap.trace_id);
    // Thread name metadata so Perfetto labels each scan's track.
    append_event(out, first, "thread_name", "__metadata", 'M', 0, tid,
                 ", \"args\": {\"name\": " + strutil::quote(snap.name) +
                     tid_arg + "}");
    for (const Span& span : snap.spans) {
      const std::uint64_t ts = options.zero_times ? 0 : span.start_us;
      const std::uint64_t dur = options.zero_times ? 0 : span.dur_us;
      std::string extra = ", \"dur\": " + std::to_string(dur);
      extra += ", \"args\": {\"detail\": " + strutil::quote(span.detail);
      if (span.open) extra += ", \"open\": true";
      extra += tid_arg;
      extra += "}";
      append_event(out, first, span.name, "phase", 'X', ts, tid, extra);
    }
    for (const ProgressSample& p : snap.progress) {
      const std::uint64_t ts = options.zero_times ? 0 : p.t_us;
      const std::string extra =
          ", \"args\": {\"live_paths\": " + std::to_string(p.live_paths) +
          ", \"objects\": " + std::to_string(p.objects) +
          ", \"heap_bytes\": " + std::to_string(p.heap_bytes) + tid_arg + "}";
      append_event(out, first, "interp.progress", "sample", 'C', ts, tid,
                   extra);
    }
    for (const SolverCallSample& s : snap.solver_calls) {
      const std::uint64_t ts = options.zero_times ? 0 : s.t_us;
      const std::uint64_t dur = options.zero_times ? 0 : s.dur_us;
      std::string extra = ", \"dur\": " + std::to_string(dur);
      extra += ", \"args\": {\"attempts\": " + std::to_string(s.attempts) +
               ", \"escalations\": " + std::to_string(s.escalations) +
               ", \"deadline_exceeded\": " +
               (s.deadline_exceeded ? "true" : "false") +
               ", \"result\": " + strutil::quote(s.result) + tid_arg + "}";
      append_event(out, first, "solver.check", "solver", 'X', ts, tid, extra);
    }
    for (const TraceEvent& e : snap.events) {
      const std::uint64_t ts = options.zero_times ? 0 : e.t_us;
      const std::string extra =
          ", \"s\": \"t\", \"args\": {\"detail\": " + strutil::quote(e.detail) +
          tid_arg + "}";
      append_event(out, first, e.name, "event", 'i', ts, tid, extra);
    }
  }
}

}  // namespace

std::string to_chrome_trace_json(const Telemetry& telemetry,
                                 const ChromeTraceOptions& options) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  append_trace_events(out, first, telemetry, options);
  out += "\n]}";
  return out;
}

std::string to_chrome_trace_json(const Telemetry& telemetry,
                                 const profile::ExplosionProfile& profile,
                                 const ChromeTraceOptions& options) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  append_trace_events(out, first, telemetry, options);
  // Profiled roots render as synthetic tracks after the scan threads:
  // fork-site counters (one series per site, ranked order preserved)
  // plus the live-path timeline.
  std::uint32_t tid = 9000;
  for (const uchecker::profile::RootProfile& root : profile.roots) {
    append_event(out, first, "thread_name", "__metadata", 'M', 0, tid,
                 ", \"args\": {\"name\": " +
                     strutil::quote("profile:" + root.root) + "}");
    for (const uchecker::profile::ForkSiteStats& site : root.fork_sites) {
      const std::string name =
          site.site + " [" +
          std::string(uchecker::profile::fork_kind_name(site.kind)) + " " +
          site.detail + "]";
      const std::string extra =
          ", \"args\": {\"paths_spawned\": " +
          std::to_string(site.cumulative_paths) +
          ", \"self_paths\": " + std::to_string(site.self_paths) +
          ", \"visits\": " + std::to_string(site.visits) + "}";
      append_event(out, first, name, "fork_site", 'C', 0, tid, extra);
    }
    for (const uchecker::profile::PathSample& p : root.samples) {
      const std::uint64_t ts = options.zero_times ? 0 : p.t_us;
      const std::string extra =
          ", \"args\": {\"live_paths\": " + std::to_string(p.live_paths) +
          ", \"objects\": " + std::to_string(p.objects) +
          ", \"heap_bytes\": " + std::to_string(p.heap_bytes) + "}";
      append_event(out, first, "profile.live_paths", "fork_site", 'C', ts,
                   tid, extra);
    }
    ++tid;
  }
  out += "\n]}";
  return out;
}

std::string metrics_to_json(const Telemetry& telemetry) {
  const MetricsRegistry& m = telemetry.metrics();
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : m.counters()) {
    if (!first) out += ", ";
    first = false;
    out += strutil::quote(name) + ": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : m.gauges()) {
    if (!first) out += ", ";
    first = false;
    out += strutil::quote(name) + ": " + num(value);
  }
  out += "}, \"exemplars\": {";
  first = true;
  for (const auto& [name, trace_id] : m.exemplars()) {
    if (!first) out += ", ";
    first = false;
    out += strutil::quote(name) + ": " + strutil::quote(trace_id);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : m.histograms()) {
    if (!first) out += ", ";
    first = false;
    out += strutil::quote(name) + ": {\"count\": " +
           std::to_string(hist->count()) + ", \"sum\": " + num(hist->sum()) +
           ", \"min\": " + num(hist->min()) + ", \"max\": " + num(hist->max()) +
           ", \"buckets\": [";
    const std::vector<double>& bounds = hist->bounds();
    // Cumulative le-convention counts — the same numbers the Prometheus
    // exposition serves, so the two surfaces agree on boundary-exact
    // samples and the final "inf" bucket always equals "count".
    const std::vector<std::uint64_t> counts = hist->cumulative_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"le\": ";
      out += i < bounds.size() ? num(bounds[i]) : std::string("\"inf\"");
      out += ", \"count\": " + std::to_string(counts[i]) + "}";
    }
    out += "]}";
  }
  out += "}, \"phases\": [";
  first = true;
  for (const PhaseStats& s : telemetry.fleet_phase_stats()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"phase\": " + strutil::quote(s.phase) +
           ", \"count\": " + std::to_string(s.count) +
           ", \"total_ms\": " + num(s.total_ms) +
           ", \"p50_ms\": " + num(s.p50_ms) + ", \"p95_ms\": " + num(s.p95_ms) +
           ", \"p99_ms\": " + num(s.p99_ms) + ", \"max_ms\": " + num(s.max_ms) +
           "}";
  }
  out += "]}";
  return out;
}

}  // namespace uchecker::telemetry
