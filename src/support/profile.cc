#include "support/profile.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "support/jsonlite.h"
#include "support/strutil.h"

namespace uchecker::profile {
namespace {

constexpr std::size_t kPostMortemTopSites = 10;

std::string json_number(double value) {
  if (!(value == value) || value > 1e300 || value < -1e300) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

// Unresolved rendering of a site: the detector replaces this with the
// SourceManager's "name:line" once file ids can be resolved.
std::string raw_site(std::uint32_t file, std::uint32_t line) {
  return "file#" + std::to_string(file) + ":" + std::to_string(line);
}

// Interning key for a fork site / solver origin: (file, line) plus a
// tag so distinct kinds at one line (e.g. a call inside a loop header)
// stay distinct.
std::uint64_t position_key(std::uint32_t tag, std::uint32_t file,
                           std::uint32_t line) {
  return (static_cast<std::uint64_t>(tag) << 56) |
         (static_cast<std::uint64_t>(file & 0xFFFFFFu) << 32) | line;
}

std::string fork_site_json(const ForkSiteStats& s) {
  std::string out = "{";
  out += "\"site\": " + strutil::quote(s.site) + ", ";
  out += "\"kind\": \"" + std::string(fork_kind_name(s.kind)) + "\", ";
  out += "\"detail\": " + strutil::quote(s.detail) + ", ";
  out += "\"visits\": " + std::to_string(s.visits) + ", ";
  out += "\"paths_spawned\": " + std::to_string(s.cumulative_paths) + ", ";
  out += "\"self_paths\": " + std::to_string(s.self_paths);
  out += "}";
  return out;
}

std::string sample_json(const PathSample& s) {
  std::string out = "{";
  out += "\"t_us\": " + std::to_string(s.t_us) + ", ";
  out += "\"live_paths\": " + std::to_string(s.live_paths) + ", ";
  out += "\"objects\": " + std::to_string(s.objects) + ", ";
  out += "\"heap_bytes\": " + std::to_string(s.heap_bytes);
  out += "}";
  return out;
}

bool get_string(const jsonlite::Value& obj, std::string_view key,
                std::string& out) {
  const jsonlite::Value* v = obj.find(key);
  if (v == nullptr || !v->is_string()) return false;
  out = v->str();
  return true;
}

bool get_double(const jsonlite::Value& obj, std::string_view key,
                double& out) {
  const jsonlite::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return false;
  out = v->number();
  return true;
}

bool get_bool(const jsonlite::Value& obj, std::string_view key, bool& out) {
  const jsonlite::Value* v = obj.find(key);
  if (v == nullptr || !v->is_bool()) return false;
  out = v->boolean();
  return true;
}

template <typename UInt>
bool get_uint(const jsonlite::Value& obj, std::string_view key, UInt& out) {
  double d = 0.0;
  if (!get_double(obj, key, d) || d < 0.0) return false;
  out = static_cast<UInt>(d);
  return true;
}

bool parse_fork_site(const jsonlite::Value& v, ForkSiteStats& out) {
  std::string kind;
  if (!v.is_object() || !get_string(v, "site", out.site) ||
      !get_string(v, "kind", kind) || !get_string(v, "detail", out.detail) ||
      !get_uint(v, "visits", out.visits) ||
      !get_uint(v, "paths_spawned", out.cumulative_paths) ||
      !get_uint(v, "self_paths", out.self_paths)) {
    return false;
  }
  const std::optional<ForkKind> parsed = fork_kind_from_name(kind);
  if (!parsed.has_value()) return false;
  out.kind = *parsed;
  return true;
}

bool parse_sample(const jsonlite::Value& v, PathSample& out) {
  return v.is_object() && get_uint(v, "t_us", out.t_us) &&
         get_uint(v, "live_paths", out.live_paths) &&
         get_uint(v, "objects", out.objects) &&
         get_uint(v, "heap_bytes", out.heap_bytes);
}

}  // namespace

std::string_view fork_kind_name(ForkKind kind) {
  switch (kind) {
    case ForkKind::kConditional: return "conditional";
    case ForkKind::kSwitch: return "switch";
    case ForkKind::kLoop: return "loop";
    case ForkKind::kForeach: return "foreach";
    case ForkKind::kTryCatch: return "try";
    case ForkKind::kCall: return "call";
  }
  return "invalid";
}

std::optional<ForkKind> fork_kind_from_name(std::string_view name) {
  for (const ForkKind kind :
       {ForkKind::kConditional, ForkKind::kSwitch, ForkKind::kLoop,
        ForkKind::kForeach, ForkKind::kTryCatch, ForkKind::kCall}) {
    if (name == fork_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

void rank_root_profile(RootProfile& root) {
  std::sort(root.fork_sites.begin(), root.fork_sites.end(),
            [](const ForkSiteStats& a, const ForkSiteStats& b) {
              return std::tuple(a.cumulative_paths, a.self_paths, a.visits,
                                b.file, b.line) >
                     std::tuple(b.cumulative_paths, b.self_paths, b.visits,
                                a.file, a.line);
            });
  std::sort(root.solver.begin(), root.solver.end(),
            [](const SolverSiteStats& a, const SolverSiteStats& b) {
              return std::tuple(a.wall_ms, a.queries, a.cache_hits, b.file,
                                b.line) > std::tuple(b.wall_ms, b.queries,
                                                     b.cache_hits, a.file,
                                                     a.line);
            });
  std::sort(root.heap_by_depth.begin(), root.heap_by_depth.end(),
            [](const HeapDepthStats& a, const HeapDepthStats& b) {
              return a.depth < b.depth;
            });
}

PostMortem build_post_mortem(const RootProfile& root) {
  PostMortem pm;
  pm.reason = root.reason;
  pm.peak_paths = root.peak_paths;
  const std::size_t n =
      std::min(kPostMortemTopSites, root.fork_sites.size());
  pm.top_sites.assign(root.fork_sites.begin(), root.fork_sites.begin() + n);
  // The dominant loop: the top-ranked loop-family site. fork_sites is
  // ranked by cumulative paths, so the first match wins. Explosions
  // with no looping fork at all (Cimy is a pure if/elseif ladder) fall
  // back to the top fork site of any kind — the field always names the
  // construct that dominated the blowup, annotated with its kind.
  const ForkSiteStats* dominant = nullptr;
  for (const ForkSiteStats& s : root.fork_sites) {
    if (s.kind == ForkKind::kLoop || s.kind == ForkKind::kForeach) {
      dominant = &s;
      break;
    }
  }
  if (dominant == nullptr && !root.fork_sites.empty()) {
    dominant = &root.fork_sites.front();
  }
  if (dominant != nullptr) {
    pm.dominant_loop = dominant->site + " (" +
                       std::string(fork_kind_name(dominant->kind)) + " " +
                       dominant->detail + ")";
  }
  pm.live_path_histogram = root.samples;
  return pm;
}

std::uint64_t peak_rss_bytes() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  std::uint64_t kib = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    unsigned long long value = 0;
    if (std::sscanf(line, "VmHWM: %llu kB", &value) == 1) {
      kib = value;
      break;
    }
  }
  std::fclose(status);
  return kib * 1024;
}

std::string to_json(const ExplosionProfile& profile) {
  std::string out = "{";
  out += "\"peak_rss_bytes\": " + std::to_string(profile.peak_rss_bytes);
  out += ", \"roots\": [";
  for (std::size_t r = 0; r < profile.roots.size(); ++r) {
    const RootProfile& root = profile.roots[r];
    if (r != 0) out += ", ";
    out += "{";
    out += "\"root\": " + strutil::quote(root.root) + ", ";
    out += std::string("\"incomplete\": ") +
           (root.incomplete ? "true" : "false") + ", ";
    out += "\"reason\": " + strutil::quote(root.reason) + ", ";
    out += "\"peak_paths\": " + std::to_string(root.peak_paths) + ", ";
    out += "\"fork_sites\": [";
    for (std::size_t i = 0; i < root.fork_sites.size(); ++i) {
      if (i != 0) out += ", ";
      out += fork_site_json(root.fork_sites[i]);
    }
    out += "], \"solver\": [";
    for (std::size_t i = 0; i < root.solver.size(); ++i) {
      const SolverSiteStats& s = root.solver[i];
      if (i != 0) out += ", ";
      out += "{";
      out += "\"sink\": " + strutil::quote(s.sink) + ", ";
      out += "\"origin\": " + strutil::quote(s.origin) + ", ";
      out += "\"queries\": " + std::to_string(s.queries) + ", ";
      out += "\"cache_hits\": " + std::to_string(s.cache_hits) + ", ";
      out += "\"wall_ms\": " + json_number(s.wall_ms);
      out += "}";
    }
    out += "], \"heap_by_depth\": [";
    for (std::size_t i = 0; i < root.heap_by_depth.size(); ++i) {
      const HeapDepthStats& h = root.heap_by_depth[i];
      if (i != 0) out += ", ";
      out += "{";
      out += "\"depth\": " + std::to_string(h.depth) + ", ";
      out += "\"objects\": " + std::to_string(h.objects) + ", ";
      out += "\"bytes\": " + std::to_string(h.bytes);
      out += "}";
    }
    out += "]";
    if (root.post_mortem.has_value()) {
      const PostMortem& pm = *root.post_mortem;
      out += ", \"post_mortem\": {";
      out += "\"reason\": " + strutil::quote(pm.reason) + ", ";
      out += "\"peak_paths\": " + std::to_string(pm.peak_paths) + ", ";
      out += "\"dominant_loop\": " + strutil::quote(pm.dominant_loop) + ", ";
      out += "\"top_fork_sites\": [";
      for (std::size_t i = 0; i < pm.top_sites.size(); ++i) {
        if (i != 0) out += ", ";
        out += fork_site_json(pm.top_sites[i]);
      }
      out += "], \"live_path_histogram\": [";
      for (std::size_t i = 0; i < pm.live_path_histogram.size(); ++i) {
        if (i != 0) out += ", ";
        out += sample_json(pm.live_path_histogram[i]);
      }
      out += "]}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::optional<ExplosionProfile> from_json(const jsonlite::Value& value) {
  if (!value.is_object()) return std::nullopt;
  ExplosionProfile profile;
  if (!get_uint(value, "peak_rss_bytes", profile.peak_rss_bytes)) {
    return std::nullopt;
  }
  const jsonlite::Value* roots = value.find("roots");
  if (roots == nullptr || !roots->is_array()) return std::nullopt;
  for (const jsonlite::Value& rv : roots->items()) {
    RootProfile root;
    if (!rv.is_object() || !get_string(rv, "root", root.root) ||
        !get_bool(rv, "incomplete", root.incomplete) ||
        !get_string(rv, "reason", root.reason) ||
        !get_uint(rv, "peak_paths", root.peak_paths)) {
      return std::nullopt;
    }
    const jsonlite::Value* sites = rv.find("fork_sites");
    const jsonlite::Value* solver = rv.find("solver");
    const jsonlite::Value* heap = rv.find("heap_by_depth");
    if (sites == nullptr || !sites->is_array() || solver == nullptr ||
        !solver->is_array() || heap == nullptr || !heap->is_array()) {
      return std::nullopt;
    }
    for (const jsonlite::Value& sv : sites->items()) {
      ForkSiteStats site;
      if (!parse_fork_site(sv, site)) return std::nullopt;
      root.fork_sites.push_back(std::move(site));
    }
    for (const jsonlite::Value& sv : solver->items()) {
      SolverSiteStats s;
      if (!sv.is_object() || !get_string(sv, "sink", s.sink) ||
          !get_string(sv, "origin", s.origin) ||
          !get_uint(sv, "queries", s.queries) ||
          !get_uint(sv, "cache_hits", s.cache_hits) ||
          !get_double(sv, "wall_ms", s.wall_ms)) {
        return std::nullopt;
      }
      root.solver.push_back(std::move(s));
    }
    for (const jsonlite::Value& hv : heap->items()) {
      HeapDepthStats h;
      if (!hv.is_object() || !get_uint(hv, "depth", h.depth) ||
          !get_uint(hv, "objects", h.objects) ||
          !get_uint(hv, "bytes", h.bytes)) {
        return std::nullopt;
      }
      root.heap_by_depth.push_back(h);
    }
    if (const jsonlite::Value* pm = rv.find("post_mortem")) {
      PostMortem post;
      if (!pm->is_object() || !get_string(*pm, "reason", post.reason) ||
          !get_uint(*pm, "peak_paths", post.peak_paths) ||
          !get_string(*pm, "dominant_loop", post.dominant_loop)) {
        return std::nullopt;
      }
      const jsonlite::Value* top = pm->find("top_fork_sites");
      const jsonlite::Value* histogram = pm->find("live_path_histogram");
      if (top == nullptr || !top->is_array() || histogram == nullptr ||
          !histogram->is_array()) {
        return std::nullopt;
      }
      for (const jsonlite::Value& sv : top->items()) {
        ForkSiteStats site;
        if (!parse_fork_site(sv, site)) return std::nullopt;
        post.top_sites.push_back(std::move(site));
      }
      for (const jsonlite::Value& sv : histogram->items()) {
        PathSample s;
        if (!parse_sample(sv, s)) return std::nullopt;
        post.live_path_histogram.push_back(s);
      }
      root.post_mortem = std::move(post);
    }
    profile.roots.push_back(std::move(root));
  }
  return profile;
}

PathProfiler::PathProfiler() : root_epoch_(std::chrono::steady_clock::now()) {}

void PathProfiler::begin_root(std::string name) {
  const std::scoped_lock lock(mutex_);
  state_ = RootState{};
  state_.profile.root = std::move(name);
  state_.active = true;
  root_epoch_ = std::chrono::steady_clock::now();
}

void PathProfiler::end_root(bool incomplete, std::string_view reason) {
  const std::scoped_lock lock(mutex_);
  if (!state_.active) return;
  state_.profile.incomplete = incomplete;
  state_.profile.reason = std::string(reason);
  finished_.push_back(finish_state_locked());
  state_ = RootState{};
}

void PathProfiler::note_paths_locked(std::uint64_t live_paths) {
  state_.peak_paths = std::max(state_.peak_paths, live_paths);
}

std::size_t PathProfiler::site_slot_locked(ForkKind kind, std::uint32_t file,
                                           std::uint32_t line,
                                           std::string_view detail) {
  const std::uint64_t key =
      position_key(static_cast<std::uint32_t>(kind), file, line);
  const auto [it, inserted] =
      state_.site_index.try_emplace(key, state_.profile.fork_sites.size());
  if (inserted) {
    ForkSiteStats site;
    site.site = raw_site(file, line);
    site.file = file;
    site.line = line;
    site.kind = kind;
    site.detail = std::string(detail);
    state_.profile.fork_sites.push_back(std::move(site));
  }
  return it->second;
}

void PathProfiler::enter_site(ForkKind kind, std::uint32_t file,
                              std::uint32_t line, std::string_view detail,
                              std::size_t paths_before) {
  const std::scoped_lock lock(mutex_);
  if (!state_.active) return;
  Frame frame;
  frame.site = site_slot_locked(kind, file, line, detail);
  frame.paths_before = paths_before;
  state_.frames.push_back(frame);
  state_.profile.fork_sites[frame.site].visits += 1;
  note_paths_locked(paths_before);
}

void PathProfiler::exit_site(std::size_t paths_after) {
  const std::scoped_lock lock(mutex_);
  if (!state_.active || state_.frames.empty()) return;
  const Frame frame = state_.frames.back();
  state_.frames.pop_back();
  const std::uint64_t cumulative =
      paths_after > frame.paths_before
          ? static_cast<std::uint64_t>(paths_after - frame.paths_before)
          : 0;
  const std::uint64_t self = cumulative > frame.nested_cumulative
                                 ? cumulative - frame.nested_cumulative
                                 : 0;
  ForkSiteStats& site = state_.profile.fork_sites[frame.site];
  site.cumulative_paths += cumulative;
  site.self_paths += self;
  if (!state_.frames.empty()) {
    state_.frames.back().nested_cumulative += cumulative;
  }
  note_paths_locked(paths_after);
}

void PathProfiler::sample(std::size_t live_paths, std::size_t objects,
                          std::size_t heap_bytes) {
  const std::scoped_lock lock(mutex_);
  if (!state_.active) return;
  PathSample s;
  s.t_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - root_epoch_)
          .count());
  s.live_paths = live_paths;
  s.objects = objects;
  s.heap_bytes = heap_bytes;
  state_.profile.samples.push_back(s);
  note_paths_locked(live_paths);
  // Attribute growth since the previous sample to the current depth.
  const auto depth = static_cast<std::uint32_t>(state_.frames.size());
  const std::uint64_t d_objects =
      objects > state_.last_objects ? objects - state_.last_objects : 0;
  const std::uint64_t d_bytes =
      heap_bytes > state_.last_bytes ? heap_bytes - state_.last_bytes : 0;
  state_.last_objects = objects;
  state_.last_bytes = heap_bytes;
  if (d_objects == 0 && d_bytes == 0) return;
  const auto [it, inserted] = state_.depth_index.try_emplace(
      depth, state_.profile.heap_by_depth.size());
  if (inserted) {
    HeapDepthStats h;
    h.depth = depth;
    state_.profile.heap_by_depth.push_back(h);
  }
  HeapDepthStats& h = state_.profile.heap_by_depth[it->second];
  h.objects += d_objects;
  h.bytes += d_bytes;
}

void PathProfiler::record_solver(std::string_view sink, std::uint32_t file,
                                 std::uint32_t line, double wall_ms,
                                 bool cache_hit) {
  const std::scoped_lock lock(mutex_);
  if (!state_.active) return;
  // (file, line) identifies the sink occurrence; the 0x50 tag keeps
  // solver keys out of the fork-site tag space.
  const std::uint64_t key = position_key(0x50u, file, line);
  const auto [it, inserted] =
      state_.solver_index.try_emplace(key, state_.profile.solver.size());
  if (inserted) {
    SolverSiteStats s;
    s.sink = std::string(sink);
    s.origin = raw_site(file, line);
    s.file = file;
    s.line = line;
    state_.profile.solver.push_back(std::move(s));
  }
  SolverSiteStats& s = state_.profile.solver[it->second];
  if (cache_hit) {
    s.cache_hits += 1;
  } else {
    s.queries += 1;
    s.wall_ms += wall_ms;
  }
}

RootProfile PathProfiler::finish_state_locked() {
  RootProfile root = std::move(state_.profile);
  root.peak_paths = state_.peak_paths;
  rank_root_profile(root);
  return root;
}

ExplosionProfile PathProfiler::snapshot() const {
  const std::scoped_lock lock(mutex_);
  ExplosionProfile out;
  out.roots = finished_;
  if (state_.active) {
    RootProfile live = state_.profile;  // copy; leave the state running
    live.peak_paths = state_.peak_paths;
    rank_root_profile(live);
    out.roots.push_back(std::move(live));
  }
  return out;
}

ExplosionProfile PathProfiler::take() {
  const std::scoped_lock lock(mutex_);
  ExplosionProfile out;
  out.roots = std::move(finished_);
  finished_.clear();
  return out;
}

}  // namespace uchecker::profile
