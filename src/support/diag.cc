#include "support/diag.h"

namespace uchecker {
namespace {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

}  // namespace

std::map<std::string, std::size_t> DiagnosticSink::error_counts_by_phase()
    const {
  std::map<std::string, std::size_t> counts;
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError) ++counts[d.phase];
  }
  return counts;
}

std::string DiagnosticSink::render(const SourceManager& sm) const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += sm.describe(d.loc);
    out += ": ";
    out += severity_name(d.severity);
    out += ": ";
    if (!d.phase.empty()) {
      out += '[';
      out += d.phase;
      out += "] ";
    }
    out += d.message;
    out += '\n';
  }
  return out;
}

}  // namespace uchecker
