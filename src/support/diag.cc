#include "support/diag.h"

namespace uchecker {
namespace {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

}  // namespace

std::string DiagnosticSink::render(const SourceManager& sm) const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += sm.describe(d.loc);
    out += ": ";
    out += severity_name(d.severity);
    out += ": ";
    out += d.message;
    out += '\n';
  }
  return out;
}

}  // namespace uchecker
