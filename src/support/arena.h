// Bump-pointer arena allocator for the parser front end.
//
// One Arena owns every allocation of one compilation unit: the copied
// source buffer, decoded string literals, interpolation parts, AST nodes
// and their child lists. Allocation is a pointer bump; deallocation is
// wholesale when the arena is destroyed (or reset). Objects placed in an
// arena must be trivially destructible — their destructors never run —
// which also makes the resulting AST trivially relocatable: moving the
// Arena object moves block ownership without invalidating any pointer.
//
// Thread model: an Arena is single-threaded by design. Parallel parsing
// gives every file its own arena, so no synchronization is needed and no
// allocation is ever shared across threads while being written.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace uchecker {

// A non-owning view of `count` objects of T living in an arena (or any
// storage outliving the view). Trivially copyable; the arena front end
// uses it everywhere std::vector would otherwise own heap memory.
template <typename T>
class Span {
 public:
  using value_type = T;

  constexpr Span() = default;
  constexpr Span(T* data, std::size_t count) : data_(data), count_(count) {}

  // Span<T> -> Span<const T>.
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U (*)[], T (*)[]>>>
  constexpr Span(const Span<U>& other)  // NOLINT(google-explicit-constructor)
      : data_(other.data()), count_(other.size()) {}

  [[nodiscard]] constexpr T* data() const { return data_; }
  [[nodiscard]] constexpr std::size_t size() const { return count_; }
  [[nodiscard]] constexpr bool empty() const { return count_ == 0; }
  [[nodiscard]] constexpr T* begin() const { return data_; }
  [[nodiscard]] constexpr T* end() const { return data_ + count_; }
  [[nodiscard]] constexpr T& operator[](std::size_t i) const {
    return data_[i];
  }
  [[nodiscard]] constexpr T& front() const { return data_[0]; }
  [[nodiscard]] constexpr T& back() const { return data_[count_ - 1]; }

 private:
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

// Read-only span view of a vector (the vector must outlive the view).
// Bridges vector-owned lists (e.g. PhpFile::statements) into APIs that
// take arena Spans.
template <typename T>
[[nodiscard]] constexpr Span<const T> as_span(const std::vector<T>& v) {
  return {v.data(), v.size()};
}

class Arena {
 public:
  // First block size. Subsequent blocks double up to kMaxBlockSize, so
  // small files stay in one page-sized block while large files amortize
  // the malloc count.
  static constexpr std::size_t kDefaultBlockSize = 16 * 1024;
  static constexpr std::size_t kMaxBlockSize = 1024 * 1024;

  explicit Arena(std::size_t first_block_size = kDefaultBlockSize);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  // Moving an arena transfers block ownership; every pointer previously
  // handed out stays valid (blocks never move, only their registry does).
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;

  // Raw allocation, aligned to `align` (a power of two). Requests larger
  // than kMaxBlockSize get a dedicated block (large-object fallback) and
  // leave the current bump block in place.
  [[nodiscard]] void* allocate(std::size_t size, std::size_t align);

  // Placement-constructs a T. Arena objects are freed wholesale, so T
  // must not own heap memory.
  template <typename T, typename... Args>
  [[nodiscard]] T* make(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are freed wholesale without running "
                  "destructors; T must be trivially destructible");
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  // Copies a byte string into the arena. Returns a view into the copy
  // (empty input returns an empty view without allocating).
  [[nodiscard]] std::string_view copy(std::string_view s);

  // Copies the elements of `v` into the arena and returns a span over
  // the copy. T must be trivially destructible (and is memcpy-safe for
  // every front-end payload: pointers, views, small PODs).
  template <typename T>
  [[nodiscard]] Span<T> make_span(const std::vector<T>& v) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "span elements live in the arena; they must be "
                  "trivially destructible");
    if (v.empty()) return {};
    T* data = static_cast<T*>(allocate(v.size() * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < v.size(); ++i) ::new (data + i) T(v[i]);
    return Span<T>(data, v.size());
  }

  // Frees every block except the first, which is rewound — so a pooled
  // arena reused across files keeps its warm block instead of going back
  // to malloc. All outstanding pointers are invalidated.
  void reset();

  // Bytes handed out since construction/reset (sum of allocation sizes,
  // excluding alignment padding) and bytes reserved from malloc.
  [[nodiscard]] std::size_t bytes_allocated() const { return allocated_; }
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }

 private:
  struct Block {
    char* data = nullptr;
    std::size_t size = 0;
  };

  // Starts a new bump block of at least `min_size` bytes.
  void grow(std::size_t min_size);
  void free_blocks();

  std::vector<Block> blocks_;
  char* ptr_ = nullptr;   // next free byte in the current bump block
  char* end_ = nullptr;   // one past the current bump block
  std::size_t next_block_size_ = kDefaultBlockSize;
  std::size_t first_block_size_ = kDefaultBlockSize;
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace uchecker
