// Flight recorder: a fixed-size lock-free ring of the most recent
// events on one worker — phase transitions, solver calls, interpreter
// progress samples, queue pickups. The hot path (record) is wait-free:
// one fetch_add plus relaxed stores into a slot, no mutex, no
// allocation, so it can sit inside the interpreter loop. The cold path
// (snapshot/to_json) runs on a *different* thread — the watchdog dumping
// a wedged scan, or the SIGTERM drain — and tolerates racing writers: a
// slot whose sequence number changes mid-copy is discarded rather than
// read torn.
//
// Why not a seqlock over plain fields: TSan (ci/sanitize.sh --tsan)
// flags any non-atomic read racing a write even when the sequence check
// would discard it. Every payload field, including the detail bytes, is
// therefore individually atomic with relaxed ordering; the per-slot
// `seq` uses release/acquire to order payload visibility.
//
// The dump names the wedged phase (innermost kPhaseBegin without a
// matching kPhaseEnd) and the last interpreter progress sample, which is
// exactly what a watchdog quarantine entry needs to answer "what was it
// doing when it hung?".
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace uchecker::telemetry {

enum class FlightKind : std::uint8_t {
  kPhaseBegin = 0,  // detail = phase name ("parse", "interp", ...)
  kPhaseEnd = 1,    // detail = phase name
  kProgress = 2,    // a = live paths, b = heap-graph objects
  kSolverCall = 3,  // detail = result, a = dur_us, b = attempts
  kEvent = 4,       // detail = event name (deadline_exceeded, ...)
  kQueue = 5,       // detail = app name, a = queue depth at pickup
};

[[nodiscard]] std::string_view flight_kind_name(FlightKind kind);

// One event as copied out by snapshot().
struct FlightEvent {
  std::uint64_t index = 0;  // monotone sequence number across the ring
  std::uint64_t t_us = 0;   // relative to the recorder's construction
  FlightKind kind = FlightKind::kEvent;
  std::string detail;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class FlightRecorder {
 public:
  // `capacity` is rounded up to a power of two (min 16).
  explicit FlightRecorder(std::size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Wait-free; truncates `detail` to kDetailBytes. Safe to call from the
  // scan thread while another thread snapshots.
  void record(FlightKind kind, std::string_view detail, std::uint64_t a = 0,
              std::uint64_t b = 0) noexcept;

  // Copies out every intact slot, oldest first. Slots being overwritten
  // during the copy are skipped (they are about to be replaced by newer
  // events anyway).
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  // Renders a snapshot as one JSON object:
  //   {"total_recorded": N, "dropped": N,
  //    "wedged_phase": "interp" | null,
  //    "last_progress": {"t_us": N, "live_paths": N, "objects": N} | null,
  //    "events": [{"t_us": N, "kind": "phase_begin", "detail": "...",
  //                "a": N, "b": N}, ...]}
  // wedged_phase is the innermost phase begun but never ended in the
  // visible window; dropped = total_recorded - ring capacity (floor 0).
  [[nodiscard]] std::string to_json() const;

  // The innermost phase begun but never ended in the current window
  // ("" when none) — what a wedged scan was doing. Same walk as
  // to_json()'s "wedged_phase".
  [[nodiscard]] std::string wedged_phase() const;

  // Total record() calls since construction (including overwritten ones).
  [[nodiscard]] std::uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const { return slots_count_; }

  static constexpr std::size_t kDetailBytes = 48;

 private:
  struct Slot {
    // 0 = never written; odd = write in progress; even>0 = intact, and
    // (seq/2 - 1) is the event's monotone index.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> t_us{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint8_t> detail_len{0};
    std::array<std::atomic<char>, kDetailBytes> detail{};
  };

  std::uint64_t now_us() const noexcept;

  std::size_t slots_count_;
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace uchecker::telemetry
