// Small string helpers shared across the project. All functions are pure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uchecker::strutil {

// Concatenation of views without an intermediate std::string per operand
// (std::string_view has no operator+; arena-era identifiers are views).
[[nodiscard]] inline std::string cat(std::string_view a, std::string_view b) {
  std::string out;
  out.reserve(a.size() + b.size());
  out += a;
  out += b;
  return out;
}
[[nodiscard]] inline std::string cat(std::string_view a, std::string_view b,
                                     std::string_view c) {
  std::string out;
  out.reserve(a.size() + b.size() + c.size());
  out += a;
  out += b;
  out += c;
  return out;
}

// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

// ASCII-only case conversion (PHP identifiers and extensions are ASCII).
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::string to_upper(std::string_view s);

[[nodiscard]] bool iequals(std::string_view a, std::string_view b);
[[nodiscard]] bool starts_with_i(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with_i(std::string_view s, std::string_view suffix);

// Splits on a single character; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

// Joins with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

// Replaces every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replace_all(std::string_view s, std::string_view from,
                                      std::string_view to);

// Strict decimal integer parse; rejects trailing garbage.
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view s);

// PHP-style leading-numeric-prefix conversion: "42abc" -> 42, "abc" -> 0.
[[nodiscard]] std::int64_t php_intval(std::string_view s);

// The extension of a path ("a/b/c.php" -> "php", no dot). Empty if none.
[[nodiscard]] std::string_view file_extension(std::string_view path);

// The final path component ("a/b/c.php" -> "c.php"), PHP basename() style.
[[nodiscard]] std::string_view path_basename(std::string_view path);

// Escapes a string for embedding in double quotes (C/JSON-style escapes).
[[nodiscard]] std::string quote(std::string_view s);

}  // namespace uchecker::strutil
