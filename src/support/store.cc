#include "support/store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/fault_injector.h"

namespace uchecker::store {
namespace {

constexpr char kMagic[4] = {'U', 'C', 'D', 'S'};
constexpr std::uint32_t kFormatVersion = 1;
// u32 payload length + u64 checksum.
constexpr std::size_t kRecordHeader = 4 + 8;
// One cache record holds at most one serialized scan report; anything
// beyond this is treated as a corrupt length field, not an allocation.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::string header_bytes(std::string_view schema) {
  std::string out(kMagic, sizeof(kMagic));
  put_u32(out, kFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(schema.size()));
  out.append(schema);
  return out;
}

// Writes all of `data`, honouring the "store.append" I/O fault point:
// a short write persists only half the buffer but still reports success
// (the caller learns the truth, like after a power cut, on the next
// open); ENOSPC fails cleanly before anything lands on disk.
bool write_all(int fd, std::string_view data, bool faultable) {
  if (faultable) {
    if (const auto fault = FaultInjector::io_checkpoint("store.append")) {
      if (*fault == FaultInjector::Action::kEnospc) {
        errno = ENOSPC;
        return false;
      }
      if (*fault == FaultInjector::Action::kShortWrite) {
        data = data.substr(0, data.size() / 2);
      }
    }
  }
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out.clear();
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  // Read-time media corruption: flip one bit in the middle of the
  // buffer. The per-record checksum downstream is what must catch it.
  if (const auto fault = FaultInjector::io_checkpoint("store.read")) {
    if (*fault == FaultInjector::Action::kBitFlip && !out.empty()) {
      out[out.size() / 2] = static_cast<char>(out[out.size() / 2] ^ 0x10);
    }
  }
  return true;
}

}  // namespace

std::string hex64(std::uint64_t value) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[value & 0xF];
    value >>= 4;
  }
  return out;
}

// ---------------------------------------------------------------------------
// DurableLog

DurableLog::~DurableLog() { close(); }

bool DurableLog::write_header(int fd) const {
  return write_all(fd, header_bytes(schema_), /*faultable=*/false);
}

bool DurableLog::append_record(int fd, std::string_view payload) const {
  std::string record;
  record.reserve(kRecordHeader + payload.size());
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  put_u64(record, fnv1a64(payload));
  record.append(payload);
  return write_all(fd, record, /*faultable=*/true);
}

bool DurableLog::open(const std::string& path, std::string_view schema,
                      const std::function<void(std::string_view)>& replay,
                      OpenStats& stats) {
  close();
  path_ = path;
  schema_ = std::string(schema);
  stats = OpenStats{};

  std::string data;
  const bool existed = read_file(path, data);

  // Validate the header; any mismatch (magic, format version, schema /
  // engine version, truncation) is a cold start: the old contents may
  // follow a different layout, so nothing in them can be trusted.
  std::size_t valid_end = 0;
  bool replayable = false;
  const std::string expect = header_bytes(schema_);
  if (existed) {
    if (data.size() >= expect.size() &&
        std::memcmp(data.data(), expect.data(), expect.size()) == 0) {
      replayable = true;
      valid_end = expect.size();
    } else {
      stats.cold = true;
      stats.cold_reason = data.empty() ? "empty store file"
                                       : "store header/schema mismatch";
    }
  }

  if (replayable) {
    std::size_t off = valid_end;
    while (off < data.size()) {
      if (data.size() - off < kRecordHeader) {
        ++stats.records_corrupt;  // torn record header at the tail
        break;
      }
      const std::uint32_t len = get_u32(data.data() + off);
      const std::uint64_t sum = get_u64(data.data() + off + 4);
      if (len > kMaxRecordBytes || data.size() - off - kRecordHeader < len) {
        ++stats.records_corrupt;  // impossible length or torn payload
        break;
      }
      const std::string_view payload(data.data() + off + kRecordHeader, len);
      if (fnv1a64(payload) != sum) {
        ++stats.records_corrupt;  // bit rot: checksum mismatch
        break;
      }
      replay(payload);
      ++stats.records_loaded;
      off += kRecordHeader + len;
      valid_end = off;
    }
  }

  // Re-open for appends, truncated back to the last intact record (or
  // re-initialized from scratch on a cold start) so new appends can
  // never land on top of a damaged tail.
  const int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return false;
  if (!replayable) {
    if (::ftruncate(fd, 0) != 0 || !write_header(fd)) {
      ::close(fd);
      return false;
    }
  } else if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
    ::close(fd);
    return false;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool DurableLog::append(std::string_view payload) {
  if (fd_ < 0) return false;
  return append_record(fd_, payload);
}

bool DurableLog::rewrite(const std::vector<std::string>& records) {
  if (path_.empty()) return false;
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return false;
  bool ok = write_header(fd);
  for (const std::string& r : records) {
    if (!ok) break;
    ok = append_record(fd, r);
  }
  // The rename is the commit point; everything before it must be on
  // disk first, or a crash could publish a hollow file.
  if (ok) ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Torn rename: the process "dies" after writing the temp file but
  // before the atomic publish — the original file stays live.
  if (const auto fault = FaultInjector::io_checkpoint("store.rename")) {
    if (*fault == FaultInjector::Action::kTornRename) return false;
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Future appends go to the newly published file.
  const int nfd = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (nfd < 0) return false;
  if (fd_ >= 0) ::close(fd_);
  fd_ = nfd;
  return true;
}

void DurableLog::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// KvStore

std::string KvStore::encode(std::string_view key, std::string_view value) {
  std::string out;
  out.reserve(4 + key.size() + value.size());
  put_u32(out, static_cast<std::uint32_t>(key.size()));
  out.append(key);
  out.append(value);
  return out;
}

bool KvStore::open(const std::string& path, std::string_view schema) {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  stats_ = StoreStats{};
  OpenStats open_stats;
  std::size_t undecodable = 0;
  const bool ok = log_.open(
      path, schema,
      [this, &undecodable](std::string_view payload) {
        if (payload.size() < 4) {
          ++undecodable;
          return;
        }
        const std::uint32_t key_len = get_u32(payload.data());
        if (payload.size() - 4 < key_len) {
          ++undecodable;
          return;
        }
        std::string key(payload.substr(4, key_len));
        map_[std::move(key)] = std::string(payload.substr(4 + key_len));
      },
      open_stats);
  stats_.cold_start = open_stats.cold;
  stats_.cold_reason = open_stats.cold_reason;
  stats_.corrupt = open_stats.records_corrupt + undecodable;
  return ok;
}

bool KvStore::put(const std::string& key, const std::string& value) {
  const std::lock_guard<std::mutex> lock(mu_);
  map_[key] = value;
  if (!log_.is_open()) return false;
  if (!log_.append(encode(key, value))) {
    ++stats_.dropped_flushes;
    return false;
  }
  return true;
}

std::optional<std::string> KvStore::get(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

bool KvStore::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return map_.find(key) != map_.end();
}

std::size_t KvStore::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void KvStore::invalidate(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (map_.erase(key) > 0) ++stats_.corrupt;
}

bool KvStore::compact() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!log_.is_open()) return false;
  std::vector<std::string> records;
  records.reserve(map_.size());
  for (const auto& [k, v] : map_) records.push_back(encode(k, v));
  return log_.rewrite(records);
}

void KvStore::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  log_.close();
}

StoreStats KvStore::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<std::string, std::string> KvStore::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return map_;
}

}  // namespace uchecker::store
